// Package dram is a multi-channel DDR timing simulator in the spirit
// of Ramulator (paper §IV-A): per-bank row-buffer state, tRCD/tRP/tCL/
// tRAS timing constraints, FR-FCFS scheduling within a bounded request
// window, burst-granular data transfer on a 64-bit bus per channel,
// and periodic refresh. It consumes the access traces produced by the
// memory-protection simulator and reports total cycles and per-channel
// utilization — the quantity behind the paper's Fig. 6 performance
// comparison.
//
// The model is calibrated by bus bandwidth rather than a named DDR
// part: Table II specifies aggregate bandwidth (20 GB/s server,
// 10 GB/s edge) over four 64-bit channels, so each channel's burst
// timing is derived from its share of the aggregate.
//
// The hot path is zero-copy and decode-once: traces are consumed as
// trace.Access values directly, exploded into exact-size per-channel
// burst queues (counted in a pre-pass, so queues never reallocate
// mid-fill), and every burst's bank and row are decoded exactly once
// during the explode — via shift/mask when the geometry is a power of
// two (always true for DDR4Like), via division otherwise — so the
// scheduler never re-derives addresses. Within drainChannel the
// FR-FCFS pick is found from per-bank knowledge: each bank tracks the
// oldest in-window request targeting its open row, so the "oldest
// ready row hit, else oldest ready, else time-jump" decision no longer
// rescans the whole window per burst, while remaining bit-identical to
// the window-scanning scheduler it replaced (TestFRFCFSGoldenPickOrder
// pins the pick order). Queue buffers are recycled across runs —
// within one simulator, or across the several simulators of a workload
// sweep via a shared Arena. RunOverlay consumes a protection scheme's
// spine+overlay stream pair merged in anchor order, so the
// scheme-independent data stream is never duplicated per scheme.
// Channels are fully independent after the explode step, so they drain
// on parallel goroutines by default; per-channel statistics merge in
// channel-index order, making Stats bit-identical to a sequential
// drain.
package dram

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/trace"
)

// Config describes the memory system geometry and timing (in memory
// controller cycles).
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer size per bank
	BurstBytes   int // bytes transferred per burst (BL8 x 64-bit = 64B)

	// Timing in controller cycles.
	TBurst uint64 // data transfer time of one burst on the bus
	TCL    uint64 // column access (CAS) latency
	TRCD   uint64 // activate-to-read
	TRP    uint64 // precharge
	TRAS   uint64 // minimum row-open time
	TRefi  uint64 // refresh interval (0 = disabled)
	TRfc   uint64 // refresh duration

	// WindowSize bounds the FR-FCFS reorder window per channel.
	WindowSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChan <= 0 || c.RowBytes <= 0 || c.BurstBytes <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", c)
	}
	if c.TBurst == 0 {
		return fmt.Errorf("dram: zero burst time")
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("dram: window size %d <= 0", c.WindowSize)
	}
	if c.RowBytes < c.BurstBytes {
		return fmt.Errorf("dram: row size %d below burst size %d", c.RowBytes, c.BurstBytes)
	}
	return nil
}

// DDR4Like returns a timing template with realistic relative latencies
// for a 64-bit channel; callers scale counts/bandwidth via the NPU
// configs.
func DDR4Like(channels int) Config {
	return Config{
		Channels:     channels,
		BanksPerChan: 16,
		RowBytes:     2048,
		BurstBytes:   64,
		TBurst:       4,
		TCL:          14,
		TRCD:         14,
		TRP:          14,
		TRAS:         32,
		TRefi:        7800,
		TRfc:         350,
		WindowSize:   32,
	}
}

// Stats reports what the memory system did with a trace.
type Stats struct {
	Cycles      uint64 // total controller cycles to drain the trace
	Reads       uint64 // burst-granular read commands
	Writes      uint64 // burst-granular write commands
	RowHits     uint64
	RowMisses   uint64 // row conflicts (precharge + activate)
	RowEmpty    uint64 // activates into an idle bank
	Refreshes   uint64
	BytesMoved  uint64
	ChanCycles  []uint64 // per-channel busy cycles
	MaxChanBusy uint64
}

// RowHitRate returns rowHits / (rowHits+rowMisses+rowEmpty).
func (s Stats) RowHitRate() float64 {
	tot := s.RowHits + s.RowMisses + s.RowEmpty
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

// request is one burst, fully decoded at explode time: the channel is
// implicit in which queue it lands in, and bank/row are computed once
// so the scheduler's inner loop never touches an address again. The
// read/write distinction is not stored — the timing model charges
// reads and writes identically, and the Stats totals are counted in
// the explode's first pass.
type request struct {
	issue uint64 // earliest schedulable cycle
	row   int64
	bank  int32
}

type bank struct {
	openRow  int64 // -1 = closed
	readyAt  uint64
	activeAt uint64 // when the current row was activated (for tRAS)
}

// Sentinels for channel.hits, the per-bank open-row candidate cache.
const (
	hitNone  int32 = -1 // no in-window request targets the bank's open row
	hitStale int32 = -2 // candidate unknown; rescan the window on next use
)

type channel struct {
	banks []bank
	// hits[b] is the lowest in-window queue slot holding a request for
	// bank b's currently open row (or a sentinel). It is maintained
	// incrementally as requests enter the window, are picked, or change
	// the open row, so the FR-FCFS "oldest ready row hit" is found by
	// scanning banks instead of rescanning the window.
	hits     []int32
	busFree  uint64 // next cycle the data bus is free
	busy     uint64 // accumulated busy cycles
	queue    []request
	nextRef  uint64
	refCount uint64
}

// chanResult is one channel's contribution to Stats, accumulated
// privately by its drain goroutine and merged in channel-index order.
type chanResult struct {
	rowHits   uint64
	rowMisses uint64
	rowEmpty  uint64
	busy      uint64
	refreshes uint64
	done      uint64 // cycle the channel's last burst finishes
}

// runState is the per-run scratch memory: channel structs with their
// bank arrays and request queues, plus the per-channel fill cursors.
// States are recycled through Simulator.pool so steady-state RunTrace
// calls allocate only the returned ChanCycles slice.
type runState struct {
	chans   []channel
	cursors []int
	results []chanResult
}

// Arena is a shared pool of per-run scratch states that several
// Simulators with the same geometry can draw from. The six protection
// schemes of one workload each build their own Simulator but run over
// traces of comparable size; pointing them at one Arena lets a queue
// buffer warmed by one scheme be reused by the next instead of every
// scheme growing a private set, cutting peak RSS on wide sweeps.
// Arena is safe for concurrent use.
type Arena struct {
	pool sync.Pool // *runState
}

// NewArena builds an empty shared state pool.
func NewArena() *Arena { return &Arena{} }

// decoder splits byte addresses into (channel, bank, row) with the
// burst-interleaved mapping. The geometry is folded into shift/mask
// constants when every component is a power of two (DDR4Like always
// is); otherwise it falls back to the division form. Both forms
// produce identical mappings — the fast path is bit-for-bit the same
// arithmetic, just strength-reduced.
type decoder struct {
	pow2       bool
	burstShift uint
	chanShift  uint
	chanMask   uint64
	rowShift   uint // log2(bursts per row)
	bankShift  uint
	bankMask   uint64

	burstBytes   uint64
	channels     uint64
	burstsPerRow uint64
	banks        uint64
}

func newDecoder(c Config) decoder {
	d := decoder{
		burstBytes:   uint64(c.BurstBytes),
		channels:     uint64(c.Channels),
		burstsPerRow: uint64(c.RowBytes / c.BurstBytes),
		banks:        uint64(c.BanksPerChan),
	}
	pow2 := func(v uint64) bool { return bits.OnesCount64(v) == 1 }
	if pow2(d.burstBytes) && pow2(d.channels) && pow2(d.burstsPerRow) && pow2(d.banks) {
		d.pow2 = true
		d.burstShift = uint(bits.TrailingZeros64(d.burstBytes))
		d.chanShift = uint(bits.TrailingZeros64(d.channels))
		d.chanMask = d.channels - 1
		d.rowShift = uint(bits.TrailingZeros64(d.burstsPerRow))
		d.bankShift = uint(bits.TrailingZeros64(d.banks))
		d.bankMask = d.banks - 1
	}
	return d
}

// burst returns the global burst index of a byte address.
func (d *decoder) burst(addr uint64) uint64 {
	if d.pow2 {
		return addr >> d.burstShift
	}
	return addr / d.burstBytes
}

// split decodes a global burst index into channel, bank and row.
func (d *decoder) split(burst uint64) (ch uint64, bk int32, row int64) {
	if d.pow2 {
		ch = burst & d.chanMask
		rowGlobal := (burst >> d.chanShift) >> d.rowShift
		return ch, int32(rowGlobal & d.bankMask), int64(rowGlobal >> d.bankShift)
	}
	ch = burst % d.channels
	rowGlobal := (burst / d.channels) / d.burstsPerRow
	return ch, int32(rowGlobal % d.banks), int64(rowGlobal / d.banks)
}

// Simulator drains traces through the memory system.
type Simulator struct {
	cfg        Config
	dec        decoder
	sequential bool
	arena      *Arena    // shared scratch pool, if set
	pool       sync.Pool // private *runState pool otherwise
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, dec: newDecoder(cfg)}, nil
}

// Config returns the configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetSequentialDrain forces channels to drain one after another on the
// calling goroutine instead of in parallel. Results are bit-identical
// either way; the switch exists for determinism tests and debugging.
func (s *Simulator) SetSequentialDrain(v bool) { s.sequential = v }

// SetArena points the simulator at a shared scratch pool. Simulators
// sharing an arena should have the same geometry; a pooled state whose
// geometry does not match the configuration is discarded and rebuilt,
// so mixing geometries is safe but defeats the reuse.
func (s *Simulator) SetArena(a *Arena) { s.arena = a }

// statePool returns the pool run states are drawn from and returned to.
func (s *Simulator) statePool() *sync.Pool {
	if s.arena != nil {
		return &s.arena.pool
	}
	return &s.pool
}

// getState fetches (or builds) a runState sized for the configuration
// and resets the parts a previous run dirtied. Queue buffers keep
// their capacity across runs, so per-layer traces of similar size
// explode without reallocating.
func (s *Simulator) getState() *runState {
	if v := s.statePool().Get(); v != nil {
		st := v.(*runState)
		if len(st.chans) != s.cfg.Channels ||
			(len(st.chans) > 0 && len(st.chans[0].banks) != s.cfg.BanksPerChan) {
			// Arena shared across mismatched geometries: rebuild below.
			st = nil
		}
		if st != nil {
			for i := range st.chans {
				ch := &st.chans[i]
				for j := range ch.banks {
					ch.banks[j] = bank{openRow: -1}
					ch.hits[j] = hitNone
				}
				ch.busFree = 0
				ch.busy = 0
				ch.queue = ch.queue[:0]
				ch.nextRef = s.cfg.TRefi
				ch.refCount = 0
				st.cursors[i] = 0
				st.results[i] = chanResult{}
			}
			return st
		}
	}
	st := &runState{
		chans:   make([]channel, s.cfg.Channels),
		cursors: make([]int, s.cfg.Channels),
		results: make([]chanResult, s.cfg.Channels),
	}
	for i := range st.chans {
		banks := make([]bank, s.cfg.BanksPerChan)
		hits := make([]int32, s.cfg.BanksPerChan)
		for j := range banks {
			banks[j].openRow = -1 // all banks closed until first activate
			hits[j] = hitNone
		}
		st.chans[i].banks = banks
		st.chans[i].hits = hits
		st.chans[i].nextRef = s.cfg.TRefi
	}
	return st
}

// bursts returns how many bursts an access occupies.
func (s *Simulator) bursts(bytes uint32) int {
	n := int(bytes+uint32(s.cfg.BurstBytes)-1) / s.cfg.BurstBytes
	if n == 0 {
		n = 1
	}
	return n
}

// RunTrace drains a trace through the memory system. The trace is
// consumed in place — no intermediate representation is built.
func (s *Simulator) RunTrace(t *trace.Trace) Stats { return s.RunAccesses(t.Accesses) }

// RunAccesses drains a raw access slice and returns timing statistics.
// Requests are split into bursts, distributed to exact-size per-channel
// queues (burst counts are computed in a pre-pass so the fill never
// reallocates), and each channel is scheduled FR-FCFS (row hits first
// within the window, else oldest). Channels drain concurrently unless
// SetSequentialDrain was called; statistics merge deterministically.
func (s *Simulator) RunAccesses(accesses []trace.Access) Stats {
	return s.run(func(yield func(*trace.Access)) {
		for i := range accesses {
			yield(&accesses[i])
		}
	})
}

// RunOverlay drains the merge of a shared data spine and a scheme's
// overlay deltas, interleaved in anchor order, without materializing
// the combined trace: both explode passes walk the two streams in
// place. Stats are bit-identical to RunTrace over the materialized
// merge (see TestRunOverlayMatchesMaterialized).
func (s *Simulator) RunOverlay(spine *trace.Trace, deltas *trace.Overlay) Stats {
	return s.run(func(yield func(*trace.Access)) {
		trace.ForEachMerged(spine, deltas, yield)
	})
}

// run drains whatever access stream iter yields (twice: a counting
// pass and a fill pass — iter must replay identically).
func (s *Simulator) run(iter func(yield func(*trace.Access))) Stats {
	st := Stats{ChanCycles: make([]uint64, s.cfg.Channels)}
	rs := s.getState()
	defer s.statePool().Put(rs)
	chans := rs.chans
	nchan := uint64(s.cfg.Channels)

	// Pass 1: count bursts per channel (and the global read/write/byte
	// totals, which depend only on burst counts). An access's bursts
	// round-robin the channels starting at its first burst's channel,
	// so each channel gets n/C bursts plus one of the n%C remainder.
	var total int
	iter(func(a *trace.Access) {
		n := s.bursts(a.Bytes)
		total += n
		st.BytesMoved += uint64(n) * uint64(s.cfg.BurstBytes)
		if a.Kind == trace.Write {
			st.Writes += uint64(n)
		} else {
			st.Reads += uint64(n)
		}
		c0 := int(s.dec.burst(a.Addr) % nchan)
		per := n / s.cfg.Channels
		rem := n % s.cfg.Channels
		for c := 0; c < s.cfg.Channels; c++ {
			extra := 0
			if (c-c0+s.cfg.Channels)%s.cfg.Channels < rem {
				extra = 1
			}
			rs.cursors[c] += per + extra
		}
	})
	if total == 0 {
		return st
	}

	// Allocate exact-size queues (reusing pooled buffers) and reset the
	// cursors for the fill pass.
	for c := range chans {
		cnt := rs.cursors[c]
		if cap(chans[c].queue) < cnt {
			chans[c].queue = make([]request, cnt)
		} else {
			chans[c].queue = chans[c].queue[:cnt]
		}
		rs.cursors[c] = 0
	}

	// Pass 2: fill, decoding each burst's bank and row exactly once.
	// Queue order per channel matches the sequential explode order of
	// the input, so scheduling is reproducible.
	iter(func(a *trace.Access) {
		n := s.bursts(a.Bytes)
		burst0 := s.dec.burst(a.Addr)
		for b := 0; b < n; b++ {
			c, bk, row := s.dec.split(burst0 + uint64(b))
			chans[c].queue[rs.cursors[c]] = request{issue: a.Cycle, row: row, bank: bk}
			rs.cursors[c]++
		}
	})

	// Drain. Channels share no state after the explode, so they can
	// run on parallel goroutines; each accumulates into its own
	// chanResult slot.
	if s.sequential || s.cfg.Channels == 1 {
		for ci := range chans {
			rs.results[ci] = s.drainChannel(&chans[ci])
		}
	} else {
		var wg sync.WaitGroup
		for ci := range chans {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				rs.results[ci] = s.drainChannel(&chans[ci])
			}(ci)
		}
		wg.Wait()
	}

	// Merge per-channel results in channel-index order. Every field is
	// a sum or max of per-channel values, so the merged Stats is
	// bit-identical to what a sequential drain produces.
	for ci := range chans {
		r := &rs.results[ci]
		st.ChanCycles[ci] = r.busy
		if r.busy > st.MaxChanBusy {
			st.MaxChanBusy = r.busy
		}
		if r.done > st.Cycles {
			st.Cycles = r.done
		}
		st.RowHits += r.rowHits
		st.RowMisses += r.rowMisses
		st.RowEmpty += r.rowEmpty
		st.Refreshes += r.refreshes
	}
	return st
}

// rescanHits recomputes a bank's open-row candidate: the lowest window
// slot holding a request for (bank b, row). Called lazily when the
// cached candidate goes stale — at most one bank per pick dirties its
// cache, so the amortized cost per burst stays bounded by one cheap
// field-compare sweep (no address decode).
func rescanHits(q []request, head, win int, b int32, row int64) int32 {
	for i := head; i < win; i++ {
		if q[i].bank == b && q[i].row == row {
			return int32(i)
		}
	}
	return hitNone
}

// drainChannel schedules one channel's queue FR-FCFS and returns the
// channel's private statistics, including the cycle at which its last
// burst finishes. The reorder window slides over the queue: the
// selected request is swapped to the window head and the head
// advances, so removal is O(1). The "oldest ready row hit" pick comes
// from per-bank knowledge (channel.hits) instead of a window rescan:
// each bank caches the oldest in-window request targeting its open
// row, the caches are updated as requests enter the window, get
// picked, or flip the open row, and the winning candidate is the
// minimum slot over the ready banks — exactly the request the
// window-scanning scheduler used to find (the golden pick-order test
// pins the equivalence).
func (s *Simulator) drainChannel(ch *channel) chanResult {
	var res chanResult
	var now uint64
	var lastDone uint64
	q := ch.queue
	hits := ch.hits
	head := 0
	win := s.cfg.WindowSize
	if win > len(q) {
		win = len(q)
	}
	// Banks start closed (openRow -1 matches no request), so the
	// initial window registers no candidates and hits[*] == hitNone.
	for head < len(q) {
		// Refresh stall if due.
		if s.cfg.TRefi > 0 && now >= ch.nextRef {
			for i := range ch.banks {
				ch.banks[i].openRow = -1
				if ch.banks[i].readyAt < now+s.cfg.TRfc {
					ch.banks[i].readyAt = now + s.cfg.TRfc
				}
				hits[i] = hitNone // no open rows, so no row-hit candidates
			}
			now += s.cfg.TRfc
			ch.busy += s.cfg.TRfc
			ch.nextRef += s.cfg.TRefi
			ch.refCount++
			continue
		}

		// FR-FCFS rule 1: the oldest in-window row hit whose issue time
		// has arrived, on a bank whose last access has completed. Each
		// open bank contributes its cached oldest open-row request; the
		// lowest slot across banks wins.
		pick := -1
		for b := range ch.banks {
			h := hits[b]
			if h == hitNone {
				continue
			}
			bk := &ch.banks[b]
			if bk.readyAt > now {
				continue
			}
			if h == hitStale {
				h = rescanHits(q, head, win, int32(b), bk.openRow)
				hits[b] = h
				if h == hitNone {
					continue
				}
			}
			cand := int(h)
			if q[cand].issue > now {
				// The oldest open-row request is not issued yet; the
				// rule wants the oldest *issued* one, which may sit
				// further out in the window (rare).
				cand = -1
				for i := int(h) + 1; i < win; i++ {
					if q[i].bank == int32(b) && q[i].row == bk.openRow && q[i].issue <= now {
						cand = i
						break
					}
				}
				if cand < 0 {
					continue
				}
			}
			if pick < 0 || cand < pick {
				pick = cand
			}
		}
		// Rule 2: the oldest ready request regardless of row state.
		if pick < 0 {
			for i := head; i < win; i++ {
				if q[i].issue <= now {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// Nothing ready: jump to the earliest issue time in the window.
			jump := q[head].issue
			for i := head + 1; i < win; i++ {
				if q[i].issue < jump {
					jump = q[i].issue
				}
			}
			if jump <= now {
				jump = now + 1
			}
			now = jump
			continue
		}

		req := q[pick]
		if pick != head {
			// Swap-removal: the head request slides to the freed slot.
			// If it was its bank's cached oldest open-row request (it
			// must be, being the lowest slot of all), the cache no
			// longer knows the oldest — mark it stale.
			moved := q[head]
			q[pick] = moved
			if hits[moved.bank] == int32(head) {
				hits[moved.bank] = hitStale
			}
		}
		if hits[req.bank] == int32(pick) {
			hits[req.bank] = hitStale
		}
		head++

		b := &ch.banks[req.bank]
		start := now
		if b.readyAt > start {
			start = b.readyAt
		}

		var svc uint64
		switch {
		case b.openRow == req.row:
			res.rowHits++
			svc = s.cfg.TCL
		case b.openRow == int64(-1):
			res.rowEmpty++
			svc = s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start
			hits[req.bank] = hitStale // open row changed
		default:
			res.rowMisses++
			// Honor tRAS before precharging the open row.
			if b.activeAt+s.cfg.TRAS > start {
				start = b.activeAt + s.cfg.TRAS
			}
			svc = s.cfg.TRP + s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start + s.cfg.TRP
			hits[req.bank] = hitStale // open row changed
		}
		b.openRow = req.row

		// Slide the window: one slot enters as the head advances.
		// Register it as its bank's candidate if it targets the (just
		// updated) open row and the bank has none cached; a lower
		// cached slot or a stale marker both take precedence.
		if win < len(q) {
			w := &q[win]
			if hits[w.bank] == hitNone && ch.banks[w.bank].openRow == w.row {
				hits[w.bank] = int32(win)
			}
			win++
		}

		// Data bus occupancy serializes bursts on the channel.
		xferStart := start + svc
		if ch.busFree > xferStart {
			xferStart = ch.busFree
		}
		doneAt := xferStart + s.cfg.TBurst
		ch.busFree = doneAt
		b.readyAt = start + svc
		ch.busy += s.cfg.TBurst

		if doneAt > lastDone {
			lastDone = doneAt
		}
		// Advance local time to when the command was accepted so bank
		// timing makes forward progress (commands pipeline; data bus
		// is the throughput limit).
		if start > now {
			now = start
		}
		now += s.cfg.TBurst
	}
	if lastDone < now {
		lastDone = now
	}
	res.busy = ch.busy
	res.refreshes = ch.refCount
	res.done = lastDone
	return res
}
