// Package dram is a multi-channel DDR timing simulator in the spirit
// of Ramulator (paper §IV-A): per-bank row-buffer state, tRCD/tRP/tCL/
// tRAS timing constraints, FR-FCFS scheduling within a bounded request
// window, burst-granular data transfer on a 64-bit bus per channel,
// and periodic refresh. It consumes the access traces produced by the
// memory-protection simulator and reports total cycles and per-channel
// utilization — the quantity behind the paper's Fig. 6 performance
// comparison.
//
// The model is calibrated by bus bandwidth rather than a named DDR
// part: Table II specifies aggregate bandwidth (20 GB/s server,
// 10 GB/s edge) over four 64-bit channels, so each channel's burst
// timing is derived from its share of the aggregate.
//
// The hot path is zero-copy: traces are consumed as trace.Access
// values directly, exploded into exact-size per-channel burst queues
// (counted in a pre-pass, so queues never reallocate mid-fill), and
// the queue buffers are recycled across runs — within one simulator,
// or across the several simulators of a workload sweep via a shared
// Arena. RunOverlay consumes a protection scheme's spine+overlay
// stream pair merged in anchor order, so the scheme-independent data
// stream is never duplicated per scheme. Channels are fully
// independent after the explode step, so they drain on parallel
// goroutines by default; per-channel statistics merge in channel-index
// order, making Stats bit-identical to a sequential drain.
package dram

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// Config describes the memory system geometry and timing (in memory
// controller cycles).
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer size per bank
	BurstBytes   int // bytes transferred per burst (BL8 x 64-bit = 64B)

	// Timing in controller cycles.
	TBurst uint64 // data transfer time of one burst on the bus
	TCL    uint64 // column access (CAS) latency
	TRCD   uint64 // activate-to-read
	TRP    uint64 // precharge
	TRAS   uint64 // minimum row-open time
	TRefi  uint64 // refresh interval (0 = disabled)
	TRfc   uint64 // refresh duration

	// WindowSize bounds the FR-FCFS reorder window per channel.
	WindowSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChan <= 0 || c.RowBytes <= 0 || c.BurstBytes <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", c)
	}
	if c.TBurst == 0 {
		return fmt.Errorf("dram: zero burst time")
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("dram: window size %d <= 0", c.WindowSize)
	}
	return nil
}

// DDR4Like returns a timing template with realistic relative latencies
// for a 64-bit channel; callers scale counts/bandwidth via the NPU
// configs.
func DDR4Like(channels int) Config {
	return Config{
		Channels:     channels,
		BanksPerChan: 16,
		RowBytes:     2048,
		BurstBytes:   64,
		TBurst:       4,
		TCL:          14,
		TRCD:         14,
		TRP:          14,
		TRAS:         32,
		TRefi:        7800,
		TRfc:         350,
		WindowSize:   32,
	}
}

// Stats reports what the memory system did with a trace.
type Stats struct {
	Cycles      uint64 // total controller cycles to drain the trace
	Reads       uint64 // burst-granular read commands
	Writes      uint64 // burst-granular write commands
	RowHits     uint64
	RowMisses   uint64 // row conflicts (precharge + activate)
	RowEmpty    uint64 // activates into an idle bank
	Refreshes   uint64
	BytesMoved  uint64
	ChanCycles  []uint64 // per-channel busy cycles
	MaxChanBusy uint64
}

// RowHitRate returns rowHits / (rowHits+rowMisses+rowEmpty).
func (s Stats) RowHitRate() float64 {
	tot := s.RowHits + s.RowMisses + s.RowEmpty
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

type request struct {
	issue uint64 // earliest schedulable cycle
	addr  uint64
	write bool
}

type bank struct {
	openRow  int64 // -1 = closed
	readyAt  uint64
	activeAt uint64 // when the current row was activated (for tRAS)
}

type channel struct {
	banks    []bank
	busFree  uint64 // next cycle the data bus is free
	busy     uint64 // accumulated busy cycles
	queue    []request
	nextRef  uint64
	refCount uint64
}

// chanResult is one channel's contribution to Stats, accumulated
// privately by its drain goroutine and merged in channel-index order.
type chanResult struct {
	rowHits   uint64
	rowMisses uint64
	rowEmpty  uint64
	busy      uint64
	refreshes uint64
	done      uint64 // cycle the channel's last burst finishes
}

// runState is the per-run scratch memory: channel structs with their
// bank arrays and request queues, plus the per-channel fill cursors.
// States are recycled through Simulator.pool so steady-state RunTrace
// calls allocate only the returned ChanCycles slice.
type runState struct {
	chans   []channel
	cursors []int
	results []chanResult
}

// Arena is a shared pool of per-run scratch states that several
// Simulators with the same geometry can draw from. The six protection
// schemes of one workload each build their own Simulator but run over
// traces of comparable size; pointing them at one Arena lets a queue
// buffer warmed by one scheme be reused by the next instead of every
// scheme growing a private set, cutting peak RSS on wide sweeps.
// Arena is safe for concurrent use.
type Arena struct {
	pool sync.Pool // *runState
}

// NewArena builds an empty shared state pool.
func NewArena() *Arena { return &Arena{} }

// Simulator drains traces through the memory system.
type Simulator struct {
	cfg        Config
	sequential bool
	arena      *Arena    // shared scratch pool, if set
	pool       sync.Pool // private *runState pool otherwise
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetSequentialDrain forces channels to drain one after another on the
// calling goroutine instead of in parallel. Results are bit-identical
// either way; the switch exists for determinism tests and debugging.
func (s *Simulator) SetSequentialDrain(v bool) { s.sequential = v }

// SetArena points the simulator at a shared scratch pool. Simulators
// sharing an arena should have the same geometry; a pooled state whose
// geometry does not match the configuration is discarded and rebuilt,
// so mixing geometries is safe but defeats the reuse.
func (s *Simulator) SetArena(a *Arena) { s.arena = a }

// statePool returns the pool run states are drawn from and returned to.
func (s *Simulator) statePool() *sync.Pool {
	if s.arena != nil {
		return &s.arena.pool
	}
	return &s.pool
}

// getState fetches (or builds) a runState sized for the configuration
// and resets the parts a previous run dirtied. Queue buffers keep
// their capacity across runs, so per-layer traces of similar size
// explode without reallocating.
func (s *Simulator) getState() *runState {
	if v := s.statePool().Get(); v != nil {
		st := v.(*runState)
		if len(st.chans) != s.cfg.Channels ||
			(len(st.chans) > 0 && len(st.chans[0].banks) != s.cfg.BanksPerChan) {
			// Arena shared across mismatched geometries: rebuild below.
			st = nil
		}
		if st != nil {
			for i := range st.chans {
				ch := &st.chans[i]
				for j := range ch.banks {
					ch.banks[j] = bank{openRow: -1}
				}
				ch.busFree = 0
				ch.busy = 0
				ch.queue = ch.queue[:0]
				ch.nextRef = s.cfg.TRefi
				ch.refCount = 0
				st.cursors[i] = 0
				st.results[i] = chanResult{}
			}
			return st
		}
	}
	st := &runState{
		chans:   make([]channel, s.cfg.Channels),
		cursors: make([]int, s.cfg.Channels),
		results: make([]chanResult, s.cfg.Channels),
	}
	for i := range st.chans {
		banks := make([]bank, s.cfg.BanksPerChan)
		for j := range banks {
			banks[j].openRow = -1 // all banks closed until first activate
		}
		st.chans[i].banks = banks
		st.chans[i].nextRef = s.cfg.TRefi
	}
	return st
}

// mapAddr splits a byte address into channel, bank and row using
// burst-interleaved channel mapping (consecutive bursts hit different
// channels, the usual high-bandwidth NPU layout).
func (s *Simulator) mapAddr(addr uint64) (ch, bk int, row int64) {
	burst := addr / uint64(s.cfg.BurstBytes)
	ch = int(burst % uint64(s.cfg.Channels))
	perChan := burst / uint64(s.cfg.Channels)
	burstsPerRow := uint64(s.cfg.RowBytes / s.cfg.BurstBytes)
	rowGlobal := perChan / burstsPerRow
	bk = int(rowGlobal % uint64(s.cfg.BanksPerChan))
	row = int64(rowGlobal / uint64(s.cfg.BanksPerChan))
	return ch, bk, row
}

// bursts returns how many bursts an access occupies.
func (s *Simulator) bursts(bytes uint32) int {
	n := int(bytes+uint32(s.cfg.BurstBytes)-1) / s.cfg.BurstBytes
	if n == 0 {
		n = 1
	}
	return n
}

// RunTrace drains a trace through the memory system. The trace is
// consumed in place — no intermediate representation is built.
func (s *Simulator) RunTrace(t *trace.Trace) Stats { return s.RunAccesses(t.Accesses) }

// RunAccesses drains a raw access slice and returns timing statistics.
// Requests are split into bursts, distributed to exact-size per-channel
// queues (burst counts are computed in a pre-pass so the fill never
// reallocates), and each channel is scheduled FR-FCFS (row hits first
// within the window, else oldest). Channels drain concurrently unless
// SetSequentialDrain was called; statistics merge deterministically.
func (s *Simulator) RunAccesses(accesses []trace.Access) Stats {
	return s.run(func(yield func(*trace.Access)) {
		for i := range accesses {
			yield(&accesses[i])
		}
	})
}

// RunOverlay drains the merge of a shared data spine and a scheme's
// overlay deltas, interleaved in anchor order, without materializing
// the combined trace: both explode passes walk the two streams in
// place. Stats are bit-identical to RunTrace over the materialized
// merge (see TestRunOverlayMatchesMaterialized).
func (s *Simulator) RunOverlay(spine *trace.Trace, deltas *trace.Overlay) Stats {
	return s.run(func(yield func(*trace.Access)) {
		trace.ForEachMerged(spine, deltas, yield)
	})
}

// run drains whatever access stream iter yields (twice: a counting
// pass and a fill pass — iter must replay identically).
func (s *Simulator) run(iter func(yield func(*trace.Access))) Stats {
	st := Stats{ChanCycles: make([]uint64, s.cfg.Channels)}
	rs := s.getState()
	defer s.statePool().Put(rs)
	chans := rs.chans
	nchan := uint64(s.cfg.Channels)

	// Pass 1: count bursts per channel (and the global read/write/byte
	// totals, which depend only on burst counts). An access's bursts
	// round-robin the channels starting at its first burst's channel,
	// so each channel gets n/C bursts plus one of the n%C remainder.
	var total int
	iter(func(a *trace.Access) {
		n := s.bursts(a.Bytes)
		total += n
		st.BytesMoved += uint64(n) * uint64(s.cfg.BurstBytes)
		if a.Kind == trace.Write {
			st.Writes += uint64(n)
		} else {
			st.Reads += uint64(n)
		}
		c0 := int((a.Addr / uint64(s.cfg.BurstBytes)) % nchan)
		per := n / s.cfg.Channels
		rem := n % s.cfg.Channels
		for c := 0; c < s.cfg.Channels; c++ {
			extra := 0
			if (c-c0+s.cfg.Channels)%s.cfg.Channels < rem {
				extra = 1
			}
			rs.cursors[c] += per + extra
		}
	})
	if total == 0 {
		return st
	}

	// Allocate exact-size queues (reusing pooled buffers) and reset the
	// cursors for the fill pass.
	for c := range chans {
		cnt := rs.cursors[c]
		if cap(chans[c].queue) < cnt {
			chans[c].queue = make([]request, cnt)
		} else {
			chans[c].queue = chans[c].queue[:cnt]
		}
		rs.cursors[c] = 0
	}

	// Pass 2: fill. Queue order per channel matches the sequential
	// explode order of the input, so scheduling is reproducible.
	iter(func(a *trace.Access) {
		n := s.bursts(a.Bytes)
		write := a.Kind == trace.Write
		for b := 0; b < n; b++ {
			addr := a.Addr + uint64(b*s.cfg.BurstBytes)
			c := (addr / uint64(s.cfg.BurstBytes)) % nchan
			chans[c].queue[rs.cursors[c]] = request{issue: a.Cycle, addr: addr, write: write}
			rs.cursors[c]++
		}
	})

	// Drain. Channels share no state after the explode, so they can
	// run on parallel goroutines; each accumulates into its own
	// chanResult slot.
	if s.sequential || s.cfg.Channels == 1 {
		for ci := range chans {
			rs.results[ci] = s.drainChannel(&chans[ci])
		}
	} else {
		var wg sync.WaitGroup
		for ci := range chans {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				rs.results[ci] = s.drainChannel(&chans[ci])
			}(ci)
		}
		wg.Wait()
	}

	// Merge per-channel results in channel-index order. Every field is
	// a sum or max of per-channel values, so the merged Stats is
	// bit-identical to what a sequential drain produces.
	for ci := range chans {
		r := &rs.results[ci]
		st.ChanCycles[ci] = r.busy
		if r.busy > st.MaxChanBusy {
			st.MaxChanBusy = r.busy
		}
		if r.done > st.Cycles {
			st.Cycles = r.done
		}
		st.RowHits += r.rowHits
		st.RowMisses += r.rowMisses
		st.RowEmpty += r.rowEmpty
		st.Refreshes += r.refreshes
	}
	return st
}

// drainChannel schedules one channel's queue FR-FCFS and returns the
// channel's private statistics, including the cycle at which its last
// burst finishes. The reorder window slides over the queue: the
// selected request is swapped to the window head and the head
// advances, so selection is O(window) and removal O(1).
func (s *Simulator) drainChannel(ch *channel) chanResult {
	var res chanResult
	var now uint64
	var lastDone uint64
	q := ch.queue
	head := 0
	for head < len(q) {
		// Refresh stall if due.
		if s.cfg.TRefi > 0 && now >= ch.nextRef {
			for i := range ch.banks {
				ch.banks[i].openRow = -1
				if ch.banks[i].readyAt < now+s.cfg.TRfc {
					ch.banks[i].readyAt = now + s.cfg.TRfc
				}
			}
			now += s.cfg.TRfc
			ch.busy += s.cfg.TRfc
			ch.nextRef += s.cfg.TRefi
			ch.refCount++
			continue
		}

		// FR-FCFS: among the window, prefer the oldest row hit whose
		// issue time has arrived; otherwise the oldest ready request;
		// otherwise advance time.
		win := head + s.cfg.WindowSize
		if win > len(q) {
			win = len(q)
		}
		pick := -1
		for i := head; i < win; i++ {
			if q[i].issue > now {
				continue
			}
			_, bk, row := s.mapAddr(q[i].addr)
			if ch.banks[bk].openRow == row && ch.banks[bk].readyAt <= now {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := head; i < win; i++ {
				if q[i].issue <= now {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// Nothing ready: jump to the earliest issue time in the window.
			jump := q[head].issue
			for i := head + 1; i < win; i++ {
				if q[i].issue < jump {
					jump = q[i].issue
				}
			}
			if jump <= now {
				jump = now + 1
			}
			now = jump
			continue
		}

		req := q[pick]
		q[pick] = q[head]
		head++

		_, bk, row := s.mapAddr(req.addr)
		b := &ch.banks[bk]
		start := now
		if b.readyAt > start {
			start = b.readyAt
		}

		var svc uint64
		switch {
		case b.openRow == row:
			res.rowHits++
			svc = s.cfg.TCL
		case b.openRow == int64(-1):
			res.rowEmpty++
			svc = s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start
		default:
			res.rowMisses++
			// Honor tRAS before precharging the open row.
			if b.activeAt+s.cfg.TRAS > start {
				start = b.activeAt + s.cfg.TRAS
			}
			svc = s.cfg.TRP + s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start + s.cfg.TRP
		}
		b.openRow = row

		// Data bus occupancy serializes bursts on the channel.
		xferStart := start + svc
		if ch.busFree > xferStart {
			xferStart = ch.busFree
		}
		doneAt := xferStart + s.cfg.TBurst
		ch.busFree = doneAt
		b.readyAt = start + svc
		ch.busy += s.cfg.TBurst

		if doneAt > lastDone {
			lastDone = doneAt
		}
		// Advance local time to when the command was accepted so bank
		// timing makes forward progress (commands pipeline; data bus
		// is the throughput limit).
		if start > now {
			now = start
		}
		now += s.cfg.TBurst
	}
	if lastDone < now {
		lastDone = now
	}
	res.busy = ch.busy
	res.refreshes = ch.refCount
	res.done = lastDone
	return res
}
