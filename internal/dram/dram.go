// Package dram is a multi-channel DDR timing simulator in the spirit
// of Ramulator (paper §IV-A): per-bank row-buffer state, tRCD/tRP/tCL/
// tRAS timing constraints, FR-FCFS scheduling within a bounded request
// window, burst-granular data transfer on a 64-bit bus per channel,
// and periodic refresh. It consumes the access traces produced by the
// memory-protection simulator and reports total cycles and per-channel
// utilization — the quantity behind the paper's Fig. 6 performance
// comparison.
//
// The model is calibrated by bus bandwidth rather than a named DDR
// part: Table II specifies aggregate bandwidth (20 GB/s server,
// 10 GB/s edge) over four 64-bit channels, so each channel's burst
// timing is derived from its share of the aggregate.
//
// The hot path is zero-copy, decode-once and queue-free: traces are
// consumed as trace.Access values directly and exploded into exact-size
// per-channel *span* queues — run-length-encoded stretches of bursts
// sharing (issue, bank, row), counted in a pre-pass so the fill never
// reallocates. Bank and row are decoded once per row span rather than
// once per burst (the burst-interleaved mapping keeps them constant
// for channels × burstsPerRow consecutive bursts), and the scheduler
// expands spans lazily into a WindowSize ring, so the per-burst queue
// the seed materialized — gigabytes of request structs on a full sweep
// — never exists. Within drainChannel a fast path takes the window
// head outright when it is an issued row hit on a ready bank (the
// common case on streaming traces); otherwise the FR-FCFS pick comes
// from per-bank knowledge: each bank tracks the oldest in-window
// request targeting its open row, so the "oldest ready row hit, else
// oldest ready, else time-jump" decision does not rescan the window
// per burst. Both tiers remain bit-identical to the window-scanning
// scheduler they replaced (TestFRFCFSGoldenPickOrder pins the pick
// order). Span buffers are recycled across runs — within one
// simulator, or across the several simulators of a workload sweep via
// a shared Arena. RunOverlay consumes a protection scheme's
// spine+overlay stream pair merged in anchor order, so the
// scheme-independent data stream is never duplicated per scheme.
// Channels are fully independent after the explode step, so they drain
// on parallel goroutines by default; per-channel statistics merge in
// channel-index order, making Stats bit-identical to a sequential
// drain.
package dram

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Config describes the memory system geometry and timing (in memory
// controller cycles).
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer size per bank
	BurstBytes   int // bytes transferred per burst (BL8 x 64-bit = 64B)

	// Timing in controller cycles.
	TBurst uint64 // data transfer time of one burst on the bus
	TCL    uint64 // column access (CAS) latency
	TRCD   uint64 // activate-to-read
	TRP    uint64 // precharge
	TRAS   uint64 // minimum row-open time
	TRefi  uint64 // refresh interval (0 = disabled)
	TRfc   uint64 // refresh duration

	// WindowSize bounds the FR-FCFS reorder window per channel.
	WindowSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChan <= 0 || c.RowBytes <= 0 || c.BurstBytes <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", c)
	}
	if c.TBurst == 0 {
		return fmt.Errorf("dram: zero burst time")
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("dram: window size %d <= 0", c.WindowSize)
	}
	if c.RowBytes < c.BurstBytes {
		return fmt.Errorf("dram: row size %d below burst size %d", c.RowBytes, c.BurstBytes)
	}
	return nil
}

// DDR4Like returns a timing template with realistic relative latencies
// for a 64-bit channel; callers scale counts/bandwidth via the NPU
// configs.
func DDR4Like(channels int) Config {
	return Config{
		Channels:     channels,
		BanksPerChan: 16,
		RowBytes:     2048,
		BurstBytes:   64,
		TBurst:       4,
		TCL:          14,
		TRCD:         14,
		TRP:          14,
		TRAS:         32,
		TRefi:        7800,
		TRfc:         350,
		WindowSize:   32,
	}
}

// Stats reports what the memory system did with a trace.
type Stats struct {
	Cycles      uint64 // total controller cycles to drain the trace
	Reads       uint64 // burst-granular read commands
	Writes      uint64 // burst-granular write commands
	RowHits     uint64
	RowMisses   uint64 // row conflicts (precharge + activate)
	RowEmpty    uint64 // activates into an idle bank
	Refreshes   uint64
	BytesMoved  uint64
	ChanCycles  []uint64 // per-channel busy cycles
	MaxChanBusy uint64
}

// RowHitRate returns rowHits / (rowHits+rowMisses+rowEmpty).
func (s Stats) RowHitRate() float64 {
	tot := s.RowHits + s.RowMisses + s.RowEmpty
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

// request is one burst, fully decoded at explode time: the channel is
// implicit in which queue it lands in, and bank/row are computed once
// so the scheduler's inner loop never touches an address again. The
// read/write distinction is not stored — the timing model charges
// reads and writes identically, and the Stats totals are counted in
// the explode's first pass.
type request struct {
	issue uint64 // earliest schedulable cycle
	row   int64
	bank  int32
}

// span is a run-length-encoded stretch of a channel's burst queue:
// count consecutive bursts with identical (issue, bank, row). Under
// the burst-interleaved address mapping a contiguous access keeps
// (bank, row) constant for channels × burstsPerRow consecutive global
// bursts, so a multi-kilobyte tensor run collapses to one span per
// channel per row crossed instead of one queue entry per burst. The
// scheduler expands spans into its bounded reorder window on demand —
// the full per-burst queue is never materialized.
type span struct {
	issue uint64
	row   int64
	bank  int32
	count int32
}

type bank struct {
	openRow  int64 // -1 = closed
	readyAt  uint64
	activeAt uint64 // when the current row was activated (for tRAS)
}

// Sentinels for channel.hits, the per-bank open-row candidate cache.
const (
	hitNone  int32 = -1 // no in-window request targets the bank's open row
	hitStale int32 = -2 // candidate unknown; rescan the window on next use
)

// pollCycles is the simulated-cycle interval between cancellation
// polls in drainChannel. Picks advance the clock by at least TBurst,
// so 4M cycles bounds the poll gap at ~1–2M picks — sub-millisecond
// wall time — while keeping the poll off the per-pick path entirely
// (it shares the refresh check's compare; see drainChannel).
const pollCycles = 1 << 22

type channel struct {
	banks []bank
	// hits[b] is the lowest in-window queue slot holding a request for
	// bank b's currently open row (or a sentinel). It is maintained
	// incrementally as requests enter the window, are picked, or change
	// the open row, so the FR-FCFS "oldest ready row hit" is found by
	// scanning banks instead of rescanning the window.
	hits    []int32
	busFree uint64 // next cycle the data bus is free
	busy    uint64 // accumulated busy cycles
	// spans is the run-length-encoded burst queue; total is the burst
	// count it expands to. window is the scheduler's ring buffer
	// (power-of-two capacity >= WindowSize), holding the expanded
	// requests of queue slots [head, win) at index slot&(cap-1).
	spans    []span
	total    int
	window   []request
	nextRef  uint64
	refCount uint64
}

// chanResult is one channel's contribution to Stats, accumulated
// privately by its drain goroutine and merged in channel-index order.
type chanResult struct {
	rowHits   uint64
	rowMisses uint64
	rowEmpty  uint64
	busy      uint64
	refreshes uint64
	done      uint64 // cycle the channel's last burst finishes
	aborted   bool   // drain stopped early on context cancellation
}

// runState is the per-run scratch memory: channel structs with their
// bank arrays, span queues and window rings, plus the per-channel fill
// cursors.
// States are recycled through Simulator.pool so steady-state RunTrace
// calls allocate only the returned ChanCycles slice.
type runState struct {
	chans   []channel
	cursors []int
	results []chanResult
}

// Arena is a shared pool of per-run scratch states that several
// Simulators with the same geometry can draw from. The six protection
// schemes of one workload each build their own Simulator but run over
// traces of comparable size; pointing them at one Arena lets a span
// buffer warmed by one scheme be reused by the next instead of every
// scheme growing a private set, cutting peak RSS on wide sweeps.
// Arena is safe for concurrent use.
type Arena struct {
	pool sync.Pool // *runState
}

// NewArena builds an empty shared state pool.
func NewArena() *Arena { return &Arena{} }

// decoder splits byte addresses into (channel, bank, row) with the
// burst-interleaved mapping. The geometry is folded into shift/mask
// constants when every component is a power of two (DDR4Like always
// is); otherwise it falls back to the division form. Both forms
// produce identical mappings — the fast path is bit-for-bit the same
// arithmetic, just strength-reduced.
type decoder struct {
	pow2       bool
	burstShift uint
	chanShift  uint
	chanMask   uint64
	rowShift   uint // log2(bursts per row)
	bankShift  uint
	bankMask   uint64

	burstBytes   uint64
	channels     uint64
	burstsPerRow uint64
	banks        uint64
}

func newDecoder(c Config) decoder {
	d := decoder{
		burstBytes:   uint64(c.BurstBytes),
		channels:     uint64(c.Channels),
		burstsPerRow: uint64(c.RowBytes / c.BurstBytes),
		banks:        uint64(c.BanksPerChan),
	}
	pow2 := func(v uint64) bool { return bits.OnesCount64(v) == 1 }
	if pow2(d.burstBytes) && pow2(d.channels) && pow2(d.burstsPerRow) && pow2(d.banks) {
		d.pow2 = true
		d.burstShift = uint(bits.TrailingZeros64(d.burstBytes))
		d.chanShift = uint(bits.TrailingZeros64(d.channels))
		d.chanMask = d.channels - 1
		d.rowShift = uint(bits.TrailingZeros64(d.burstsPerRow))
		d.bankShift = uint(bits.TrailingZeros64(d.banks))
		d.bankMask = d.banks - 1
	}
	return d
}

// burst returns the global burst index of a byte address.
func (d *decoder) burst(addr uint64) uint64 {
	if d.pow2 {
		return addr >> d.burstShift
	}
	return addr / d.burstBytes
}

// split decodes a global burst index into channel, bank and row.
func (d *decoder) split(burst uint64) (ch uint64, bk int32, row int64) {
	if d.pow2 {
		ch = burst & d.chanMask
		rowGlobal := (burst >> d.chanShift) >> d.rowShift
		return ch, int32(rowGlobal & d.bankMask), int64(rowGlobal >> d.bankShift)
	}
	ch = burst % d.channels
	rowGlobal := (burst / d.channels) / d.burstsPerRow
	return ch, int32(rowGlobal % d.banks), int64(rowGlobal / d.banks)
}

// Simulator drains traces through the memory system.
type Simulator struct {
	cfg        Config
	dec        decoder
	sequential bool
	arena      *Arena    // shared scratch pool, if set
	pool       sync.Pool // private *runState pool otherwise
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, dec: newDecoder(cfg)}, nil
}

// Config returns the configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetSequentialDrain forces channels to drain one after another on the
// calling goroutine instead of in parallel. Results are bit-identical
// either way; the switch exists for determinism tests and debugging.
func (s *Simulator) SetSequentialDrain(v bool) { s.sequential = v }

// SetArena points the simulator at a shared scratch pool. Simulators
// sharing an arena should have the same geometry; a pooled state whose
// geometry does not match the configuration is discarded and rebuilt,
// so mixing geometries is safe but defeats the reuse.
func (s *Simulator) SetArena(a *Arena) { s.arena = a }

// statePool returns the pool run states are drawn from and returned to.
func (s *Simulator) statePool() *sync.Pool {
	if s.arena != nil {
		return &s.arena.pool
	}
	return &s.pool
}

// windowCap returns the scheduler ring capacity: the smallest power of
// two holding WindowSize requests, so ring indexing is a mask instead
// of a modulo.
func (s *Simulator) windowCap() int {
	c := 1
	for c < s.cfg.WindowSize {
		c <<= 1
	}
	return c
}

// getState fetches (or builds) a runState sized for the configuration
// and resets the parts a previous run dirtied. Span buffers keep
// their capacity across runs, so per-layer traces of similar size
// explode without reallocating.
func (s *Simulator) getState() *runState {
	if v := s.statePool().Get(); v != nil {
		st := v.(*runState)
		if len(st.chans) != s.cfg.Channels ||
			(len(st.chans) > 0 && (len(st.chans[0].banks) != s.cfg.BanksPerChan ||
				len(st.chans[0].window) != s.windowCap())) {
			// Arena shared across mismatched geometries: rebuild below.
			st = nil
		}
		if st != nil {
			for i := range st.chans {
				ch := &st.chans[i]
				for j := range ch.banks {
					ch.banks[j] = bank{openRow: -1}
					ch.hits[j] = hitNone
				}
				ch.busFree = 0
				ch.busy = 0
				ch.spans = ch.spans[:0]
				ch.total = 0
				ch.nextRef = s.cfg.TRefi
				ch.refCount = 0
				st.cursors[i] = 0
				st.results[i] = chanResult{}
			}
			return st
		}
	}
	st := &runState{
		chans:   make([]channel, s.cfg.Channels),
		cursors: make([]int, s.cfg.Channels),
		results: make([]chanResult, s.cfg.Channels),
	}
	for i := range st.chans {
		banks := make([]bank, s.cfg.BanksPerChan)
		hits := make([]int32, s.cfg.BanksPerChan)
		for j := range banks {
			banks[j].openRow = -1 // all banks closed until first activate
			hits[j] = hitNone
		}
		st.chans[i].banks = banks
		st.chans[i].hits = hits
		st.chans[i].window = make([]request, s.windowCap())
		st.chans[i].nextRef = s.cfg.TRefi
	}
	return st
}

// bursts returns how many bursts an access occupies.
func (s *Simulator) bursts(bytes uint32) int {
	n := int(bytes+uint32(s.cfg.BurstBytes)-1) / s.cfg.BurstBytes
	if n == 0 {
		n = 1
	}
	return n
}

// RunTrace drains a trace through the memory system. The trace is
// consumed in place — no intermediate representation is built.
func (s *Simulator) RunTrace(t *trace.Trace) Stats { return s.RunAccesses(t.Accesses) }

// RunAccesses drains a raw access slice and returns timing statistics.
// Requests are split into bursts, distributed to exact-size per-channel
// queues (burst counts are computed in a pre-pass so the fill never
// reallocates), and each channel is scheduled FR-FCFS (row hits first
// within the window, else oldest). Channels drain concurrently unless
// SetSequentialDrain was called; statistics merge deterministically.
func (s *Simulator) RunAccesses(accesses []trace.Access) Stats {
	st, _ := s.RunAccessesCtx(context.Background(), accesses)
	return st
}

// RunAccessesCtx is RunAccesses under a context: the drain loops check
// ctx cooperatively (every few thousand scheduler picks, between
// explode passes) and abandon the run, returning ctx.Err(), once it is
// cancelled. A cancelled run's Stats are meaningless and must not be
// used.
func (s *Simulator) RunAccessesCtx(ctx context.Context, accesses []trace.Access) (Stats, error) {
	return s.run(ctx, func(yield func(*trace.Access)) {
		for i := range accesses {
			yield(&accesses[i])
		}
	})
}

// RunOverlay drains the merge of a shared data spine and a scheme's
// overlay deltas, interleaved in anchor order, without materializing
// the combined trace: both explode passes walk the two streams in
// place. Stats are bit-identical to RunTrace over the materialized
// merge (see TestRunOverlayMatchesMaterialized).
func (s *Simulator) RunOverlay(spine *trace.Trace, deltas *trace.Overlay) Stats {
	st, _ := s.RunOverlayCtx(context.Background(), spine, deltas)
	return st
}

// RunOverlayCtx is RunOverlay under a context, with the cooperative
// cancellation behavior of RunAccessesCtx.
func (s *Simulator) RunOverlayCtx(ctx context.Context, spine *trace.Trace, deltas *trace.Overlay) (Stats, error) {
	return s.run(ctx, func(yield func(*trace.Access)) {
		trace.ForEachMerged(spine, deltas, yield)
	})
}

// run drains whatever access stream iter yields (twice: a counting
// pass and a fill pass — iter must replay identically). Cancellation
// is checked between the explode passes and periodically inside each
// channel drain; an uncancellable context (Done() == nil, e.g.
// context.Background) adds no work to the hot loop beyond one nil
// compare per check.
func (s *Simulator) run(ctx context.Context, iter func(yield func(*trace.Access))) (Stats, error) {
	// One span per drain, opened before the explode passes: the span
	// machinery must stay out of the per-pick loops (an earlier
	// per-pick ctx poll cost ~20% on BenchmarkRunTrace; see PR 6).
	osp := obs.StartChild(ctx, obs.StageDRAMDrain)
	defer osp.End()
	st := Stats{ChanCycles: make([]uint64, s.cfg.Channels)}
	rs := s.getState()
	defer s.statePool().Put(rs)
	chans := rs.chans
	nchan := uint64(s.cfg.Channels)
	done := ctx.Done()

	// Pass 1: count span entries and bursts per channel (and the global
	// read/write/byte totals, which depend only on burst counts). An
	// access's bursts round-robin the channels starting at its first
	// burst's channel, while (bank, row) stays constant across a *row
	// span* of channels × burstsPerRow consecutive global bursts — so
	// the queue is sized in spans, one entry per channel per row span
	// touched, and each channel's burst total accumulates separately.
	// The divisions below reproduce decoder.split exactly: for
	// power-of-two geometries they are the same arithmetic the
	// shift/mask form strength-reduces.
	spanBursts := s.dec.channels * s.dec.burstsPerRow
	var total int
	iter(func(a *trace.Access) {
		n := s.bursts(a.Bytes)
		total += n
		st.BytesMoved += uint64(n) * uint64(s.cfg.BurstBytes)
		if a.Kind == trace.Write {
			st.Writes += uint64(n)
		} else {
			st.Reads += uint64(n)
		}
		b := s.dec.burst(a.Addr)
		end := b + uint64(n)
		for b < end {
			spanEnd := (b/spanBursts + 1) * spanBursts
			if spanEnd > end {
				spanEnd = end
			}
			count := spanEnd - b
			if count < nchan {
				for i := b; i < spanEnd; i++ {
					c := i % nchan
					rs.cursors[c]++
					chans[c].total++
				}
			} else {
				c0 := b % nchan
				per := count / nchan
				rem := count % nchan
				for c := uint64(0); c < nchan; c++ {
					k := per
					if (c+nchan-c0)%nchan < rem {
						k++
					}
					if k > 0 {
						rs.cursors[c]++
						chans[c].total += int(k)
					}
				}
			}
			b = spanEnd
		}
	})
	if total == 0 {
		return st, ctx.Err()
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			return Stats{}, err
		}
	}

	// Allocate exact-size span queues (reusing pooled buffers) and
	// reset the cursors for the fill pass.
	for c := range chans {
		cnt := rs.cursors[c]
		if cap(chans[c].spans) < cnt {
			chans[c].spans = make([]span, cnt)
		} else {
			chans[c].spans = chans[c].spans[:cnt]
		}
		rs.cursors[c] = 0
	}

	// Pass 2: fill, decoding bank and row once per row span instead of
	// once per burst, and appending one run-length-encoded span entry
	// per channel instead of per-burst queue slots. The expanded
	// per-channel burst sequence — what the scheduler consumes through
	// its ring window — is bit-identical to the per-burst explode this
	// replaces: within a span every request is the same value, and
	// spans (and accesses) fill in burst order.
	//
	// The span-partition and round-robin arithmetic below deliberately
	// mirrors pass 1 line for line (a shared helper would put an
	// indirect call in the hottest loop of the repo): any edit to one
	// pass must be made to both, and a desync fails loudly — the
	// cursors index past the counted span slice on the first trace the
	// tests explode.
	iter(func(a *trace.Access) {
		b := s.dec.burst(a.Addr)
		end := b + uint64(s.bursts(a.Bytes))
		for b < end {
			rowGlobal := b / spanBursts
			sp := span{
				issue: a.Cycle,
				row:   int64(rowGlobal / s.dec.banks),
				bank:  int32(rowGlobal % s.dec.banks),
				count: 1,
			}
			spanEnd := (rowGlobal + 1) * spanBursts
			if spanEnd > end {
				spanEnd = end
			}
			count := spanEnd - b
			if count < nchan {
				// Short span (metadata-line accesses): one burst per
				// channel at most.
				for i := b; i < spanEnd; i++ {
					c := i % nchan
					chans[c].spans[rs.cursors[c]] = sp
					rs.cursors[c]++
				}
			} else {
				c0 := b % nchan
				per := count / nchan
				rem := count % nchan
				for c := uint64(0); c < nchan; c++ {
					k := per
					if (c+nchan-c0)%nchan < rem {
						k++
					}
					if k > 0 {
						sp.count = int32(k)
						chans[c].spans[rs.cursors[c]] = sp
						rs.cursors[c]++
					}
				}
			}
			b = spanEnd
		}
	})

	// Drain. Channels share no state after the explode, so they can
	// run on parallel goroutines; each accumulates into its own
	// chanResult slot. Every channel observes the same done channel, so
	// a cancellation stops all of them within one check interval.
	if s.sequential || s.cfg.Channels == 1 {
		for ci := range chans {
			rs.results[ci] = s.drainChannel(&chans[ci], done)
			if rs.results[ci].aborted {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for ci := range chans {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				rs.results[ci] = s.drainChannel(&chans[ci], done)
			}(ci)
		}
		wg.Wait()
	}

	// Merge per-channel results in channel-index order. Every field is
	// a sum or max of per-channel values, so the merged Stats is
	// bit-identical to what a sequential drain produces.
	for ci := range chans {
		r := &rs.results[ci]
		if r.aborted {
			return Stats{}, ctx.Err()
		}
		st.ChanCycles[ci] = r.busy
		if r.busy > st.MaxChanBusy {
			st.MaxChanBusy = r.busy
		}
		if r.done > st.Cycles {
			st.Cycles = r.done
		}
		st.RowHits += r.rowHits
		st.RowMisses += r.rowMisses
		st.RowEmpty += r.rowEmpty
		st.Refreshes += r.refreshes
	}
	return st, nil
}

// rescanHits recomputes a bank's open-row candidate: the lowest window
// slot holding a request for (bank b, row). Called lazily when the
// cached candidate goes stale — at most one bank per pick dirties its
// cache, so the amortized cost per burst stays bounded by one cheap
// field-compare sweep over the ring window (no address decode).
func rescanHits(wq []request, mask, head, win int, b int32, row int64) int32 {
	for i := head; i < win; i++ {
		r := &wq[i&mask]
		if r.bank == b && r.row == row {
			return int32(i)
		}
	}
	return hitNone
}

// drainChannel schedules one channel's queue FR-FCFS and returns the
// channel's private statistics, including the cycle at which its last
// burst finishes. The queue arrives run-length encoded (channel.spans)
// and is expanded lazily into a small ring window of WindowSize
// requests: slots carry absolute queue indices [head, win) and live at
// index slot&mask, so the scheduler's state fits in the cache while
// the per-burst queue is never materialized. The selected request is
// swapped to the window head and the head advances, so removal is
// O(1). Picks resolve in two tiers: a fast path takes the window head
// outright when it is an issued row hit on a ready bank — the head is
// the lowest slot any rule can return, so nothing can beat it — which
// covers the long same-row streaks streaming traces are made of.
// Otherwise the FR-FCFS "oldest ready row hit" comes from per-bank
// knowledge (channel.hits): each bank caches the oldest in-window
// request targeting its open row, the caches are updated as requests
// enter the window, get picked, or flip the open row, and the winning
// candidate is the minimum slot over the ready banks — exactly the
// request the window-scanning scheduler used to find (the golden
// pick-order test pins the equivalence).
//
// done, when non-nil, is the run context's cancellation channel. The
// poll rides the refresh compare the loop already pays: nextPause is
// the earlier of the next refresh and the next poll cycle, so the hot
// path keeps its single uint64 compare per pick and a cancellation is
// noticed within pollCycles of simulated time (sub-millisecond wall
// time). A nil done leaves nextPoll at maxUint64 and the loop is
// instruction-identical to the uncancellable version.
func (s *Simulator) drainChannel(ch *channel, done <-chan struct{}) chanResult {
	var res chanResult
	var now uint64
	var lastDone uint64
	spans := ch.spans
	total := ch.total
	wq := ch.window
	mask := len(wq) - 1
	hits := ch.hits
	head := 0
	// candMask has bit b set iff hits[b] != hitNone, so the rule-1
	// sweep visits only banks that might contribute a candidate — on
	// bank-latency-limited streams (one active bank, its candidate
	// consumed by every pick) the sweep disappears entirely. Maintained
	// at every hits transition; usable only while the bank count fits
	// the word (always, for DDR4-like geometries).
	useCandMask := len(ch.banks) <= 64
	var candMask uint64

	// Expansion cursor: cur is the request value of the span currently
	// being expanded, rem its unexpanded burst count, si the index of
	// the *next* span. Caching the expanded value keeps the slide step
	// at one store, one decrement and one branch per burst.
	si := 0
	var cur request
	rem := int32(0)
	if len(spans) > 0 {
		cur = request{issue: spans[0].issue, row: spans[0].row, bank: spans[0].bank}
		rem = spans[0].count
		si = 1
	}
	win := s.cfg.WindowSize
	if win > total {
		win = total
	}
	// Pause schedule: the loop stops for a refresh every TRefi cycles
	// and (when cancellable) for a done poll every pollCycles; both
	// funnel through one threshold so the common iteration pays exactly
	// the compare the refresh check always cost.
	const noPause = ^uint64(0)
	nextRef, nextPoll := noPause, noPause
	if s.cfg.TRefi > 0 {
		nextRef = ch.nextRef
	}
	if done != nil {
		nextPoll = pollCycles
	}
	nextPause := min(nextRef, nextPoll)
	// Banks start closed (openRow -1 matches no request), so the
	// initial window registers no candidates and hits[*] == hitNone.
	for i := 0; i < win; i++ {
		wq[i] = cur
		rem--
		if rem == 0 && si < len(spans) {
			sp := &spans[si]
			cur = request{issue: sp.issue, row: sp.row, bank: sp.bank}
			rem = sp.count
			si++
		}
	}
	for head < total {
		if now >= nextPause {
			if now >= nextPoll {
				select {
				case <-done:
					res.aborted = true
					return res
				default:
				}
				nextPoll = now + pollCycles
			}
			// Refresh stall if due.
			if now >= nextRef {
				for i := range ch.banks {
					ch.banks[i].openRow = -1
					if ch.banks[i].readyAt < now+s.cfg.TRfc {
						ch.banks[i].readyAt = now + s.cfg.TRfc
					}
					hits[i] = hitNone // no open rows, so no row-hit candidates
				}
				candMask = 0
				now += s.cfg.TRfc
				ch.busy += s.cfg.TRfc
				ch.nextRef += s.cfg.TRefi
				ch.refCount++
				nextRef = ch.nextRef
				nextPause = min(nextRef, nextPoll)
				continue
			}
			nextPause = min(nextRef, nextPoll)
		}

		// Fast path: the window head is the lowest slot any rule can
		// return, so if it is an issued row hit on a ready bank it wins
		// rule 1 outright — no candidate across the other banks can
		// have a smaller slot, and rules 2/3 only apply when rule 1
		// finds nothing. Streaming traces spend most picks here (a row
		// span is burstsPerRow back-to-back hits on one bank), skipping
		// the per-bank candidate sweep entirely. The cached candidates
		// of other banks are left untouched: stale entries resolve
		// lazily on their next use, exactly as the slow path leaves
		// them when a bank is skipped for not being ready.
		pick := -1
		if h := &wq[head&mask]; h.issue <= now {
			if bk := &ch.banks[h.bank]; bk.openRow == h.row && bk.readyAt <= now {
				pick = head
			}
		}

		// FR-FCFS rule 1: the oldest in-window row hit whose issue time
		// has arrived, on a bank whose last access has completed. Each
		// open bank contributes its cached oldest open-row request; the
		// lowest slot across banks wins.
		if pick < 0 && (!useCandMask || candMask != 0) {
			for b := 0; b < len(ch.banks); b++ {
				if useCandMask {
					// Jump to the next candidate bank.
					m := candMask >> uint(b)
					if m == 0 {
						break
					}
					b += bits.TrailingZeros64(m)
				}
				h := hits[b]
				if h == hitNone {
					continue
				}
				bk := &ch.banks[b]
				if bk.readyAt > now {
					continue
				}
				if h == hitStale {
					h = rescanHits(wq, mask, head, win, int32(b), bk.openRow)
					hits[b] = h
					if h == hitNone {
						candMask &^= 1 << uint(b)
						continue
					}
				}
				cand := int(h)
				if wq[cand&mask].issue > now {
					// The oldest open-row request is not issued yet; the
					// rule wants the oldest *issued* one, which may sit
					// further out in the window (rare).
					cand = -1
					for i := int(h) + 1; i < win; i++ {
						r := &wq[i&mask]
						if r.bank == int32(b) && r.row == bk.openRow && r.issue <= now {
							cand = i
							break
						}
					}
					if cand < 0 {
						continue
					}
				}
				if pick < 0 || cand < pick {
					pick = cand
				}
			}
		}
		// Rule 2: the oldest ready request regardless of row state.
		if pick < 0 {
			for i := head; i < win; i++ {
				if wq[i&mask].issue <= now {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// Nothing ready: jump to the earliest issue time in the window.
			jump := wq[head&mask].issue
			for i := head + 1; i < win; i++ {
				if v := wq[i&mask].issue; v < jump {
					jump = v
				}
			}
			if jump <= now {
				jump = now + 1
			}
			now = jump
			continue
		}

		req := wq[pick&mask]
		if pick != head {
			// Swap-removal: the head request slides to the freed slot.
			// If it was its bank's cached oldest open-row request (it
			// must be, being the lowest slot of all), the cache no
			// longer knows the oldest — mark it stale.
			moved := wq[head&mask]
			wq[pick&mask] = moved
			if hits[moved.bank] == int32(head) {
				hits[moved.bank] = hitStale
			}
		}
		if hits[req.bank] == int32(pick) {
			hits[req.bank] = hitStale
		}
		head++

		b := &ch.banks[req.bank]
		start := now
		if b.readyAt > start {
			start = b.readyAt
		}

		var svc uint64
		switch {
		case b.openRow == req.row:
			res.rowHits++
			svc = s.cfg.TCL
		case b.openRow == int64(-1):
			res.rowEmpty++
			svc = s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start
			hits[req.bank] = hitStale // open row changed
			candMask |= 1 << uint(req.bank)
		default:
			res.rowMisses++
			// Honor tRAS before precharging the open row.
			if b.activeAt+s.cfg.TRAS > start {
				start = b.activeAt + s.cfg.TRAS
			}
			svc = s.cfg.TRP + s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start + s.cfg.TRP
			hits[req.bank] = hitStale // open row changed
			candMask |= 1 << uint(req.bank)
		}
		b.openRow = req.row

		// Slide the window: one slot enters as the head advances,
		// expanded from the span cursor. Register it as its bank's
		// candidate if it targets the (just updated) open row and the
		// bank has none cached; a lower cached slot or a stale marker
		// both take precedence.
		if win < total {
			w := cur
			rem--
			if rem == 0 && si < len(spans) {
				sp := &spans[si]
				cur = request{issue: sp.issue, row: sp.row, bank: sp.bank}
				rem = sp.count
				si++
			}
			wq[win&mask] = w
			if hits[w.bank] == hitNone && ch.banks[w.bank].openRow == w.row {
				hits[w.bank] = int32(win)
				candMask |= 1 << uint(w.bank)
			}
			win++
		}

		// Data bus occupancy serializes bursts on the channel.
		xferStart := start + svc
		if ch.busFree > xferStart {
			xferStart = ch.busFree
		}
		doneAt := xferStart + s.cfg.TBurst
		ch.busFree = doneAt
		b.readyAt = start + svc
		ch.busy += s.cfg.TBurst

		if doneAt > lastDone {
			lastDone = doneAt
		}
		// Advance local time to when the command was accepted so bank
		// timing makes forward progress (commands pipeline; data bus
		// is the throughput limit).
		if start > now {
			now = start
		}
		now += s.cfg.TBurst
	}
	if lastDone < now {
		lastDone = now
	}
	res.busy = ch.busy
	res.refreshes = ch.refCount
	res.done = lastDone
	return res
}
