// Package dram is a multi-channel DDR timing simulator in the spirit
// of Ramulator (paper §IV-A): per-bank row-buffer state, tRCD/tRP/tCL/
// tRAS timing constraints, FR-FCFS scheduling within a bounded request
// window, burst-granular data transfer on a 64-bit bus per channel,
// and periodic refresh. It consumes the access traces produced by the
// memory-protection simulator and reports total cycles and per-channel
// utilization — the quantity behind the paper's Fig. 6 performance
// comparison.
//
// The model is calibrated by bus bandwidth rather than a named DDR
// part: Table II specifies aggregate bandwidth (20 GB/s server,
// 10 GB/s edge) over four 64-bit channels, so each channel's burst
// timing is derived from its share of the aggregate.
package dram

import "fmt"

// Config describes the memory system geometry and timing (in memory
// controller cycles).
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer size per bank
	BurstBytes   int // bytes transferred per burst (BL8 x 64-bit = 64B)

	// Timing in controller cycles.
	TBurst uint64 // data transfer time of one burst on the bus
	TCL    uint64 // column access (CAS) latency
	TRCD   uint64 // activate-to-read
	TRP    uint64 // precharge
	TRAS   uint64 // minimum row-open time
	TRefi  uint64 // refresh interval (0 = disabled)
	TRfc   uint64 // refresh duration

	// WindowSize bounds the FR-FCFS reorder window per channel.
	WindowSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChan <= 0 || c.RowBytes <= 0 || c.BurstBytes <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", c)
	}
	if c.TBurst == 0 {
		return fmt.Errorf("dram: zero burst time")
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("dram: window size %d <= 0", c.WindowSize)
	}
	return nil
}

// DDR4Like returns a timing template with realistic relative latencies
// for a 64-bit channel; callers scale counts/bandwidth via the NPU
// configs.
func DDR4Like(channels int) Config {
	return Config{
		Channels:     channels,
		BanksPerChan: 16,
		RowBytes:     2048,
		BurstBytes:   64,
		TBurst:       4,
		TCL:          14,
		TRCD:         14,
		TRP:          14,
		TRAS:         32,
		TRefi:        7800,
		TRfc:         350,
		WindowSize:   32,
	}
}

// Stats reports what the memory system did with a trace.
type Stats struct {
	Cycles      uint64 // total controller cycles to drain the trace
	Reads       uint64 // burst-granular read commands
	Writes      uint64 // burst-granular write commands
	RowHits     uint64
	RowMisses   uint64 // row conflicts (precharge + activate)
	RowEmpty    uint64 // activates into an idle bank
	Refreshes   uint64
	BytesMoved  uint64
	ChanCycles  []uint64 // per-channel busy cycles
	MaxChanBusy uint64
}

// RowHitRate returns rowHits / (rowHits+rowMisses+rowEmpty).
func (s Stats) RowHitRate() float64 {
	tot := s.RowHits + s.RowMisses + s.RowEmpty
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

type request struct {
	issue uint64 // earliest schedulable cycle
	addr  uint64
	write bool
}

type bank struct {
	openRow  int64 // -1 = closed
	readyAt  uint64
	activeAt uint64 // when the current row was activated (for tRAS)
}

type channel struct {
	banks    []bank
	busFree  uint64 // next cycle the data bus is free
	busy     uint64 // accumulated busy cycles
	queue    []request
	nextRef  uint64
	refCount uint64
}

// Simulator drains traces through the memory system.
type Simulator struct {
	cfg Config
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the configuration.
func (s *Simulator) Config() Config { return s.cfg }

// mapAddr splits a byte address into channel, bank and row using
// burst-interleaved channel mapping (consecutive bursts hit different
// channels, the usual high-bandwidth NPU layout).
func (s *Simulator) mapAddr(addr uint64) (ch, bk int, row int64) {
	burst := addr / uint64(s.cfg.BurstBytes)
	ch = int(burst % uint64(s.cfg.Channels))
	perChan := burst / uint64(s.cfg.Channels)
	burstsPerRow := uint64(s.cfg.RowBytes / s.cfg.BurstBytes)
	rowGlobal := perChan / burstsPerRow
	bk = int(rowGlobal % uint64(s.cfg.BanksPerChan))
	row = int64(rowGlobal / uint64(s.cfg.BanksPerChan))
	return ch, bk, row
}

// Run drains all accesses and returns timing statistics. Requests are
// split into bursts, distributed to their channels, and scheduled
// FR-FCFS (row hits first within the window, else oldest).
func (s *Simulator) Run(accesses []accessView) Stats {
	st := Stats{ChanCycles: make([]uint64, s.cfg.Channels)}
	chans := make([]channel, s.cfg.Channels)
	for i := range chans {
		chans[i].banks = make([]bank, s.cfg.BanksPerChan)
		chans[i].nextRef = s.cfg.TRefi
	}

	// Explode accesses into burst-granular requests per channel.
	for _, a := range accesses {
		n := int(a.bytes+uint32(s.cfg.BurstBytes)-1) / s.cfg.BurstBytes
		if n == 0 {
			n = 1
		}
		for b := 0; b < n; b++ {
			addr := a.addr + uint64(b*s.cfg.BurstBytes)
			ch, _, _ := s.mapAddr(addr)
			chans[ch].queue = append(chans[ch].queue,
				request{issue: a.cycle, addr: addr, write: a.write})
			st.BytesMoved += uint64(s.cfg.BurstBytes)
			if a.write {
				st.Writes++
			} else {
				st.Reads++
			}
		}
	}

	var maxDone uint64
	for ci := range chans {
		done := s.drainChannel(&chans[ci], &st)
		st.ChanCycles[ci] = chans[ci].busy
		if chans[ci].busy > st.MaxChanBusy {
			st.MaxChanBusy = chans[ci].busy
		}
		if done > maxDone {
			maxDone = done
		}
	}
	st.Cycles = maxDone
	st.Refreshes = 0
	for ci := range chans {
		st.Refreshes += chans[ci].refCount
	}
	return st
}

// drainChannel schedules one channel's queue FR-FCFS and returns the
// cycle at which its last burst finishes. The reorder window slides
// over the queue: the selected request is swapped to the window head
// and the head advances, so selection is O(window) and removal O(1).
func (s *Simulator) drainChannel(ch *channel, st *Stats) uint64 {
	var now uint64
	var lastDone uint64
	q := ch.queue
	head := 0
	for head < len(q) {
		// Refresh stall if due.
		if s.cfg.TRefi > 0 && now >= ch.nextRef {
			for i := range ch.banks {
				ch.banks[i].openRow = -1
				if ch.banks[i].readyAt < now+s.cfg.TRfc {
					ch.banks[i].readyAt = now + s.cfg.TRfc
				}
			}
			now += s.cfg.TRfc
			ch.busy += s.cfg.TRfc
			ch.nextRef += s.cfg.TRefi
			ch.refCount++
			continue
		}

		// FR-FCFS: among the window, prefer the oldest row hit whose
		// issue time has arrived; otherwise the oldest ready request;
		// otherwise advance time.
		win := head + s.cfg.WindowSize
		if win > len(q) {
			win = len(q)
		}
		pick := -1
		for i := head; i < win; i++ {
			if q[i].issue > now {
				continue
			}
			_, bk, row := s.mapAddr(q[i].addr)
			if ch.banks[bk].openRow == row && ch.banks[bk].readyAt <= now {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := head; i < win; i++ {
				if q[i].issue <= now {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// Nothing ready: jump to the earliest issue time in the window.
			jump := q[head].issue
			for i := head + 1; i < win; i++ {
				if q[i].issue < jump {
					jump = q[i].issue
				}
			}
			if jump <= now {
				jump = now + 1
			}
			now = jump
			continue
		}

		req := q[pick]
		q[pick] = q[head]
		head++

		_, bk, row := s.mapAddr(req.addr)
		b := &ch.banks[bk]
		start := now
		if b.readyAt > start {
			start = b.readyAt
		}

		var svc uint64
		switch {
		case b.openRow == row:
			st.RowHits++
			svc = s.cfg.TCL
		case b.openRow == int64(-1):
			st.RowEmpty++
			svc = s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start
		default:
			st.RowMisses++
			// Honor tRAS before precharging the open row.
			if b.activeAt+s.cfg.TRAS > start {
				start = b.activeAt + s.cfg.TRAS
			}
			svc = s.cfg.TRP + s.cfg.TRCD + s.cfg.TCL
			b.activeAt = start + s.cfg.TRP
		}
		b.openRow = row

		// Data bus occupancy serializes bursts on the channel.
		xferStart := start + svc
		if ch.busFree > xferStart {
			xferStart = ch.busFree
		}
		doneAt := xferStart + s.cfg.TBurst
		ch.busFree = doneAt
		b.readyAt = start + svc
		ch.busy += s.cfg.TBurst

		if doneAt > lastDone {
			lastDone = doneAt
		}
		// Advance local time to when the command was accepted so bank
		// timing makes forward progress (commands pipeline; data bus
		// is the throughput limit).
		if start > now {
			now = start
		}
		now += s.cfg.TBurst
	}
	if lastDone < now {
		lastDone = now
	}
	return lastDone
}

// accessView is the minimal request description Run needs; the adapter
// in adapter.go converts trace.Access values.
type accessView struct {
	cycle uint64
	addr  uint64
	bytes uint32
	write bool
}
