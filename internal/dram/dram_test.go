package dram

import (
	"testing"

	"repro/internal/trace"
)

func newSim(t *testing.T, channels int) *Simulator {
	t.Helper()
	s, err := New(DDR4Like(channels))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func seqTrace(n int, stride uint64, bytes uint32, kind trace.Kind) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Append(trace.Access{Addr: uint64(i) * stride, Bytes: bytes, Kind: kind})
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Channels: 0, BanksPerChan: 8, RowBytes: 2048, BurstBytes: 64, TBurst: 4, WindowSize: 8},
		{Channels: 4, BanksPerChan: 8, RowBytes: 2048, BurstBytes: 64, TBurst: 0, WindowSize: 8},
		{Channels: 4, BanksPerChan: 8, RowBytes: 2048, BurstBytes: 64, TBurst: 4, WindowSize: 0},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("accepted invalid config %+v", cfg)
		}
	}
	if _, err := New(DDR4Like(4)); err != nil {
		t.Errorf("rejected DDR4Like: %v", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	s := newSim(t, 4)
	st := s.RunTrace(&trace.Trace{})
	if st.Cycles != 0 || st.BytesMoved != 0 {
		t.Errorf("empty trace: %+v", st)
	}
}

func TestBytesConservation(t *testing.T) {
	s := newSim(t, 4)
	tr := seqTrace(100, 64, 64, trace.Read)
	st := s.RunTrace(tr)
	if st.BytesMoved != 100*64 {
		t.Errorf("bytes moved = %d, want %d", st.BytesMoved, 100*64)
	}
	if st.Reads != 100 || st.Writes != 0 {
		t.Errorf("reads/writes = %d/%d, want 100/0", st.Reads, st.Writes)
	}
}

func TestLargeAccessSplitsIntoBursts(t *testing.T) {
	s := newSim(t, 1)
	tr := &trace.Trace{}
	tr.Append(trace.Access{Addr: 0, Bytes: 512, Kind: trace.Write})
	st := s.RunTrace(tr)
	if st.Writes != 8 {
		t.Errorf("512B write -> %d bursts, want 8", st.Writes)
	}
	if st.BytesMoved != 512 {
		t.Errorf("bytes moved = %d, want 512", st.BytesMoved)
	}
}

func TestCyclesMonotoneInTraceLength(t *testing.T) {
	s := newSim(t, 4)
	var prev uint64
	for _, n := range []int{10, 100, 1000, 5000} {
		st := s.RunTrace(seqTrace(n, 64, 64, trace.Read))
		if st.Cycles < prev {
			t.Errorf("cycles decreased: n=%d cycles=%d prev=%d", n, st.Cycles, prev)
		}
		prev = st.Cycles
	}
}

func TestMoreChannelsFaster(t *testing.T) {
	tr := seqTrace(4000, 64, 64, trace.Read)
	s1 := newSim(t, 1)
	s4 := newSim(t, 4)
	c1 := s1.RunTrace(tr).Cycles
	c4 := s4.RunTrace(tr).Cycles
	if c4 >= c1 {
		t.Errorf("4-channel (%d cycles) not faster than 1-channel (%d)", c4, c1)
	}
	// Interleaved sequential traffic should scale close to linearly.
	if float64(c1)/float64(c4) < 2.0 {
		t.Errorf("channel scaling only %.2fx, want >= 2x", float64(c1)/float64(c4))
	}
}

func TestSequentialBeatsRandom(t *testing.T) {
	// Row-buffer locality: a sequential walk should finish faster and
	// with a higher row-hit rate than a bank-thrashing stride walk.
	seq := seqTrace(2000, 64, 64, trace.Read)
	s := newSim(t, 1)
	stSeq := s.RunTrace(seq)

	thrash := &trace.Trace{}
	rowStride := uint64(2048 * 16 * 7) // jump rows and banks every access
	for i := 0; i < 2000; i++ {
		thrash.Append(trace.Access{Addr: uint64(i) * rowStride, Bytes: 64, Kind: trace.Read})
	}
	s2 := newSim(t, 1)
	stThrash := s2.RunTrace(thrash)

	if stSeq.RowHitRate() <= stThrash.RowHitRate() {
		t.Errorf("sequential row-hit rate %.3f <= thrash %.3f",
			stSeq.RowHitRate(), stThrash.RowHitRate())
	}
	if stSeq.Cycles >= stThrash.Cycles {
		t.Errorf("sequential (%d cycles) not faster than thrash (%d)",
			stSeq.Cycles, stThrash.Cycles)
	}
}

func TestRowOutcomeAccounting(t *testing.T) {
	s := newSim(t, 1)
	st := s.RunTrace(seqTrace(1000, 64, 64, trace.Read))
	if st.RowHits+st.RowMisses+st.RowEmpty != st.Reads {
		t.Errorf("row outcomes %d+%d+%d != reads %d",
			st.RowHits, st.RowMisses, st.RowEmpty, st.Reads)
	}
	// A 64B-stride walk within 2048B rows should be mostly row hits.
	if st.RowHitRate() < 0.9 {
		t.Errorf("sequential row hit rate = %.3f, want > 0.9", st.RowHitRate())
	}
}

func TestRefreshHappens(t *testing.T) {
	cfg := DDR4Like(1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Enough traffic to run past several tREFI intervals.
	st := s.RunTrace(seqTrace(50000, 64, 64, trace.Read))
	if st.Refreshes == 0 {
		t.Error("no refreshes over a long trace")
	}
	if st.Cycles < cfg.TRefi {
		t.Errorf("cycles %d below one refresh interval %d", st.Cycles, cfg.TRefi)
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DDR4Like(1)
	cfg.TRefi = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunTrace(seqTrace(50000, 64, 64, trace.Read))
	if st.Refreshes != 0 {
		t.Errorf("refreshes = %d with refresh disabled", st.Refreshes)
	}
}

func TestIssueCycleRespected(t *testing.T) {
	s := newSim(t, 1)
	tr := &trace.Trace{}
	const lateIssue = 1_000_000
	tr.Append(trace.Access{Cycle: lateIssue, Addr: 0, Bytes: 64, Kind: trace.Read})
	st := s.RunTrace(tr)
	if st.Cycles < lateIssue {
		t.Errorf("trace finished at %d, before its only request's issue time %d",
			st.Cycles, lateIssue)
	}
}

func TestChannelMappingCoversAllChannels(t *testing.T) {
	s := newSim(t, 4)
	st := s.RunTrace(seqTrace(400, 64, 64, trace.Read))
	for ci, busy := range st.ChanCycles {
		if busy == 0 {
			t.Errorf("channel %d never used by interleaved walk", ci)
		}
	}
}

func TestMixedReadWriteCounts(t *testing.T) {
	s := newSim(t, 2)
	tr := &trace.Trace{}
	for i := 0; i < 64; i++ {
		k := trace.Read
		if i%2 == 1 {
			k = trace.Write
		}
		tr.Append(trace.Access{Addr: uint64(i) * 64, Bytes: 64, Kind: k})
	}
	st := s.RunTrace(tr)
	if st.Reads != 32 || st.Writes != 32 {
		t.Errorf("reads/writes = %d/%d, want 32/32", st.Reads, st.Writes)
	}
}
