//go:build race

package dram

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation adds allocations of its own; the
// steady-state alloc guard only measures the real build.
const raceEnabled = true
