package dram

import "repro/internal/trace"

// RunTrace drains a trace.Trace through the memory system.
func (s *Simulator) RunTrace(t *trace.Trace) Stats {
	views := make([]accessView, len(t.Accesses))
	for i, a := range t.Accesses {
		views[i] = accessView{
			cycle: a.Cycle,
			addr:  a.Addr,
			bytes: a.Bytes,
			write: a.Kind == trace.Write,
		}
	}
	return s.Run(views)
}
