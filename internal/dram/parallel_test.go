package dram

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// mixedTrace builds a trace exercising every scheduler path: strided
// reads/writes of varying sizes, late issue times, and row conflicts.
func mixedTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	tr.Reserve(n)
	for i := 0; i < n; i++ {
		size := uint32(64)
		switch i % 3 {
		case 1:
			size = 256
		case 2:
			size = 520 // non-burst-aligned size
		}
		addr := uint64(i) * 192
		if i%7 == 0 {
			addr = uint64(i) * 2048 * 16 * 3 // bank/row jumps
		}
		tr.Append(trace.Access{
			Cycle: uint64(i/4) * 3,
			Addr:  addr,
			Bytes: size,
			Kind:  trace.Kind(i % 2),
			Layer: uint16(i % 5),
		})
	}
	return tr
}

// TestParallelDrainMatchesSequential is the zero-copy pipeline's
// determinism anchor: draining channels on parallel goroutines must
// produce bit-identical Stats to the single-goroutine drain.
func TestParallelDrainMatchesSequential(t *testing.T) {
	for _, channels := range []int{1, 2, 3, 4, 8} {
		par := newSim(t, channels)
		seq := newSim(t, channels)
		seq.SetSequentialDrain(true)
		tr := mixedTrace(3000)
		stPar := par.RunTrace(tr)
		stSeq := seq.RunTrace(tr)
		if !reflect.DeepEqual(stPar, stSeq) {
			t.Errorf("channels=%d: parallel %+v != sequential %+v", channels, stPar, stSeq)
		}
	}
}

// TestParallelDrainMatchesSequentialAcrossGOMAXPROCS repeats the
// determinism anchor under forced parallelism settings (1, 2 and 8
// Ps): with GOMAXPROCS>1 the channel goroutines genuinely preempt each
// other, which a 1-core container never exercises.
func TestParallelDrainMatchesSequentialAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	tr := mixedTrace(3000)
	seq := newSim(t, 4)
	seq.SetSequentialDrain(true)
	want := seq.RunTrace(tr)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		par := newSim(t, 4)
		if got := par.RunTrace(tr); !reflect.DeepEqual(got, want) {
			t.Errorf("GOMAXPROCS=%d: parallel %+v != sequential %+v", procs, got, want)
		}
	}
}

// TestRunStateReuse checks that the pooled scratch state (recycled
// queue buffers, bank arrays) does not leak state between runs: a
// reused simulator must report exactly what a fresh one does.
func TestRunStateReuse(t *testing.T) {
	warm := newSim(t, 4)
	tr1 := mixedTrace(2000)
	tr2 := seqTrace(500, 64, 64, trace.Write)
	warm.RunTrace(tr1) // dirty the pooled state with a larger trace
	got := warm.RunTrace(tr2)
	want := newSim(t, 4).RunTrace(tr2)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reused state %+v != fresh %+v", got, want)
	}
}

// TestRunAccessesMatchesRunTrace pins the zero-copy equivalence: the
// trace wrapper adds nothing beyond the raw slice.
func TestRunAccessesMatchesRunTrace(t *testing.T) {
	tr := mixedTrace(800)
	a := newSim(t, 4).RunAccesses(tr.Accesses)
	b := newSim(t, 4).RunTrace(tr)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("RunAccesses %+v != RunTrace %+v", a, b)
	}
}

// TestNonPowerOfTwoChannels exercises the counted explode's remainder
// distribution for channel counts that do not divide burst indices
// evenly: burst conservation must hold exactly.
func TestNonPowerOfTwoChannels(t *testing.T) {
	s := newSim(t, 3)
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.Access{Addr: uint64(i) * 448, Bytes: 448, Kind: trace.Read})
	}
	st := s.RunTrace(tr)
	if st.Reads != 700 { // 100 accesses x 7 bursts
		t.Errorf("reads = %d, want 700", st.Reads)
	}
	if st.BytesMoved != 700*64 {
		t.Errorf("bytes = %d, want %d", st.BytesMoved, 700*64)
	}
	var busy int
	for _, c := range st.ChanCycles {
		if c > 0 {
			busy++
		}
	}
	if busy != 3 {
		t.Errorf("only %d of 3 channels saw traffic", busy)
	}
}

// TestRunTraceAllocGuard pins the steady-state allocation budget of
// the hot path: a warmed simulator must stay at or below the pr2
// level of 5 allocs per sequential RunTrace (the ChanCycles result
// slice plus the replayable-iterator closures). A regression here —
// e.g. a per-pick allocation sneaking into the bank-bucketed drain —
// fails CI instead of silently rotting until someone reruns the
// benchmarks.
func TestRunTraceAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on its own")
	}
	tr := mixedTrace(2000)
	s, err := New(DDR4Like(4))
	if err != nil {
		t.Fatal(err)
	}
	s.SetSequentialDrain(true)
	s.RunTrace(tr) // grow the pooled queues once
	allocs := testing.AllocsPerRun(10, func() { s.RunTrace(tr) })
	if allocs > 5 {
		t.Errorf("RunTrace allocates %.1f times per run, want <= 5 (pr2 level)", allocs)
	}
}

// BenchmarkRunTrace measures the zero-copy hot path. The seed adapter
// (accessView copy + growing queues) ran this workload at 79 allocs/op
// and ~3.4 MB/op; the counted pre-size explode with pooled buffers
// must stay well under half of that (see BENCH_PIPELINE.json).
func BenchmarkRunTrace(b *testing.B) {
	tr := &trace.Trace{}
	tr.Reserve(4096)
	for i := 0; i < 4096; i++ {
		tr.Append(trace.Access{
			Cycle: uint64(i) * 4,
			Addr:  uint64(i) * 512,
			Bytes: 512,
			Kind:  trace.Kind(i % 2),
		})
	}
	for _, mode := range []struct {
		name string
		seq  bool
	}{{"parallel", false}, {"sequential", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := New(DDR4Like(4))
			if err != nil {
				b.Fatal(err)
			}
			s.SetSequentialDrain(mode.seq)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunTrace(tr)
			}
		})
	}
}
