package dram

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// conflictTrace builds a deterministic, conflict-heavy trace that
// exercises every scheduler decision the FR-FCFS window can make:
// row hits reordered past older misses, bank conflicts honoring tRAS,
// empty-bank activations, issue-time stalls (time jumps), window-full
// scans, swap-removal of non-head picks, refresh interruptions,
// multi-burst accesses and non-burst-aligned sizes. A tiny LCG mixes
// the pattern so neighbouring requests disagree about banks and rows
// without the trace depending on math/rand's generator version.
func conflictTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	tr.Reserve(n)
	state := uint64(0x9e3779b97f4a7c15)
	lcg := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		r := lcg()
		var addr uint64
		switch i % 5 {
		case 0: // sequential run: row hits
			addr = 0x100_0000 + uint64(i)*64
		case 1: // two-row ping-pong on one bank: guaranteed conflicts
			addr = 0x200_0000 + (r%2)*2048*16*4
		case 2: // wide bank spread
			addr = uint64(r%64) * 2048 * 4
		case 3: // metadata-like region far away
			addr = 0x1_0000_0000 + uint64(r%512)*64
		default: // random-ish within a few rows
			addr = 0x300_0000 + (r % (2048 * 8))
		}
		size := uint32(64)
		switch i % 7 {
		case 1:
			size = 256
		case 3:
			size = 520 // non-burst-aligned
		case 5:
			size = 1024
		}
		cycle := uint64(i) * 2
		if i%11 == 0 {
			cycle += 5000 // sparse late issues force time jumps
		}
		tr.Append(trace.Access{
			Cycle: cycle,
			Addr:  addr,
			Bytes: size,
			Kind:  trace.Kind(i % 2),
			Layer: uint16(i % 3),
		})
	}
	return tr
}

// goldenStats are the exact Stats the pre-PR-4 O(window)
// mapAddr-per-candidate scheduler produced on conflictTrace. The
// bank-bucketed drain must reproduce them bit for bit: any change to
// the pick order moves RowHits/RowMisses and every per-channel cycle
// count. Regenerate only if the scheduling *semantics* deliberately
// change (and say so in DESIGN.md).
var goldenStats = map[string]Stats{
	"ddr4x4":  {Cycles: 70702, Reads: 9413, Writes: 9436, RowHits: 13409, RowMisses: 4966, RowEmpty: 474, Refreshes: 27, BytesMoved: 1206336, ChanCycles: []uint64{25486, 19852, 19760, 19748}, MaxChanBusy: 25486},
	"odd3x12": {Cycles: 80974, Reads: 9413, Writes: 9436, RowHits: 14261, RowMisses: 4196, RowEmpty: 392, Refreshes: 30, BytesMoved: 1206336, ChanCycles: []uint64{27624, 29172, 29100}, MaxChanBusy: 29172},
	"narrow1": {Cycles: 263558, Reads: 9413, Writes: 9436, RowHits: 15868, RowMisses: 2472, RowEmpty: 509, Refreshes: 33, BytesMoved: 1206336, ChanCycles: []uint64{86946}, MaxChanBusy: 86946},
}

func goldenConfigs() map[string]Config {
	pow2 := DDR4Like(4)
	// Non-power-of-two geometry drives the division-based decode
	// fallback; a small window stresses the sliding-window bookkeeping.
	odd := Config{
		Channels:     3,
		BanksPerChan: 12,
		RowBytes:     1536,
		BurstBytes:   64,
		TBurst:       4,
		TCL:          14,
		TRCD:         14,
		TRP:          14,
		TRAS:         32,
		TRefi:        7800,
		TRfc:         350,
		WindowSize:   8,
	}
	single := DDR4Like(1)
	single.WindowSize = 4
	return map[string]Config{"ddr4x4": pow2, "odd3x12": odd, "narrow1": single}
}

// TestFRFCFSGoldenPickOrder pins the scheduler's exact pick order via
// full-stats golden values on the conflict-heavy trace, for a
// power-of-two geometry (shift/mask decode), a non-power-of-two one
// (division decode) and a single-channel narrow window.
func TestFRFCFSGoldenPickOrder(t *testing.T) {
	tr := conflictTrace(4000)
	for name, cfg := range goldenConfigs() {
		want, ok := goldenStats[name]
		if !ok {
			t.Errorf("no golden stats recorded for %q", name)
			continue
		}
		for _, seqDrain := range []bool{true, false} {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.SetSequentialDrain(seqDrain)
			got := s.RunTrace(tr)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s seqDrain=%v:\n got %+v\nwant %+v", name, seqDrain, got, want)
			}
		}
	}
}

// TestFRFCFSGoldenDump regenerates the golden literals; run with
//
//	go test -run TestFRFCFSGoldenDump -v ./internal/dram
//
// and paste the output into goldenStats above when the scheduling
// semantics deliberately change.
func TestFRFCFSGoldenDump(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("dump runs only under -v")
	}
	tr := conflictTrace(4000)
	for name, cfg := range goldenConfigs() {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetSequentialDrain(true)
		st := s.RunTrace(tr)
		t.Logf("%q: {Cycles: %d, Reads: %d, Writes: %d, RowHits: %d, RowMisses: %d, RowEmpty: %d, Refreshes: %d, BytesMoved: %d, ChanCycles: %#v, MaxChanBusy: %d},",
			name, st.Cycles, st.Reads, st.Writes, st.RowHits, st.RowMisses, st.RowEmpty, st.Refreshes, st.BytesMoved, st.ChanCycles, st.MaxChanBusy)
	}
}
