package dram

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// overlayPair builds a spine of n data accesses plus a metadata
// overlay sprinkling line reads before, between and after them.
func overlayPair(n int) (*trace.Trace, *trace.Overlay) {
	spine := &trace.Trace{}
	for i := 0; i < n; i++ {
		spine.Append(trace.Access{
			Cycle: uint64(i * 3),
			Addr:  0x1000_0000 + uint64(i)*512,
			Bytes: 512,
			Kind:  trace.Kind(i % 2),
			Class: trace.Data,
		})
	}
	ov := &trace.Overlay{}
	ov.Append(0, trace.Access{Cycle: 0, Addr: 0x2_0000_0000, Bytes: 64, Kind: trace.Read, Class: trace.MACMeta})
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			ov.Append(i+1, trace.Access{
				Cycle: uint64(i * 3),
				Addr:  0x1_0000_0000 + uint64(i)*64,
				Bytes: 64,
				Kind:  trace.Read,
				Class: trace.MACMeta,
			})
		}
		if i%5 == 0 {
			ov.Append(i+1, trace.Access{
				Cycle: uint64(i * 3),
				Addr:  0x1_4000_0000 + uint64(i)*64,
				Bytes: 128,
				Kind:  trace.Write,
				Class: trace.VNMeta,
			})
		}
	}
	ov.Append(n, trace.Access{Cycle: uint64(n * 3), Addr: 0x1_3fff_ffc0, Bytes: 256, Kind: trace.Write, Class: trace.MACMeta})
	return spine, ov
}

// TestRunOverlayMatchesMaterialized pins the tentpole equivalence: the
// two-stream consumption path produces bit-identical Stats to running
// the materialized merge through RunTrace.
func TestRunOverlayMatchesMaterialized(t *testing.T) {
	spine, ov := overlayPair(500)
	for _, seqDrain := range []bool{false, true} {
		a := newSim(t, 4)
		a.SetSequentialDrain(seqDrain)
		b := newSim(t, 4)
		b.SetSequentialDrain(seqDrain)
		got := a.RunOverlay(spine, ov)
		want := b.RunTrace(ov.Materialize(spine))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seqDrain=%v: RunOverlay %+v != materialized RunTrace %+v", seqDrain, got, want)
		}
	}
}

// TestRunOverlayEmptyDeltas: a scheme with no metadata (Baseline)
// consumes the spine alone.
func TestRunOverlayEmptyDeltas(t *testing.T) {
	spine, _ := overlayPair(100)
	got := newSim(t, 4).RunOverlay(spine, &trace.Overlay{})
	want := newSim(t, 4).RunTrace(spine)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty overlay %+v != spine-only %+v", got, want)
	}
	gotNil := newSim(t, 4).RunOverlay(spine, nil)
	if !reflect.DeepEqual(gotNil, want) {
		t.Errorf("nil overlay %+v != spine-only %+v", gotNil, want)
	}
}

// TestArenaSharingIsTransparent: simulators sharing one arena produce
// the same Stats as simulators with private pools, in any interleaving
// (runs only reuse scratch buffers, never scheduling state).
func TestArenaSharingIsTransparent(t *testing.T) {
	spine, ov := overlayPair(300)
	arena := NewArena()
	s1 := newSim(t, 4)
	s1.SetArena(arena)
	s2 := newSim(t, 4)
	s2.SetArena(arena)

	want := newSim(t, 4).RunOverlay(spine, ov)
	for i := 0; i < 3; i++ {
		if got := s1.RunOverlay(spine, ov); !reflect.DeepEqual(got, want) {
			t.Fatalf("arena run %d (s1) diverged: %+v != %+v", i, got, want)
		}
		if got := s2.RunOverlay(spine, ov); !reflect.DeepEqual(got, want) {
			t.Fatalf("arena run %d (s2) diverged: %+v != %+v", i, got, want)
		}
	}
}

// TestArenaGeometryMismatchRebuilds: a state pooled by a 4-channel
// simulator must not corrupt a 2-channel simulator drawing from the
// same arena.
func TestArenaGeometryMismatchRebuilds(t *testing.T) {
	spine, ov := overlayPair(200)
	arena := NewArena()
	s4 := newSim(t, 4)
	s4.SetArena(arena)
	s4.RunOverlay(spine, ov) // warm the arena with 4-channel state

	cfg := DDR4Like(2)
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetArena(arena)
	got := s2.RunOverlay(spine, ov)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.RunOverlay(spine, ov)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mismatched-geometry arena state leaked: %+v != %+v", got, want)
	}
}

// TestArenaConcurrentUse exercises the arena from parallel goroutines
// (the six schemes of a workload run concurrently by default).
func TestArenaConcurrentUse(t *testing.T) {
	spine, ov := overlayPair(400)
	arena := NewArena()
	want := newSim(t, 4).RunOverlay(spine, ov)

	done := make(chan Stats, 6)
	for k := 0; k < 6; k++ {
		s := newSim(t, 4)
		s.SetArena(arena)
		go func(s *Simulator) {
			done <- s.RunOverlay(spine, ov)
		}(s)
	}
	for k := 0; k < 6; k++ {
		if got := <-done; !reflect.DeepEqual(got, want) {
			t.Errorf("concurrent arena run diverged: %+v != %+v", got, want)
		}
	}
}
