package attack

import (
	"testing"

	"repro/internal/aesx"
)

var key = []byte("attack-test-key!")

func newBAES(t *testing.T) *aesx.BAES {
	t.Helper()
	b, err := aesx.NewBAES([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSECASucceedsAgainstSharedPad(t *testing.T) {
	// Algorithm 1, attack: a sparse tensor under a shared OTP falls
	// completely to frequency analysis.
	b := newBAES(t)
	pt := SparseTensor(1024, 97, 3) // mostly zero segments
	ct := EncryptSharedPad(b, pt, aesx.Counter{PA: 0x1000, VN: 5})

	var zeros [16]byte // attacker guesses the most common plaintext is 0
	res := RunSECA(ct, pt, zeros)
	if !res.Success() {
		t.Fatalf("SECA failed against shared pad: %d/%d segments",
			res.SegmentsRecovered, res.TotalSegments)
	}
	// Against a shared pad the attack recovers essentially everything.
	if res.SegmentsRecovered < res.TotalSegments*9/10 {
		t.Errorf("SECA recovered only %d/%d segments against shared pad",
			res.SegmentsRecovered, res.TotalSegments)
	}
}

func TestSECAFailsAgainstBAES(t *testing.T) {
	// Algorithm 1, defense: per-segment pads confine the leak.
	b := newBAES(t)
	pt := SparseTensor(1024, 97, 3)
	ct := EncryptBAES(b, pt, aesx.Counter{PA: 0x1000, VN: 5})

	var zeros [16]byte
	res := RunSECA(ct, pt, zeros)
	if res.Success() {
		t.Fatalf("SECA succeeded against B-AES: %d/%d segments",
			res.SegmentsRecovered, res.TotalSegments)
	}
}

func TestSECAScoresAllZeroTensorFully(t *testing.T) {
	// Degenerate sanity check: with an all-zero tensor and shared pad,
	// every segment is recovered.
	b := newBAES(t)
	pt := make([]byte, 512)
	ct := EncryptSharedPad(b, pt, aesx.Counter{})
	var zeros [16]byte
	res := RunSECA(ct, pt, zeros)
	if res.SegmentsRecovered != res.TotalSegments {
		t.Errorf("recovered %d/%d", res.SegmentsRecovered, res.TotalSegments)
	}
}

func TestSparseTensorShape(t *testing.T) {
	pt := SparseTensor(256, 32, 1)
	if len(pt) != 256 {
		t.Fatalf("len = %d", len(pt))
	}
	nz := 0
	for _, v := range pt {
		if v != 0 {
			nz++
		}
	}
	if nz != 8 {
		t.Errorf("nonzeros = %d, want 8", nz)
	}
}

func blocksFor(t *testing.T, n int) [][]byte {
	t.Helper()
	b := newBAES(t)
	blocks := make([][]byte, n)
	for i := range blocks {
		pt := SparseTensor(512, 61, byte(i))
		blocks[i] = EncryptBAES(b, pt, aesx.Counter{PA: uint64(i) * 512, VN: 1})
	}
	return blocks
}

func swapPerm(n, i, j int) []int {
	p := make([]int, n)
	for k := range p {
		p[k] = k
	}
	p[i], p[j] = p[j], p[i]
	return p
}

func TestRePASucceedsAgainstNaiveMAC(t *testing.T) {
	blocks := blocksFor(t, 16)
	res := RunRePA(key, blocks, swapPerm(16, 2, 9), false)
	if !res.VerificationPassed {
		t.Fatal("naive XOR-MAC rejected the shuffle (attack model broken)")
	}
	if res.DataIntact {
		t.Fatal("shuffle did not actually change the data")
	}
	if !res.AttackSucceeded() {
		t.Fatal("RePA should succeed against naive MAC")
	}
}

func TestRePAFailsAgainstPositionBoundMAC(t *testing.T) {
	blocks := blocksFor(t, 16)
	res := RunRePA(key, blocks, swapPerm(16, 2, 9), true)
	if res.VerificationPassed {
		t.Fatal("position-bound MAC accepted shuffled blocks")
	}
	if res.AttackSucceeded() {
		t.Fatal("RePA succeeded against SeDA defense")
	}
}

func TestRePAIdentityPermutationPasses(t *testing.T) {
	// No shuffle: verification passes and data is intact under both
	// constructions (no false positives).
	blocks := blocksFor(t, 8)
	id := swapPerm(8, 0, 0)
	for _, bound := range []bool{false, true} {
		res := RunRePA(key, blocks, id, bound)
		if !res.VerificationPassed || !res.DataIntact {
			t.Errorf("positionBound=%v: identity permutation flagged", bound)
		}
		if res.AttackSucceeded() {
			t.Errorf("positionBound=%v: no-op counted as successful attack", bound)
		}
	}
}

func TestRePAEveryPairDetectedWhenBound(t *testing.T) {
	blocks := blocksFor(t, 6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			res := RunRePA(key, blocks, swapPerm(6, i, j), true)
			if res.VerificationPassed {
				t.Errorf("swap (%d,%d) passed position-bound verification", i, j)
			}
		}
	}
}

func TestRePARotationAgainstNaiveMAC(t *testing.T) {
	// Any permutation (not just swaps) passes the naive check.
	blocks := blocksFor(t, 10)
	rot := make([]int, 10)
	for k := range rot {
		rot[k] = (k + 3) % 10
	}
	res := RunRePA(key, blocks, rot, false)
	if !res.AttackSucceeded() {
		t.Error("rotation not a successful RePA against naive MAC")
	}
}
