// Package attack implements the two attacks the paper analyzes and
// the SeDA defenses that stop them:
//
//   - SECA (Single-Element Collision Attack, Algorithm 1): when every
//     128-bit segment of a protection block shares one OTP, an
//     attacker who can guess the block's most frequent plaintext value
//     (DNN tensors are full of zeros after ReLU and pruning) recovers
//     the pad from the most frequent ciphertext value and decrypts the
//     whole block. B-AES's per-segment pads confine the leak to a
//     single segment.
//
//   - RePA (Re-Permutation Attack, Algorithm 2): XOR-aggregated MACs
//     are order-insensitive, so shuffling a layer's ciphertext blocks
//     passes a naive layer-MAC check while scrambling the decrypted
//     tensor. Position-bound MACs make any permutation change the
//     aggregate.
package attack

import (
	"bytes"

	"repro/internal/aesx"
	"repro/internal/sha256x"
	"repro/internal/xormac"
)

// SECAResult reports an attack attempt against one encrypted block.
type SECAResult struct {
	// PadRecovered is the OTP guess derived from the frequency
	// analysis.
	PadRecovered [16]byte
	// Plaintext is the attacker's decryption under the recovered pad.
	Plaintext []byte
	// SegmentsRecovered counts 16-byte segments whose recovered
	// plaintext matches the truth exactly.
	SegmentsRecovered int
	TotalSegments     int
}

// Success reports whether the attacker recovered more than one
// segment — with a shared pad the whole block falls; with per-segment
// pads at most the single segment whose plaintext was guessed matches.
func (r SECAResult) Success() bool { return r.SegmentsRecovered > 1 }

// RunSECA mounts Algorithm 1 (attack): given a ciphertext block whose
// segments may share one OTP, and the attacker's guess of the most
// common 16-byte plaintext (mostValueP, e.g. all zeros), recover the
// pad from the most frequent ciphertext segment and decrypt
// everything. truth is the actual plaintext, used only to score the
// attack.
func RunSECA(ciphertext, truth []byte, mostValueP [16]byte) SECAResult {
	res := SECAResult{TotalSegments: len(ciphertext) / 16}

	// CALC_FREQ_VALUE: the most frequent ciphertext segment.
	freq := make(map[[16]byte]int)
	var mostValueC [16]byte
	best := 0
	for off := 0; off+16 <= len(ciphertext); off += 16 {
		var seg [16]byte
		copy(seg[:], ciphertext[off:off+16])
		freq[seg]++
		if freq[seg] > best {
			best = freq[seg]
			mostValueC = seg
		}
	}

	// OTP <- most_value_p XOR most_value_c (Algorithm 1, line 2).
	for i := range res.PadRecovered {
		res.PadRecovered[i] = mostValueP[i] ^ mostValueC[i]
	}

	// value_p <- value_c XOR OTP for every element (lines 3-4).
	res.Plaintext = make([]byte, len(ciphertext))
	for i := range ciphertext {
		res.Plaintext[i] = ciphertext[i] ^ res.PadRecovered[i%16]
	}

	for off := 0; off+16 <= len(truth) && off+16 <= len(res.Plaintext); off += 16 {
		if bytes.Equal(res.Plaintext[off:off+16], truth[off:off+16]) {
			res.SegmentsRecovered++
		}
	}
	return res
}

// EncryptSharedPad encrypts a block the vulnerable way (one OTP for
// all segments) — the strawman of §III-B Challenge 2.
func EncryptSharedPad(b *aesx.BAES, plaintext []byte, c aesx.Counter) []byte {
	ct := make([]byte, len(plaintext))
	b.SharedPadXOR(ct, plaintext, c)
	return ct
}

// EncryptBAES encrypts a block the SeDA way (per-segment pads derived
// from the round keys) — Algorithm 1, defense.
func EncryptBAES(b *aesx.BAES, plaintext []byte, c aesx.Counter) []byte {
	ct := make([]byte, len(plaintext))
	b.XORSegments(ct, plaintext, c)
	return ct
}

// SparseTensor builds a DNN-like plaintext block: mostly zeros (the
// post-ReLU common value) with a few nonzero activations. This is the
// distribution that makes SECA practical.
func SparseTensor(n int, nonzeroEvery int, seed byte) []byte {
	t := make([]byte, n)
	for i := 0; i < n; i += nonzeroEvery {
		t[i] = seed + byte(i/nonzeroEvery) + 1
	}
	return t
}

// RePAResult reports a re-permutation attempt against a layer.
type RePAResult struct {
	// VerificationPassed is whether the layer MAC check accepted the
	// shuffled blocks.
	VerificationPassed bool
	// DataIntact is whether the decrypted layer equals the original
	// (false after a successful shuffle: the attacker corrupted the
	// model while passing verification).
	DataIntact bool
}

// AttackSucceeded: the attacker wins when verification passes but the
// data is no longer intact.
func (r RePAResult) AttackSucceeded() bool {
	return r.VerificationPassed && !r.DataIntact
}

// RunRePA mounts Algorithm 2 against a layer of ciphertext blocks.
// blocks are the original ciphertexts; perm is the attacker's shuffle
// (perm[i] = index of the block now sitting at position i).
// positionBound selects the MAC construction: false reproduces the
// naive XOR-MAC (attack succeeds), true the SeDA defense (attack
// detected).
func RunRePA(key []byte, blocks [][]byte, perm []int, positionBound bool) RePAResult {
	layerID := uint32(7)
	mac := func(blk []byte, idx int) sha256x.MAC {
		if positionBound {
			return xormac.BlockMAC(key, blk, xormac.BlockPos{
				PA:      uint64(idx) * 512,
				VN:      1,
				LayerID: layerID,
				FmapIdx: 0,
				BlkIdx:  uint32(idx),
			})
		}
		return xormac.NaiveBlockMAC(key, blk)
	}

	// SUM_MAC over the genuine layout (what the on-chip state holds).
	var genuine xormac.Aggregate
	for i, b := range blocks {
		genuine.Add(mac(b, i))
	}

	// SHUFFLE_ORDER + SUM_MAC_shuffle: verify blocks at their observed
	// (shuffled) positions.
	var observed xormac.Aggregate
	shuffledSame := true
	for i := range blocks {
		b := blocks[perm[i]]
		observed.Add(mac(b, i))
		if perm[i] != i && !bytes.Equal(b, blocks[i]) {
			shuffledSame = false
		}
	}

	return RePAResult{
		VerificationPassed: observed.Sum() == genuine.Sum(),
		DataIntact:         shuffledSame,
	}
}
