// Package cache provides a set-associative, write-back, write-allocate
// cache simulator with LRU replacement. The memory-protection
// simulator uses two instances per SGX-class protection unit — a 16 KB
// version-number cache and an 8 KB MAC cache (paper §IV-A) — to filter
// security-metadata accesses before they become off-chip DRAM traffic.
//
// The simulator is purely a hit/miss/writeback accounting model: it
// tracks tags, dirty bits and recency, not data contents (metadata
// values live in the protection unit's functional model).
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size
	Ways      int // associativity
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	return nil
}

// Stats accumulates access outcomes.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions (each costs one line write to DRAM)
	Fills      uint64 // line fills (each costs one line read from DRAM)
}

// Accesses returns the total number of lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns hits / accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is a set-associative LRU cache simulator.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	tick  uint64
	stats Stats
}

// New builds a cache with the given geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without flushing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Result reports what a single access did.
type Result struct {
	Hit       bool
	Fill      bool // line was fetched from DRAM
	Writeback bool // a dirty victim was written back to DRAM
}

// Access performs one cache access at byte address addr. write marks
// the line dirty (write-allocate: a write miss fills the line first).
func (c *Cache) Access(addr uint64, write bool) Result {
	c.tick++
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set := int(lineAddr % uint64(c.nsets))
	tag := lineAddr / uint64(c.nsets)

	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}

	// Miss: pick an invalid way or the LRU victim.
	c.stats.Misses++
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	res := Result{Fill: true}
	if ways[victim].valid && ways[victim].dirty {
		res.Writeback = true
		c.stats.Writebacks++
	}
	c.stats.Fills++
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// Flush writes back all dirty lines and invalidates the cache,
// returning the number of writebacks performed. Used at layer/model
// boundaries when the protection unit drains its metadata state.
func (c *Cache) Flush() uint64 {
	var wb uint64
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				wb++
				c.stats.Writebacks++
			}
			c.sets[s][w] = line{}
		}
	}
	return wb
}

// Contains reports whether addr's line is currently cached (without
// perturbing LRU state or statistics).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set := int(lineAddr % uint64(c.nsets))
	tag := lineAddr / uint64(c.nsets)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}
