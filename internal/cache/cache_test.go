package cache

import (
	"testing"
	"testing/quick"
)

func newCache(t *testing.T, size, line, ways int) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: size, LineBytes: line, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 1024, LineBytes: 0, Ways: 4},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1000, LineBytes: 64, Ways: 4},  // size not multiple of line
		{SizeBytes: 1024, LineBytes: 64, Ways: 10}, // lines not divisible by ways
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("accepted invalid config %+v", cfg)
		}
	}
	good := Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 4}
	if _, err := New(good); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := newCache(t, 1024, 64, 2)
	r := c.Access(0x100, false)
	if r.Hit || !r.Fill {
		t.Errorf("first access: %+v, want miss+fill", r)
	}
	r = c.Access(0x100, false)
	if !r.Hit {
		t.Errorf("second access: %+v, want hit", r)
	}
	// Same line, different byte.
	r = c.Access(0x13f, false)
	if !r.Hit {
		t.Errorf("same-line access: %+v, want hit", r)
	}
	// Next line.
	r = c.Access(0x140, false)
	if r.Hit {
		t.Errorf("next-line access: %+v, want miss", r)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct test of LRU order: 2-way cache, one set (size = 2 lines).
	c := newCache(t, 128, 64, 2)
	c.Access(0*64, false) // A
	c.Access(1*64, false) // B -> set full, A is LRU
	c.Access(0*64, false) // touch A, B becomes LRU
	c.Access(2*64, false) // C evicts B
	if !c.Contains(0 * 64) {
		t.Error("A evicted despite being MRU")
	}
	if c.Contains(1 * 64) {
		t.Error("B not evicted despite being LRU")
	}
	if !c.Contains(2 * 64) {
		t.Error("C not resident after fill")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := newCache(t, 128, 64, 1) // direct-mapped, 2 sets
	c.Access(0, true)            // dirty line in set 0
	r := c.Access(128, false)    // same set (128/64=2, 2%2=0), clean fill evicts dirty
	if !r.Writeback {
		t.Errorf("evicting dirty line: %+v, want writeback", r)
	}
	r = c.Access(256, false) // evicts the clean line
	if r.Writeback {
		t.Errorf("evicting clean line: %+v, want no writeback", r)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
}

func TestWriteAllocate(t *testing.T) {
	c := newCache(t, 1024, 64, 2)
	r := c.Access(0x40, true)
	if r.Hit || !r.Fill {
		t.Errorf("write miss: %+v, want fill (write-allocate)", r)
	}
	if !c.Contains(0x40) {
		t.Error("written line not resident")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := newCache(t, 128, 64, 1)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit -> dirty
	r := c.Access(128, false)
	if !r.Writeback {
		t.Error("write-hit line not written back on eviction")
	}
}

func TestFlush(t *testing.T) {
	c := newCache(t, 1024, 64, 2)
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	wb := c.Flush()
	if wb != 2 {
		t.Errorf("flush writebacks = %d, want 2", wb)
	}
	if c.Contains(0) || c.Contains(64) || c.Contains(128) {
		t.Error("lines resident after flush")
	}
	// Flushing an empty cache is a no-op.
	if wb := c.Flush(); wb != 0 {
		t.Errorf("second flush writebacks = %d, want 0", wb)
	}
}

func TestStatsConservation(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		c, err := New(Config{SizeBytes: 2048, LineBytes: 64, Ways: 4})
		if err != nil {
			return false
		}
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
		}
		s := c.Stats()
		return s.Hits+s.Misses == uint64(len(addrs)) &&
			s.Fills == s.Misses &&
			s.Writebacks <= s.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullyAssociativeWorkingSet(t *testing.T) {
	// 8 lines fully associative: a working set of 8 lines must keep
	// hitting after warm-up regardless of addresses.
	c := newCache(t, 512, 64, 8)
	addrs := []uint64{0, 64, 128, 192, 4096, 8192, 100 * 64, 555 * 64}
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.ResetStats()
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			if r := c.Access(a, false); !r.Hit {
				t.Fatalf("round %d addr %#x missed in warm fully-assoc cache", round, a)
			}
		}
	}
	if hr := c.Stats().HitRate(); hr != 1.0 {
		t.Errorf("warm hit rate = %v, want 1.0", hr)
	}
}

func TestHitRateZeroWhenUntouched(t *testing.T) {
	c := newCache(t, 512, 64, 8)
	if hr := c.Stats().HitRate(); hr != 0 {
		t.Errorf("untouched hit rate = %v", hr)
	}
}

func TestStreamingEvictsEverything(t *testing.T) {
	// A pure streaming pattern larger than the cache should produce
	// ~0% hit rate on a second pass that starts beyond capacity.
	c := newCache(t, 1024, 64, 4) // 16 lines
	for i := 0; i < 64; i++ {
		c.Access(uint64(i*64), false)
	}
	// Re-walk the first 16 lines: all evicted by the tail of the stream.
	c.ResetStats()
	for i := 0; i < 16; i++ {
		if r := c.Access(uint64(i*64), false); r.Hit {
			t.Errorf("line %d unexpectedly survived streaming eviction", i)
		}
	}
}
