package authblock

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/internal/trace"
)

// legacySearchWeighted is the pre-RunSet search, kept verbatim as the
// reference: distinct lengths collected from the slice, then every
// candidate scored with the per-access Evaluate scan. The production
// SearchWeighted must return bit-identical Results.
func legacySearchWeighted(runs []trace.Access, w Weights) Result {
	if len(runs) == 0 {
		return Result{Best: Cost{Block: MinBlock}}
	}
	lens := make([]int, 0, 8)
	distinct := map[int]bool{}
	for _, a := range runs {
		if n := int(a.Bytes); !distinct[n] {
			distinct[n] = true
			lens = append(lens, n)
		}
	}
	cands := Candidates(lens)
	res := Result{}
	bestScore := 0.0
	for _, b := range cands {
		c := Evaluate(runs, b)
		res.Scores = append(res.Scores, c)
		s := w.score(c)
		if res.Best.Block == 0 || s < bestScore ||
			(s == bestScore && c.Block > res.Best.Block) {
			res.Best = c
			bestScore = s
		}
	}
	if res.Best.Block == 0 {
		res.Best = Cost{Block: MinBlock}
	}
	return res
}

// genRuns builds a randomized run set sweeping the axes the search is
// sensitive to: grid alignment (aligned strides, fixed byte offsets,
// arbitrary placement), run length (divisor-rich, power-of-two, prime,
// tiny, huge), duplication (re-streamed runs), and read/write mix.
func genRuns(r *rand.Rand) []trace.Access {
	lengths := []uint32{64, 96, 225, 256, 300, 768, 1024, 1471, 4096, 8192, 12288, 65536, 1}
	n := 1 + r.Intn(48)
	runs := make([]trace.Access, 0, n)
	base := uint64(r.Intn(1 << 28))
	for len(runs) < n {
		l := lengths[r.Intn(len(lengths))]
		if r.Intn(8) == 0 {
			l = uint32(1 + r.Intn(1<<16)) // arbitrary length
		}
		var addr uint64
		switch r.Intn(3) {
		case 0: // aligned arithmetic progression from base
			addr = base + uint64(r.Intn(64))*uint64(l)
		case 1: // fixed misalignment off the stride grid
			addr = base + uint64(r.Intn(64))*uint64(l) + uint64(r.Intn(192))
		default: // arbitrary placement
			addr = base + uint64(r.Intn(1<<20))
		}
		kind := trace.Read
		if r.Intn(3) == 0 {
			kind = trace.Write
		}
		runs = append(runs, trace.Access{Addr: addr, Bytes: l, Kind: kind})
		// Re-stream the same run sometimes, like non-resident weights.
		for dup := r.Intn(4); dup > 0 && len(runs) < n; dup-- {
			runs = append(runs, runs[len(runs)-1])
		}
	}
	return runs
}

// TestSearchWeightedMatchesLegacyScan is the RunSet equivalence
// property: over randomized run sets, the summary-based search must
// return bit-identical Results (chosen block, full cost breakdown,
// and every candidate's score) to the legacy per-candidate scan,
// under both weight scenarios.
func TestSearchWeightedMatchesLegacyScan(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	weights := []Weights{DefaultWeights(), OnChipMACWeights()}
	for i := 0; i < 300; i++ {
		runs := genRuns(r)
		w := weights[i%len(weights)]
		got := SearchWeighted(runs, w)
		want := legacySearchWeighted(runs, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d (%d runs): RunSet search diverged\n got %+v\nwant %+v",
				i, len(runs), got, want)
		}
	}
}

// TestRunSetEvaluateMatchesScan checks the per-candidate cost identity
// directly, including the O(1) aligned fast path: an all-aligned set
// must produce the same Cost through the prefix-total shortcut as
// through the reference scan.
func TestRunSetEvaluateMatchesScan(t *testing.T) {
	aligned := make([]trace.Access, 24)
	for i := range aligned {
		k := trace.Read
		if i%3 == 0 {
			k = trace.Write
		}
		aligned[i] = trace.Access{Addr: uint64(i) * 768, Bytes: 768, Kind: k}
	}
	rs := NewRunSet(aligned)
	for _, b := range Candidates([]int{768}) {
		got := rs.Evaluate(b)
		want := Evaluate(aligned, b)
		if got != want {
			t.Errorf("block %d: RunSet cost %+v != scan %+v", b, got, want)
		}
	}
	// 768-divisor blocks must have hit the aligned path.
	if rs.alignG%768 != 0 {
		t.Errorf("alignG = %d, want a multiple of 768", rs.alignG)
	}
}

// TestRunSetDedup checks the multiplicity compression: re-streamed
// identical runs collapse to one entry with a count.
func TestRunSetDedup(t *testing.T) {
	var runs []trace.Access
	for i := 0; i < 10; i++ {
		runs = append(runs, trace.Access{Addr: 4096, Bytes: 512, Kind: trace.Read})
	}
	rs := NewRunSet(runs)
	if len(rs.Runs) != 1 || rs.Runs[0].Count != 10 {
		t.Fatalf("dedup failed: %+v", rs.Runs)
	}
	if rs.Source() != 10 || rs.TotalBytes() != 5120 {
		t.Errorf("source=%d total=%d, want 10/5120", rs.Source(), rs.TotalBytes())
	}
}

// TestCollectLayerMatchesPerTensorScan pins the single-walk collection
// against the per-tensor rescan it replaced, on real schedules: for
// every layer of every workload, CollectLayer's per-tensor sets must
// search to the same result as rebased per-tensor slices.
func TestCollectLayerMatchesPerTensorScan(t *testing.T) {
	cfg, err := scalesim.New(32, 32, 480*1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alex", "rest", "mob", "trf"} {
		res, err := cfg.SimulateNetwork(model.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, lr := range res.Layers {
			got := CollectLayer(lr.Trace)
			for _, tn := range []trace.Tensor{trace.IFMap, trace.Weights, trace.OFMap} {
				// Legacy collection: filter, find min, rebase.
				var runs []trace.Access
				var base uint64
				first := true
				for _, a := range lr.Trace.Accesses {
					if a.Class != trace.Data || a.Tensor != tn {
						continue
					}
					if first || a.Addr < base {
						base = a.Addr
						first = false
					}
				}
				for _, a := range lr.Trace.Accesses {
					if a.Class != trace.Data || a.Tensor != tn {
						continue
					}
					a.Addr -= base
					runs = append(runs, a)
				}
				rs := got.Tensor(tn)
				if len(runs) == 0 {
					if !rs.Empty() {
						t.Errorf("%s/%s %v: collected %d runs from empty tensor",
							name, lr.Layer.Name, tn, len(rs.Runs))
					}
					continue
				}
				if rs.Base != base {
					t.Errorf("%s/%s %v: base %#x want %#x", name, lr.Layer.Name, tn, rs.Base, base)
				}
				w := OnChipMACWeights()
				if gotR, wantR := rs.SearchWeighted(w), legacySearchWeighted(runs, w); !reflect.DeepEqual(gotR, wantR) {
					t.Errorf("%s/%s %v: collected search %+v != legacy %+v",
						name, lr.Layer.Name, tn, gotR.Best, wantR.Best)
				}
			}
		}
	}
}

// TestUnionMatchesConcat pins Union against the legacy inter-layer
// path: rebase both sides onto the common base, concatenate, search.
func TestUnionMatchesConcat(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		a, b := genRuns(r), genRuns(r)
		rsA, rsB := NewRunSet(a), NewRunSet(b)
		u := Union(&rsA, &rsB)
		// Legacy: both sides share the grid anchored at the overall
		// minimum (bases here are absolute addresses, Base=0 for raw
		// sets, so concatenation is directly comparable).
		concat := append(append([]trace.Access{}, a...), b...)
		w := OnChipMACWeights()
		got := u.SearchWeighted(w)
		want := legacySearchWeighted(concat, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: union search %+v != concat %+v", i, got.Best, want.Best)
		}
	}
}

// TestUnionEmptySides: an empty side must leave the other unchanged.
func TestUnionEmptySides(t *testing.T) {
	runs := []trace.Access{{Addr: 0, Bytes: 768, Kind: trace.Write}}
	rs := NewRunSet(runs)
	var empty RunSet
	if got := Union(&rs, &empty); !reflect.DeepEqual(got, rs) {
		t.Errorf("Union(rs, empty) = %+v, want %+v", got, rs)
	}
	if got := Union(&empty, &rs); !reflect.DeepEqual(got, rs) {
		t.Errorf("Union(empty, rs) = %+v, want %+v", got, rs)
	}
	if got := Union(&empty, &empty); !got.Empty() {
		t.Errorf("Union(empty, empty) not empty: %+v", got)
	}
}

// TestRunSetFingerprint: equal geometry fingerprints equal regardless
// of where the tensor sits; different geometry diverges.
func TestRunSetFingerprint(t *testing.T) {
	mk := func(base uint64, bytes uint32) RunSet {
		var runs []trace.Access
		for i := 0; i < 8; i++ {
			runs = append(runs, trace.Access{Addr: base + uint64(i)*uint64(bytes), Bytes: bytes, Kind: trace.Read})
		}
		b := newBuilder()
		for _, a := range runs {
			b.add(a.Addr, a.Bytes, a.Kind)
		}
		return b.finalize(true)
	}
	a, b := mk(0x1000_0000, 768), mk(0x5000_0000, 768)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same geometry at different bases must fingerprint equal")
	}
	c := mk(0x1000_0000, 512)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different run lengths must fingerprint differently")
	}
}

// TestCandidatesDeterministicOrder asserts the documented contract:
// ascending, deduplicated, independent of input order, with the bare
// power-of-two ladder for empty input and non-positive lengths
// skipped.
func TestCandidatesDeterministicOrder(t *testing.T) {
	a := Candidates([]int{768, 96, 768, 300})
	b := Candidates([]int{300, 768, 96})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("order-dependent candidates: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("candidates not strictly ascending: %v", a)
		}
	}
	ladder := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if got := Candidates(nil); !reflect.DeepEqual(got, ladder) {
		t.Errorf("Candidates(nil) = %v, want %v", got, ladder)
	}
	if got := Candidates([]int{0, -64, -1}); !reflect.DeepEqual(got, ladder) {
		t.Errorf("Candidates(non-positive) = %v, want %v", got, ladder)
	}
}

// TestSearchZeroLengthRunsOnly: a non-empty slice of zero-length runs
// must still search the power-of-two ladder (all costs zero, largest
// block wins the tie) exactly like the legacy path.
func TestSearchZeroLengthRunsOnly(t *testing.T) {
	runs := []trace.Access{{Addr: 100, Bytes: 0}, {Addr: 7, Bytes: 0, Kind: trace.Write}}
	got := Search(runs)
	want := legacySearchWeighted(runs, DefaultWeights())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-length runs: got %+v want %+v", got, want)
	}
	if got.Best.Block != MaxBlock {
		t.Errorf("all-zero-cost tie should prefer MaxBlock, got %d", got.Best.Block)
	}
}

// TestZeroLengthAccessAnchorsBase: the rebase anchor is the minimum
// address of all tensor accesses — including zero-length ones, exactly
// as the per-tensor trace rescan this collection replaced computed it.
func TestZeroLengthAccessAnchorsBase(t *testing.T) {
	b := newBuilder()
	b.add(100, 0, trace.Read) // zero-length, lowest address
	b.add(164, 512, trace.Write)
	rs := b.finalize(true)
	if rs.Base != 100 {
		t.Errorf("Base = %d, want 100 (zero-length access anchors the grid)", rs.Base)
	}
	if len(rs.Runs) != 1 || rs.Runs[0].Addr != 64 {
		t.Errorf("run offset = %+v, want single run at offset 64", rs.Runs)
	}
	if rs.Source() != 2 {
		t.Errorf("source = %d, want 2", rs.Source())
	}
}
