package authblock

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/internal/trace"
)

func alignedRuns(n int, runBytes uint32) []trace.Access {
	runs := make([]trace.Access, n)
	for i := range runs {
		runs[i] = trace.Access{
			Addr:  uint64(i) * uint64(runBytes),
			Bytes: runBytes,
			Kind:  trace.Read,
		}
	}
	return runs
}

func TestEvaluateAlignedRuns(t *testing.T) {
	runs := alignedRuns(10, 512)
	c := Evaluate(runs, 512)
	if c.OverFetch != 0 || c.RMWBytes != 0 {
		t.Errorf("aligned runs: overfetch=%d rmw=%d, want 0/0", c.OverFetch, c.RMWBytes)
	}
	if c.MACBytes != 10*MACBytes {
		t.Errorf("MAC bytes = %d, want %d", c.MACBytes, 10*MACBytes)
	}
}

func TestEvaluateFinerBlocksMoreMAC(t *testing.T) {
	runs := alignedRuns(10, 512)
	c64 := Evaluate(runs, 64)
	c512 := Evaluate(runs, 512)
	if c64.MACBytes <= c512.MACBytes {
		t.Errorf("64B MAC bytes %d <= 512B %d", c64.MACBytes, c512.MACBytes)
	}
}

func TestEvaluateMisalignedOverFetch(t *testing.T) {
	// 300-byte runs: 512B blocks over-fetch, 64B less so.
	runs := []trace.Access{
		{Addr: 0, Bytes: 300, Kind: trace.Read},
		{Addr: 300, Bytes: 300, Kind: trace.Read},
	}
	c512 := Evaluate(runs, 512)
	if c512.OverFetch == 0 {
		t.Error("no over-fetch recorded for misaligned runs")
	}
	c64 := Evaluate(runs, 64)
	if c64.OverFetch >= c512.OverFetch {
		t.Errorf("finer blocks did not reduce over-fetch: %d vs %d",
			c64.OverFetch, c512.OverFetch)
	}
}

func TestEvaluateWriteRMW(t *testing.T) {
	runs := []trace.Access{{Addr: 0, Bytes: 100, Kind: trace.Write}}
	c := Evaluate(runs, 512)
	if c.RMWBytes != 412 {
		t.Errorf("RMW = %d, want 412", c.RMWBytes)
	}
	if c.OverFetch != 0 {
		t.Errorf("write counted as read over-fetch: %d", c.OverFetch)
	}
}

func TestCandidatesIncludePowersAndDivisors(t *testing.T) {
	cands := Candidates([]int{768})
	want := map[int]bool{64: true, 128: true, 256: true, 512: true,
		1024: true, 2048: true, 4096: true, 8192: true,
		96: true, 192: true, 384: true, 768: true}
	got := map[int]bool{}
	for _, c := range cands {
		got[c] = true
		if c < MinBlock || c > MaxBlock {
			t.Errorf("candidate %d out of range", c)
		}
	}
	for w := range want {
		if !got[w] {
			t.Errorf("candidate %d missing", w)
		}
	}
}

func TestSearchPicksAlignedDivisor(t *testing.T) {
	// Runs of 768 bytes at 768-byte strides: block 768 gives zero
	// over-fetch and minimum MAC count; the search must find it (or a
	// tie at equal total cost with a larger aligned block, which
	// cannot happen here since 768 is the run length).
	runs := make([]trace.Access, 64)
	for i := range runs {
		runs[i] = trace.Access{Addr: uint64(i) * 768, Bytes: 768, Kind: trace.Read}
	}
	res := Search(runs)
	if res.Best.Block != 768 {
		t.Errorf("optBlk = %d, want 768", res.Best.Block)
	}
	if res.Best.OverFetch != 0 || res.Best.RMWBytes != 0 {
		t.Errorf("optBlk has overfetch=%d rmw=%d", res.Best.OverFetch, res.Best.RMWBytes)
	}
}

func TestSearchEmptyRunsFallsBack(t *testing.T) {
	res := Search(nil)
	if res.Best.Block != MinBlock {
		t.Errorf("empty search block = %d, want %d", res.Best.Block, MinBlock)
	}
}

func TestSearchBeatsFixedGranularities(t *testing.T) {
	// On real layer schedules, the searched optBlk must never cost
	// more than the fixed 64B and 512B granularities the paper
	// compares against.
	cfg, err := scalesim.New(32, 32, 480*1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alex", "rest", "mob", "trf"} {
		res, err := cfg.SimulateNetwork(model.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, lr := range res.Layers {
			r := SearchLayer(lr.Trace)
			f64 := Evaluate(lr.Trace.Accesses, 64)
			f512 := Evaluate(lr.Trace.Accesses, 512)
			if r.Best.Total() > f64.Total() {
				t.Errorf("%s/%s: optBlk %d cost %d > fixed-64 cost %d",
					name, lr.Layer.Name, r.Best.Block, r.Best.Total(), f64.Total())
			}
			if r.Best.Total() > f512.Total() {
				t.Errorf("%s/%s: optBlk %d cost %d > fixed-512 cost %d",
					name, lr.Layer.Name, r.Best.Block, r.Best.Total(), f512.Total())
			}
		}
	}
}

func TestSearchLayerIgnoresMetadata(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Access{Addr: 0, Bytes: 768, Kind: trace.Read, Class: trace.Data})
	tr.Append(trace.Access{Addr: 1 << 30, Bytes: 8, Kind: trace.Read, Class: trace.MACMeta})
	res := SearchLayer(tr)
	// The 8-byte metadata access must not drag the optBlk down.
	if res.Best.Block != 768 {
		t.Errorf("optBlk = %d, want 768 (metadata leaked into search)", res.Best.Block)
	}
}

func TestScoresCoverAllCandidates(t *testing.T) {
	runs := alignedRuns(4, 256)
	res := Search(runs)
	if len(res.Scores) == 0 {
		t.Fatal("no candidate scores recorded")
	}
	// Scores must cover exactly the deterministic candidate list, in
	// its documented ascending order.
	cands := Candidates([]int{256})
	if len(res.Scores) != len(cands) {
		t.Fatalf("scored %d candidates, want %d", len(res.Scores), len(cands))
	}
	for i, s := range res.Scores {
		if s.Block != cands[i] {
			t.Errorf("score %d is for block %d, want %d (ascending candidate order)",
				i, s.Block, cands[i])
		}
	}
	found := false
	for _, s := range res.Scores {
		if s.Block == res.Best.Block && s.Total() == res.Best.Total() {
			found = true
		}
		if s.Total() < res.Best.Total() {
			t.Errorf("candidate %d total %d beats chosen %d",
				s.Block, s.Total(), res.Best.Total())
		}
	}
	if !found {
		t.Error("best score not among candidate scores")
	}
}
