package authblock

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/tiling"
	"repro/internal/trace"
)

// Run is one deduplicated access run: Count source accesses shared the
// same offset, length and direction. Offsets are relative to the owning
// RunSet's Base (zero for sets built from raw accesses), so two layers
// with the same schedule geometry produce identical runs regardless of
// where their tensors sit in the address space.
type Run struct {
	Addr  uint64 // offset from the RunSet's grid anchor
	Bytes uint32
	Kind  trace.Kind
	Count uint32
}

// RunSet is a per-tensor run-length summary of an access stream: the
// input a block-size search needs, compressed to one entry per distinct
// (offset, length, direction) with a multiplicity count. A schedule
// that re-streams the same weight groups once per row tile collapses
// RowTiles-fold, so evaluating a candidate block costs O(distinct runs)
// instead of O(accesses) — and the summary carries prefix totals and an
// alignment GCD that reduce exactly-aligned candidates (SeDA's
// tile-divisor candidates, the ones that win) to O(1).
//
// Cost equivalence is exact, not approximate: all cost components are
// integer sums, so multiplying a run's per-access cost by its count is
// bit-identical to the legacy access-by-access Evaluate scan
// (TestSearchWeightedMatchesLegacyScan pins this on randomized sets).
type RunSet struct {
	// Base is the grid anchor the offsets are relative to: the minimum
	// access address for collected layers, zero for raw sets.
	Base uint64
	// Runs holds the deduplicated runs in first-appearance order.
	Runs []Run

	source     int    // accesses summarized (including zero-length ones)
	totalBytes uint64 // Σ Count·Bytes — prefix total for aligned candidates
	alignG     uint64 // gcd over every run's offset and length (0 = no runs)
	lens       []int  // distinct run lengths, first-appearance order
}

// Empty reports whether the set summarizes no accesses at all.
func (rs *RunSet) Empty() bool { return rs.source == 0 }

// Source returns how many accesses the set summarizes.
func (rs *RunSet) Source() int { return rs.source }

// TotalBytes returns the summed length of all summarized accesses.
func (rs *RunSet) TotalBytes() uint64 { return rs.totalBytes }

// Lens returns the distinct run lengths, in first-appearance order
// (Candidates sorts, so only the set matters).
func (rs *RunSet) Lens() []int { return rs.lens }

// runKey identifies a dedup group during construction.
type runKey struct {
	addr  uint64
	bytes uint32
	kind  trace.Kind
}

// builder accumulates runs during a walk; finalize rebases and seals.
type builder struct {
	rs      RunSet
	index   map[runKey]int
	minAddr uint64
	any     bool
}

func newBuilder() builder {
	return builder{index: make(map[runKey]int)}
}

// add records one access. Zero-length accesses count toward Source
// and toward the rebase anchor (the grid anchors at the minimum
// address of *all* tensor accesses, exactly as the per-tensor trace
// rescan this replaced computed it) but contribute no run: they cost
// nothing at any granularity and their length is not a candidate.
func (b *builder) add(addr uint64, bytes uint32, kind trace.Kind) {
	b.addN(addr, bytes, kind, 1)
}

// addN records count identical accesses at once.
func (b *builder) addN(addr uint64, bytes uint32, kind trace.Kind, count uint32) {
	if count == 0 {
		return
	}
	b.rs.source += int(count)
	if !b.any || addr < b.minAddr {
		b.minAddr = addr
		b.any = true
	}
	if bytes == 0 {
		return
	}
	k := runKey{addr: addr, bytes: bytes, kind: kind}
	if i, ok := b.index[k]; ok {
		b.rs.Runs[i].Count += count
		return
	}
	b.index[k] = len(b.rs.Runs)
	b.rs.Runs = append(b.rs.Runs, Run{Addr: addr, Bytes: bytes, Kind: kind, Count: count})
	n := int(bytes)
	for _, l := range b.rs.lens {
		if l == n {
			return
		}
	}
	b.rs.lens = append(b.rs.lens, n)
}

// finalize optionally rebases offsets to the minimum address and
// computes the prefix totals and alignment GCD.
func (b *builder) finalize(rebase bool) RunSet {
	rs := b.rs
	if rebase && b.any {
		rs.Base = b.minAddr
		for i := range rs.Runs {
			rs.Runs[i].Addr -= rs.Base
		}
	}
	for i := range rs.Runs {
		r := &rs.Runs[i]
		rs.totalBytes += uint64(r.Count) * uint64(r.Bytes)
		rs.alignG = gcd64(rs.alignG, r.Addr)
		rs.alignG = gcd64(rs.alignG, uint64(r.Bytes))
	}
	return rs
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewRunSet summarizes a raw access slice without rebasing: offsets
// are the accesses' absolute addresses, so evaluation is bit-identical
// to scanning the slice itself.
func NewRunSet(runs []trace.Access) RunSet {
	b := newBuilder()
	for i := range runs {
		b.add(runs[i].Addr, runs[i].Bytes, runs[i].Kind)
	}
	return b.finalize(false)
}

// LayerRuns is the per-tensor run summary of one layer's spine,
// collected in a single walk. Each tensor's set is rebased to its own
// minimum address, anchoring the protection-block grid per tensor the
// way the SeDA search expects.
type LayerRuns struct {
	IFMap   RunSet
	Weights RunSet
	OFMap   RunSet
}

// Tensor returns the named tensor's run set.
func (lr *LayerRuns) Tensor(tn trace.Tensor) *RunSet {
	switch tn {
	case trace.IFMap:
		return &lr.IFMap
	case trace.Weights:
		return &lr.Weights
	case trace.OFMap:
		return &lr.OFMap
	}
	return nil
}

// CollectLayer walks a layer's spine exactly once and summarizes its
// data accesses per tensor. This replaces the per-tensor trace rescans
// the SeDA block precompute used to make — each layer trace was walked
// twice per tensor per consumer — with one pass feeding every search.
func CollectLayer(t *trace.Trace) LayerRuns {
	bi, bw, bo := newBuilder(), newBuilder(), newBuilder()
	for i := range t.Accesses {
		a := &t.Accesses[i]
		if a.Class != trace.Data {
			continue
		}
		switch a.Tensor {
		case trace.IFMap:
			bi.add(a.Addr, a.Bytes, a.Kind)
		case trace.Weights:
			bw.add(a.Addr, a.Bytes, a.Kind)
		case trace.OFMap:
			bo.add(a.Addr, a.Bytes, a.Kind)
		}
	}
	return LayerRuns{
		IFMap:   bi.finalize(true),
		Weights: bw.finalize(true),
		OFMap:   bo.finalize(true),
	}
}

// Union merges two run sets onto a common grid anchor — the smaller
// of the two bases — re-deduplicating runs that coincide across the
// sets. This is the inter-layer search input: the producer's ofmap
// writes and the consumer's ifmap reads of the shared activation
// tensor, on one block grid. An empty side leaves the other
// unchanged. Anchor choice matches the legacy per-slice path exactly:
// every access of a non-empty side participates in its Base —
// including zero-length ones, which carry no cost or candidate but do
// anchor the grid.
func Union(a, b *RunSet) RunSet {
	if b.Empty() {
		return *a
	}
	if a.Empty() {
		return *b
	}
	// Both sides summarize at least one access, so both Bases are real
	// minimum addresses: the common anchor is their minimum.
	base := a.Base
	if b.Base < base {
		base = b.Base
	}
	bb := newBuilder()
	for _, rs := range []*RunSet{a, b} {
		for _, r := range rs.Runs {
			bb.addN(r.Addr+rs.Base-base, r.Bytes, r.Kind, r.Count)
		}
		// Zero-length accesses have no run to carry over but still
		// count toward the source tally.
		bb.rs.source += rs.source - countRuns(rs)
	}
	out := bb.finalize(false)
	out.Base = base
	return out
}

// countRuns sums the multiplicities of a set's runs (its non-zero-
// length source accesses).
func countRuns(rs *RunSet) int {
	n := 0
	for _, r := range rs.Runs {
		n += int(r.Count)
	}
	return n
}

// Evaluate scores one candidate block size against the summarized
// runs, bit-identically to the legacy per-access scan. Exactly aligned
// candidates — block divides every run's offset and length, which
// includes SeDA's winning tile-divisor candidates — resolve in O(1)
// from the prefix totals: no over-fetch, no RMW, and one MAC per
// block, i.e. MACBytes·TotalBytes/block. Other candidates fall back to
// one pass over the deduplicated runs, each run's cost scaled by its
// multiplicity.
func (rs *RunSet) Evaluate(block int) Cost {
	c := Cost{Block: block}
	b := uint64(block)
	if len(rs.Runs) == 0 {
		return c
	}
	if rs.alignG%b == 0 {
		c.MACBytes = rs.totalBytes / b * MACBytes
		return c
	}
	for i := range rs.Runs {
		r := &rs.Runs[i]
		n := uint64(r.Bytes)
		cnt := uint64(r.Count)
		c.MACBytes += cnt * tiling.BlocksTouched(r.Addr, n, b) * MACBytes
		if r.Kind == trace.Read {
			c.OverFetch += cnt * tiling.ReadOverFetch(r.Addr, n, b)
		} else {
			c.RMWBytes += cnt * tiling.WriteRMWBytes(r.Addr, n, b)
		}
	}
	return c
}

// Search picks the optBlk for the summarized runs under the default
// (off-chip MAC) weights.
func (rs *RunSet) Search() Result { return rs.SearchWeighted(DefaultWeights()) }

// SearchWeighted picks the optBlk under explicit cost weights,
// evaluating every candidate incrementally against the summary instead
// of rescanning an access slice per candidate. Results are
// bit-identical to the legacy scan: same candidate set (distinct run
// lengths feed Candidates), same integer costs, same tie-breaking
// (ties prefer the larger block).
func (rs *RunSet) SearchWeighted(w Weights) Result {
	if rs.Empty() {
		return Result{Best: Cost{Block: MinBlock}}
	}
	cands := Candidates(rs.lens)
	res := Result{}
	bestScore := 0.0
	for _, b := range cands {
		c := rs.Evaluate(b)
		res.Scores = append(res.Scores, c)
		s := w.score(c)
		if res.Best.Block == 0 || s < bestScore ||
			(s == bestScore && c.Block > res.Best.Block) {
			res.Best = c
			bestScore = s
		}
	}
	if res.Best.Block == 0 {
		res.Best = Cost{Block: MinBlock}
	}
	return res
}

// Fingerprint returns a canonical digest of the summarized geometry:
// the deduplicated runs (offset, length, direction, multiplicity) in
// collection order. Two layers whose schedules coincide — the same
// tiling on the same tensor shapes, wherever the tensors live —
// fingerprint equal, which is what lets the server and edge NPU
// evaluations share one search when their tilings agree. Base is
// deliberately excluded: the search operates on rebased offsets only.
func (rs *RunSet) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var buf [17]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(rs.Runs)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(rs.source))
	h.Write(buf[:16])
	for i := range rs.Runs {
		r := &rs.Runs[i]
		binary.LittleEndian.PutUint64(buf[:8], r.Addr)
		binary.LittleEndian.PutUint32(buf[8:12], r.Bytes)
		binary.LittleEndian.PutUint32(buf[12:16], r.Count)
		buf[16] = byte(r.Kind)
		h.Write(buf[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
