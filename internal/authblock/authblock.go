// Package authblock implements the SecureLoop-style authentication-
// block search SeDA uses to pick optBlk, the optimal integrity-
// verification granularity per layer (paper §III-C: "We use the
// scheduling search strategy proposed in the SecureLoop [10] to obtain
// the optimal authentication block (optBlk)").
//
// The search scores candidate block sizes against the layer's actual
// access-run geometry (from the systolic-array schedule): a candidate
// pays for
//
//   - metadata: one 8 B MAC fetch per protection block touched,
//   - over-fetch: bytes decrypted/verified beyond the run (misaligned
//     boundaries), and
//   - read-modify-write: uncovered bytes of partially written blocks,
//
// and the candidate with the lowest total cost wins. Tile-aligned
// candidates (the exact run length and its divisors) are searched in
// addition to the conventional power-of-two sizes, which is how SeDA's
// intra-layer awareness eliminates redundant verification entirely
// when a divisor of the run length exists.
package authblock

import (
	"sort"

	"repro/internal/tiling"
	"repro/internal/trace"
)

// MACBytes is the per-block metadata cost (64-bit MAC).
const MACBytes = 8

// MinBlock is the smallest protection unit the engine supports.
const MinBlock = 64

// MaxBlock caps the search; beyond this the SRAM staging cost of
// whole-block verification outweighs metadata savings.
const MaxBlock = 8192

// Cost breaks down a candidate's score in bytes of induced traffic.
type Cost struct {
	Block     int
	MACBytes  uint64 // metadata fetch/store traffic
	OverFetch uint64 // misaligned read over-fetch
	RMWBytes  uint64 // partial-write read-back
}

// Total returns the summed cost.
func (c Cost) Total() uint64 { return c.MACBytes + c.OverFetch + c.RMWBytes }

// Evaluate scores one candidate block size against a set of access
// runs with a direct per-access scan. It is the reference cost model:
// the RunSet-summary evaluation the searches use must stay
// bit-identical to it (the randomized property test and the
// FuzzAuthblockEvaluate target both compare against this scan).
func Evaluate(runs []trace.Access, block int) Cost {
	c := Cost{Block: block}
	b := uint64(block)
	for _, a := range runs {
		n := uint64(a.Bytes)
		c.MACBytes += tiling.BlocksTouched(a.Addr, n, b) * MACBytes
		if a.Kind == trace.Read {
			c.OverFetch += tiling.ReadOverFetch(a.Addr, n, b)
		} else {
			c.RMWBytes += tiling.WriteRMWBytes(a.Addr, n, b)
		}
	}
	return c
}

// Candidates returns the block sizes the search considers for the
// given run lengths: powers of two from MinBlock to MaxBlock plus
// every divisor of each distinct run length within [MinBlock,
// MaxBlock] (the tile-aligned candidates).
//
// The result is deterministic for any input order or duplication: it
// is deduplicated and sorted ascending, so the search visits
// candidates smallest-first regardless of how the lengths were
// collected (TestCandidatesDeterministicOrder pins this). A nil or
// empty runLens yields exactly the power-of-two ladder; non-positive
// lengths — the zero-length runs a degenerate schedule can emit — are
// skipped rather than searched for divisors.
func Candidates(runLens []int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(b int) {
		if b >= MinBlock && b <= MaxBlock && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	for b := MinBlock; b <= MaxBlock; b *= 2 {
		add(b)
	}
	for _, n := range runLens {
		if n <= 0 {
			continue
		}
		for d := 1; d*d <= n; d++ {
			if n%d == 0 {
				add(d)
				add(n / d)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Result is the chosen optBlk for a layer plus the scores of every
// candidate (kept for ablation benches).
type Result struct {
	Best   Cost
	Scores []Cost
}

// Weights scales the cost components for the scenario at hand. The
// default weighs everything equally (optBlk MACs stored off-chip);
// SeDA's multi-level mechanism aggregates optBlk MACs on-chip, so its
// search zeroes the MAC-traffic weight and optimizes pure alignment.
type Weights struct {
	MAC       float64
	OverFetch float64
	RMW       float64
}

// DefaultWeights is the off-chip-MAC scenario.
func DefaultWeights() Weights { return Weights{MAC: 1, OverFetch: 1, RMW: 1} }

// OnChipMACWeights is SeDA's scenario: per-block MACs cost no traffic,
// only misalignment does.
func OnChipMACWeights() Weights { return Weights{MAC: 0, OverFetch: 1, RMW: 1} }

func (w Weights) score(c Cost) float64 {
	return w.MAC*float64(c.MACBytes) + w.OverFetch*float64(c.OverFetch) + w.RMW*float64(c.RMWBytes)
}

// Search picks the optBlk for a layer given its access runs, with the
// default (off-chip MAC) cost weights. With no runs it falls back to
// MinBlock.
func Search(runs []trace.Access) Result {
	return SearchWeighted(runs, DefaultWeights())
}

// SearchWeighted picks the optBlk under explicit cost weights. Ties
// prefer the larger block (fewer MACs to compute on-chip).
//
// The access slice is summarized into a RunSet once and every
// candidate is scored against the summary, instead of the legacy
// rescan of the full slice per candidate. The Result — chosen block,
// cost breakdown, and per-candidate scores — is bit-identical to the
// legacy scan (all cost components are integer sums, so dedup
// multiplication and evaluation order cannot change a single bit; the
// randomized property test pins it).
func SearchWeighted(runs []trace.Access, w Weights) Result {
	if len(runs) == 0 {
		return Result{Best: Cost{Block: MinBlock}}
	}
	rs := NewRunSet(runs)
	return rs.SearchWeighted(w)
}

// SearchLayer runs the search over a layer's data accesses only
// (metadata accesses are a scheme artifact, not schedule geometry).
func SearchLayer(t *trace.Trace) Result {
	b := newBuilder()
	for i := range t.Accesses {
		if a := &t.Accesses[i]; a.Class == trace.Data {
			b.add(a.Addr, a.Bytes, a.Kind)
		}
	}
	rs := b.finalize(false)
	return rs.Search()
}
