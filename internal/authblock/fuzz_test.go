package authblock

import (
	"encoding/binary"
	"testing"

	"repro/internal/trace"
)

// decodeFuzzRuns turns raw fuzz bytes into a bounded run slice: 13
// bytes per run (8 address, 4 length, 1 direction). Addresses are
// masked to 44 bits — a 16 TB space, far beyond any schedule, while
// keeping addr+bytes clear of uint64 wraparound so the cost model's
// arithmetic stays in its documented domain. Lengths are adversarial:
// the full uint32 range, including zero.
func decodeFuzzRuns(data []byte) []trace.Access {
	const stride = 13
	n := len(data) / stride
	if n > 64 {
		n = 64
	}
	runs := make([]trace.Access, 0, n)
	for i := 0; i < n; i++ {
		rec := data[i*stride : (i+1)*stride]
		kind := trace.Read
		if rec[12]&1 == 1 {
			kind = trace.Write
		}
		runs = append(runs, trace.Access{
			Addr:  binary.LittleEndian.Uint64(rec[0:8]) & ((1 << 44) - 1),
			Bytes: binary.LittleEndian.Uint32(rec[8:12]),
			Kind:  kind,
		})
	}
	return runs
}

// FuzzAuthblockEvaluate checks the cost model's invariants on
// adversarial run sets:
//
//   - RunSet-summary evaluation is bit-identical to the reference
//     per-access scan at every candidate the search would visit;
//   - finer blocks never decrease MACBytes (each coarse block splits
//     into whole finer blocks, so the touched count is monotone);
//   - Total() never overflows: it is a sum of three components, each
//     bounded by (runs × (maxlen + 2·MaxBlock)) ≪ 2⁶⁴, so the sum
//     must dominate every addend;
//   - the full weighted search agrees with the legacy scan.
func FuzzAuthblockEvaluate(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 64)
	for _, r := range []trace.Access{
		{Addr: 0, Bytes: 768},
		{Addr: 768, Bytes: 768, Kind: trace.Write},
		{Addr: 300, Bytes: 0},
		{Addr: 1<<44 - 1, Bytes: 1<<32 - 1},
	} {
		var rec [13]byte
		binary.LittleEndian.PutUint64(rec[0:8], r.Addr)
		binary.LittleEndian.PutUint32(rec[8:12], r.Bytes)
		rec[12] = byte(r.Kind)
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		runs := decodeFuzzRuns(data)
		if len(runs) == 0 {
			return
		}
		rs := NewRunSet(runs)
		lens := make([]int, 0, len(runs))
		for _, a := range runs {
			lens = append(lens, int(a.Bytes))
		}
		for _, b := range Candidates(lens) {
			ref := Evaluate(runs, b)
			got := rs.Evaluate(b)
			if got != ref {
				t.Fatalf("block %d: RunSet cost %+v != reference scan %+v", b, got, ref)
			}
			tot := ref.Total()
			if tot < ref.MACBytes || tot < ref.OverFetch || tot < ref.RMWBytes {
				t.Fatalf("block %d: Total %d overflowed (mac=%d of=%d rmw=%d)",
					b, tot, ref.MACBytes, ref.OverFetch, ref.RMWBytes)
			}
			// Monotonicity holds along divisibility: halving the block
			// splits each touched block into whole finer blocks, so the
			// finer granularity can only touch at least as many. (It
			// does NOT hold between arbitrary candidate sizes — a
			// misaligned run can straddle a boundary of a larger,
			// non-multiple block it fit inside at the smaller size.)
			if b%2 == 0 && b/2 >= MinBlock {
				if finer := Evaluate(runs, b/2); finer.MACBytes < ref.MACBytes {
					t.Fatalf("finer block %d has MACBytes %d < block %d's %d",
						b/2, finer.MACBytes, b, ref.MACBytes)
				}
			}
		}
		got := SearchWeighted(runs, DefaultWeights())
		want := legacySearchWeighted(runs, DefaultWeights())
		if got.Best != want.Best {
			t.Fatalf("search diverged: %+v vs %+v", got.Best, want.Best)
		}
	})
}
