package explore

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/seda"
)

// A grid spec names axes of the NPU/DRAM config space and the values
// each sweeps; the explored grid is their cartesian product over a
// base configuration that supplies every unswept knob.
//
// Grammar (axes comma-separated, values '|'-separated):
//
//	spec   := axis ( ',' axis )*
//	axis   := name '=' values
//	values := item ( '|' item )*
//	item   := value | range
//	range  := lo ':' hi [ ':' step ]        // hi inclusive
//	step   := FLOAT 'x'                     // geometric, e.g. 2x, 1.5x
//	        | '+' VALUE                     // additive, e.g. +64, +1M
//	                                        // default: 2x
//	value  := FLOAT [ 'K' | 'M' | 'G' | 'T' ]
//
// Suffixes are binary (x1024) on byte/size axes and decimal (x1000)
// on rate axes; rate axes also accept scientific notation (2.75e9).
// Example: rows=32:256,sram=480K:24M,channels=2|4|8,rowbytes=1K:4K.
//
// Axis names (case-insensitive): rows, cols, sram, freq, bw,
// channels, banks, rowbytes, burstbytes, window. Sweeping rows
// without mentioning cols keeps the array square (cols tracks rows);
// every other unswept axis holds the base config's value.

// axisKind selects the value grammar of an axis.
type axisKind int

const (
	kindCount axisKind = iota // plain integers (rows, channels, ...)
	kindBytes                 // integers with binary K/M/G/T suffixes
	kindRate                  // floats with decimal suffixes (Hz, B/s)
)

type axisDef struct {
	name string
	kind axisKind
	set  func(*seda.NPUConfig, float64)
}

// axisTable fixes the canonical axis order: enumeration, canonical
// spec strings and point naming all follow it, so identical specs
// written in any axis order produce identical results (and ETags).
var axisTable = []axisDef{
	{"rows", kindCount, func(c *seda.NPUConfig, v float64) { c.ArrayRows = int(v) }},
	{"cols", kindCount, func(c *seda.NPUConfig, v float64) { c.ArrayCols = int(v) }},
	{"sram", kindBytes, func(c *seda.NPUConfig, v float64) { c.SRAMBytes = int(v) }},
	{"freq", kindRate, func(c *seda.NPUConfig, v float64) { c.FreqHz = v }},
	{"bw", kindRate, func(c *seda.NPUConfig, v float64) { c.BandwidthB = v }},
	{"channels", kindCount, func(c *seda.NPUConfig, v float64) { c.Channels = int(v) }},
	{"banks", kindCount, func(c *seda.NPUConfig, v float64) { c.BanksPerChan = int(v) }},
	{"rowbytes", kindBytes, func(c *seda.NPUConfig, v float64) { c.RowBytes = int(v) }},
	{"burstbytes", kindBytes, func(c *seda.NPUConfig, v float64) { c.BurstBytes = int(v) }},
	{"window", kindCount, func(c *seda.NPUConfig, v float64) { c.WindowSize = int(v) }},
}

func axisByName(name string) (axisDef, bool) {
	for _, a := range axisTable {
		if strings.EqualFold(a.name, name) {
			return a, true
		}
	}
	return axisDef{}, false
}

func axisNames() []string {
	names := make([]string, len(axisTable))
	for i, a := range axisTable {
		names[i] = a.name
	}
	return names
}

// maxAxisValues bounds a single axis so a typo'd step cannot enumerate
// forever; the grid-level budget is the caller's MaxPoints.
const maxAxisValues = 4096

// Spec is a parsed grid specification.
type Spec struct {
	// axes in axisTable order; only swept axes present.
	axes []specAxis
}

type specAxis struct {
	def    axisDef
	values []float64 // normalized, deduplicated, ascending input order
}

// ParseSpec parses a grid spec. The returned Spec is canonical:
// Canonical() of two specs describing the same grid are equal strings.
func ParseSpec(spec string) (*Spec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("explore: empty spec (axes: %s)", strings.Join(axisNames(), ", "))
	}
	seen := map[string][]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, vals, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("explore: axis %q is not name=values", part)
		}
		def, ok := axisByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("explore: unknown axis %q (axes: %s)", name, strings.Join(axisNames(), ", "))
		}
		if _, dup := seen[def.name]; dup {
			return nil, fmt.Errorf("explore: axis %q specified twice", def.name)
		}
		values, err := parseValues(def, vals)
		if err != nil {
			return nil, fmt.Errorf("explore: axis %s: %w", def.name, err)
		}
		seen[def.name] = values
	}
	s := &Spec{}
	for _, def := range axisTable {
		if values, ok := seen[def.name]; ok {
			s.axes = append(s.axes, specAxis{def: def, values: values})
		}
	}
	return s, nil
}

func parseValues(def axisDef, spec string) ([]float64, error) {
	var out []float64
	for _, item := range strings.Split(spec, "|") {
		item = strings.TrimSpace(item)
		vals, err := parseItem(def, item)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	// Deduplicate while preserving order (ranges emit ascending).
	dedup := out[:0]
	have := map[float64]bool{}
	for _, v := range out {
		if !have[v] {
			have[v] = true
			dedup = append(dedup, v)
		}
	}
	if len(dedup) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return dedup, nil
}

func parseItem(def axisDef, item string) ([]float64, error) {
	parts := strings.Split(item, ":")
	switch len(parts) {
	case 1:
		v, err := parseValue(def, parts[0])
		if err != nil {
			return nil, err
		}
		return []float64{v}, nil
	case 2, 3:
		lo, err := parseValue(def, parts[0])
		if err != nil {
			return nil, err
		}
		hi, err := parseValue(def, parts[1])
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("range %q descends", item)
		}
		step := "2x"
		if len(parts) == 3 {
			step = strings.TrimSpace(parts[2])
		}
		return expandRange(def, lo, hi, step)
	default:
		return nil, fmt.Errorf("range %q has more than two ':'", item)
	}
}

func expandRange(def axisDef, lo, hi float64, step string) ([]float64, error) {
	var out []float64
	emit := func(v float64) error {
		if len(out) >= maxAxisValues {
			return fmt.Errorf("range expands past %d values", maxAxisValues)
		}
		out = append(out, normalize(def, v))
		return nil
	}
	// hi is inclusive with a relative tolerance, so 32:256:2x ends on
	// 256 even after accumulated float multiplication error.
	tol := hi * (1 + 1e-9)
	switch {
	case strings.HasSuffix(step, "x"):
		f, err := strconv.ParseFloat(strings.TrimSuffix(step, "x"), 64)
		if err != nil || f <= 1 {
			return nil, fmt.Errorf("geometric step %q must be a factor > 1", step)
		}
		for v := lo; v <= tol; v *= f {
			if err := emit(v); err != nil {
				return nil, err
			}
		}
	case strings.HasPrefix(step, "+"):
		d, err := parseValue(def, strings.TrimPrefix(step, "+"))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("additive step %q must be a positive value", step)
		}
		for v := lo; v <= tol; v += d {
			if err := emit(v); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("step %q is neither Nx (geometric) nor +N (additive)", step)
	}
	return out, nil
}

// normalize rounds integer axes to whole values so geometric steps
// with fractional factors still land on representable configs.
func normalize(def axisDef, v float64) float64 {
	if def.kind == kindRate {
		return v
	}
	return math.Round(v)
}

func parseValue(def axisDef, s string) (float64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	unit := 1000.0
	if def.kind != kindRate {
		unit = 1024.0
	}
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'K', 'k':
			mult, s = unit, s[:n-1]
		case 'M', 'm':
			mult, s = unit*unit, s[:n-1]
		case 'G', 'g':
			mult, s = unit*unit*unit, s[:n-1]
		case 'T', 't':
			mult, s = unit*unit*unit*unit, s[:n-1]
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("value %q: %w", s, err)
	}
	v *= mult
	if v <= 0 {
		return 0, fmt.Errorf("value %q is not positive", s)
	}
	if def.kind != kindRate && v != math.Trunc(v) {
		return 0, fmt.Errorf("value %q is not an integer", s)
	}
	return v, nil
}

// Canonical returns the normalized spec string: axes in table order,
// every value expanded and printed exactly. Two specs enumerating the
// same grid canonicalize identically, which is what the serving
// layer's ETag hashes.
func (s *Spec) Canonical() string {
	var b strings.Builder
	for i, ax := range s.axes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ax.def.name)
		b.WriteByte('=')
		for j, v := range ax.values {
			if j > 0 {
				b.WriteByte('|')
			}
			if ax.def.kind == kindRate {
				b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				b.WriteString(strconv.FormatInt(int64(v), 10))
			}
		}
	}
	return b.String()
}

// NumPoints returns the grid size (product of axis lengths),
// saturating at math.MaxInt: a cross product of maximal axes
// (maxAxisValues^len(axisTable)) overflows int, and a wrapped product
// would slip past the MaxPoints guard and materialize the whole grid.
func (s *Spec) NumPoints() int {
	n := 1
	for _, ax := range s.axes {
		if n > math.MaxInt/len(ax.values) {
			return math.MaxInt
		}
		n *= len(ax.values)
	}
	return n
}

// hasAxis reports whether the spec sweeps the named axis.
func (s *Spec) hasAxis(name string) bool {
	for _, ax := range s.axes {
		if ax.def.name == name {
			return true
		}
	}
	return false
}

// Points enumerates the grid over the base configuration in canonical
// order (last axis fastest). Every point gets a deterministic
// geometry-derived name, so the same platform reached through two
// different specs shares one cache fingerprint. Points are not
// validated — the engine partitions valid from invalid so a cross
// product with some impossible combinations still explores the rest.
func (s *Spec) Points(base seda.NPUConfig) []seda.NPUConfig {
	squared := s.hasAxis("rows") && !s.hasAxis("cols")
	pts := make([]seda.NPUConfig, 0, s.NumPoints())
	idx := make([]int, len(s.axes))
	for {
		cfg := base
		for i, ax := range s.axes {
			ax.def.set(&cfg, ax.values[idx[i]])
		}
		if squared {
			cfg.ArrayCols = cfg.ArrayRows
		}
		cfg.Name = PointName(cfg)
		pts = append(pts, cfg)
		// Odometer increment, last axis fastest.
		i := len(s.axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.axes[i].values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return pts
		}
	}
}

// PointName derives the canonical name of an explored configuration
// from its effective geometry (DRAM knobs after default resolution),
// so a knob left at zero and the same knob set to its default name —
// and therefore fingerprint — identically.
func PointName(c seda.NPUConfig) string {
	d := c.DRAMConfig()
	return fmt.Sprintf("x%dx%d-s%d-f%s-b%s-c%d-k%d-r%d-q%d-w%d",
		c.ArrayRows, c.ArrayCols, c.SRAMBytes,
		strconv.FormatFloat(c.FreqHz, 'g', -1, 64),
		strconv.FormatFloat(c.BandwidthB, 'g', -1, 64),
		d.Channels, d.BanksPerChan, d.RowBytes, d.BurstBytes, d.WindowSize)
}

// SortedAxisNames returns the table-order names of the spec's axes.
func (s *Spec) SortedAxisNames() []string {
	names := make([]string, len(s.axes))
	for i, ax := range s.axes {
		names[i] = ax.def.name
	}
	sort.Strings(names)
	return names
}
