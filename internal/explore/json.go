package explore

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"repro/seda"
)

// Wire form of a Result. Field order is fixed by the struct, float
// values marshal shortest-form, and Points keep canonical enumeration
// order — so a Result's JSON is a deterministic function of its inputs
// (which the serving layer's ETag relies on).

type pointJSON struct {
	Name            string  `json:"name"`
	Rows            int     `json:"rows"`
	Cols            int     `json:"cols"`
	SRAMBytes       int     `json:"sram_bytes"`
	FreqHz          float64 `json:"freq_hz"`
	BandwidthB      float64 `json:"bandwidth_b"`
	Channels        int     `json:"channels"`
	BanksPerChan    int     `json:"banks_per_chan"`
	RowBytes        int     `json:"row_bytes"`
	BurstBytes      int     `json:"burst_bytes"`
	WindowSize      int     `json:"window_size"`
	Cost            float64 `json:"cost"`
	SurrogateCycles float64 `json:"surrogate_cycles"`
	Candidate       bool    `json:"candidate"`
	Confirmed       bool    `json:"confirmed"`
	ExecCycles      uint64  `json:"exec_cycles,omitempty"`
	Frontier        bool    `json:"frontier"`
}

type resultJSON struct {
	PipelineVersion  string `json:"pipeline_version"`
	SurrogateVersion string `json:"surrogate_version"`
	Spec             string `json:"spec"`
	Base             string `json:"base"`
	Scheme           string `json:"scheme"`

	Workloads []string `json:"workloads"`

	Margin      float64 `json:"margin"`
	Calibration struct {
		Alpha     float64    `json:"alpha"`
		Beta      float64    `json:"beta"`
		MaxRelErr float64    `json:"max_rel_err"`
		Points    []CalPoint `json:"points"`
	} `json:"calibration"`

	PointsTotal     int `json:"points_total"`
	PointsInvalid   int `json:"points_invalid"`
	PointsCandidate int `json:"points_candidate"`
	PointsConfirmed int `json:"points_confirmed"`

	Frontier []pointJSON `json:"frontier"`
	Points   []pointJSON `json:"points"`
}

func toPointJSON(p *Point) pointJSON {
	d := p.Config.DRAMConfig()
	return pointJSON{
		Name:            p.Config.Name,
		Rows:            p.Config.ArrayRows,
		Cols:            p.Config.ArrayCols,
		SRAMBytes:       p.Config.SRAMBytes,
		FreqHz:          p.Config.FreqHz,
		BandwidthB:      p.Config.BandwidthB,
		Channels:        d.Channels,
		BanksPerChan:    d.BanksPerChan,
		RowBytes:        d.RowBytes,
		BurstBytes:      d.BurstBytes,
		WindowSize:      d.WindowSize,
		Cost:            p.Cost,
		SurrogateCycles: p.SurrogateCycles,
		Candidate:       p.Candidate,
		Confirmed:       p.Confirmed,
		ExecCycles:      p.ExecCycles,
		Frontier:        p.Frontier,
	}
}

func (r *Result) wire() resultJSON {
	doc := resultJSON{
		PipelineVersion:  seda.PipelineVersion,
		SurrogateVersion: SurrogateVersion,
		Spec:             r.Spec,
		Base:             r.Base,
		Scheme:           r.Scheme.Name(),
		Workloads:        r.Workloads,
		Margin:           r.Margin,
		PointsTotal:      len(r.Points) + r.Invalid,
		PointsInvalid:    r.Invalid,
		PointsCandidate:  r.Candidates(),
		PointsConfirmed:  r.Confirmed(),
	}
	doc.Calibration.Alpha = r.Calibration.Alpha
	doc.Calibration.Beta = r.Calibration.Beta
	doc.Calibration.MaxRelErr = r.Calibration.MaxRelErr
	doc.Calibration.Points = r.Calibration.Points
	for _, i := range r.Frontier {
		doc.Frontier = append(doc.Frontier, toPointJSON(&r.Points[i]))
	}
	for i := range r.Points {
		doc.Points = append(doc.Points, toPointJSON(&r.Points[i]))
	}
	return doc
}

// WriteJSON writes the result as indented JSON with a fixed field
// order and a trailing newline.
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.wire(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV writes one row per explored point (canonical order) with
// the same fields as the JSON points array.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"name", "rows", "cols", "sram_bytes", "freq_hz", "bandwidth_b",
		"channels", "banks_per_chan", "row_bytes", "burst_bytes", "window_size",
		"cost", "surrogate_cycles", "candidate", "confirmed", "exec_cycles", "frontier",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range r.Points {
		p := toPointJSON(&r.Points[i])
		if err := cw.Write([]string{
			p.Name,
			strconv.Itoa(p.Rows), strconv.Itoa(p.Cols), strconv.Itoa(p.SRAMBytes),
			f(p.FreqHz), f(p.BandwidthB),
			strconv.Itoa(p.Channels), strconv.Itoa(p.BanksPerChan),
			strconv.Itoa(p.RowBytes), strconv.Itoa(p.BurstBytes), strconv.Itoa(p.WindowSize),
			f(p.Cost), f(p.SurrogateCycles),
			strconv.FormatBool(p.Candidate), strconv.FormatBool(p.Confirmed),
			strconv.FormatUint(p.ExecCycles, 10),
			strconv.FormatBool(p.Frontier),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
