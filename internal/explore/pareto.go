package explore

import (
	"math"
	"sort"
)

// frontier returns the indices of the exact Pareto frontier under
// minimization of (cost, cycles): point p is dominated when some q has
// cost_q <= cost_p and cycles_q <= cycles_p with at least one strict.
// Duplicate optima (equal cost and cycles) are all kept. The result is
// sorted by cost ascending.
func frontier(cost, cycles []float64) []int {
	order := byCostThenCycles(cost, cycles)
	var out []int
	i := 0
	bestCycles := 0.0
	haveBest := false
	for i < len(order) {
		// One equal-cost group at a time: within a group only the
		// minimum-cycles points can be non-dominated, and they are
		// dominated iff a strictly cheaper point already matched them.
		j := i
		groupMin := cycles[order[i]]
		for j < len(order) && cost[order[j]] == cost[order[i]] {
			if cycles[order[j]] < groupMin {
				groupMin = cycles[order[j]]
			}
			j++
		}
		if !haveBest || groupMin < bestCycles {
			for k := i; k < j; k++ {
				if cycles[order[k]] == groupMin {
					out = append(out, order[k])
				}
			}
			bestCycles, haveBest = groupMin, true
		}
		i = j
	}
	return out
}

// pruneWithBounds returns the indices that might be on the frontier
// when each point's true cycles are only known to lie in
// [lower[p], upper[p]]. Point p is pruned exactly when some q proves
// dominance for every realization within the bounds:
//
//	cost_q <  cost_p  and  upper_q <= lower_p   (q is strictly cheaper
//	    and never slower, so q dominates p even on a cycle tie), or
//	cost_q == cost_p  and  upper_q <  lower_p   (same cost needs a
//	    strictly faster q).
//
// As long as the bounds hold, every true-frontier point survives. The
// tie-aware first rule is what collapses saturated plateaus — a stretch
// of configs whose execution is pinned at the same compute floor while
// cost keeps rising — which a plain symmetric margin around the
// estimate could never prune.
func pruneWithBounds(cost, lower, upper []float64) []int {
	order := byCostThenCycles(cost, lower)
	var out []int
	minUpperCheaper := math.Inf(1) // over strictly cheaper points
	i := 0
	for i < len(order) {
		// One equal-cost group at a time.
		j := i
		groupMinUpper := math.Inf(1)
		for j < len(order) && cost[order[j]] == cost[order[i]] {
			if upper[order[j]] < groupMinUpper {
				groupMinUpper = upper[order[j]]
			}
			j++
		}
		for k := i; k < j; k++ {
			p := order[k]
			if minUpperCheaper <= lower[p] || groupMinUpper < lower[p] {
				continue // provably dominated
			}
			out = append(out, p)
		}
		if groupMinUpper < minUpperCheaper {
			minUpperCheaper = groupMinUpper
		}
		i = j
	}
	sort.Ints(out)
	return out
}

// byCostThenCycles returns point indices sorted by (cost, cycles)
// ascending, with the index itself as the final tie-break so the order
// is a deterministic function of the inputs.
func byCostThenCycles(cost, cycles []float64) []int {
	order := make([]int, len(cost))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := order[a], order[b]
		if cost[pa] != cost[pb] {
			return cost[pa] < cost[pb]
		}
		if cycles[pa] != cycles[pb] {
			return cycles[pa] < cycles[pb]
		}
		return pa < pb
	})
	return order
}
