// Package explore is the design-space-exploration engine over the
// parametric platform space seda.NPUConfig opens: it enumerates a grid
// spec's cartesian product, prices every point with a calibrated
// analytic DRAM surrogate (no cycle-accurate scheduling), prunes the
// points the surrogate proves dominated under its measured error
// margin, and confirms only the surviving Pareto candidates through
// the full cycle-accurate pipeline — reusing the standard result cache,
// so confirmed points are cached under the same fingerprints a direct
// /v1/sweep of that geometry would hit.
//
// Pruning happens twice and is conservative by construction: a static
// interval pass (see pruneWithBounds) drops points some cheaper point
// beats across the whole error band, and confirmation then walks the
// survivors cost-ascending, replacing each interval with its exact
// measurement — which prunes remaining candidates harder than any
// interval could. As long as the surrogate's memory-term error stays
// within the margin, the confirmed frontier equals the frontier an
// exhaustive cycle-accurate sweep of the whole grid would report —
// TestExploreRetainsTrueFrontier checks exactly that against an
// exhaustively evaluated grid.
package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/scalesim"
	"repro/seda"
)

// ErrUsage marks Run failures caused by the caller's request — the
// spec, margin, or workload selection — rather than by the evaluation
// pipeline. Servers map it to a 400-class response.
var ErrUsage = errors.New("invalid exploration request")

// DefaultMaxPoints bounds a grid when the caller does not: a guard
// against accidental combinatorial explosions, not a resource budget
// (surrogate evaluation is microseconds per point).
const DefaultMaxPoints = 8192

// DefaultMargin floors the pruning margin: the calibration error is
// measured in-sample on the calibration configs, and grid points sit
// elsewhere in the space, so the margin never drops below this even
// when the fit is tighter.
const DefaultMargin = 0.10

// Options configures an exploration.
type Options struct {
	// Workloads to evaluate; both the surrogate objective and the
	// confirmation sum execution cycles across them.
	Workloads []*model.Network

	// Scheme under which every point is protected (the surrogate prices
	// scheme-transformed traffic, not raw tensors).
	Scheme memprot.Scheme

	// Cache backs the cycle-accurate confirmations (nil = uncached).
	Cache *rescache.Cache

	// Suite controls the confirmation runs' execution (worker pool etc).
	Suite seda.SuiteOptions

	// Margin overrides the pruning margin — the relative error band
	// granted to the surrogate's per-layer memory term (compute is
	// simulated exactly and carries none). 0 derives it from the
	// calibration: max(2 x fitted max relative error, DefaultMargin).
	Margin float64

	// MaxPoints rejects grids larger than this (0 = DefaultMaxPoints).
	MaxPoints int

	// CalibrationConfigs are the platforms the surrogate is fitted
	// against (cycle-accurately). Empty = the Table II presets.
	CalibrationConfigs []seda.NPUConfig

	// SkipConfirm stops after the surrogate pass: candidates are
	// reported unconfirmed and the frontier is computed from estimates.
	// For interactive triage; tests and CI confirm.
	SkipConfirm bool
}

// Point is one grid point's outcome.
type Point struct {
	Config seda.NPUConfig

	// Cost is the hardware cost proxy (see CostProxy).
	Cost float64

	// SurrogateCycles is the analytic execution estimate summed over
	// the workloads.
	SurrogateCycles float64

	// Candidate marks points the surrogate's static pass could not
	// prove dominated. Confirmation visits candidates cost-ascending
	// and may still skip one when an already-confirmed measurement
	// proves it dominated, so Confirmed implies Candidate but not the
	// reverse.
	Candidate bool

	// Confirmed marks points evaluated cycle-accurately. ExecCycles is
	// their measured execution total (0 when unconfirmed).
	Confirmed  bool
	ExecCycles uint64

	// Frontier marks the confirmed Pareto-optimal points.
	Frontier bool
}

// Result is a completed exploration.
type Result struct {
	Spec        string // canonical form
	Scheme      memprot.Scheme
	Workloads   []string
	Base        string // base config name the grid was built over
	Margin      float64
	Calibration Calibration

	// Points in canonical enumeration order, invalid geometries
	// excluded (counted in Invalid).
	Points  []Point
	Invalid int

	// Frontier indexes Points, cost-ascending.
	Frontier []int
}

// Candidates counts the points that survived surrogate pruning.
func (r *Result) Candidates() int {
	n := 0
	for i := range r.Points {
		if r.Points[i].Candidate {
			n++
		}
	}
	return n
}

// Confirmed counts the points evaluated cycle-accurately.
func (r *Result) Confirmed() int {
	n := 0
	for i := range r.Points {
		if r.Points[i].Confirmed {
			n++
		}
	}
	return n
}

// CostProxy is the hardware-cost objective explored against: a unitless
// aggregate of the resources a platform spends — PEs, on-chip SRAM, and
// memory-system provisioning (channels and bandwidth). The weights make
// the Table II presets land where intuition puts them (the server NPU
// about 40x the edge NPU); the exploration only ever compares costs, so
// any fixed monotone weighting yields the same frontiers.
func CostProxy(c seda.NPUConfig) float64 {
	return float64(c.ArrayRows*c.ArrayCols) +
		float64(c.SRAMBytes)/1024 +
		2048*float64(c.Channels) +
		512*c.BandwidthB/1e9
}

// Run explores a grid spec over a base configuration.
func Run(ctx context.Context, spec *Spec, base seda.NPUConfig, opts Options) (*Result, error) {
	if len(opts.Workloads) == 0 {
		return nil, fmt.Errorf("explore: no workloads: %w", ErrUsage)
	}
	maxPoints := opts.MaxPoints
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	if n := spec.NumPoints(); n > maxPoints {
		return nil, fmt.Errorf("explore: grid has %d points, limit %d (narrow the spec or raise the limit): %w", n, maxPoints, ErrUsage)
	}

	res := &Result{
		Spec:   spec.Canonical(),
		Scheme: opts.Scheme,
		Base:   base.Name,
	}
	for _, net := range opts.Workloads {
		res.Workloads = append(res.Workloads, net.Name)
	}

	// Partition the grid: invalid geometries (a cross product can build
	// some) are counted and dropped, the rest explored. Validation is
	// the first per-point work, so honor cancellation here too — a
	// request timeout must not wait for the surrogate pass to notice.
	for i, cfg := range spec.Points(base) {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if cfg.Validate() != nil {
			res.Invalid++
			continue
		}
		res.Points = append(res.Points, Point{Config: cfg, Cost: CostProxy(cfg)})
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("explore: no valid points in grid %q over base %q: %w", res.Spec, base.Name, ErrUsage)
	}

	// Fit the surrogate against cycle-accurate measurements of the
	// calibration platforms, then derive the pruning margin from the
	// fit's worst relative error.
	calCfgs := opts.CalibrationConfigs
	if len(calCfgs) == 0 {
		calCfgs = seda.NPUPresets()
	}
	calCtx, calSpan := obs.Start(ctx, obs.StageCalibrate)
	cal, err := Calibrate(calCtx, calCfgs, opts.Workloads, opts.Scheme)
	calSpan.End()
	if err != nil {
		return nil, err
	}
	res.Calibration = cal
	res.Margin = opts.Margin
	if res.Margin <= 0 {
		res.Margin = math.Max(2*cal.MaxRelErr, DefaultMargin)
	}
	if res.Margin >= 1 {
		// ErrUsage only when the caller chose the margin; a derived
		// margin this wide means the calibration fit failed, which is a
		// pipeline-side condition, not a bad request.
		if opts.Margin > 0 {
			return nil, fmt.Errorf("explore: margin %.3f leaves no pruning power (calibration max rel err %.3f): %w", res.Margin, cal.MaxRelErr, ErrUsage)
		}
		return nil, fmt.Errorf("explore: derived margin %.3f leaves no pruning power (calibration max rel err %.3f)", res.Margin, cal.MaxRelErr)
	}

	surCtx, surSpan := obs.Start(ctx, obs.StageSurrogate)
	lower, upper, err := surrogatePass(surCtx, res, opts, cal.Model, res.Margin)
	surSpan.End()
	if err != nil {
		return nil, err
	}

	// Prune: keep only points the surrogate cannot prove dominated.
	cost := make([]float64, len(res.Points))
	for i := range res.Points {
		cost[i] = res.Points[i].Cost
	}
	candidates := pruneWithBounds(cost, lower, upper)
	for _, i := range candidates {
		res.Points[i].Candidate = true
	}

	if opts.SkipConfirm {
		res.Frontier = frontierOf(res.Points, candidates, false)
		return res, nil
	}

	// Confirm the candidates cycle-accurately through the standard
	// cached pipeline; each confirmation is a full scheme-set suite of
	// the point, so its rows land in the cache under the same
	// fingerprints any later direct sweep of that geometry uses.
	//
	// Confirmation is adaptive: candidates are visited cost-ascending,
	// and each measurement replaces that point's interval with its exact
	// value, which prunes remaining candidates harder than the interval
	// could — a cheaper confirmed q kills every p with true_q <= lower_p
	// (strict < on a cost tie). The dominance rule is the same as the
	// static pass, only with tighter information, so a true-frontier
	// point can still never be skipped.
	ctx, confirmSpan := obs.Start(ctx, obs.StageConfirm)
	defer confirmSpan.End()
	order := byCostThenCycles(cost, lower)
	order = filterTo(order, candidates)
	var confirmed []int
	bestCheaper := math.Inf(1) // min confirmed true cycles at strictly lower cost
	i := 0
	for i < len(order) {
		j := i
		groupBest := math.Inf(1) // min confirmed true cycles at this cost
		for j < len(order) && cost[order[j]] == cost[order[i]] {
			j++
		}
		for k := i; k < j; k++ {
			p := order[k]
			if bestCheaper <= lower[p] || groupBest < lower[p] {
				continue // a confirmed point already proves p dominated
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			suite, err := seda.RunSuiteCachedCtx(ctx, opts.Cache, res.Points[p].Config, opts.Workloads, opts.Suite)
			if err != nil {
				return nil, fmt.Errorf("explore: confirming %s: %w", res.Points[p].Config.Name, err)
			}
			var exec uint64
			for _, net := range opts.Workloads {
				row, err := seda.SchemeRow(suite.Rows[net.Name], opts.Scheme)
				if err != nil {
					return nil, err
				}
				exec += row.ExecCycles
			}
			res.Points[p].Confirmed = true
			res.Points[p].ExecCycles = exec
			confirmed = append(confirmed, p)
			if t := float64(exec); t < groupBest {
				groupBest = t
			}
		}
		if groupBest < bestCheaper {
			bestCheaper = groupBest
		}
		i = j
	}
	sort.Ints(confirmed)
	res.Frontier = frontierOf(res.Points, confirmed, true)
	return res, nil
}

// filterTo keeps the elements of order that are in the keep set,
// preserving order's ordering.
func filterTo(order, keep []int) []int {
	in := make(map[int]bool, len(keep))
	for _, i := range keep {
		in[i] = true
	}
	out := order[:0]
	for _, i := range order {
		if in[i] {
			out = append(out, i)
		}
	}
	return out
}

// surrogatePass prices every point analytically, returning the
// exec-cycle bound interval per point (see Model.execBounds). Points
// sharing an array geometry (rows, cols, SRAM) share one compute
// simulation and protection walk per workload — the summaries are
// DRAM-geometry independent — so a grid sweeping only memory knobs
// summarizes each workload exactly once.
func surrogatePass(ctx context.Context, res *Result, opts Options, m Model, margin float64) (lower, upper []float64, err error) {
	type arrayKey struct{ rows, cols, sram int }
	groups := make(map[arrayKey][]int)
	var order []arrayKey
	for i := range res.Points {
		c := res.Points[i].Config
		k := arrayKey{c.ArrayRows, c.ArrayCols, c.SRAMBytes}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	lower = make([]float64, len(res.Points))
	upper = make([]float64, len(res.Points))
	for _, k := range order {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		arr, err := scalesim.New(k.rows, k.cols, k.sram)
		if err != nil {
			return nil, nil, err
		}
		summaries := make([]*workloadSummary, len(opts.Workloads))
		for wi, net := range opts.Workloads {
			ws, err := summarizeWorkload(ctx, arr, net, opts.Scheme)
			if err != nil {
				return nil, nil, err
			}
			summaries[wi] = ws
		}
		for _, pi := range groups[k] {
			d := res.Points[pi].Config.DRAMConfig()
			for _, ws := range summaries {
				layers := make([]layerTerms, len(ws.layers))
				for li := range ws.layers {
					layers[li] = terms(&ws.layers[li], d)
				}
				res.Points[pi].SurrogateCycles += m.execEstimate(layers)
				lo, hi := m.execBounds(layers, margin)
				lower[pi] += lo
				upper[pi] += hi
			}
		}
	}
	return lower, upper, nil
}

// frontierOf computes the frontier over the candidate set, using
// confirmed cycles when available and estimates otherwise, and returns
// the point indices cost-ascending.
func frontierOf(points []Point, candidates []int, confirmed bool) []int {
	cost := make([]float64, len(candidates))
	cycles := make([]float64, len(candidates))
	for j, i := range candidates {
		cost[j] = points[i].Cost
		if confirmed {
			cycles[j] = float64(points[i].ExecCycles)
		} else {
			cycles[j] = points[i].SurrogateCycles
		}
	}
	var out []int
	for _, j := range frontier(cost, cycles) {
		out = append(out, candidates[j])
		points[candidates[j]].Frontier = true
	}
	sort.Slice(out, func(a, b int) bool {
		if points[out[a]].Cost != points[out[b]].Cost {
			return points[out[a]].Cost < points[out[b]].Cost
		}
		return out[a] < out[b]
	})
	return out
}
