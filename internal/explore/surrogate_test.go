package explore

import (
	"context"
	"testing"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/seda"
)

// TestSurrogateErrorBound pins the surrogate's accuracy claim from the
// issue: fitted over the full calibration set — all 13 workloads on
// both Table II presets — the analytic model predicts total DRAM
// cycles within 10% relative error on every single (config, workload)
// pair. The pruning margin derivation (2 x max rel err, floored at
// 10%) is sound only while this holds.
func TestSurrogateErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full cycle-accurate calibration in -short mode")
	}
	cal, err := Calibrate(context.Background(), seda.NPUPresets(), model.All(), memprot.SchemeSeDA)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fit: alpha=%.4f beta=%.4f maxRelErr=%.4f", cal.Alpha, cal.Beta, cal.MaxRelErr)
	for _, p := range cal.Points {
		t.Logf("%-8s %-6s actual=%14.0f est=%14.0f relerr=%.4f",
			p.NPU, p.Workload, p.Actual, p.Est, p.RelErr)
		if p.RelErr > 0.10 {
			t.Errorf("%s/%s: surrogate rel err %.4f > 0.10", p.NPU, p.Workload, p.RelErr)
		}
	}
	if cal.MaxRelErr > 0.10 {
		t.Errorf("max rel err %.4f > 0.10", cal.MaxRelErr)
	}
}
