package explore

import (
	"reflect"
	"testing"
)

func TestFrontier(t *testing.T) {
	cases := []struct {
		name   string
		cost   []float64
		cycles []float64
		want   []int
	}{
		{"empty", nil, nil, nil},
		{"single", []float64{1}, []float64{1}, []int{0}},
		{"chain", []float64{1, 2, 3}, []float64{30, 20, 10}, []int{0, 1, 2}},
		{"dominated middle", []float64{1, 2, 3}, []float64{10, 20, 5}, []int{0, 2}},
		{"equal cost keeps min cycles", []float64{1, 1, 2}, []float64{5, 3, 1}, []int{1, 2}},
		{"equal cycles cheapest wins", []float64{1, 2}, []float64{5, 5}, []int{0}},
		{"exact duplicates both kept", []float64{1, 1, 2}, []float64{5, 5, 9}, []int{0, 1}},
		{"all dominated by corner", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := frontier(tc.cost, tc.cycles)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("frontier(%v, %v) = %v, want %v", tc.cost, tc.cycles, got, tc.want)
			}
		})
	}
}

// TestPruneWithBoundsSound: whenever the true cycles lie within each
// point's [lower, upper] interval, no true-frontier point may be
// pruned. The test uses adversarial bounds — frontier points pushed to
// their upper end, dominated points to their lower end, the
// realization most likely to prune a frontier point.
func TestPruneWithBoundsSound(t *testing.T) {
	cost := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	truth := []float64{100, 90, 95, 40, 50, 38, 37, 36.5}
	trueFront := frontier(cost, truth)
	for _, margin := range []float64{0.05, 0.10, 0.25} {
		lower := make([]float64, len(truth))
		upper := make([]float64, len(truth))
		for i := range truth {
			lower[i] = truth[i] * (1 - margin)
			upper[i] = truth[i] * (1 + margin)
		}
		kept := map[int]bool{}
		for _, i := range pruneWithBounds(cost, lower, upper) {
			kept[i] = true
		}
		for _, i := range trueFront {
			if !kept[i] {
				t.Errorf("margin %.2f: true frontier point %d pruned", margin, i)
			}
		}
	}
}

// TestPruneWithBoundsPrunes: clearly dominated points (intervals
// wholly above a cheaper point's) must go, or the engine would
// confirm everything.
func TestPruneWithBoundsPrunes(t *testing.T) {
	cost := []float64{1, 2, 3}
	lower := []float64{90, 900, 89}
	upper := []float64{110, 1100, 109}
	kept := pruneWithBounds(cost, lower, upper)
	for _, i := range kept {
		if i == 1 {
			t.Error("point 1 (10x worse than a cheaper point) survived")
		}
	}
	if len(kept) == 0 {
		t.Error("pruning removed everything")
	}
}

// TestPruneCollapsesPlateaus: points with identical exact values
// (lower == upper) at increasing cost are a saturated plateau; only
// the cheapest survives, because a strictly cheaper never-slower point
// dominates even on a cycle tie.
func TestPruneCollapsesPlateaus(t *testing.T) {
	cost := []float64{1, 2, 3, 4}
	flat := []float64{50, 50, 50, 40}
	kept := pruneWithBounds(cost, flat, flat)
	want := []int{0, 3}
	if !reflect.DeepEqual(kept, want) {
		t.Errorf("kept %v, want %v", kept, want)
	}
}

// TestPruneExactBoundsMatchFrontierSupport: with zero-width bounds the
// surviving set is exactly the frontier support (dominance fully
// decidable).
func TestPruneExactBoundsMatchFrontierSupport(t *testing.T) {
	cost := []float64{1, 2, 3, 4}
	est := []float64{10, 5, 6, 2}
	kept := pruneWithBounds(cost, est, est)
	want := []int{0, 1, 3}
	if !reflect.DeepEqual(kept, want) {
		t.Errorf("kept %v, want %v", kept, want)
	}
	// Equal-cost duplicates: neither can prove strict dominance, both
	// survive.
	cost = []float64{1, 1}
	est = []float64{5, 5}
	kept = pruneWithBounds(cost, est, est)
	want = []int{0, 1}
	if !reflect.DeepEqual(kept, want) {
		t.Errorf("kept %v, want %v", kept, want)
	}
}
