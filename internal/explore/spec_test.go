package explore

import (
	"math"
	"strings"
	"testing"

	"repro/seda"
)

func TestParseSpecRangesAndLists(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		points    int
	}{
		{"rows=32:256", "rows=32|64|128|256", 4},
		{"rows=32:256:2x", "rows=32|64|128|256", 4},
		{"rows=32:250:2x", "rows=32|64|128", 3},
		{"rows=16:48:+16", "rows=16|32|48", 3},
		{"sram=480K:1920K", "sram=491520|983040|1966080", 3},
		{"sram=1M|3M", "sram=1048576|3145728", 2},
		{"freq=1G:4G", "freq=1e+09|2e+09|4e+09", 3},
		{"bw=2.5G|10G", "bw=2.5e+09|1e+10", 2},
		{"channels=2|4|8,rows=32|64", "rows=32|64,channels=2|4|8", 6},
		{"CHANNELS=4", "channels=4", 1},
		{"rows=32|32|32", "rows=32", 1},
		{"window=8:32:2x,burstbytes=64", "burstbytes=64,window=8|16|32", 3},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got := s.Canonical(); got != tc.canonical {
			t.Errorf("%q canonicalizes to %q, want %q", tc.in, got, tc.canonical)
		}
		if got := s.NumPoints(); got != tc.points {
			t.Errorf("%q: %d points, want %d", tc.in, got, tc.points)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		errWant string
	}{
		{"", "empty spec"},
		{"rows", "not name=values"},
		{"pes=64", "unknown axis"},
		{"rows=32,rows=64", "twice"},
		{"rows=64:32", "descends"},
		{"rows=32:64:1x", "factor > 1"},
		{"rows=32:64:0.5x", "factor > 1"},
		{"rows=32:64:-16", "neither"},
		{"rows=32:64:16", "neither"},
		{"rows=1:1M:+1", "expands past"},
		{"rows=0", "not positive"},
		{"rows=-4", "not positive"},
		{"sram=1.5", "not an integer"},
		{"rows=1:2:3:4", "more than two"},
		{"rows=abc", "value"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", tc.in, tc.errWant)
			continue
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%q: err %q, want it to contain %q", tc.in, err, tc.errWant)
		}
	}
}

// TestNumPointsSaturates: a maximal cross product (six axes of
// maxAxisValues values each is 2^72 points) must saturate at
// math.MaxInt rather than wrap — a wrapped product would pass the
// MaxPoints guard and let one request materialize the whole grid.
func TestNumPointsSaturates(t *testing.T) {
	s, err := ParseSpec("rows=1:4096:+1,cols=1:4096:+1,sram=1:4096:+1,channels=1:4096:+1,banks=1:4096:+1,window=1:4096:+1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumPoints(); got != math.MaxInt {
		t.Errorf("NumPoints = %d, want math.MaxInt saturation", got)
	}
}

// TestSpecPointsSquareArray: sweeping rows without cols keeps the
// array square; sweeping both leaves them independent.
func TestSpecPointsSquareArray(t *testing.T) {
	s, err := ParseSpec("rows=16|32")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points(seda.EdgeNPU()) {
		if p.ArrayCols != p.ArrayRows {
			t.Errorf("square rule broken: %dx%d", p.ArrayRows, p.ArrayCols)
		}
	}
	s, err = ParseSpec("rows=16|32,cols=8")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points(seda.EdgeNPU()) {
		if p.ArrayCols != 8 {
			t.Errorf("explicit cols overridden: %dx%d", p.ArrayRows, p.ArrayCols)
		}
	}
}

// TestSpecPointsCanonicalOrder: enumeration is the odometer over
// table-ordered axes with the last axis fastest, independent of the
// axis order written in the spec.
func TestSpecPointsCanonicalOrder(t *testing.T) {
	a, _ := ParseSpec("rows=16|32,channels=2|4")
	b, _ := ParseSpec("channels=2|4,rows=16|32")
	pa, pb := a.Points(seda.EdgeNPU()), b.Points(seda.EdgeNPU())
	if len(pa) != 4 || len(pb) != 4 {
		t.Fatalf("want 4 points, got %d and %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Errorf("point %d: %q vs %q — order depends on spec writing", i, pa[i].Name, pb[i].Name)
		}
	}
	// Last axis (channels) fastest.
	if pa[0].Channels != 2 || pa[1].Channels != 4 || pa[0].ArrayRows != 16 || pa[2].ArrayRows != 32 {
		t.Errorf("odometer order wrong: %+v", []string{pa[0].Name, pa[1].Name, pa[2].Name, pa[3].Name})
	}
}

// TestPointNameAliasesDefaults: a knob left at zero and the same knob
// set to its DDR4-like default derive the same memory system, so the
// canonical point name must coincide (and with it the fingerprint).
func TestPointNameAliasesDefaults(t *testing.T) {
	explicit := seda.EdgeNPU()
	legacy := explicit
	legacy.BanksPerChan, legacy.RowBytes, legacy.BurstBytes, legacy.WindowSize = 0, 0, 0, 0
	if PointName(explicit) != PointName(legacy) {
		t.Errorf("zero knobs name %q, explicit defaults %q", PointName(legacy), PointName(explicit))
	}
}
