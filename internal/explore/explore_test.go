package explore

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/rescache"
	"repro/seda"
)

func nets(t *testing.T, names ...string) []*model.Network {
	t.Helper()
	out := make([]*model.Network, len(names))
	for i, n := range names {
		out[i] = model.ByName(n)
		if out[i] == nil {
			t.Fatalf("unknown workload %q", n)
		}
	}
	return out
}

func mustSpec(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestExploreRetainsTrueFrontier is the engine's soundness check: on a
// grid small enough to sweep cycle-accurately in full, the pruned +
// confirmed frontier must equal the frontier an exhaustive
// cycle-accurate sweep reports. This is the property that makes
// surrogate pruning admissible rather than merely plausible.
func TestExploreRetainsTrueFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cycle-accurate grid in -short mode")
	}
	workloads := nets(t, "let", "ncf")
	spec := mustSpec(t, "rows=16|32|64,sram=120K|480K,channels=2|4")
	res, err := Run(context.Background(), spec, seda.EdgeNPU(), Options{
		Workloads: workloads,
		Scheme:    memprot.SchemeSeDA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	t.Logf("grid=%d candidates=%d confirmed=%d frontier=%d margin=%.3f calErr=%.4f",
		len(res.Points), res.Candidates(), res.Confirmed(), len(res.Frontier),
		res.Margin, res.Calibration.MaxRelErr)

	// Exhaustive ground truth: evaluate every valid point for real.
	cost := make([]float64, len(res.Points))
	cycles := make([]float64, len(res.Points))
	for i := range res.Points {
		suite, err := seda.RunSuiteOpts(res.Points[i].Config, workloads, seda.DefaultSuiteOptions())
		if err != nil {
			t.Fatal(err)
		}
		var exec uint64
		for _, net := range workloads {
			row, err := seda.SchemeRow(suite.Rows[net.Name], memprot.SchemeSeDA)
			if err != nil {
				t.Fatal(err)
			}
			exec += row.ExecCycles
		}
		cost[i] = res.Points[i].Cost
		cycles[i] = float64(exec)
		// Confirmed points must match the exhaustive measurement exactly:
		// confirmation goes through the same deterministic pipeline.
		if res.Points[i].Confirmed && res.Points[i].ExecCycles != exec {
			t.Errorf("%s: confirmed %d cycles, exhaustive %d", res.Points[i].Config.Name, res.Points[i].ExecCycles, exec)
		}
	}
	want := map[string]bool{}
	for _, i := range frontier(cost, cycles) {
		want[res.Points[i].Config.Name] = true
	}
	got := map[string]bool{}
	for _, i := range res.Frontier {
		got[res.Points[i].Config.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("true frontier point %s missing from explore frontier", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("explore frontier reports %s, which the exhaustive sweep dominates", name)
		}
	}
}

// TestExplorePrunesLargeGrid pins the efficiency half of the design:
// on a 100-point grid, static interval pruning plus adaptive
// confirmation must rule out at least 75% of the points, so only the
// plausible-frontier band pays for cycle-accurate evaluation. The grid
// sweeps axes the workload actually responds to (array scale, memory
// channels, memory bandwidth); grids over insensitive axes degenerate
// into exact plateaus that no sound pruning can separate. It also pins
// that a rerun against the same cache confirms entirely from cached
// entries — explored points land under the standard config
// fingerprints.
func TestExplorePrunesLargeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("100-point grid in -short mode")
	}
	cache, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := mustSpec(t, "rows=16:256:2x,channels=1|2|4|8,bw=2.5G:40G:2x")
	if n := spec.NumPoints(); n < 100 {
		t.Fatalf("grid has %d points, want >= 100", n)
	}
	opts := Options{
		Workloads: nets(t, "let"),
		Scheme:    memprot.SchemeSeDA,
		Cache:     cache,
	}
	res, err := Run(context.Background(), spec, seda.EdgeNPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("grid=%d candidates=%d confirmed=%d frontier=%d margin=%.3f",
		len(res.Points)+res.Invalid, res.Candidates(), res.Confirmed(), len(res.Frontier), res.Margin)
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	total := len(res.Points) + res.Invalid
	if lim := total / 4; res.Confirmed() > lim {
		t.Errorf("confirmed %d of %d points cycle-accurately, want <= %d (25%%)", res.Confirmed(), total, lim)
	}
	for _, i := range res.Frontier {
		if !res.Points[i].Confirmed {
			t.Errorf("frontier point %s is unconfirmed", res.Points[i].Config.Name)
		}
	}

	// Rerun against the warm cache: every confirmation must hit.
	before := cache.Stats().Computes
	res2, err := Run(context.Background(), spec, seda.EdgeNPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if after := cache.Stats().Computes; after != before {
		t.Errorf("warm rerun computed %d fresh evaluations, want 0", after-before)
	}
	if len(res2.Frontier) != len(res.Frontier) {
		t.Fatalf("warm rerun frontier size %d != %d", len(res2.Frontier), len(res.Frontier))
	}
	for k := range res.Frontier {
		if res.Points[res.Frontier[k]].Config.Name != res2.Points[res2.Frontier[k]].Config.Name {
			t.Errorf("warm rerun frontier diverged at %d", k)
		}
	}
}

// TestExploreInvalidPointsAreCounted: a cross product may build
// impossible geometries (row smaller than burst); they are dropped and
// counted, and the rest of the grid still explores.
func TestExploreInvalidPointsAreCounted(t *testing.T) {
	spec := mustSpec(t, "rowbytes=128|2K,burstbytes=64|512")
	res, err := Run(context.Background(), spec, seda.EdgeNPU(), Options{
		Workloads:   nets(t, "let"),
		Scheme:      memprot.SchemeSeDA,
		SkipConfirm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// rowbytes=128 with burstbytes=512 is the one impossible combination.
	if res.Invalid != 1 {
		t.Errorf("invalid = %d, want 1", res.Invalid)
	}
	if len(res.Points) != 3 {
		t.Errorf("explored %d points, want 3", len(res.Points))
	}
}

func TestExploreRejectsOversizedGrid(t *testing.T) {
	spec := mustSpec(t, "rows=16|32|64,channels=2|4")
	_, err := Run(context.Background(), spec, seda.EdgeNPU(), Options{
		Workloads: nets(t, "let"),
		Scheme:    memprot.SchemeSeDA,
		MaxPoints: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "limit 4") {
		t.Fatalf("err = %v, want grid-size rejection", err)
	}
}

// TestExploreRejectsOverflowingGrid: a grid whose point count
// overflows int must still be caught by the MaxPoints guard (the
// product saturates instead of wrapping to something small), before
// any attempt to materialize it.
func TestExploreRejectsOverflowingGrid(t *testing.T) {
	spec := mustSpec(t, "rows=1:4096:+1,cols=1:4096:+1,sram=1:4096:+1,channels=1:4096:+1,banks=1:4096:+1,window=1:4096:+1")
	_, err := Run(context.Background(), spec, seda.EdgeNPU(), Options{
		Workloads: nets(t, "let"),
		Scheme:    memprot.SchemeSeDA,
	})
	if err == nil || !errors.Is(err, ErrUsage) || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want ErrUsage grid-size rejection", err)
	}
}

// TestExploreExplicitMarginTooWide: a caller-chosen margin >= 1 is a
// usage error; the engine must say so before any evaluation.
func TestExploreExplicitMarginTooWide(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs cycle-accurately in -short mode")
	}
	spec := mustSpec(t, "channels=2|4")
	_, err := Run(context.Background(), spec, seda.EdgeNPU(), Options{
		Workloads: nets(t, "let"),
		Scheme:    memprot.SchemeSeDA,
		Margin:    1.5,
	})
	if err == nil || !errors.Is(err, ErrUsage) || !strings.Contains(err.Error(), "pruning power") {
		t.Fatalf("err = %v, want ErrUsage margin rejection", err)
	}
}

func TestExploreNoWorkloads(t *testing.T) {
	spec := mustSpec(t, "channels=2|4")
	if _, err := Run(context.Background(), spec, seda.EdgeNPU(), Options{Scheme: memprot.SchemeSeDA}); err == nil {
		t.Fatal("want error for empty workload list")
	}
}

// TestExploreCancellation: a cancelled context aborts the exploration
// with ctx.Err() instead of a partial result.
func TestExploreCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := mustSpec(t, "channels=2|4")
	_, err := Run(ctx, spec, seda.EdgeNPU(), Options{
		Workloads: nets(t, "let"),
		Scheme:    memprot.SchemeSeDA,
	})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExploreOutputDeterminism: two identical explorations serialize
// to byte-identical JSON and CSV — the property the serving layer's
// strong ETag asserts.
func TestExploreOutputDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full explorations in -short mode")
	}
	spec := mustSpec(t, "rows=16|32,channels=2|4")
	opts := Options{
		Workloads: nets(t, "let"),
		Scheme:    memprot.SchemeSeDA,
	}
	var docs [2]bytes.Buffer
	var csvs [2]bytes.Buffer
	for k := 0; k < 2; k++ {
		res, err := Run(context.Background(), spec, seda.EdgeNPU(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&docs[k]); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&csvs[k]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Error("JSON output differs between identical explorations")
	}
	if !bytes.Equal(csvs[0].Bytes(), csvs[1].Bytes()) {
		t.Error("CSV output differs between identical explorations")
	}
	if !bytes.Contains(docs[0].Bytes(), []byte(`"surrogate_version": "`+SurrogateVersion+`"`)) {
		t.Error("JSON lacks surrogate_version")
	}
}
