package explore

import (
	"context"
	"math"

	"repro/internal/dram"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/internal/trace"
	"repro/seda"
)

// SurrogateVersion tags the analytic-model formula and its calibration
// procedure. It feeds the serving layer's ETag: bump it whenever the
// estimate for a fixed (config, workload) can change, so stale cached
// explore responses are not revalidated.
const SurrogateVersion = "1"

// The surrogate predicts a layer's DRAM drain time from three closed-
// form quantities the cycle-accurate scheduler also sees, without
// running the scheduler:
//
//	base  — per-channel burst count × max(TBurst, TCL): the time the
//	        busiest resource (bus or bank CAS pipeline) needs for the
//	        data alone, i.e. the row-hit streaming floor.
//	act   — per-channel span-queue entries × (TRP + TRCD): every entry
//	        is a potential row activation, so this is the worst-case
//	        row-management time. The fitted weight alpha is
//	        effectively (1 - row-hit rate) folded with how much of the
//	        activation latency the FR-FCFS window hides.
//	issue — the last request's issue cycle plus one request's full
//	        latency: a drain can never finish before its input stops
//	        arriving (compute-bound layers trickle requests out slowly).
//
// Both base and act are inflated by TRefi/(TRefi-TRfc), the fraction
// of time the banks are not refreshing. The estimate is
//
//	mem ≈ max(beta·base + alpha·act, issue)
//
// with (alpha, beta) fitted once per explore against cycle-accurate
// measurements of the calibration configs (Calibrate), and the fit's
// maximum relative error is reported so pruning can use a sound margin.

// Model is the calibrated analytic DRAM surrogate.
type Model struct {
	Alpha float64 // weight of the row-activation term
	Beta  float64 // weight of the burst-service term
}

// layerTerms are the per-layer inputs to the estimate under one DRAM
// geometry (already refresh-inflated; in accelerator cycles).
type layerTerms struct {
	base    float64
	act     float64
	issue   float64
	compute float64
}

// estimate returns the predicted DRAM cycles of one layer.
func (m Model) estimate(t layerTerms) float64 {
	return math.Max(m.Beta*t.base+m.Alpha*t.act, t.issue)
}

// execEstimate returns predicted end-to-end execution cycles: the sum
// over layers of max(compute, memory), mirroring seda's runScheme.
func (m Model) execEstimate(layers []layerTerms) float64 {
	var sum float64
	for _, t := range layers {
		sum += math.Max(t.compute, m.estimate(t))
	}
	return sum
}

// execBounds returns the exec-cycle interval the pruning trusts: the
// memory term of every layer carries the margin as a relative error
// band, while the compute term is simulated rather than estimated and
// so carries none. A layer pinned at its compute floor contributes the
// same exact value to both ends, which is what lets pruneWithBounds
// collapse compute-saturated plateaus.
func (m Model) execBounds(layers []layerTerms, margin float64) (lo, hi float64) {
	for _, t := range layers {
		est := m.estimate(t)
		lo += math.Max(t.compute, est/(1+margin))
		hi += math.Max(t.compute, est/(1-margin))
	}
	return lo, hi
}

// memEstimate returns predicted total DRAM cycles (calibration target).
func (m Model) memEstimate(layers []layerTerms) float64 {
	var sum float64
	for _, t := range layers {
		sum += m.estimate(t)
	}
	return sum
}

// byteRun is a maximal contiguous stretch of the merged spine+overlay
// stream: the DRAM-geometry-independent form of a layer's traffic.
type byteRun struct {
	addr  uint64
	bytes uint64
}

// layerSummary is one protected layer reduced to what the surrogate
// needs: its contiguous byte runs, the last issue cycle, and the
// scheme-independent compute time.
type layerSummary struct {
	runs      []byteRun
	lastIssue uint64
	compute   uint64
}

// workloadSummary is a workload's layers summarized for one
// (array geometry, scheme). It is DRAM-geometry independent, so one
// summary prices every memory system in a grid.
type workloadSummary struct {
	workload string
	layers   []layerSummary
}

// Shared scratch state, mirroring seda/run.go: summaries and
// calibration runs in one process reuse overlay storage, DRAM scratch
// queues and SeDA's authblock searches.
var (
	protArena   = memprot.NewArena()
	dramArena   = dram.NewArena()
	optBlkCache = memprot.NewOptBlkCache()
)

// summarizeWorkload runs the compute simulator and the protection walk
// once and folds each layer's merged access stream into byte runs.
func summarizeWorkload(ctx context.Context, arr *scalesim.Config, net *model.Network, scheme memprot.Scheme) (*workloadSummary, error) {
	sim, err := arr.SimulateNetwork(net)
	if err != nil {
		return nil, err
	}
	popts := memprot.DefaultOptions()
	popts.OptBlkCache = optBlkCache
	prots, err := memprot.ProtectAllArenaCtx(ctx, []memprot.Scheme{scheme}, sim, popts, protArena)
	if err != nil {
		return nil, err
	}
	defer protArena.Release(prots)

	ws := &workloadSummary{workload: net.Name}
	ws.layers = make([]layerSummary, len(prots[0].Layers))
	for i := range prots[0].Layers {
		pl := &prots[0].Layers[i]
		ls := &ws.layers[i]
		ls.compute = sim.Layers[i].ComputeCycles
		collectRuns(pl, ls)
	}
	return ws, nil
}

// collectRuns walks the merged spine+overlay stream in issue order and
// merges byte-contiguous accesses into runs. A run break is an address
// discontinuity — which is exactly where the burst-interleaved mapping
// can change row, i.e. where the cycle-accurate scheduler can pay an
// activation.
func collectRuns(pl *memprot.ProtectedLayer, ls *layerSummary) {
	trace.ForEachMerged(pl.Spine, pl.Deltas, func(a *trace.Access) {
		if a.Cycle > ls.lastIssue {
			ls.lastIssue = a.Cycle
		}
		if n := len(ls.runs); n > 0 && ls.runs[n-1].addr+ls.runs[n-1].bytes == a.Addr {
			ls.runs[n-1].bytes += uint64(a.Bytes)
		} else {
			ls.runs = append(ls.runs, byteRun{addr: a.Addr, bytes: uint64(a.Bytes)})
		}
	})
}

// terms prices a summarized layer under one DRAM geometry.
func terms(ls *layerSummary, d dram.Config) layerTerms {
	bb := uint64(d.BurstBytes)
	chans := uint64(d.Channels)
	// One span window is channels × burstsPerRow consecutive global
	// bursts: the stretch over which a contiguous run keeps (bank, row)
	// constant on every channel.
	window := chans * uint64(d.RowBytes) / bb

	var bursts, entries uint64
	for _, r := range ls.runs {
		b0 := r.addr / bb
		n := (r.addr+r.bytes-1)/bb - b0 + 1
		bursts += n
		w0, w1 := b0/window, (b0+n-1)/window
		if w0 == w1 {
			entries += minu(n, chans)
		} else {
			first := (w0+1)*window - b0
			last := b0 + n - w1*window
			entries += minu(first, chans) + minu(last, chans) + (w1-w0-1)*chans
		}
	}

	refresh := 1.0
	if d.TRefi > d.TRfc {
		refresh = float64(d.TRefi) / float64(d.TRefi-d.TRfc)
	}
	perBurst := float64(maxu(d.TBurst, d.TCL))
	t := layerTerms{
		base:    float64(bursts) / float64(chans) * perBurst * refresh,
		act:     float64(entries) / float64(chans) * float64(d.TRP+d.TRCD) * refresh,
		compute: float64(ls.compute),
	}
	if len(ls.runs) > 0 {
		t.issue = float64(ls.lastIssue + d.TRCD + d.TCL + d.TBurst)
	}
	return t
}

func minu(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// CalPoint is one calibration measurement: a (config, workload) pair's
// cycle-accurate DRAM total against the fitted model's prediction.
type CalPoint struct {
	NPU      string  `json:"npu"`
	Workload string  `json:"workload"`
	Actual   float64 `json:"actual_cycles"`
	Est      float64 `json:"est_cycles"`
	RelErr   float64 `json:"rel_err"`
}

// Calibration is a fitted surrogate plus the evidence for its margin.
type Calibration struct {
	Model
	MaxRelErr float64
	Points    []CalPoint
}

// calSample keeps a calibration point's layer terms so the fit can
// re-price it for every candidate (alpha, beta) without re-walking.
type calSample struct {
	npu      string
	workload string
	layers   []layerTerms
	actual   float64
}

// Calibrate fits the surrogate against the cycle-accurate scheduler:
// every (config, workload) pair is summarized and drained for real,
// then (alpha, beta) are chosen by a deterministic coarse-to-fine grid
// search minimizing the maximum relative error of total DRAM cycles.
func Calibrate(ctx context.Context, cfgs []seda.NPUConfig, nets []*model.Network, scheme memprot.Scheme) (Calibration, error) {
	var samples []calSample
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return Calibration{}, err
		}
		arr, err := scalesim.New(cfg.ArrayRows, cfg.ArrayCols, cfg.SRAMBytes)
		if err != nil {
			return Calibration{}, err
		}
		d := cfg.DRAMConfig()
		dsim, err := dram.New(d)
		if err != nil {
			return Calibration{}, err
		}
		dsim.SetArena(dramArena)
		for _, net := range nets {
			if err := ctx.Err(); err != nil {
				return Calibration{}, err
			}
			s, err := calibrateOne(ctx, arr, dsim, d, cfg.Name, net, scheme)
			if err != nil {
				return Calibration{}, err
			}
			samples = append(samples, s)
		}
	}
	return fit(samples), nil
}

// calibrateOne measures one (config, workload): it protects the
// workload once and, per layer, both summarizes the stream and drains
// it through the cycle-accurate scheduler.
func calibrateOne(ctx context.Context, arr *scalesim.Config, dsim *dram.Simulator, d dram.Config, npuName string, net *model.Network, scheme memprot.Scheme) (calSample, error) {
	sim, err := arr.SimulateNetwork(net)
	if err != nil {
		return calSample{}, err
	}
	popts := memprot.DefaultOptions()
	popts.OptBlkCache = optBlkCache
	prots, err := memprot.ProtectAllArenaCtx(ctx, []memprot.Scheme{scheme}, sim, popts, protArena)
	if err != nil {
		return calSample{}, err
	}
	defer protArena.Release(prots)

	s := calSample{npu: npuName, workload: net.Name}
	for i := range prots[0].Layers {
		pl := &prots[0].Layers[i]
		var ls layerSummary
		ls.compute = sim.Layers[i].ComputeCycles
		collectRuns(pl, &ls)
		s.layers = append(s.layers, terms(&ls, d))

		st, err := dsim.RunOverlayCtx(ctx, pl.Spine, pl.Deltas)
		if err != nil {
			return calSample{}, err
		}
		s.actual += float64(st.Cycles)
	}
	return s, nil
}

// fit runs the deterministic coarse-to-fine grid search. The objective
// is the maximum relative error over all samples — the quantity the
// pruning margin must bound — and ties break toward the first
// (smallest beta, then alpha) candidate, so the fit has no run-to-run
// wobble for the caching layers above to see.
func fit(samples []calSample) Calibration {
	best := Model{Alpha: 1, Beta: 1}
	bestErr := math.Inf(1)
	eval := func(m Model) {
		worst := 0.0
		for _, s := range samples {
			if s.actual <= 0 {
				continue
			}
			e := math.Abs(m.memEstimate(s.layers)-s.actual) / s.actual
			if e > worst {
				worst = e
			}
		}
		if worst < bestErr {
			bestErr, best = worst, m
		}
	}

	// Coarse pass over a generous box, then two refinements around the
	// incumbent with a 5x finer step each time.
	loA, hiA, stepA := 0.0, 3.0, 0.05
	loB, hiB, stepB := 0.25, 3.0, 0.05
	for pass := 0; pass < 3; pass++ {
		for b := loB; b <= hiB+1e-12; b += stepB {
			for a := loA; a <= hiA+1e-12; a += stepA {
				eval(Model{Alpha: a, Beta: b})
			}
		}
		loA, hiA, stepA = math.Max(0, best.Alpha-stepA), best.Alpha+stepA, stepA/5
		loB, hiB, stepB = math.Max(0, best.Beta-stepB), best.Beta+stepB, stepB/5
	}

	cal := Calibration{Model: best, MaxRelErr: bestErr}
	for _, s := range samples {
		est := best.memEstimate(s.layers)
		p := CalPoint{NPU: s.npu, Workload: s.workload, Actual: s.actual, Est: est}
		if s.actual > 0 {
			p.RelErr = math.Abs(est-s.actual) / s.actual
		}
		cal.Points = append(cal.Points, p)
	}
	return cal
}
