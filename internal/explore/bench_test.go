package explore

import (
	"context"
	"testing"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/seda"
)

// BenchmarkExploreSurrogate measures the surrogate's per-point pricing
// rate: one iteration prices the full 13-workload suite for one DRAM
// geometry from prebuilt summaries — the steady-state inner loop of a
// grid sweep (summaries are built once per array geometry, so on
// memory-axis grids this is the entire marginal cost of a point).
// points/s is the figure the design-space engine's capacity planning
// cares about.
func BenchmarkExploreSurrogate(b *testing.B) {
	base := seda.EdgeNPU()
	arr, err := scalesim.New(base.ArrayRows, base.ArrayCols, base.SRAMBytes)
	if err != nil {
		b.Fatal(err)
	}
	var summaries []*workloadSummary
	for _, net := range model.All() {
		ws, err := summarizeWorkload(context.Background(), arr, net, memprot.SchemeSeDA)
		if err != nil {
			b.Fatal(err)
		}
		summaries = append(summaries, ws)
	}
	m := Model{Alpha: 2.24, Beta: 0.9} // representative fit (see TestSurrogateErrorBound)

	// Cycle through distinct geometries so the decoder-friendly
	// constants are not branch-predicted into irrelevance.
	geoms := []seda.NPUConfig{base, seda.ServerNPU()}
	geoms[1].Channels = 8
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		d := geoms[i%len(geoms)].DRAMConfig()
		for _, ws := range summaries {
			layers := make([]layerTerms, len(ws.layers))
			for li := range ws.layers {
				layers[li] = terms(&ws.layers[li], d)
			}
			sink += m.execEstimate(layers)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("estimate collapsed to zero")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/s")
}
