package hwmodel

import "testing"

func TestBaseCaseEqual(t *testing.T) {
	// At 1x bandwidth both designs are a single engine.
	h := Default28nm()
	ta, ba := h.TAES(1), h.BAES(1)
	if ta.AreaUm2 != ba.AreaUm2 || ta.PowerUw != ba.PowerUw {
		t.Errorf("1x costs differ: T-AES %+v, B-AES %+v", ta, ba)
	}
}

func TestTAESLinearScaling(t *testing.T) {
	h := Default28nm()
	for n := 2; n <= 8; n++ {
		p := h.TAES(n)
		if p.AreaUm2 != float64(n)*h.EngineAreaUm2 {
			t.Errorf("T-AES(%d) area = %v", n, p.AreaUm2)
		}
		if p.PowerUw != float64(n)*h.EnginePowerUw {
			t.Errorf("T-AES(%d) power = %v", n, p.PowerUw)
		}
	}
}

func TestBAESNearFlatScaling(t *testing.T) {
	// Fig. 4's claim: B-AES grows by far less than an engine per step.
	h := Default28nm()
	p1 := h.BAES(1)
	p8 := h.BAES(8)
	growth := p8.AreaUm2 - p1.AreaUm2
	if growth >= h.EngineAreaUm2 {
		t.Errorf("B-AES 1->8 area growth %v >= one engine %v", growth, h.EngineAreaUm2)
	}
	// Total growth across 7 steps should stay under half an engine.
	if growth > h.EngineAreaUm2/2 {
		t.Errorf("B-AES growth %v > half an engine", growth)
	}
}

func TestSavingsIncreaseWithBandwidth(t *testing.T) {
	h := Default28nm()
	prevA, prevP := 0.0, 0.0
	for n := 1; n <= 8; n++ {
		a, p := h.SavingsAt(n)
		if a < prevA || p < prevP {
			t.Errorf("savings not monotone at %dx: area %v power %v", n, a, p)
		}
		prevA, prevP = a, p
	}
	// At 8x the paper's figure shows a multi-x gap.
	a8, p8 := h.SavingsAt(8)
	if a8 < 4 {
		t.Errorf("area savings at 8x = %.2f, want >= 4x", a8)
	}
	if p8 < 4 {
		t.Errorf("power savings at 8x = %.2f, want >= 4x", p8)
	}
}

func TestSweepShape(t *testing.T) {
	h := Default28nm()
	taes, baes := h.Sweep(8)
	if len(taes) != 8 || len(baes) != 8 {
		t.Fatalf("sweep lengths %d/%d", len(taes), len(baes))
	}
	for i := range taes {
		if taes[i].BandwidthX != i+1 || baes[i].BandwidthX != i+1 {
			t.Errorf("point %d bandwidth labels wrong", i)
		}
		if i > 0 {
			if taes[i].AreaUm2 <= taes[i-1].AreaUm2 {
				t.Error("T-AES area not increasing")
			}
			if baes[i].AreaUm2 <= baes[i-1].AreaUm2 {
				t.Error("B-AES area not increasing")
			}
		}
		if baes[i].AreaUm2 > taes[i].AreaUm2 {
			t.Errorf("B-AES costs more area than T-AES at %dx", i+1)
		}
	}
}

func TestPanicsOnBadMultiple(t *testing.T) {
	h := Default28nm()
	for _, f := range []func(){
		func() { h.TAES(0) },
		func() { h.BAES(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for bad bandwidth multiple")
				}
			}()
			f()
		}()
	}
}
