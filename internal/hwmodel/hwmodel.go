// Package hwmodel estimates the silicon cost of the encryption
// datapath at 28 nm, reproducing the paper's Fig. 4 comparison between
// T-AES (the traditional approach: one full AES engine per unit of
// required bandwidth) and B-AES (SeDA's bandwidth-aware approach: one
// AES engine plus a bank of 128-bit XOR gates per additional unit).
//
// The absolute constants are calibrated from the 28 nm AES-128
// implementation in Banerjee's MIT dissertation [22] (the paper's
// cited source): a single round-based AES-128 engine occupies several
// thousand µm² and dissipates a few mW at the throughput a 16 B/cycle
// protection unit needs. Only the *scaling shape* matters for the
// figure — T-AES grows by a whole engine per bandwidth step while
// B-AES grows by a wire-dominated XOR bank — and that shape is
// preserved for any constants in the plausible range.
package hwmodel

import "fmt"

// Tech28nm holds the calibrated 28 nm cost constants.
type Tech28nm struct {
	// EngineAreaUm2 is one AES-128 engine (S-boxes, MixColumns,
	// KeyExpansion, control).
	EngineAreaUm2 float64
	// EnginePowerUw is one engine's power at nominal throughput.
	EnginePowerUw float64
	// XORBankAreaUm2 is one 128-bit XOR bank plus pad-select control
	// (the per-step increment of B-AES).
	XORBankAreaUm2 float64
	// XORBankPowerUw is the XOR bank's switching power.
	XORBankPowerUw float64
}

// Default28nm returns the calibrated constants.
func Default28nm() Tech28nm {
	return Tech28nm{
		EngineAreaUm2:  5600,
		EnginePowerUw:  2900,
		XORBankAreaUm2: 190,
		XORBankPowerUw: 55,
	}
}

// Point is one (bandwidth multiple, area, power) sample.
type Point struct {
	BandwidthX int // required bandwidth as a multiple of one engine's
	AreaUm2    float64
	PowerUw    float64
}

// TAES returns the traditional design's cost at bandwidth multiple n:
// n parallel AES engines (Fig. 2(c)).
func (t Tech28nm) TAES(n int) Point {
	if n < 1 {
		panic(fmt.Sprintf("hwmodel: bandwidth multiple %d < 1", n))
	}
	return Point{
		BandwidthX: n,
		AreaUm2:    float64(n) * t.EngineAreaUm2,
		PowerUw:    float64(n) * t.EnginePowerUw,
	}
}

// BAES returns SeDA's bandwidth-aware design cost at bandwidth
// multiple n: one AES engine plus n−1 XOR banks deriving the extra
// pads from the KeyExpansion round keys (Fig. 3(a)).
func (t Tech28nm) BAES(n int) Point {
	if n < 1 {
		panic(fmt.Sprintf("hwmodel: bandwidth multiple %d < 1", n))
	}
	return Point{
		BandwidthX: n,
		AreaUm2:    t.EngineAreaUm2 + float64(n-1)*t.XORBankAreaUm2,
		PowerUw:    t.EnginePowerUw + float64(n-1)*t.XORBankPowerUw,
	}
}

// Sweep produces the Fig. 4 series for bandwidth multiples 1..maxX.
func (t Tech28nm) Sweep(maxX int) (taes, baes []Point) {
	for n := 1; n <= maxX; n++ {
		taes = append(taes, t.TAES(n))
		baes = append(baes, t.BAES(n))
	}
	return taes, baes
}

// SavingsAt returns the area and power ratios T-AES/B-AES at
// bandwidth multiple n — the headline scalability claim.
func (t Tech28nm) SavingsAt(n int) (areaRatio, powerRatio float64) {
	ta, ba := t.TAES(n), t.BAES(n)
	return ta.AreaUm2 / ba.AreaUm2, ta.PowerUw / ba.PowerUw
}
