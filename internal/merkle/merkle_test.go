package merkle

import (
	"testing"
	"testing/quick"

	"repro/internal/sha256x"
)

var key = []byte("merkle-test-key")

func newTree(t *testing.T, leaves, arity int) *Tree {
	t.Helper()
	tr, err := New(key, leaves, arity)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadShape(t *testing.T) {
	if _, err := New(key, 0, 8); err == nil {
		t.Error("accepted 0 leaves")
	}
	if _, err := New(key, 8, 1); err == nil {
		t.Error("accepted arity 1")
	}
	if _, err := New(key, -3, 8); err == nil {
		t.Error("accepted negative leaves")
	}
}

func TestTreeShape(t *testing.T) {
	cases := []struct {
		leaves, arity, height int
	}{
		{1, 8, 1},
		{8, 8, 2},
		{9, 8, 3},
		{64, 8, 3},
		{65, 8, 4},
		{512, 8, 4},
		{2, 2, 2},
		{7, 2, 4},
	}
	for _, c := range cases {
		tr := newTree(t, c.leaves, c.arity)
		if tr.Height() != c.height {
			t.Errorf("leaves=%d arity=%d: height=%d, want %d", c.leaves, c.arity, tr.Height(), c.height)
		}
		if tr.NumLeaves() != c.leaves {
			t.Errorf("NumLeaves=%d, want %d", tr.NumLeaves(), c.leaves)
		}
		if tr.PathLen() != c.height {
			t.Errorf("PathLen=%d, want %d", tr.PathLen(), c.height)
		}
	}
}

func TestSetLeafChangesRoot(t *testing.T) {
	tr := newTree(t, 64, 8)
	r0 := tr.Root()
	tr.SetLeaf(13, sha256x.MAC(0xabcdef))
	if tr.Root() == r0 {
		t.Error("root unchanged after SetLeaf")
	}
	if tr.Leaf(13) != sha256x.MAC(0xabcdef) {
		t.Error("leaf not stored")
	}
}

func TestSetLeafTouchedPath(t *testing.T) {
	tr := newTree(t, 64, 8)
	touched := tr.SetLeaf(42, 1)
	if len(touched) != tr.Height() {
		t.Fatalf("touched %d nodes, want %d", len(touched), tr.Height())
	}
	if touched[0] != (NodeRef{Level: 0, Index: 42}) {
		t.Errorf("first ref = %+v, want leaf 42", touched[0])
	}
	want := 42
	for lv, ref := range touched {
		if ref.Level != lv {
			t.Errorf("ref %d level = %d", lv, ref.Level)
		}
		if ref.Index != want {
			t.Errorf("level %d index = %d, want %d", lv, ref.Index, want)
		}
		want /= 8
	}
	last := touched[len(touched)-1]
	if last.Index != 0 {
		t.Errorf("path does not end at root: %+v", last)
	}
}

func TestVerifyCleanTree(t *testing.T) {
	tr := newTree(t, 100, 8)
	for i := 0; i < 100; i++ {
		tr.SetLeaf(i, sha256x.MAC(i*i+1))
	}
	for i := 0; i < 100; i++ {
		ok, touched := tr.VerifyLeaf(i)
		if !ok {
			t.Fatalf("clean leaf %d failed verification", i)
		}
		if len(touched) != tr.Height() {
			t.Fatalf("verify touched %d nodes, want %d", len(touched), tr.Height())
		}
	}
}

func TestVerifyDetectsInteriorTamper(t *testing.T) {
	// 512 leaves, arity 8: levels are 512/64/8/1. Corrupting a level-1
	// node is detected on every leaf whose path compares against it,
	// while leaves in disjoint subtrees (whose paths never read the
	// corrupted node) still verify against their own intact ancestors.
	tr := newTree(t, 512, 8)
	for i := 0; i < 512; i++ {
		tr.SetLeaf(i, sha256x.MAC(i+7))
	}
	tr.CorruptNode(NodeRef{Level: 1, Index: 63}, 0x1)
	if ok, _ := tr.VerifyLeaf(511); ok {
		t.Error("tampered interior node not detected on covered leaf")
	}
	if ok, _ := tr.VerifyLeaf(0); !ok {
		t.Error("untouched subtree failed verification")
	}
}

func TestVerifyDetectsLeafReplay(t *testing.T) {
	tr := newTree(t, 64, 8)
	for i := 0; i < 64; i++ {
		tr.SetLeaf(i, sha256x.MAC(1000+i))
	}
	// Replay: restore leaf 20's old value without updating ancestors.
	tr.CorruptNode(NodeRef{Level: 0, Index: 20}, uint64(tr.Leaf(20))^999)
	if ok, _ := tr.VerifyLeaf(20); ok {
		t.Error("replayed leaf not detected")
	}
}

func TestCorruptRootPanics(t *testing.T) {
	tr := newTree(t, 8, 8)
	defer func() {
		if recover() == nil {
			t.Error("corrupting root did not panic")
		}
	}()
	tr.CorruptNode(NodeRef{Level: tr.Height() - 1, Index: 0}, 1)
}

func TestRootDeterministicAcrossRebuild(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			vals = []uint64{0}
		}
		t1, err := New(key, len(vals), 8)
		if err != nil {
			return false
		}
		t2, err := New(key, len(vals), 8)
		if err != nil {
			return false
		}
		for i, v := range vals {
			t1.SetLeaf(i, sha256x.MAC(v))
		}
		// Install in reverse order on t2.
		for i := len(vals) - 1; i >= 0; i-- {
			t2.SetLeaf(i, sha256x.MAC(vals[i]))
		}
		return t1.Root() == t2.Root()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDifferentKeysDifferentRoots(t *testing.T) {
	t1, _ := New([]byte("key-one"), 16, 8)
	t2, _ := New([]byte("key-two"), 16, 8)
	t1.SetLeaf(0, 5)
	t2.SetLeaf(0, 5)
	if t1.Root() == t2.Root() {
		t.Error("roots collide under different keys")
	}
}

func TestLeafOutOfRangePanics(t *testing.T) {
	tr := newTree(t, 8, 8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Leaf(%d) did not panic", i)
				}
			}()
			tr.Leaf(i)
		}()
	}
}
