package merkle

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sha256x"
)

// Bonsai is a Bonsai Merkle Tree: a hash tree over the version-number
// counters rather than over the data blocks themselves. Data freshness
// follows indirectly: each data block's MAC binds its VN, and the BMT
// (root on-chip) guarantees VN freshness, so replaying stale data or a
// stale counter is caught. Because VNs are small (56-bit in SGX and
// SeDA's threat model), the BMT is far shallower than a data-block MT —
// the optimization introduced by Rogers et al. [13].
type Bonsai struct {
	vns  []uint64 // the off-chip counter array (56-bit values)
	tree *Tree    // hash tree over counter groups
	per  int      // counters per leaf (a 64B counter line holds 8)
}

// VNMask keeps counters within the 56-bit width used by the schemes.
const VNMask = (uint64(1) << 56) - 1

// CountersPerLine is how many 56-bit VNs pack into one 64-byte
// metadata line (8 bytes each after alignment).
const CountersPerLine = 8

// NewBonsai builds a BMT over n version counters, all zero.
func NewBonsai(key []byte, n int) (*Bonsai, error) {
	if n < 1 {
		return nil, fmt.Errorf("merkle: bonsai counter count %d < 1", n)
	}
	leaves := (n + CountersPerLine - 1) / CountersPerLine
	t, err := New(key, leaves, DefaultArity)
	if err != nil {
		return nil, err
	}
	b := &Bonsai{
		vns:  make([]uint64, n),
		tree: t,
		per:  CountersPerLine,
	}
	for leaf := 0; leaf < leaves; leaf++ {
		b.tree.SetLeaf(leaf, b.leafDigest(leaf))
	}
	return b, nil
}

// NumCounters returns the number of version counters tracked.
func (b *Bonsai) NumCounters() int { return len(b.vns) }

// VN returns counter i.
func (b *Bonsai) VN(i int) uint64 {
	b.mustIdx(i)
	return b.vns[i]
}

func (b *Bonsai) leafDigest(leaf int) sha256x.MAC {
	lo := leaf * b.per
	hi := lo + b.per
	if hi > len(b.vns) {
		hi = len(b.vns)
	}
	buf := make([]byte, 0, (hi-lo)*8+4)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(leaf))
	buf = append(buf, hdr[:]...)
	for i := lo; i < hi; i++ {
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], b.vns[i])
		buf = append(buf, v[:]...)
	}
	return sha256x.TruncMAC(b.tree.key, buf)
}

// Increment bumps counter i (a write to the protected block), updates
// the tree path, and returns the new value plus the nodes written.
func (b *Bonsai) Increment(i int) (uint64, []NodeRef) {
	b.mustIdx(i)
	b.vns[i] = (b.vns[i] + 1) & VNMask
	leaf := i / b.per
	touched := b.tree.SetLeaf(leaf, b.leafDigest(leaf))
	return b.vns[i], touched
}

// Verify checks that counter i's stored value is consistent with the
// tree path to the on-chip root, returning the nodes read.
func (b *Bonsai) Verify(i int) (bool, []NodeRef) {
	b.mustIdx(i)
	leaf := i / b.per
	if b.tree.Leaf(leaf) != b.leafDigest(leaf) {
		return false, []NodeRef{{Level: 0, Index: leaf}}
	}
	return b.tree.VerifyLeaf(leaf)
}

// TamperCounter overwrites counter i without updating the tree,
// modeling an off-chip replay/rollback of the counter line.
func (b *Bonsai) TamperCounter(i int, value uint64) {
	b.mustIdx(i)
	b.vns[i] = value & VNMask
}

// Root returns the on-chip root.
func (b *Bonsai) Root() sha256x.MAC { return b.tree.Root() }

// Tree exposes the underlying hash tree (e.g. for traffic accounting
// or interior-node tampering in tests).
func (b *Bonsai) Tree() *Tree { return b.tree }

func (b *Bonsai) mustIdx(i int) {
	if i < 0 || i >= len(b.vns) {
		panic(fmt.Sprintf("merkle: counter %d out of range [0,%d)", i, len(b.vns)))
	}
}
