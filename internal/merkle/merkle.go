// Package merkle implements the integrity trees used by SGX-style
// memory protection: a hash tree (Merkle Tree, MT) over protected data
// blocks and a Bonsai Merkle Tree (BMT) over version-number counters.
// The root of either tree lives in on-chip storage (the TCB), so a
// replay of stale off-chip data or counters is detected when the
// recomputed root disagrees.
//
// Besides the functional verify/update operations used in tests and
// the attack demos, every walk reports the set of tree-node indices it
// touched, which the memory-protection simulator converts into
// metadata DRAM traffic (filtered through the metadata caches).
package merkle

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sha256x"
)

// DefaultArity is the fan-out used by the simulated trees. An 8-ary
// tree over 64B blocks matches the 64B-node / 8B-MAC geometry common
// to SGX-class integrity engines.
const DefaultArity = 8

// Tree is a fixed-shape hash tree over nLeaves leaf digests.
// Leaves are 64-bit truncated MACs of the protected blocks; interior
// nodes are truncated MACs of their children's concatenation.
type Tree struct {
	arity  int
	key    []byte
	levels [][]sha256x.MAC // levels[0] = leaves ... levels[h-1] = [root]
}

// New builds a tree with the given arity over nLeaves zero-valued
// leaves. nLeaves must be >= 1 and arity >= 2.
func New(key []byte, nLeaves, arity int) (*Tree, error) {
	if nLeaves < 1 {
		return nil, fmt.Errorf("merkle: nLeaves %d < 1", nLeaves)
	}
	if arity < 2 {
		return nil, fmt.Errorf("merkle: arity %d < 2", arity)
	}
	t := &Tree{arity: arity, key: append([]byte(nil), key...)}
	n := nLeaves
	for {
		t.levels = append(t.levels, make([]sha256x.MAC, n))
		if n == 1 {
			break
		}
		n = (n + arity - 1) / arity
	}
	t.rebuildAll()
	return t, nil
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return len(t.levels[0]) }

// Height returns the number of levels including leaves and root.
func (t *Tree) Height() int { return len(t.levels) }

// Root returns the current root MAC (the on-chip copy).
func (t *Tree) Root() sha256x.MAC { return t.levels[len(t.levels)-1][0] }

// NodeRef identifies a tree node touched by a walk: its level
// (0 = leaves) and index within the level. The protection simulator
// maps NodeRefs to metadata addresses.
type NodeRef struct {
	Level int
	Index int
}

func (t *Tree) hashChildren(level, parentIdx int) sha256x.MAC {
	lo := parentIdx * t.arity
	hi := lo + t.arity
	if hi > len(t.levels[level]) {
		hi = len(t.levels[level])
	}
	buf := make([]byte, 0, (hi-lo)*8+8)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(level))
	binary.BigEndian.PutUint32(hdr[4:], uint32(parentIdx))
	buf = append(buf, hdr[:]...)
	for i := lo; i < hi; i++ {
		b := t.levels[level][i].Bytes()
		buf = append(buf, b[:]...)
	}
	return sha256x.TruncMAC(t.key, buf)
}

func (t *Tree) rebuildAll() {
	for lv := 0; lv < len(t.levels)-1; lv++ {
		for p := range t.levels[lv+1] {
			t.levels[lv+1][p] = t.hashChildren(lv, p)
		}
	}
}

// SetLeaf installs a new leaf digest and updates the path to the root,
// returning the nodes written (leaf upward, root last).
func (t *Tree) SetLeaf(i int, m sha256x.MAC) []NodeRef {
	t.mustLeaf(i)
	t.levels[0][i] = m
	touched := []NodeRef{{Level: 0, Index: i}}
	idx := i
	for lv := 0; lv < len(t.levels)-1; lv++ {
		parent := idx / t.arity
		t.levels[lv+1][parent] = t.hashChildren(lv, parent)
		touched = append(touched, NodeRef{Level: lv + 1, Index: parent})
		idx = parent
	}
	return touched
}

// Leaf returns leaf i's digest.
func (t *Tree) Leaf(i int) sha256x.MAC {
	t.mustLeaf(i)
	return t.levels[0][i]
}

// VerifyLeaf checks leaf i against the stored path to the root,
// returning whether the path is consistent and the nodes read. With an
// untampered tree this always succeeds; tests corrupt interior state
// via CorruptNode to exercise detection.
func (t *Tree) VerifyLeaf(i int) (bool, []NodeRef) {
	t.mustLeaf(i)
	touched := []NodeRef{{Level: 0, Index: i}}
	idx := i
	for lv := 0; lv < len(t.levels)-1; lv++ {
		parent := idx / t.arity
		want := t.hashChildren(lv, parent)
		touched = append(touched, NodeRef{Level: lv + 1, Index: parent})
		if t.levels[lv+1][parent] != want {
			return false, touched
		}
		idx = parent
	}
	return true, touched
}

// CorruptNode flips bits of a stored node without updating ancestors,
// modeling off-chip tampering. The root (highest level) is on-chip and
// cannot be corrupted; attempting to do so panics.
func (t *Tree) CorruptNode(ref NodeRef, mask uint64) {
	if ref.Level == len(t.levels)-1 {
		panic("merkle: root is on-chip and cannot be tampered")
	}
	if ref.Level < 0 || ref.Level >= len(t.levels) ||
		ref.Index < 0 || ref.Index >= len(t.levels[ref.Level]) {
		panic(fmt.Sprintf("merkle: node ref %+v out of range", ref))
	}
	t.levels[ref.Level][ref.Index] ^= sha256x.MAC(mask)
}

// PathLen returns the number of nodes on a leaf-to-root path,
// the per-access traffic upper bound before caching.
func (t *Tree) PathLen() int { return len(t.levels) }

func (t *Tree) mustLeaf(i int) {
	if i < 0 || i >= len(t.levels[0]) {
		panic(fmt.Sprintf("merkle: leaf %d out of range [0,%d)", i, len(t.levels[0])))
	}
}
