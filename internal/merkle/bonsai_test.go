package merkle

import (
	"testing"
	"testing/quick"
)

func newBonsai(t *testing.T, n int) *Bonsai {
	t.Helper()
	b, err := NewBonsai(key, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBonsaiRejectsBadCount(t *testing.T) {
	if _, err := NewBonsai(key, 0); err == nil {
		t.Error("accepted 0 counters")
	}
}

func TestBonsaiIncrement(t *testing.T) {
	b := newBonsai(t, 100)
	for i := 0; i < 100; i++ {
		if b.VN(i) != 0 {
			t.Fatalf("counter %d initial value %d", i, b.VN(i))
		}
	}
	v, touched := b.Increment(17)
	if v != 1 {
		t.Errorf("incremented value = %d, want 1", v)
	}
	if b.VN(17) != 1 {
		t.Errorf("stored VN = %d, want 1", b.VN(17))
	}
	if len(touched) != b.Tree().Height() {
		t.Errorf("increment touched %d nodes, want %d", len(touched), b.Tree().Height())
	}
	// Counters sharing a leaf line are untouched.
	if b.VN(16) != 0 || b.VN(18) != 0 {
		t.Error("neighboring counters modified")
	}
}

func TestBonsaiVerifyClean(t *testing.T) {
	b := newBonsai(t, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j <= i%3; j++ {
			b.Increment(i)
		}
	}
	for i := 0; i < 64; i++ {
		if ok, _ := b.Verify(i); !ok {
			t.Fatalf("clean counter %d failed verification", i)
		}
	}
}

func TestBonsaiDetectsCounterReplay(t *testing.T) {
	b := newBonsai(t, 64)
	b.Increment(5)
	b.Increment(5)
	b.Increment(5)
	// Roll counter 5 back to a previous value (replay attack).
	b.TamperCounter(5, 1)
	if ok, _ := b.Verify(5); ok {
		t.Error("rolled-back counter not detected")
	}
	// A counter on the same metadata line is also flagged (line
	// granularity), while counters on other lines still verify.
	if ok, _ := b.Verify(60); !ok {
		t.Error("unrelated counter failed verification")
	}
}

func TestBonsaiDetectsInteriorTamper(t *testing.T) {
	b := newBonsai(t, 512)
	for i := 0; i < 512; i += 7 {
		b.Increment(i)
	}
	b.Tree().CorruptNode(NodeRef{Level: 1, Index: 0}, 0xff)
	if ok, _ := b.Verify(0); ok {
		t.Error("tampered BMT interior node not detected")
	}
}

func TestBonsaiRootChangesOnEveryIncrement(t *testing.T) {
	b := newBonsai(t, 32)
	seen := map[uint64]bool{uint64(b.Root()): true}
	for i := 0; i < 32; i++ {
		b.Increment(i)
		r := uint64(b.Root())
		if seen[r] {
			t.Fatalf("root repeated after incrementing counter %d", i)
		}
		seen[r] = true
	}
}

func TestBonsaiVNMask(t *testing.T) {
	b := newBonsai(t, 1)
	b.TamperCounter(0, VNMask) // set to max legal value
	// Incrementing past the 56-bit limit wraps to zero.
	// First fix up the tree so Verify passes, then increment.
	b.Increment(0)
	if b.VN(0) != 0 {
		t.Errorf("VN after wrap = %d, want 0", b.VN(0))
	}
}

func TestBonsaiCountersPerLinePacking(t *testing.T) {
	// 9 counters need 2 leaves; 8 need 1.
	b8 := newBonsai(t, 8)
	if got := b8.Tree().NumLeaves(); got != 1 {
		t.Errorf("8 counters -> %d leaves, want 1", got)
	}
	b9 := newBonsai(t, 9)
	if got := b9.Tree().NumLeaves(); got != 2 {
		t.Errorf("9 counters -> %d leaves, want 2", got)
	}
}

func TestBonsaiIncrementVerifyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b, err := NewBonsai(key, 40)
		if err != nil {
			return false
		}
		for _, op := range ops {
			b.Increment(int(op) % 40)
		}
		for i := 0; i < 40; i++ {
			if ok, _ := b.Verify(i); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
