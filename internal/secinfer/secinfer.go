// Package secinfer runs complete DNN inferences through the SeDA
// protection unit: weights are provisioned encrypted and sealed under
// the model MAC, every activation tensor round-trips through
// encrypted, integrity-verified off-chip memory, and the layer
// computation itself runs on the reference executor. A protected
// inference must produce bit-identical outputs to an unprotected one,
// and any off-chip tampering must surface as an *core.IntegrityError —
// the two properties the integration tests assert.
package secinfer

import (
	"fmt"
	"math/rand"

	"repro/internal/authblock"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nnexec"
	"repro/internal/scalesim"
)

// Address-space layout inside the untrusted memory: activations
// ping-pong between two banks (mirroring the timing simulator's
// layout); weights are laid out consecutively.
const (
	actABase    uint64 = 0x0100_0000
	actBBase    uint64 = 0x0300_0000
	weightsBase uint64 = 0x0500_0000
)

// fmap index tags distinguishing the tensors of one layer.
const (
	fmapActivations uint32 = 0
	fmapWeights     uint32 = 1
)

// Pipeline is a secure inference engine for one network.
type Pipeline struct {
	net     *model.Network
	unit    *core.Unit
	optBlk  int
	weights []nnexec.Weights // plaintext kept only for the unprotected reference
	wAddrs  []uint64
	sealed  bool
}

// New builds a pipeline over net with deterministic weights derived
// from seed. optBlk is the protection-block granularity used for all
// tensors (the functional model does not need the timing-level
// per-layer search to demonstrate correctness).
func New(net *model.Network, encKey, macKey []byte, seed int64, optBlk int) (*Pipeline, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if optBlk <= 0 {
		return nil, fmt.Errorf("secinfer: optBlk %d must be positive", optBlk)
	}
	unit, err := core.NewUnit(encKey, macKey, core.NewMemory())
	if err != nil {
		return nil, err
	}
	p := &Pipeline{net: net, unit: unit, optBlk: optBlk}
	r := rand.New(rand.NewSource(seed))
	var off uint64
	for _, l := range net.Layers {
		w := make([]byte, l.WeightBytes())
		r.Read(w) //nolint:errcheck
		p.weights = append(p.weights, nnexec.Weights{Data: w})
		p.wAddrs = append(p.wAddrs, weightsBase+off)
		off += l.WeightBytes()
	}
	return p, nil
}

// Unit exposes the protection unit (attack simulations corrupt its
// memory).
func (p *Pipeline) Unit() *core.Unit { return p.unit }

// Reference geometry SearchedOptBlk simulates the network on: the
// paper's edge NPU (32×32 PEs, 480 KB SRAM; Table II), the platform
// the functional model stands in for. Exported so the seda package —
// which owns the authoritative NPU configs and cannot be imported
// from here without inverting the layering — can assert these mirror
// seda.EdgeNPU and fail loudly if that config is ever retuned
// (TestSecinferSearchGeometryMatchesEdgeNPU).
const (
	SearchArrayDim  = 32
	SearchSRAMBytes = 480 * 1024
)

// SearchedOptBlk derives a protection-block granularity for the
// functional pipeline from the timing-level machinery: it schedules
// the network on the reference edge geometry, summarizes every layer's
// access runs with a single spine walk (authblock.CollectLayer), and
// searches each tensor's optBlk. The functional model uses one block
// for all tensors, so it returns the smallest searched block — every
// layer's chosen granularity is a multiple of it or at worst equally
// fine, and any positive block is functionally valid (the protection
// unit is granularity-agnostic; the search only shifts traffic).
func SearchedOptBlk(net *model.Network) (int, error) {
	cfg, err := scalesim.New(SearchArrayDim, SearchArrayDim, SearchSRAMBytes)
	if err != nil {
		return 0, err
	}
	sim, err := cfg.SimulateNetwork(net)
	if err != nil {
		return 0, err
	}
	best := authblock.MaxBlock
	found := false
	w := authblock.OnChipMACWeights()
	for i := range sim.Layers {
		runs := authblock.CollectLayer(sim.Layers[i].Trace)
		for _, rs := range []*authblock.RunSet{&runs.IFMap, &runs.Weights, &runs.OFMap} {
			if rs.Empty() {
				continue
			}
			found = true
			if b := rs.SearchWeighted(w).Best.Block; b < best {
				best = b
			}
		}
	}
	if !found {
		return authblock.MinBlock, nil
	}
	return best, nil
}

// NewSearched builds a pipeline like New, with the protection-block
// granularity chosen by the authblock search over the network's own
// schedule instead of supplied by the caller.
func NewSearched(net *model.Network, encKey, macKey []byte, seed int64) (*Pipeline, error) {
	optBlk, err := SearchedOptBlk(net)
	if err != nil {
		return nil, err
	}
	return New(net, encKey, macKey, seed, optBlk)
}

// Provision writes every layer's weights into untrusted memory
// encrypted, and seals them all under the on-chip model MAC.
func (p *Pipeline) Provision() error {
	if p.sealed {
		return fmt.Errorf("secinfer: already provisioned")
	}
	for i, l := range p.net.Layers {
		id := core.FmapID{Layer: uint32(i), Fmap: fmapWeights}
		if err := p.unit.WriteFmap(id, p.wAddrs[i], p.weights[i].Data, p.optBlk); err != nil {
			return fmt.Errorf("secinfer: provisioning %s: %w", l.Name, err)
		}
		if err := p.unit.SealFmap(id); err != nil {
			return err
		}
	}
	p.sealed = true
	return nil
}

// Infer runs the network on input with every tensor round-tripping
// through protected off-chip memory, then verifies the model MAC over
// the weights. Returns the final activation tensor.
func (p *Pipeline) Infer(input *nnexec.Tensor) (*nnexec.Tensor, error) {
	if !p.sealed {
		return nil, fmt.Errorf("secinfer: Provision must run before Infer")
	}
	if err := input.Validate(); err != nil {
		return nil, err
	}
	act := input
	for i, l := range p.net.Layers {
		act = adaptTo(act, l)

		// Spill the layer input to protected off-chip memory and read
		// it back verified — the accelerator's ifmap fetch.
		actID := core.FmapID{Layer: uint32(i), Fmap: fmapActivations}
		actAddr := actBase(i)
		if err := p.unit.WriteFmap(actID, actAddr, act.Data, p.optBlk); err != nil {
			return nil, err
		}
		fetched, err := p.unit.ReadFmap(actID, actAddr, len(act.Data), p.optBlk)
		if err != nil {
			return nil, fmt.Errorf("secinfer: layer %s ifmap: %w", l.Name, err)
		}
		act = &nnexec.Tensor{H: act.H, W: act.W, C: act.C, Data: fetched}

		// Fetch the layer's weights through the verified path too.
		wID := core.FmapID{Layer: uint32(i), Fmap: fmapWeights}
		wBytes, err := p.unit.ReadFmap(wID, p.wAddrs[i], len(p.weights[i].Data), p.optBlk)
		if err != nil {
			return nil, fmt.Errorf("secinfer: layer %s weights: %w", l.Name, err)
		}

		out, err := nnexec.Execute(l, act, nnexec.Weights{Data: wBytes})
		if err != nil {
			return nil, fmt.Errorf("secinfer: layer %s: %w", l.Name, err)
		}
		act = out
	}

	// End-of-inference model-level check over all weights (§III-C:
	// "verification results available only at the end of model
	// inference").
	if err := p.unit.VerifyModel(func(id core.FmapID) (uint64, int, int) {
		return p.wAddrs[id.Layer], len(p.weights[id.Layer].Data), p.optBlk
	}); err != nil {
		return nil, err
	}
	return act, nil
}

// ReferenceInfer runs the same computation with no protection at all,
// for bit-exactness comparison.
func (p *Pipeline) ReferenceInfer(input *nnexec.Tensor) (*nnexec.Tensor, error) {
	if err := input.Validate(); err != nil {
		return nil, err
	}
	act := input
	for _, l := range p.net.Layers {
		act = adaptTo(act, l)
		idx := layerIndex(p.net, l)
		out, err := nnexec.Execute(l, act, p.weights[idx])
		if err != nil {
			return nil, err
		}
		act = out
	}
	return act, nil
}

func layerIndex(n *model.Network, l model.Layer) int {
	for i := range n.Layers {
		if n.Layers[i].Name == l.Name {
			return i
		}
	}
	return -1
}

func actBase(layer int) uint64 {
	if layer%2 == 0 {
		return actABase
	}
	return actBBase
}

// adaptTo reshapes the previous layer's output into the shape the
// next layer expects, standing in for the pooling/flatten/padding
// steps the layer tables fold away: 2×2 max-pool while the spatial
// dims are at least double the target, then center-crop or zero-pad,
// then channel-crop or zero-pad. GEMM layers flatten to M×K.
func adaptTo(t *nnexec.Tensor, l model.Layer) *nnexec.Tensor {
	if l.Kind == model.GEMM {
		want := l.GemmM * l.Channels
		out := nnexec.NewTensor(l.GemmM, 1, l.Channels)
		n := copy(out.Data, t.Data)
		_ = n // shorter inputs zero-pad; longer inputs truncate
		_ = want
		return out
	}
	for t.H >= 2*l.IfmapH && t.W >= 2*l.IfmapW {
		t = maxPool2(t)
	}
	if t.H == l.IfmapH && t.W == l.IfmapW && t.C == l.Channels {
		return t
	}
	out := nnexec.NewTensor(l.IfmapH, l.IfmapW, l.Channels)
	for y := 0; y < l.IfmapH && y < t.H; y++ {
		for x := 0; x < l.IfmapW && x < t.W; x++ {
			for c := 0; c < l.Channels && c < t.C; c++ {
				out.Set(y, x, c, t.At(y, x, c))
			}
		}
	}
	return out
}

// maxPool2 applies a 2×2 stride-2 max pool.
func maxPool2(t *nnexec.Tensor) *nnexec.Tensor {
	out := nnexec.NewTensor(t.H/2, t.W/2, t.C)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			for c := 0; c < t.C; c++ {
				m := t.At(2*y, 2*x, c)
				for _, v := range []byte{t.At(2*y, 2*x+1, c), t.At(2*y+1, 2*x, c), t.At(2*y+1, 2*x+1, c)} {
					if v > m {
						m = v
					}
				}
				out.Set(y, x, c, m)
			}
		}
	}
	return out
}
