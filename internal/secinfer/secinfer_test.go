package secinfer

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/authblock"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nnexec"
)

const (
	authblockMin = authblock.MinBlock
	authblockMax = authblock.MaxBlock
)

var (
	encKey = []byte("0123456789abcdef")
	macKey = []byte("secinfer-mac-key")
)

// tinyNet is a 3-layer network small enough for exhaustive functional
// testing.
func tinyNet() *model.Network {
	return &model.Network{
		Name: "tiny", Full: "tiny test net",
		Layers: []model.Layer{
			model.CV("c1", 12, 12, 3, 3, 2, 4, 1),
			model.CV("c2", 10, 10, 3, 3, 4, 4, 1),
			model.FC("fc", 1, 256, 10),
		},
	}
}

func tinyInput(seed int64) *nnexec.Tensor {
	r := rand.New(rand.NewSource(seed))
	t := nnexec.NewTensor(12, 12, 2)
	r.Read(t.Data) //nolint:errcheck
	return t
}

func newPipeline(t *testing.T, net *model.Network) *Pipeline {
	t.Helper()
	p, err := New(net, encKey, macKey, 42, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Provision(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProtectedMatchesReference(t *testing.T) {
	p := newPipeline(t, tinyNet())
	in := tinyInput(1)
	prot, err := p.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.ReferenceInfer(tinyInput(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prot.Data, ref.Data) {
		t.Fatal("protected inference output differs from unprotected reference")
	}
	if prot.C != 10 {
		t.Errorf("output channels = %d, want 10", prot.C)
	}
}

func TestLeNetEndToEnd(t *testing.T) {
	p := newPipeline(t, model.LeNet())
	in := nnexec.NewTensor(32, 32, 1)
	r := rand.New(rand.NewSource(7))
	r.Read(in.Data) //nolint:errcheck

	prot, err := p.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := nnexec.NewTensor(32, 32, 1)
	copy(in2.Data, in.Data)
	ref, err := p.ReferenceInfer(in2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prot.Data, ref.Data) {
		t.Fatal("LeNet protected output differs from reference")
	}
	if len(prot.Data) != 10 {
		t.Errorf("LeNet output size = %d, want 10 classes", len(prot.Data))
	}
}

func TestInferWithoutProvisionFails(t *testing.T) {
	p, err := New(tinyNet(), encKey, macKey, 42, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Infer(tinyInput(1)); err == nil {
		t.Fatal("inference ran without provisioning")
	}
}

func TestDoubleProvisionFails(t *testing.T) {
	p := newPipeline(t, tinyNet())
	if err := p.Provision(); err == nil {
		t.Fatal("double provisioning accepted")
	}
}

func TestWeightTamperDetectedDuringInference(t *testing.T) {
	p := newPipeline(t, tinyNet())
	// Corrupt one byte of layer 1's encrypted weights in untrusted
	// memory.
	p.Unit().Memory().Corrupt(weightsBase+100, 0x01)
	_, err := p.Infer(tinyInput(2))
	if err == nil {
		t.Fatal("weight tamper not detected")
	}
	var ie *core.IntegrityError
	if !asIntegrityError(err, &ie) {
		t.Fatalf("error is not an IntegrityError: %v", err)
	}
}

func TestWeightSwapDetected(t *testing.T) {
	p := newPipeline(t, tinyNet())
	// RePA against the provisioned weights: swap two 256B blocks.
	p.Unit().Memory().SwapRegions(weightsBase, weightsBase+256, 256)
	if _, err := p.Infer(tinyInput(3)); err == nil {
		t.Fatal("weight block swap not detected")
	}
}

func TestCleanRunAfterTamperedRunStillDetects(t *testing.T) {
	// Detection state must not be corrupted by a failed inference.
	p := newPipeline(t, tinyNet())
	snapshot := p.Unit().Memory().Snapshot(weightsBase, 256)
	p.Unit().Memory().Corrupt(weightsBase+10, 0xff)
	if _, err := p.Infer(tinyInput(4)); err == nil {
		t.Fatal("tamper not detected")
	}
	// Attacker restores the original bytes: inference works again.
	p.Unit().Memory().Replay(weightsBase, snapshot)
	if _, err := p.Infer(tinyInput(4)); err != nil {
		t.Fatalf("restored memory still failing: %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := newPipeline(t, tinyNet())
	out1, err := p.Infer(tinyInput(5))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := p.Infer(tinyInput(5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Data, out2.Data) {
		t.Fatal("repeated inference differs")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(tinyNet(), encKey, macKey, 1, 0); err == nil {
		t.Error("optBlk 0 accepted")
	}
	if _, err := New(&model.Network{Name: "empty"}, encKey, macKey, 1, 64); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := New(tinyNet(), []byte("short"), macKey, 1, 64); err == nil {
		t.Error("bad key accepted")
	}
}

func TestAdaptPoolAndPad(t *testing.T) {
	// 24x24x2 -> conv expecting 12x12x2: one max-pool.
	src := nnexec.NewTensor(24, 24, 2)
	for i := range src.Data {
		src.Data[i] = byte(i)
	}
	l := model.CV("c", 12, 12, 3, 3, 2, 1, 1)
	out := adaptTo(src, l)
	if out.H != 12 || out.W != 12 || out.C != 2 {
		t.Fatalf("adapted shape %dx%dx%d", out.H, out.W, out.C)
	}
	// Channel padding: 12x12x1 -> 12x12x3 zero-pads channels 1,2.
	small := nnexec.NewTensor(12, 12, 1)
	for i := range small.Data {
		small.Data[i] = 9
	}
	l3 := model.CV("c3", 12, 12, 3, 3, 3, 1, 1)
	padded := adaptTo(small, l3)
	if padded.At(0, 0, 0) != 9 || padded.At(0, 0, 1) != 0 || padded.At(0, 0, 2) != 0 {
		t.Error("channel zero-padding wrong")
	}
}

func TestMaxPool2(t *testing.T) {
	src := nnexec.NewTensor(4, 4, 1)
	vals := []byte{
		1, 5, 2, 0,
		3, 4, 9, 1,
		0, 0, 7, 8,
		2, 1, 6, 5,
	}
	copy(src.Data, vals)
	out := maxPool2(src)
	want := []byte{5, 9, 2, 8}
	if !bytes.Equal(out.Data, want) {
		t.Errorf("pooled = %v, want %v", out.Data, want)
	}
}

// asIntegrityError unwraps err looking for a *core.IntegrityError.
func asIntegrityError(err error, target **core.IntegrityError) bool {
	for err != nil {
		if ie, ok := err.(*core.IntegrityError); ok {
			*target = ie
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestSearchedOptBlkPipeline wires the timing-level authblock search
// into the functional model: the searched granularity must be a
// positive block in the engine's supported range, and a pipeline built
// on it must stay bit-exact with the unprotected reference and still
// detect tampering.
func TestSearchedOptBlkPipeline(t *testing.T) {
	net := tinyNet()
	blk, err := SearchedOptBlk(net)
	if err != nil {
		t.Fatal(err)
	}
	if blk < authblockMin || blk > authblockMax {
		t.Fatalf("searched optBlk %d outside [%d, %d]", blk, authblockMin, authblockMax)
	}
	p, err := NewSearched(net, encKey, macKey, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.optBlk != blk {
		t.Fatalf("NewSearched used block %d, want %d", p.optBlk, blk)
	}
	if err := p.Provision(); err != nil {
		t.Fatal(err)
	}
	prot, err := p.Infer(tinyInput(3))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.ReferenceInfer(tinyInput(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prot.Data, ref.Data) {
		t.Fatal("searched-optBlk protected inference diverged from reference")
	}
}

// TestSearchedOptBlkStable: the search is a pure function of the
// network, so repeated calls must agree (it feeds provisioning, where
// a drifting granularity would break seal verification).
func TestSearchedOptBlkStable(t *testing.T) {
	a, err := SearchedOptBlk(model.LeNet())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchedOptBlk(model.LeNet())
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 {
		t.Fatalf("unstable searched optBlk: %d vs %d", a, b)
	}
}
