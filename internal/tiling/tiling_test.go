package tiling

import (
	"testing"
	"testing/quick"
)

func TestRounding(t *testing.T) {
	if RoundDown(100, 64) != 64 || RoundDown(64, 64) != 64 || RoundDown(63, 64) != 0 {
		t.Error("RoundDown wrong")
	}
	if RoundUp(100, 64) != 128 || RoundUp(64, 64) != 64 || RoundUp(1, 64) != 64 {
		t.Error("RoundUp wrong")
	}
}

func TestBlocksTouched(t *testing.T) {
	cases := []struct {
		addr, n, block, want uint64
	}{
		{0, 64, 64, 1},
		{0, 65, 64, 2},
		{63, 2, 64, 2},
		{64, 64, 64, 1},
		{0, 512, 64, 8},
		{10, 0, 64, 0},
		{100, 1, 512, 1},
		{511, 2, 512, 2},
	}
	for _, c := range cases {
		if got := BlocksTouched(c.addr, c.n, c.block); got != c.want {
			t.Errorf("BlocksTouched(%d,%d,%d) = %d, want %d", c.addr, c.n, c.block, got, c.want)
		}
	}
}

func TestReadOverFetch(t *testing.T) {
	// Aligned run: no over-fetch.
	if got := ReadOverFetch(0, 512, 512); got != 0 {
		t.Errorf("aligned overfetch = %d", got)
	}
	// 300B run inside one 512B block: fetch 512, overfetch 212.
	if got := ReadOverFetch(0, 300, 512); got != 212 {
		t.Errorf("overfetch = %d, want 212", got)
	}
	// Straddling: [500, 600) with 512B blocks touches 2 blocks = 1024.
	if got := ReadOverFetch(500, 100, 512); got != 924 {
		t.Errorf("straddle overfetch = %d, want 924", got)
	}
	// Finer blocks reduce over-fetch for the same run.
	if f64, f512 := ReadOverFetch(500, 100, 64), ReadOverFetch(500, 100, 512); f64 >= f512 {
		t.Errorf("64B overfetch %d >= 512B overfetch %d", f64, f512)
	}
}

func TestOverFetchProperty(t *testing.T) {
	f := func(addr uint32, n uint16, blkExp uint8) bool {
		block := uint64(64) << (blkExp % 5) // 64..1024
		a, ln := uint64(addr), uint64(n)
		of := ReadOverFetch(a, ln, block)
		if ln == 0 {
			return of == 0
		}
		// Over-fetch is bounded by 2*(block-1) and the fetched span is
		// exactly blocks*block.
		return of < 2*block && BlocksTouched(a, ln, block)*block == ln+of
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteRMW(t *testing.T) {
	// Fully covered block: no RMW.
	if got := WriteRMWBytes(512, 512, 512); got != 0 {
		t.Errorf("aligned write RMW = %d", got)
	}
	// Partial write needs the uncovered remainder read back.
	if got := WriteRMWBytes(0, 100, 512); got != 412 {
		t.Errorf("partial write RMW = %d, want 412", got)
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(0, 512, 64) || !Aligned(128, 256, 64) {
		t.Error("aligned runs reported misaligned")
	}
	if Aligned(1, 512, 64) || Aligned(0, 100, 64) {
		t.Error("misaligned runs reported aligned")
	}
}

func TestPatternSameShape(t *testing.T) {
	p := Pattern{RunBytes: 224, RunsPerTile: 64, TileCount: 4}
	if !p.SameShape(p) {
		t.Error("pattern not equal to itself")
	}
	q := p
	q.RunBytes = 112
	if p.SameShape(q) {
		t.Error("different run bytes reported same")
	}
}

func TestCommonBlockExactDivisor(t *testing.T) {
	// Producer writes 1024B runs, consumer reads 768B runs: gcd 256.
	p := Pattern{RunBytes: 1024}
	q := Pattern{RunBytes: 768}
	if got := CommonBlock(p, q, 64, 4096); got != 256 {
		t.Errorf("CommonBlock = %d, want 256", got)
	}
}

func TestCommonBlockRespectsMax(t *testing.T) {
	p := Pattern{RunBytes: 8192}
	q := Pattern{RunBytes: 8192}
	got := CommonBlock(p, q, 64, 4096)
	if got > 4096 {
		t.Errorf("CommonBlock = %d exceeds max", got)
	}
	if 8192%got != 0 {
		t.Errorf("CommonBlock = %d does not divide runs", got)
	}
	if got != 4096 {
		t.Errorf("CommonBlock = %d, want 4096", got)
	}
}

func TestCommonBlockRespectsMin(t *testing.T) {
	// Coprime run lengths: gcd 1, clamped to minBlock.
	p := Pattern{RunBytes: 7}
	q := Pattern{RunBytes: 13}
	if got := CommonBlock(p, q, 64, 4096); got != 64 {
		t.Errorf("CommonBlock = %d, want min 64", got)
	}
}

func TestCommonBlockDividesBothWhenPossible(t *testing.T) {
	f := func(a, b uint16) bool {
		pa := int(a%4096) + 64
		pb := int(b%4096) + 64
		got := CommonBlock(Pattern{RunBytes: pa}, Pattern{RunBytes: pb}, 64, 4096)
		if got < 64 || got > 4096 {
			return false
		}
		g := gcd(pa, pb)
		if g >= 64 {
			// When a usable common divisor exists, the result must
			// divide both runs.
			d := largestDivisorAtMost(g, 4096)
			if d >= 64 {
				return pa%got == 0 && pb%got == 0
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargestDivisorAtMost(t *testing.T) {
	cases := []struct{ n, limit, want int }{
		{100, 100, 100},
		{100, 99, 50},
		{100, 49, 25},
		{7, 6, 1},
		{64, 64, 64},
		{4096, 100, 64},
	}
	for _, c := range cases {
		if got := largestDivisorAtMost(c.n, c.limit); got != c.want {
			t.Errorf("largestDivisorAtMost(%d,%d) = %d, want %d", c.n, c.limit, got, c.want)
		}
	}
}
