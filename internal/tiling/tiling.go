// Package tiling provides the protection-block geometry analysis that
// SeDA's software half relies on: over-fetch accounting when access
// runs are misaligned with protection-block boundaries, read-modify-
// write costs for partial block writes, and the intra-/inter-layer
// tiling-pattern comparison of Fig. 3(b).
//
// The key observation from the paper: coarse protection blocks (512 B)
// cut metadata traffic but cost extra data traffic whenever a tile's
// contiguous runs don't align with block boundaries, because
// en/decryption and MAC verification operate on whole blocks. Fine
// blocks (64 B) align with everything but multiply metadata. SeDA
// sidesteps the dilemma by choosing per-layer block sizes that divide
// the tile runs exactly.
package tiling

// RoundDown returns addr rounded down to a multiple of block.
func RoundDown(addr, block uint64) uint64 { return addr - addr%block }

// RoundUp returns addr rounded up to a multiple of block.
func RoundUp(addr, block uint64) uint64 {
	if r := addr % block; r != 0 {
		return addr + block - r
	}
	return addr
}

// BlocksTouched returns how many protection blocks of size block the
// byte run [addr, addr+n) overlaps. A zero-length run touches none.
func BlocksTouched(addr, n, block uint64) uint64 {
	if n == 0 {
		return 0
	}
	return (RoundUp(addr+n, block) - RoundDown(addr, block)) / block
}

// ReadOverFetch returns the extra bytes that must be fetched (and
// decrypted and verified) beyond the run itself when reads happen at
// whole-protection-block granularity.
func ReadOverFetch(addr, n, block uint64) uint64 {
	if n == 0 {
		return 0
	}
	return BlocksTouched(addr, n, block)*block - n
}

// WriteRMWBytes returns the bytes that must be *read* to complete a
// write of [addr, addr+n): partially covered head/tail blocks need
// their uncovered bytes fetched so the block MAC can be recomputed
// (read-modify-write). Fully covered blocks cost nothing extra.
func WriteRMWBytes(addr, n, block uint64) uint64 {
	return ReadOverFetch(addr, n, block) // uncovered bytes of head+tail
}

// Aligned reports whether the run [addr, addr+n) starts and ends on
// block boundaries, i.e. incurs no over-fetch and no RMW.
func Aligned(addr, n, block uint64) bool {
	return addr%block == 0 && n%block == 0
}

// Pattern summarizes the tiling pattern a tensor is accessed with: the
// contiguous run length and how runs advance. Producer (ofmap of layer
// i) and consumer (ifmap of layer i+1) patterns generally differ —
// different tile heights, different channel grouping — which is the
// inter-layer mismatch the paper's Fig. 3(b) illustrates.
type Pattern struct {
	RunBytes    int // contiguous bytes per access run
	RunsPerTile int
	TileCount   int
}

// SameShape reports whether two patterns have identical run geometry.
func (p Pattern) SameShape(q Pattern) bool {
	return p.RunBytes == q.RunBytes && p.RunsPerTile == q.RunsPerTile &&
		p.TileCount == q.TileCount
}

// CommonBlock returns the largest block size that divides both
// patterns' run lengths and does not exceed maxBlock. This is the
// inter-layer-aware block choice: a protection block that aligns with
// *both* the producer's writes and the consumer's reads never incurs
// over-fetch or RMW on either side. The result is at least minBlock
// (the hardware's smallest protection unit); if the true GCD is
// smaller than minBlock, minBlock is returned and callers must accept
// residual misalignment.
func CommonBlock(p, q Pattern, minBlock, maxBlock int) int {
	g := gcd(p.RunBytes, q.RunBytes)
	if g > maxBlock {
		// Use the largest divisor of g that fits under maxBlock.
		g = largestDivisorAtMost(g, maxBlock)
	}
	if g < minBlock {
		return minBlock
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a <= 0 {
		return 1
	}
	return a
}

// largestDivisorAtMost returns the largest divisor of n that is <=
// limit (n, limit >= 1).
func largestDivisorAtMost(n, limit int) int {
	if n <= limit {
		return n
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d != 0 {
			continue
		}
		if d <= limit && d > best {
			best = d
		}
		if q := n / d; q <= limit && q > best {
			best = q
		}
	}
	return best
}
