package sha256x

import "encoding/binary"

// HMAC computes HMAC-SHA256(key, msg) per RFC 2104.
func HMAC(key, msg []byte) [Size]byte {
	var k0 [BlockSize]byte
	if len(key) > BlockSize {
		sum := Sum256(key)
		copy(k0[:], sum[:])
	} else {
		copy(k0[:], key)
	}
	var ipad, opad [BlockSize]byte
	for i := 0; i < BlockSize; i++ {
		ipad[i] = k0[i] ^ 0x36
		opad[i] = k0[i] ^ 0x5c
	}
	inner := New()
	inner.Write(ipad[:]) //nolint:errcheck // cannot fail
	inner.Write(msg)     //nolint:errcheck // cannot fail
	innerSum := inner.Sum(nil)
	outer := New()
	outer.Write(opad[:])  //nolint:errcheck // cannot fail
	outer.Write(innerSum) //nolint:errcheck // cannot fail
	var out [Size]byte
	copy(out[:], outer.Sum(nil))
	return out
}

// MACSize is the width of the truncated per-block message
// authentication codes carried as security metadata (8 bytes, matching
// the paper's 64-bit MACs).
const MACSize = 8

// MAC is a truncated 64-bit block MAC, represented as a uint64 so the
// XOR-MAC aggregation in package xormac is a single machine op.
type MAC uint64

// TruncMAC computes the 64-bit truncated HMAC-SHA256 of msg under key.
func TruncMAC(key, msg []byte) MAC {
	full := HMAC(key, msg)
	return MAC(binary.BigEndian.Uint64(full[:8]))
}

// Bytes returns the big-endian byte representation of the MAC, the
// form in which it is stored in off-chip metadata space.
func (m MAC) Bytes() [MACSize]byte {
	var b [MACSize]byte
	binary.BigEndian.PutUint64(b[:], uint64(m))
	return b
}
