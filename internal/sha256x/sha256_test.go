package sha256x

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func wantHex(t *testing.T, got []byte, want string) {
	t.Helper()
	w, err := hex.DecodeString(want)
	if err != nil {
		t.Fatalf("bad hex %q: %v", want, err)
	}
	if !bytes.Equal(got, w) {
		t.Errorf("digest = %x, want %s", got, want)
	}
}

// NIST FIPS 180-4 / well-known vectors.
func TestSum256Vectors(t *testing.T) {
	cases := []struct {
		msg  string
		want string
	}{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
		{strings.Repeat("a", 1000000),
			"cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
	}
	for _, tc := range cases {
		sum := Sum256([]byte(tc.msg))
		wantHex(t, sum[:], tc.want)
	}
}

func TestStreamingEqualsOneShot(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		cut := int(split) % (len(data) + 1)
		d := New()
		d.Write(data[:cut]) //nolint:errcheck
		d.Write(data[cut:]) //nolint:errcheck
		oneShot := Sum256(data)
		return bytes.Equal(d.Sum(nil), oneShot[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteAtATimeStreaming(t *testing.T) {
	msg := []byte("the quick brown fox jumps over the lazy dog, repeatedly, across block boundaries")
	d := New()
	for _, b := range msg {
		d.Write([]byte{b}) //nolint:errcheck
	}
	oneShot := Sum256(msg)
	if !bytes.Equal(d.Sum(nil), oneShot[:]) {
		t.Error("byte-at-a-time digest differs from one-shot")
	}
}

func TestSumDoesNotMutateState(t *testing.T) {
	d := New()
	d.Write([]byte("hello")) //nolint:errcheck
	s1 := d.Sum(nil)
	s2 := d.Sum(nil)
	if !bytes.Equal(s1, s2) {
		t.Error("Sum mutated state")
	}
	d.Write([]byte(" world")) //nolint:errcheck
	full := Sum256([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), full[:]) {
		t.Error("writing after Sum produced wrong digest")
	}
}

func TestSumAppends(t *testing.T) {
	d := New()
	d.Write([]byte("abc")) //nolint:errcheck
	prefix := []byte{1, 2, 3}
	out := d.Sum(prefix)
	if len(out) != 3+Size {
		t.Fatalf("len = %d, want %d", len(out), 3+Size)
	}
	if !bytes.Equal(out[:3], prefix) {
		t.Error("prefix overwritten")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	d := New()
	d.Write([]byte("garbage")) //nolint:errcheck
	d.Reset()
	d.Write([]byte("abc")) //nolint:errcheck
	want := Sum256([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestPaddingBoundaries(t *testing.T) {
	// Message lengths around the 55/56/63/64 padding edges.
	for _, n := range []int{54, 55, 56, 57, 62, 63, 64, 65, 119, 120, 127, 128} {
		msg := bytes.Repeat([]byte{0x5a}, n)
		d := New()
		d.Write(msg) //nolint:errcheck
		got := d.Sum(nil)
		want := Sum256(msg)
		if !bytes.Equal(got, want[:]) {
			t.Errorf("len %d: streaming and one-shot disagree", n)
		}
		// Also check a different length yields a different digest
		// (regression guard against broken length encoding).
		other := Sum256(append(msg, 0x5a))
		if bytes.Equal(want[:], other[:]) {
			t.Errorf("len %d and %d collide", n, n+1)
		}
	}
}

// RFC 4231 HMAC-SHA256 test vectors.
func TestHMACVectors(t *testing.T) {
	cases := []struct {
		key, msg []byte
		want     string
	}{
		{
			bytes.Repeat([]byte{0x0b}, 20),
			[]byte("Hi There"),
			"b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
		},
		{
			[]byte("Jefe"),
			[]byte("what do ya want for nothing?"),
			"5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
		},
		{
			bytes.Repeat([]byte{0xaa}, 131),
			[]byte("Test Using Larger Than Block-Size Key - Hash Key First"),
			"60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
		},
	}
	for i, tc := range cases {
		got := HMAC(tc.key, tc.msg)
		wantHex(t, got[:], tc.want)
		_ = i
	}
}

func TestTruncMACIsHMACPrefix(t *testing.T) {
	key := []byte("integ-engine-key")
	msg := []byte("data block ‖ PA ‖ VN ‖ layer ‖ fmap ‖ blk")
	full := HMAC(key, msg)
	trunc := TruncMAC(key, msg)
	b := trunc.Bytes()
	if !bytes.Equal(b[:], full[:8]) {
		t.Errorf("TruncMAC = %x, want prefix %x", b, full[:8])
	}
}

func TestTruncMACKeySensitivity(t *testing.T) {
	msg := []byte("block contents")
	if TruncMAC([]byte("key-a"), msg) == TruncMAC([]byte("key-b"), msg) {
		t.Error("MACs under different keys collide")
	}
	if TruncMAC([]byte("key-a"), msg) != TruncMAC([]byte("key-a"), msg) {
		t.Error("MAC not deterministic")
	}
}

func TestTruncMACMessageSensitivity(t *testing.T) {
	key := []byte("k")
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return TruncMAC(key, a) == TruncMAC(key, b)
		}
		// Distinct messages should (with overwhelming probability)
		// have distinct MACs; a collision in random testing indicates
		// a broken hash.
		return TruncMAC(key, a) != TruncMAC(key, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
