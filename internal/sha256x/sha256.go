// Package sha256x implements SHA-256 (FIPS 180-4), HMAC-SHA256, and
// the truncated 64-bit message authentication codes used by secure
// DNN accelerators for per-block integrity metadata.
//
// Like package aesx, this is a from-scratch implementation standing in
// for the accelerator's Integ Engine hash unit so that the repository
// has no dependency beyond the standard library's plumbing packages.
package sha256x

import "encoding/binary"

// Size is the SHA-256 digest size in bytes.
const Size = 32

// BlockSize is the SHA-256 block size in bytes.
const BlockSize = 64

var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// Digest is a streaming SHA-256 hash state. The zero value is not
// ready for use; call New.
type Digest struct {
	h     [8]uint32
	block [BlockSize]byte
	n     int    // bytes buffered in block
	len   uint64 // total message length in bytes
}

// New returns a fresh SHA-256 hash state.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset returns the state to the initial hash value.
func (d *Digest) Reset() {
	d.h = [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	d.n = 0
	d.len = 0
}

// Write absorbs p into the hash state. It never returns an error.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.block[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.compress(d.block[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		d.compress(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.block[:], p)
	}
	return n, nil
}

// Sum returns the digest of all data written so far, appended to in.
// The state is unmodified, so more data may be written afterwards.
func (d *Digest) Sum(in []byte) []byte {
	cp := *d
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - (int(cp.len)+9)%BlockSize + 1
	if padLen == BlockSize+1 {
		padLen = 1
	}
	bits := cp.len * 8
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], bits)
	cp.Write(pad[:padLen]) //nolint:errcheck // cannot fail
	cp.Write(lenb[:])      //nolint:errcheck // cannot fail
	var out [Size]byte
	for i, v := range cp.h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return append(in, out[:]...)
}

func (d *Digest) compress(p []byte) {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	for i := 16; i < 64; i++ {
		s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ (w[i-15] >> 3)
		s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ (w[i-2] >> 10)
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}
	a, b, c, dd, e, f, g, h := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4], d.h[5], d.h[6], d.h[7]
	for i := 0; i < 64; i++ {
		s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := (e & f) ^ (^e & g)
		t1 := h + s1 + ch + k[i] + w[i]
		s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := s0 + maj
		h, g, f, e, dd, c, b, a = g, f, e, dd+t1, c, b, a, t1+t2
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
	d.h[5] += f
	d.h[6] += g
	d.h[7] += h
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// Sum256 returns the SHA-256 digest of data.
func Sum256(data []byte) [Size]byte {
	d := New()
	d.Write(data) //nolint:errcheck // cannot fail
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}
