package failpoint

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	defer Reset()
	if err := Inject(context.Background(), "nope"); err != nil {
		t.Fatalf("disarmed inject: %v", err)
	}
	if Active("nope") {
		t.Fatal("unarmed point reports active")
	}
	// Arming one point must not fire others.
	if err := Enable("a", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(context.Background(), "b"); err != nil {
		t.Fatalf("other point fired: %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	err := Inject(nil, "p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := Enable("p", "error(disk is sad)"); err != nil {
		t.Fatal(err)
	}
	err = Inject(nil, "p")
	if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "disk is sad") {
		t.Fatalf("err = %v, want wrapped message", err)
	}
	// Re-enabling replaced the point, so the counter restarted.
	if Triggers("p") != 1 {
		t.Fatalf("triggers = %d, want 1 (reset on re-enable)", Triggers("p"))
	}
}

func TestSleepModeHonorsContext(t *testing.T) {
	defer Reset()
	if err := Enable("p", "sleep(30s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	start := time.Now()
	err := Inject(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sleep did not return promptly")
	}
	// A short sleep completes and injects nothing.
	if err := Enable("p", "sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("completed sleep: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	if err := Enable("p", "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("recover = %v, want injected panic", r)
		}
	}()
	Inject(nil, "p") //nolint:errcheck
	t.Fatal("unreachable")
}

func TestFuncMode(t *testing.T) {
	defer Reset()
	sentinel := errors.New("from func")
	var got context.Context
	EnableFunc("p", func(ctx context.Context) error {
		got = ctx
		return sentinel
	})
	ctx := context.Background()
	if err := Inject(ctx, "p"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got != ctx {
		t.Fatal("callback did not receive the site context")
	}
}

func TestCorrupt(t *testing.T) {
	defer Reset()
	blob := []byte("all good bytes here")
	if out := Corrupt("p", blob); !bytes.Equal(out, blob) {
		t.Fatal("disarmed Corrupt modified the blob")
	}
	if err := Enable("p", "corrupt"); err != nil {
		t.Fatal(err)
	}
	out := Corrupt("p", blob)
	if bytes.Equal(out, blob) {
		t.Fatal("armed Corrupt returned intact bytes")
	}
	if !bytes.Equal(blob, []byte("all good bytes here")) {
		t.Fatal("Corrupt mutated the caller's blob in place")
	}
	if len(Corrupt("p", nil)) == 0 {
		t.Fatal("corrupting an empty blob should produce junk, not nothing")
	}
	// Non-corrupt modes leave payloads alone.
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	if out := Corrupt("p", blob); !bytes.Equal(out, blob) {
		t.Fatal("error-mode Corrupt modified the blob")
	}
}

func TestDisableAndReset(t *testing.T) {
	defer Reset()
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	Disable("p")
	if Active("p") || Inject(nil, "p") != nil {
		t.Fatal("disabled point still fires")
	}
	Disable("p") // double-disable is a no-op
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("q", "off"); err != nil { // off == disable
		t.Fatal(err)
	}
	Reset()
	if Active("p") || armed.Load() != 0 {
		t.Fatalf("reset left state: active=%v armed=%d", Active("p"), armed.Load())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"", "explode", "sleep", "sleep(xyz)", "error(unclosed", "sleep(1s"} {
		if err := Enable("p", spec); err == nil {
			t.Errorf("spec %q: expected parse error", spec)
			Disable("p")
		}
	}
}

func TestLoadEnv(t *testing.T) {
	defer Reset()
	t.Setenv(EnvVar, " a=error , b=sleep(1ms),, c=error(x) ")
	if err := LoadEnv(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !Active(name) {
			t.Fatalf("%s not armed from env", name)
		}
	}
	Reset()
	t.Setenv(EnvVar, "")
	if err := LoadEnv(); err != nil || armed.Load() != 0 {
		t.Fatalf("empty env: err=%v armed=%d", err, armed.Load())
	}
	t.Setenv(EnvVar, "garbage-without-equals")
	if err := LoadEnv(); err == nil {
		t.Fatal("malformed env accepted")
	}
}
