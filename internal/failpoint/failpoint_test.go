package failpoint

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	defer Reset()
	if err := Inject(context.Background(), "nope"); err != nil {
		t.Fatalf("disarmed inject: %v", err)
	}
	if Active("nope") {
		t.Fatal("unarmed point reports active")
	}
	// Arming one point must not fire others.
	if err := Enable("a", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(context.Background(), "b"); err != nil {
		t.Fatalf("other point fired: %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	err := Inject(nil, "p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := Enable("p", "error(disk is sad)"); err != nil {
		t.Fatal(err)
	}
	err = Inject(nil, "p")
	if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "disk is sad") {
		t.Fatalf("err = %v, want wrapped message", err)
	}
	// Re-enabling replaced the point, so the counter restarted.
	if Triggers("p") != 1 {
		t.Fatalf("triggers = %d, want 1 (reset on re-enable)", Triggers("p"))
	}
}

func TestSleepModeHonorsContext(t *testing.T) {
	defer Reset()
	if err := Enable("p", "sleep(30s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	start := time.Now()
	err := Inject(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sleep did not return promptly")
	}
	// A short sleep completes and injects nothing.
	if err := Enable("p", "sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("completed sleep: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	if err := Enable("p", "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("recover = %v, want injected panic", r)
		}
	}()
	Inject(nil, "p") //nolint:errcheck
	t.Fatal("unreachable")
}

func TestFuncMode(t *testing.T) {
	defer Reset()
	sentinel := errors.New("from func")
	var got context.Context
	EnableFunc("p", func(ctx context.Context) error {
		got = ctx
		return sentinel
	})
	ctx := context.Background()
	if err := Inject(ctx, "p"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got != ctx {
		t.Fatal("callback did not receive the site context")
	}
}

func TestCorrupt(t *testing.T) {
	defer Reset()
	blob := []byte("all good bytes here")
	if out := Corrupt("p", blob); !bytes.Equal(out, blob) {
		t.Fatal("disarmed Corrupt modified the blob")
	}
	if err := Enable("p", "corrupt"); err != nil {
		t.Fatal(err)
	}
	out := Corrupt("p", blob)
	if bytes.Equal(out, blob) {
		t.Fatal("armed Corrupt returned intact bytes")
	}
	if !bytes.Equal(blob, []byte("all good bytes here")) {
		t.Fatal("Corrupt mutated the caller's blob in place")
	}
	if len(Corrupt("p", nil)) == 0 {
		t.Fatal("corrupting an empty blob should produce junk, not nothing")
	}
	// Non-corrupt modes leave payloads alone.
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	if out := Corrupt("p", blob); !bytes.Equal(out, blob) {
		t.Fatal("error-mode Corrupt modified the blob")
	}
}

func TestDisableAndReset(t *testing.T) {
	defer Reset()
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	Disable("p")
	if Active("p") || Inject(nil, "p") != nil {
		t.Fatal("disabled point still fires")
	}
	Disable("p") // double-disable is a no-op
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("q", "off"); err != nil { // off == disable
		t.Fatal(err)
	}
	Reset()
	if Active("p") || armed.Load() != 0 {
		t.Fatalf("reset left state: active=%v armed=%d", Active("p"), armed.Load())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"", "explode", "sleep", "sleep(xyz)", "error(unclosed", "sleep(1s"} {
		if err := Enable("p", spec); err == nil {
			t.Errorf("spec %q: expected parse error", spec)
			Disable("p")
		}
	}
}

func TestLoadEnv(t *testing.T) {
	defer Reset()
	t.Setenv(EnvVar, " a=error , b=sleep(1ms),, c=error(x) ")
	if err := LoadEnv(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !Active(name) {
			t.Fatalf("%s not armed from env", name)
		}
	}
	Reset()
	t.Setenv(EnvVar, "")
	if err := LoadEnv(); err != nil || armed.Load() != 0 {
		t.Fatalf("empty env: err=%v armed=%d", err, armed.Load())
	}
	t.Setenv(EnvVar, "garbage-without-equals")
	if err := LoadEnv(); err == nil {
		t.Fatal("malformed env accepted")
	}
}

func TestProbabilityParse(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"0.3*error", "1*error(boom)", "0.5*sleep(1ms)", "0.01*panic", "0.9*corrupt", "0.2*off"} {
		if err := Enable("p", spec); err != nil {
			t.Errorf("spec %q: unexpected parse error: %v", spec, err)
		}
		Disable("p")
	}
	for _, spec := range []string{"0*error", "-0.5*error", "1.1*error", "x*error", "*error", "0.5*explode"} {
		if err := Enable("p", spec); err == nil {
			t.Errorf("spec %q: expected parse error", spec)
			Disable("p")
		}
	}
	// '*' inside a message argument is not a modifier.
	if err := Enable("p", "error(a*b)"); err != nil {
		t.Fatalf("star in message rejected: %v", err)
	}
	if err := Inject(nil, "p"); err == nil || !strings.Contains(err.Error(), "a*b") {
		t.Fatalf("message with star not preserved: %v", err)
	}
}

func TestProbabilitySampling(t *testing.T) {
	defer Reset()
	if err := Enable("p", "0.3*error(flaky)"); err != nil {
		t.Fatal(err)
	}
	SeedSampling(1)
	const n = 10_000
	fired := 0
	for range n {
		if err := Inject(nil, "p"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("wrong error: %v", err)
			}
			fired++
		}
	}
	// Binomial(10k, 0.3): ±5 percentage points is > 10 sigma.
	if fired < n*25/100 || fired > n*35/100 {
		t.Fatalf("p=0.3 fired %d/%d times", fired, n)
	}
	if got := Triggers("p"); got != uint64(fired) {
		t.Fatalf("triggers %d, want %d (sampled-out passes must not count)", got, fired)
	}

	// Same seed, same site: the exact fault sequence replays.
	sequence := func() []bool {
		SeedSampling(42)
		seq := make([]bool, 200)
		for i := range seq {
			seq[i] = Inject(nil, "p") != nil
		}
		return seq
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded sequences diverge at pass %d", i)
		}
	}

	// p=1 is exactly the unmodified behavior: every pass fires.
	if err := Enable("p", "1*error"); err != nil {
		t.Fatal(err)
	}
	for i := range 50 {
		if err := Inject(nil, "p"); err == nil {
			t.Fatalf("p=1 pass %d did not fire", i)
		}
	}
}

func TestProbabilityCorrupt(t *testing.T) {
	defer Reset()
	if err := Enable("c", "0.5*corrupt"); err != nil {
		t.Fatal(err)
	}
	SeedSampling(7)
	blob := []byte("payload-payload-payload")
	changed := 0
	const n = 2000
	for range n {
		if !bytes.Equal(Corrupt("c", blob), blob) {
			changed++
		}
	}
	if changed < n*42/100 || changed > n*58/100 {
		t.Fatalf("p=0.5 corrupt changed %d/%d payloads", changed, n)
	}
	if got := Triggers("c"); got != uint64(changed) {
		t.Fatalf("triggers %d, want %d", got, changed)
	}
}
