// Package failpoint provides named fault-injection sites for chaos
// testing the serving stack. A failpoint is a named hook compiled into
// production code paths (disk reads and writes in rescache, the
// compute entry of the result cache, the sweep handler of seda-serve);
// it does nothing until armed, and arming is either programmatic
// (tests call Enable/EnableFunc) or environmental (operators set
// SEDA_FAILPOINTS and the server calls LoadEnv at boot).
//
// Supported actions, written as specs:
//
//	off            disarm (same as Disable)
//	error          return ErrInjected from the site
//	error(msg)     return ErrInjected wrapped with msg
//	sleep(dur)     block for dur, honoring the site's context — the
//	               "slow compute" fault; cancellation interrupts the
//	               sleep and returns ctx.Err()
//	panic          panic at the site — the "compute panic" fault
//	panic(msg)     panic with msg
//	corrupt        flip a byte in the site's payload (Corrupt sites)
//
// Any spec may carry a probability modifier, p*spec with p in (0, 1]:
//
//	0.3*error(boom)   fire on ~30% of passes, no-op otherwise
//
// so chaos suites can model partial and flaky failures, not just
// deterministic ones. Sampling draws from a package-level source that
// tests can pin with SeedSampling for reproducible runs; a sampled-out
// pass does not count as a trigger.
//
// Arbitrary behavior — notably cancel-at-point, where reaching the
// site cancels the request under test — is armed with EnableFunc: the
// callback receives the site's context and may do anything, including
// calling a cancel function captured by the test.
//
// The disarmed fast path is one atomic load: sites cost nothing in
// production until a fault is armed. All functions are safe for
// concurrent use.
package failpoint

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by sites armed in error mode.
// Injected failures wrap it, so tests and callers can distinguish a
// chaos fault from an organic one with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

// EnvVar is the environment variable LoadEnv reads:
// comma-separated name=spec pairs, e.g.
//
//	SEDA_FAILPOINTS='rescache.compute=sleep(30s),rescache.diskPut=error'
const EnvVar = "SEDA_FAILPOINTS"

type action uint8

const (
	actError action = iota
	actSleep
	actPanic
	actCorrupt
	actFunc
)

type point struct {
	act      action
	msg      string
	dur      time.Duration
	prob     float64 // (0, 1]; 1 = always fire
	fn       func(context.Context) error
	triggers atomic.Uint64
}

var (
	// armed counts enabled points; Inject/Corrupt return immediately
	// while it is zero, so disarmed sites stay off the profile.
	armed  atomic.Int32
	mu     sync.RWMutex
	points = make(map[string]*point)

	// rng drives probability-modified specs. Guarded by its own mutex so
	// sampling never contends with point lookups.
	rngMu sync.Mutex
	rng   = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
)

// SeedSampling pins the source behind probability-modified specs so a
// chaos run's fault sequence is reproducible. Tests call it with a
// fixed seed; production leaves the default (randomly seeded) source.
func SeedSampling(seed uint64) {
	rngMu.Lock()
	rng = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	rngMu.Unlock()
}

// sample reports whether a pass through a p-modified site fires.
func sample(p float64) bool {
	rngMu.Lock()
	ok := rng.Float64() < p
	rngMu.Unlock()
	return ok
}

// Enable arms the named failpoint with a spec (see the package
// comment for the grammar). Re-enabling replaces the previous action.
func Enable(name, spec string) error {
	p, err := parse(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", name, err)
	}
	if p == nil { // "off"
		Disable(name)
		return nil
	}
	install(name, p)
	return nil
}

// EnableFunc arms the named failpoint with an arbitrary callback. The
// callback runs at the site with the site's context; a non-nil return
// is injected as the site's failure.
func EnableFunc(name string, fn func(context.Context) error) {
	install(name, &point{act: actFunc, prob: 1, fn: fn})
}

func install(name string, p *point) {
	mu.Lock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = p
	mu.Unlock()
}

// Disable disarms the named failpoint. Disarming an unarmed point is
// a no-op.
func Disable(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint. Chaos tests defer it so faults never
// leak across test boundaries.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	clear(points)
	mu.Unlock()
}

// Active reports whether the named failpoint is armed.
func Active(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.RLock()
	_, ok := points[name]
	mu.RUnlock()
	return ok
}

// Triggers returns how many times the named site has fired since it
// was (last) enabled.
func Triggers(name string) uint64 {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.triggers.Load()
}

// LoadEnv arms every failpoint named in SEDA_FAILPOINTS. An empty or
// unset variable arms nothing.
func LoadEnv() error {
	raw := strings.TrimSpace(os.Getenv(EnvVar))
	if raw == "" {
		return nil
	}
	for _, pair := range strings.Split(raw, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("failpoint: malformed %s entry %q (want name=spec)", EnvVar, pair)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Inject is the hook production code places at a fault site. Disarmed
// (the common case) it returns nil after one atomic load. Armed, it
// performs the configured action: returns an injected error, sleeps
// (interruptibly — a cancelled ctx cuts the sleep short and returns
// ctx.Err()), panics, or runs an EnableFunc callback. A nil ctx is
// treated as context.Background().
func Inject(ctx context.Context, name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	if p.prob < 1 && !sample(p.prob) {
		return nil
	}
	p.triggers.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	switch p.act {
	case actError:
		if p.msg != "" {
			return fmt.Errorf("%w: %s", ErrInjected, p.msg)
		}
		return ErrInjected
	case actSleep:
		t := time.NewTimer(p.dur)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case actPanic:
		msg := p.msg
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("failpoint %s: %s", name, msg))
	case actFunc:
		return p.fn(ctx)
	}
	return nil
}

// Corrupt is the hook for sites that can serve damaged payloads: when
// the named failpoint is armed in corrupt mode it returns a copy of
// blob with one byte flipped (or a one-byte blob if blob is empty),
// simulating a torn or bit-rotted read. Any other mode — and the
// disarmed state — returns blob untouched.
func Corrupt(name string, blob []byte) []byte {
	if armed.Load() == 0 {
		return blob
	}
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil || p.act != actCorrupt {
		return blob
	}
	if p.prob < 1 && !sample(p.prob) {
		return blob
	}
	p.triggers.Add(1)
	if len(blob) == 0 {
		return []byte{0xff}
	}
	out := make([]byte, len(blob))
	copy(out, blob)
	out[len(out)/2] ^= 0xff
	return out
}

// parse turns a spec string into a point; "off" parses to nil. A
// leading "<p>*" (with p in (0, 1]) is the probability modifier; it
// is recognized only before the verb, so message arguments may contain
// '*' freely.
func parse(spec string) (*point, error) {
	full := spec
	prob := 1.0
	if star := strings.IndexByte(spec, '*'); star >= 0 {
		if paren := strings.IndexByte(spec, '('); paren < 0 || star < paren {
			raw := spec[:star]
			p, err := strconv.ParseFloat(raw, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("probability %q in spec %q must be a number in (0, 1]", raw, full)
			}
			prob = p
			spec = spec[star+1:]
		}
	}
	verb, arg := spec, ""
	if i := strings.IndexByte(spec, '('); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("malformed spec %q", full)
		}
		verb, arg = spec[:i], spec[i+1:len(spec)-1]
	}
	switch verb {
	case "off":
		return nil, nil
	case "error":
		return &point{act: actError, msg: arg, prob: prob}, nil
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("sleep spec %q: %w", full, err)
		}
		return &point{act: actSleep, dur: d, prob: prob}, nil
	case "panic":
		return &point{act: actPanic, msg: arg, prob: prob}, nil
	case "corrupt":
		return &point{act: actCorrupt, prob: prob}, nil
	}
	return nil, fmt.Errorf("unknown spec %q (want off, error[(msg)], sleep(dur), panic[(msg)] or corrupt, optionally p*spec)", full)
}
