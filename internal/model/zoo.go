package model

import "strings"

// This file defines the 13 benchmark workloads of the paper's
// evaluation (§IV-A): Lenet (let), Alexnet (alex), Mobilenet (mob),
// ResNet18 (rest), GoogleNet (goo), DLRM (dlrm), AlphaGoZero (algo),
// DeepSpeech2 (ds2), FasterRCNN (fast), NCF_recommendation (ncf),
// Sentimental_seqCNN (sent), Transformer_fwd (trf), Yolo_tiny (yolo).
// Layer shapes follow the SCALE-Sim topology conventions: convolution
// ifmap dims are pre-padded, pooling is folded into the next layer's
// input dims, and recurrent/attention computations are unrolled into
// their constituent GEMMs.

// LeNet is the classic 5-layer LeNet-5 on 32x32 input.
func LeNet() *Network {
	return &Network{
		Name: "let", Full: "LeNet-5",
		Layers: []Layer{
			CV("conv1", 32, 32, 5, 5, 1, 6, 1),
			CV("conv2", 14, 14, 5, 5, 6, 16, 1),
			CV("conv3", 5, 5, 5, 5, 16, 120, 1),
			FC("fc1", 1, 120, 84),
			FC("fc2", 1, 84, 10),
		},
	}
}

// AlexNet on 227x227x3 input.
func AlexNet() *Network {
	return &Network{
		Name: "alex", Full: "AlexNet",
		Layers: []Layer{
			CV("conv1", 227, 227, 11, 11, 3, 96, 4),
			CV("conv2", 31, 31, 5, 5, 96, 256, 1),
			CV("conv3", 15, 15, 3, 3, 256, 384, 1),
			CV("conv4", 15, 15, 3, 3, 384, 384, 1),
			CV("conv5", 15, 15, 3, 3, 384, 256, 1),
			FC("fc6", 1, 9216, 4096),
			FC("fc7", 1, 4096, 4096),
			FC("fc8", 1, 4096, 1000),
		},
	}
}

// MobileNet is MobileNet-v1 (1.0, 224): alternating depthwise and
// pointwise convolutions.
func MobileNet() *Network {
	n := &Network{Name: "mob", Full: "MobileNet-v1"}
	n.Layers = append(n.Layers, CV("conv1", 226, 226, 3, 3, 3, 32, 2))
	type dwpw struct{ size, inC, outC, stride int }
	specs := []dwpw{
		{112, 32, 64, 1},
		{112, 64, 128, 2},
		{56, 128, 128, 1},
		{56, 128, 256, 2},
		{28, 256, 256, 1},
		{28, 256, 512, 2},
		{14, 512, 512, 1},
		{14, 512, 512, 1},
		{14, 512, 512, 1},
		{14, 512, 512, 1},
		{14, 512, 512, 1},
		{14, 512, 1024, 2},
		{7, 1024, 1024, 1},
	}
	for i, sp := range specs {
		pad := sp.size + 2
		n.Layers = append(n.Layers,
			DW(fmtName("dw", i+1), pad, pad, 3, 3, sp.inC, sp.stride),
			CV(fmtName("pw", i+1), outDim(pad, 3, sp.stride), outDim(pad, 3, sp.stride), 1, 1, sp.inC, sp.outC, 1),
		)
	}
	n.Layers = append(n.Layers, FC("fc", 1, 1024, 1000))
	return n
}

// ResNet18 on 224x224x3 input.
func ResNet18() *Network {
	n := &Network{Name: "rest", Full: "ResNet-18"}
	n.Layers = append(n.Layers, CV("conv1", 230, 230, 7, 7, 3, 64, 2))
	// Four stages of two basic blocks each; first block of stages 2-4
	// downsamples with stride 2 plus a 1x1 projection shortcut.
	type stage struct{ size, inC, outC int }
	stages := []stage{
		{56, 64, 64},
		{56, 64, 128},
		{28, 128, 256},
		{14, 256, 512},
	}
	for si, st := range stages {
		stride := 2
		if si == 0 {
			stride = 1
		}
		out := st.size
		if stride == 2 {
			out = st.size / 2
		}
		base := fmtName("s", si+2)
		n.Layers = append(n.Layers,
			CV(base+"_b1c1", st.size+2, st.size+2, 3, 3, st.inC, st.outC, stride),
			CV(base+"_b1c2", out+2, out+2, 3, 3, st.outC, st.outC, 1),
		)
		if stride == 2 {
			n.Layers = append(n.Layers,
				CV(base+"_proj", st.size, st.size, 1, 1, st.inC, st.outC, 2))
		}
		n.Layers = append(n.Layers,
			CV(base+"_b2c1", out+2, out+2, 3, 3, st.outC, st.outC, 1),
			CV(base+"_b2c2", out+2, out+2, 3, 3, st.outC, st.outC, 1),
		)
	}
	n.Layers = append(n.Layers, FC("fc", 1, 512, 1000))
	return n
}

// GoogLeNet (Inception-v1) with all nine inception modules expanded
// into their branch convolutions.
func GoogLeNet() *Network {
	n := &Network{Name: "goo", Full: "GoogLeNet"}
	n.Layers = append(n.Layers,
		CV("conv1", 230, 230, 7, 7, 3, 64, 2),
		CV("conv2_red", 56, 56, 1, 1, 64, 64, 1),
		CV("conv2", 58, 58, 3, 3, 64, 192, 1),
	)
	type inception struct {
		name                     string
		size, inC                int
		c1, c3r, c3, c5r, c5, pp int
	}
	mods := []inception{
		{"3a", 28, 192, 64, 96, 128, 16, 32, 32},
		{"3b", 28, 256, 128, 128, 192, 32, 96, 64},
		{"4a", 14, 480, 192, 96, 208, 16, 48, 64},
		{"4b", 14, 512, 160, 112, 224, 24, 64, 64},
		{"4c", 14, 512, 128, 128, 256, 24, 64, 64},
		{"4d", 14, 512, 112, 144, 288, 32, 64, 64},
		{"4e", 14, 528, 256, 160, 320, 32, 128, 128},
		{"5a", 7, 832, 256, 160, 320, 32, 128, 128},
		{"5b", 7, 832, 384, 192, 384, 48, 128, 128},
	}
	for _, m := range mods {
		s := m.size
		n.Layers = append(n.Layers,
			CV("inc"+m.name+"_1x1", s, s, 1, 1, m.inC, m.c1, 1),
			CV("inc"+m.name+"_3x3r", s, s, 1, 1, m.inC, m.c3r, 1),
			CV("inc"+m.name+"_3x3", s+2, s+2, 3, 3, m.c3r, m.c3, 1),
			CV("inc"+m.name+"_5x5r", s, s, 1, 1, m.inC, m.c5r, 1),
			CV("inc"+m.name+"_5x5", s+4, s+4, 5, 5, m.c5r, m.c5, 1),
			CV("inc"+m.name+"_pool", s, s, 1, 1, m.inC, m.pp, 1),
		)
	}
	n.Layers = append(n.Layers, FC("fc", 1, 1024, 1000))
	return n
}

// DLRM is the Facebook deep-learning recommendation model's MLP stack
// at batch 128: bottom MLP over dense features, top MLP over the
// feature-interaction output, plus the embedding-projection GEMM.
func DLRM() *Network {
	return &Network{
		Name: "dlrm", Full: "DLRM",
		Layers: []Layer{
			FC("bot1", 128, 13, 512),
			FC("bot2", 128, 512, 256),
			FC("bot3", 128, 256, 64),
			FC("emb_proj", 128, 64, 512),
			FC("top1", 128, 512, 512),
			FC("top2", 128, 512, 256),
			FC("top3", 128, 256, 128),
			FC("top4", 128, 128, 1),
		},
	}
}

// AlphaGoZero is the dual-headed Go network: a conv stem, nine
// residual blocks at 19x19x256, and the policy/value heads.
func AlphaGoZero() *Network {
	n := &Network{Name: "algo", Full: "AlphaGoZero"}
	n.Layers = append(n.Layers, CV("stem", 21, 21, 3, 3, 17, 256, 1))
	for b := 1; b <= 9; b++ {
		n.Layers = append(n.Layers,
			CV(fmtName("res", b)+"_c1", 21, 21, 3, 3, 256, 256, 1),
			CV(fmtName("res", b)+"_c2", 21, 21, 3, 3, 256, 256, 1),
		)
	}
	n.Layers = append(n.Layers,
		CV("policy_conv", 19, 19, 1, 1, 256, 2, 1),
		FC("policy_fc", 1, 722, 362),
		CV("value_conv", 19, 19, 1, 1, 256, 1, 1),
		FC("value_fc1", 1, 361, 256),
		FC("value_fc2", 1, 256, 1),
	)
	return n
}

// DeepSpeech2: 2-D convolutions over a 500-frame spectrogram followed
// by five bidirectional GRU layers unrolled as gate GEMMs (hidden 800;
// input and recurrent projections fused per direction).
func DeepSpeech2() *Network {
	n := &Network{Name: "ds2", Full: "DeepSpeech2"}
	n.Layers = append(n.Layers,
		CV("conv1", 500, 171, 41, 11, 1, 32, 2),
		CV("conv2", 230, 81, 21, 11, 32, 32, 2),
	)
	// After convs: ~105 time steps, feature dim 32*36=1152.
	steps := 105
	in := 1152
	hidden := 800
	for l := 1; l <= 5; l++ {
		k := in
		if l > 1 {
			k = 2 * hidden // bidirectional output feeds the next layer
		}
		n.Layers = append(n.Layers,
			// Input projection for the 3 GRU gates, both directions.
			FC(fmtName("gru", l)+"_x", steps, k, 2*3*hidden),
			// Recurrent projection (unrolled over steps; modeled as a
			// single steps×hidden×3*hidden GEMM per direction).
			FC(fmtName("gru", l)+"_h", steps, hidden, 2*3*hidden),
		)
	}
	n.Layers = append(n.Layers, FC("fc", steps, 2*hidden, 29))
	return n
}

// FasterRCNN with the VGG-16 backbone plus the region-proposal network
// and detection head.
func FasterRCNN() *Network {
	n := &Network{Name: "fast", Full: "FasterRCNN (VGG-16)"}
	type vgg struct {
		name     string
		size     int
		inC, out int
	}
	backbone := []vgg{
		{"c1_1", 224, 3, 64}, {"c1_2", 224, 64, 64},
		{"c2_1", 112, 64, 128}, {"c2_2", 112, 128, 128},
		{"c3_1", 56, 128, 256}, {"c3_2", 56, 256, 256}, {"c3_3", 56, 256, 256},
		{"c4_1", 28, 256, 512}, {"c4_2", 28, 512, 512}, {"c4_3", 28, 512, 512},
		{"c5_1", 14, 512, 512}, {"c5_2", 14, 512, 512}, {"c5_3", 14, 512, 512},
	}
	for _, v := range backbone {
		n.Layers = append(n.Layers, CV(v.name, v.size+2, v.size+2, 3, 3, v.inC, v.out, 1))
	}
	n.Layers = append(n.Layers,
		CV("rpn_conv", 16, 16, 3, 3, 512, 512, 1),
		CV("rpn_cls", 14, 14, 1, 1, 512, 18, 1),
		CV("rpn_reg", 14, 14, 1, 1, 512, 36, 1),
		// Detection head over the top-16 post-NMS RoIs.
		FC("head_fc6", 16, 25088, 4096),
		FC("head_fc7", 16, 4096, 4096),
		FC("head_cls", 16, 4096, 21),
		FC("head_reg", 16, 4096, 84),
	)
	return n
}

// NCF is neural collaborative filtering at batch 256: the MLP tower
// over concatenated user/item embeddings plus the fused GMF/output
// projection.
func NCF() *Network {
	return &Network{
		Name: "ncf", Full: "NCF recommendation",
		Layers: []Layer{
			FC("mlp1", 256, 128, 256),
			FC("mlp2", 256, 256, 128),
			FC("mlp3", 256, 128, 64),
			FC("mlp4", 256, 64, 32),
			FC("out", 256, 96, 1),
		},
	}
}

// SentimentalSeqCNN is a sequence CNN for sentiment analysis:
// convolutions of width 3/4/5 over a 56-token, 300-d embedded
// sentence, followed by the classifier.
func SentimentalSeqCNN() *Network {
	return &Network{
		Name: "sent", Full: "Sentimental seqCNN",
		Layers: []Layer{
			CV("conv3", 56, 300, 3, 300, 1, 100, 1),
			CV("conv4", 56, 300, 4, 300, 1, 100, 1),
			CV("conv5", 56, 300, 5, 300, 1, 100, 1),
			FC("fc", 1, 300, 2),
		},
	}
}

// TransformerFwd is one encoder block's forward pass at sequence
// length 512, d_model 512, 8 heads, FFN 2048 (base configuration):
// QKV projections, attention score and context GEMMs, output
// projection, and the two FFN GEMMs.
func TransformerFwd() *Network {
	const (
		seq = 512
		dm  = 512
		dff = 2048
	)
	return &Network{
		Name: "trf", Full: "Transformer forward",
		Layers: []Layer{
			FC("q_proj", seq, dm, dm),
			FC("k_proj", seq, dm, dm),
			FC("v_proj", seq, dm, dm),
			FC("attn_score", seq, dm, seq), // Q x K^T across heads
			FC("attn_ctx", seq, seq, dm),   // softmax(QK) x V
			FC("out_proj", seq, dm, dm),
			FC("ffn1", seq, dm, dff),
			FC("ffn2", seq, dff, dm),
		},
	}
}

// YoloTiny is Tiny-YOLO v2 on 416x416 input.
func YoloTiny() *Network {
	return &Network{
		Name: "yolo", Full: "YOLO-tiny",
		Layers: []Layer{
			CV("conv1", 418, 418, 3, 3, 3, 16, 1),
			CV("conv2", 210, 210, 3, 3, 16, 32, 1),
			CV("conv3", 106, 106, 3, 3, 32, 64, 1),
			CV("conv4", 54, 54, 3, 3, 64, 128, 1),
			CV("conv5", 28, 28, 3, 3, 128, 256, 1),
			CV("conv6", 15, 15, 3, 3, 256, 512, 1),
			CV("conv7", 15, 15, 3, 3, 512, 1024, 1),
			CV("conv8", 15, 15, 3, 3, 1024, 1024, 1),
			CV("conv9", 13, 13, 1, 1, 1024, 125, 1),
		},
	}
}

// All returns the 13 benchmark networks in the paper's figure order.
func All() []*Network {
	return []*Network{
		LeNet(), AlexNet(), MobileNet(), ResNet18(), GoogLeNet(),
		DLRM(), AlphaGoZero(), DeepSpeech2(), FasterRCNN(), NCF(),
		SentimentalSeqCNN(), TransformerFwd(), YoloTiny(),
	}
}

// ByName returns the network with the given short name, or nil. The
// match is case-insensitive ("REST" and "rest" are the same workload);
// callers reporting a failed lookup should list Names() so users see
// the valid set.
func ByName(name string) *Network {
	for _, n := range All() {
		if strings.EqualFold(n.Name, name) {
			return n
		}
	}
	return nil
}

// Names returns the short names in figure order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, n := range all {
		out[i] = n.Name
	}
	return out
}

func fmtName(prefix string, i int) string {
	// Small helper avoiding fmt in hot paths; layer tables are built
	// once so clarity wins over speed here.
	digits := ""
	if i == 0 {
		digits = "0"
	}
	for i > 0 {
		digits = string(rune('0'+i%10)) + digits
		i /= 10
	}
	return prefix + digits
}

func outDim(in, filt, stride int) int { return (in-filt)/stride + 1 }
