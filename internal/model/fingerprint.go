package model

import (
	"crypto/sha256"
	"strconv"
)

// This file defines the canonical byte encoding of a network topology,
// the hashing substrate for content-addressed result caching (see
// internal/rescache and seda.ConfigFingerprint). The encoding is
// versioned and unambiguous: every field is either length-prefixed
// (strings) or delimiter-terminated (integers), so distinct topologies
// can never collide by concatenation. Two networks produce the same
// bytes iff the evaluation pipeline would treat them identically.

// canonicalVersion is bumped whenever the encoding itself changes, so
// stale cache entries keyed on the old form simply stop matching.
const canonicalVersion = "model/v1\n"

// CanonicalBytes appends the canonical encoding of the network to dst
// and returns the extended slice: the version tag, the short name, and
// one record per layer in order (kind plus every shape field the
// simulator reads).
func (n *Network) CanonicalBytes(dst []byte) []byte {
	dst = append(dst, canonicalVersion...)
	dst = appendCanonicalString(dst, n.Name)
	dst = strconv.AppendInt(dst, int64(len(n.Layers)), 10)
	dst = append(dst, '\n')
	for _, l := range n.Layers {
		dst = appendCanonicalString(dst, l.Name)
		for _, v := range [...]int{
			int(l.Kind), l.IfmapH, l.IfmapW, l.FiltH, l.FiltW,
			l.Channels, l.NumFilt, l.Stride, l.GemmM,
		} {
			dst = strconv.AppendInt(dst, int64(v), 10)
			dst = append(dst, '|')
		}
		dst = append(dst, '\n')
	}
	return dst
}

// appendCanonicalString writes a length-prefixed string, immune to
// delimiter characters appearing in the value.
func appendCanonicalString(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	dst = append(dst, s...)
	return dst
}

// Fingerprint returns the SHA-256 of the canonical encoding.
func (n *Network) Fingerprint() [sha256.Size]byte {
	return sha256.Sum256(n.CanonicalBytes(nil))
}
