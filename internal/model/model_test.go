package model

import (
	"testing"
	"testing/quick"
)

func TestAllNetworksValidate(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("All() returned %d networks, want 13 (paper's benchmark set)", len(all))
	}
	for _, n := range all {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestNetworkShortNamesMatchPaper(t *testing.T) {
	want := []string{"let", "alex", "mob", "rest", "goo", "dlrm", "algo",
		"ds2", "fast", "ncf", "sent", "trf", "yolo"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("network %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if n := ByName("rest"); n == nil || n.Full != "ResNet-18" {
		t.Errorf("ByName(rest) = %+v", n)
	}
	if n := ByName("nonexistent"); n != nil {
		t.Errorf("ByName(nonexistent) = %v, want nil", n)
	}
}

func TestConvOutputDims(t *testing.T) {
	l := CV("c", 32, 32, 5, 5, 1, 6, 1)
	if l.OfmapH() != 28 || l.OfmapW() != 28 {
		t.Errorf("LeNet conv1 ofmap = %dx%d, want 28x28", l.OfmapH(), l.OfmapW())
	}
	// AlexNet conv1: (227-11)/4+1 = 55.
	a := CV("c", 227, 227, 11, 11, 3, 96, 4)
	if a.OfmapH() != 55 || a.OfmapW() != 55 {
		t.Errorf("AlexNet conv1 ofmap = %dx%d, want 55x55", a.OfmapH(), a.OfmapW())
	}
}

func TestGEMMDims(t *testing.T) {
	l := FC("fc", 128, 512, 256)
	if l.OfmapH() != 128 || l.OfmapW() != 1 || l.OutChannels() != 256 {
		t.Errorf("GEMM dims wrong: %d %d %d", l.OfmapH(), l.OfmapW(), l.OutChannels())
	}
	if l.IfmapBytes() != 128*512 {
		t.Errorf("GEMM ifmap bytes = %d", l.IfmapBytes())
	}
	if l.WeightBytes() != 512*256 {
		t.Errorf("GEMM weight bytes = %d", l.WeightBytes())
	}
	if l.OfmapBytes() != 128*256 {
		t.Errorf("GEMM ofmap bytes = %d", l.OfmapBytes())
	}
	if l.MACs() != 128*512*256 {
		t.Errorf("GEMM MACs = %d", l.MACs())
	}
}

func TestDWConvBytes(t *testing.T) {
	l := DW("dw", 114, 114, 3, 3, 32, 1)
	if l.OutChannels() != 32 {
		t.Errorf("dwconv out channels = %d, want 32", l.OutChannels())
	}
	if l.WeightBytes() != 3*3*32 {
		t.Errorf("dwconv weights = %d, want %d", l.WeightBytes(), 3*3*32)
	}
	if l.MACs() != uint64(112*112*32*9) {
		t.Errorf("dwconv MACs = %d", l.MACs())
	}
}

func TestConvMACsKnownValue(t *testing.T) {
	// LeNet conv2: 10x10x16 output, 5x5x6 kernel = 240k MACs... each
	// output pixel takes 5*5*6 = 150 MACs; 10*10*16 = 1600 px.
	l := CV("c", 14, 14, 5, 5, 6, 16, 1)
	want := uint64(10 * 10 * 16 * 150)
	if l.MACs() != want {
		t.Errorf("conv MACs = %d, want %d", l.MACs(), want)
	}
}

func TestValidateRejectsBadLayers(t *testing.T) {
	bad := []Layer{
		{Name: "neg", Kind: Conv, IfmapH: -1, IfmapW: 8, FiltH: 3, FiltW: 3, Channels: 1, NumFilt: 1, Stride: 1},
		{Name: "nofilt", Kind: Conv, IfmapH: 8, IfmapW: 8, FiltH: 3, FiltW: 3, Channels: 1, NumFilt: 0, Stride: 1},
		{Name: "bigfilt", Kind: Conv, IfmapH: 2, IfmapW: 2, FiltH: 3, FiltW: 3, Channels: 1, NumFilt: 1, Stride: 1},
		{Name: "gemm0", Kind: GEMM, GemmM: 0, Channels: 4, NumFilt: 4},
		{Name: "unknown", Kind: Kind(9), IfmapH: 8, IfmapW: 8},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %q validated", l.Name)
		}
	}
}

func TestTotalsPositive(t *testing.T) {
	for _, n := range All() {
		if n.TotalMACs() == 0 {
			t.Errorf("%s: zero MACs", n.Name)
		}
		if n.TotalWeightBytes() == 0 {
			t.Errorf("%s: zero weights", n.Name)
		}
	}
}

func TestKnownModelScales(t *testing.T) {
	// Coarse sanity against public numbers (1 B/element).
	cases := []struct {
		name       string
		minW, maxW uint64 // weight bytes
		minM, maxM uint64 // MACs
	}{
		{"alex", 50e6, 70e6, 0.6e9, 1.5e9}, // ~60M params, ~0.7-1.1 GMACs
		{"rest", 10e6, 13e6, 1.5e9, 2.5e9}, // ~11M params, ~1.8 GMACs
		{"mob", 3e6, 6e6, 0.4e9, 0.8e9},    // ~4.2M params, ~0.57 GMACs
		{"yolo", 10e6, 20e6, 2.5e9, 4.5e9}, // ~15M params, ~3.5 GMACs
	}
	for _, c := range cases {
		n := ByName(c.name)
		w := n.TotalWeightBytes()
		m := n.TotalMACs()
		if w < c.minW || w > c.maxW {
			t.Errorf("%s weights = %d, want in [%d,%d]", c.name, w, c.minW, c.maxW)
		}
		if m < c.minM || m > c.maxM {
			t.Errorf("%s MACs = %d, want in [%d,%d]", c.name, m, c.minM, c.maxM)
		}
	}
}

func TestOfmapChainsToNextIfmap(t *testing.T) {
	// For stacked conv stages with explicit padding conventions the
	// ofmap spatial dims must be positive and non-increasing through a
	// network's conv prefix.
	for _, n := range All() {
		for i, l := range n.Layers {
			if l.OfmapH() <= 0 || l.OfmapW() <= 0 {
				t.Errorf("%s layer %d (%s): non-positive ofmap %dx%d",
					n.Name, i, l.Name, l.OfmapH(), l.OfmapW())
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Conv.String() != "conv" || DWConv.String() != "dwconv" || GEMM.String() != "gemm" {
		t.Error("kind strings wrong")
	}
}

func TestLayerBytesProperty(t *testing.T) {
	// For any valid conv layer, MACs == OfmapBytes * FiltH*FiltW*Channels.
	f := func(ih, iw, fh, fw, c, m, s uint8) bool {
		l := CV("p",
			int(ih%60)+8, int(iw%60)+8,
			int(fh%5)+1, int(fw%5)+1,
			int(c%16)+1, int(m%16)+1, int(s%3)+1)
		if l.Validate() != nil {
			return true // skip invalid shapes
		}
		want := l.OfmapBytes() * uint64(l.FiltH*l.FiltW*l.Channels)
		return l.MACs() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyNetworkInvalid(t *testing.T) {
	n := &Network{Name: "empty"}
	if err := n.Validate(); err == nil {
		t.Error("empty network validated")
	}
}
