package model

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements SCALE-Sim topology-file interchange, so
// networks can be imported from (and exported to) the CSV format the
// paper's simulator consumes:
//
//	Layer name, IFMAP Height, IFMAP Width, Filter Height,
//	Filter Width, Channels, Num Filter, Strides,
//
// GEMM layers are encoded the way SCALE-Sim's topology files encode
// fully-connected layers: IFMAP Height = M, IFMAP Width = 1,
// 1×1 filters, Channels = K, Num Filter = N. Depthwise layers carry a
// "dw_" name prefix (a common convention in published topology files).

// csvHeader is the canonical SCALE-Sim column set.
var csvHeader = []string{
	"Layer name", "IFMAP Height", "IFMAP Width", "Filter Height",
	"Filter Width", "Channels", "Num Filter", "Strides",
}

// dwPrefix marks depthwise layers in topology files.
const dwPrefix = "dw_"

// WriteTopologyCSV serializes the network in SCALE-Sim format.
func WriteTopologyCSV(w io.Writer, n *Network) error {
	if err := n.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, l := range n.Layers {
		var rec []string
		switch l.Kind {
		case GEMM:
			rec = []string{l.Name,
				strconv.Itoa(l.GemmM), "1", "1", "1",
				strconv.Itoa(l.Channels), strconv.Itoa(l.NumFilt), "1"}
		case DWConv:
			rec = []string{dwPrefix + l.Name,
				strconv.Itoa(l.IfmapH), strconv.Itoa(l.IfmapW),
				strconv.Itoa(l.FiltH), strconv.Itoa(l.FiltW),
				strconv.Itoa(l.Channels), strconv.Itoa(l.Channels),
				strconv.Itoa(l.Stride)}
		default:
			rec = []string{l.Name,
				strconv.Itoa(l.IfmapH), strconv.Itoa(l.IfmapW),
				strconv.Itoa(l.FiltH), strconv.Itoa(l.FiltW),
				strconv.Itoa(l.Channels), strconv.Itoa(l.NumFilt),
				strconv.Itoa(l.Stride)}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTopologyCSV parses a SCALE-Sim topology file into a network
// named name. A header row is skipped if present. GEMM layers are
// recognized by the 1×1-filter + width-1 encoding; the dw_ prefix
// selects depthwise.
func ReadTopologyCSV(r io.Reader, name string) (*Network, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // tolerate trailing commas in published files
	n := &Network{Name: name, Full: name}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("model: topology line %d: %w", line+1, err)
		}
		line++
		rec = trimRecord(rec)
		if len(rec) == 0 {
			continue
		}
		if line == 1 && looksLikeHeader(rec) {
			continue
		}
		l, err := parseTopologyRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("model: topology line %d: %w", line, err)
		}
		n.Layers = append(n.Layers, l)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func trimRecord(rec []string) []string {
	out := rec[:0]
	for _, f := range rec {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func looksLikeHeader(rec []string) bool {
	if len(rec) == 0 {
		return false
	}
	_, err := strconv.Atoi(rec[len(rec)-1])
	return err != nil // last field of a data row is the numeric stride
}

func parseTopologyRecord(rec []string) (Layer, error) {
	if len(rec) < 8 {
		return Layer{}, fmt.Errorf("want 8 fields, got %d", len(rec))
	}
	nums := make([]int, 7)
	for i := 0; i < 7; i++ {
		v, err := strconv.Atoi(rec[i+1])
		if err != nil {
			return Layer{}, fmt.Errorf("field %d (%q): %w", i+1, rec[i+1], err)
		}
		nums[i] = v
	}
	name := rec[0]
	ih, iw, fh, fw, c, m, s := nums[0], nums[1], nums[2], nums[3], nums[4], nums[5], nums[6]

	if strings.HasPrefix(name, dwPrefix) {
		return DW(strings.TrimPrefix(name, dwPrefix), ih, iw, fh, fw, c, s), nil
	}
	// The SCALE-Sim FC encoding: 1-wide ifmap with 1x1 filters.
	if iw == 1 && fh == 1 && fw == 1 && s == 1 {
		return FC(name, ih, c, m), nil
	}
	return CV(name, ih, iw, fh, fw, c, m, s), nil
}
