package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestTopologyRoundTripAllNetworks(t *testing.T) {
	for _, n := range All() {
		var buf bytes.Buffer
		if err := WriteTopologyCSV(&buf, n); err != nil {
			t.Fatalf("%s: write: %v", n.Name, err)
		}
		back, err := ReadTopologyCSV(&buf, n.Name)
		if err != nil {
			t.Fatalf("%s: read: %v", n.Name, err)
		}
		if len(back.Layers) != len(n.Layers) {
			t.Fatalf("%s: %d layers after round trip, want %d",
				n.Name, len(back.Layers), len(n.Layers))
		}
		for i := range n.Layers {
			a, b := n.Layers[i], back.Layers[i]
			if a.Kind != b.Kind {
				t.Errorf("%s layer %d: kind %v -> %v", n.Name, i, a.Kind, b.Kind)
			}
			if a.IfmapBytes() != b.IfmapBytes() ||
				a.WeightBytes() != b.WeightBytes() ||
				a.OfmapBytes() != b.OfmapBytes() ||
				a.MACs() != b.MACs() {
				t.Errorf("%s layer %d (%s): tensor sizes changed in round trip",
					n.Name, i, a.Name)
			}
		}
	}
}

func TestReadTopologyHandwritten(t *testing.T) {
	src := `Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
conv1, 224, 224, 7, 7, 3, 64, 2,
dw_dw1, 112, 112, 3, 3, 64, 64, 1,
fc, 1, 1, 1, 1, 512, 1000, 1,
`
	n, err := ReadTopologyCSV(strings.NewReader(src), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(n.Layers))
	}
	if n.Layers[0].Kind != Conv || n.Layers[0].NumFilt != 64 || n.Layers[0].Stride != 2 {
		t.Errorf("conv1 parsed wrong: %+v", n.Layers[0])
	}
	if n.Layers[1].Kind != DWConv || n.Layers[1].Name != "dw1" {
		t.Errorf("dw1 parsed wrong: %+v", n.Layers[1])
	}
	if n.Layers[2].Kind != GEMM || n.Layers[2].Channels != 512 || n.Layers[2].NumFilt != 1000 {
		t.Errorf("fc parsed wrong: %+v", n.Layers[2])
	}
}

func TestReadTopologyNoHeader(t *testing.T) {
	src := "conv1, 32, 32, 5, 5, 1, 6, 1,\n"
	n, err := ReadTopologyCSV(strings.NewReader(src), "nohdr")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 1 || n.Layers[0].Name != "conv1" {
		t.Errorf("parsed %+v", n.Layers)
	}
}

func TestReadTopologyErrors(t *testing.T) {
	cases := []string{
		"conv1, x, 32, 5, 5, 1, 6, 1,\n", // non-numeric
		"conv1, 32, 32\n",                // too few fields
		"conv1, 2, 2, 5, 5, 1, 6, 1,\n",  // filter larger than ifmap
		"",                               // empty -> no layers
	}
	for _, src := range cases {
		if _, err := ReadTopologyCSV(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteTopologyRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTopologyCSV(&buf, &Network{Name: "empty"}); err == nil {
		t.Error("wrote invalid network")
	}
}

func TestTopologyGEMMEncoding(t *testing.T) {
	n := &Network{Name: "g", Layers: []Layer{FC("fc1", 128, 512, 256)}}
	var buf bytes.Buffer
	if err := WriteTopologyCSV(&buf, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fc1,128,1,1,1,512,256,1") {
		t.Errorf("GEMM encoding wrong:\n%s", buf.String())
	}
}
