// Package model describes DNN inference workloads at the granularity
// the simulation pipeline needs: per-layer tensor shapes. The 13
// benchmark networks of the paper's evaluation (§IV-A) are provided as
// layer tables in the style of SCALE-Sim topology files.
//
// Every element is one byte (Table II: 1-B precision for both NPUs),
// so tensor byte sizes equal element counts.
package model

import "fmt"

// Kind distinguishes the layer compute patterns the simulator models.
type Kind uint8

const (
	// Conv is a standard convolution layer.
	Conv Kind = iota
	// DWConv is a depthwise convolution (one filter per channel).
	DWConv
	// GEMM is a dense matrix multiply (fully-connected layers,
	// attention projections, recurrent cells unrolled to GEMMs),
	// with M×K activations against K×N weights.
	GEMM
)

func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case GEMM:
		return "gemm"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Layer is one network layer. For Conv/DWConv, the ifmap dimensions
// are the *padded* input (the convention of SCALE-Sim topology files),
// so the output is (IfmapH-FiltH)/Stride+1. For GEMM, M=GemmM, K=GemmK
// (=Channels), N=GemmN (=NumFilt) and the spatial fields are unused.
type Layer struct {
	Name   string
	Kind   Kind
	IfmapH int
	IfmapW int
	FiltH  int
	FiltW  int
	// Channels is input channels (Conv/DWConv) or K (GEMM).
	Channels int
	// NumFilt is output channels (Conv), ignored for DWConv
	// (output channels == Channels), or N (GEMM).
	NumFilt int
	Stride  int
	// GemmM is the M dimension for GEMM layers (rows of activations,
	// e.g. batch or sequence length).
	GemmM int
}

// FC builds a fully-connected layer as a GEMM with batch m.
func FC(name string, m, k, n int) Layer {
	return Layer{Name: name, Kind: GEMM, GemmM: m, Channels: k, NumFilt: n, Stride: 1}
}

// CV builds a convolution layer (ifmap dims already padded).
func CV(name string, ih, iw, fh, fw, c, m, s int) Layer {
	return Layer{Name: name, Kind: Conv, IfmapH: ih, IfmapW: iw, FiltH: fh, FiltW: fw,
		Channels: c, NumFilt: m, Stride: s}
}

// DW builds a depthwise convolution layer.
func DW(name string, ih, iw, fh, fw, c, s int) Layer {
	return Layer{Name: name, Kind: DWConv, IfmapH: ih, IfmapW: iw, FiltH: fh, FiltW: fw,
		Channels: c, NumFilt: c, Stride: s}
}

// Validate checks the layer's shape for consistency.
func (l Layer) Validate() error {
	switch l.Kind {
	case Conv, DWConv:
		if l.IfmapH <= 0 || l.IfmapW <= 0 || l.FiltH <= 0 || l.FiltW <= 0 ||
			l.Channels <= 0 || l.Stride <= 0 {
			return fmt.Errorf("model: layer %q has non-positive dims", l.Name)
		}
		if l.Kind == Conv && l.NumFilt <= 0 {
			return fmt.Errorf("model: conv layer %q has no filters", l.Name)
		}
		if l.FiltH > l.IfmapH || l.FiltW > l.IfmapW {
			return fmt.Errorf("model: layer %q filter %dx%d larger than ifmap %dx%d",
				l.Name, l.FiltH, l.FiltW, l.IfmapH, l.IfmapW)
		}
	case GEMM:
		if l.GemmM <= 0 || l.Channels <= 0 || l.NumFilt <= 0 {
			return fmt.Errorf("model: gemm layer %q has non-positive dims", l.Name)
		}
	default:
		return fmt.Errorf("model: layer %q has unknown kind %d", l.Name, l.Kind)
	}
	return nil
}

// OfmapH returns the output feature-map height (1 for GEMM).
func (l Layer) OfmapH() int {
	if l.Kind == GEMM {
		return l.GemmM
	}
	return (l.IfmapH-l.FiltH)/l.Stride + 1
}

// OfmapW returns the output feature-map width (1 for GEMM).
func (l Layer) OfmapW() int {
	if l.Kind == GEMM {
		return 1
	}
	return (l.IfmapW-l.FiltW)/l.Stride + 1
}

// OutChannels returns the number of output channels.
func (l Layer) OutChannels() int {
	switch l.Kind {
	case DWConv:
		return l.Channels
	case GEMM:
		return l.NumFilt
	}
	return l.NumFilt
}

// IfmapBytes returns the input tensor size in bytes (1 B/element).
func (l Layer) IfmapBytes() uint64 {
	if l.Kind == GEMM {
		return uint64(l.GemmM) * uint64(l.Channels)
	}
	return uint64(l.IfmapH) * uint64(l.IfmapW) * uint64(l.Channels)
}

// WeightBytes returns the weight tensor size in bytes.
func (l Layer) WeightBytes() uint64 {
	switch l.Kind {
	case DWConv:
		return uint64(l.FiltH) * uint64(l.FiltW) * uint64(l.Channels)
	case GEMM:
		return uint64(l.Channels) * uint64(l.NumFilt)
	}
	return uint64(l.FiltH) * uint64(l.FiltW) * uint64(l.Channels) * uint64(l.NumFilt)
}

// OfmapBytes returns the output tensor size in bytes.
func (l Layer) OfmapBytes() uint64 {
	return uint64(l.OfmapH()) * uint64(l.OfmapW()) * uint64(l.OutChannels())
}

// MACs returns the number of multiply-accumulate operations.
func (l Layer) MACs() uint64 {
	switch l.Kind {
	case DWConv:
		return l.OfmapBytes() * uint64(l.FiltH) * uint64(l.FiltW)
	case GEMM:
		return uint64(l.GemmM) * uint64(l.Channels) * uint64(l.NumFilt)
	}
	return l.OfmapBytes() * uint64(l.FiltH) * uint64(l.FiltW) * uint64(l.Channels)
}

// Network is a named sequence of layers.
type Network struct {
	Name   string // short name used in the paper's figures (let, alex, ...)
	Full   string // human-readable name
	Layers []Layer
}

// Validate checks every layer.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("model: network %q has no layers", n.Name)
	}
	for i, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model: network %q layer %d: %w", n.Name, i, err)
		}
	}
	return nil
}

// TotalMACs sums MACs over all layers.
func (n *Network) TotalMACs() uint64 {
	var s uint64
	for _, l := range n.Layers {
		s += l.MACs()
	}
	return s
}

// TotalWeightBytes sums weight bytes over all layers.
func (n *Network) TotalWeightBytes() uint64 {
	var s uint64
	for _, l := range n.Layers {
		s += l.WeightBytes()
	}
	return s
}
