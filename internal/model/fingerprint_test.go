package model

import (
	"bytes"
	"testing"
)

func TestCanonicalBytesStable(t *testing.T) {
	a := ByName("rest").CanonicalBytes(nil)
	b := ByName("rest").CanonicalBytes(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("two constructions of the same network encode differently")
	}
	if ByName("rest").Fingerprint() != ByName("rest").Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
}

func TestFingerprintDistinguishesNetworks(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, n := range All() {
		fp := n.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s and %s", prev, n.Name)
		}
		seen[fp] = n.Name
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := LeNet()
	for _, tc := range []struct {
		name   string
		mutate func(*Network)
	}{
		{"network name", func(n *Network) { n.Name = "let2" }},
		{"layer dim", func(n *Network) { n.Layers[0].IfmapH++ }},
		{"layer kind", func(n *Network) { n.Layers[3].Kind = Conv }},
		{"layer stride", func(n *Network) { n.Layers[1].Stride++ }},
		{"layer dropped", func(n *Network) { n.Layers = n.Layers[:len(n.Layers)-1] }},
		{"layer order", func(n *Network) {
			n.Layers[0], n.Layers[1] = n.Layers[1], n.Layers[0]
		}},
	} {
		mutated := LeNet()
		tc.mutate(mutated)
		if mutated.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change not reflected in fingerprint", tc.name)
		}
	}
}

// Layer-name boundaries must not be ambiguous: a delimiter-looking
// character inside a name cannot make two different topologies encode
// identically, because names are length-prefixed.
func TestCanonicalBytesUnambiguousNames(t *testing.T) {
	a := &Network{Name: "x", Layers: []Layer{FC("ab", 1, 2, 3)}}
	b := &Network{Name: "x", Layers: []Layer{FC("a", 1, 2, 3)}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct layer names collide")
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	for _, q := range []string{"rest", "REST", "Rest"} {
		n := ByName(q)
		if n == nil || n.Name != "rest" {
			t.Fatalf("ByName(%q) = %v, want rest", q, n)
		}
	}
	if ByName("no-such-net") != nil {
		t.Fatal("ByName should return nil for unknown workloads")
	}
}
