package nnexec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b) //nolint:errcheck
	return b
}

func TestTensorAccessors(t *testing.T) {
	tn := NewTensor(2, 3, 4)
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
	tn.Set(1, 2, 3, 0xab)
	if tn.At(1, 2, 3) != 0xab {
		t.Error("Set/At round trip failed")
	}
	// NHWC layout: (y*W+x)*C+c.
	if tn.Data[(1*3+2)*4+3] != 0xab {
		t.Error("layout not NHWC")
	}
}

func TestTensorValidate(t *testing.T) {
	bad := &Tensor{H: 2, W: 2, C: 2, Data: make([]byte, 7)}
	if err := bad.Validate(); err == nil {
		t.Error("wrong-length tensor validated")
	}
	neg := &Tensor{H: -1, W: 2, C: 2}
	if err := neg.Validate(); err == nil {
		t.Error("negative dims validated")
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// 1x1 conv, single channel, weight = 1 in fixed point... with the
	// requant shift of 8, weight value 1 yields acc>>8 == in>>8 pre-
	// wrap. Use weight 127 (max int8) on small inputs for a
	// predictable check: acc = in*127; out = (in*127)>>8.
	l := model.CV("id", 4, 4, 1, 1, 1, 1, 1)
	in := NewTensor(4, 4, 1)
	for i := range in.Data {
		in.Data[i] = byte(i * 16)
	}
	w := Weights{Data: []byte{127}}
	out, err := Conv(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in.Data {
		want := byte((int32(v) * 127) >> 8)
		if out.Data[i] != want {
			t.Fatalf("pixel %d = %d, want %d", i, out.Data[i], want)
		}
	}
}

func TestConvKnownSmallCase(t *testing.T) {
	// 2x2 input, 2x2 filter, 1 channel, 1 filter, stride 1 -> single
	// output = requant(sum in[i]*w[i]).
	l := model.CV("k", 2, 2, 2, 2, 1, 1, 1)
	in := &Tensor{H: 2, W: 2, C: 1, Data: []byte{10, 20, 30, 40}}
	neg4 := int8(-4)
	w := Weights{Data: []byte{1, 2, 3, byte(neg4)}}
	out, err := Conv(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	acc := int32(10*1 + 20*2 + 30*3 + 40*(-4))
	if out.Data[0] != requant(acc) {
		t.Errorf("out = %d, want %d (acc %d)", out.Data[0], requant(acc), acc)
	}
}

func TestConvMatchesIm2col(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	shapes := []model.Layer{
		model.CV("a", 8, 8, 3, 3, 4, 8, 1),
		model.CV("b", 9, 7, 3, 3, 2, 5, 2),
		model.CV("c", 6, 6, 1, 1, 16, 4, 1),
		model.CV("d", 12, 12, 5, 5, 3, 6, 2),
	}
	for _, l := range shapes {
		in := &Tensor{H: l.IfmapH, W: l.IfmapW, C: l.Channels,
			Data: randBytes(r, l.IfmapH*l.IfmapW*l.Channels)}
		w := Weights{Data: randBytes(r, int(l.WeightBytes()))}
		direct, err := Conv(l, in, w)
		if err != nil {
			t.Fatal(err)
		}
		lowered, err := ConvIm2col(l, in, w)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Data, lowered.Data) {
			t.Errorf("%s: direct and im2col outputs differ", l.Name)
		}
	}
}

func TestConvIm2colPropertyRandomShapes(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(ih, fh, c, m, s uint8) bool {
		l := model.CV("p",
			int(ih%12)+6, int(ih%10)+6,
			int(fh%3)+1, int(fh%3)+1,
			int(c%4)+1, int(m%4)+1, int(s%2)+1)
		if l.Validate() != nil {
			return true
		}
		in := &Tensor{H: l.IfmapH, W: l.IfmapW, C: l.Channels,
			Data: randBytes(r, l.IfmapH*l.IfmapW*l.Channels)}
		w := Weights{Data: randBytes(r, int(l.WeightBytes()))}
		d, err1 := Conv(l, in, w)
		i2, err2 := ConvIm2col(l, in, w)
		return err1 == nil && err2 == nil && bytes.Equal(d.Data, i2.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDWConvChannelIndependence(t *testing.T) {
	// Changing channel 0 of the input must not affect channel 1 of
	// the output.
	l := model.DW("dw", 6, 6, 3, 3, 2, 1)
	r := rand.New(rand.NewSource(3))
	in := &Tensor{H: 6, W: 6, C: 2, Data: randBytes(r, 72)}
	w := Weights{Data: randBytes(r, 18)}
	out1, err := DWConv(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb channel 0 everywhere.
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			in.Set(y, x, 0, in.At(y, x, 0)+1)
		}
	}
	out2, err := DWConv(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < out1.H; y++ {
		for x := 0; x < out1.W; x++ {
			if out1.At(y, x, 1) != out2.At(y, x, 1) {
				t.Fatal("channel 1 output changed when channel 0 input perturbed")
			}
		}
	}
}

func TestGEMMKnownCase(t *testing.T) {
	// [1 2; 3 4] x [5 6; 7 8] with int8 weights.
	l := model.FC("g", 2, 2, 2)
	in := &Tensor{H: 2, W: 1, C: 2, Data: []byte{1, 2, 3, 4}}
	w := Weights{Data: []byte{5, 6, 7, 8}} // row-major [K][N]
	out, err := GEMM(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1*5 + 2*7, 1*6 + 2*8, 3*5 + 4*7, 3*6 + 4*8}
	for i, acc := range want {
		if out.Data[i] != requant(acc) {
			t.Errorf("out[%d] = %d, want %d", i, out.Data[i], requant(acc))
		}
	}
}

func TestGEMMShapeErrors(t *testing.T) {
	l := model.FC("g", 2, 3, 4)
	in := NewTensor(2, 1, 2) // wrong K
	if _, err := GEMM(l, in, Weights{Data: make([]byte, 12)}); err == nil {
		t.Error("wrong input shape accepted")
	}
	in = NewTensor(2, 1, 3)
	if _, err := GEMM(l, in, Weights{Data: make([]byte, 11)}); err == nil {
		t.Error("wrong weight size accepted")
	}
}

func TestExecuteDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	conv := model.CV("c", 4, 4, 2, 2, 1, 2, 1)
	in := &Tensor{H: 4, W: 4, C: 1, Data: randBytes(r, 16)}
	w := Weights{Data: randBytes(r, int(conv.WeightBytes()))}
	if _, err := Execute(conv, in, w); err != nil {
		t.Errorf("conv dispatch: %v", err)
	}
	dw := model.DW("d", 4, 4, 2, 2, 2, 1)
	in2 := &Tensor{H: 4, W: 4, C: 2, Data: randBytes(r, 32)}
	if _, err := Execute(dw, in2, Weights{Data: randBytes(r, 8)}); err != nil {
		t.Errorf("dwconv dispatch: %v", err)
	}
	g := model.FC("g", 2, 2, 2)
	in3 := NewTensor(2, 1, 2)
	if _, err := Execute(g, in3, Weights{Data: make([]byte, 4)}); err != nil {
		t.Errorf("gemm dispatch: %v", err)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	conv := model.CV("c", 4, 4, 2, 2, 1, 2, 1)
	in := NewTensor(4, 4, 1)
	w := Weights{Data: make([]byte, conv.WeightBytes())}
	if _, err := DWConv(conv, in, w); err == nil {
		t.Error("DWConv accepted a conv layer")
	}
	if _, err := GEMM(conv, in, w); err == nil {
		t.Error("GEMM accepted a conv layer")
	}
	g := model.FC("g", 2, 2, 2)
	if _, err := Conv(g, in, w); err == nil {
		t.Error("Conv accepted a gemm layer")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	l := model.CV("c", 10, 10, 3, 3, 4, 8, 1)
	in := &Tensor{H: 10, W: 10, C: 4, Data: randBytes(r, 400)}
	w := Weights{Data: randBytes(r, int(l.WeightBytes()))}
	a, err := Execute(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, b.Data) {
		t.Error("execution not deterministic")
	}
}
