package nnexec

import (
	"fmt"

	"repro/internal/model"
)

// ConvIm2col executes the same convolution as Conv via im2col + GEMM
// lowering: the input patches are unrolled into an (OH·OW) × (R·S·C)
// matrix and multiplied against the (R·S·C) × M weight matrix. This is
// the lowering a weight-stationary systolic array effectively
// performs, and it must produce bit-identical results to the direct
// loop — a property test in this package asserts exactly that.
func ConvIm2col(l model.Layer, in *Tensor, w Weights) (*Tensor, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Kind != model.Conv {
		return nil, fmt.Errorf("nnexec: ConvIm2col called on %s layer %q", l.Kind, l.Name)
	}
	if err := checkShape(l, in, w); err != nil {
		return nil, err
	}

	oh, ow := l.OfmapH(), l.OfmapW()
	k := l.FiltH * l.FiltW * l.Channels
	rows := oh * ow

	// Unroll patches.
	patches := make([]byte, rows*k)
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for fy := 0; fy < l.FiltH; fy++ {
				iy := oy*l.Stride + fy
				for fx := 0; fx < l.FiltW; fx++ {
					ix := ox*l.Stride + fx
					src := (iy*in.W + ix) * in.C
					copy(patches[idx:idx+l.Channels], in.Data[src:src+l.Channels])
					idx += l.Channels
				}
			}
		}
	}

	// patches (rows×k) x weights^T: weights are [M][k] filter-major,
	// so out[r][m] = sum_k patches[r][kk] * w[m][kk].
	out := NewTensor(oh, ow, l.NumFilt)
	for r := 0; r < rows; r++ {
		prow := patches[r*k : (r+1)*k]
		for m := 0; m < l.NumFilt; m++ {
			wrow := w.Data[m*k : (m+1)*k]
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += int32(prow[kk]) * int32(int8(wrow[kk]))
			}
			out.Data[r*l.NumFilt+m] = requant(acc)
		}
	}
	return out, nil
}
