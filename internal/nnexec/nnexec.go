// Package nnexec is a reference executor for the DNN layers in
// internal/model, operating on the same 1-byte-per-element
// quantization Table II specifies. It exists so the functional
// protection unit can be validated end to end: an inference whose
// tensors round-trip through encrypted, integrity-checked off-chip
// memory must produce bit-identical outputs to an unprotected run,
// and any tampering must surface as a verification error rather than
// silently corrupted outputs.
//
// Arithmetic is uint8 activations × int8 weights with a wrapping
// int32 accumulator, requantized by an arithmetic shift and offset —
// a simplified but deterministic fixed-point scheme. Determinism is
// the property the security tests need; the numerics are not meant to
// match any particular training framework.
package nnexec

import (
	"fmt"

	"repro/internal/model"
)

// Tensor is an activation tensor in NHWC layout (H × W × C), matching
// the byte layout the timing simulator assumes.
type Tensor struct {
	H, W, C int
	Data    []byte // len == H*W*C
}

// NewTensor allocates a zero tensor.
func NewTensor(h, w, c int) *Tensor {
	return &Tensor{H: h, W: w, C: c, Data: make([]byte, h*w*c)}
}

// At returns the element at (y, x, ch).
func (t *Tensor) At(y, x, ch int) byte {
	return t.Data[(y*t.W+x)*t.C+ch]
}

// Set stores the element at (y, x, ch).
func (t *Tensor) Set(y, x, ch int, v byte) {
	t.Data[(y*t.W+x)*t.C+ch] = v
}

// Validate checks the shape against the data length.
func (t *Tensor) Validate() error {
	if t.H <= 0 || t.W <= 0 || t.C <= 0 {
		return fmt.Errorf("nnexec: non-positive tensor dims %dx%dx%d", t.H, t.W, t.C)
	}
	if len(t.Data) != t.H*t.W*t.C {
		return fmt.Errorf("nnexec: tensor data %d != %d*%d*%d", len(t.Data), t.H, t.W, t.C)
	}
	return nil
}

// Weights holds a layer's weight bytes in the layout the simulator
// assumes: [M][R·S·C] for convolution (filter-major), [K][N]
// row-major for GEMM, [C][R·S] for depthwise.
type Weights struct {
	Data []byte
}

// requant folds the int32 accumulator back into a byte: arithmetic
// shift by 8 (dropping the product scale), then wrap. Deterministic
// and cheap; see the package comment.
func requant(acc int32) byte {
	return byte(uint32(acc>>8) & 0xff)
}

// Conv executes a standard convolution layer. in must have the
// layer's padded input shape; the output has shape OfmapH × OfmapW ×
// NumFilt.
func Conv(l model.Layer, in *Tensor, w Weights) (*Tensor, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Kind != model.Conv {
		return nil, fmt.Errorf("nnexec: Conv called on %s layer %q", l.Kind, l.Name)
	}
	if err := checkShape(l, in, w); err != nil {
		return nil, err
	}
	out := NewTensor(l.OfmapH(), l.OfmapW(), l.NumFilt)
	fsz := l.FiltH * l.FiltW * l.Channels
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			for m := 0; m < l.NumFilt; m++ {
				var acc int32
				base := m * fsz
				for fy := 0; fy < l.FiltH; fy++ {
					iy := oy*l.Stride + fy
					for fx := 0; fx < l.FiltW; fx++ {
						ix := ox*l.Stride + fx
						inRow := (iy*in.W + ix) * in.C
						wRow := base + (fy*l.FiltW+fx)*l.Channels
						for c := 0; c < l.Channels; c++ {
							acc += int32(in.Data[inRow+c]) * int32(int8(w.Data[wRow+c]))
						}
					}
				}
				out.Set(oy, ox, m, requant(acc))
			}
		}
	}
	return out, nil
}

// DWConv executes a depthwise convolution: channel c of the output
// depends only on channel c of the input and filter c.
func DWConv(l model.Layer, in *Tensor, w Weights) (*Tensor, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Kind != model.DWConv {
		return nil, fmt.Errorf("nnexec: DWConv called on %s layer %q", l.Kind, l.Name)
	}
	if err := checkShape(l, in, w); err != nil {
		return nil, err
	}
	out := NewTensor(l.OfmapH(), l.OfmapW(), l.Channels)
	fsz := l.FiltH * l.FiltW
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			for c := 0; c < l.Channels; c++ {
				var acc int32
				for fy := 0; fy < l.FiltH; fy++ {
					iy := oy*l.Stride + fy
					for fx := 0; fx < l.FiltW; fx++ {
						ix := ox*l.Stride + fx
						acc += int32(in.At(iy, ix, c)) *
							int32(int8(w.Data[c*fsz+fy*l.FiltW+fx]))
					}
				}
				out.Set(oy, ox, c, requant(acc))
			}
		}
	}
	return out, nil
}

// GEMM executes a dense M×K by K×N multiply. in is interpreted as an
// M×K matrix (H=M, W=1, C=K or any shape with M*K elements).
func GEMM(l model.Layer, in *Tensor, w Weights) (*Tensor, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Kind != model.GEMM {
		return nil, fmt.Errorf("nnexec: GEMM called on %s layer %q", l.Kind, l.Name)
	}
	if len(in.Data) != l.GemmM*l.Channels {
		return nil, fmt.Errorf("nnexec: gemm %q input %d != M*K %d",
			l.Name, len(in.Data), l.GemmM*l.Channels)
	}
	if len(w.Data) != l.Channels*l.NumFilt {
		return nil, fmt.Errorf("nnexec: gemm %q weights %d != K*N %d",
			l.Name, len(w.Data), l.Channels*l.NumFilt)
	}
	out := NewTensor(l.GemmM, 1, l.NumFilt)
	k, n := l.Channels, l.NumFilt
	for m := 0; m < l.GemmM; m++ {
		for j := 0; j < n; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += int32(in.Data[m*k+kk]) * int32(int8(w.Data[kk*n+j]))
			}
			out.Data[m*n+j] = requant(acc)
		}
	}
	return out, nil
}

// Execute dispatches on the layer kind.
func Execute(l model.Layer, in *Tensor, w Weights) (*Tensor, error) {
	switch l.Kind {
	case model.Conv:
		return Conv(l, in, w)
	case model.DWConv:
		return DWConv(l, in, w)
	case model.GEMM:
		return GEMM(l, in, w)
	}
	return nil, fmt.Errorf("nnexec: unknown layer kind %d", l.Kind)
}

func checkShape(l model.Layer, in *Tensor, w Weights) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.H != l.IfmapH || in.W != l.IfmapW || in.C != l.Channels {
		return fmt.Errorf("nnexec: layer %q input %dx%dx%d != expected %dx%dx%d",
			l.Name, in.H, in.W, in.C, l.IfmapH, l.IfmapW, l.Channels)
	}
	if uint64(len(w.Data)) != l.WeightBytes() {
		return fmt.Errorf("nnexec: layer %q weights %d != expected %d",
			l.Name, len(w.Data), l.WeightBytes())
	}
	return nil
}
