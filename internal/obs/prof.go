package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
	rttrace "runtime/trace"
)

// Profiles owns the profiling outputs of one CLI run: a CPU profile,
// a heap profile, and an execution trace, each armed only when its
// path is non-empty. The CLIs share it so the flush discipline lives
// in one place — os.Exit skips defers, and an unflushed pprof file is
// truncated junk, so their fatal paths call Stop explicitly.
type Profiles struct {
	cpu     *os.File
	mem     *os.File
	trace   *os.File
	stopped bool
}

// StartProfiles opens and arms the requested outputs. An empty path
// disables that profile. On error, anything already armed is stopped.
func StartProfiles(cpuPath, memPath, tracePath string) (*Profiles, error) {
	p := &Profiles{}
	fail := func(err error) (*Profiles, error) {
		p.Stop() //nolint:errcheck
		return nil, err
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close() //nolint:errcheck
			return fail(err)
		}
		p.cpu = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return fail(err)
		}
		p.mem = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fail(err)
		}
		if err := rttrace.Start(f); err != nil {
			f.Close() //nolint:errcheck
			return fail(err)
		}
		p.trace = f
	}
	return p, nil
}

// Stop flushes and closes every armed profile. Nil-safe and
// idempotent, so both the normal defer and an os.Exit-bound fatal
// path may call it; the second call is a no-op.
func (p *Profiles) Stop() error {
	if p == nil || p.stopped {
		return nil
	}
	p.stopped = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		keep(p.cpu.Close())
	}
	if p.trace != nil {
		rttrace.Stop()
		keep(p.trace.Close())
	}
	if p.mem != nil {
		runtime.GC() // settle the heap so the snapshot reflects live data
		keep(pprof.WriteHeapProfile(p.mem))
		keep(p.mem.Close())
	}
	return firstErr
}
