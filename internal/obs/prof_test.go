package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfilesWriteAllOutputs(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")

	p, err := StartProfiles(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles have something to say.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}

	for _, path := range []string{cpu, mem, tr} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
}

func TestProfilesDisabledAndNil(t *testing.T) {
	p, err := StartProfiles("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilP *Profiles
	if err := nilP.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), "", ""); err == nil {
		t.Fatal("want error for unwritable cpu profile path")
	}
	if _, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("want error for unwritable mem profile path")
	}
	if _, err := StartProfiles("", "", filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("want error for unwritable trace path")
	}
}
