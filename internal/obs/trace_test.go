package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledFastPathAllocs pins the non-negotiable invariant of the
// package: with no live tracer, every instrumentation form allocates
// nothing. The pipeline calls these on hot paths (per DRAM drain, per
// protection layer); a single allocation here would show up in the
// TestRunTraceAllocGuard pin over in internal/dram.
func TestDisabledFastPathAllocs(t *testing.T) {
	if active.Load() != 0 {
		t.Fatal("test requires no live tracer")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, StageDRAM)
		sp.SetDetail("x")
		sp.End()
		sp2 := StartChild(c2, StageProtect)
		sp2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start/StartChild path allocates %v per run, want 0", allocs)
	}
}

// TestArmedButForeignContextAllocs covers the second-cheapest path: a
// tracer is live somewhere in the process, but this context carries
// no span (e.g. a batch caller running beside a traced server
// request). Only the context value walk is paid; still no allocation.
func TestArmedButForeignContextAllocs(t *testing.T) {
	_, tr := NewTracer(context.Background(), "other")
	defer tr.Finish()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := Start(ctx, StageDRAM)
		sp.End()
		StartChild(ctx, StageDRAMDrain).End()
	})
	if allocs != 0 {
		t.Fatalf("foreign-context path allocates %v per run, want 0", allocs)
	}
}

func TestSpanTreeNestingAndMerge(t *testing.T) {
	ctx, tr := NewTracer(context.Background(), "request")
	tr.Root().SetDetail("GET /v1/sweep")

	wctx, w := Start(ctx, StageWorkload)
	w.SetDetail("ncf")
	for i := 0; i < 3; i++ {
		sp := StartChild(wctx, StageDRAMDrain)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	dctx, d := Start(wctx, StageDRAM)
	d.SetDetail("SeDA")
	StartChild(dctx, StageDRAMDrain).End()
	d.End()
	w.End()
	tr.Finish()

	tree := tr.Tree()
	if tree.Name != "request" || tree.Detail != "GET /v1/sweep" {
		t.Fatalf("root = %+v", tree)
	}
	if tree.Ms <= 0 {
		t.Fatalf("root duration %v, want > 0", tree.Ms)
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != StageWorkload || tree.Spans[0].Detail != "ncf" {
		t.Fatalf("children = %+v", tree.Spans)
	}
	wl := tree.Spans[0]
	// The three same-named drain spans merge into one node carrying
	// count=3; the per-scheme dram span stays separate (detail differs
	// from nothing — different name entirely).
	if len(wl.Spans) != 2 {
		t.Fatalf("workload children = %+v", wl.Spans)
	}
	drain := wl.Spans[0]
	if drain.Name != StageDRAMDrain || drain.Count != 3 || drain.Ms < 3 {
		t.Fatalf("merged drain node = %+v", drain)
	}
	dram := wl.Spans[1]
	if dram.Name != StageDRAM || dram.Detail != "SeDA" || dram.Count != 0 {
		t.Fatalf("dram node = %+v", dram)
	}
	if len(dram.Spans) != 1 || dram.Spans[0].Count != 0 {
		t.Fatalf("dram children = %+v", dram.Spans)
	}

	// Children of a span cannot outlast it by construction here, so
	// the merged durations must fit inside the parent (small timer
	// slack for clock granularity).
	var sum float64
	for _, c := range wl.Spans {
		sum += c.Ms
	}
	if sum > wl.Ms*1.05+1 {
		t.Fatalf("children sum %.3fms exceeds parent %.3fms", sum, wl.Ms)
	}
}

func TestSpanMergeKeyedByDetail(t *testing.T) {
	ctx, tr := NewTracer(context.Background(), "root")
	defer tr.Finish()
	for _, d := range []string{"a", "a", "b"} {
		sp := StartChild(ctx, StageWorkload)
		sp.SetDetail(d)
		sp.End()
	}
	tree := tr.Tree()
	if len(tree.Spans) != 2 {
		t.Fatalf("want 2 merged nodes (a x2, b), got %+v", tree.Spans)
	}
	if tree.Spans[0].Detail != "a" || tree.Spans[0].Count != 2 {
		t.Fatalf("node a = %+v", tree.Spans[0])
	}
	if tree.Spans[1].Detail != "b" || tree.Spans[1].Count != 0 {
		t.Fatalf("node b = %+v", tree.Spans[1])
	}
}

// TestConcurrentSpans exercises the tracer under the shape the suite
// pool produces: many goroutines opening and closing spans against
// one tracer. Run with -race in CI.
func TestConcurrentSpans(t *testing.T) {
	ctx, tr := NewTracer(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx, w := Start(ctx, StageWorkload)
			for j := 0; j < 50; j++ {
				StartChild(wctx, StageDRAMDrain).End()
			}
			w.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	tree := tr.Tree()
	if len(tree.Spans) != 1 || tree.Spans[0].Count != 8 {
		t.Fatalf("merged workload node = %+v", tree.Spans)
	}
	if len(tree.Spans[0].Spans) != 1 || tree.Spans[0].Spans[0].Count != 400 {
		t.Fatalf("merged drain node = %+v", tree.Spans[0].Spans)
	}
}

func TestOnEndHook(t *testing.T) {
	ctx, tr := NewTracer(context.Background(), "request")
	var mu sync.Mutex
	got := map[string]int{}
	tr.OnEnd = func(name string, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s", name)
		}
		mu.Lock()
		got[name]++
		mu.Unlock()
	}
	StartChild(ctx, StageCompute).End()
	sp := StartChild(ctx, StageCacheGet)
	sp.End()
	sp.End() // idempotent: must not re-fire the hook
	tr.Finish()
	tr.Finish() // idempotent: root fires once
	want := map[string]int{StageCompute: 1, StageCacheGet: 1, "request": 1}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("OnEnd[%s] = %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
}

func TestFinishRetiresActiveCount(t *testing.T) {
	before := active.Load()
	_, tr := NewTracer(context.Background(), "a")
	if active.Load() != before+1 {
		t.Fatalf("active = %d after NewTracer, want %d", active.Load(), before+1)
	}
	tr.Finish()
	tr.Finish()
	if active.Load() != before {
		t.Fatalf("active = %d after Finish, want %d", active.Load(), before)
	}
}

func TestDetach(t *testing.T) {
	// Disabled: Detach drops everything but stays cheap.
	if got := Detach(context.WithValue(context.Background(), spanKey{}, &Span{})); got.Value(spanKey{}) != nil && active.Load() == 0 {
		t.Fatal("disabled Detach kept a span")
	}

	ctx := WithRequestID(context.Background(), "req-42")
	ctx, tr := NewTracer(ctx, "request")
	defer tr.Finish()
	cctx, cancel := context.WithCancel(ctx)
	cancel()

	d := Detach(cctx)
	if d.Err() != nil {
		t.Fatal("detached context inherited cancellation")
	}
	if _, ok := d.Deadline(); ok {
		t.Fatal("detached context inherited a deadline")
	}
	if RequestID(d) != "req-42" {
		t.Fatalf("request ID = %q, want req-42", RequestID(d))
	}
	// Spans opened on the detached context still land in the trace.
	StartChild(d, StageCompute).End()
	tree := tr.Tree()
	if len(tree.Spans) != 1 || tree.Spans[0].Name != StageCompute {
		t.Fatalf("detached span missing: %+v", tree.Spans)
	}
}

func TestRequestID(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Fatal("empty context has a request ID")
	}
	ctx := WithRequestID(context.Background(), "abc")
	if RequestID(ctx) != "abc" {
		t.Fatalf("RequestID = %q", RequestID(ctx))
	}
}

func TestJSONExport(t *testing.T) {
	ctx, tr := NewTracer(context.Background(), "seda-sweep")
	StartChild(ctx, StageSuite).End()
	tr.Finish()

	var tree SpanJSON
	if err := json.Unmarshal(tr.JSON(), &tree); err != nil {
		t.Fatalf("compact JSON: %v", err)
	}
	if tree.Name != "seda-sweep" || len(tree.Spans) != 1 {
		t.Fatalf("tree = %+v", tree)
	}

	var buf strings.Builder
	if err := tr.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n  ") {
		t.Fatal("WriteJSON(indent) produced no indentation")
	}
}

// TestExportRacesDetachedWork: exporting while spans are still open
// must not block or corrupt — unended spans read as running-until-now.
func TestExportRacesDetachedWork(t *testing.T) {
	ctx, tr := NewTracer(context.Background(), "request")
	sp := StartChild(ctx, StageCompute)
	tr.Finish() // request over; compute still running
	tree := tr.Tree()
	if len(tree.Spans) != 1 || tree.Spans[0].Ms < 0 {
		t.Fatalf("open span export = %+v", tree.Spans)
	}
	sp.End() // late end is a no-op beyond bookkeeping
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Finish()
	if tr.Root() != nil {
		t.Fatal("nil tracer has a root")
	}
	if tree := tr.Tree(); tree.Name != "" {
		t.Fatalf("nil tracer tree = %+v", tree)
	}
	var sp *Span
	sp.End()
	sp.SetDetail("x")
	if sp.Name() != "" {
		t.Fatal("nil span has a name")
	}
}
