package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format this registry writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// DurationBuckets are the fixed histogram bounds (seconds) shared by
// the request/stage/compute duration histograms: half a millisecond
// (a warm cache hit) through a minute (a cold full-suite sweep on the
// edge NPU takes ~4 s; explore confirmation loops can run tens of
// seconds), roughly 2.5x apart.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Label is one name="value" pair on a series.
type Label struct{ Name, Value string }

// Registry is a minimal Prometheus-text metric registry: counters,
// gauges and fixed-bucket histograms, each series carrying optional
// constant labels, written in exposition format 0.0.4 with one
// HELP/TYPE block per family. Registration panics on misuse
// (programmer error: invalid name, type conflict, duplicate series);
// observation methods are lock-free atomics safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          []*series
}

type series struct {
	labels string // rendered {a="b"} form, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter is a monotonically increasing integer series.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value. It exists for mirror counters — series
// whose source of truth is an external monotonic counter (rescache
// stats snapshots) copied in at scrape time — and must only be used
// with monotonic sources.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// FloatCounter is a float-valued counter (e.g. cumulative GC pause
// seconds). Same storage as Gauge; registered with counter type so
// the exposition and the linter treat it as monotonic.
type FloatCounter = Gauge

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observations are three
// atomic adds; no locks on the observe path.
type Histogram struct {
	bounds   []float64 // ascending upper bounds, +Inf implicit
	counts   []atomic.Uint64
	count    atomic.Uint64
	sumMicro atomic.Int64 // sum in micro-units to keep the hot path lock-free
}

// Observe records v (must be >= 0 for sane bucket semantics).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(int64(math.Round(v * 1e6)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations (micro-unit precision).
func (h *Histogram) Sum() float64 { return float64(h.sumMicro.Load()) / 1e6 }

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Counter registers (or returns the existing) counter series name
// with the given constant labels. By convention name must end in
// _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels)
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// FloatCounter registers (or returns the existing) float-valued
// counter series. Same _total naming rule as Counter; the caller is
// responsible for monotonicity.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	s := r.register(name, help, "counter", labels)
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "gauge", labels)
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram series with
// the given bucket upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, "histogram", labels)
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// HistogramVec is a histogram family keyed by one variable label,
// series created on first use. Keep the label's value set bounded
// (endpoint paths, stage names) — every value is a live series.
type HistogramVec struct {
	r      *Registry
	name   string
	help   string
	label  string
	bounds []float64

	mu sync.RWMutex
	m  map[string]*Histogram
}

// HistogramVec registers a histogram family with one variable label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	r.mustFamily(name, help, "histogram")
	return &HistogramVec{r: r, name: name, help: help, label: label,
		bounds: bounds, m: make(map[string]*Histogram)}
}

// With returns the histogram for the given label value, creating the
// series on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[value]; ok {
		return h
	}
	h = v.r.Histogram(v.name, v.help, v.bounds, Label{v.label, value})
	v.m[value] = h
	return h
}

// register finds or creates the (family, series) pair.
func (r *Registry) register(name, help, typ string, labels []Label) *series {
	f := r.mustFamily(name, help, typ)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.series {
		if s.labels == ls {
			return s
		}
	}
	s := &series{labels: ls}
	f.series = append(f.series, s)
	return s
}

func (r *Registry) mustFamily(name, help, typ string) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		panic("obs: counter " + name + " must end in _total")
	}
	if typ == "gauge" && strings.HasSuffix(name, "_total") {
		panic("obs: gauge " + name + " must not end in _total")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		return f
	}
	if f.typ != typ || f.help != help {
		panic("obs: conflicting registration for " + name)
	}
	return f
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validLabelName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteProm writes every registered family in exposition format
// 0.0.4: families sorted by name, one HELP/TYPE block each, series
// sorted by label string, histograms expanded to cumulative _bucket
// lines plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range series {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
			case s.h != nil:
				writeHistogram(&b, f.name, s.labels, s.h)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.count.Load())
}

// bucketLabels splices le="bound" into an existing label set.
func bucketLabels(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}
