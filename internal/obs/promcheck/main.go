// Command promcheck validates a Prometheus text exposition stream on
// stdin through the strict parser in internal/obs — the CI obs-smoke
// job pipes `curl /metrics` through it instead of grepping. Exit 0
// means the stream parses, passes the naming lint, and satisfies
// every assertion argument:
//
//	promcheck [assertion...] < metrics.txt
//
//	counter:NAME     family NAME is a counter with value > 0
//	                 (unlabeled series, or sum over all series)
//	gauge:NAME       family NAME is a gauge (any value)
//	hist:NAME        family NAME is a histogram with total
//	                 observation count > 0 across its series
//
// Example:
//
//	curl -sf "$ADDR/metrics" | go run repro/internal/obs/promcheck \
//	  hist:seda_request_duration_seconds counter:seda_http_requests_total
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	fams, err := obs.ParseProm(os.Stdin)
	if err != nil {
		fail("exposition parse: %v", err)
	}
	if issues := obs.LintProm(fams); len(issues) > 0 {
		fail("naming lint:\n  %s", strings.Join(issues, "\n  "))
	}
	for _, arg := range os.Args[1:] {
		kind, name, ok := strings.Cut(arg, ":")
		if !ok {
			fail("bad assertion %q (want kind:name)", arg)
		}
		fam := fams[name]
		if fam == nil {
			fail("%s: family not exposed", name)
		}
		switch kind {
		case "counter":
			if fam.Type != "counter" {
				fail("%s: type %s, want counter", name, fam.Type)
			}
			var sum float64
			for _, s := range fam.Samples {
				sum += s.Value
			}
			if sum <= 0 {
				fail("%s: counter is zero", name)
			}
		case "gauge":
			if fam.Type != "gauge" {
				fail("%s: type %s, want gauge", name, fam.Type)
			}
			if len(fam.Samples) == 0 {
				fail("%s: gauge has no series", name)
			}
		case "hist":
			if fam.Type != "histogram" {
				fail("%s: type %s, want histogram", name, fam.Type)
			}
			var count float64
			for _, s := range fam.Samples {
				if s.Name == name+"_count" {
					count += s.Value
				}
			}
			if count <= 0 {
				fail("%s: histogram has no observations", name)
			}
		default:
			fail("unknown assertion kind %q", kind)
		}
	}
	fmt.Printf("promcheck: %d families ok, %d assertions pass\n", len(fams), len(os.Args)-1)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
