package obs

import (
	"runtime"
	"runtime/debug"
)

// Build identifies the running binary: Go toolchain, main module
// version, and VCS revision when the binary was built from a git
// checkout. Fields the build info does not carry (module version of
// a plain `go build`, revision of a test binary) are "unknown" so
// the seda_build_info labels and the -version output never hold
// empty strings.
type Build struct {
	GoVersion     string
	ModuleVersion string
	Revision      string
	Dirty         bool
}

// ReadBuild extracts Build from debug.ReadBuildInfo.
func ReadBuild() Build {
	b := Build{GoVersion: runtime.Version(), ModuleVersion: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.ModuleVersion = v
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) >= 12 {
				b.Revision = s.Value[:12]
			} else if s.Value != "" {
				b.Revision = s.Value
			}
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// RuntimeGauges is the set of Go runtime series a scrape refreshes:
// call Collect under the scrape handler just before writing the
// registry. Pull-time collection keeps the steady state free of any
// background sampling goroutine.
type RuntimeGauges struct {
	Goroutines   *Gauge
	HeapAlloc    *Gauge
	HeapSys      *Gauge
	GCPauseTotal *FloatCounter
	GCRuns       *Counter
}

// NewRuntimeGauges registers the runtime series on r.
func NewRuntimeGauges(r *Registry) *RuntimeGauges {
	return &RuntimeGauges{
		Goroutines: r.Gauge("seda_go_goroutines",
			"Number of live goroutines."),
		HeapAlloc: r.Gauge("seda_go_heap_alloc_bytes",
			"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc)."),
		HeapSys: r.Gauge("seda_go_heap_sys_bytes",
			"Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys)."),
		GCPauseTotal: r.FloatCounter("seda_go_gc_pause_seconds_total",
			"Cumulative stop-the-world GC pause time."),
		GCRuns: r.Counter("seda_go_gc_runs_total",
			"Completed GC cycles."),
	}
}

// Collect refreshes every runtime series from one MemStats read.
func (rg *RuntimeGauges) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rg.Goroutines.Set(float64(runtime.NumGoroutine()))
	rg.HeapAlloc.Set(float64(ms.HeapAlloc))
	rg.HeapSys.Set(float64(ms.HeapSys))
	rg.GCPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	rg.GCRuns.Set(uint64(ms.NumGC))
}
