package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consuming half of the exposition format: a strict
// parser plus a conventions linter. The serving tests and the CI
// obs-smoke job read /metrics through it instead of grepping
// substrings, so a malformed HELP line, a non-cumulative bucket or a
// counter that silently becomes a gauge fails loudly.

// PromFamily is one parsed metric family. For histograms the Samples
// hold the expanded _bucket/_sum/_count series.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// PromSample is one sample line.
type PromSample struct {
	Name   string // full sample name (may carry _bucket/_sum/_count)
	Labels map[string]string
	Value  float64
}

// ParseProm parses Prometheus text exposition format 0.0.4 strictly:
// every family must declare HELP and TYPE before its samples, sample
// names must belong to a declared family, duplicate series are
// errors, and histogram bucket series must be cumulative,
// +Inf-terminated and consistent with _count. It returns families
// keyed by name.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	seen := make(map[string]bool) // name+rendered labels, duplicate detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMeta(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		fam := familyFor(fams, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no declared family", lineno, s.Name)
		}
		if fam.Type == "" || fam.Help == "" {
			return nil, fmt.Errorf("line %d: family %s missing HELP or TYPE before samples", lineno, fam.Name)
		}
		key := s.Name + renderSampleLabels(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineno, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func parseMeta(line string, fams map[string]*PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	fam := fams[name]
	if fam == nil {
		fam = &PromFamily{Name: name}
		fams[name] = fam
	}
	switch fields[1] {
	case "HELP":
		if fam.Help != "" {
			return fmt.Errorf("repeated HELP for %s", name)
		}
		if len(fields) < 4 || fields[3] == "" {
			return fmt.Errorf("empty HELP for %s", name)
		}
		fam.Help = fields[3]
	case "TYPE":
		if fam.Type != "" {
			return fmt.Errorf("repeated TYPE for %s", name)
		}
		if len(fam.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after samples", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		fam.Type = typ
	}
	return nil
}

// familyFor maps a sample name to its declared family, resolving
// histogram suffixes (x_bucket/x_sum/x_count belong to family x).
func familyFor(fams map[string]*PromFamily, sample string) *PromFamily {
	if f, ok := fams[sample]; ok && f.Type != "histogram" {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f, ok := fams[base]; ok && f.Type == "histogram" {
				return f
			}
		}
	}
	if f, ok := fams[sample]; ok {
		return f
	}
	return nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabelSet(rest)
		if err != nil {
			return s, fmt.Errorf("%s: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; this
	// registry never writes one, so reject it as unexpected.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("%s: unexpected trailing fields in %q", s.Name, rest)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("%s: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabelSet parses a {k="v",...} block starting at text[0] == '{'
// and returns the index just past the closing brace.
func parseLabelSet(text string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(text) && (text[i] == ',' || text[i] == ' ') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(text) && text[j] != '=' {
			j++
		}
		if j >= len(text) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		name := text[i:j]
		if !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		if j+1 >= len(text) || text[j+1] != '"' {
			return 0, nil, fmt.Errorf("label %s: value not quoted", name)
		}
		val, n, err := parseQuoted(text[j+1:])
		if err != nil {
			return 0, nil, fmt.Errorf("label %s: %w", name, err)
		}
		labels[name] = val
		i = j + 1 + n
	}
}

// parseQuoted consumes a "..." string with \\, \" and \n escapes,
// returning the decoded value and bytes consumed.
func parseQuoted(text string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(text); i++ {
		switch text[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(text) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch text[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", text[i])
			}
		default:
			b.WriteByte(text[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}

func parseValue(raw string) (float64, error) {
	switch raw {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(raw, 64)
}

// checkHistogram validates one histogram family: per label set, the
// bucket counts must be cumulative and non-decreasing, the last
// bucket must be le="+Inf", and its count must equal _count.
func checkHistogram(fam *PromFamily) error {
	type hist struct {
		bounds []float64 // parsed le values, in sample order
		counts []float64
		sum    float64
		count  float64
		hasSum bool
		hasCnt bool
	}
	series := map[string]*hist{}
	get := func(labels map[string]string) *hist {
		key := renderSampleLabels(labels)
		h := series[key]
		if h == nil {
			h = &hist{}
			series[key] = h
		}
		return h
	}
	for _, s := range fam.Samples {
		switch {
		case s.Name == fam.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", fam.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", fam.Name, le)
			}
			rest := map[string]string{}
			for k, v := range s.Labels {
				if k != "le" {
					rest[k] = v
				}
			}
			h := get(rest)
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, s.Value)
		case s.Name == fam.Name+"_sum":
			h := get(s.Labels)
			h.sum, h.hasSum = s.Value, true
		case s.Name == fam.Name+"_count":
			h := get(s.Labels)
			h.count, h.hasCnt = s.Value, true
		default:
			return fmt.Errorf("%s: stray sample %s in histogram family", fam.Name, s.Name)
		}
	}
	for key, h := range series {
		if len(h.bounds) == 0 || !h.hasSum || !h.hasCnt {
			return fmt.Errorf("%s%s: incomplete histogram", fam.Name, key)
		}
		if !sort.Float64sAreSorted(h.bounds) {
			return fmt.Errorf("%s%s: bucket bounds out of order", fam.Name, key)
		}
		if !math.IsInf(h.bounds[len(h.bounds)-1], 1) {
			return fmt.Errorf("%s%s: missing le=\"+Inf\" bucket", fam.Name, key)
		}
		for i := 1; i < len(h.counts); i++ {
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("%s%s: bucket counts not cumulative", fam.Name, key)
			}
		}
		if h.counts[len(h.counts)-1] != h.count {
			return fmt.Errorf("%s%s: +Inf bucket %v != count %v", fam.Name, key, h.counts[len(h.counts)-1], h.count)
		}
	}
	return nil
}

func renderSampleLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// LintProm audits parsed families against Prometheus naming
// conventions and returns a list of issues (empty = clean): counters
// must end in _total, gauges and histograms must not, duration and
// size families must use base units (_seconds/_bytes, not _ms/_kb),
// and every family needs HELP.
func LintProm(fams map[string]*PromFamily) []string {
	var issues []string
	for _, fam := range fams {
		if fam.Help == "" {
			issues = append(issues, fam.Name+": missing HELP")
		}
		if fam.Type == "" {
			issues = append(issues, fam.Name+": missing TYPE")
		}
		switch fam.Type {
		case "counter":
			if !strings.HasSuffix(fam.Name, "_total") {
				issues = append(issues, fam.Name+": counter without _total suffix")
			}
		case "gauge", "histogram":
			if strings.HasSuffix(fam.Name, "_total") {
				issues = append(issues, fam.Name+": "+fam.Type+" with _total suffix")
			}
		}
		for _, bad := range []string{"_ms", "_millis", "_milliseconds", "_kb", "_mb", "_nanos", "_nanoseconds"} {
			if strings.HasSuffix(strings.TrimSuffix(fam.Name, "_total"), bad) {
				issues = append(issues, fam.Name+": non-base unit suffix "+bad)
			}
		}
	}
	sort.Strings(issues)
	return issues
}

// CounterTotals flattens parsed families to one number per counter
// family, summing samples across label sets — the shape a load
// generator or smoke script wants when attributing before/after deltas
// to traffic (per-replica constant labels and per-route label values
// collapse into the fleet-wide total). Non-counter families are
// skipped; histograms are exposed through their own accessors.
func CounterTotals(fams map[string]*PromFamily) map[string]float64 {
	totals := make(map[string]float64)
	for name, fam := range fams {
		if fam.Type != "counter" {
			continue
		}
		sum := 0.0
		for _, s := range fam.Samples {
			sum += s.Value
		}
		totals[name] = sum
	}
	return totals
}

// Sample returns the sample of family fam whose labels exactly match
// want (nil matches the unlabeled series), or false.
func (fam *PromFamily) Sample(name string, want map[string]string) (PromSample, bool) {
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		if len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return PromSample{}, false
}

// Value returns the value of the family's sample matching name and
// labels, or an error naming what is missing.
func (fam *PromFamily) Value(name string, labels map[string]string) (float64, error) {
	s, ok := fam.Sample(name, labels)
	if !ok {
		return 0, fmt.Errorf("%s: no sample %s%s", fam.Name, name, renderSampleLabels(labels))
	}
	return s.Value, nil
}

// HistCount returns the _count of the histogram family's series with
// the given labels (nil = unlabeled).
func (fam *PromFamily) HistCount(labels map[string]string) (float64, error) {
	return fam.Value(fam.Name+"_count", labels)
}
