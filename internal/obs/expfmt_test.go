package obs

import (
	"strings"
	"testing"
)

func parse(t *testing.T, text string) map[string]*PromFamily {
	t.Helper()
	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	return fams
}

func mustFail(t *testing.T, text, wantSub string) {
	t.Helper()
	_, err := ParseProm(strings.NewReader(text))
	if err == nil {
		t.Fatalf("ParseProm accepted malformed input:\n%s", text)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestParseWellFormed(t *testing.T) {
	fams := parse(t, `
# HELP seda_http_requests_total Requests.
# TYPE seda_http_requests_total counter
seda_http_requests_total 3
# HELP seda_cache_inflight Inflight computes.
# TYPE seda_cache_inflight gauge
seda_cache_inflight 0
# HELP seda_request_duration_seconds Request latency.
# TYPE seda_request_duration_seconds histogram
seda_request_duration_seconds_bucket{path="/v1/sweep",le="0.1"} 1
seda_request_duration_seconds_bucket{path="/v1/sweep",le="+Inf"} 2
seda_request_duration_seconds_sum{path="/v1/sweep"} 0.3
seda_request_duration_seconds_count{path="/v1/sweep"} 2
`)
	if len(fams) != 3 {
		t.Fatalf("families = %d", len(fams))
	}
	if v, err := fams["seda_http_requests_total"].Value("seda_http_requests_total", nil); err != nil || v != 3 {
		t.Fatalf("requests = %v err=%v", v, err)
	}
	n, err := fams["seda_request_duration_seconds"].HistCount(map[string]string{"path": "/v1/sweep"})
	if err != nil || n != 2 {
		t.Fatalf("hist count = %v err=%v", n, err)
	}
	if issues := LintProm(fams); len(issues) != 0 {
		t.Fatalf("lint issues on clean input: %v", issues)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ name, text, wantSub string }{
		{"sample without family", "seda_x_total 1\n", "no declared family"},
		{"sample before TYPE", "# HELP seda_x_total h\nseda_x_total 1\n", "missing HELP or TYPE"},
		{"unknown type", "# HELP x h\n# TYPE x banana\n", "unknown TYPE"},
		{"repeated HELP", "# HELP x h\n# HELP x h\n", "repeated HELP"},
		{"duplicate series", "# HELP x_total h\n# TYPE x_total counter\nx_total 1\nx_total 2\n", "duplicate series"},
		{"bad value", "# HELP x h\n# TYPE x gauge\nx pony\n", "bad value"},
		{"bad label name", "# HELP x h\n# TYPE x gauge\nx{__reserved=\"v\"} 1\n", "invalid label name"},
		{"unterminated labels", "# HELP x h\n# TYPE x gauge\nx{a=\"v\" 1\n", "unterminated"},
		{"bad escape", "# HELP x h\n# TYPE x gauge\nx{a=\"\\q\"} 1\n", "bad escape"},
		{"trailing timestamp", "# HELP x h\n# TYPE x gauge\nx 1 123456\n", "trailing"},
		{"non-cumulative buckets", `# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 5
h_seconds_bucket{le="+Inf"} 3
h_seconds_sum 1
h_seconds_count 3
`, "not cumulative"},
		{"missing +Inf", `# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 1
h_seconds_sum 1
h_seconds_count 1
`, "+Inf"},
		{"count mismatch", `# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 1
h_seconds_count 3
`, "!= count"},
		{"incomplete histogram", `# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 2
`, "incomplete"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { mustFail(t, c.text, c.wantSub) })
	}
}

func TestParseEscapedLabels(t *testing.T) {
	fams := parse(t, `# HELP seda_build_info b
# TYPE seda_build_info gauge
seda_build_info{revision="a\"b\\c\nd"} 1
`)
	want := "a\"b\\c\nd"
	if _, ok := fams["seda_build_info"].Sample("seda_build_info", map[string]string{"revision": want}); !ok {
		t.Fatalf("escaped label did not decode: %+v", fams["seda_build_info"].Samples)
	}
}

func TestLintFindings(t *testing.T) {
	fams := map[string]*PromFamily{
		"bad_counter":     {Name: "bad_counter", Help: "h", Type: "counter"},
		"bad_gauge_total": {Name: "bad_gauge_total", Help: "h", Type: "gauge"},
		"helpless":        {Name: "helpless", Type: "gauge"},
		"latency_ms":      {Name: "latency_ms", Help: "h", Type: "histogram"},
		"clean_ok_total":  {Name: "clean_ok_total", Help: "h", Type: "counter"},
	}
	issues := LintProm(fams)
	for _, want := range []string{
		"bad_counter: counter without _total suffix",
		"bad_gauge_total: gauge with _total suffix",
		"helpless: missing HELP",
		"latency_ms: non-base unit suffix _ms",
	} {
		found := false
		for _, is := range issues {
			if is == want {
				found = true
			}
		}
		if !found {
			t.Errorf("lint missed %q (got %v)", want, issues)
		}
	}
	for _, is := range issues {
		if strings.HasPrefix(is, "clean_ok_total") {
			t.Errorf("false positive: %s", is)
		}
	}
}

func TestValueErrors(t *testing.T) {
	fams := parse(t, "# HELP g h\n# TYPE g gauge\ng 1\n")
	if _, err := fams["g"].Value("g", map[string]string{"missing": "x"}); err == nil {
		t.Fatal("Value with unmatched labels did not error")
	}
}

func TestCounterTotals(t *testing.T) {
	fams := parse(t, `# HELP reqs_total r
# TYPE reqs_total counter
reqs_total{route="/a"} 3
reqs_total{route="/b"} 4
# HELP up u
# TYPE up gauge
up 1
# HELP lat l
# TYPE lat histogram
lat_bucket{le="1"} 2
lat_bucket{le="+Inf"} 2
lat_sum 0.5
lat_count 2
`)
	totals := CounterTotals(fams)
	if got := totals["reqs_total"]; got != 7 {
		t.Fatalf("reqs_total = %v, want 7 (summed across label sets)", got)
	}
	if _, ok := totals["up"]; ok {
		t.Fatal("gauge leaked into counter totals")
	}
	if _, ok := totals["lat"]; ok {
		t.Fatal("histogram leaked into counter totals")
	}
	if len(totals) != 1 {
		t.Fatalf("totals = %v, want exactly the counter family", totals)
	}
}
