// Package obs is the repo's dependency-free observability layer:
// stage tracing (span trees carried on the context), a Prometheus
// text-format metrics registry, an exposition-format parser for
// tests and smoke checks, request-ID plumbing, and build info.
//
// The design constraint, inherited from internal/failpoint, is a
// zero-cost disabled path: until some goroutine creates a Tracer,
// every instrumentation site in the pipeline costs exactly one atomic
// load and allocates nothing (pinned by an alloc guard in the tests
// and by the BenchmarkRunTrace/BenchmarkRunSuite rows in
// BENCH_PIPELINE.json). Tracing is opt-in per root: seda-serve
// attaches a Tracer to each request, seda-sweep/seda-sim behind
// -timing; batch callers that never opt in run the exact pre-obs
// hot path.
//
// Span names come from the Stage* constants — a fixed taxonomy, so
// they are safe to use as metric label values. Variable context
// (workload name, scheme name) goes in the span detail, which is
// never used as a label.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names: the fixed span taxonomy. Instrumentation sites must
// use these constants (bounded cardinality — seda-serve feeds span
// names into the seda_stage_duration_seconds{stage=...} histogram).
const (
	StageSuite        = "suite"             // one NPU x workload-set evaluation (seda.runSuiteWith)
	StageWorkload     = "workload"          // one workload dispatch in the suite pool
	StageScalesim     = "scalesim"          // systolic-array schedule (scalesim.SimulateNetwork)
	StageProtect      = "protect"           // protection walk (memprot.ProtectAllArenaCtx)
	StageProtectLayer = "protect.layer"     // one layer of the protection walk
	StageAuthblock    = "authblock.search"  // SeDA auth-block geometry search
	StageDRAM         = "dram"              // one scheme's DRAM timing loop (seda.runScheme)
	StageDRAMDrain    = "dram.drain"        // one layer's overlay explode/drain (dram.RunOverlayCtx)
	StageCacheGet     = "rescache.get"      // cache lookup incl. coalesced wait
	StageCacheDisk    = "rescache.disk"     // disk-layer read or write
	StageCompute      = "rescache.compute"  // fresh evaluation under the cache
	StageCalibrate    = "explore.calibrate" // surrogate calibration runs
	StageSurrogate    = "explore.surrogate" // analytic surrogate pass over the grid
	StageConfirm      = "explore.confirm"   // cycle-accurate confirmation loop
)

// active counts live (unfinished) Tracers process-wide. It is the
// disabled fast path: Start/StartChild/Detach return immediately
// after one atomic load when it is zero.
var active atomic.Int32

// Enabled reports whether any Tracer is live in the process. It is a
// snapshot, useful only for skipping optional work (e.g. building a
// span detail string); correctness never depends on it.
func Enabled() bool { return active.Load() != 0 }

// Tracer owns one span tree. Create with NewTracer, release with
// Finish. All methods are safe for concurrent use by the goroutines
// of one request; OnEnd must be set before the first span ends.
type Tracer struct {
	// OnEnd, when non-nil, is called after every span ends (including
	// the root, on Finish) with its stage name and duration. It runs
	// outside the tracer lock and must be safe for concurrent use —
	// seda-serve points it at the stage-duration histograms. Set it
	// immediately after NewTracer, before spans end.
	OnEnd func(name string, d time.Duration)

	mu       sync.Mutex
	root     *Span
	finished bool
}

// Span is one timed node of a Tracer's tree. The zero value is not
// used; a nil *Span is the disabled form and every method on it is a
// no-op, so call sites never branch.
type Span struct {
	tr       *Tracer
	name     string
	detail   string
	start    time.Time
	dur      time.Duration
	children []*Span
	ended    bool
}

// spanKey carries the current *Span on the context.
type spanKey struct{}

// ridKey carries the request ID on the context.
type ridKey struct{}

// NewTracer creates a live Tracer whose root span is named name,
// returning a context that carries the root. The caller must call
// Finish exactly once; until then every instrumentation site in the
// process pays the armed (still cheap, but nonzero) path.
func NewTracer(ctx context.Context, name string) (context.Context, *Tracer) {
	t := &Tracer{}
	t.root = &Span{tr: t, name: name, start: time.Now()}
	active.Add(1)
	return context.WithValue(ctx, spanKey{}, t.root), t
}

// Finish ends the root span (if still open) and retires the Tracer
// from the process-wide active count. Idempotent. Spans reached by
// detached work (e.g. a cache compute that outlives its request) may
// still End afterwards; they simply no longer appear in exports
// taken before they ended.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	root := t.root
	ended := root.ended
	if !ended {
		root.ended = true
		root.dur = time.Since(root.start)
	}
	dur := root.dur
	cb := t.OnEnd
	t.mu.Unlock()
	if !ended && cb != nil {
		cb(root.name, dur)
	}
	active.Add(-1)
}

// Root returns the root span.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a child span of the span carried by ctx and returns a
// derived context carrying the new span, for stages that have
// instrumented substages. When no tracer is live (one atomic load)
// or ctx carries no span, it returns (ctx, nil) unchanged and
// allocates nothing.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if active.Load() == 0 {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.newChild(parent, name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartChild is Start for leaf stages: it opens a child span without
// deriving a new context, so the per-call cost when tracing is the
// span allocation alone. Same disabled path as Start.
func StartChild(ctx context.Context, name string) *Span {
	if active.Load() == 0 {
		return nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return nil
	}
	return parent.tr.newChild(parent, name)
}

func (t *Tracer) newChild(parent *Span, name string) *Span {
	sp := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	parent.children = append(parent.children, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span. Nil-safe and idempotent; fires the tracer's
// OnEnd hook.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	t := sp.tr
	t.mu.Lock()
	if sp.ended {
		t.mu.Unlock()
		return
	}
	sp.ended = true
	sp.dur = time.Since(sp.start)
	dur := sp.dur
	cb := t.OnEnd
	t.mu.Unlock()
	if cb != nil {
		cb(sp.name, dur)
	}
}

// SetDetail attaches variable context (workload name, scheme name) to
// the span. Details appear in JSON exports but never in metric
// labels. Nil-safe.
func (sp *Span) SetDetail(d string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.detail = d
	sp.tr.mu.Unlock()
}

// Detach returns a fresh context carrying only the observability
// state of ctx — the current span and request ID, none of the
// deadline or cancellation. rescache uses it to parent the spans of
// a detached compute (which runs under its own lifetime) into the
// leading request's trace. When no tracer is live it returns
// context.Background() after one atomic load.
func Detach(ctx context.Context) context.Context {
	out := context.Background()
	if id, ok := ctx.Value(ridKey{}).(string); ok {
		out = context.WithValue(out, ridKey{}, id)
	}
	if active.Load() == 0 {
		return out
	}
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok {
		out = context.WithValue(out, spanKey{}, sp)
	}
	return out
}

// WithRequestID returns a context carrying the request ID, readable
// with RequestID. Propagated by Detach into detached computes so
// error logs deep in the cache can name the request that led them.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// SpanJSON is the export form of one span-tree node. Same-named
// same-detail siblings are merged at export: Count carries how many
// spans the node folds together and Ms their summed duration, so a
// 96-layer protection walk exports as one protect.layer node rather
// than 96.
type SpanJSON struct {
	Name   string     `json:"name"`
	Detail string     `json:"detail,omitempty"`
	Count  int        `json:"count,omitempty"` // omitted when 1
	Ms     float64    `json:"ms"`
	Spans  []SpanJSON `json:"spans,omitempty"`
}

// Tree snapshots the span tree in export form. Unended spans (export
// can race detached work) are measured as running until now.
func (t *Tracer) Tree() SpanJSON {
	if t == nil {
		return SpanJSON{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	return exportSpan(t.root, now)
}

func exportSpan(sp *Span, now time.Time) SpanJSON {
	out := SpanJSON{Name: sp.name, Detail: sp.detail, Ms: roundMs(sp.durationAt(now))}
	if len(sp.children) > 0 {
		out.Spans = mergeChildren(sp.children, now)
	}
	return out
}

// Name returns the span's stage name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

func (sp *Span) durationAt(now time.Time) time.Duration {
	if sp.ended {
		return sp.dur
	}
	return now.Sub(sp.start)
}

// mergeChildren folds same-named same-detail siblings into one node
// (count + summed duration, children concatenated then merged
// recursively), preserving first-appearance order.
func mergeChildren(children []*Span, now time.Time) []SpanJSON {
	type group struct {
		count    int
		dur      time.Duration
		children []*Span
	}
	var order []string
	groups := make(map[string]*group)
	for _, c := range children {
		key := c.name + "\x00" + c.detail
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.count++
		g.dur += c.durationAt(now)
		g.children = append(g.children, c.children...)
	}
	out := make([]SpanJSON, 0, len(order))
	for _, key := range order {
		g := groups[key]
		name, detail, _ := cutNul(key)
		node := SpanJSON{Name: name, Detail: detail, Ms: roundMs(g.dur)}
		if g.count > 1 {
			node.Count = g.count
		}
		if len(g.children) > 0 {
			node.Spans = mergeChildren(g.children, now)
		}
		out = append(out, node)
	}
	return out
}

func cutNul(key string) (before, after string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}

// roundMs renders a duration in milliseconds at microsecond
// precision — readable in a debug header without drowning in digits.
func roundMs(d time.Duration) float64 {
	return math.Round(d.Seconds()*1e6) / 1e3
}

// JSON returns the compact JSON encoding of the span tree (the
// X-Seda-Timing header payload).
func (t *Tracer) JSON() []byte {
	b, err := json.Marshal(t.Tree())
	if err != nil { // unreachable: SpanJSON has no unmarshalable fields
		return []byte("{}")
	}
	return b
}

// WriteJSON writes the span tree to w, indented when indent is set
// (the seda-sweep -timing output).
func (t *Tracer) WriteJSON(w io.Writer, indent bool) error {
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(t.Tree())
}
