package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// roundTrip writes the registry and re-reads it through the strict
// parser — every registry test doubles as a writer/parser
// compatibility test.
func roundTrip(t *testing.T, r *Registry) map[string]*PromFamily {
	t.Helper()
	var buf strings.Builder
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("registry output does not parse: %v\n%s", err, buf.String())
	}
	if issues := LintProm(fams); len(issues) > 0 {
		t.Fatalf("registry output fails lint: %v", issues)
	}
	return fams
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("seda_test_events_total", "Test events.")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Set(7) // mirror-counter path
	g := r.Gauge("seda_test_depth", "Test depth.")
	g.Set(1.5)
	fc := r.FloatCounter("seda_test_pause_seconds_total", "Test pause.")
	fc.Set(0.25)

	fams := roundTrip(t, r)
	if v, _ := fams["seda_test_events_total"].Value("seda_test_events_total", nil); v != 7 {
		t.Fatalf("parsed counter = %v", v)
	}
	if v, _ := fams["seda_test_depth"].Value("seda_test_depth", nil); v != 1.5 {
		t.Fatalf("parsed gauge = %v", v)
	}
	if v, _ := fams["seda_test_pause_seconds_total"].Value("seda_test_pause_seconds_total", nil); v != 0.25 {
		t.Fatalf("parsed float counter = %v", v)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("seda_x_total", "X.")
	b := r.Counter("seda_x_total", "X.")
	if a != b {
		t.Fatal("same registration returned different counters")
	}
	l1 := r.Gauge("seda_y", "Y.", Label{"k", "1"})
	l2 := r.Gauge("seda_y", "Y.", Label{"k", "2"})
	if l1 == l2 {
		t.Fatal("distinct label values share a series")
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	for name, f := range map[string]func(){
		"invalid name":        func() { r.Counter("9bad_total", "h") },
		"counter sans _total": func() { r.Counter("seda_things", "h") },
		"gauge with _total":   func() { r.Gauge("seda_things_total", "h") },
		"type conflict":       func() { r.Counter("seda_a_total", "h"); r.Gauge("seda_a_total", "h") },
		"help conflict":       func() { r.Gauge("seda_b", "h1"); r.Gauge("seda_b", "h2") },
		"bad label name":      func() { r.Gauge("seda_c", "h", Label{"__bad", "v"}) },
		"descending buckets":  func() { r.Histogram("seda_d_seconds", "h", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("seda_test_duration_seconds", "Test durations.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-2.565) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}

	fams := roundTrip(t, r)
	fam := fams["seda_test_duration_seconds"]
	if fam.Type != "histogram" {
		t.Fatalf("type = %s", fam.Type)
	}
	// Cumulative: le=0.01 holds 2 (0.005 and the boundary 0.01),
	// le=0.1 holds 3, le=1 holds 4, +Inf holds all 5.
	for _, want := range []struct {
		le string
		n  float64
	}{{"0.01", 2}, {"0.1", 3}, {"1", 4}, {"+Inf", 5}} {
		v, err := fam.Value("seda_test_duration_seconds_bucket", map[string]string{"le": want.le})
		if err != nil || v != want.n {
			t.Fatalf("bucket le=%s: v=%v err=%v, want %v", want.le, v, err, want.n)
		}
	}
	if n, _ := fam.HistCount(nil); n != 5 {
		t.Fatalf("HistCount = %v", n)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("seda_stage_duration_seconds", "Stage durations.", "stage", DurationBuckets)
	hv.With(StageDRAM).Observe(0.002)
	hv.With(StageDRAM).Observe(0.004)
	hv.With(StageProtect).Observe(0.5)
	if hv.With(StageDRAM) != hv.With(StageDRAM) {
		t.Fatal("With is not stable")
	}

	fams := roundTrip(t, r)
	fam := fams["seda_stage_duration_seconds"]
	if n, err := fam.HistCount(map[string]string{"stage": StageDRAM}); err != nil || n != 2 {
		t.Fatalf("dram count = %v err=%v", n, err)
	}
	if n, err := fam.HistCount(map[string]string{"stage": StageProtect}); err != nil || n != 1 {
		t.Fatalf("protect count = %v err=%v", n, err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("seda_build_info", "Build info.",
		Label{"revision", `quote " slash \ newline` + "\n"}, Label{"pipeline", "4"})
	g.Set(1)
	fams := roundTrip(t, r)
	v, err := fams["seda_build_info"].Value("seda_build_info", map[string]string{
		"revision": `quote " slash \ newline` + "\n", "pipeline": "4"})
	if err != nil || v != 1 {
		t.Fatalf("escaped labels did not round-trip: v=%v err=%v", v, err)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("seda_conc_seconds", "h", DurationBuckets)
	c := r.Counter("seda_conc_total", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count=%d counter=%d", h.Count(), c.Value())
	}
	roundTrip(t, r)
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	rg := NewRuntimeGauges(r)
	rg.Collect()
	if rg.Goroutines.Value() < 1 {
		t.Fatalf("goroutines = %v", rg.Goroutines.Value())
	}
	if rg.HeapAlloc.Value() <= 0 || rg.HeapSys.Value() <= 0 {
		t.Fatal("heap gauges not collected")
	}
	fams := roundTrip(t, r)
	for _, name := range []string{
		"seda_go_goroutines", "seda_go_heap_alloc_bytes", "seda_go_heap_sys_bytes",
		"seda_go_gc_pause_seconds_total", "seda_go_gc_runs_total",
	} {
		if fams[name] == nil {
			t.Fatalf("missing runtime family %s", name)
		}
	}
}

func TestReadBuild(t *testing.T) {
	b := ReadBuild()
	if b.GoVersion == "" {
		t.Fatal("no Go version")
	}
	// Test binaries rarely carry VCS stamps; the contract is only
	// that fields are never empty.
	if b.ModuleVersion == "" || b.Revision == "" {
		t.Fatalf("empty build fields: %+v", b)
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		0:      "0",
		1:      "1",
		0.0005: "0.0005",
		1.5:    "1.5",
		2.5e20: "2.5e+20",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
