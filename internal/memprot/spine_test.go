package memprot

import (
	"reflect"
	"testing"

	"repro/internal/scalesim"
	"repro/internal/trace"
)

// TestProtectAllSharesOneSpine pins the tentpole property: every
// scheme's every layer aliases the scalesim trace as its spine — the
// data stream is built once per workload and never copied per scheme.
func TestProtectAllSharesOneSpine(t *testing.T) {
	net := edgeNet(t, "let")
	prots, err := ProtectAll(AllSchemes(), net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(prots) != len(AllSchemes()) {
		t.Fatalf("got %d results for %d schemes", len(prots), len(AllSchemes()))
	}
	for _, r := range prots {
		if len(r.Layers) != len(net.Layers) {
			t.Fatalf("%s: %d layers, want %d", r.Scheme.Name(), len(r.Layers), len(net.Layers))
		}
		for i := range r.Layers {
			if r.Layers[i].Spine != net.Layers[i].Trace {
				t.Fatalf("%s layer %d: spine is a copy, not the scalesim trace",
					r.Scheme.Name(), i)
			}
			if r.Layers[i].Trace != nil {
				t.Fatalf("%s layer %d: ProtectAll materialized a flat trace", r.Scheme.Name(), i)
			}
		}
	}
}

// TestProtectAllLeavesSpineUntouched: scheme emitters must treat the
// shared spine as immutable.
func TestProtectAllLeavesSpineUntouched(t *testing.T) {
	net := edgeNet(t, "let")
	before := make([][]trace.Access, len(net.Layers))
	for i := range net.Layers {
		before[i] = append([]trace.Access(nil), net.Layers[i].Trace.Accesses...)
	}
	if _, err := ProtectAll(AllSchemes(), net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range net.Layers {
		if !reflect.DeepEqual(before[i], net.Layers[i].Trace.Accesses) {
			t.Fatalf("layer %d: spine mutated by ProtectAll", i)
		}
	}
}

// TestProtectMatchesProtectAllMaterialized: the flat wrapper and the
// overlay path describe the same augmented trace, access for access.
func TestProtectMatchesProtectAllMaterialized(t *testing.T) {
	net := edgeNet(t, "ncf")
	prots, err := ProtectAll(AllSchemes(), net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prots {
		flat := protect(t, r.Scheme, net)
		for i := range r.Layers {
			got := r.Layers[i].Materialize()
			want := flat.Layers[i].Trace
			if !reflect.DeepEqual(got.Accesses, want.Accesses) {
				t.Fatalf("%s layer %d: materialized overlay differs from Protect trace",
					r.Scheme.Name(), i)
			}
			if r.Layers[i].Overhead != flat.Layers[i].Overhead {
				t.Fatalf("%s layer %d: overhead %+v != %+v",
					r.Scheme.Name(), i, r.Layers[i].Overhead, flat.Layers[i].Overhead)
			}
		}
	}
}

// TestProtectAllMatchesIndependentRuns: fanning one walk out to six
// emitters gives byte-identical overlays to six independent walks
// (scheme state never leaks across emitters).
func TestProtectAllMatchesIndependentRuns(t *testing.T) {
	net := edgeNet(t, "sent")
	all, err := ProtectAll(AllSchemes(), net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range AllSchemes() {
		solo, err := ProtectAll([]Scheme{s}, net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := range all[k].Layers {
			if !reflect.DeepEqual(all[k].Layers[i].Deltas, solo[0].Layers[i].Deltas) {
				t.Fatalf("%s layer %d: overlay differs between fan-out and solo runs", s.Name(), i)
			}
		}
	}
}

// TestDrainAddressesPerCacheRegion is the regression test for the
// drain-address bug: the MAC cache's end-of-inference flush must be
// charged inside the MAC metadata region and the VN cache's inside the
// VN region (both used to land on the same line below VNBase, so VN
// drain traffic was attributed to MAC-region addresses and both
// flushes collapsed onto one DRAM line).
func TestDrainAddressesPerCacheRegion(t *testing.T) {
	for _, s := range []Scheme{SchemeSGX64, SchemeSGX512} {
		net := edgeNet(t, "let")
		prots, err := ProtectAll([]Scheme{s}, net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		last := &prots[0].Layers[len(prots[0].Layers)-1]
		if prots[0].DrainWrites == 0 {
			t.Fatalf("%s: no drain writes recorded", s.Name())
		}
		var macDrain, vnDrain int
		for j := last.Deltas.Len() - prots[0].DrainWrites; j < last.Deltas.Len(); j++ {
			a := last.Deltas.Accesses[j]
			if int(last.Deltas.Anchors[j]) != last.Spine.Len() {
				t.Fatalf("%s: drain access anchored mid-spine at %d", s.Name(), last.Deltas.Anchors[j])
			}
			if a.Kind != trace.Write {
				t.Fatalf("%s: drain emitted a %s", s.Name(), a.Kind)
			}
			switch a.Class {
			case trace.MACMeta:
				macDrain++
				if a.Addr < MACBase || a.Addr >= VNBase {
					t.Errorf("%s: MAC drain at %#x outside MAC region [%#x,%#x)",
						s.Name(), a.Addr, MACBase, VNBase)
				}
			case trace.VNMeta:
				vnDrain++
				if a.Addr < VNBase || a.Addr >= TreeBase {
					t.Errorf("%s: VN drain at %#x outside VN region [%#x,%#x)",
						s.Name(), a.Addr, VNBase, TreeBase)
				}
			default:
				t.Errorf("%s: unexpected drain class %s", s.Name(), a.Class)
			}
		}
		if macDrain != 1 || vnDrain != 1 {
			t.Errorf("%s: drain writes mac=%d vn=%d, want 1 and 1 (ofmap writes leave both caches dirty)",
				s.Name(), macDrain, vnDrain)
		}
	}
}

// TestMetadataRegionsNeverOverlap is the property test for the
// metadata-addressing fix: for every protection-block granularity, the
// MAC/VN address ranges that distinct data regions (the two activation
// banks and the weights) map to must be pairwise disjoint, and every
// metadata class must stay inside its own region. The overlay anchors
// identify each metadata access's triggering data access, which is
// what makes the per-source attribution possible.
func TestMetadataRegionsNeverOverlap(t *testing.T) {
	for _, s := range []Scheme{SchemeSGX64, SchemeSGX512, SchemeMGX64, SchemeMGX512} {
		for _, wl := range []string{"alex", "sent"} {
			net := edgeNet(t, wl)
			prots, err := ProtectAll([]Scheme{s}, net, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			// Per data region, the footprint of MAC and VN lines its
			// accesses touched.
			mac := map[uint64]*mdInterval{}
			vn := map[uint64]*mdInterval{}
			for li := range prots[0].Layers {
				pl := &prots[0].Layers[li]
				nd := pl.Deltas.Len()
				if li == len(prots[0].Layers)-1 {
					nd -= prots[0].DrainWrites // drain aggregates, covered elsewhere
				}
				for j := 0; j < nd; j++ {
					a := pl.Deltas.Accesses[j]
					anchor := int(pl.Deltas.Anchors[j])
					src := pl.Spine.Accesses[anchor-1]
					region := regionBase(src.Addr)
					lo := a.Addr
					hi := a.Addr + uint64(a.Bytes) - 1
					switch a.Class {
					case trace.MACMeta:
						if lo < MACBase || hi >= VNBase {
							t.Fatalf("%s/%s: MAC access [%#x,%#x] outside MAC region", s.Name(), wl, lo, hi)
						}
						grow(mac, region, lo, hi)
					case trace.VNMeta:
						if lo < VNBase || hi >= TreeBase {
							t.Fatalf("%s/%s: VN access [%#x,%#x] outside VN region", s.Name(), wl, lo, hi)
						}
						grow(vn, region, lo, hi)
					case trace.TreeMeta:
						if lo < TreeBase || hi >= LayerMACBase {
							t.Fatalf("%s/%s: tree access [%#x,%#x] outside tree region", s.Name(), wl, lo, hi)
						}
					}
				}
			}
			for _, class := range []map[uint64]*mdInterval{mac, vn} {
				regions := make([]uint64, 0, len(class))
				for r := range class {
					regions = append(regions, r)
				}
				for i := 0; i < len(regions); i++ {
					for j := i + 1; j < len(regions); j++ {
						a, b := class[regions[i]], class[regions[j]]
						if a.lo <= b.hi && b.lo <= a.hi {
							t.Fatalf("%s/%s: metadata of regions %#x and %#x overlap: [%#x,%#x] vs [%#x,%#x]",
								s.Name(), wl, regions[i], regions[j], a.lo, a.hi, b.lo, b.hi)
						}
					}
				}
			}
		}
	}
}

// mdInterval is an inclusive metadata address range.
type mdInterval struct{ lo, hi uint64 }

func grow(m map[uint64]*mdInterval, region, lo, hi uint64) {
	if r, ok := m[region]; ok {
		if lo < r.lo {
			r.lo = lo
		}
		if hi > r.hi {
			r.hi = hi
		}
		return
	}
	m[region] = &mdInterval{lo, hi}
}

// TestMetadataRegionsDisjointAtFullSpan stresses the worst case the
// real workloads cannot reach: a data region exercised out to the full
// inter-region spacing. If the metadata offset scaling were wrong for
// any granularity (e.g. the old hardcoded 64 B divisor), the last
// blocks of one region's MAC/VN range would collide with the start of
// the next region's.
func TestMetadataRegionsDisjointAtFullSpan(t *testing.T) {
	span := scalesim.ActBBase - scalesim.ActABase // region spacing
	mk := func(base uint64) trace.Access {
		return trace.Access{Addr: base + span - 64, Bytes: 64, Kind: trace.Write, Class: trace.Data}
	}
	tr := &trace.Trace{}
	for _, base := range []uint64{scalesim.ActABase, scalesim.ActBBase, scalesim.WeightsBase} {
		tr.Append(trace.Access{Addr: base, Bytes: 64, Kind: trace.Write, Class: trace.Data})
		tr.Append(mk(base))
	}
	net := &scalesim.NetworkResult{Layers: []scalesim.LayerResult{{LayerID: 0, Trace: tr}}}

	for _, s := range []Scheme{SchemeSGX64, SchemeSGX512, SchemeMGX64, SchemeMGX512} {
		prots, err := ProtectAll([]Scheme{s}, net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pl := &prots[0].Layers[0]
		macR := map[uint64]*mdInterval{}
		vnR := map[uint64]*mdInterval{}
		nd := pl.Deltas.Len() - prots[0].DrainWrites
		for j := 0; j < nd; j++ {
			a := pl.Deltas.Accesses[j]
			anchor := int(pl.Deltas.Anchors[j])
			region := regionBase(pl.Spine.Accesses[anchor-1].Addr)
			var m map[uint64]*mdInterval
			switch a.Class {
			case trace.MACMeta:
				m = macR
			case trace.VNMeta:
				m = vnR
			default:
				continue
			}
			grow(m, region, a.Addr, a.Addr+uint64(a.Bytes)-1)
		}
		bases := []uint64{scalesim.ActABase, scalesim.ActBBase, scalesim.WeightsBase}
		for _, m := range []map[uint64]*mdInterval{macR, vnR} {
			if len(m) == 0 {
				continue
			}
			for i := 0; i < len(bases); i++ {
				for j := i + 1; j < len(bases); j++ {
					a, ok1 := m[bases[i]]
					b, ok2 := m[bases[j]]
					if !ok1 || !ok2 {
						continue
					}
					if a.lo <= b.hi && b.lo <= a.hi {
						t.Fatalf("%s: full-span metadata of %#x and %#x overlap: [%#x,%#x] vs [%#x,%#x]",
							s.Name(), bases[i], bases[j], a.lo, a.hi, b.lo, b.hi)
					}
				}
			}
		}
	}
}

// TestProtectAllRejectsInvalidScheme mirrors the single-scheme guard.
func TestProtectAllRejectsInvalidScheme(t *testing.T) {
	net := edgeNet(t, "let")
	if _, err := ProtectAll([]Scheme{SchemeSGX64, {Kind: MGX, Block: 7}}, net, DefaultOptions()); err == nil {
		t.Error("invalid scheme accepted")
	}
}
