package memprot

import (
	"testing"

	"repro/internal/trace"
)

func TestSGXDrainWritesBackDirtyMetadata(t *testing.T) {
	// An inference leaves dirty VN/MAC lines (from ofmap writes) in
	// the SGX caches; the drain must surface them as metadata writes
	// on the final layer.
	net := edgeNet(t, "let")
	r := protect(t, SchemeSGX64, net)
	last := r.Layers[len(r.Layers)-1]
	var drainWrites uint64
	for _, a := range last.Trace.Accesses {
		if a.Kind == trace.Write && a.Tensor == trace.Metadata &&
			(a.Class == trace.MACMeta || a.Class == trace.VNMeta) {
			drainWrites += uint64(a.Bytes)
		}
	}
	if drainWrites == 0 {
		t.Error("no metadata writebacks found on final layer after drain")
	}
}

func TestNonSGXSchemesHaveNoDrain(t *testing.T) {
	net := edgeNet(t, "let")
	for _, s := range []Scheme{SchemeBaseline, SchemeMGX64, SchemeSeDA} {
		r := protect(t, s, net)
		last := r.Layers[len(r.Layers)-1]
		for _, a := range last.Trace.Accesses {
			if a.Class == trace.VNMeta {
				t.Errorf("%s: unexpected VN metadata access", s.Name())
			}
		}
	}
}

func TestDrainPreservesConservation(t *testing.T) {
	// After the drain, trace byte totals still match the overhead
	// counters (the drain updates both).
	net := edgeNet(t, "alex")
	r := protect(t, SchemeSGX512, net)
	for _, pl := range r.Layers {
		st := pl.Trace.ComputeStats()
		if st.MetaBytes() != pl.Overhead.MetaBytes() {
			t.Fatalf("layer %d: trace meta %d != counters %d",
				pl.LayerID, st.MetaBytes(), pl.Overhead.MetaBytes())
		}
	}
}
