package memprot

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/internal/trace"
)

func edgeNet(t *testing.T, name string) *scalesim.NetworkResult {
	t.Helper()
	cfg, err := scalesim.New(32, 32, 480*1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cfg.SimulateNetwork(model.ByName(name))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func serverNet(t *testing.T, name string) *scalesim.NetworkResult {
	t.Helper()
	cfg, err := scalesim.New(256, 256, 24*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cfg.SimulateNetwork(model.ByName(name))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func protect(t *testing.T, s Scheme, net *scalesim.NetworkResult) *Result {
	t.Helper()
	r, err := Protect(s, net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"Baseline": SchemeBaseline,
		"SGX-64B":  SchemeSGX64,
		"SGX-512B": SchemeSGX512,
		"MGX-64B":  SchemeMGX64,
		"MGX-512B": SchemeMGX512,
		"SeDA":     SchemeSeDA,
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestSchemeValidate(t *testing.T) {
	bad := []Scheme{
		{Kind: SGX, Block: 0},
		{Kind: SGX, Block: 100},
		{Kind: MGX, Block: -64},
		{Kind: Kind(9)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v validated", s)
		}
	}
	for _, s := range AllSchemes() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestBaselinePassThrough(t *testing.T) {
	net := edgeNet(t, "rest")
	r := protect(t, SchemeBaseline, net)
	if r.TotalMetaBytes() != 0 {
		t.Errorf("baseline meta bytes = %d", r.TotalMetaBytes())
	}
	if r.TotalDataBytes() != net.TotalDataBytes() {
		t.Errorf("baseline data bytes %d != network %d",
			r.TotalDataBytes(), net.TotalDataBytes())
	}
	var accesses int
	for _, pl := range r.Layers {
		accesses += pl.Trace.Len()
	}
	var orig int
	for _, lr := range net.Layers {
		orig += lr.Trace.Len()
	}
	if accesses != orig {
		t.Errorf("baseline added/removed accesses: %d vs %d", accesses, orig)
	}
}

func TestDataBytesInvariantAcrossSchemes(t *testing.T) {
	net := edgeNet(t, "mob")
	want := net.TotalDataBytes()
	for _, s := range AllSchemes() {
		r := protect(t, s, net)
		if r.TotalDataBytes() != want {
			t.Errorf("%s: data bytes %d != baseline %d", s.Name(), r.TotalDataBytes(), want)
		}
	}
}

// The central ordering claim of Fig. 5: per workload,
// SGX-64B >= MGX-64B >= MGX-512B and SGX-64B >= SGX-512B, and SeDA is
// the cheapest protection.
func TestSchemeOverheadOrdering(t *testing.T) {
	for _, name := range model.Names() {
		net := edgeNet(t, name)
		oh := map[string]float64{}
		for _, s := range AllSchemes() {
			r := protect(t, s, net)
			oh[s.Name()] = r.TrafficOverheadRatio()
		}
		if oh["SGX-64B"] < oh["MGX-64B"] {
			t.Errorf("%s: SGX-64B %.4f < MGX-64B %.4f", name, oh["SGX-64B"], oh["MGX-64B"])
		}
		if oh["SGX-64B"] < oh["SGX-512B"] {
			t.Errorf("%s: SGX-64B %.4f < SGX-512B %.4f", name, oh["SGX-64B"], oh["SGX-512B"])
		}
		if oh["MGX-64B"] < oh["MGX-512B"] {
			t.Errorf("%s: MGX-64B %.4f < MGX-512B %.4f", name, oh["MGX-64B"], oh["MGX-512B"])
		}
		for _, other := range []string{"SGX-64B", "SGX-512B", "MGX-64B", "MGX-512B"} {
			if oh["SeDA"] > oh[other] {
				t.Errorf("%s: SeDA %.4f > %s %.4f", name, oh["SeDA"], other, oh[other])
			}
		}
		if oh["Baseline"] != 0 {
			t.Errorf("%s: baseline overhead %.4f != 0", name, oh["Baseline"])
		}
	}
}

func TestMGX64RawMACOverheadNear12Percent(t *testing.T) {
	// MGX-64B's overhead is 8B MAC per 64B block plus alignment
	// charges: slightly above 12.5%, never below ~12%, and bounded.
	for _, name := range []string{"alex", "rest", "yolo", "trf"} {
		r := protect(t, SchemeMGX64, edgeNet(t, name))
		oh := r.TrafficOverheadRatio()
		if oh < 0.115 || oh > 0.16 {
			t.Errorf("%s: MGX-64B overhead = %.4f, want ~0.125", name, oh)
		}
	}
}

func TestSeDANearZeroOverhead(t *testing.T) {
	for _, name := range model.Names() {
		r := protect(t, SchemeSeDA, edgeNet(t, name))
		oh := r.TrafficOverheadRatio()
		if oh > 0.01 {
			t.Errorf("%s: SeDA overhead = %.4f, want < 1%%", name, oh)
		}
		if oh < 0 {
			t.Errorf("%s: negative overhead %.4f", name, oh)
		}
	}
}

func TestSeDAPicksOptBlkPerLayer(t *testing.T) {
	r := protect(t, SchemeSeDA, edgeNet(t, "rest"))
	for _, pl := range r.Layers {
		if pl.Overhead.OptBlk < 64 {
			t.Errorf("layer %d: optBlk = %d", pl.LayerID, pl.Overhead.OptBlk)
		}
	}
}

func TestSGXEmitsAllMetadataClasses(t *testing.T) {
	r := protect(t, SchemeSGX64, edgeNet(t, "alex"))
	var mac, vn, tree uint64
	for _, pl := range r.Layers {
		mac += pl.Overhead.MACBytes
		vn += pl.Overhead.VNBytes
		tree += pl.Overhead.TreeBytes
	}
	if mac == 0 || vn == 0 || tree == 0 {
		t.Errorf("SGX metadata mac/vn/tree = %d/%d/%d, all must be > 0", mac, vn, tree)
	}
}

func TestMGXNoVNOrTreeTraffic(t *testing.T) {
	r := protect(t, SchemeMGX64, edgeNet(t, "alex"))
	for _, pl := range r.Layers {
		if pl.Overhead.VNBytes != 0 || pl.Overhead.TreeBytes != 0 {
			t.Fatalf("MGX layer %d has VN/tree traffic %d/%d",
				pl.LayerID, pl.Overhead.VNBytes, pl.Overhead.TreeBytes)
		}
		for _, a := range pl.Trace.Accesses {
			if a.Class == trace.VNMeta || a.Class == trace.TreeMeta {
				t.Fatalf("MGX trace contains %s access", a.Class)
			}
		}
	}
}

func TestCoarserBlocksLessMACTraffic(t *testing.T) {
	net := edgeNet(t, "rest")
	r64 := protect(t, SchemeMGX64, net)
	r512 := protect(t, SchemeMGX512, net)
	var m64, m512 uint64
	for i := range r64.Layers {
		m64 += r64.Layers[i].Overhead.MACBytes
		m512 += r512.Layers[i].Overhead.MACBytes
	}
	if m512 >= m64 {
		t.Errorf("512B MAC traffic %d >= 64B %d", m512, m64)
	}
	// Roughly 8x fewer blocks -> roughly 8x less MAC traffic.
	if ratio := float64(m64) / float64(m512); ratio < 6 || ratio > 10 {
		t.Errorf("MAC traffic ratio 64B/512B = %.2f, want ~8", ratio)
	}
}

func TestCoarserBlocksMoreOverFetch(t *testing.T) {
	net := edgeNet(t, "goo")
	r64 := protect(t, SchemeMGX64, net)
	r512 := protect(t, SchemeMGX512, net)
	var o64, o512 uint64
	for i := range r64.Layers {
		o64 += r64.Layers[i].Overhead.OverFetchBytes
		o512 += r512.Layers[i].Overhead.OverFetchBytes
	}
	if o512 < o64 {
		t.Errorf("512B over-fetch %d < 64B %d", o512, o64)
	}
}

func TestTraceStatsMatchOverheadCounters(t *testing.T) {
	net := edgeNet(t, "ds2")
	for _, s := range AllSchemes() {
		r := protect(t, s, net)
		for _, pl := range r.Layers {
			st := pl.Trace.ComputeStats()
			if st.BytesByClass[trace.Data] != pl.Overhead.DataBytes {
				t.Errorf("%s layer %d: trace data %d != counter %d",
					s.Name(), pl.LayerID, st.BytesByClass[trace.Data], pl.Overhead.DataBytes)
			}
			if st.MetaBytes() != pl.Overhead.MetaBytes() {
				t.Errorf("%s layer %d: trace meta %d != counter %d",
					s.Name(), pl.LayerID, st.MetaBytes(), pl.Overhead.MetaBytes())
			}
		}
	}
}

func TestSGXCacheFiltersRepeatedAccess(t *testing.T) {
	// Server SRAM keeps tensors resident so each metadata line is
	// touched few times; edge re-streams weights, and the caches
	// should filter some of the repeats. Either way, SGX MAC traffic
	// must not exceed the uncached worst case (8B per block touched
	// per access, line-rounded).
	net := serverNet(t, "rest")
	r := protect(t, SchemeSGX64, net)
	rm := protect(t, SchemeMGX64, net)
	var sgxMAC, mgxMAC uint64
	for i := range r.Layers {
		sgxMAC += r.Layers[i].Overhead.MACBytes
		mgxMAC += rm.Layers[i].Overhead.MACBytes
	}
	// MGX is the uncached per-access cost; SGX's cached cost may add
	// at most writeback traffic on top (2x bound).
	if sgxMAC > 2*mgxMAC+uint64(DefaultOptions().MACCacheBytes) {
		t.Errorf("SGX MAC traffic %d far above uncached bound %d", sgxMAC, mgxMAC)
	}
}

func TestFeatureRows(t *testing.T) {
	f := SchemeSGX64.FeatureRow()
	if f.OffChipMetadata != "MAC,VN,IT" || f.TilingAware || f.EncryptionScalable {
		t.Errorf("SGX features wrong: %+v", f)
	}
	f = SchemeMGX512.FeatureRow()
	if f.OffChipMetadata != "MAC" || f.IntegrityGranularity != "512B" {
		t.Errorf("MGX features wrong: %+v", f)
	}
	f = SchemeSeDA.FeatureRow()
	if !f.TilingAware || !f.EncryptionScalable {
		t.Errorf("SeDA features wrong: %+v", f)
	}
}

func TestMetadataAddressesDisjointFromData(t *testing.T) {
	net := edgeNet(t, "alex")
	for _, s := range []Scheme{SchemeSGX64, SchemeMGX512, SchemeSeDA} {
		r := protect(t, s, net)
		for _, pl := range r.Layers {
			for _, a := range pl.Trace.Accesses {
				isMeta := a.Class == trace.MACMeta || a.Class == trace.VNMeta || a.Class == trace.TreeMeta
				if isMeta && a.Addr < MACBase {
					t.Fatalf("%s: metadata access at data address %#x", s.Name(), a.Addr)
				}
				if a.Class == trace.Data && a.Addr >= MACBase {
					t.Fatalf("%s: data access at metadata address %#x", s.Name(), a.Addr)
				}
			}
		}
	}
}

func TestProtectRejectsInvalidScheme(t *testing.T) {
	net := edgeNet(t, "let")
	if _, err := Protect(Scheme{Kind: SGX, Block: 7}, net, DefaultOptions()); err == nil {
		t.Error("invalid scheme accepted")
	}
}
