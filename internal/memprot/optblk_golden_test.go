package memprot

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/authblock"
	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/internal/trace"
)

// optBlkGolden pins SeDA's chosen per-layer blocks for every workload
// on both NPU geometries: the first 8 bytes (hex) of a SHA-256 over
// the comma-joined per-layer OptBlk sequence. Generated from the
// legacy per-candidate scan before the RunSet rewrite and verified
// bit-identical against it — any search change that moves a single
// layer's block on a single workload fails here.
var optBlkGolden = map[string]string{
	"server/let":  "f5cdddceb622f9ec",
	"server/alex": "95abecd247367c7d",
	"server/mob":  "b11fe51f042cc9ed",
	"server/rest": "f9407694484ff18c",
	"server/goo":  "05f042a5c2cb4a05",
	"server/dlrm": "fe6c593f4a2da32e",
	"server/algo": "252cd3bcb80fb73e",
	"server/ds2":  "341096e724e522cc",
	"server/fast": "0e797f7cff1ef140",
	"server/ncf":  "3592a606cb624909",
	"server/sent": "9ce774ddfcb2e0af",
	"server/trf":  "deae4005b2511ad9",
	"server/yolo": "5e19cc75e0cfac0b",
	"edge/let":    "f5cdddceb622f9ec",
	"edge/alex":   "b14fffcea2263428",
	"edge/mob":    "19df20cb0c97fb4e",
	"edge/rest":   "d60ef4adfb2d580d",
	"edge/goo":    "ca2f160d77965ec7",
	"edge/dlrm":   "37ccf67f4548cd7f",
	"edge/algo":   "3713c4f14dea492f",
	"edge/ds2":    "9dd2747fa065824e",
	"edge/fast":   "a7537f7c9518bf93",
	"edge/ncf":    "3592a606cb624909",
	"edge/sent":   "9ce774ddfcb2e0af",
	"edge/trf":    "ae43c0e40efd99d0",
	"edge/yolo":   "58f496a48455c101",
}

var goldenGeometries = []struct {
	name       string
	rows, cols int
	sram       int
}{
	{"server", 256, 256, 24 << 20},
	{"edge", 32, 32, 480 << 10},
}

func optBlkDigest(res *Result) string {
	h := sha256.New()
	for i := range res.Layers {
		fmt.Fprintf(h, "%d,", res.Layers[i].Overhead.OptBlk)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// TestSeDAOptBlkGolden pins the chosen block per workload across the
// full suite on both NPU geometries, and checks the fixed-granularity
// schemes record no searched block (their granularity is the scheme
// constant, not a search product).
func TestSeDAOptBlkGolden(t *testing.T) {
	for _, g := range goldenGeometries {
		cfg, err := scalesim.New(g.rows, g.cols, g.sram)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range model.All() {
			sim, err := cfg.SimulateNetwork(n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Protect(SchemeSeDA, sim, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			key := g.name + "/" + n.Name
			if got, want := optBlkDigest(res), optBlkGolden[key]; got != want {
				t.Errorf("%s: optBlk digest %s, want %s (a layer's searched block moved)",
					key, got, want)
			}
			for _, s := range []Scheme{SchemeSGX64, SchemeMGX512, SchemeBaseline} {
				fres, err := Protect(s, sim, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				for i := range fres.Layers {
					if fres.Layers[i].Overhead.OptBlk != 0 {
						t.Fatalf("%s/%s layer %d: fixed scheme recorded OptBlk %d",
							key, s.Name(), i, fres.Layers[i].Overhead.OptBlk)
					}
				}
			}
			if testing.Short() {
				return // one workload exercises the plumbing
			}
		}
	}
}

// TestOptBlkCacheSharesAcrossNPUs checks the cross-evaluation search
// sharing: a repeat evaluation answers every search from the cache,
// results are unchanged by cache state, and a workload whose tiling
// coincides on both NPU geometries (LeNet fits both SRAMs identically
// — its golden digests match above) shares searches between them.
func TestOptBlkCacheSharesAcrossNPUs(t *testing.T) {
	opts := DefaultOptions()
	opts.OptBlkCache = NewOptBlkCache()

	sims := map[string]*scalesim.NetworkResult{}
	for _, g := range goldenGeometries {
		cfg, err := scalesim.New(g.rows, g.cols, g.sram)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cfg.SimulateNetwork(model.ByName("let"))
		if err != nil {
			t.Fatal(err)
		}
		sims[g.name] = sim
	}

	cold, err := Protect(SchemeSeDA, sims["server"], opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.OptBlkCache.Hits() != 0 && opts.OptBlkCache.Entries() == 0 {
		t.Fatal("cold run should populate, not hit")
	}
	entries := opts.OptBlkCache.Entries()
	if entries == 0 {
		t.Fatal("cold run cached nothing")
	}

	// Edge evaluation of the same workload: LeNet's tilings coincide,
	// so every search must come from the server run's entries.
	edge, err := Protect(SchemeSeDA, sims["edge"], opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.OptBlkCache.Entries() != entries {
		t.Errorf("edge run added %d entries; tilings coincide, want 0",
			opts.OptBlkCache.Entries()-entries)
	}
	if opts.OptBlkCache.Hits() == 0 {
		t.Error("edge run hit the shared cache 0 times")
	}

	// Cached results must be bit-identical to uncached ones.
	fresh, err := Protect(SchemeSeDA, sims["edge"], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Layers {
		if fresh.Layers[i].Overhead.OptBlk != edge.Layers[i].Overhead.OptBlk {
			t.Errorf("layer %d: cached optBlk %d != fresh %d",
				i, edge.Layers[i].Overhead.OptBlk, fresh.Layers[i].Overhead.OptBlk)
		}
	}
	if d := optBlkDigest(cold); d != optBlkGolden["server/let"] {
		t.Errorf("server/let digest with cache = %s, want %s", d, optBlkGolden["server/let"])
	}
}

// TestOptBlkCacheKeyIncludesWeights: the same geometry under different
// weight scenarios must occupy distinct cache slots, and each slot
// must answer with its own scenario's block.
func TestOptBlkCacheKeyIncludesWeights(t *testing.T) {
	c := NewOptBlkCache()
	set := authblock.NewRunSet([]trace.Access{
		{Addr: 0, Bytes: 768, Kind: trace.Read},
		{Addr: 768, Bytes: 768, Kind: trace.Read},
	})
	d := c.search(&set, authblock.DefaultWeights())
	o := c.search(&set, authblock.OnChipMACWeights())
	if c.Entries() != 2 {
		t.Errorf("cache entries = %d, want 2 (weights in key)", c.Entries())
	}
	if want := set.SearchWeighted(authblock.DefaultWeights()).Best.Block; d != uint64(want) {
		t.Errorf("default-weight cached block %d, want %d", d, want)
	}
	if want := set.SearchWeighted(authblock.OnChipMACWeights()).Best.Block; o != uint64(want) {
		t.Errorf("on-chip-MAC cached block %d, want %d", o, want)
	}
}
