// Package memprot implements the memory-protection schemes the paper
// evaluates (§IV-A, Table III) as trace transformers: each scheme
// takes the accelerator's data-access trace and produces the augmented
// trace containing the security-metadata accesses the protection unit
// must make, plus per-layer overhead accounting.
//
// Schemes:
//
//   - Baseline — unprotected accelerator; the trace passes through.
//   - SGX-64B / SGX-512B — AES-CTR confidentiality with off-chip
//     version numbers (56-bit, cached in a 16 KB VN cache), per-block
//     64-bit MACs (cached in an 8 KB MAC cache), and a Bonsai-Merkle-
//     style integrity tree over the VN space whose interior nodes are
//     fetched through the VN cache. The root stays on-chip.
//   - MGX-64B / MGX-512B — application-specific on-chip VN generation
//     (no VN or tree traffic), per-block MACs fetched uncached.
//   - SeDA — bandwidth-aware encryption plus multi-level integrity:
//     per-layer optBlk from the authblock search (tile-aligned, so no
//     over-fetch or RMW), optBlk MACs aggregated on-chip into layer
//     MACs, which are stored off-chip "to ensure fairness" (§IV-A) and
//     cost one metadata line read+write per layer, plus the on-chip
//     model MAC for weights.
//
// All schemes charge over-fetch (reads rounded up to protection-block
// boundaries) and read-modify-write (partial block writes fetch the
// uncovered remainder so the block MAC can be recomputed) where the
// block grid, anchored at each tensor region's base, misaligns with
// the schedule's runs.
package memprot

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/scalesim"
	"repro/internal/trace"
)

// Kind enumerates the protection scheme families.
type Kind uint8

const (
	Baseline Kind = iota
	SGX
	MGX
	SeDA
)

// Scheme identifies a concrete scheme configuration.
type Scheme struct {
	Kind Kind
	// Block is the protection-block granularity in bytes (64 or 512
	// in the paper). Ignored for Baseline; SeDA picks per-layer
	// optBlk via the authblock search instead.
	Block int
}

// Standard scheme list in the paper's figure order.
var (
	SchemeBaseline = Scheme{Kind: Baseline}
	SchemeSGX64    = Scheme{Kind: SGX, Block: 64}
	SchemeMGX64    = Scheme{Kind: MGX, Block: 64}
	SchemeSGX512   = Scheme{Kind: SGX, Block: 512}
	SchemeMGX512   = Scheme{Kind: MGX, Block: 512}
	SchemeSeDA     = Scheme{Kind: SeDA}
)

// AllSchemes returns the six configurations of Fig. 5/6 in plot order.
func AllSchemes() []Scheme {
	return []Scheme{
		SchemeSGX64, SchemeMGX64, SchemeSGX512, SchemeMGX512,
		SchemeSeDA, SchemeBaseline,
	}
}

// Name returns the scheme's display name as used in the figures.
func (s Scheme) Name() string {
	switch s.Kind {
	case Baseline:
		return "Baseline"
	case SGX:
		return fmt.Sprintf("SGX-%dB", s.Block)
	case MGX:
		return fmt.Sprintf("MGX-%dB", s.Block)
	case SeDA:
		return "SeDA"
	}
	return fmt.Sprintf("scheme(%d)", s.Kind)
}

// Validate checks the configuration.
func (s Scheme) Validate() error {
	switch s.Kind {
	case Baseline, SeDA:
		return nil
	case SGX, MGX:
		if s.Block <= 0 || s.Block%64 != 0 {
			return fmt.Errorf("memprot: %s block %d must be a positive multiple of 64",
				s.Name(), s.Block)
		}
		return nil
	}
	return fmt.Errorf("memprot: unknown scheme kind %d", s.Kind)
}

// Features reproduces the scheme's Table III row.
type Features struct {
	EncryptionGranularity string
	IntegrityGranularity  string
	OffChipMetadata       string
	TilingAware           bool
	EncryptionScalable    bool
}

// FeatureRow returns the Table III feature summary for the scheme.
func (s Scheme) FeatureRow() Features {
	switch s.Kind {
	case SGX:
		return Features{
			EncryptionGranularity: "16B",
			IntegrityGranularity:  fmt.Sprintf("%dB", s.Block),
			OffChipMetadata:       "MAC,VN,IT",
			TilingAware:           false,
			EncryptionScalable:    false,
		}
	case MGX:
		return Features{
			EncryptionGranularity: "16B",
			IntegrityGranularity:  fmt.Sprintf("%dB", s.Block),
			OffChipMetadata:       "MAC",
			TilingAware:           false,
			EncryptionScalable:    false,
		}
	case SeDA:
		return Features{
			EncryptionGranularity: "bandwidth-aware",
			IntegrityGranularity:  "multi-level",
			OffChipMetadata:       "minimal to no cost",
			TilingAware:           true,
			EncryptionScalable:    true,
		}
	default:
		return Features{
			EncryptionGranularity: "none",
			IntegrityGranularity:  "none",
			OffChipMetadata:       "none",
		}
	}
}

// Options configures the protection unit's on-chip metadata caches
// (paper §IV-A: 16 KB VN cache, 8 KB MAC cache, LRU, write-back,
// write-allocate) and how the schemes' overlay streams are encoded.
type Options struct {
	VNCacheBytes  int
	MACCacheBytes int
	CacheLine     int
	CacheWays     int

	// CoalesceOverlays merges adjacent same-cycle, same-kind metadata
	// emissions that are contiguous in the address space (e.g. an SGX
	// multi-line MAC or VN fill) into one multi-line overlay entry.
	// The DRAM burst explode of a coalesced overlay is bit-identical
	// to the raw stream (see trace.Overlay.AppendCoalesce and the
	// coalescing invariant in DESIGN.md), so every figure is
	// unchanged; only the entry count — and with it overlay memory and
	// per-entry explode overhead — drops. Raw mode exists for trace
	// dumps (seda-trace -raw) and the equivalence tests.
	CoalesceOverlays bool

	// OptBlkCache, when non-nil, memoizes SeDA's per-layer authblock
	// searches by run-set geometry, sharing them across every
	// evaluation in the process whose tilings coincide (server and
	// edge NPUs of one sweep, repeated sweeps). Hits are bit-identical
	// to fresh searches; nil keeps every search local.
	OptBlkCache *OptBlkCache
}

// DefaultOptions returns the paper's cache configuration, with
// overlay coalescing enabled.
func DefaultOptions() Options {
	return Options{
		VNCacheBytes:     16 * 1024,
		MACCacheBytes:    8 * 1024,
		CacheLine:        64,
		CacheWays:        8,
		CoalesceOverlays: true,
	}
}

// Metadata address-space layout: disjoint from the data regions in
// scalesim.
const (
	MACBase      uint64 = 0x1_0000_0000
	VNBase       uint64 = 0x1_4000_0000
	TreeBase     uint64 = 0x1_8000_0000
	TreeLevelGap uint64 = 0x0400_0000 // 64 MB of node space per level
	LayerMACBase uint64 = 0x2_0000_0000

	macEntryBytes = 8 // 64-bit MAC
	vnEntryBytes  = 8 // 56-bit VN stored in an 8B slot
)

// TreeLevels is the number of interior integrity-tree levels walked
// above the VN lines. With an 8-ary tree over the VN lines of a 4 GB
// protected space at 64 B blocks (~8 M counter lines), eight levels
// reach a single root, which is held on-chip and never fetched.
const TreeLevels = 8

// LayerOverhead itemizes one layer's protection cost in bytes.
type LayerOverhead struct {
	DataBytes      uint64 // baseline tensor traffic
	MACBytes       uint64
	VNBytes        uint64
	TreeBytes      uint64
	OverFetchBytes uint64 // misaligned-read over-fetch + write RMW
	OptBlk         int    // SeDA's chosen block (0 for other schemes)
}

// MetaBytes sums all non-data overhead.
func (o LayerOverhead) MetaBytes() uint64 {
	return o.MACBytes + o.VNBytes + o.TreeBytes + o.OverFetchBytes
}

// ProtectedLayer is a layer's augmented trace plus accounting. The
// augmented trace is represented as two streams: the Spine — the
// scheme-independent data-access stream, aliased read-only from the
// scalesim layer and shared by every scheme evaluated off the same
// simulation — and the Deltas overlay holding only what this scheme
// added, anchored into the spine. dram.RunOverlay consumes the two
// streams directly; Materialize (or the Protect wrapper, which fills
// Trace) flattens them for consumers that want one slice.
type ProtectedLayer struct {
	LayerID int

	// Spine is the shared data-access stream. Never mutate it: it is
	// aliased by the scalesim result and by other schemes' layers.
	Spine *trace.Trace

	// Deltas is this scheme's metadata/over-fetch overlay.
	Deltas *trace.Overlay

	// Trace is the flattened spine+deltas merge. ProtectAll leaves it
	// nil; Protect materializes it.
	Trace *trace.Trace

	Overhead LayerOverhead
}

// Materialize returns the layer's flat augmented trace, building it
// from the spine and overlay if Protect has not already done so.
func (pl *ProtectedLayer) Materialize() *trace.Trace {
	if pl.Trace == nil {
		pl.Trace = pl.Deltas.Materialize(pl.Spine)
	}
	return pl.Trace
}

// Result is a protected network run.
type Result struct {
	Scheme Scheme
	Layers []ProtectedLayer

	// DrainWrites is how many trailing overlay accesses of the final
	// layer were emitted by the end-of-inference metadata-cache drain
	// (SGX only; zero for the other schemes).
	DrainWrites int
}

// TotalDataBytes sums baseline traffic across layers.
func (r *Result) TotalDataBytes() uint64 {
	var s uint64
	for i := range r.Layers {
		s += r.Layers[i].Overhead.DataBytes
	}
	return s
}

// TotalMetaBytes sums protection overhead across layers.
func (r *Result) TotalMetaBytes() uint64 {
	var s uint64
	for i := range r.Layers {
		s += r.Layers[i].Overhead.MetaBytes()
	}
	return s
}

// TrafficOverheadRatio returns (data+meta)/data − 1, the normalized
// memory-traffic overhead of Fig. 5.
func (r *Result) TrafficOverheadRatio() float64 {
	d := r.TotalDataBytes()
	if d == 0 {
		return 0
	}
	return float64(r.TotalMetaBytes()) / float64(d)
}

// regionBase returns the base address of the tensor region containing
// addr, used to anchor each region's protection-block grid.
func regionBase(addr uint64) uint64 {
	switch {
	case addr >= scalesim.WeightsBase:
		return scalesim.WeightsBase
	case addr >= scalesim.ActBBase:
		return scalesim.ActBBase
	default:
		return scalesim.ActABase
	}
}

// newMetaCache builds a metadata cache or panics on a misconfigured
// geometry (Options are internal and validated here).
func newMetaCache(size, line, ways int) *cache.Cache {
	c, err := cache.New(cache.Config{SizeBytes: size, LineBytes: line, Ways: ways})
	if err != nil {
		panic("memprot: bad metadata cache geometry: " + err.Error())
	}
	return c
}
