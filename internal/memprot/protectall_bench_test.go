package memprot

import (
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/scalesim"
)

// allocBytes measures heap bytes allocated while fn runs.
func allocBytes(t *testing.T, fn func()) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

func benchNet(b *testing.B, name string, server bool) *scalesim.NetworkResult {
	b.Helper()
	rows, cols, sram := 32, 32, 480*1024
	if server {
		rows, cols, sram = 256, 256, 24*1024*1024
	}
	cfg, err := scalesim.New(rows, cols, sram)
	if err != nil {
		b.Fatal(err)
	}
	res, err := cfg.SimulateNetwork(model.ByName(name))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkProtectAll measures the protection phase on the sweep hot
// path in three configurations:
//
//   - independent: six Protect calls, each materializing its flat
//     augmented trace — the seed pipeline's shape.
//   - shared-spine: one ProtectAll walk; schemes emit overlay deltas
//     off the shared data spine, nothing is materialized.
//   - shared-spine-arena: ProtectAllArena drawing overlay storage from
//     a warmed arena — the seda sweep's steady state, where workload
//     N+1 refills the buffers workload N grew. This is the
//     configuration the >= 4x per-scheme allocated-bytes acceptance
//     target refers to (recorded in BENCH_PIPELINE.json): with the
//     spine shared and the overlays recycled, steady-state allocation
//     is the SeDA block search plus bookkeeping, not the trace data.
func BenchmarkProtectAll(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		server bool
	}{
		{"server", true},
		{"edge", false},
	} {
		net := benchNet(b, "rest", cfg.server)
		schemes := AllSchemes()
		b.Run(cfg.name+"/independent", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, s := range schemes {
					if _, err := Protect(s, net, DefaultOptions()); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(cfg.name+"/shared-spine", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ProtectAll(schemes, net, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/shared-spine-arena", func(b *testing.B) {
			arena := NewArena()
			warm, err := ProtectAllArena(schemes, net, DefaultOptions(), arena)
			if err != nil {
				b.Fatal(err)
			}
			arena.Release(warm)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs, err := ProtectAllArena(schemes, net, DefaultOptions(), arena)
				if err != nil {
					b.Fatal(err)
				}
				arena.Release(rs)
			}
		})
	}
}

// TestProtectAllAllocatesFarLessThanIndependentRuns is the
// non-benchmark guard on the steady-state property, with a
// deliberately generous factor so measurement noise cannot flake it:
// a warmed shared-spine+arena evaluation must allocate at least 3x
// less than six independent Protect calls (the benchmark records the
// real number, which is far larger). The factor was 4x before overlay
// coalescing; coalescing shrinks the independent baseline too (its
// materialized traces carry several-fold fewer overlay entries), so
// the multiplier between the two paths legitimately narrowed.
func TestProtectAllAllocatesFarLessThanIndependentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	net := serverNet(t, "ncf")
	schemes := AllSchemes()
	arena := NewArena()
	warm, err := ProtectAllArena(schemes, net, DefaultOptions(), arena)
	if err != nil {
		t.Fatal(err)
	}
	arena.Release(warm)
	shared := allocBytes(t, func() {
		rs, err := ProtectAllArena(schemes, net, DefaultOptions(), arena)
		if err != nil {
			t.Fatal(err)
		}
		arena.Release(rs)
	})
	independent := allocBytes(t, func() {
		for _, s := range schemes {
			if _, err := Protect(s, net, DefaultOptions()); err != nil {
				t.Fatal(err)
			}
		}
	})
	if shared*3 > independent {
		t.Errorf("steady-state shared-spine evaluation allocated %d B vs %d B independent (< 3x reduction)",
			shared, independent)
	}
}
