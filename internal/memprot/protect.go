package memprot

import (
	"fmt"

	"repro/internal/authblock"
	"repro/internal/cache"
	"repro/internal/scalesim"
	"repro/internal/tiling"
	"repro/internal/trace"
)

// Protect runs a scheme over a simulated network and returns the
// augmented per-layer traces and overhead accounting.
func Protect(s Scheme, net *scalesim.NetworkResult, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := newProtector(s, opts)
	if s.Kind == SeDA {
		p.precomputeSeDABlocks(net)
	}
	res := &Result{Scheme: s}
	for i := range net.Layers {
		res.Layers = append(res.Layers, p.protectLayer(&net.Layers[i]))
	}
	p.drain(res)
	return res, nil
}

// tensorRuns collects a layer's data runs for one tensor, rebased to
// the tensor's minimum address so block grids anchor per tensor.
func tensorRuns(lr *scalesim.LayerResult, tn trace.Tensor) (runs []trace.Access, base uint64) {
	first := true
	for _, a := range lr.Trace.Accesses {
		if a.Class != trace.Data || a.Tensor != tn {
			continue
		}
		if first || a.Addr < base {
			base = a.Addr
			first = false
		}
	}
	for _, a := range lr.Trace.Accesses {
		if a.Class != trace.Data || a.Tensor != tn {
			continue
		}
		ra := a
		ra.Addr -= base
		runs = append(runs, ra)
	}
	return runs, base
}

// precomputeSeDABlocks chooses every layer's per-tensor optBlk with
// the inter-layer awareness of Fig. 3(b): the activation tensor
// between layer i and layer i+1 is written with layer i's ofmap
// pattern and read with layer i+1's ifmap pattern, so one block grid
// must serve both. The search therefore runs over the *union* of the
// producer's writes and the consumer's reads; weights are searched per
// layer. All searches use the on-chip-MAC weights (alignment only).
func (p *protector) precomputeSeDABlocks(net *scalesim.NetworkResult) {
	n := len(net.Layers)
	p.sedaBlocks = make([]map[trace.Tensor]uint64, n)
	p.sedaBases = make([]map[trace.Tensor]uint64, n)
	for i := range net.Layers {
		p.sedaBlocks[i] = make(map[trace.Tensor]uint64)
		p.sedaBases[i] = make(map[trace.Tensor]uint64)
	}
	w := authblock.OnChipMACWeights()

	for i := range net.Layers {
		// Weights: intra-layer only.
		wruns, wbase := tensorRuns(&net.Layers[i], trace.Weights)
		if len(wruns) > 0 {
			p.sedaBlocks[i][trace.Weights] = uint64(authblock.SearchWeighted(wruns, w).Best.Block)
			p.sedaBases[i][trace.Weights] = wbase
		}

		// Activation tensor between layer i (producer) and i+1
		// (consumer): shared grid over the union of both patterns.
		oruns, obase := tensorRuns(&net.Layers[i], trace.OFMap)
		union := oruns
		base := obase
		if i+1 < n {
			iruns, ibase := tensorRuns(&net.Layers[i+1], trace.IFMap)
			if len(iruns) > 0 {
				if len(union) == 0 || ibase < base {
					base = ibase
				}
				// Re-rebase both sets to the common base.
				union = rebaseUnion(oruns, obase, iruns, ibase, base)
			}
		}
		if len(union) > 0 {
			blk := uint64(authblock.SearchWeighted(union, w).Best.Block)
			p.sedaBlocks[i][trace.OFMap] = blk
			p.sedaBases[i][trace.OFMap] = base
			if i+1 < n {
				p.sedaBlocks[i+1][trace.IFMap] = blk
				p.sedaBases[i+1][trace.IFMap] = base
			}
		}
		// Layer 0's ifmap has no producer: intra-layer search.
		if i == 0 {
			iruns, ibase := tensorRuns(&net.Layers[0], trace.IFMap)
			if len(iruns) > 0 {
				p.sedaBlocks[0][trace.IFMap] = uint64(authblock.SearchWeighted(iruns, w).Best.Block)
				p.sedaBases[0][trace.IFMap] = ibase
			}
		}
	}
}

// rebaseUnion shifts two run sets (already rebased to their own bases)
// onto a common base and concatenates them.
func rebaseUnion(a []trace.Access, abase uint64, b []trace.Access, bbase, common uint64) []trace.Access {
	out := make([]trace.Access, 0, len(a)+len(b))
	for _, r := range a {
		r.Addr += abase - common
		out = append(out, r)
	}
	for _, r := range b {
		r.Addr += bbase - common
		out = append(out, r)
	}
	return out
}

// drain writes back the dirty metadata remaining in the SGX caches at
// the end of the inference, charging the traffic (and trace accesses)
// to the final layer. Other schemes hold no cached metadata.
func (p *protector) drain(res *Result) {
	if p.scheme.Kind != SGX || len(res.Layers) == 0 {
		return
	}
	last := &res.Layers[len(res.Layers)-1]
	line := uint64(p.opts.CacheLine)
	var lastCycle uint64
	if n := last.Trace.Len(); n > 0 {
		lastCycle = last.Trace.Accesses[n-1].Cycle
	}
	for _, c := range []struct {
		cache *cache.Cache
		class trace.Class
		bytes *uint64
	}{
		{p.macc, trace.MACMeta, &last.Overhead.MACBytes},
		{p.vnc, trace.VNMeta, &last.Overhead.VNBytes},
	} {
		wb := c.cache.Flush()
		if wb == 0 {
			continue
		}
		// The drained lines' individual addresses are immaterial for
		// timing (back-to-back metadata writes); emit one aggregate
		// write per cache.
		last.Trace.Append(trace.Access{
			Cycle:  lastCycle,
			Addr:   VNBase - line, // metadata region, distinct from data
			Bytes:  uint32(wb * line),
			Kind:   trace.Write,
			Class:  c.class,
			Tensor: trace.Metadata,
			Layer:  uint16(last.LayerID),
		})
		*c.bytes += wb * line
	}
}

// protector holds per-network state (metadata caches persist across
// layers within one inference).
type protector struct {
	scheme Scheme
	opts   Options
	vnc    *cache.Cache // VN + integrity-tree cache (SGX)
	macc   *cache.Cache // MAC cache (SGX)

	// SeDA's precomputed per-layer, per-tensor block grids (block
	// size and grid anchor), chosen with inter-layer awareness.
	sedaBlocks []map[trace.Tensor]uint64
	sedaBases  []map[trace.Tensor]uint64
}

func newProtector(s Scheme, opts Options) *protector {
	p := &protector{scheme: s, opts: opts}
	if s.Kind == SGX {
		p.vnc = newMetaCache(opts.VNCacheBytes, opts.CacheLine, opts.CacheWays)
		p.macc = newMetaCache(opts.MACCacheBytes, opts.CacheLine, opts.CacheWays)
	}
	return p
}

func (p *protector) protectLayer(lr *scalesim.LayerResult) ProtectedLayer {
	pl := ProtectedLayer{
		LayerID: lr.LayerID,
		Trace:   &trace.Trace{},
	}
	// Every scheme forwards each data access at least once; reserving
	// the source length up front saves the early doubling reallocations
	// on the hot append path.
	pl.Trace.Reserve(lr.Trace.Len())
	switch p.scheme.Kind {
	case Baseline:
		pl.Trace.AppendAll(lr.Trace)
		pl.Overhead.DataBytes = lr.DataBytes()
	case SGX:
		p.protectSGX(lr, &pl)
	case MGX:
		p.protectMGX(lr, &pl)
	case SeDA:
		p.protectSeDA(lr, &pl)
	default:
		panic(fmt.Sprintf("memprot: unhandled scheme %v", p.scheme.Kind))
	}
	return pl
}

// protectSGX models the full SGX-style protection unit: per-block MACs
// through the MAC cache, per-block VNs through the VN cache, and a
// tree walk above every VN-line miss, also through the VN cache.
func (p *protector) protectSGX(lr *scalesim.LayerResult, pl *ProtectedLayer) {
	block := uint64(p.scheme.Block)
	line := uint64(p.opts.CacheLine)
	blocksPerMACLine := line / macEntryBytes
	blocksPerVNLine := line / vnEntryBytes

	for _, a := range lr.Trace.Accesses {
		pl.Trace.Append(a)
		pl.Overhead.DataBytes += uint64(a.Bytes)

		base := regionBase(a.Addr)
		rel := a.Addr - base
		n := uint64(a.Bytes)
		b0 := rel / block
		b1 := (rel + n - 1) / block
		write := a.Kind == trace.Write

		// MAC lines covering blocks [b0, b1], through the MAC cache.
		for ml := b0 / blocksPerMACLine; ml <= b1/blocksPerMACLine; ml++ {
			macAddr := MACBase + (base>>6)*macEntryBytes + ml*line
			r := p.macc.Access(macAddr, write)
			if r.Fill {
				p.emitMeta(pl, a, macAddr, uint32(line), trace.Read, trace.MACMeta)
				pl.Overhead.MACBytes += line
			}
			if r.Writeback {
				p.emitMeta(pl, a, macAddr, uint32(line), trace.Write, trace.MACMeta)
				pl.Overhead.MACBytes += line
			}
		}

		// VN lines plus the integrity-tree walk above each miss.
		for vl := b0 / blocksPerVNLine; vl <= b1/blocksPerVNLine; vl++ {
			vnAddr := VNBase + (base>>6)*vnEntryBytes + vl*line
			r := p.vnc.Access(vnAddr, write)
			if r.Fill {
				p.emitMeta(pl, a, vnAddr, uint32(line), trace.Read, trace.VNMeta)
				pl.Overhead.VNBytes += line
				// Tree leaves are indexed by global VN line so nodes
				// from different tensor regions never collide.
				p.walkTree(pl, a, (vnAddr-VNBase)/line, write)
			}
			if r.Writeback {
				p.emitMeta(pl, a, vnAddr, uint32(line), trace.Write, trace.VNMeta)
				pl.Overhead.VNBytes += line
			}
		}

		// Whole-block granularity: over-fetch on reads, RMW on writes.
		p.chargeAlignment(pl, a, base, block)
	}
}

// walkTree climbs the integrity tree above VN line vl, fetching each
// level through the VN cache until a cached (already-verified)
// ancestor is found. The root is on-chip and never fetched.
func (p *protector) walkTree(pl *ProtectedLayer, a trace.Access, vl uint64, write bool) {
	line := uint64(p.opts.CacheLine)
	idx := vl
	for lvl := 1; lvl <= TreeLevels; lvl++ {
		idx /= 8 // 8-ary tree
		nodeAddr := TreeBase + uint64(lvl-1)*TreeLevelGap + idx*line
		r := p.vnc.Access(nodeAddr, write)
		if !r.Fill {
			return // verified ancestor cached: walk stops
		}
		p.emitMeta(pl, a, nodeAddr, uint32(line), trace.Read, trace.TreeMeta)
		pl.Overhead.TreeBytes += line
		if r.Writeback {
			p.emitMeta(pl, a, nodeAddr, uint32(line), trace.Write, trace.TreeMeta)
			pl.Overhead.TreeBytes += line
		}
	}
}

// protectMGX models MGX: version numbers are generated on-chip from
// DNN state (zero traffic), MACs are fetched uncached at 8 B per
// protection block, contiguously for a contiguous run.
func (p *protector) protectMGX(lr *scalesim.LayerResult, pl *ProtectedLayer) {
	block := uint64(p.scheme.Block)
	for _, a := range lr.Trace.Accesses {
		pl.Trace.Append(a)
		pl.Overhead.DataBytes += uint64(a.Bytes)

		base := regionBase(a.Addr)
		rel := a.Addr - base
		n := uint64(a.Bytes)
		blocks := tiling.BlocksTouched(rel, n, block)
		macBytes := blocks * macEntryBytes
		macAddr := MACBase + (base>>6)*macEntryBytes + (rel/block)*macEntryBytes
		kind := trace.Read
		if a.Kind == trace.Write {
			kind = trace.Write
		}
		p.emitMeta(pl, a, macAddr, uint32(macBytes), kind, trace.MACMeta)
		pl.Overhead.MACBytes += macBytes

		p.chargeAlignment(pl, a, base, block)
	}
}

// protectSeDA models SeDA's multi-level integrity verification: the
// authblock search picks a tile-aligned optBlk per layer, optBlk MACs
// are computed and XOR-aggregated on-chip, and only the layer MAC
// lives off-chip (one metadata line read at the layer's first access
// and one write at its last). Version numbers are on-chip (MGX-style)
// and encryption is bandwidth-aware (no traffic impact).
func (p *protector) protectSeDA(lr *scalesim.LayerResult, pl *ProtectedLayer) {
	// Per-tensor block grids were precomputed with inter-layer
	// awareness (the MAC binds fmap_idx, so each feature map carries
	// its own grid; the activation tensor's grid is shared between
	// its producer's writes and its consumer's reads).
	blocks := p.sedaBlocks[lr.LayerID]
	bases := p.sedaBases[lr.LayerID]
	if b, ok := blocks[trace.IFMap]; ok {
		pl.Overhead.OptBlk = int(b)
	} else {
		pl.Overhead.OptBlk = authblock.MinBlock
	}

	line := uint64(p.opts.CacheLine)
	lmAddr := LayerMACBase + uint64(lr.LayerID)*line

	first := true
	var lastCycle uint64
	for _, a := range lr.Trace.Accesses {
		if first {
			// Load the layer MAC line for the ifmap being consumed.
			p.emitMeta(pl, a, lmAddr, uint32(line), trace.Read, trace.MACMeta)
			pl.Overhead.MACBytes += line
			first = false
		}
		pl.Trace.Append(a)
		pl.Overhead.DataBytes += uint64(a.Bytes)

		// Residual misalignment with the searched optBlk (zero when a
		// tile-aligned divisor exists, which is the common case).
		blk, ok := blocks[a.Tensor]
		if !ok {
			blk = authblock.MinBlock
		}
		p.chargeAlignment(pl, a, bases[a.Tensor], blk)
		lastCycle = a.Cycle
	}
	if !first {
		// Store the updated layer MAC for the ofmap just produced.
		last := lr.Trace.Accesses[len(lr.Trace.Accesses)-1]
		last.Cycle = lastCycle
		p.emitMeta(pl, last, lmAddr, uint32(line), trace.Write, trace.MACMeta)
		pl.Overhead.MACBytes += line
	}
}

// chargeAlignment adds over-fetch (reads) or RMW read-back (writes)
// for runs misaligned with the protection-block grid anchored at base.
func (p *protector) chargeAlignment(pl *ProtectedLayer, a trace.Access, base, block uint64) {
	rel := a.Addr - base
	n := uint64(a.Bytes)
	var extra uint64
	if a.Kind == trace.Read {
		extra = tiling.ReadOverFetch(rel, n, block)
	} else {
		extra = tiling.WriteRMWBytes(rel, n, block)
	}
	if extra == 0 {
		return
	}
	addr := base + tiling.RoundDown(rel, block)
	p.emitMeta(pl, a, addr, uint32(extra), trace.Read, trace.OverFetch)
	pl.Overhead.OverFetchBytes += extra
}

// emitMeta appends a metadata access inheriting the triggering
// access's issue cycle and layer/tile tags.
func (p *protector) emitMeta(pl *ProtectedLayer, src trace.Access, addr uint64, bytes uint32, kind trace.Kind, class trace.Class) {
	pl.Trace.Append(trace.Access{
		Cycle:  src.Cycle,
		Addr:   addr,
		Bytes:  bytes,
		Kind:   kind,
		Class:  class,
		Tensor: trace.Metadata,
		Layer:  src.Layer,
		Tile:   src.Tile,
	})
}
