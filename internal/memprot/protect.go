package memprot

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/authblock"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/scalesim"
	"repro/internal/tiling"
	"repro/internal/trace"
)

// Arena recycles overlay storage across ProtectAll evaluations. On a
// multi-workload sweep the per-scheme overlays are consumed (by the
// DRAM model) and discarded once per workload; drawing them from an
// arena lets the next workload refill the previous one's backing
// arrays instead of growing fresh ones, which removes the overlay —
// the dominant allocation of the protection phase — from the
// steady-state profile.
//
// The free list is FIFO and ProtectAllArena both acquires and releases
// overlays in layer-major (layer, scheme) order, so on repeated
// evaluations each slot tends to get back a buffer grown to its own
// previous size — an
// SGX layer's 100k-entry array is not wasted on a Baseline layer that
// needs none. The arena holds strong references (unlike sync.Pool), so
// a GC mid-sweep cannot empty it. Safe for concurrent use.
//
// Callers that pass an Arena to ProtectAllArena own the release
// discipline: call Release once the results are no longer referenced.
type Arena struct {
	mu   sync.Mutex
	free []*trace.Overlay
	head int // free[head:] are available
}

// NewArena builds an empty overlay arena.
func NewArena() *Arena { return &Arena{} }

// get returns an empty overlay, recycled FIFO if one is available.
func (a *Arena) get() *trace.Overlay {
	if a == nil {
		return &trace.Overlay{}
	}
	a.mu.Lock()
	if a.head < len(a.free) {
		ov := a.free[a.head]
		a.free[a.head] = nil
		a.head++
		a.mu.Unlock()
		ov.Reset()
		return ov
	}
	a.mu.Unlock()
	return &trace.Overlay{}
}

// Release returns every overlay in the results to the arena. The
// results (and anything aliasing their Deltas) must not be used
// afterwards.
func (a *Arena) Release(rs []*Result) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.head > 0 {
		// Compact the consumed prefix so the queue's backing array
		// stays bounded by the peak live inventory even when
		// concurrent workloads keep it partially stocked.
		n := copy(a.free, a.free[a.head:])
		for i := n; i < len(a.free); i++ {
			a.free[i] = nil
		}
		a.free = a.free[:n]
		a.head = 0
	}
	// Push in layer-major (layer, scheme) order — the same order
	// ProtectAllArena acquires in — so each slot's buffer comes back
	// around to an equivalent slot next evaluation.
	layers := 0
	for _, r := range rs {
		if r != nil && len(r.Layers) > layers {
			layers = len(r.Layers)
		}
	}
	for i := 0; i < layers; i++ {
		for _, r := range rs {
			if r == nil || i >= len(r.Layers) {
				continue
			}
			if ov := r.Layers[i].Deltas; ov != nil {
				r.Layers[i].Deltas = nil
				a.free = append(a.free, ov)
			}
		}
	}
	a.mu.Unlock()
}

// ProtectAll evaluates a set of schemes over one simulated network
// around a shared, immutable data spine: each layer's trace is walked
// exactly once, with every access fanned out to all scheme emitters.
// Schemes never copy the data stream — each ProtectedLayer's Spine
// field aliases the scalesim layer trace, and the scheme contributes
// only its metadata/over-fetch overlay, anchored into the spine. The
// DRAM model consumes the two streams directly (dram.RunOverlay); the
// merge is byte-identical to the flat traces the schemes used to build.
func ProtectAll(schemes []Scheme, net *scalesim.NetworkResult, opts Options) ([]*Result, error) {
	return ProtectAllArena(schemes, net, opts, nil)
}

// ProtectAllArena is ProtectAll drawing overlay storage from an arena
// (which may be nil). See Arena for the recycling contract.
func ProtectAllArena(schemes []Scheme, net *scalesim.NetworkResult, opts Options, arena *Arena) ([]*Result, error) {
	return ProtectAllArenaCtx(context.Background(), schemes, net, opts, arena)
}

// ProtectAllArenaCtx is ProtectAllArena under a context, checked once
// per network layer — the protection walk is layer-streaming, so that
// is the natural all-or-nothing boundary. On cancellation the partial
// results are released back to the arena (nothing escapes to the
// caller, who must not Release on error) and ctx.Err() is returned.
func ProtectAllArenaCtx(ctx context.Context, schemes []Scheme, net *scalesim.NetworkResult, opts Options, arena *Arena) ([]*Result, error) {
	ctx, span := obs.Start(ctx, obs.StageProtect)
	defer span.End()
	ps := make([]*protector, len(schemes))
	results := make([]*Result, len(schemes))
	for k, s := range schemes {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		ps[k] = newProtector(s, opts)
		if s.Kind == SeDA {
			asp := obs.StartChild(ctx, obs.StageAuthblock)
			ps[k].precomputeSeDABlocks(net)
			asp.End()
		}
		results[k] = &Result{
			Scheme: s,
			Layers: make([]ProtectedLayer, len(net.Layers)),
		}
	}
	done := ctx.Done()
	for i := range net.Layers {
		if done != nil {
			select {
			case <-done:
				arena.Release(results)
				return nil, ctx.Err()
			default:
			}
		}
		lsp := obs.StartChild(ctx, obs.StageProtectLayer)
		lr := &net.Layers[i]
		for k := range ps {
			results[k].Layers[i] = ProtectedLayer{
				LayerID: lr.LayerID,
				Spine:   lr.Trace,
				Deltas:  arena.get(),
			}
			ps[k].beginLayer(lr, &results[k].Layers[i])
		}
		for j := range lr.Trace.Accesses {
			a := &lr.Trace.Accesses[j]
			for k := range ps {
				ps[k].access(j, a)
			}
		}
		for k := range ps {
			ps[k].endLayer()
		}
		lsp.End()
	}
	for k := range ps {
		ps[k].drain(results[k])
	}
	return results, nil
}

// Protect runs a single scheme over a simulated network and returns
// the augmented per-layer traces and overhead accounting. It is the
// flat-trace convenience wrapper over ProtectAll: each layer's Trace
// field holds the materialized spine+overlay merge.
func Protect(s Scheme, net *scalesim.NetworkResult, opts Options) (*Result, error) {
	rs, err := ProtectAll([]Scheme{s}, net, opts)
	if err != nil {
		return nil, err
	}
	r := rs[0]
	for i := range r.Layers {
		r.Layers[i].Materialize()
	}
	return r, nil
}

// OptBlkCache memoizes SeDA authblock searches by run-set geometry,
// so evaluations whose tilings coincide — the same layer shapes on
// NPUs whose schedules agree, or repeated sweeps in one process —
// share one search instead of re-scoring every candidate. The key is
// the RunSet fingerprint (rebased offsets, lengths, directions,
// multiplicities) plus the weight scenario; the cached value is the
// chosen block, a pure function of the key, so hits are bit-identical
// to fresh searches. Safe for concurrent use; bounded, with inserts
// dropped once full (a sweep's working set is a few thousand entries).
type OptBlkCache struct {
	mu     sync.Mutex
	m      map[optBlkKey]uint64
	hits   uint64
	misses uint64
}

type optBlkKey struct {
	fp [32]byte
	w  authblock.Weights
}

// optBlkCacheMax bounds the cache; ~3k entries cover a full
// two-NPU, 13-workload sweep.
const optBlkCacheMax = 1 << 16

// NewOptBlkCache builds an empty search cache.
func NewOptBlkCache() *OptBlkCache {
	return &OptBlkCache{m: make(map[optBlkKey]uint64)}
}

// Entries returns how many searches are memoized.
func (c *OptBlkCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Hits returns how many searches were answered from the cache.
func (c *OptBlkCache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many searches had to be computed.
func (c *OptBlkCache) Misses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// search returns the optBlk for a run set under the given weights,
// memoized when the cache is non-nil.
func (c *OptBlkCache) search(rs *authblock.RunSet, w authblock.Weights) uint64 {
	if c == nil {
		return uint64(rs.SearchWeighted(w).Best.Block)
	}
	k := optBlkKey{fp: rs.Fingerprint(), w: w}
	c.mu.Lock()
	if b, ok := c.m[k]; ok {
		c.hits++
		c.mu.Unlock()
		return b
	}
	c.misses++
	c.mu.Unlock()
	b := uint64(rs.SearchWeighted(w).Best.Block)
	c.mu.Lock()
	if len(c.m) < optBlkCacheMax {
		c.m[k] = b
	}
	c.mu.Unlock()
	return b
}

// precomputeSeDABlocks chooses every layer's per-tensor optBlk with
// the inter-layer awareness of Fig. 3(b): the activation tensor
// between layer i and layer i+1 is written with layer i's ofmap
// pattern and read with layer i+1's ifmap pattern, so one block grid
// must serve both. The search therefore runs over the *union* of the
// producer's writes and the consumer's reads; weights are searched per
// layer. All searches use the on-chip-MAC weights (alignment only).
//
// The search input comes from a single walk of each layer's spine:
// authblock.CollectLayer summarizes the per-tensor runs once, the
// producer/consumer union merges two summaries instead of re-scanning
// either trace, and each candidate is scored incrementally against the
// summary (see authblock.RunSet). With Options.OptBlkCache set, the
// searches themselves are shared across every evaluation in the
// process whose run geometry coincides — in particular the server and
// edge NPU evaluations of one sweep wherever their tilings agree.
func (p *protector) precomputeSeDABlocks(net *scalesim.NetworkResult) {
	n := len(net.Layers)
	p.sedaBlocks = make([]map[trace.Tensor]uint64, n)
	p.sedaBases = make([]map[trace.Tensor]uint64, n)
	for i := range net.Layers {
		p.sedaBlocks[i] = make(map[trace.Tensor]uint64)
		p.sedaBases[i] = make(map[trace.Tensor]uint64)
	}
	w := authblock.OnChipMACWeights()
	cache := p.opts.OptBlkCache

	// One spine walk per layer feeds every search below.
	runs := make([]authblock.LayerRuns, n)
	for i := range net.Layers {
		runs[i] = authblock.CollectLayer(net.Layers[i].Trace)
	}

	for i := range net.Layers {
		// Weights: intra-layer only.
		if wrs := &runs[i].Weights; !wrs.Empty() {
			p.sedaBlocks[i][trace.Weights] = cache.search(wrs, w)
			p.sedaBases[i][trace.Weights] = wrs.Base
		}

		// Activation tensor between layer i (producer) and i+1
		// (consumer): shared grid over the union of both patterns.
		var next *authblock.RunSet
		if i+1 < n {
			next = &runs[i+1].IFMap
		} else {
			next = &authblock.RunSet{}
		}
		union := authblock.Union(&runs[i].OFMap, next)
		if !union.Empty() {
			blk := cache.search(&union, w)
			p.sedaBlocks[i][trace.OFMap] = blk
			p.sedaBases[i][trace.OFMap] = union.Base
			if i+1 < n {
				p.sedaBlocks[i+1][trace.IFMap] = blk
				p.sedaBases[i+1][trace.IFMap] = union.Base
			}
		}
		// Layer 0's ifmap has no producer: intra-layer search.
		if i == 0 {
			if irs := &runs[0].IFMap; !irs.Empty() {
				p.sedaBlocks[0][trace.IFMap] = cache.search(irs, w)
				p.sedaBases[0][trace.IFMap] = irs.Base
			}
		}
	}
}

// drain writes back the dirty metadata remaining in the SGX caches at
// the end of the inference, charging the traffic (and overlay
// accesses) to the final layer. Other schemes hold no cached metadata.
// Each cache's flush is charged at the top line of its own metadata
// region — the MAC cache in [MACBase, VNBase), the VN cache in
// [VNBase, TreeBase) — so per-class traffic lands in the right region
// and maps to the channels that region's lines actually use.
func (p *protector) drain(res *Result) {
	if p.scheme.Kind != SGX || len(res.Layers) == 0 {
		return
	}
	last := &res.Layers[len(res.Layers)-1]
	line := uint64(p.opts.CacheLine)
	anchor := last.Spine.Len()
	var lastCycle uint64
	if n := last.Spine.Len(); n > 0 {
		lastCycle = last.Spine.Accesses[n-1].Cycle
	}
	for _, c := range []struct {
		cache *cache.Cache
		class trace.Class
		addr  uint64
		bytes *uint64
	}{
		{p.macc, trace.MACMeta, VNBase - line, &last.Overhead.MACBytes},
		{p.vnc, trace.VNMeta, TreeBase - line, &last.Overhead.VNBytes},
	} {
		wb := c.cache.Flush()
		if wb == 0 {
			continue
		}
		// The drained lines' individual addresses are immaterial for
		// timing (back-to-back metadata writes); emit one aggregate
		// write per cache, addressed inside that cache's region.
		last.Deltas.Append(anchor, trace.Access{
			Cycle:  lastCycle,
			Addr:   c.addr,
			Bytes:  uint32(wb * line),
			Kind:   trace.Write,
			Class:  c.class,
			Tensor: trace.Metadata,
			Layer:  uint16(last.LayerID),
		})
		res.DrainWrites++
		*c.bytes += wb * line
	}
}

// protector holds per-network scheme state (metadata caches persist
// across layers within one inference) plus the streaming cursor for
// the layer currently being walked. ProtectAll drives it: beginLayer,
// then access for every spine index in order, then endLayer.
type protector struct {
	scheme Scheme
	opts   Options
	vnc    *cache.Cache // VN + integrity-tree cache (SGX)
	macc   *cache.Cache // MAC cache (SGX)

	// SeDA's precomputed per-layer, per-tensor block grids (block
	// size and grid anchor), chosen with inter-layer awareness.
	sedaBlocks []map[trace.Tensor]uint64
	sedaBases  []map[trace.Tensor]uint64

	// Streaming state for the current layer.
	pl     *ProtectedLayer
	lr     *scalesim.LayerResult
	anchor int // overlay anchor for metadata of the access in flight

	// SeDA per-layer cursor.
	sedaBlk    map[trace.Tensor]uint64
	sedaBase   map[trace.Tensor]uint64
	sedaFirst  bool
	sedaLMAddr uint64
}

func newProtector(s Scheme, opts Options) *protector {
	p := &protector{scheme: s, opts: opts}
	if s.Kind == SGX {
		p.vnc = newMetaCache(opts.VNCacheBytes, opts.CacheLine, opts.CacheWays)
		p.macc = newMetaCache(opts.MACCacheBytes, opts.CacheLine, opts.CacheWays)
	}
	return p
}

// beginLayer points the emitter at a new layer's output slot.
func (p *protector) beginLayer(lr *scalesim.LayerResult, pl *ProtectedLayer) {
	p.pl = pl
	p.lr = lr
	switch p.scheme.Kind {
	case Baseline:
		// The spine is the whole trace; the analytical count matches
		// the per-access sum (TestDataBytesInvariantAcrossSchemes).
		pl.Overhead.DataBytes = lr.DataBytes()
	case SeDA:
		p.sedaBlk = p.sedaBlocks[lr.LayerID]
		p.sedaBase = p.sedaBases[lr.LayerID]
		if b, ok := p.sedaBlk[trace.IFMap]; ok {
			pl.Overhead.OptBlk = int(b)
		} else {
			pl.Overhead.OptBlk = authblock.MinBlock
		}
		p.sedaFirst = true
		p.sedaLMAddr = LayerMACBase + uint64(lr.LayerID)*uint64(p.opts.CacheLine)
	}
}

// access fans one spine access (spine index j) into the scheme's
// overlay emitter.
func (p *protector) access(j int, a *trace.Access) {
	p.anchor = j + 1 // metadata trails its triggering access
	switch p.scheme.Kind {
	case Baseline:
		// Pure pass-through: the spine carries everything.
	case SGX:
		p.sgxAccess(a)
	case MGX:
		p.mgxAccess(a)
	case SeDA:
		p.sedaAccess(j, a)
	default:
		panic(fmt.Sprintf("memprot: unhandled scheme %v", p.scheme.Kind))
	}
}

// endLayer closes out per-layer metadata (SeDA's layer-MAC store).
func (p *protector) endLayer() {
	if p.scheme.Kind == SeDA && !p.sedaFirst {
		// Store the updated layer MAC for the ofmap just produced,
		// issued at the layer's final access.
		n := p.lr.Trace.Len()
		p.anchor = n
		p.emitMeta(p.lr.Trace.Accesses[n-1], p.sedaLMAddr, uint32(p.opts.CacheLine), trace.Write, trace.MACMeta)
		p.pl.Overhead.MACBytes += uint64(p.opts.CacheLine)
	}
	p.pl, p.lr = nil, nil
}

// metaRegionOffset maps a data-region base to its slice of a metadata
// region: one entry of entryBytes per protection block. Scaling by the
// scheme's block keeps distinct tensors' metadata ranges disjoint at
// every granularity (a fixed >>6 would be wrong for 512 B blocks,
// skewing channel mapping and region attribution).
func metaRegionOffset(base, block, entryBytes uint64) uint64 {
	return (base / block) * entryBytes
}

// sgxAccess models the full SGX-style protection unit for one data
// access: per-block MACs through the MAC cache, per-block VNs through
// the VN cache, and a tree walk above every VN-line miss, also through
// the VN cache.
func (p *protector) sgxAccess(a *trace.Access) {
	pl := p.pl
	block := uint64(p.scheme.Block)
	line := uint64(p.opts.CacheLine)
	blocksPerMACLine := line / macEntryBytes
	blocksPerVNLine := line / vnEntryBytes

	pl.Overhead.DataBytes += uint64(a.Bytes)

	base := regionBase(a.Addr)
	rel := a.Addr - base
	n := uint64(a.Bytes)
	b0 := rel / block
	b1 := (rel + n - 1) / block
	write := a.Kind == trace.Write

	// MAC lines covering blocks [b0, b1], through the MAC cache.
	macRegion := MACBase + metaRegionOffset(base, block, macEntryBytes)
	for ml := b0 / blocksPerMACLine; ml <= b1/blocksPerMACLine; ml++ {
		macAddr := macRegion + ml*line
		r := p.macc.Access(macAddr, write)
		if r.Fill {
			p.emitMeta(*a, macAddr, uint32(line), trace.Read, trace.MACMeta)
			pl.Overhead.MACBytes += line
		}
		if r.Writeback {
			p.emitMeta(*a, macAddr, uint32(line), trace.Write, trace.MACMeta)
			pl.Overhead.MACBytes += line
		}
	}

	// VN lines plus the integrity-tree walk above each miss.
	vnRegion := VNBase + metaRegionOffset(base, block, vnEntryBytes)
	for vl := b0 / blocksPerVNLine; vl <= b1/blocksPerVNLine; vl++ {
		vnAddr := vnRegion + vl*line
		r := p.vnc.Access(vnAddr, write)
		if r.Fill {
			p.emitMeta(*a, vnAddr, uint32(line), trace.Read, trace.VNMeta)
			pl.Overhead.VNBytes += line
			// Tree leaves are indexed by global VN line so nodes
			// from different tensor regions never collide.
			p.walkTree(*a, (vnAddr-VNBase)/line, write)
		}
		if r.Writeback {
			p.emitMeta(*a, vnAddr, uint32(line), trace.Write, trace.VNMeta)
			pl.Overhead.VNBytes += line
		}
	}

	// Whole-block granularity: over-fetch on reads, RMW on writes.
	p.chargeAlignment(*a, base, block)
}

// walkTree climbs the integrity tree above VN line vl, fetching each
// level through the VN cache until a cached (already-verified)
// ancestor is found. The root is on-chip and never fetched.
func (p *protector) walkTree(a trace.Access, vl uint64, write bool) {
	line := uint64(p.opts.CacheLine)
	idx := vl
	for lvl := 1; lvl <= TreeLevels; lvl++ {
		idx /= 8 // 8-ary tree
		nodeAddr := TreeBase + uint64(lvl-1)*TreeLevelGap + idx*line
		r := p.vnc.Access(nodeAddr, write)
		if !r.Fill {
			return // verified ancestor cached: walk stops
		}
		p.emitMeta(a, nodeAddr, uint32(line), trace.Read, trace.TreeMeta)
		p.pl.Overhead.TreeBytes += line
		if r.Writeback {
			p.emitMeta(a, nodeAddr, uint32(line), trace.Write, trace.TreeMeta)
			p.pl.Overhead.TreeBytes += line
		}
	}
}

// mgxAccess models MGX for one data access: version numbers are
// generated on-chip from DNN state (zero traffic), MACs are fetched
// uncached at 8 B per protection block, contiguously for a contiguous
// run.
func (p *protector) mgxAccess(a *trace.Access) {
	pl := p.pl
	block := uint64(p.scheme.Block)
	pl.Overhead.DataBytes += uint64(a.Bytes)

	base := regionBase(a.Addr)
	rel := a.Addr - base
	n := uint64(a.Bytes)
	blocks := tiling.BlocksTouched(rel, n, block)
	macBytes := blocks * macEntryBytes
	macAddr := MACBase + metaRegionOffset(base, block, macEntryBytes) + (rel/block)*macEntryBytes
	kind := trace.Read
	if a.Kind == trace.Write {
		kind = trace.Write
	}
	p.emitMeta(*a, macAddr, uint32(macBytes), kind, trace.MACMeta)
	pl.Overhead.MACBytes += macBytes

	p.chargeAlignment(*a, base, block)
}

// sedaAccess models SeDA's multi-level integrity verification for one
// data access: the authblock search picked a tile-aligned optBlk per
// layer, optBlk MACs are computed and XOR-aggregated on-chip, and only
// the layer MAC lives off-chip (one metadata line read at the layer's
// first access and one write at its last, emitted by endLayer).
// Version numbers are on-chip (MGX-style) and encryption is
// bandwidth-aware (no traffic impact).
func (p *protector) sedaAccess(j int, a *trace.Access) {
	pl := p.pl
	if p.sedaFirst {
		// Load the layer MAC line for the ifmap being consumed,
		// ahead of the first data access.
		p.anchor = j
		p.emitMeta(*a, p.sedaLMAddr, uint32(p.opts.CacheLine), trace.Read, trace.MACMeta)
		pl.Overhead.MACBytes += uint64(p.opts.CacheLine)
		p.sedaFirst = false
		p.anchor = j + 1
	}
	pl.Overhead.DataBytes += uint64(a.Bytes)

	// Residual misalignment with the searched optBlk (zero when a
	// tile-aligned divisor exists, which is the common case).
	blk, ok := p.sedaBlk[a.Tensor]
	if !ok {
		blk = authblock.MinBlock
	}
	p.chargeAlignment(*a, p.sedaBase[a.Tensor], blk)
}

// chargeAlignment adds over-fetch (reads) or RMW read-back (writes)
// for runs misaligned with the protection-block grid anchored at base.
func (p *protector) chargeAlignment(a trace.Access, base, block uint64) {
	rel := a.Addr - base
	n := uint64(a.Bytes)
	var extra uint64
	if a.Kind == trace.Read {
		extra = tiling.ReadOverFetch(rel, n, block)
	} else {
		extra = tiling.WriteRMWBytes(rel, n, block)
	}
	if extra == 0 {
		return
	}
	addr := base + tiling.RoundDown(rel, block)
	p.emitMeta(a, addr, uint32(extra), trace.Read, trace.OverFetch)
	p.pl.Overhead.OverFetchBytes += extra
}

// emitMeta appends a metadata access to the current layer's overlay at
// the current anchor, inheriting the triggering access's issue cycle
// and layer/tile tags. With coalescing enabled (the default), an
// emission that continues the previous one — same anchor, cycle, kind
// and class, contiguous address — folds into it instead of appending,
// so e.g. the line fills of a multi-line SGX MAC/VN walk become one
// multi-line entry with an identical burst explode.
func (p *protector) emitMeta(src trace.Access, addr uint64, bytes uint32, kind trace.Kind, class trace.Class) {
	a := trace.Access{
		Cycle:  src.Cycle,
		Addr:   addr,
		Bytes:  bytes,
		Kind:   kind,
		Class:  class,
		Tensor: trace.Metadata,
		Layer:  src.Layer,
		Tile:   src.Tile,
	}
	if p.opts.CoalesceOverlays {
		p.pl.Deltas.AppendCoalesce(p.anchor, a)
	} else {
		p.pl.Deltas.Append(p.anchor, a)
	}
}
