package memprot

import (
	"testing"

	"repro/internal/trace"
)

func TestSeDALayerMACTrafficExactlyTwoLinesPerLayer(t *testing.T) {
	// SeDA's only regular metadata traffic is the off-chip layer MAC
	// line: one read at the layer's start, one write at its end
	// (§IV-A "SeDA stores layer MACs off-chip" for fairness).
	net := edgeNet(t, "rest")
	r := protect(t, SchemeSeDA, net)
	line := uint64(DefaultOptions().CacheLine)
	for _, pl := range r.Layers {
		if pl.Overhead.MACBytes != 2*line {
			t.Errorf("layer %d: layer-MAC traffic %d bytes, want %d",
				pl.LayerID, pl.Overhead.MACBytes, 2*line)
		}
		var reads, writes int
		for _, a := range pl.Trace.Accesses {
			if a.Class != trace.MACMeta {
				continue
			}
			if a.Addr < LayerMACBase {
				t.Errorf("layer %d: layer MAC at %#x below LayerMACBase", pl.LayerID, a.Addr)
			}
			if a.Kind == trace.Read {
				reads++
			} else {
				writes++
			}
		}
		if reads != 1 || writes != 1 {
			t.Errorf("layer %d: %d MAC reads, %d writes, want 1/1", pl.LayerID, reads, writes)
		}
	}
}

func TestSeDALayerMACAddressesPerLayerDistinct(t *testing.T) {
	net := edgeNet(t, "mob")
	r := protect(t, SchemeSeDA, net)
	seen := map[uint64]int{}
	for _, pl := range r.Layers {
		for _, a := range pl.Trace.Accesses {
			if a.Class == trace.MACMeta && a.Kind == trace.Read {
				if prev, dup := seen[a.Addr]; dup {
					t.Fatalf("layers %d and %d share layer-MAC line %#x",
						prev, pl.LayerID, a.Addr)
				}
				seen[a.Addr] = pl.LayerID
			}
		}
	}
}

func TestSeDAOptBlkZeroAlignmentChargesOnMostLayers(t *testing.T) {
	// The intra-layer-aware optBlk should eliminate over-fetch/RMW on
	// the large majority of layers (small layers with sub-64B runs may
	// retain a residual charge).
	for _, name := range []string{"alex", "rest", "goo", "yolo", "trf"} {
		net := edgeNet(t, name)
		r := protect(t, SchemeSeDA, net)
		var charged, total int
		for _, pl := range r.Layers {
			total++
			if pl.Overhead.OverFetchBytes > 0 {
				charged++
			}
		}
		if charged*5 > total {
			t.Errorf("%s: %d/%d layers retain alignment charges under optBlk",
				name, charged, total)
		}
	}
}

func TestSGXTreeTrafficDecreasesWithWarmCache(t *testing.T) {
	// The integrity-tree walk is cache-filtered: the first layers pay
	// for cold top-of-tree nodes, later layers mostly hit. Total tree
	// traffic must therefore be well below the no-cache worst case of
	// TreeLevels lines per VN miss.
	net := edgeNet(t, "rest")
	r := protect(t, SchemeSGX64, net)
	var vn, tree uint64
	for _, pl := range r.Layers {
		vn += pl.Overhead.VNBytes
		tree += pl.Overhead.TreeBytes
	}
	if tree >= vn*TreeLevels {
		t.Errorf("tree traffic %d not filtered vs worst case %d", tree, vn*TreeLevels)
	}
	if tree == 0 {
		t.Error("no tree traffic at all")
	}
}

func TestSeDAInterLayerBlockConsistency(t *testing.T) {
	// The activation tensor between layers i and i+1 is one region
	// written by i and read by i+1: both sides must use the same
	// block grid (Fig. 3(b), inter-layer-aware block).
	net := edgeNet(t, "rest")
	p := newProtector(SchemeSeDA, DefaultOptions())
	p.precomputeSeDABlocks(net)
	for i := 0; i+1 < len(net.Layers); i++ {
		ob, ook := p.sedaBlocks[i][trace.OFMap]
		ib, iok := p.sedaBlocks[i+1][trace.IFMap]
		if !ook || !iok {
			t.Fatalf("layer %d: missing activation block (ofmap %v, ifmap %v)", i, ook, iok)
		}
		if ob != ib {
			t.Errorf("layer %d ofmap block %d != layer %d ifmap block %d", i, ob, i+1, ib)
		}
		obase, ibase := p.sedaBases[i][trace.OFMap], p.sedaBases[i+1][trace.IFMap]
		if obase != ibase {
			t.Errorf("layer %d/%d activation grid anchors differ: %#x vs %#x", i, i+1, obase, ibase)
		}
	}
}

func TestSeDAStillNearZeroWithInterLayerBlocks(t *testing.T) {
	// The shared grid must not reintroduce significant over-fetch.
	for _, name := range []string{"alex", "rest", "goo", "trf", "yolo"} {
		r := protect(t, SchemeSeDA, edgeNet(t, name))
		if oh := r.TrafficOverheadRatio(); oh > 0.01 {
			t.Errorf("%s: SeDA overhead %.4f above 1%% with inter-layer blocks", name, oh)
		}
	}
}
