package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// fakeReplica is a scriptable stand-in for seda-serve: per-mode
// behavior on the API routes, a real /readyz, and a hit counter.
type fakeReplica struct {
	srv  *httptest.Server
	hits atomic.Int64

	mu     sync.Mutex
	mode   string // "ok" | "busy" | "abort" | "slow" | "bad-request"
	delay  time.Duration
	readyz int
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{mode: "ok", readyz: http.StatusOK}
	f.srv = httptest.NewServer(http.HandlerFunc(f.serve))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeReplica) set(mode string, delay time.Duration) {
	f.mu.Lock()
	f.mode, f.delay = mode, delay
	f.mu.Unlock()
}

func (f *fakeReplica) serve(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	mode, delay, readyz := f.mode, f.delay, f.readyz
	f.mu.Unlock()
	if r.URL.Path == "/readyz" {
		if mode == "abort" {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(readyz)
		return
	}
	f.hits.Add(1)
	switch mode {
	case "busy":
		w.Header().Set("Retry-After", "1")
		http.Error(w, "evaluation capacity saturated", http.StatusServiceUnavailable)
	case "abort":
		panic(http.ErrAbortHandler) // connection dies: transport error at the router
	case "bad-request":
		http.Error(w, "unknown fig", http.StatusBadRequest)
	case "slow":
		time.Sleep(delay)
		fallthrough
	default:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q,"path":%q}`, f.addr(), r.URL.RequestURI())
	}
}

func fakeFleet(t *testing.T, n int, opts Options) (*Router, []*fakeReplica) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	for i := range fakes {
		fakes[i] = newFakeReplica(t)
		opts.Replicas = append(opts.Replicas, fakes[i].addr())
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt, fakes
}

func get(t *testing.T, h http.Handler, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func fakeByAddr(fakes []*fakeReplica, addr string) *fakeReplica {
	for _, f := range fakes {
		if f.addr() == addr {
			return f
		}
	}
	return nil
}

func scrape(t *testing.T, h http.Handler) map[string]*obs.PromFamily {
	t.Helper()
	rec := get(t, h, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	fams, err := obs.ParseProm(rec.Body)
	if err != nil {
		t.Fatalf("metrics parse: %v", err)
	}
	return fams
}

func counterValue(t *testing.T, fams map[string]*obs.PromFamily, name string) float64 {
	t.Helper()
	fam := fams[name]
	if fam == nil {
		t.Fatalf("metric family %s missing", name)
	}
	var sum float64
	for _, s := range fam.Samples {
		sum += s.Value
	}
	return sum
}

const sweepURL = "/v1/sweep?fig=5b&workloads=let"

// TestAffinityRouting: identical configurations always land on the
// same replica, and representation-only differences (fig of the same
// NPU, CSV vs JSON) do not move them — the affinity key binds the
// cache fingerprints, not the view.
func TestAffinityRouting(t *testing.T) {
	rt, _ := fakeFleet(t, 3, Options{})
	h := rt.Handler()

	first := get(t, h, sweepURL, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", first.Code, first.Body.String())
	}
	home := first.Header().Get("X-Seda-Replica")
	if home == "" {
		t.Fatal("missing X-Seda-Replica")
	}
	for _, url := range []string{
		sweepURL,
		"/v1/sweep?fig=6b&workloads=let", // other metric, same configs
		"/v1/sweep?fig=5b&workloads=let&format=csv", // other format
		"/v1/sweep?npu=edge&fig=5b&workloads=let",   // explicit npu, same resolution
	} {
		for range 3 {
			rec := get(t, h, url, nil)
			if rec.Code != http.StatusOK || rec.Header().Get("X-Seda-Replica") != home {
				t.Fatalf("%s: %d via %q, want 200 via %q",
					url, rec.Code, rec.Header().Get("X-Seda-Replica"), home)
			}
		}
	}
}

// TestFailoverOn503: a saturated affinity home shunts the request to
// the failover tail with zero client-visible errors; 503 is flow
// control, so the home's breaker stays closed.
func TestFailoverOn503(t *testing.T) {
	rt, fakes := fakeFleet(t, 3, Options{BackoffBase: time.Millisecond})
	h := rt.Handler()

	home := get(t, h, sweepURL, nil).Header().Get("X-Seda-Replica")
	fakeByAddr(fakes, home).set("busy", 0)

	rec := get(t, h, sweepURL, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Seda-Replica"); got == home || got == "" {
		t.Fatalf("served by %q, want a failover replica", got)
	}
	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_failover_total"); v < 1 {
		t.Fatalf("failover_total = %v, want >= 1", v)
	}
	for _, rep := range rt.Replicas() {
		if rep.Name == home && rep.BreakerState() != BreakerClosed {
			t.Fatalf("503 fed the breaker: %v", rep.BreakerState())
		}
	}
}

// TestRetryBudgetExhausted: with the whole fleet saturated and no
// stale tier, the client gets one 503 with backoff advice after
// exactly RetryBudget upstream attempts — never more.
func TestRetryBudgetExhausted(t *testing.T) {
	rt, fakes := fakeFleet(t, 2, Options{RetryBudget: 3, BackoffBase: time.Millisecond})
	for _, f := range fakes {
		f.set("busy", 0)
	}
	h := rt.Handler()
	rec := get(t, h, sweepURL, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("exhausted budget: %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if total := fakes[0].hits.Load() + fakes[1].hits.Load(); total != 3 {
		t.Fatalf("fleet saw %d attempts, want exactly the budget of 3", total)
	}
	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_unserved_total"); v != 1 {
		t.Fatalf("unserved_total = %v, want 1", v)
	}
	if v := counterValue(t, fams, "seda_router_attempts_total"); v != 3 {
		t.Fatalf("attempts_total = %v, want 3", v)
	}
}

// TestBreakerOpensAndExcludes: hard transport failures open the home's
// breaker after the threshold; once open, the replica stops seeing
// traffic while clients keep getting 200s from the rest of the fleet.
func TestBreakerOpensAndExcludes(t *testing.T) {
	rt, fakes := fakeFleet(t, 3, Options{
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // keep it open for the test
		BackoffBase:      time.Millisecond,
	})
	h := rt.Handler()

	home := get(t, h, sweepURL, nil).Header().Get("X-Seda-Replica")
	dead := fakeByAddr(fakes, home)
	dead.set("abort", 0)

	for i := range 3 {
		if rec := get(t, h, sweepURL, nil); rec.Code != http.StatusOK {
			t.Fatalf("request %d during replica death: %d", i, rec.Code)
		}
	}
	var homeRep *Replica
	for _, rep := range rt.Replicas() {
		if rep.Name == home {
			homeRep = rep
		}
	}
	if got := homeRep.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker after %d hard failures: %v", 3, got)
	}

	// Open breaker: the dead replica is skipped entirely now.
	before := dead.hits.Load()
	for range 4 {
		if rec := get(t, h, sweepURL, nil); rec.Code != http.StatusOK {
			t.Fatalf("request with open breaker: %d", rec.Code)
		}
	}
	if dead.hits.Load() != before {
		t.Fatal("open-breaker replica still receiving attempts")
	}
	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_breaker_transitions_total"); v != 1 {
		t.Fatalf("breaker_transitions_total = %v, want 1", v)
	}
}

// TestHedging: a slow affinity home is hedged onto the next replica
// after HedgeDelay; the client gets the fast answer.
func TestHedging(t *testing.T) {
	rt, fakes := fakeFleet(t, 3, Options{
		HedgeDelay:  20 * time.Millisecond,
		RetryBudget: 3,
	})
	h := rt.Handler()

	home := get(t, h, sweepURL, nil).Header().Get("X-Seda-Replica")
	fakeByAddr(fakes, home).set("slow", 600*time.Millisecond)

	start := time.Now()
	rec := get(t, h, sweepURL, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request: %d", rec.Code)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("hedged request took %v, want well under the 600ms slow replica", d)
	}
	if got := rec.Header().Get("X-Seda-Replica"); got == home {
		t.Fatalf("slow home %q still answered", got)
	}
	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_hedges_total"); v < 1 {
		t.Fatalf("hedges_total = %v, want >= 1", v)
	}
	if v := counterValue(t, fams, "seda_router_hedge_wins_total"); v < 1 {
		t.Fatalf("hedge_wins_total = %v, want >= 1", v)
	}
}

// TestMidBodyDisconnectRetries: a replica dying after the status line
// (the cluster.body failpoint) is retried within the budget; the
// client never sees the truncation.
func TestMidBodyDisconnectRetries(t *testing.T) {
	defer failpoint.Reset()
	rt, _ := fakeFleet(t, 2, Options{BackoffBase: time.Millisecond})
	h := rt.Handler()

	var calls atomic.Int64
	failpoint.EnableFunc(FailpointBody, func(context.Context) error {
		if calls.Add(1) == 1 {
			return errors.New("replica died mid-body")
		}
		return nil
	})
	rec := get(t, h, sweepURL, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("mid-body disconnect leaked to the client: %d %s", rec.Code, rec.Body.String())
	}
	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_retries_total"); v != 1 {
		t.Fatalf("retries_total = %v, want 1", v)
	}
	if v := counterValue(t, fams, "seda_router_attempts_total"); v != 2 {
		t.Fatalf("attempts_total = %v, want 2 (failed + retried)", v)
	}
}

// TestBadRequestPassesThrough: a 4xx is an authoritative answer — no
// retry, no failover, relayed verbatim.
func TestBadRequestPassesThrough(t *testing.T) {
	rt, fakes := fakeFleet(t, 2, Options{})
	for _, f := range fakes {
		f.set("bad-request", 0)
	}
	h := rt.Handler()
	rec := get(t, h, "/v1/sweep?fig=9z", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad request: %d", rec.Code)
	}
	if total := fakes[0].hits.Load() + fakes[1].hits.Load(); total != 1 {
		t.Fatalf("4xx consumed %d attempts, want 1", total)
	}
}

// TestAdmissionControl: the token bucket rejects excess demand with
// 429 + Retry-After before any replica sees it.
func TestAdmissionControl(t *testing.T) {
	rt, fakes := fakeFleet(t, 1, Options{AdmitRate: 0.001, AdmitBurst: 2})
	h := rt.Handler()
	codes := make(map[int]int)
	for range 3 {
		codes[get(t, h, sweepURL, nil).Code]++
	}
	if codes[http.StatusOK] != 2 || codes[http.StatusTooManyRequests] != 1 {
		t.Fatalf("admission codes: %v", codes)
	}
	if fakes[0].hits.Load() != 2 {
		t.Fatalf("replica saw %d requests, want the 2 admitted", fakes[0].hits.Load())
	}
	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_admission_rejected_total"); v != 1 {
		t.Fatalf("admission_rejected_total = %v, want 1", v)
	}
	// Health and metrics surfaces are never rate limited.
	for _, url := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := get(t, h, url, nil); rec.Code != http.StatusOK {
			t.Fatalf("%s rate-limited: %d", url, rec.Code)
		}
	}
}

// TestRouterSurfaces: healthz lists the fleet, readyz degrades as
// replicas die, method discipline holds, and the metrics exposition is
// well-formed under the strict parser + linter.
func TestRouterSurfaces(t *testing.T) {
	rt, fakes := fakeFleet(t, 2, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		RetryBudget:      2,
		BackoffBase:      time.Millisecond,
	})
	h := rt.Handler()

	rec := get(t, h, "/healthz", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), fakes[0].addr()) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz with a healthy fleet: %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodPost, sweepURL, strings.NewReader("{}"))
	pr := httptest.NewRecorder()
	h.ServeHTTP(pr, req)
	if pr.Code != http.StatusMethodNotAllowed || pr.Header().Get("Allow") != "GET, HEAD" {
		t.Fatalf("POST: %d Allow=%q", pr.Code, pr.Header().Get("Allow"))
	}

	// Kill the fleet; breakers open on the failed attempts.
	for _, f := range fakes {
		f.set("abort", 0)
	}
	if rec := get(t, h, sweepURL, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet sweep: %d", rec.Code)
	}
	if rec := get(t, h, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with every breaker open: %d", rec.Code)
	}

	fams := scrape(t, h)
	if problems := obs.LintProm(fams); len(problems) > 0 {
		t.Fatalf("metrics lint: %v", problems)
	}
	for _, name := range []string{
		"seda_router_requests_total", "seda_router_request_duration_seconds",
		"seda_router_replica_up", "seda_router_replica_ready",
		"seda_router_replica_inflight", "seda_router_breaker_state",
		"seda_router_failover_total", "seda_router_retries_total",
		"seda_router_hedges_total", "seda_router_stale_served_total",
		"seda_build_info",
	} {
		if fams[name] == nil {
			t.Fatalf("metric family %s missing from exposition", name)
		}
	}
	// Per-replica series carry the replica label for both replicas.
	up := fams["seda_router_breaker_state"]
	if len(up.Samples) != 2 {
		t.Fatalf("breaker_state has %d samples, want 2", len(up.Samples))
	}
	for _, s := range up.Samples {
		if s.Value != float64(BreakerOpen) {
			t.Fatalf("breaker_state sample %v, want open (1)", s)
		}
	}
}

// TestHealthProbeLifecycle: probes demote a saturated replica, mark a
// dead one breaker-open without burning client requests, and readmit a
// recovered one through the half-open trial.
func TestHealthProbeLifecycle(t *testing.T) {
	rt, fakes := fakeFleet(t, 2, Options{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	ctx := t.Context()

	rt.ProbeNow(ctx)
	for _, rep := range rt.Replicas() {
		if !rep.Ready() || !rep.Alive() {
			t.Fatalf("replica %s not ready after healthy probe", rep.Name)
		}
	}

	// Saturated: alive, demoted, breaker untouched.
	fakes[0].mu.Lock()
	fakes[0].readyz = http.StatusServiceUnavailable
	fakes[0].mu.Unlock()
	rt.ProbeNow(ctx)
	rep0 := rt.Replicas()[0]
	if !rep0.Alive() || rep0.Ready() || rep0.BreakerState() != BreakerClosed {
		t.Fatalf("saturated replica: alive=%v ready=%v breaker=%v",
			rep0.Alive(), rep0.Ready(), rep0.BreakerState())
	}

	// Dead: probes alone open the breaker.
	fakes[0].set("abort", 0)
	rt.ProbeNow(ctx)
	rt.ProbeNow(ctx)
	if !errorsIsOpen(rep0) {
		t.Fatalf("dead replica after 2 probes: breaker=%v", rep0.BreakerState())
	}

	// Recovered: cooldown elapses, the next probe is the half-open
	// trial and closes the breaker — no client request sacrificed.
	fakes[0].set("ok", 0)
	fakes[0].mu.Lock()
	fakes[0].readyz = http.StatusOK
	fakes[0].mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	rt.ProbeNow(ctx)
	if rep0.BreakerState() != BreakerClosed || !rep0.Ready() {
		t.Fatalf("recovered replica: breaker=%v ready=%v", rep0.BreakerState(), rep0.Ready())
	}
}

func errorsIsOpen(rep *Replica) bool { return rep.BreakerState() == BreakerOpen }
