package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// truncServer serves responses whose body dies after the headers: it
// declares a Content-Length it never delivers, flushes the partial
// prefix so the status line is on the wire, then aborts the
// connection. The router has already committed to this replica when
// the failure shows up — exactly the window response buffering exists
// to cover.
func truncServer(t *testing.T, declared, written int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(declared))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(strings.Repeat("x", written))) //nolint:errcheck
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// bigBodyServer answers 200 with an n-byte body.
func bigBodyServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("b", n))) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	return srv
}

func routerFor(t *testing.T, opts Options, addrs ...string) *Router {
	t.Helper()
	opts.Replicas = addrs
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestAttemptMidBodyReadError: the replica dies after the status line
// — headers arrived, the body did not. attempt must surface a mid-body
// error (not a truncated success) and charge the replica's breaker.
func TestAttemptMidBodyReadError(t *testing.T) {
	srv := truncServer(t, 1000, 10)
	rt := routerFor(t, Options{BreakerThreshold: 1, BreakerCooldown: time.Minute},
		strings.TrimPrefix(srv.URL, "http://"))
	rep := rt.Replicas()[0]

	req := httptest.NewRequest(http.MethodGet, sweepURL, nil)
	resp, err := rt.attempt(context.Background(), req, rep)
	if err == nil {
		t.Fatalf("truncated body must not buffer into a success: %+v", resp)
	}
	if !strings.Contains(err.Error(), "mid-body") {
		t.Fatalf("error should name the mid-body window: %v", err)
	}
	if rep.BreakerState() != BreakerOpen {
		t.Fatalf("mid-body death must feed the breaker; state %v", rep.BreakerState())
	}
}

// TestAttemptOversizedBody: a body past MaxBodyBytes is refused before
// it is relayed (the router buffers responses, so the cap is the only
// thing standing between a misbehaving replica and unbounded memory),
// and the replica is charged as failing.
func TestAttemptOversizedBody(t *testing.T) {
	srv := bigBodyServer(t, 4096)
	rt := routerFor(t, Options{MaxBodyBytes: 1024, BreakerThreshold: 1, BreakerCooldown: time.Minute},
		strings.TrimPrefix(srv.URL, "http://"))
	rep := rt.Replicas()[0]

	req := httptest.NewRequest(http.MethodGet, sweepURL, nil)
	resp, err := rt.attempt(context.Background(), req, rep)
	if err == nil {
		t.Fatalf("oversized body must not be relayed: %+v", resp)
	}
	if !strings.Contains(err.Error(), "body exceeds 1024 bytes") {
		t.Fatalf("error should name the cap: %v", err)
	}
	if rep.BreakerState() != BreakerOpen {
		t.Fatalf("oversize must feed the breaker; state %v", rep.BreakerState())
	}
}

// TestAttemptBodyAtLimit: a body exactly at MaxBodyBytes passes — the
// cap is inclusive, and the +1 read window must not misclassify it.
func TestAttemptBodyAtLimit(t *testing.T) {
	srv := bigBodyServer(t, 1024)
	rt := routerFor(t, Options{MaxBodyBytes: 1024},
		strings.TrimPrefix(srv.URL, "http://"))
	rep := rt.Replicas()[0]

	req := httptest.NewRequest(http.MethodGet, sweepURL, nil)
	resp, err := rt.attempt(context.Background(), req, rep)
	if err != nil {
		t.Fatalf("at-limit body rejected: %v", err)
	}
	if len(resp.body) != 1024 {
		t.Fatalf("buffered %d bytes, want 1024", len(resp.body))
	}
}

// TestForwardMidBodyFailover: with one truncating replica and one
// healthy one, the client sees a complete 200 from the survivor and
// the failover counter moves — the buffering turned a mid-body death
// into a retryable event invisible to the client.
func TestForwardMidBodyFailover(t *testing.T) {
	bad := truncServer(t, 1000, 10)
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"from":"good"}`)
	}))
	t.Cleanup(good.Close)
	badAddr := strings.TrimPrefix(bad.URL, "http://")
	goodAddr := strings.TrimPrefix(good.URL, "http://")
	rt := routerFor(t, Options{RetryBudget: 4, BackoffBase: time.Millisecond}, badAddr, goodAddr)
	h := rt.Handler()

	// Drive distinct affinity keys until one homes on the truncating
	// replica and fails over (a key may home on the good replica
	// directly; 16 independent keys make missing the bad one ~1/65536).
	sawFailover := false
	for _, wl := range []string{"let", "ncf", "sent", "let,ncf", "let,sent", "ncf,sent", "let,ncf,sent", ""} {
		for _, fig := range []string{"5b", "6b"} {
			url := "/v1/sweep?fig=" + fig
			if wl != "" {
				url += "&workloads=" + wl
			}
			rec := get(t, h, url, nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: %d %q", url, rec.Code, rec.Body.String())
			}
			if rec.Body.String() != `{"from":"good"}` {
				t.Fatalf("client saw truncated or foreign bytes: %q", rec.Body.String())
			}
			if rec.Header().Get("X-Seda-Replica") != goodAddr {
				t.Fatalf("served by %q, want the healthy replica", rec.Header().Get("X-Seda-Replica"))
			}
			if counterValue(t, scrape(t, h), "seda_router_failover_total") > 0 {
				sawFailover = true
				break
			}
		}
		if sawFailover {
			break
		}
	}
	if !sawFailover {
		t.Fatal("no failover recorded despite a truncating replica in the fleet")
	}
}
