package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state machine position, exported
// on /metrics as seda_router_breaker_state{replica}.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = 0
	// BreakerOpen: the replica ate its failure threshold; no traffic
	// until the cooldown elapses.
	BreakerOpen BreakerState = 1
	// BreakerHalfOpen: cooldown elapsed; probe traffic is allowed. One
	// success closes the breaker, one failure re-opens it for another
	// cooldown.
	BreakerHalfOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-replica circuit breaker: closed → open after
// `threshold` consecutive failures, open → half-open once `cooldown`
// has elapsed (time-driven, so no request needs to be sacrificed to
// notice the transition), half-open → closed on the first success —
// which may be a proxied request or the health checker's liveness
// probe, so a recovered replica rejoins the pool even when affinity
// sends it no organic traffic — and half-open → open on the first
// failure. All methods are safe for concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu          sync.Mutex
	consecutive int
	openedAt    time.Time
	open        bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State reports the current position, deriving half-open from an
// elapsed cooldown.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *breaker) stateLocked() BreakerState {
	if !b.open {
		return BreakerClosed
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return BreakerOpen
}

// Allow reports whether an attempt may be sent: closed and half-open
// admit traffic, open does not. Side-effect free, so ranking candidate
// replicas never consumes probe budget.
func (b *breaker) Allow() bool { return b.State() != BreakerOpen }

// Success records a successful proxied attempt, closing the breaker
// from any state: a real request that completed is definitive proof
// the replica works.
func (b *breaker) Success() {
	b.mu.Lock()
	b.consecutive = 0
	b.open = false
	b.mu.Unlock()
}

// ProbeSuccess records a successful health probe. It closes the
// breaker from half-open (the probe is the trial the half-open state
// exists to admit) and clears the failure count while closed, but is a
// no-op while the cooldown is still running: a replica that answers
// /readyz yet fails real requests must not have its breaker reset
// every probe interval, or the breaker would never protect anything
// the health check cannot see.
func (b *breaker) ProbeSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerHalfOpen:
		b.open = false
		b.consecutive = 0
	case BreakerClosed:
		b.consecutive = 0
	}
}

// Failure records a failed attempt. It reports whether this failure
// transitioned the breaker into the open state (for the
// seda_router_breaker_transitions_total counter): crossing the
// consecutive-failure threshold while closed, or failing the half-open
// probe, which re-opens for a fresh cooldown.
func (b *breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerHalfOpen:
		b.openedAt = b.now()
		return true
	case BreakerOpen:
		return false
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.open = true
		b.openedAt = b.now()
		return true
	}
	return false
}
