package cluster

import (
	"sync"
	"time"
)

// tokenBucket is the front-door admission controller: requests to the
// evaluation routes each take one token; the bucket refills at a
// configured rate up to a burst capacity. An empty bucket rejects with
// the time until the next token, which the handler turns into a 429 +
// Retry-After — the router sheds excess demand at the edge instead of
// queueing it onto the fleet's bounded compute capacity.
//
// A nil *tokenBucket admits everything, so the unlimited configuration
// costs nothing on the request path.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// newTokenBucket returns nil (admit everything) when rate <= 0. The
// bucket starts full, so a burst at boot is admitted.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	tb := &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
	tb.last = tb.now()
	return tb
}

// take consumes one token if available. When the bucket is empty it
// reports how long until one token will have accumulated.
func (tb *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if tb == nil {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	need := (1 - tb.tokens) / tb.rate
	return false, time.Duration(need * float64(time.Second))
}
