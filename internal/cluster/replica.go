package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Replica is one seda-serve instance behind the router: its base URL,
// the health state the active checker maintains, the per-replica
// circuit breaker, and the router's own count of attempts currently
// outstanding against it (the least-loaded signal).
type Replica struct {
	// Name labels the replica everywhere it is visible: metrics
	// (seda_router_replica_up{replica="..."}), logs, and the
	// X-Seda-Replica response header. It is the host:port of the URL.
	Name string

	url     *url.URL
	breaker *breaker

	alive    atomic.Bool // last probe (or proxied attempt) reached the process
	ready    atomic.Bool // last /readyz answered 200
	inflight atomic.Int64

	// Per-replica metric series, registered once with the replica name
	// as a constant label and updated on each /metrics scrape.
	upG, readyG, inflightG, breakerG *obs.Gauge
}

// Ready reports whether the replica's last readiness probe succeeded.
func (rep *Replica) Ready() bool { return rep.ready.Load() }

// Alive reports whether the replica's process was reachable at the
// last probe or proxied attempt.
func (rep *Replica) Alive() bool { return rep.alive.Load() }

// BreakerState exposes the replica's circuit-breaker position.
func (rep *Replica) BreakerState() BreakerState { return rep.breaker.State() }

// parseReplicaURL accepts "host:port" or a full http(s) base URL.
func parseReplicaURL(raw string) (*url.URL, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil, fmt.Errorf("empty replica address")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("replica %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("replica %q: missing host", raw)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	return u, nil
}

// rendezvousScore is the highest-random-weight (rendezvous) hash of
// (key, replica): each replica scores every key independently, the
// highest score owns the key. Adding or removing a replica only moves
// the keys that replica owned or now wins — every other key keeps its
// home, which is exactly the property that keeps per-replica rescache
// working sets stable across fleet resizes.
func rendezvousScore(key, name string) uint64 {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// rank orders the eligible replicas for one request:
//
//   - Replicas whose breaker is open are excluded outright (the
//     breaker's cooldown, not per-request probing, decides when they
//     get traffic again).
//   - Ready replicas come before alive-but-not-ready ones (saturated
//     or draining replicas still accept cache hits, so they remain a
//     last resort within the fleet, ahead of the stale tier).
//   - Within the ready tier, the affinity key's rendezvous winner goes
//     first; the remaining candidates — the failover order — are
//     sorted least-loaded first (ties broken by rendezvous score), so
//     when the affinity home is down, retries spread by load instead
//     of dogpiling a second fixed home.
//   - With no affinity key (catalog routes), the whole tier is
//     least-loaded first.
//
// The returned slice is freshly allocated; callers may not mutate the
// pool through it.
func (rt *Router) rank(key string) []*Replica {
	var ready, notReady []*Replica
	for _, rep := range rt.replicas {
		if !rep.breaker.Allow() {
			continue
		}
		if rep.Ready() {
			ready = append(ready, rep)
		} else {
			notReady = append(notReady, rep)
		}
	}
	orderTier(ready, key)
	orderTier(notReady, key)
	return append(ready, notReady...)
}

func orderTier(reps []*Replica, key string) {
	if len(reps) < 2 {
		return
	}
	if key == "" {
		leastLoaded(reps, nil)
		return
	}
	scores := make(map[*Replica]uint64, len(reps))
	for _, rep := range reps {
		scores[rep] = rendezvousScore(key, rep.Name)
	}
	sort.SliceStable(reps, func(i, j int) bool {
		si, sj := scores[reps[i]], scores[reps[j]]
		if si != sj {
			return si > sj
		}
		return reps[i].Name < reps[j].Name
	})
	// The affinity home stays first; the failover tail is least-loaded.
	leastLoaded(reps[1:], scores)
}

func leastLoaded(reps []*Replica, scores map[*Replica]uint64) {
	loads := make(map[*Replica]int64, len(reps))
	for _, rep := range reps {
		loads[rep] = rep.inflight.Load()
	}
	sort.SliceStable(reps, func(i, j int) bool {
		li, lj := loads[reps[i]], loads[reps[j]]
		if li != lj {
			return li < lj
		}
		if scores != nil {
			si, sj := scores[reps[i]], scores[reps[j]]
			if si != sj {
				return si > sj
			}
		}
		return reps[i].Name < reps[j].Name
	})
}
