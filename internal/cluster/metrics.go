package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/seda"
)

// routerMetrics is the router's Prometheus registry. Counters are
// native instruments incremented on the paths they describe; the
// per-replica gauges (registered per replica with a constant label)
// are refreshed from replica state on each scrape, so one scrape is
// internally consistent.
type routerMetrics struct {
	reg *obs.Registry

	reqDur *obs.HistogramVec // by route pattern

	reqs               *obs.Counter
	panics             *obs.Counter
	attempts           *obs.Counter
	retries            *obs.Counter
	failover           *obs.Counter
	hedges             *obs.Counter
	hedgeWins          *obs.Counter
	staleServed        *obs.Counter
	unserved           *obs.Counter
	admitRejected      *obs.Counter
	breakerTransitions *obs.Counter

	runtime *obs.RuntimeGauges
}

func newRouterMetrics() *routerMetrics {
	r := obs.NewRegistry()
	build := obs.ReadBuild()
	m := &routerMetrics{
		reg: r,
		reqDur: r.HistogramVec("seda_router_request_duration_seconds",
			"router request latency by route (admission to last client byte)", "route", obs.DurationBuckets),

		reqs: r.Counter("seda_router_requests_total",
			"requests received by the router"),
		panics: r.Counter("seda_router_panics_total",
			"router handler panics recovered by the middleware"),
		attempts: r.Counter("seda_router_attempts_total",
			"upstream attempts launched (first tries + retries + hedges)"),
		retries: r.Counter("seda_router_retries_total",
			"upstream attempts launched because a previous attempt failed"),
		failover: r.Counter("seda_router_failover_total",
			"requests answered by a replica other than the first-ranked candidate"),
		hedges: r.Counter("seda_router_hedges_total",
			"hedged attempts launched because the first answer was slow"),
		hedgeWins: r.Counter("seda_router_hedge_wins_total",
			"requests where the hedged attempt answered first"),
		staleServed: r.Counter("seda_router_stale_served_total",
			"requests served stale from the shared cache tier with no replica available"),
		unserved: r.Counter("seda_router_unserved_total",
			"requests answered 503 after the retry budget and the stale tier both failed"),
		admitRejected: r.Counter("seda_router_admission_rejected_total",
			"requests rejected 429 by token-bucket admission"),
		breakerTransitions: r.Counter("seda_router_breaker_transitions_total",
			"circuit-breaker transitions into the open state"),

		runtime: obs.NewRuntimeGauges(r),
	}
	r.Gauge("seda_build_info",
		"build identity; always 1, the labels carry the information",
		obs.Label{Name: "go_version", Value: build.GoVersion},
		obs.Label{Name: "module_version", Value: build.ModuleVersion},
		obs.Label{Name: "revision", Value: build.Revision},
		obs.Label{Name: "pipeline", Value: seda.PipelineVersion},
	).Set(1)
	return m
}

// registerReplica creates the per-replica series, labelled by replica
// name. Replica sets are fixed at construction, so the label
// cardinality is bounded by the -replicas flag.
func (m *routerMetrics) registerReplica(rep *Replica) {
	l := obs.Label{Name: "replica", Value: rep.Name}
	rep.upG = m.reg.Gauge("seda_router_replica_up",
		"1 when the replica's process was reachable at the last probe or attempt", l)
	rep.readyG = m.reg.Gauge("seda_router_replica_ready",
		"1 when the replica's last /readyz probe answered 200", l)
	rep.inflightG = m.reg.Gauge("seda_router_replica_inflight",
		"upstream attempts currently outstanding against the replica", l)
	rep.breakerG = m.reg.Gauge("seda_router_breaker_state",
		"circuit-breaker state: 0 closed, 1 open, 2 half-open", l)
}

// mw is the router's per-route middleware: request counting, request
// IDs, latency histogram under the route pattern, one structured
// access line, and panic containment (a poisoned request answers 500;
// the router survives).
func (rt *Router) mw(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.metrics.reqs.Inc()
		start := time.Now()
		rid := requestID(r)
		w.Header().Set("X-Request-Id", rid)
		r.Header.Set("X-Request-Id", rid) // attempts forward it upstream
		sw := &statusWriter{ResponseWriter: w}

		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel identity, per net/http docs
					panic(rec)
				}
				rt.metrics.panics.Inc()
				rt.log.LogAttrs(context.Background(), slog.LevelError, "handler panic",
					slog.String("id", rid),
					slog.String("route", route),
					slog.Any("panic", rec),
				)
				http.Error(sw, fmt.Sprintf("internal error (request %s)", rid), http.StatusInternalServerError)
			}
			d := time.Since(start)
			rt.metrics.reqDur.With(route).Observe(d.Seconds())
			rt.log.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("id", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.RequestURI()),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Duration("duration", d),
			)
		}()
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			sw.Header().Set("Allow", "GET, HEAD")
			http.Error(sw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(sw, r)
	}
}

// requestID keeps a caller-provided correlation ID or mints one, so
// one ID ties together the router access line, the replica access
// line, and any error body across the hop.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 128 {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}
