package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// StartHealth runs the active health checker until ctx is cancelled:
// every HealthInterval (default 1s) each replica's /readyz is probed
// concurrently. The checker is what lets a recovered replica rejoin
// the pool even when affinity sends it no organic traffic — a
// successful probe closes a half-open breaker — and what demotes a
// saturated or draining replica before a single request sheds on it.
func (rt *Router) StartHealth(ctx context.Context) {
	interval := rt.opts.HealthInterval
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		rt.ProbeNow(ctx)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.ProbeNow(ctx)
			}
		}
	}()
}

// ProbeNow probes every replica once, concurrently, and returns when
// all probes finish. Exported so tests (and the checker loop) drive
// probe rounds deterministically.
func (rt *Router) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// probe asks one replica "can you take new work?". Outcomes:
//
//   - transport error / timeout: the process is unreachable — dead for
//     ranking purposes, and the breaker counts a failure so a flapping
//     replica opens it without burning client requests.
//   - /readyz 200: alive and ready; a half-open breaker closes (the
//     probe is the half-open trial).
//   - /readyz 503 (draining, saturated): alive but demoted to the
//     fallback tier; the breaker is untouched — this is flow control,
//     not failure.
func (rt *Router) probe(ctx context.Context, rep *Replica) {
	if rt.opts.HealthTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.opts.HealthTimeout)
		defer cancel()
	}
	err := failpoint.Inject(ctx, FailpointHealth)
	var resp *http.Response
	if err == nil {
		var req *http.Request
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, rep.url.String()+"/readyz", nil)
		if err != nil {
			return
		}
		resp, err = rt.client.Do(req)
	}
	if err != nil {
		wasAlive := rep.alive.Swap(false)
		rep.ready.Store(false)
		rt.noteFailure(rep, true)
		if wasAlive {
			rt.log.Warn("replica unreachable", slog.String("replica", rep.Name), slog.Any("err", err))
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
	resp.Body.Close()                                     //nolint:errcheck

	wasAlive := rep.alive.Swap(true)
	ready := resp.StatusCode == http.StatusOK
	wasReady := rep.ready.Swap(ready)
	if ready {
		rep.breaker.ProbeSuccess()
	}
	if !wasAlive || wasReady != ready {
		rt.log.Info("replica state",
			slog.String("replica", rep.Name),
			slog.Bool("ready", ready),
			slog.String("breaker", rep.BreakerState().String()),
			slog.String("readyz", fmt.Sprint(resp.StatusCode)),
		)
	}
}
