package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/internal/failpoint"
)

// errNoReplica means ranking produced zero candidates: every breaker
// is open (or the fleet is empty). The stale tier is next.
var errNoReplica = errors.New("every replica breaker is open")

// bufferedResp is one fully-read upstream response. Buffering before
// the first client byte is what makes mid-body replica death a
// retryable event instead of a truncated client response; evaluation
// bodies are bounded (Options.MaxBodyBytes), so the memory cost is
// too.
type bufferedResp struct {
	status  int
	header  http.Header
	body    []byte
	replica string
}

func (br *bufferedResp) writeTo(w http.ResponseWriter) {
	copyEndToEndHeaders(w.Header(), br.header)
	w.Header().Set("X-Seda-Replica", br.replica)
	w.WriteHeader(br.status)
	w.Write(br.body) //nolint:errcheck // client gone mid-stream
}

// hopByHop lists the headers that describe one connection rather than
// the resource; they must not be replayed onto the client connection.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Content-Length":      true, // recomputed by net/http for the buffered body
}

func copyEndToEndHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}

type attemptOutcome struct {
	resp *bufferedResp
	err  error
	idx  int // attempt index, 0 = first choice
}

// race drives up to RetryBudget attempts against the ranked candidate
// list and returns the first success. Sequencing:
//
//   - Attempt 0 starts immediately against the affinity home.
//   - A failed attempt schedules the next one after an exponential,
//     fully-jittered backoff — unless another attempt (a hedge) is
//     still in flight, in which case the failure just defers to it.
//   - With hedging armed, a one-shot timer launches the next attempt
//     early if the current ones have not answered within HedgeDelay.
//   - More attempts than candidates cycle the ranking again (a replica
//     may fail one moment and answer the next; the budget, not the
//     fleet size, is the invariant the client sees).
//
// All attempts run under one cancel scope: the first success aborts
// the losers, and the channel is buffered so late losers never leak a
// goroutine.
func (rt *Router) race(r *http.Request, cands []*Replica) (*bufferedResp, int, error) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	budget := rt.opts.RetryBudget
	outcomes := make(chan attemptOutcome, budget)
	launched, inflight := 0, 0
	launch := func() bool {
		if launched >= budget {
			return false
		}
		rep := cands[launched%len(cands)]
		idx := launched
		launched++
		inflight++
		rt.metrics.attempts.Inc()
		go func() {
			resp, err := rt.attempt(ctx, r, rep)
			outcomes <- attemptOutcome{resp: resp, err: err, idx: idx}
		}()
		return true
	}
	launch()

	var hedgeC <-chan time.Time
	if rt.opts.HedgeDelay > 0 {
		t := time.NewTimer(rt.opts.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var retryC <-chan time.Time
	var retryT *time.Timer
	defer func() {
		if retryT != nil {
			retryT.Stop()
		}
	}()

	delay := rt.opts.BackoffBase
	hedged := false
	var lastErr error
	for {
		select {
		case out := <-outcomes:
			inflight--
			if out.err == nil {
				if hedged && out.idx > 0 {
					rt.metrics.hedgeWins.Inc()
				}
				return out.resp, out.idx, nil
			}
			lastErr = out.err
			rt.log.Debug("attempt failed",
				"attempt", out.idx, "of", budget, "err", out.err)
			if inflight > 0 {
				continue // a hedge is still running; let it finish
			}
			if launched >= budget {
				return nil, 0, lastErr
			}
			if retryC == nil {
				// Full jitter: wait uniform(0, delay], then double the
				// ceiling for the next wave up to BackoffMax.
				wait := time.Duration(1 + rand.Int64N(int64(delay)))
				retryT = time.NewTimer(wait)
				retryC = retryT.C
				if delay *= 2; delay > rt.opts.BackoffMax {
					delay = rt.opts.BackoffMax
				}
			}
		case <-retryC:
			retryC = nil
			rt.metrics.retries.Inc()
			launch()
		case <-hedgeC:
			hedgeC = nil
			if inflight > 0 && launched < budget {
				hedged = true
				rt.metrics.hedges.Inc()
				launch()
			}
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// retryableStatus: upstream answers that mean "try another replica".
// 503 is flow control (saturated or draining — the replica is fine, so
// it does not feed the breaker); 502/504 mean the replica itself is in
// trouble. Everything else — including 4xx and 500 — is an
// authoritative answer for this request and passes through.
func retryableStatus(code int) (retryable, breakerFailure bool) {
	switch code {
	case http.StatusServiceUnavailable:
		return true, false
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return true, true
	}
	return false, false
}

// attempt forwards the request to one replica and buffers the full
// response. Failures are recorded against the replica's breaker when
// they indicate replica trouble (transport errors, timeouts, 502/504,
// mid-body death) but not when they are flow control (503).
func (rt *Router) attempt(ctx context.Context, r *http.Request, rep *Replica) (*bufferedResp, error) {
	if rt.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.opts.AttemptTimeout)
		defer cancel()
	}
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)

	// The dial site models a dead (error) or slow (sleep) replica link
	// before any real network traffic.
	if err := failpoint.Inject(ctx, FailpointDial); err != nil {
		rt.noteFailure(rep, true)
		return nil, fmt.Errorf("replica %s: %w", rep.Name, err)
	}

	u := *rep.url
	u.Path = rep.url.Path + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("replica %s: %w", rep.Name, err)
	}
	// Forward the headers that select the representation or correlate
	// the request; everything connection-scoped stays behind.
	for _, k := range []string{"Accept", "If-None-Match", "X-Request-Id"} {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}

	resp, err := rt.client.Do(req)
	if err != nil {
		rt.noteFailure(rep, true)
		return nil, fmt.Errorf("replica %s: %w", rep.Name, err)
	}
	defer resp.Body.Close() //nolint:errcheck

	if retry, brk := retryableStatus(resp.StatusCode); retry {
		// Drain a little so the connection can be reused, then fail over.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		rt.noteFailure(rep, brk)
		return nil, fmt.Errorf("replica %s answered %d", rep.Name, resp.StatusCode)
	}

	body, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes+1))
	if err == nil && int64(len(body)) > rt.opts.MaxBodyBytes {
		err = fmt.Errorf("body exceeds %d bytes", rt.opts.MaxBodyBytes)
	}
	if err == nil {
		// The body site models the replica dying after the status line:
		// headers arrived, the body did not.
		err = failpoint.Inject(ctx, FailpointBody)
	}
	if err != nil {
		rt.noteFailure(rep, true)
		return nil, fmt.Errorf("replica %s: mid-body: %w", rep.Name, err)
	}

	rep.alive.Store(true)
	rep.breaker.Success()
	return &bufferedResp{
		status:  resp.StatusCode,
		header:  resp.Header.Clone(),
		body:    body,
		replica: rep.Name,
	}, nil
}

// noteFailure records one failed attempt. breakerCounts distinguishes
// replica trouble (feeds the breaker, may open it) from flow control
// (does not).
func (rt *Router) noteFailure(rep *Replica, breakerCounts bool) {
	if !breakerCounts {
		return
	}
	if rep.breaker.Failure() {
		rt.metrics.breakerTransitions.Inc()
		rt.log.Warn("breaker opened", "replica", rep.Name)
	}
}

// bufferingWriter captures a handler's response in memory; the stale
// path uses it to decide whether the degraded tier's answer is worth
// relaying before any byte reaches the client.
type bufferingWriter struct {
	header http.Header
	status int
	wrote  bool
	body   bytes.Buffer
}

func newBufferingWriter() *bufferingWriter {
	return &bufferingWriter{header: make(http.Header), status: http.StatusOK}
}

func (bw *bufferingWriter) Header() http.Header { return bw.header }

func (bw *bufferingWriter) WriteHeader(code int) {
	if !bw.wrote {
		bw.wrote = true
		bw.status = code
	}
}

func (bw *bufferingWriter) Write(p []byte) (int, error) {
	return bw.body.Write(p)
}
