package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerStateMachine(t *testing.T) {
	b, clk := newTestBreaker(3, 5*time.Second)

	if got := b.State(); got != BreakerClosed || !b.Allow() {
		t.Fatalf("fresh breaker: %v allow=%v", got, b.Allow())
	}

	// Failures below the threshold stay closed; a success resets the run.
	b.Failure()
	b.Failure()
	b.Success()
	if b.Failure() {
		t.Fatal("third failure after a reset opened the breaker (consecutive run must restart)")
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after reset + 1 failure: %v", got)
	}

	// Threshold consecutive failures open it; exactly the crossing
	// failure reports the transition.
	if b.Failure() {
		t.Fatal("second consecutive failure reported a transition")
	}
	if !b.Failure() {
		t.Fatal("threshold-crossing failure did not report the transition")
	}
	if got := b.State(); got != BreakerOpen || b.Allow() {
		t.Fatalf("opened breaker: %v allow=%v", got, b.Allow())
	}
	// Further failures while open are absorbed without re-transition.
	if b.Failure() {
		t.Fatal("failure while open reported a transition")
	}

	// Cooldown elapses: half-open admits traffic without any success.
	clk.advance(5 * time.Second)
	if got := b.State(); got != BreakerHalfOpen || !b.Allow() {
		t.Fatalf("after cooldown: %v allow=%v", got, b.Allow())
	}

	// Half-open failure re-opens for a fresh cooldown.
	if !b.Failure() {
		t.Fatal("half-open failure did not report re-opening")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after half-open failure: %v", got)
	}
	clk.advance(4 * time.Second)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("cooldown must restart on re-open: %v after 4s", got)
	}
	clk.advance(time.Second)

	// Half-open success closes.
	b.Success()
	if got := b.State(); got != BreakerClosed || !b.Allow() {
		t.Fatalf("after half-open success: %v allow=%v", got, b.Allow())
	}
}

// TestBreakerProbeSuccess pins the probe/request asymmetry: a health
// probe closes the breaker only from half-open — a replica that
// answers /readyz but fails real requests must not get its breaker
// reset every probe interval — while a successful proxied request
// closes it from any state.
func TestBreakerProbeSuccess(t *testing.T) {
	b, clk := newTestBreaker(2, 5*time.Second)
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("setup: %v", got)
	}

	// Probe success during the cooldown is a no-op.
	b.ProbeSuccess()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("probe closed a cooling breaker: %v", got)
	}

	// From half-open the probe is the trial: it closes.
	clk.advance(5 * time.Second)
	b.ProbeSuccess()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("probe did not close a half-open breaker: %v", got)
	}

	// While closed, probes clear the consecutive-failure run.
	b.Failure()
	b.ProbeSuccess()
	if b.Failure() {
		t.Fatal("probe did not reset the failure run")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
	} {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
