package cluster

import (
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	tb := newTokenBucket(2, 3) // 2 tokens/s, burst 3
	tb.now = clk.now
	tb.last = clk.t

	// The burst is admitted, then the bucket is dry.
	for i := range 3 {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("burst take %d rejected", i)
		}
	}
	ok, retry := tb.take()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry advice %v, want (0, 500ms] at 2 tokens/s", retry)
	}

	// Refill at the configured rate.
	clk.advance(time.Second)
	for i := range 2 {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("refilled take %d rejected", i)
		}
	}
	if ok, _ := tb.take(); ok {
		t.Fatal("bucket over-refilled")
	}

	// Refill caps at the burst.
	clk.advance(time.Hour)
	admitted := 0
	for range 10 {
		if ok, _ := tb.take(); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("after a long idle, %d admitted, want burst of 3", admitted)
	}

	// rate <= 0 means unlimited (nil bucket).
	if tb := newTokenBucket(0, 5); tb != nil {
		t.Fatal("rate 0 built a bucket")
	}
	var unlimited *tokenBucket
	if ok, _ := unlimited.take(); !ok {
		t.Fatal("nil bucket rejected")
	}

	// burst < 1 clamps to 1.
	if tb := newTokenBucket(1, 0); tb == nil || tb.burst != 1 {
		t.Fatalf("burst clamp: %+v", tb)
	}
}
