package cluster

import (
	"fmt"
	"testing"
)

func testRouter(t *testing.T, names ...string) *Router {
	t.Helper()
	rt, err := New(Options{Replicas: names})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestParseReplicaURL(t *testing.T) {
	for raw, wantHost := range map[string]string{
		"localhost:8441":         "localhost:8441",
		"http://10.0.0.1:8441":   "10.0.0.1:8441",
		"https://replica.x:443/": "replica.x:443",
		" host:1 ":               "host:1",
	} {
		u, err := parseReplicaURL(raw)
		if err != nil || u.Host != wantHost {
			t.Fatalf("parseReplicaURL(%q) = %v, %v; want host %q", raw, u, err, wantHost)
		}
	}
	for _, raw := range []string{"", "ftp://x:1", "http://"} {
		if _, err := parseReplicaURL(raw); err == nil {
			t.Fatalf("parseReplicaURL(%q) accepted", raw)
		}
	}
	if _, err := New(Options{Replicas: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

// TestRendezvousDeterministicAndBalanced: the same key always ranks
// the same replica first, and a large key population spreads over the
// fleet (no replica starves or hogs).
func TestRendezvousDeterministicAndBalanced(t *testing.T) {
	rt := testRouter(t, "a:1", "b:1", "c:1")
	owners := make(map[string]int)
	for i := range 3000 {
		key := fmt.Sprintf("key-%04d", i)
		first := rt.rank(key)[0].Name
		if again := rt.rank(key)[0].Name; again != first {
			t.Fatalf("key %q: first choice flapped %s → %s", key, first, again)
		}
		owners[first]++
	}
	for name, n := range owners {
		if n < 3000/3/2 || n > 3000*2/3 {
			t.Fatalf("replica %s owns %d/3000 keys, want roughly balanced: %v", name, n, owners)
		}
	}
}

// TestRendezvousMinimalDisruption: removing one replica reassigns only
// the keys it owned; every other key keeps its home. This is the
// property that keeps per-replica cache working sets stable across
// fleet resizes.
func TestRendezvousMinimalDisruption(t *testing.T) {
	full := testRouter(t, "a:1", "b:1", "c:1")
	smaller := testRouter(t, "a:1", "b:1")
	moved := 0
	for i := range 2000 {
		key := fmt.Sprintf("key-%04d", i)
		before := full.rank(key)[0].Name
		after := smaller.rank(key)[0].Name
		if before == "c:1" {
			continue // its keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed replica changed homes", moved)
	}
}

// TestRankTiers: open breakers are excluded, not-ready replicas sort
// after ready ones, and the failover tail within a tier is least-
// loaded first while the affinity home stays first.
func TestRankTiers(t *testing.T) {
	rt := testRouter(t, "a:1", "b:1", "c:1", "d:1")
	byName := make(map[string]*Replica)
	for _, rep := range rt.replicas {
		byName[rep.Name] = rep
	}

	key := "some-affinity-key"
	base := rt.rank(key)
	if len(base) != 4 {
		t.Fatalf("rank returned %d candidates, want 4", len(base))
	}
	home := base[0]

	// Load the second-ranked candidate heavily: it must sink to the end
	// of the failover tail, while the home keeps its slot.
	second := base[1]
	second.inflight.Store(100)
	got := rt.rank(key)
	if got[0] != home {
		t.Fatalf("affinity home displaced by load: %s → %s", home.Name, got[0].Name)
	}
	if got[len(got)-1] != second {
		t.Fatalf("loaded candidate %s not last in the failover tail: %v", second.Name, names(got))
	}
	second.inflight.Store(0)

	// A not-ready replica drops behind every ready one, even the home.
	home.ready.Store(false)
	got = rt.rank(key)
	if got[len(got)-1] != home || len(got) != 4 {
		t.Fatalf("not-ready home not demoted to the fallback tier: %v", names(got))
	}
	home.ready.Store(true)

	// An open breaker excludes the replica outright.
	for range 10 {
		byName["b:1"].breaker.Failure()
	}
	got = rt.rank(key)
	if len(got) != 3 {
		t.Fatalf("open-breaker replica still ranked: %v", names(got))
	}
	for _, rep := range got {
		if rep.Name == "b:1" {
			t.Fatalf("open-breaker replica present: %v", names(got))
		}
	}

	// No affinity key: pure least-loaded order.
	byName["d:1"].inflight.Store(5)
	byName["a:1"].inflight.Store(1)
	got = rt.rank("")
	if got[len(got)-1].Name != "d:1" {
		t.Fatalf("least-loaded order wrong: %v", names(got))
	}
}

func names(reps []*Replica) []string {
	out := make([]string, len(reps))
	for i, rep := range reps {
		out[i] = rep.Name
	}
	return out
}
