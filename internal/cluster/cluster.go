// Package cluster is the fault-tolerant front-end over a fleet of
// seda-serve replicas: cmd/seda-router is a thin flag shell over the
// Router type here.
//
// The routing policy is config-fingerprint affinity: /v1/sweep and
// /v1/explore requests resolve — with exactly the same code the
// replica uses (internal/serve.ResolveSweep and friends) — to a
// canonical affinity key, and rendezvous hashing over that key picks
// the replica whose in-memory rescache almost certainly already holds
// the result. Failover candidates are ranked least-loaded first, so a
// dead affinity home spreads its keys by load instead of electing a
// second fixed home.
//
// The robustness core, in the order a request meets it:
//
//   - Token-bucket admission at the front door (429 + Retry-After when
//     demand exceeds the configured rate; the fleet's bounded compute
//     capacity is never the queue).
//   - Per-replica circuit breakers (closed → open on consecutive
//     transport failures/timeouts, open → half-open on a cooldown,
//     half-open → closed on one success) exclude broken replicas from
//     ranking entirely.
//   - Active health checking probes every replica's /readyz on an
//     interval: alive-but-saturated (or draining) replicas are
//     deprioritized before requests shed, dead ones feed their breaker.
//   - Bounded retry with exponential backoff + jitter against a
//     per-request attempt budget: a request never consumes more than
//     RetryBudget upstream attempts, and only idempotent GET/HEAD
//     requests are routed at all (the replica API is read-only).
//   - Optional hedging: when the first attempt has not answered within
//     HedgeDelay, a second replica gets the same request and the first
//     success wins — tail latency is bounded by the second-slowest
//     replica, at the cost of duplicate work the rescache singleflight
//     absorbs.
//   - Graceful degradation: when no replica can answer, a cache-only
//     internal/serve API over the shared disk-cache tier serves
//     already-published results — marked stale via X-Seda-Stale and a
//     Warning header — before the router admits defeat with a 503.
//
// Replica attempts are buffered in full before a byte reaches the
// client, so a replica dying mid-body is a retryable event, not a
// truncated client response — the chaos suites pin exactly this
// transparency.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/explore"
	"repro/internal/memprot"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/seda"
)

// Failpoint sites. The router's failure handling is driven through
// these in the chaos suites; see internal/failpoint for the spec
// grammar (probability modifiers model flaky, not just dead, links).
const (
	// FailpointDial fires before each upstream attempt's HTTP call:
	// error(...) models a dial failure, sleep(...) a slow replica.
	FailpointDial = "cluster.dial"
	// FailpointBody fires after an upstream response body has been
	// read: error(...) models a replica dying mid-body.
	FailpointBody = "cluster.body"
	// FailpointHealth fires inside each health probe: with a
	// probability modifier it models a flapping health surface.
	FailpointHealth = "cluster.health"
)

// Options configures a Router. Zero values take the documented
// defaults; Replicas is the only required field.
type Options struct {
	Replicas []string // base URLs (host:port or http://host:port), one per replica

	// RetryBudget caps upstream attempts per request, first try
	// included — the invariant is "a request never consumes more than
	// RetryBudget attempts", whether they are retries or hedges.
	// Default 3.
	RetryBudget int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// retry waves; the actual wait is uniformly jittered over
	// (0, delay] so a burst of failed-over requests does not retry in
	// lockstep. Defaults 25ms and 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay > 0 arms tail-latency hedging: if the current attempt
	// has not answered within this delay, the next-ranked replica gets
	// a concurrent attempt. 0 disables hedging. The hedge consumes one
	// unit of the same attempt budget.
	HedgeDelay time.Duration
	// AttemptTimeout bounds each upstream attempt; expiry counts as a
	// replica timeout (breaker failure) and triggers failover. Default
	// 3m — it must cover a cold full-suite evaluation on a replica.
	AttemptTimeout time.Duration

	// BreakerThreshold consecutive transport failures/timeouts open a
	// replica's breaker for BreakerCooldown. Defaults 3 and 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HealthInterval spaces active /readyz probes; 0 disables the
	// background checker (tests drive ProbeNow directly). Default when
	// StartHealth is used with 0: 1s. HealthTimeout bounds one probe
	// (default 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// AdmitRate/AdmitBurst configure token-bucket admission for the
	// evaluation routes (sweep + explore). Rate is requests/second;
	// 0 disables admission control. Burst defaults to max(1, rate).
	AdmitRate  float64
	AdmitBurst int

	// MaxBodyBytes caps a buffered upstream response. Default 64 MiB.
	MaxBodyBytes int64

	// Degraded, when non-nil, is the cache-only internal/serve API over
	// the shared disk-cache tier: the stale-serving fallback and the
	// local authority for the static catalog routes.
	Degraded *serve.API

	Log       *slog.Logger      // nil = discard
	Transport http.RoundTripper // nil = http.DefaultTransport (injectable for tests)
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 3
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 25 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = time.Second
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 3 * time.Minute
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = 2 * time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	return opts
}

// Router is the cluster front-end handler plus the state behind it.
// Construct with New, mount Handler, and (in production) run
// StartHealth; all methods are safe for concurrent use.
type Router struct {
	opts     Options
	replicas []*Replica
	client   *http.Client
	admit    *tokenBucket
	degraded http.Handler // non-nil iff opts.Degraded is

	metrics *routerMetrics
	log     *slog.Logger
	build   obs.Build

	draining atomic.Bool
}

// New builds a Router over the given replica fleet.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica is required")
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	m := newRouterMetrics()
	seen := make(map[string]bool)
	replicas := make([]*Replica, 0, len(opts.Replicas))
	for _, raw := range opts.Replicas {
		u, err := parseReplicaURL(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		name := u.Host
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate replica %s", name)
		}
		seen[name] = true
		rep := &Replica{
			Name:    name,
			url:     u,
			breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		}
		// Optimistic start: traffic flows immediately after boot with
		// full affinity; the first probe round corrects the picture
		// within one HealthInterval.
		rep.alive.Store(true)
		rep.ready.Store(true)
		m.registerReplica(rep)
		replicas = append(replicas, rep)
	}
	rt := &Router{
		opts:     opts,
		replicas: replicas,
		client:   &http.Client{Transport: opts.Transport},
		admit:    newTokenBucket(opts.AdmitRate, opts.AdmitBurst),
		metrics:  m,
		log:      log,
		build:    obs.ReadBuild(),
	}
	if opts.Degraded != nil {
		rt.degraded = opts.Degraded.Handler()
	}
	return rt, nil
}

// Replicas exposes the fleet for inspection (tests, healthz).
func (rt *Router) Replicas() []*Replica { return rt.replicas }

// SetDraining flips the router's own readiness surface; the listener
// lifecycle calls it when shutdown begins.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Handler mounts the router's HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.mw("/healthz", rt.handleHealthz))
	mux.HandleFunc("/readyz", rt.mw("/readyz", rt.handleReadyz))
	mux.HandleFunc("/metrics", rt.mw("/metrics", rt.handleMetrics))
	mux.HandleFunc("/v1/workloads", rt.mw("/v1/workloads", rt.catalog("/v1/workloads")))
	mux.HandleFunc("/v1/schemes", rt.mw("/v1/schemes", rt.catalog("/v1/schemes")))
	mux.HandleFunc("/v1/sweep", rt.mw("/v1/sweep", rt.handleSweep))
	mux.HandleFunc("/v1/explore", rt.mw("/v1/explore", rt.handleExplore))
	return mux
}

// handleSweep routes one sweep by fingerprint affinity. Parameter
// resolution runs the same code as the replica handler; a request that
// fails to resolve forwards without affinity and lets the replica
// answer the 400, so error wording never drifts between tiers.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !rt.admitted(w) {
		return
	}
	q := r.URL.Query()
	key := ""
	if npu, nets, err := serve.ResolveSweep(q.Get("fig"), q.Get("npu"), q.Get("workloads")); err == nil {
		key = serve.SweepAffinityKey(npu, nets)
	}
	rt.forward(w, r, "/v1/sweep", key)
}

func (rt *Router) handleExplore(w http.ResponseWriter, r *http.Request) {
	if !rt.admitted(w) {
		return
	}
	rt.forward(w, r, "/v1/explore", exploreAffinity(r.URL.Query()))
}

// exploreAffinity mirrors the replica handler's parameter resolution
// just far enough to derive the affinity key; any resolution failure
// routes without affinity (the replica owns the error response).
func exploreAffinity(q url.Values) string {
	spec, err := explore.ParseSpec(q.Get("spec"))
	if err != nil {
		return ""
	}
	baseName := q.Get("base")
	if baseName == "" {
		baseName = "edge"
	}
	base, err := seda.NPUByName(baseName)
	if err != nil {
		return ""
	}
	scheme := memprot.SchemeSeDA
	if name := q.Get("scheme"); name != "" {
		if scheme, err = seda.SchemeByName(name); err != nil {
			return ""
		}
	}
	nets, err := serve.ParseWorkloads(q.Get("workloads"))
	if err != nil {
		return ""
	}
	var margin float64
	if raw := q.Get("margin"); raw != "" {
		if margin, err = strconv.ParseFloat(raw, 64); err != nil {
			return ""
		}
	}
	return serve.ExploreAffinityKey(spec, base, nets, scheme, margin)
}

// catalog serves the static catalog routes. They are identical on
// every instance of one build, so the router answers them locally when
// it has a degraded API (same binary, same catalog) and only proxies
// when it does not.
func (rt *Router) catalog(route string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rt.degraded != nil {
			rt.degraded.ServeHTTP(w, r)
			return
		}
		rt.forward(w, r, route, "")
	}
}

// admitted applies token-bucket admission; a rejected request is
// answered 429 with backoff advice and never reaches the fleet.
func (rt *Router) admitted(w http.ResponseWriter) bool {
	ok, retryAfter := rt.admit.take()
	if ok {
		return true
	}
	rt.metrics.admitRejected.Inc()
	secs := int(retryAfter/time.Second) + 1
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "request rate exceeds the router's admission capacity", http.StatusTooManyRequests)
	return false
}

// forward runs the retry/hedge machinery and writes the outcome: the
// first successful upstream response verbatim (plus the X-Seda-Replica
// tag), else a stale hit from the shared cache tier, else 503.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, route, key string) {
	cands := rt.rank(key)
	var (
		resp *bufferedResp
		idx  int
		err  error
	)
	if len(cands) == 0 {
		err = errNoReplica
	} else {
		resp, idx, err = rt.race(r, cands)
	}
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to answer
		}
		if (route == "/v1/sweep" || route == "/v1/explore") && rt.tryStale(w, r) {
			return
		}
		rt.metrics.unserved.Inc()
		rt.log.Warn("request unserved", slog.String("route", route), slog.Any("err", err))
		// Jittered advice, same reasoning as the replica's Retry-After:
		// a fleet-wide outage must not heal into a retry stampede.
		w.Header().Set("Retry-After", strconv.Itoa(2+rand.IntN(3)))
		http.Error(w, fmt.Sprintf("no replica available: %v", err), http.StatusServiceUnavailable)
		return
	}
	if idx > 0 {
		rt.metrics.failover.Inc()
	}
	resp.writeTo(w)
}

// tryStale answers from the degraded cache-only tier when the fleet
// cannot: a 200/304 there is a completed result some replica already
// published to the shared disk cache. The response is marked stale —
// the fleet might have served a fresher pipeline epoch — via
// X-Seda-Stale plus an RFC 7234 Warning, so clients can distinguish
// degraded service from healthy service. Anything else (a cache-only
// miss surfaces as 503 inside the degraded API) reports false and the
// caller falls through to the router's own 503.
func (rt *Router) tryStale(w http.ResponseWriter, r *http.Request) bool {
	if rt.degraded == nil {
		return false
	}
	rec := newBufferingWriter()
	rt.degraded.ServeHTTP(rec, r)
	if rec.status != http.StatusOK && rec.status != http.StatusNotModified {
		return false
	}
	h := w.Header()
	copyEndToEndHeaders(h, rec.header)
	h.Set("X-Seda-Stale", "true")
	h.Set("Warning", `110 seda-router "stale: served from the shared cache tier, no replica available"`)
	w.WriteHeader(rec.status)
	w.Write(rec.body.Bytes()) //nolint:errcheck // client gone mid-stream
	rt.metrics.staleServed.Inc()
	return true
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type replicaJSON struct {
		Name    string `json:"name"`
		Alive   bool   `json:"alive"`
		Ready   bool   `json:"ready"`
		Breaker string `json:"breaker"`
	}
	doc := struct {
		Status   string        `json:"status"`
		Version  string        `json:"version"`
		Revision string        `json:"revision"`
		Pipeline string        `json:"pipeline"`
		Go       string        `json:"go"`
		Replicas []replicaJSON `json:"replicas"`
	}{
		Status:   "ok",
		Version:  rt.build.ModuleVersion,
		Revision: rt.build.Revision,
		Pipeline: seda.PipelineVersion,
		Go:       rt.build.GoVersion,
	}
	for _, rep := range rt.replicas {
		doc.Replicas = append(doc.Replicas, replicaJSON{
			Name:    rep.Name,
			Alive:   rep.Alive(),
			Ready:   rep.Ready(),
			Breaker: rep.BreakerState().String(),
		})
	}
	writeJSON(w, doc)
}

// handleReadyz: the router is ready while it can route to at least one
// breaker-admitted replica. Draining (shutdown began) and a fully
// unavailable fleet — even one the stale tier could partially cover —
// answer 503, so an upstream load balancer steers traffic to another
// router instance first.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	doc := struct {
		Status   string `json:"status"`
		Eligible int    `json:"eligible"`
		Total    int    `json:"total"`
	}{Status: "ready", Total: len(rt.replicas)}
	for _, rep := range rt.replicas {
		if rep.breaker.Allow() && rep.Alive() {
			doc.Eligible++
		}
	}
	switch {
	case rt.draining.Load():
		doc.Status = "draining"
	case doc.Eligible == 0 && rt.degraded != nil:
		doc.Status = "degraded"
	case doc.Eligible == 0:
		doc.Status = "unavailable"
	}
	if doc.Status != "ready" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(doc) //nolint:errcheck
		return
	}
	writeJSON(w, doc)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := rt.metrics
	for _, rep := range rt.replicas {
		boolGauge(rep.upG, rep.Alive())
		boolGauge(rep.readyG, rep.Ready())
		rep.inflightG.Set(float64(rep.inflight.Load()))
		rep.breakerG.Set(float64(rep.BreakerState()))
	}
	m.runtime.Collect()
	w.Header().Set("Content-Type", obs.PromContentType)
	m.reg.WriteProm(w) //nolint:errcheck // client gone mid-stream
}

func boolGauge(g *obs.Gauge, v bool) {
	if v {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-stream
}
