package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/rescache"
	"repro/internal/serve"
	"repro/seda"
)

// Cluster chaos tests: real serve.API replicas behind the router, real
// faults (a replica dying mid-load, a hung replica, a flapping health
// surface), and the transparency contract checked end to end — zero
// client-visible errors, bodies byte-identical to a single-replica
// reference, failure counters visible, inflight drained. Requests
// restrict workloads to the millisecond-scale ones (let, ncf) so the
// suites stay fast under -race.

// realReplica runs a full serve.API over the shared disk dir and can
// be killed (connections abort, mid-body included) or hung (requests
// block until released) to model SIGKILL and a wedged process.
type realReplica struct {
	srv     *httptest.Server
	dead    atomic.Bool
	hang    atomic.Bool
	release chan struct{}
}

func newRealReplica(t *testing.T, dir string) *realReplica {
	t.Helper()
	cache, err := rescache.New(rescache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	inner := serve.NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler()
	rep := &realReplica{release: make(chan struct{})}
	rep.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rep.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		if rep.hang.Load() {
			select {
			case <-rep.release:
			case <-r.Context().Done():
			}
			panic(http.ErrAbortHandler)
		}
		// The dead flag is also honored mid-response: a write after
		// death aborts the connection with a torn body, exactly what a
		// SIGKILL between two TCP segments looks like to the router.
		inner.ServeHTTP(&killableWriter{ResponseWriter: w, dead: &rep.dead}, r)
	}))
	t.Cleanup(rep.srv.Close)
	t.Cleanup(func() { rep.hang.Store(false); close(rep.release) })
	return rep
}

type killableWriter struct {
	http.ResponseWriter
	dead *atomic.Bool
}

func (kw *killableWriter) Write(p []byte) (int, error) {
	if kw.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	return kw.ResponseWriter.Write(p)
}

func realFleet(t *testing.T, n int, dir string, opts Options) (*Router, []*realReplica) {
	t.Helper()
	reps := make([]*realReplica, n)
	for i := range reps {
		reps[i] = newRealReplica(t, dir)
		opts.Replicas = append(opts.Replicas, reps[i].srv.URL)
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt, reps
}

func waitInflightDrain(t *testing.T, rt *Router) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var total int64
		for _, rep := range rt.Replicas() {
			total += rep.inflight.Load()
		}
		if total == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica inflight gauges did not drain: %d attempts still tracked", total)
		}
		time.Sleep(time.Millisecond)
	}
}

// chaosURLs is the request mix: both figures, both fast workloads,
// both formats — several distinct affinity keys so the whole fleet
// carries traffic.
var chaosURLs = []string{
	"/v1/sweep?fig=5b&workloads=let",
	"/v1/sweep?fig=5b&workloads=ncf",
	"/v1/sweep?fig=5b&workloads=let,ncf",
	"/v1/sweep?fig=6b&workloads=let,ncf",
	"/v1/sweep?fig=5b&workloads=let&format=csv",
	"/v1/sweep?fig=6b&workloads=ncf&format=csv",
}

// referenceBodies evaluates the chaos mix on a plain single-process
// API over its own cache dir: the ground truth the routed fleet must
// reproduce byte for byte.
func referenceBodies(t *testing.T) map[string]string {
	t.Helper()
	cache, err := rescache.New(rescache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	h := serve.NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler()
	ref := make(map[string]string, len(chaosURLs))
	for _, url := range chaosURLs {
		rec := get(t, h, url, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %s: %d %s", url, rec.Code, rec.Body.String())
		}
		ref[url] = rec.Body.String()
	}
	return ref
}

// TestChaosReplicaDeathMidLoad is the transparency proof: three real
// replicas over one shared cache dir take concurrent sweep load, one
// is killed mid-run (connections abort, including mid-body), and every
// client still gets a 200 whose body is byte-identical to the
// single-replica reference. The death is visible only in the router's
// counters.
func TestChaosReplicaDeathMidLoad(t *testing.T) {
	ref := referenceBodies(t)
	rt, reps := realFleet(t, 3, t.TempDir(), Options{
		RetryBudget: 4,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	h := rt.Handler()

	// Identify the replica that owns the first URL's affinity key, so
	// the kill is guaranteed to hit a loaded replica.
	first := get(t, h, chaosURLs[0], nil)
	if first.Code != http.StatusOK {
		t.Fatalf("warmup: %d %s", first.Code, first.Body.String())
	}
	victimAddr := first.Header().Get("X-Seda-Replica")
	var victim *realReplica
	for _, rep := range reps {
		if rep.srv.URL == "http://"+victimAddr {
			victim = rep
		}
	}
	if victim == nil {
		t.Fatalf("victim %q not in fleet", victimAddr)
	}

	const workers, perWorker = 8, 12
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	var fired sync.Once
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range perWorker {
				if w == 0 && i == perWorker/3 {
					fired.Do(func() { victim.dead.Store(true) }) // SIGKILL mid-load
				}
				url := chaosURLs[(w+i)%len(chaosURLs)]
				rec := get(t, h, url, nil)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("%s: %d %s", url, rec.Code, rec.Body.String())
					continue
				}
				if rec.Body.String() != ref[url] {
					errs <- fmt.Sprintf("%s: body diverged from the single-replica reference", url)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("client-visible fault: %s", e)
	}
	waitInflightDrain(t, rt)

	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_failover_total"); v < 1 {
		t.Fatalf("failover_total = %v after a replica death, want >= 1", v)
	}
	if v := counterValue(t, fams, "seda_router_retries_total"); v < 1 {
		t.Fatalf("retries_total = %v after a replica death, want >= 1", v)
	}
	if v := counterValue(t, fams, "seda_router_unserved_total"); v != 0 {
		t.Fatalf("unserved_total = %v, want 0 (no request may be dropped)", v)
	}
}

// TestChaosHungReplica: a wedged replica (accepts connections, never
// answers) is cut off by the per-attempt timeout, failed over, and its
// breaker opens — clients see only 200s.
func TestChaosHungReplica(t *testing.T) {
	rt, reps := realFleet(t, 3, t.TempDir(), Options{
		RetryBudget:      3,
		BackoffBase:      time.Millisecond,
		AttemptTimeout:   150 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	h := rt.Handler()

	url := chaosURLs[0]
	warm := get(t, h, url, nil)
	if warm.Code != http.StatusOK {
		t.Fatalf("warmup: %d", warm.Code)
	}
	hungAddr := warm.Header().Get("X-Seda-Replica")
	for _, rep := range reps {
		if rep.srv.URL == "http://"+hungAddr {
			rep.hang.Store(true)
		}
	}

	for i := range 4 {
		rec := get(t, h, url, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d against a hung home: %d %s", i, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != warm.Body.String() {
			t.Fatalf("request %d: failover body diverged", i)
		}
	}
	var hungOpen bool
	for _, rep := range rt.Replicas() {
		if rep.Name == hungAddr && rep.BreakerState() == BreakerOpen {
			hungOpen = true
		}
	}
	if !hungOpen {
		t.Fatal("hung replica's breaker never opened")
	}
	waitInflightDrain(t, rt)
}

// TestChaosFlappingHealth: a health surface failing probabilistically
// (the cluster.health failpoint with a probability modifier, seeded
// for reproducibility) flaps replicas between up and down — and none
// of it reaches clients, because ranking only ever demotes, never
// empties, the candidate list.
func TestChaosFlappingHealth(t *testing.T) {
	defer failpoint.Reset()
	rt, _ := realFleet(t, 3, t.TempDir(), Options{
		RetryBudget: 4,
		BackoffBase: time.Millisecond,
	})
	h := rt.Handler()
	ctx := t.Context()

	failpoint.SeedSampling(42)
	if err := failpoint.Enable(FailpointHealth, "0.5*error(flaky probe link)"); err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for range 20 {
		rt.ProbeNow(ctx)
		for _, rep := range rt.Replicas() {
			if !rep.Alive() {
				sawDown = true
			}
		}
		if rec := get(t, h, chaosURLs[0], nil); rec.Code != http.StatusOK {
			t.Fatalf("request during health flapping: %d %s", rec.Code, rec.Body.String())
		}
	}
	if !sawDown {
		t.Fatal("0.5-probability probe fault never marked a replica down in 60 probes")
	}

	// The storm passes: probes succeed again and the whole fleet
	// returns to ready (half-open trials close any opened breakers
	// after their cooldown).
	failpoint.Reset()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rt.ProbeNow(ctx)
		ready := 0
		for _, rep := range rt.Replicas() {
			if rep.Ready() && rep.BreakerState() == BreakerClosed {
				ready++
			}
		}
		if ready == len(rt.Replicas()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not recover after the probe fault cleared: %d/%d ready", ready, len(rt.Replicas()))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStaleServeWhenFleetDown: the graceful-degradation path. A warm
// result published to the shared disk tier is still served (marked
// stale) when every replica is gone; a cold request honestly 503s.
func TestStaleServeWhenFleetDown(t *testing.T) {
	dir := t.TempDir()
	rt, reps := realFleet(t, 2, dir, Options{
		RetryBudget:      2,
		BackoffBase:      time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Degraded:         degradedAPI(t, dir),
	})
	h := rt.Handler()

	url := chaosURLs[0]
	warm := get(t, h, url, nil)
	if warm.Code != http.StatusOK {
		t.Fatalf("warmup: %d", warm.Code)
	}

	for _, rep := range reps {
		rep.dead.Store(true)
	}
	// Burn the breakers open so the fleet is truly out of candidates
	// (a cold URL, so these burns exercise retry, not the stale tier).
	for range 4 {
		get(t, h, "/v1/sweep?fig=5b&workloads=sent", nil)
	}

	stale := get(t, h, url, nil)
	if stale.Code != http.StatusOK {
		t.Fatalf("warm result with fleet down: %d %s", stale.Code, stale.Body.String())
	}
	if stale.Header().Get("X-Seda-Stale") != "true" {
		t.Fatal("stale response not marked X-Seda-Stale")
	}
	if w := stale.Header().Get("Warning"); !strings.Contains(w, "110") {
		t.Fatalf("stale response Warning = %q, want a 110 stale-response warning", w)
	}
	if stale.Body.String() != warm.Body.String() {
		t.Fatal("stale body diverged from the originally served result")
	}

	// A workload the fleet never evaluated: the cache-only tier cannot
	// compute it, so the router must answer an honest 503. (fig=6b with
	// the warm workloads would NOT be cold — the disk tier is keyed by
	// per-workload config fingerprints, which a figure change shares.)
	cold := get(t, h, "/v1/sweep?fig=5b&workloads=dlrm", nil)
	if cold.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold request with fleet down: %d, want 503", cold.Code)
	}
	if cold.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 without Retry-After")
	}

	// Catalog routes never go stale: they are answered locally.
	cat := get(t, h, "/v1/workloads", nil)
	if cat.Code != http.StatusOK || cat.Header().Get("X-Seda-Stale") != "" {
		t.Fatalf("catalog with fleet down: %d stale=%q", cat.Code, cat.Header().Get("X-Seda-Stale"))
	}

	fams := scrape(t, h)
	if v := counterValue(t, fams, "seda_router_stale_served_total"); v != 1 {
		t.Fatalf("stale_served_total = %v, want 1", v)
	}
	if v := counterValue(t, fams, "seda_router_unserved_total"); v < 1 {
		t.Fatalf("unserved_total = %v, want >= 1 (the cold miss)", v)
	}
}

func degradedAPI(t *testing.T, dir string) *serve.API {
	t.Helper()
	cache, err := rescache.New(rescache.Options{Dir: dir, CacheOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewAPI(cache, seda.DefaultSuiteOptions(), 0)
}
