package trace

import "fmt"

// Overlay is a delta stream over a shared, read-only spine trace: the
// accesses a protection scheme *adds* (metadata, over-fetch), each
// anchored to a position in the spine. The spine itself — the
// scheme-independent data-access stream — is never copied; a scheme's
// full augmented trace is the merge of the spine with its overlay, in
// anchor order.
//
// Anchors are spine indices with "insert before" semantics: an overlay
// access with anchor k is consumed after k spine accesses, i.e.
// immediately before spine access k. An anchor equal to the spine
// length places the access after the whole spine (end-of-trace
// metadata such as cache drains). Appends must be made in nondecreasing
// anchor order, which every scheme satisfies naturally by walking the
// spine once.
//
// Anchors live in a parallel slice rather than inside Access so the
// Access array stays densely packed for the consumers that iterate it.
type Overlay struct {
	Accesses []Access
	Anchors  []int32
}

// Append adds an overlay access anchored before spine index anchor.
// Anchors must be nondecreasing.
func (o *Overlay) Append(anchor int, a Access) {
	if n := len(o.Anchors); n > 0 && int32(anchor) < o.Anchors[n-1] {
		panic(fmt.Sprintf("trace: overlay anchor %d after %d", anchor, o.Anchors[n-1]))
	}
	o.Accesses = append(o.Accesses, a)
	o.Anchors = append(o.Anchors, int32(anchor))
}

// Len returns the number of overlay accesses.
func (o *Overlay) Len() int { return len(o.Accesses) }

// Reset empties the overlay, keeping the backing arrays so a recycled
// overlay refills without reallocating.
func (o *Overlay) Reset() {
	o.Accesses = o.Accesses[:0]
	o.Anchors = o.Anchors[:0]
}

// ForEachMerged walks the merge of spine and overlay in consumption
// order — overlay accesses with anchor k come immediately before spine
// access k — calling fn for each access. The pointer is only valid for
// the duration of the call. A nil overlay walks the spine alone.
func ForEachMerged(spine *Trace, ov *Overlay, fn func(*Access)) {
	if ov == nil {
		for k := range spine.Accesses {
			fn(&spine.Accesses[k])
		}
		return
	}
	j := 0
	for k := range spine.Accesses {
		for j < len(ov.Accesses) && int(ov.Anchors[j]) <= k {
			fn(&ov.Accesses[j])
			j++
		}
		fn(&spine.Accesses[k])
	}
	for j < len(ov.Accesses) {
		fn(&ov.Accesses[j])
		j++
	}
}

// MergedLen returns the length of the merged stream.
func MergedLen(spine *Trace, ov *Overlay) int {
	n := spine.Len()
	if ov != nil {
		n += ov.Len()
	}
	return n
}

// Materialize flattens the merge of spine and overlay into a fresh
// Trace. The hot pipeline never calls this — the DRAM model consumes
// the two streams directly — but flat-trace consumers (trace dumps,
// per-access tests) use it to see exactly what a scheme's augmented
// trace looks like.
func (o *Overlay) Materialize(spine *Trace) *Trace {
	out := &Trace{Accesses: make([]Access, 0, MergedLen(spine, o))}
	ForEachMerged(spine, o, func(a *Access) {
		out.Accesses = append(out.Accesses, *a)
	})
	return out
}

