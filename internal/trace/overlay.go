package trace

import "fmt"

// Overlay is a delta stream over a shared, read-only spine trace: the
// accesses a protection scheme *adds* (metadata, over-fetch), each
// anchored to a position in the spine. The spine itself — the
// scheme-independent data-access stream — is never copied; a scheme's
// full augmented trace is the merge of the spine with its overlay, in
// anchor order.
//
// Anchors are spine indices with "insert before" semantics: an overlay
// access with anchor k is consumed after k spine accesses, i.e.
// immediately before spine access k. An anchor equal to the spine
// length places the access after the whole spine (end-of-trace
// metadata such as cache drains). Appends must be made in nondecreasing
// anchor order, which every scheme satisfies naturally by walking the
// spine once.
//
// Anchors live in a parallel slice rather than inside Access so the
// Access array stays densely packed for the consumers that iterate it.
type Overlay struct {
	Accesses []Access
	Anchors  []int32
}

// Append adds an overlay access anchored before spine index anchor.
// Anchors must be nondecreasing.
func (o *Overlay) Append(anchor int, a Access) {
	if n := len(o.Anchors); n > 0 && int32(anchor) < o.Anchors[n-1] {
		panic(fmt.Sprintf("trace: overlay anchor %d after %d", anchor, o.Anchors[n-1]))
	}
	o.Accesses = append(o.Accesses, a)
	o.Anchors = append(o.Anchors, int32(anchor))
}

// CoalesceQuantum is the transfer granularity coalescing reasons
// about: an overlay entry may only absorb a follow-up access when its
// own size is a whole number of 64-byte units, so the combined entry
// explodes into exactly the bursts the two entries produced apart.
// The identity holds for any DRAM burst size that divides 64 — every
// geometry in the repo uses 64-byte bursts.
const CoalesceQuantum = 64

// AppendCoalesce adds an overlay access like Append, but first tries
// to merge it into the previous entry. The merge fires only when the
// combined entry is indistinguishable from the pair at the DRAM layer:
// same anchor (no spine access lands between them), same issue cycle,
// kind, class and tags (so attribution and dumps keep their meaning),
// the previous entry covering a non-zero whole number of 64-byte
// units, this access being non-empty and starting exactly where the
// previous one ends. Under those conditions the burst explode of the
// merged entry is bit-identical to the uncoalesced stream — see the
// coalescing invariant in DESIGN.md — while metadata-heavy schemes
// emit several-fold fewer entries (an SGX multi-line MAC or VN fill
// run collapses into one entry). Zero-byte accesses always refuse the
// merge: the DRAM model explodes an empty access into one burst, so
// absorbing it (or growing an empty entry) would change the stream —
// FuzzOverlayAppendCoalesce exercises exactly this corner.
func (o *Overlay) AppendCoalesce(anchor int, a Access) {
	if n := len(o.Accesses); n > 0 && int(o.Anchors[n-1]) == anchor {
		p := &o.Accesses[n-1]
		if p.Cycle == a.Cycle && p.Kind == a.Kind && p.Class == a.Class &&
			p.Tensor == a.Tensor && p.Layer == a.Layer && p.Tile == a.Tile &&
			p.Bytes != 0 && a.Bytes != 0 &&
			p.Bytes%CoalesceQuantum == 0 && p.Addr+uint64(p.Bytes) == a.Addr {
			p.Bytes += a.Bytes
			return
		}
	}
	o.Append(anchor, a)
}

// Len returns the number of overlay accesses.
func (o *Overlay) Len() int { return len(o.Accesses) }

// Reset empties the overlay, keeping the backing arrays so a recycled
// overlay refills without reallocating.
func (o *Overlay) Reset() {
	o.Accesses = o.Accesses[:0]
	o.Anchors = o.Anchors[:0]
}

// ForEachMerged walks the merge of spine and overlay in consumption
// order — overlay accesses with anchor k come immediately before spine
// access k — calling fn for each access. The pointer is only valid for
// the duration of the call. A nil overlay walks the spine alone.
func ForEachMerged(spine *Trace, ov *Overlay, fn func(*Access)) {
	if ov == nil {
		for k := range spine.Accesses {
			fn(&spine.Accesses[k])
		}
		return
	}
	j := 0
	for k := range spine.Accesses {
		for j < len(ov.Accesses) && int(ov.Anchors[j]) <= k {
			fn(&ov.Accesses[j])
			j++
		}
		fn(&spine.Accesses[k])
	}
	for j < len(ov.Accesses) {
		fn(&ov.Accesses[j])
		j++
	}
}

// MergedLen returns the length of the merged stream.
func MergedLen(spine *Trace, ov *Overlay) int {
	n := spine.Len()
	if ov != nil {
		n += ov.Len()
	}
	return n
}

// Materialize flattens the merge of spine and overlay into a fresh
// Trace. The hot pipeline never calls this — the DRAM model consumes
// the two streams directly — but flat-trace consumers (trace dumps,
// per-access tests) use it to see exactly what a scheme's augmented
// trace looks like.
func (o *Overlay) Materialize(spine *Trace) *Trace {
	out := &Trace{Accesses: make([]Access, 0, MergedLen(spine, o))}
	ForEachMerged(spine, o, func(a *Access) {
		out.Accesses = append(out.Accesses, *a)
	})
	return out
}
