// Package trace defines the DRAM access-trace representation shared
// between the systolic-array simulator (which produces traces), the
// memory-protection simulator (which augments them with security
// metadata accesses), and the DRAM timing simulator (which consumes
// them). It mirrors the role of SCALE-Sim's DRAM trace files in the
// paper's evaluation pipeline (§IV-A).
package trace

import (
	"fmt"
	"math/bits"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "R"
	}
	return "W"
}

// Class tags what an access carries, so overhead can be attributed.
type Class uint8

const (
	// Data is baseline tensor traffic (ifmap/weights/ofmap).
	Data Class = iota
	// MACMeta is per-block message-authentication-code traffic.
	MACMeta
	// VNMeta is version-number (counter) traffic.
	VNMeta
	// TreeMeta is integrity-tree interior-node traffic.
	TreeMeta
	// OverFetch is extra data traffic caused by protection-block
	// granularity mismatch with the tile geometry (partial blocks
	// rounded up to block boundaries).
	OverFetch
	numClasses
)

func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case MACMeta:
		return "mac"
	case VNMeta:
		return "vn"
	case TreeMeta:
		return "tree"
	case OverFetch:
		return "overfetch"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Tensor identifies which operand stream an access belongs to.
type Tensor uint8

const (
	IFMap Tensor = iota
	Weights
	OFMap
	Metadata
)

func (t Tensor) String() string {
	switch t {
	case IFMap:
		return "ifmap"
	case Weights:
		return "weights"
	case OFMap:
		return "ofmap"
	case Metadata:
		return "meta"
	}
	return fmt.Sprintf("tensor(%d)", uint8(t))
}

// Access is one DRAM request. Addr is a byte address; Bytes is the
// request size (the DRAM model splits it into 64B bursts). Cycle is
// the accelerator-side issue time, used by the DRAM model to bound
// how early the request may be scheduled.
type Access struct {
	Cycle  uint64
	Addr   uint64
	Bytes  uint32
	Kind   Kind
	Class  Class
	Tensor Tensor
	Layer  uint16
	Tile   uint32
}

// Trace is an ordered sequence of accesses plus summary statistics.
type Trace struct {
	Accesses []Access
}

// Append adds an access.
func (t *Trace) Append(a Access) { t.Accesses = append(t.Accesses, a) }

// Reserve ensures capacity for n more accesses, so producers that know
// their access count up front (e.g. the tiling schedule) append
// without reallocation.
func (t *Trace) Reserve(n int) {
	need := len(t.Accesses) + n
	if cap(t.Accesses) >= need {
		return
	}
	grown := make([]Access, len(t.Accesses), need)
	copy(grown, t.Accesses)
	t.Accesses = grown
}

// AppendAll concatenates another trace.
func (t *Trace) AppendAll(o *Trace) {
	t.Accesses = append(t.Accesses, o.Accesses...)
}

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Stats summarizes a trace's byte counts.
type Stats struct {
	ReadBytes      uint64
	WriteBytes     uint64
	BytesByClass   [int(numClasses)]uint64
	AccessCount    uint64
	DataAccesses   uint64
	MetaAccesses   uint64
	HighestCycle   uint64
	DistinctLayers int
}

// TotalBytes returns read + write bytes.
func (s Stats) TotalBytes() uint64 { return s.ReadBytes + s.WriteBytes }

// DataBytes returns bytes attributed to baseline tensor traffic.
func (s Stats) DataBytes() uint64 { return s.BytesByClass[Data] }

// MetaBytes returns bytes of all security-metadata classes plus
// over-fetch (everything a protection scheme added).
func (s Stats) MetaBytes() uint64 {
	return s.BytesByClass[MACMeta] + s.BytesByClass[VNMeta] +
		s.BytesByClass[TreeMeta] + s.BytesByClass[OverFetch]
}

// ComputeStats walks the trace and summarizes it. Layer IDs are
// uint16, so distinct layers are tracked in a fixed 64 Ki-bit bitset
// instead of a map — the walk performs no heap allocation.
func (t *Trace) ComputeStats() Stats {
	var s Stats
	var layers [1 << 16 / 64]uint64
	for _, a := range t.Accesses {
		s.AccessCount++
		if a.Kind == Read {
			s.ReadBytes += uint64(a.Bytes)
		} else {
			s.WriteBytes += uint64(a.Bytes)
		}
		s.BytesByClass[a.Class] += uint64(a.Bytes)
		if a.Class == Data {
			s.DataAccesses++
		} else {
			s.MetaAccesses++
		}
		if a.Cycle > s.HighestCycle {
			s.HighestCycle = a.Cycle
		}
		layers[a.Layer>>6] |= 1 << (a.Layer & 63)
	}
	for _, w := range layers {
		s.DistinctLayers += bits.OnesCount64(w)
	}
	return s
}
