package trace

import (
	"reflect"
	"testing"
)

func spineOf(n int) *Trace {
	t := &Trace{}
	for i := 0; i < n; i++ {
		t.Append(Access{Cycle: uint64(i), Addr: uint64(i) * 64, Bytes: 64, Class: Data})
	}
	return t
}

func TestOverlayMergeOrder(t *testing.T) {
	spine := spineOf(3)
	ov := &Overlay{}
	ov.Append(0, Access{Addr: 0xA0, Class: MACMeta}) // before spine[0]
	ov.Append(1, Access{Addr: 0xA1, Class: MACMeta}) // after spine[0]
	ov.Append(1, Access{Addr: 0xA2, Class: VNMeta})  // same anchor keeps order
	ov.Append(3, Access{Addr: 0xA3, Class: VNMeta})  // after the whole spine

	var got []uint64
	ForEachMerged(spine, ov, func(a *Access) { got = append(got, a.Addr) })
	want := []uint64{0xA0, 0, 0xA1, 0xA2, 64, 128, 0xA3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged order = %#x, want %#x", got, want)
	}

	m := ov.Materialize(spine)
	if m.Len() != MergedLen(spine, ov) {
		t.Fatalf("materialized length %d != %d", m.Len(), MergedLen(spine, ov))
	}
	for i, a := range m.Accesses {
		if a.Addr != want[i] {
			t.Errorf("materialized[%d].Addr = %#x, want %#x", i, a.Addr, want[i])
		}
	}
}

func TestOverlayEmptyAndNil(t *testing.T) {
	spine := spineOf(2)
	var got int
	ForEachMerged(spine, nil, func(a *Access) { got++ })
	if got != 2 {
		t.Errorf("nil overlay walked %d accesses, want 2", got)
	}
	ov := &Overlay{}
	m := ov.Materialize(spine)
	if !reflect.DeepEqual(m.Accesses, spine.Accesses) {
		t.Error("empty overlay materialization differs from spine")
	}
}

func TestOverlayAnchorMonotonicity(t *testing.T) {
	ov := &Overlay{}
	ov.Append(2, Access{})
	defer func() {
		if recover() == nil {
			t.Error("decreasing anchor did not panic")
		}
	}()
	ov.Append(1, Access{})
}

func TestOverlayResetKeepsCapacity(t *testing.T) {
	ov := &Overlay{}
	for i := 0; i < 100; i++ {
		ov.Append(i, Access{Addr: uint64(i)})
	}
	capA, capN := cap(ov.Accesses), cap(ov.Anchors)
	ov.Reset()
	if ov.Len() != 0 {
		t.Fatalf("Reset left %d accesses", ov.Len())
	}
	if cap(ov.Accesses) != capA || cap(ov.Anchors) != capN {
		t.Error("Reset dropped backing arrays")
	}
	ov.Append(0, Access{Addr: 7}) // refilling after Reset restarts anchors
}
