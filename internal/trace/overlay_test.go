package trace

import (
	"reflect"
	"testing"
)

// TestAppendCoalesceMerges: a contiguous same-anchor, same-cycle,
// same-kind run folds into one growing entry.
func TestAppendCoalesceMerges(t *testing.T) {
	o := &Overlay{}
	base := Access{Cycle: 7, Addr: 0x1000, Bytes: 64, Kind: Read, Class: MACMeta, Tensor: Metadata, Layer: 3, Tile: 9}
	o.AppendCoalesce(5, base)
	for i := 1; i < 4; i++ {
		a := base
		a.Addr = base.Addr + uint64(i)*64
		o.AppendCoalesce(5, a)
	}
	if o.Len() != 1 {
		t.Fatalf("contiguous run kept %d entries, want 1", o.Len())
	}
	got := o.Accesses[0]
	if got.Addr != 0x1000 || got.Bytes != 256 {
		t.Errorf("merged entry = %#x/%dB, want 0x1000/256B", got.Addr, got.Bytes)
	}
	if o.Anchors[0] != 5 {
		t.Errorf("merged anchor = %d, want 5", o.Anchors[0])
	}
}

// TestAppendCoalesceRefusals: every condition that would change the
// merged stream's burst explode (or its attribution) blocks the merge.
func TestAppendCoalesceRefusals(t *testing.T) {
	base := Access{Cycle: 7, Addr: 0x1000, Bytes: 64, Kind: Read, Class: MACMeta, Tensor: Metadata, Layer: 3, Tile: 9}
	next := base
	next.Addr = 0x1040
	cases := []struct {
		name   string
		anchor int
		mutate func(*Access)
		first  *Access // optional replacement first entry
	}{
		{name: "anchor gap", anchor: 6},
		{name: "cycle", anchor: 5, mutate: func(a *Access) { a.Cycle = 8 }},
		{name: "kind", anchor: 5, mutate: func(a *Access) { a.Kind = Write }},
		{name: "class", anchor: 5, mutate: func(a *Access) { a.Class = VNMeta }},
		{name: "layer", anchor: 5, mutate: func(a *Access) { a.Layer = 4 }},
		{name: "tile", anchor: 5, mutate: func(a *Access) { a.Tile = 10 }},
		{name: "hole", anchor: 5, mutate: func(a *Access) { a.Addr = 0x1080 }},
		{name: "overlap", anchor: 5, mutate: func(a *Access) { a.Addr = 0x1000 }},
		{name: "unaligned prev", anchor: 5, first: &Access{Cycle: 7, Addr: 0x1000, Bytes: 40, Kind: Read, Class: MACMeta, Tensor: Metadata, Layer: 3, Tile: 9}},
	}
	for _, tc := range cases {
		o := &Overlay{}
		first := base
		if tc.first != nil {
			first = *tc.first
		}
		o.AppendCoalesce(5, first)
		a := next
		if tc.first != nil {
			a.Addr = first.Addr + uint64(first.Bytes)
		}
		if tc.mutate != nil {
			tc.mutate(&a)
		}
		o.AppendCoalesce(tc.anchor, a)
		if o.Len() != 2 {
			t.Errorf("%s: merged across a non-equivalence (%d entries)", tc.name, o.Len())
		}
	}
}

// TestAppendCoalesceBurstEquivalence: the coalesced and raw overlays
// explode into the same 64-byte burst sequence (the invariant the DRAM
// equivalence rests on), for aligned and unaligned tails.
func TestAppendCoalesceBurstEquivalence(t *testing.T) {
	raw := &Overlay{}
	coal := &Overlay{}
	emit := []Access{
		{Cycle: 1, Addr: 0x2010, Bytes: 64, Kind: Write, Class: VNMeta},  // unaligned start
		{Cycle: 1, Addr: 0x2050, Bytes: 64, Kind: Write, Class: VNMeta},  // contiguous: merges
		{Cycle: 1, Addr: 0x2090, Bytes: 100, Kind: Write, Class: VNMeta}, // contiguous, odd tail: merges
		{Cycle: 1, Addr: 0x20f4, Bytes: 64, Kind: Write, Class: VNMeta},  // prev tail unaligned: no merge
	}
	for _, a := range emit {
		raw.Append(2, a)
		coal.AppendCoalesce(2, a)
	}
	if coal.Len() >= raw.Len() {
		t.Fatalf("coalescing kept %d of %d entries", coal.Len(), raw.Len())
	}
	bursts := func(o *Overlay) []uint64 {
		var out []uint64
		for _, a := range o.Accesses {
			n := (a.Bytes + 63) / 64
			for b := uint32(0); b < n; b++ {
				out = append(out, a.Addr/64+uint64(b))
			}
		}
		return out
	}
	rb, cb := bursts(raw), bursts(coal)
	if len(rb) != len(cb) {
		t.Fatalf("burst counts differ: raw %d, coalesced %d", len(rb), len(cb))
	}
	for i := range rb {
		if rb[i] != cb[i] {
			t.Fatalf("burst %d differs: raw %#x, coalesced %#x", i, rb[i], cb[i])
		}
	}
}

func spineOf(n int) *Trace {
	t := &Trace{}
	for i := 0; i < n; i++ {
		t.Append(Access{Cycle: uint64(i), Addr: uint64(i) * 64, Bytes: 64, Class: Data})
	}
	return t
}

func TestOverlayMergeOrder(t *testing.T) {
	spine := spineOf(3)
	ov := &Overlay{}
	ov.Append(0, Access{Addr: 0xA0, Class: MACMeta}) // before spine[0]
	ov.Append(1, Access{Addr: 0xA1, Class: MACMeta}) // after spine[0]
	ov.Append(1, Access{Addr: 0xA2, Class: VNMeta})  // same anchor keeps order
	ov.Append(3, Access{Addr: 0xA3, Class: VNMeta})  // after the whole spine

	var got []uint64
	ForEachMerged(spine, ov, func(a *Access) { got = append(got, a.Addr) })
	want := []uint64{0xA0, 0, 0xA1, 0xA2, 64, 128, 0xA3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged order = %#x, want %#x", got, want)
	}

	m := ov.Materialize(spine)
	if m.Len() != MergedLen(spine, ov) {
		t.Fatalf("materialized length %d != %d", m.Len(), MergedLen(spine, ov))
	}
	for i, a := range m.Accesses {
		if a.Addr != want[i] {
			t.Errorf("materialized[%d].Addr = %#x, want %#x", i, a.Addr, want[i])
		}
	}
}

func TestOverlayEmptyAndNil(t *testing.T) {
	spine := spineOf(2)
	var got int
	ForEachMerged(spine, nil, func(a *Access) { got++ })
	if got != 2 {
		t.Errorf("nil overlay walked %d accesses, want 2", got)
	}
	ov := &Overlay{}
	m := ov.Materialize(spine)
	if !reflect.DeepEqual(m.Accesses, spine.Accesses) {
		t.Error("empty overlay materialization differs from spine")
	}
}

func TestOverlayAnchorMonotonicity(t *testing.T) {
	ov := &Overlay{}
	ov.Append(2, Access{})
	defer func() {
		if recover() == nil {
			t.Error("decreasing anchor did not panic")
		}
	}()
	ov.Append(1, Access{})
}

func TestOverlayResetKeepsCapacity(t *testing.T) {
	ov := &Overlay{}
	for i := 0; i < 100; i++ {
		ov.Append(i, Access{Addr: uint64(i)})
	}
	capA, capN := cap(ov.Accesses), cap(ov.Anchors)
	ov.Reset()
	if ov.Len() != 0 {
		t.Fatalf("Reset left %d accesses", ov.Len())
	}
	if cap(ov.Accesses) != capA || cap(ov.Anchors) != capN {
		t.Error("Reset dropped backing arrays")
	}
	ov.Append(0, Access{Addr: 7}) // refilling after Reset restarts anchors
}
