package trace

import (
	"encoding/binary"
	"testing"
)

// fuzzBurst is one exploded DRAM burst: what the timing model sees.
// Replicates the dram package's explode rule for 64-byte bursts: an
// access of n bytes occupies max(1, ceil(n/64)) bursts starting at
// addr/64, each carrying the access's issue cycle and direction.
type fuzzBurst struct {
	cycle uint64
	burst uint64
	kind  Kind
}

func explodeMerged(spine *Trace, ov *Overlay) []fuzzBurst {
	var out []fuzzBurst
	ForEachMerged(spine, ov, func(a *Access) {
		n := (uint64(a.Bytes) + 63) / 64
		if n == 0 {
			n = 1
		}
		b0 := a.Addr / 64
		for k := uint64(0); k < n; k++ {
			out = append(out, fuzzBurst{cycle: a.Cycle, burst: b0 + k, kind: a.Kind})
		}
	})
	return out
}

// FuzzOverlayAppendCoalesce feeds adversarial emission sequences —
// contiguous, gapped, tag-flipping, zero-byte, quantum-misaligned —
// through Append and AppendCoalesce side by side and asserts the
// coalescing invariant: whether each emission merged or was refused,
// the exploded burst stream of the merged overlay is identical to the
// raw one. This is the property that makes Options.CoalesceOverlays
// figure-invariant (DESIGN.md), extended beyond the emitters' actual
// patterns to anything an emitter could ever send.
func FuzzOverlayAppendCoalesce(f *testing.F) {
	// Seeds: a contiguous run that merges, a refusal chain (misaligned
	// quantum), and a zero-byte entry.
	f.Add([]byte{
		0, 1, 0, 0, 1, 0, 0, // absolute placement, 64B
		1, 1, 0, 0, 1, 0, 0, // contiguous continuation, 64B -> merges
		1, 1, 0, 0, 0, 200, 0, // contiguous, 200B (breaks the quantum)
		1, 1, 0, 0, 1, 0, 0, // contiguous after misaligned: refused
		0, 2, 16, 0, 0, 0, 0, // zero-byte emission
	})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 7
		spine := &Trace{}
		for i := 0; i < 4; i++ {
			spine.Append(Access{
				Cycle: uint64(i * 10), Addr: uint64(0x1000 + 256*i), Bytes: 128,
				Kind: Read, Class: Data, Tensor: IFMap, Layer: 1, Tile: uint32(i),
			})
		}
		raw := &Overlay{}
		merged := &Overlay{}
		anchor := 0
		var prevEnd uint64
		n := len(data) / rec
		if n > 128 {
			n = 128
		}
		for i := 0; i < n; i++ {
			r := data[i*rec : (i+1)*rec]
			anchor += int(r[0]) % 2 // nondecreasing, clamped to spine
			if anchor > spine.Len() {
				anchor = spine.Len()
			}
			bytes := uint32(binary.LittleEndian.Uint16(r[4:6]))
			var addr uint64
			if r[0]&0x80 != 0 {
				addr = prevEnd // contiguous continuation: merge bait
			} else {
				addr = uint64(binary.LittleEndian.Uint16(r[2:4])) * 8
			}
			a := Access{
				Cycle:  uint64(r[1] % 4),
				Addr:   addr,
				Bytes:  bytes,
				Kind:   Kind(r[6] & 1),
				Class:  Class((r[6] >> 1) % uint8(numClasses)),
				Tensor: Metadata,
				Layer:  uint16(r[6] >> 5),
				Tile:   uint32(r[6] >> 6),
			}
			prevEnd = addr + uint64(bytes)
			raw.Append(anchor, a)
			merged.AppendCoalesce(anchor, a)
		}
		if merged.Len() > raw.Len() {
			t.Fatalf("coalesced overlay grew: %d > %d entries", merged.Len(), raw.Len())
		}
		got := explodeMerged(spine, merged)
		want := explodeMerged(spine, raw)
		if len(got) != len(want) {
			t.Fatalf("burst stream length changed: %d != %d (raw %d entries, merged %d)",
				len(got), len(want), raw.Len(), merged.Len())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("burst %d diverged: %+v != %+v", i, got[i], want[i])
			}
		}
	})
}
