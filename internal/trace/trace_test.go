package trace

import "testing"

func TestStatsAccounting(t *testing.T) {
	tr := &Trace{}
	tr.Append(Access{Cycle: 10, Addr: 0, Bytes: 64, Kind: Read, Class: Data, Tensor: IFMap, Layer: 0})
	tr.Append(Access{Cycle: 20, Addr: 64, Bytes: 128, Kind: Write, Class: Data, Tensor: OFMap, Layer: 1})
	tr.Append(Access{Cycle: 5, Addr: 4096, Bytes: 8, Kind: Read, Class: MACMeta, Tensor: Metadata, Layer: 1})
	tr.Append(Access{Cycle: 7, Addr: 8192, Bytes: 8, Kind: Read, Class: VNMeta, Tensor: Metadata, Layer: 0})
	tr.Append(Access{Cycle: 9, Addr: 16384, Bytes: 64, Kind: Read, Class: TreeMeta, Tensor: Metadata, Layer: 0})
	tr.Append(Access{Cycle: 9, Addr: 0, Bytes: 32, Kind: Read, Class: OverFetch, Tensor: IFMap, Layer: 0})

	s := tr.ComputeStats()
	if s.AccessCount != 6 {
		t.Errorf("AccessCount = %d, want 6", s.AccessCount)
	}
	if s.ReadBytes != 64+8+8+64+32 {
		t.Errorf("ReadBytes = %d", s.ReadBytes)
	}
	if s.WriteBytes != 128 {
		t.Errorf("WriteBytes = %d", s.WriteBytes)
	}
	if s.TotalBytes() != s.ReadBytes+s.WriteBytes {
		t.Error("TotalBytes mismatch")
	}
	if s.DataBytes() != 192 {
		t.Errorf("DataBytes = %d, want 192", s.DataBytes())
	}
	if s.MetaBytes() != 8+8+64+32 {
		t.Errorf("MetaBytes = %d", s.MetaBytes())
	}
	if s.DataAccesses != 2 || s.MetaAccesses != 4 {
		t.Errorf("data/meta accesses = %d/%d", s.DataAccesses, s.MetaAccesses)
	}
	if s.HighestCycle != 20 {
		t.Errorf("HighestCycle = %d", s.HighestCycle)
	}
	if s.DistinctLayers != 2 {
		t.Errorf("DistinctLayers = %d", s.DistinctLayers)
	}
}

func TestAppendAll(t *testing.T) {
	a := &Trace{}
	a.Append(Access{Addr: 1})
	b := &Trace{}
	b.Append(Access{Addr: 2})
	b.Append(Access{Addr: 3})
	a.AppendAll(b)
	if a.Len() != 3 {
		t.Errorf("len = %d, want 3", a.Len())
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("Kind strings wrong")
	}
	for c, want := range map[Class]string{
		Data: "data", MACMeta: "mac", VNMeta: "vn", TreeMeta: "tree", OverFetch: "overfetch",
	} {
		if c.String() != want {
			t.Errorf("Class %d = %q, want %q", c, c.String(), want)
		}
	}
	for tn, want := range map[Tensor]string{
		IFMap: "ifmap", Weights: "weights", OFMap: "ofmap", Metadata: "meta",
	} {
		if tn.String() != want {
			t.Errorf("Tensor %d = %q, want %q", tn, tn.String(), want)
		}
	}
}

func TestEmptyTraceStats(t *testing.T) {
	s := (&Trace{}).ComputeStats()
	if s.TotalBytes() != 0 || s.AccessCount != 0 || s.DistinctLayers != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}
