// Package serve is the reusable HTTP-serving framework shared by the
// seda-serve replica and the seda-router cluster front-end: the API
// surface over the cached evaluation pipeline (sweep, explore, catalog
// and health endpoints), the per-route middleware (request IDs, timing
// spans, latency histograms, panic recovery, structured access logs),
// the error→status mapping, and the listener lifecycle (bind,
// addr-file publication, signal-drained shutdown).
//
// cmd/seda-serve is a thin flag-parsing shell over this package;
// cmd/seda-router reuses the same API type in cache-only mode as its
// graceful-degradation tier and the lifecycle for its own listener, so
// both processes share one hardened implementation.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/seda"
)

// FailpointSweep fires at the top of the sweep handler with the
// request context, after parameter validation and the ETag
// short-circuit — the last point before the evaluation pipeline. See
// internal/failpoint.
const FailpointSweep = "serve.sweep"

// server wires the HTTP surface to the cached evaluation pipeline. All
// state is read-only after construction except the cache (internally
// synchronized) and the request/panic counters, so one server instance
// safely handles concurrent requests; identical concurrent sweeps
// coalesce onto one pipeline evaluation inside the cache's singleflight
// layer, and distinct ones beyond the cache's bounded compute capacity
// are shed with 503 (rescache.ErrSaturated).
type API struct {
	cache      *rescache.Cache
	opts       seda.SuiteOptions
	reqTimeout time.Duration // per-request deadline; 0 = none
	MaxExplore int           // /v1/explore grid-size cap; 0 = DefaultMaxExplorePoints
	reqs       atomic.Uint64
	panics     atomic.Uint64 // handler panics recovered by the middleware
	draining   atomic.Bool   // set once shutdown begins; /readyz reports 503

	// jitter drives the Retry-After randomness on /readyz and shed
	// responses. It is a per-API seedable source (SeedJitter) instead of
	// the global rand so load-generator runs and the readiness tests can
	// pin the exact advice sequence; a mutex guards it because rand.Rand
	// is not safe for the concurrent handlers.
	jitterMu sync.Mutex
	jitter   *rand.Rand

	build   obs.Build
	metrics *serverMetrics
	Log     *slog.Logger // never nil; newServer defaults to discard
}

func NewAPI(cache *rescache.Cache, opts seda.SuiteOptions, reqTimeout time.Duration) *API {
	// One sweep fans its workloads over a worker pool, and every
	// uncached workload's evaluation takes one of the cache's bounded
	// compute slots. Clamp the pool to the slot count so a single cold
	// sweep can never saturate the capacity against itself and shed its
	// own workloads (slots are contended non-blocking; a lone sweep
	// holding at most `slots` of them always proceeds).
	if slots := cache.ComputeSlots(); slots > 0 {
		if opts.Workers == 0 || opts.Workers > slots {
			opts.Workers = slots
		}
	}
	build := obs.ReadBuild()
	return &API{
		cache:      cache,
		opts:       opts,
		reqTimeout: reqTimeout,
		build:      build,
		metrics:    newServerMetrics(build),
		Log:        slog.New(slog.NewJSONHandler(io.Discard, nil)),
		jitter:     rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
}

// SeedJitter makes the Retry-After jitter deterministic: two APIs
// seeded identically emit identical advice sequences. Production keeps
// the random default (lockstep avoidance needs no reproducibility);
// tests and measured load-generator runs seed it so shed/readiness
// behavior replays exactly.
func (s *API) SeedJitter(seed uint64) {
	s.jitterMu.Lock()
	defer s.jitterMu.Unlock()
	s.jitter = rand.New(rand.NewPCG(seed, seed))
}

// SetDraining flips the readiness surface: once draining, /readyz
// answers 503 so a routing tier stops sending new work, while /healthz
// stays 200 — the process is alive and finishing in-flight requests.
// The lifecycle (Server.Run) calls this when shutdown begins.
func (s *API) SetDraining(v bool) { s.draining.Store(v) }

func (s *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.get("/healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.get("/readyz", s.handleReadyz))
	mux.HandleFunc("/metrics", s.get("/metrics", s.handleMetrics))
	mux.HandleFunc("/v1/workloads", s.get("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("/v1/schemes", s.get("/v1/schemes", s.handleSchemes))
	mux.HandleFunc("/v1/sweep", s.get("/v1/sweep", s.handleSweep))
	mux.HandleFunc("/v1/explore", s.get("/v1/explore", s.handleExplore))
	return mux
}

// get is the per-route middleware: it counts the request, restricts
// the route to GET/HEAD, bounds it with the server's request deadline
// (the handler sees the deadline on r.Context(), which also cancels
// when the client disconnects), tags it with a request ID, traces it
// (every span that ends feeds the stage histograms; ?debug=timing
// additionally returns the span tree in X-Seda-Timing), observes its
// latency in seda_request_duration_seconds under the explicit route
// pattern (never the raw path — label cardinality stays bounded), logs
// one structured access line, and converts handler panics into a 500 —
// counted in seda_panics_total — so one poisoned request cannot take
// the server down. http.ErrAbortHandler is re-panicked: it is
// net/http's own "abort this response" signal, not a defect.
func (s *API) get(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Add(1)
		start := time.Now()

		rid := newRequestID(r)
		w.Header().Set("X-Request-Id", rid)
		rw := &respWriter{ResponseWriter: w}
		timing := wantTiming(r)
		if timing {
			rw.buf = new(bytes.Buffer)
		}

		ctx := obs.WithRequestID(r.Context(), rid)
		var cancel context.CancelFunc
		if s.reqTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
			defer cancel()
		}
		ctx, tr := obs.NewTracer(ctx, "request")
		tr.OnEnd = s.observeStage
		defer tr.Finish()
		r = r.WithContext(ctx)

		done := func() {
			tr.Finish() // end the root span before exporting or observing
			if timing {
				rw.Header().Set("X-Seda-Timing", string(tr.JSON()))
				rw.flush()
			}
			d := time.Since(start)
			s.metrics.reqDur.With(route).Observe(d.Seconds())
			s.Log.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("id", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.RequestURI()),
				slog.String("route", route),
				slog.Int("status", rw.status),
				slog.Int("bytes", rw.bytes),
				slog.Duration("duration", d),
			)
		}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel identity, per net/http docs
					panic(rec)
				}
				s.panics.Add(1)
				s.Log.LogAttrs(context.Background(), slog.LevelError, "handler panic",
					slog.String("id", rid),
					slog.String("route", route),
					slog.Any("panic", rec),
				)
				// Timing mode buffered the whole response, so nothing
				// has hit the wire yet: discard the partial body and
				// let the error response start fresh. Otherwise this
				// is best-effort — a no-op on the status line if the
				// handler already wrote, but it still ends the response.
				if rw.buf != nil {
					rw.buf, rw.wroteHeader, rw.status, rw.bytes = nil, false, 0, 0
				}
				http.Error(rw, fmt.Sprintf("internal error (request %s)", rid), http.StatusInternalServerError)
			}
			done()
		}()
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			rw.Header().Set("Allow", "GET, HEAD")
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(rw, r)
	}
}

// handleHealthz answers the liveness probe with the build identity, so
// one curl tells an operator what is running: module version, VCS
// revision, pipeline version (the cache-fingerprint epoch), and the Go
// toolchain.
func (s *API) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Status   string `json:"status"`
		Version  string `json:"version"`
		Revision string `json:"revision"`
		Pipeline string `json:"pipeline"`
		Go       string `json:"go"`
	}{
		Status:   "ok",
		Version:  s.build.ModuleVersion,
		Revision: s.build.Revision,
		Pipeline: seda.PipelineVersion,
		Go:       s.build.GoVersion,
	})
}

// handleReadyz is the readiness probe, split from /healthz liveness: a
// replica can be alive (healthz 200) yet unable to take on new work.
// It reports 503 while the server is draining after SIGTERM, and 503
// with a pressure-scaled Retry-After while every bounded compute slot
// is occupied — a routing tier that watches /readyz sees saturation
// before requests shed, instead of discovering it one 503 at a time.
// A saturated replica still serves cache hits and revalidations, so
// "not ready" steers new cold work away without taking the replica out.
func (s *API) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type readyJSON struct {
		Status   string `json:"status"`
		Inflight int    `json:"inflight"`
		Slots    int    `json:"slots"` // 0 = unbounded
	}
	st := s.cache.Stats()
	slots := s.cache.ComputeSlots()
	doc := readyJSON{Status: "ready", Inflight: st.Inflight, Slots: slots}
	switch {
	case s.draining.Load():
		doc.Status = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(doc) //nolint:errcheck
	case slots > 0 && st.Inflight >= slots:
		doc.Status = "saturated"
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(st.Inflight)))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(doc) //nolint:errcheck
	default:
		writeJSON(w, doc)
	}
}

// retryAfterSeconds turns queue pressure into backoff advice: the base
// grows with the number of in-flight evaluations (deeper queue, longer
// wait until a slot plausibly frees) and a uniform jitter of up to the
// base is added so a fleet of clients shed in the same instant —
// e.g. a router failing a whole replica's traffic over — does not
// retry in lockstep and re-saturate the capacity on the same tick.
// The jitter draws from the API's seedable source (see SeedJitter).
func (s *API) retryAfterSeconds(inflight int) int {
	base := 1 + inflight
	s.jitterMu.Lock()
	n := s.jitter.IntN(base + 1)
	s.jitterMu.Unlock()
	return base + n
}

// handleMetrics exposes the registry in the Prometheus text format.
// State owned outside the registry — the request/panic counters and
// the cache statistics — is mirrored in from exactly one Stats
// snapshot per scrape, so every seda_cache_* series in one scrape
// describes the same instant.
func (s *API) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.cache.Stats()
	m := s.metrics
	m.httpReqs.Set(s.reqs.Load())
	m.panics.Set(s.panics.Load() + st.Panics)
	m.shed.Set(st.Shed)
	m.hits.Set(st.Hits)
	m.diskHits.Set(st.DiskHits)
	m.coalesced.Set(st.Coalesced)
	m.misses.Set(st.Computes)
	m.errors.Set(st.Errors)
	m.diskErrors.Set(st.DiskReadErrors + st.DiskWriteErrors)
	m.entries.Set(float64(st.Entries))
	m.inflight.Set(float64(st.Inflight))
	m.runtime.Collect()
	w.Header().Set("Content-Type", obs.PromContentType)
	m.reg.WriteProm(w) //nolint:errcheck // client gone mid-stream
}

func (s *API) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type workloadJSON struct {
		Name   string `json:"name"`
		Full   string `json:"full"`
		Layers int    `json:"layers"`
		MACs   uint64 `json:"macs"`
	}
	all := model.All()
	out := make([]workloadJSON, len(all))
	for i, n := range all {
		out[i] = workloadJSON{Name: n.Name, Full: n.Full, Layers: len(n.Layers), MACs: n.TotalMACs()}
	}
	writeJSON(w, out)
}

func (s *API) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	type schemeJSON struct {
		Name                  string `json:"name"`
		Baseline              bool   `json:"baseline"`
		EncryptionGranularity string `json:"encryption_granularity,omitempty"`
		IntegrityGranularity  string `json:"integrity_granularity,omitempty"`
		OffChipMetadata       string `json:"off_chip_metadata,omitempty"`
		TilingAware           bool   `json:"tiling_aware"`
		EncryptionScalable    bool   `json:"encryption_scalable"`
	}
	schemes := seda.Schemes()
	out := make([]schemeJSON, len(schemes))
	for i, sc := range schemes {
		row := schemeJSON{Name: sc.Name(), Baseline: sc.Kind == memprot.Baseline}
		if !row.Baseline {
			f := sc.FeatureRow()
			row.EncryptionGranularity = f.EncryptionGranularity
			row.IntegrityGranularity = f.IntegrityGranularity
			row.OffChipMetadata = f.OffChipMetadata
			row.TilingAware = f.TilingAware
			row.EncryptionScalable = f.EncryptionScalable
		}
		out[i] = row
	}
	writeJSON(w, out)
}

// figures maps the paper's figure names to (NPU, metric).
var figures = map[string]struct {
	npu    string
	metric string // "traffic" (Fig. 5) or "perf" (Fig. 6)
}{
	"5a": {"server", "traffic"},
	"5b": {"edge", "traffic"},
	"6a": {"server", "perf"},
	"6b": {"edge", "perf"},
}

// handleSweep answers /v1/sweep?npu=server&fig=5a[&workloads=let,ncf].
//
//   - npu selects the platform (server or edge); it may be omitted when
//     fig implies it, and must agree with fig when both are given.
//   - fig selects one figure series (5a/5b: normalized traffic,
//     6a/6b: normalized performance). Without fig the full suite
//     (both metrics, all rows) of the named NPU is returned, JSON
//     only. At least one of npu and fig is required.
//   - workloads optionally restricts the sweep to a comma-separated
//     subset (case-insensitive); results for workloads already cached
//     are reused, only the rest evaluate.
//   - The body is CSV when the request asks for it (Accept: text/csv
//     or ?format=csv), JSON otherwise.
func (s *API) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()

	figName := q.Get("fig")
	npu, nets, err := ResolveSweep(figName, q.Get("npu"), q.Get("workloads"))
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	csvOut, err := wantCSV(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if csvOut && figName == "" {
		badRequest(w, "csv output needs a fig parameter (5a, 5b, 6a or 6b); the full-suite dump is JSON only")
		return
	}

	// The representation is fully determined by the config fingerprints
	// (pipeline version, NPU, schemes, topologies) plus the figure and
	// format, so a strong ETag falls out without evaluating anything. A
	// matching If-None-Match revalidates in microseconds: no compute
	// slot, no cache lookup, no pipeline.
	etag := sweepETag(npu, nets, figName, csvOut)
	if inmMatches(r.Header.Get("If-None-Match"), etag) {
		setValidators(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	if err := failpoint.Inject(r.Context(), FailpointSweep); err != nil {
		s.sweepError(w, r, err)
		return
	}
	suite, err := seda.RunSuiteCachedCtx(r.Context(), s.cache, npu, nets, s.opts)
	if err != nil {
		s.sweepError(w, r, err)
		return
	}

	setValidators(w, etag)
	switch {
	case figName == "":
		w.Header().Set("Content-Type", "application/json")
		suite.WriteJSON(w) //nolint:errcheck // client gone mid-stream
	case csvOut:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if figures[figName].metric == "traffic" {
			suite.WriteTrafficCSV(w) //nolint:errcheck
		} else {
			suite.WritePerfCSV(w) //nolint:errcheck
		}
	default:
		writeFigJSON(w, suite, figName)
	}
}

// ResolveSweep resolves the /v1/sweep selection parameters to a
// platform and workload set: fig implies the NPU (and must agree with
// an explicit npu), and workloads optionally restricts the suite. It
// is exported because the router derives its fingerprint-affinity key
// from the same resolution — both sides must agree on what a sweep
// request denotes, or affinity would split cache-identical requests
// across replicas.
func ResolveSweep(figName, npuName, workloads string) (seda.NPUConfig, []*model.Network, error) {
	if figName == "" && npuName == "" {
		return seda.NPUConfig{}, nil, errors.New("missing npu (server or edge) or fig (5a, 5b, 6a or 6b)")
	}
	if figName != "" {
		fig, ok := figures[figName]
		if !ok {
			return seda.NPUConfig{}, nil, fmt.Errorf("unknown fig %q (want 5a, 5b, 6a or 6b)", figName)
		}
		if npuName == "" {
			npuName = fig.npu
		} else if !strings.EqualFold(npuName, fig.npu) {
			return seda.NPUConfig{}, nil, fmt.Errorf("fig %s is the %s NPU, but npu=%q was requested", figName, fig.npu, npuName)
		}
	}
	npu, err := seda.NPUByName(npuName)
	if err != nil {
		return seda.NPUConfig{}, nil, err
	}
	nets, err := ParseWorkloads(workloads)
	if err != nil {
		return seda.NPUConfig{}, nil, err
	}
	return npu, nets, nil
}

// sweepError maps an evaluation failure to its HTTP shape:
//
//   - rescache.ErrSaturated → 503 + pressure-scaled Retry-After: the
//     bounded compute capacity is fully occupied by other evaluations
//     (hits and coalesced identical requests never consume a slot).
//     Shed instead of queueing; whatever this sweep did manage to
//     evaluate is cached, so a retry makes progress. The Retry-After
//     value grows with the in-flight queue depth and carries jitter,
//     so a fleet of shed clients does not retry in lockstep.
//   - rescache.ErrCacheOnly → 503: this instance serves only already-
//     cached results (the router's degraded tier) and the result is
//     not in the shared cache.
//   - context.DeadlineExceeded → 504: the request deadline
//     (-request-timeout) or a compute deadline expired mid-evaluation.
//   - context.Canceled → nothing: the client disconnected (r.Context()
//     cancelled), so there is no one to answer; the evaluation has
//     already detached and freed its slot.
//   - anything else → 500.
func (s *API) sweepError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, rescache.ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(s.cache.Stats().Inflight)))
		http.Error(w, "evaluation capacity saturated, retry shortly", http.StatusServiceUnavailable)
	case errors.Is(err, rescache.ErrCacheOnly):
		http.Error(w, "result not in the shared cache (cache-only instance)", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "evaluation deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client gone; no response to write.
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// setValidators stamps the conditional-request headers on a sweep
// response: the strong ETag plus no-cache, which lets any HTTP cache
// store the body but forces an If-None-Match revalidation per use —
// correct even across server rebuilds, because a pipeline change moves
// the fingerprint and with it the tag.
func setValidators(w http.ResponseWriter, etag string) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, no-cache")
}

// writeFigJSON emits one figure's series: per-workload values aligned
// with the schemes array, plus the average row.
func writeFigJSON(w http.ResponseWriter, suite *seda.SuiteResult, figName string) {
	metric := figures[figName].metric
	value := func(r seda.RunResult) float64 { return r.NormTraffic }
	avg := suite.AvgNormTraffic
	if metric == "perf" {
		value = func(r seda.RunResult) float64 { return r.NormPerf }
		avg = suite.AvgNormPerf
	}

	schemes := seda.Schemes()
	type rowJSON struct {
		Workload string    `json:"workload"`
		Values   []float64 `json:"values"`
	}
	doc := struct {
		NPU             string    `json:"npu"`
		Fig             string    `json:"fig"`
		Metric          string    `json:"metric"`
		PipelineVersion string    `json:"pipeline_version"`
		Schemes         []string  `json:"schemes"`
		Rows            []rowJSON `json:"rows"`
		Avg             []float64 `json:"avg"`
	}{
		NPU:             suite.NPU.Name,
		Fig:             figName,
		Metric:          metric,
		PipelineVersion: seda.PipelineVersion,
		Avg:             make([]float64, len(schemes)),
	}
	for _, sc := range schemes {
		doc.Schemes = append(doc.Schemes, sc.Name())
	}
	for i, sc := range schemes {
		doc.Avg[i] = avg(sc)
	}
	for _, name := range suite.Workloads() {
		row := rowJSON{Workload: name, Values: make([]float64, len(schemes))}
		for i, sc := range schemes {
			rr, err := seda.SchemeRow(suite.Rows[name], sc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			row.Values[i] = value(rr)
		}
		doc.Rows = append(doc.Rows, row)
	}
	writeJSON(w, doc)
}

// sweepETag derives the strong validator for one sweep representation:
// a hash over the per-workload config fingerprints (each already a
// canonical SHA-256 of pipeline version, NPU config, scheme set and
// topology — see seda.ConfigFingerprint) plus the figure selection and
// body format. Equal tags imply byte-identical bodies; any input that
// could move a byte changes the tag.
func sweepETag(npu seda.NPUConfig, nets []*model.Network, figName string, csvOut bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep|fig=%s|csv=%v\n", figName, csvOut)
	for _, n := range nets {
		fmt.Fprintln(h, seda.ConfigFingerprint(npu, n))
	}
	return `"` + hex.EncodeToString(h.Sum(nil)[:16]) + `"`
}

// SweepAffinityKey is the cluster-routing affinity key for a resolved
// sweep: a hash over the per-workload config fingerprints only —
// deliberately excluding the figure and body format, which are
// different views over the same cache entries — so every
// representation of one (NPU, workloads) configuration rendezvous-
// hashes onto the same replica and finds its rescache warm.
func SweepAffinityKey(npu seda.NPUConfig, nets []*model.Network) string {
	h := sha256.New()
	fmt.Fprintln(h, "sweep-affinity")
	for _, n := range nets {
		fmt.Fprintln(h, seda.ConfigFingerprint(npu, n))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// inmMatches reports whether an If-None-Match header matches the
// entity tag: a wildcard, or any listed tag equal to ours (weak
// validators compare equal to their strong form for GET revalidation).
func inmMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// wantCSV implements the format negotiation: an explicit ?format=
// wins, then the Accept header; JSON is the default and wins q-value
// ties, so only a client that strictly prefers text/csv gets CSV.
func wantCSV(r *http.Request) (bool, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "csv":
		return true, nil
	case "json":
		return false, nil
	case "":
	default:
		return false, fmt.Errorf("unknown format %q (want json or csv)", f)
	}
	accept := r.Header.Get("Accept")
	return acceptQuality(accept, "text/csv") > acceptQuality(accept, "application/json"), nil
}

// acceptQuality returns the q-value an Accept header assigns to a
// media type; the most specific matching range wins (exact beats
// type/* beats */*). An empty header accepts everything at q=1; no
// matching range means q=0.
func acceptQuality(header, mediaType string) float64 {
	if strings.TrimSpace(header) == "" {
		return 1
	}
	mainType := strings.SplitN(mediaType, "/", 2)[0]
	bestSpec, bestQ := -1, 0.0
	for _, part := range strings.Split(header, ",") {
		fields := strings.Split(part, ";")
		var spec int
		switch strings.ToLower(strings.TrimSpace(fields[0])) {
		case mediaType:
			spec = 2
		case mainType + "/*":
			spec = 1
		case "*/*":
			spec = 0
		default:
			continue
		}
		q := 1.0
		for _, param := range fields[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(param), "q="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					q = f
				}
			}
		}
		if spec > bestSpec {
			bestSpec, bestQ = spec, q
		}
	}
	if bestSpec < 0 {
		return 0
	}
	return bestQ
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-stream
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), http.StatusBadRequest)
}
