package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/rescache"
	"repro/seda"
)

// Serving-stack chaos tests: each armed failpoint must produce a
// well-formed error status, leak no compute slot, and leave the server
// alive for the next request. Runs under `go test -race -short`.

func waitStatsInflightZero(t *testing.T, cache *rescache.Cache) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compute slot leaked: %+v", cache.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosHandlerPanicRecovered: a panic inside the sweep handler
// answers 500, increments seda_panics_total, and the server keeps
// serving.
func TestChaosHandlerPanicRecovered(t *testing.T) {
	defer failpoint.Reset()
	h, cache := testHandler(t)
	if err := failpoint.Enable(FailpointSweep, "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked request: status %d, want 500", rec.Code)
	}
	waitStatsInflightZero(t, cache)

	// The server survives: the fault disarmed, the same request works,
	// and the panic shows on /metrics.
	failpoint.Reset()
	if rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil); rec.Code != http.StatusOK {
		t.Fatalf("post-panic request: status %d", rec.Code)
	}
	if got := metricValue(t, scrapeMetrics(t, h), "seda_panics_total"); got != 1 {
		t.Fatalf("seda_panics_total = %v, want 1 (the recovered panic)", got)
	}
}

// TestChaosComputePanicAnswers500: a panic inside the cache compute
// (not the handler goroutine) is recovered by rescache, surfaces as a
// 500, and is counted in seda_panics_total.
func TestChaosComputePanicAnswers500(t *testing.T) {
	defer failpoint.Reset()
	h, cache := testHandler(t)
	if err := failpoint.Enable(rescache.FailpointCompute, "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	waitStatsInflightZero(t, cache)
	failpoint.Reset()
	if rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil); rec.Code != http.StatusOK {
		t.Fatalf("server did not recover: status %d", rec.Code)
	}
	if got := metricValue(t, scrapeMetrics(t, h), "seda_panics_total"); got != 1 {
		t.Fatalf("seda_panics_total = %v, want 1 (the compute panic)", got)
	}
}

// TestChaosInjectedErrorAnswers500: a plain injected fault maps to a
// 500 with the error text, not a hang or a crash.
func TestChaosInjectedErrorAnswers500(t *testing.T) {
	defer failpoint.Reset()
	h, cache := testHandler(t)
	if err := failpoint.Enable(rescache.FailpointCompute, "error(injected disk gremlin)"); err != nil {
		t.Fatal(err)
	}
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil)
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "gremlin") {
		t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
	}
	waitStatsInflightZero(t, cache)
}

// TestChaosRequestTimeout504: a slow compute against a short
// -request-timeout answers 504, and the abandoned evaluation frees its
// slot (the sleep failpoint honors the compute context, which cancels
// once the last waiter departs).
func TestChaosRequestTimeout504(t *testing.T) {
	defer failpoint.Reset()
	cache, err := rescache.New(rescache.Options{MaxInflightComputes: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := NewAPI(cache, seda.DefaultSuiteOptions(), 30*time.Millisecond).Handler()
	if err := failpoint.Enable(rescache.FailpointCompute, "sleep(30s)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("504 did not arrive promptly")
	}
	waitStatsInflightZero(t, cache)

	// The slot is free again: disarm and the same sweep computes. The
	// recovery request goes through an untimed handler on the same cache
	// so a legitimate slow evaluation doesn't trip the 30ms limit.
	failpoint.Reset()
	h2 := NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler()
	if rec := doReq(t, h2, "/v1/sweep?fig=5b&workloads=ncf", nil); rec.Code != http.StatusOK {
		t.Fatalf("slot not recovered: status %d", rec.Code)
	}
}

// TestChaosClientDisconnectFreesSlot: a client that vanishes
// mid-evaluation (cancelled request context over a real TCP server)
// detaches the request; once no waiter remains the compute cancels and
// the slot frees.
func TestChaosClientDisconnectFreesSlot(t *testing.T) {
	defer failpoint.Reset()
	cache, err := rescache.New(rescache.Options{MaxInflightComputes: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler())
	defer srv.Close()
	if err := failpoint.Enable(rescache.FailpointCompute, "sleep(30s)"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/sweep?fig=5b&workloads=ncf", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Let the evaluation take the slot, then kill the client.
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("evaluation never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want Canceled", err)
	}
	waitStatsInflightZero(t, cache)

	failpoint.Reset()
	resp, err := http.Get(srv.URL + "/v1/sweep?fig=5b&workloads=ncf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slot not recovered after disconnect: status %d", resp.StatusCode)
	}
}

// TestChaosDiskFaultsStillServe: with the disk layer failing on both
// reads and writes, the server still answers 200 from recomputation,
// and the failures are visible on /metrics.
func TestChaosDiskFaultsStillServe(t *testing.T) {
	defer failpoint.Reset()
	cache, err := rescache.New(rescache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	h := NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler()
	if err := failpoint.Enable(rescache.FailpointDiskGet, "error"); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(rescache.FailpointDiskPut, "error"); err != nil {
		t.Fatal(err)
	}
	if rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil); rec.Code != http.StatusOK {
		t.Fatalf("sweep with dead disk: status %d", rec.Code)
	}
	if got := metricValue(t, scrapeMetrics(t, h), "seda_cache_disk_errors_total"); got == 0 {
		t.Fatal("disk faults not counted in seda_cache_disk_errors_total")
	}
}
