package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/explore"
	"repro/internal/failpoint"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/seda"
)

// FailpointExplore fires at the top of the explore handler with the
// request context, after parameter validation and the ETag
// short-circuit — the last point before the exploration engine. See
// internal/failpoint.
const FailpointExplore = "serve.explore"

// DefaultMaxExplorePoints bounds /v1/explore grids when -max-explore-points
// is not given. Tighter than the engine's own guard: a service request
// should stay interactive, and the confirmation pass behind a large
// grid competes for the same bounded compute slots as /v1/sweep.
const DefaultMaxExplorePoints = 2048

// handleExplore answers
//
//		/v1/explore?spec=rows=16:64:2x,channels=2|4[&base=edge][&workloads=let,ncf]
//		           [&scheme=SeDA][&margin=0.1][&format=csv]
//
//	  - spec (required) is the grid specification, axes comma-separated:
//	    rows=16:256:2x,channels=2|4. See internal/explore.ParseSpec.
//	  - base names the platform preset the grid perturbs (default edge).
//	  - workloads optionally restricts the objective to a comma-separated
//	    subset (default: the full benchmark suite).
//	  - scheme selects the protection scheme explored under (default SeDA).
//	  - margin overrides the surrogate's pruning margin, 0 < m < 1
//	    (default: derived from the calibration error).
//	  - The body is CSV when the request asks for it (Accept: text/csv or
//	    ?format=csv), JSON otherwise.
func (s *API) handleExplore(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()

	rawSpec := q.Get("spec")
	if rawSpec == "" {
		badRequest(w, "missing spec (e.g. spec=rows=16:256:2x,channels=2|4)")
		return
	}
	spec, err := explore.ParseSpec(rawSpec)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	maxPoints := s.MaxExplore
	if maxPoints <= 0 {
		maxPoints = DefaultMaxExplorePoints
	}
	// Enforce the cap before the If-None-Match short-circuit: the cap is
	// operator state the ETag does not bind, so a client revalidating a
	// grid the server no longer accepts must see the 400, not a 304.
	if n := spec.NumPoints(); n > maxPoints {
		badRequest(w, "grid has %d points, limit %d (narrow the spec or raise -max-explore-points)", n, maxPoints)
		return
	}

	baseName := q.Get("base")
	if baseName == "" {
		baseName = "edge"
	}
	base, err := seda.NPUByName(baseName)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	scheme := memprot.SchemeSeDA
	if name := q.Get("scheme"); name != "" {
		if scheme, err = seda.SchemeByName(name); err != nil {
			badRequest(w, "%v", err)
			return
		}
	}

	nets, err := ParseWorkloads(q.Get("workloads"))
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	var margin float64
	if raw := q.Get("margin"); raw != "" {
		margin, err = strconv.ParseFloat(raw, 64)
		if err != nil || margin <= 0 || margin >= 1 {
			badRequest(w, "margin %q must be a number in (0, 1)", raw)
			return
		}
	}

	csvOut, err := wantCSV(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	// Like /v1/sweep, the representation is fully determined by the
	// request inputs plus the pipeline and surrogate versions (the
	// engine is deterministic end to end), so a strong ETag needs no
	// evaluation and a matching If-None-Match revalidates for free.
	etag := exploreETag(spec, base, nets, scheme, margin, csvOut)
	if inmMatches(r.Header.Get("If-None-Match"), etag) {
		setValidators(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	if err := failpoint.Inject(r.Context(), FailpointExplore); err != nil {
		s.sweepError(w, r, err)
		return
	}
	res, err := explore.Run(r.Context(), spec, base, explore.Options{
		Workloads: nets,
		Scheme:    scheme,
		Cache:     s.cache,
		Suite:     s.opts,
		Margin:    margin,
		MaxPoints: maxPoints,
	})
	if err != nil {
		if errors.Is(err, explore.ErrUsage) {
			badRequest(w, "%v", err)
			return
		}
		s.sweepError(w, r, err)
		return
	}

	setValidators(w, etag)
	if csvOut {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		res.WriteCSV(w) //nolint:errcheck // client gone mid-stream
		return
	}
	w.Header().Set("Content-Type", "application/json")
	res.WriteJSON(w) //nolint:errcheck // client gone mid-stream
}

// exploreETag derives the strong validator for one exploration
// representation: a hash over the canonical spec, the per-workload
// config fingerprints of the base platform (which already bind the
// pipeline version, base NPU, scheme set and topologies), the explored
// scheme, the surrogate version, the margin and the body format.
func exploreETag(spec *explore.Spec, base seda.NPUConfig, nets []*model.Network, scheme memprot.Scheme, margin float64, csvOut bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "explore|surrogate=%s|spec=%s|scheme=%s|margin=%s|csv=%v\n",
		explore.SurrogateVersion, spec.Canonical(), scheme.Name(),
		strconv.FormatFloat(margin, 'x', -1, 64), csvOut)
	for _, n := range nets {
		fmt.Fprintln(h, seda.ConfigFingerprint(base, n))
	}
	return `"` + hex.EncodeToString(h.Sum(nil)[:16]) + `"`
}

// ExploreAffinityKey is the cluster-routing affinity key for an
// exploration: like the ETag it binds the canonical spec, base
// fingerprints, scheme and margin, but not the body format — CSV and
// JSON views of one exploration share a replica's warm confirmations.
func ExploreAffinityKey(spec *explore.Spec, base seda.NPUConfig, nets []*model.Network, scheme memprot.Scheme, margin float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "explore-affinity|spec=%s|scheme=%s|margin=%s\n",
		spec.Canonical(), scheme.Name(), strconv.FormatFloat(margin, 'x', -1, 64))
	for _, n := range nets {
		fmt.Fprintln(h, seda.ConfigFingerprint(base, n))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ParseWorkloads resolves a comma-separated workload list against the
// benchmark suite (case handled by model.ByName); empty selects the
// full suite.
func ParseWorkloads(raw string) ([]*model.Network, error) {
	if raw == "" {
		return model.All(), nil
	}
	var nets []*model.Network
	for _, name := range strings.Split(raw, ",") {
		name = strings.TrimSpace(name)
		n := model.ByName(name)
		if n == nil {
			return nil, fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(model.Names(), ", "))
		}
		nets = append(nets, n)
	}
	return nets, nil
}
