package serve

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/seda"
)

// serverMetrics is the server's Prometheus registry. Two kinds of
// series live here:
//
//   - Native instruments (the duration histograms) observed on the
//     request path.
//   - Mirror counters and gauges for state owned elsewhere — the
//     request/panic counters on server and the cache's Stats. Those are
//     Set from ONE snapshot per scrape in handleMetrics, so a scrape is
//     internally consistent (hits+misses+coalesced accounting from the
//     same instant) and the scrape path takes the cache lock exactly
//     once.
//
// Series names predate this registry (the CI smoke job and dashboards
// grep them), so they are frozen: seda_cache_* and
// seda_http_requests_total keep their PR 5 spellings.
type serverMetrics struct {
	reg *obs.Registry

	reqDur     *obs.HistogramVec // by route pattern
	stageDur   *obs.HistogramVec // by pipeline stage (fed by Tracer.OnEnd)
	computeDur *obs.Histogram    // rescache compute executions only

	httpReqs   *obs.Counter
	panics     *obs.Counter
	shed       *obs.Counter
	hits       *obs.Counter
	diskHits   *obs.Counter
	coalesced  *obs.Counter
	misses     *obs.Counter
	errors     *obs.Counter
	diskErrors *obs.Counter
	entries    *obs.Gauge
	inflight   *obs.Gauge

	runtime *obs.RuntimeGauges
}

func newServerMetrics(build obs.Build) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		reqDur: r.HistogramVec("seda_request_duration_seconds",
			"HTTP request latency by route", "route", obs.DurationBuckets),
		stageDur: r.HistogramVec("seda_stage_duration_seconds",
			"pipeline stage latency by stage (span durations)", "stage", obs.DurationBuckets),
		computeDur: r.Histogram("seda_compute_duration_seconds",
			"result-cache compute execution latency (cold pipeline evaluations)", obs.DurationBuckets),

		httpReqs: r.Counter("seda_http_requests_total",
			"HTTP requests received"),
		panics: r.Counter("seda_panics_total",
			"panics recovered (handler middleware + cache computations)"),
		shed: r.Counter("seda_cache_shed_total",
			"sweep evaluations shed at the bounded compute capacity"),
		hits: r.Counter("seda_cache_hits_total",
			"sweep lookups served from the in-memory cache"),
		diskHits: r.Counter("seda_cache_disk_hits_total",
			"sweep lookups served from the disk cache"),
		coalesced: r.Counter("seda_cache_coalesced_total",
			"sweep lookups coalesced onto an in-flight evaluation"),
		misses: r.Counter("seda_cache_misses_total",
			"sweep lookups that ran a fresh pipeline evaluation"),
		errors: r.Counter("seda_cache_errors_total",
			"pipeline evaluations that failed"),
		diskErrors: r.Counter("seda_cache_disk_errors_total",
			"disk cache IO failures and integrity-check rejections (reads + writes)"),
		entries: r.Gauge("seda_cache_entries",
			"entries resident in the in-memory cache"),
		inflight: r.Gauge("seda_cache_inflight",
			"pipeline evaluations currently executing"),

		runtime: obs.NewRuntimeGauges(r),
	}
	r.Gauge("seda_build_info",
		"build identity; always 1, the labels carry the information",
		obs.Label{Name: "go_version", Value: build.GoVersion},
		obs.Label{Name: "module_version", Value: build.ModuleVersion},
		obs.Label{Name: "revision", Value: build.Revision},
		obs.Label{Name: "pipeline", Value: seda.PipelineVersion},
	).Set(1)
	return m
}

// observeStage is the Tracer.OnEnd hook: every span that ends during a
// request lands in the per-stage histogram, and compute spans (cold
// pipeline evaluations inside the result cache) additionally feed the
// dedicated compute histogram the capacity alerts watch.
func (s *API) observeStage(name string, d time.Duration) {
	s.metrics.stageDur.With(name).Observe(d.Seconds())
	if name == obs.StageCompute {
		s.metrics.computeDur.Observe(d.Seconds())
	}
}

// newRequestID returns the caller's X-Request-Id when present (so IDs
// correlate across services) or a fresh 16-hex-digit one.
func newRequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 128 {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing a request over; a
		// constant ID still tags the logs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// respWriter observes the status and size of a response on its way
// out, and in timing mode (?debug=timing) holds the body in memory so
// the X-Seda-Timing trailer-like header can be stamped after the
// handler finishes — trace data isn't known until then, and headers
// cannot follow the body on the wire.
type respWriter struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
	buf         *bytes.Buffer // non-nil only in timing mode
}

func (rw *respWriter) WriteHeader(code int) {
	if rw.wroteHeader {
		return
	}
	rw.wroteHeader = true
	rw.status = code
	if rw.buf == nil {
		rw.ResponseWriter.WriteHeader(code)
	}
}

func (rw *respWriter) Write(p []byte) (int, error) {
	if !rw.wroteHeader {
		rw.WriteHeader(http.StatusOK)
	}
	rw.bytes += len(p)
	if rw.buf != nil {
		return rw.buf.Write(p)
	}
	return rw.ResponseWriter.Write(p)
}

// flush releases a buffered (timing-mode) response to the client.
func (rw *respWriter) flush() {
	if rw.buf == nil {
		return
	}
	if !rw.wroteHeader {
		rw.status = http.StatusOK
	}
	rw.ResponseWriter.WriteHeader(rw.status)
	rw.ResponseWriter.Write(rw.buf.Bytes()) //nolint:errcheck // client gone mid-stream
}

// wantTiming reports whether the request opted into the span-tree
// debug header.
func wantTiming(r *http.Request) bool {
	return r.URL.Query().Get("debug") == "timing"
}
