package serve

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/memprot"
	"repro/seda"
)

// TestExploreEndpoint walks the happy path on a tiny grid: JSON body
// with a non-empty confirmed frontier, cache-backed confirmations, and
// a second request revalidating via If-None-Match.
func TestExploreEndpoint(t *testing.T) {
	h, cache := testHandler(t)
	url := "/v1/explore?spec=rows%3D16%7C32,channels%3D2%7C4&workloads=let"

	rec := doReq(t, h, url, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		PipelineVersion  string `json:"pipeline_version"`
		SurrogateVersion string `json:"surrogate_version"`
		Spec             string `json:"spec"`
		Base             string `json:"base"`
		Scheme           string `json:"scheme"`
		PointsTotal      int    `json:"points_total"`
		PointsConfirmed  int    `json:"points_confirmed"`
		Frontier         []struct {
			Name       string `json:"name"`
			Confirmed  bool   `json:"confirmed"`
			ExecCycles uint64 `json:"exec_cycles"`
		} `json:"frontier"`
		Points []struct {
			Name string `json:"name"`
		} `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.PointsTotal != 4 || len(doc.Points) != 4 {
		t.Fatalf("points_total %d / points %d, want 4", doc.PointsTotal, len(doc.Points))
	}
	if doc.Base != "edge" || doc.Scheme != "SeDA" || doc.SurrogateVersion == "" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range doc.Frontier {
		if !p.Confirmed || p.ExecCycles == 0 {
			t.Fatalf("frontier point %s unconfirmed", p.Name)
		}
	}
	if doc.PointsConfirmed == 0 || cache.Stats().Computes == 0 {
		t.Fatal("no cycle-accurate confirmations ran")
	}

	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	rec = doReq(t, h, url, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", rec.Code)
	}

	// A different spec (or format) must move the tag.
	rec = doReq(t, h, "/v1/explore?spec=rows%3D16%7C32,channels%3D2&workloads=let", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Fatalf("different spec: status %d, want 200", rec.Code)
	}
}

func TestExploreEndpointCSV(t *testing.T) {
	h, _ := testHandler(t)
	rec := doReq(t, h, "/v1/explore?spec=channels%3D2%7C4&workloads=let&format=csv", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("content-type %q", ct)
	}
	recs, err := csv.NewReader(bytes.NewReader(rec.Body.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "name" { // header + 2 points
		t.Fatalf("csv shape %v", recs)
	}
}

func TestExploreEndpointBadRequests(t *testing.T) {
	h, _ := testHandler(t)
	cases := []struct {
		url  string
		want string
	}{
		{"/v1/explore", "missing spec"},
		{"/v1/explore?spec=warp%3D1%7C2", "unknown axis"},
		{"/v1/explore?spec=channels%3D2&base=tpu9", "unknown npu"},
		{"/v1/explore?spec=channels%3D2&scheme=ROT13", "unknown scheme"},
		{"/v1/explore?spec=channels%3D2&workloads=nope", "unknown workload"},
		{"/v1/explore?spec=channels%3D2&margin=1.5", "margin"},
		{"/v1/explore?spec=channels%3D2&margin=x", "margin"},
		{"/v1/explore?spec=channels%3D2&workloads=let&format=tsv", "unknown format"},
	}
	for _, tc := range cases {
		rec := doReq(t, h, tc.url, nil)
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("%s: got %d %q, want 400 containing %q", tc.url, rec.Code, rec.Body.String(), tc.want)
		}
	}
}

// TestExploreEndpointGridCap: the server-side grid cap answers 400,
// not a long evaluation — even when the client presents the matching
// ETag from before an operator lowered the cap (the cap check runs
// ahead of the If-None-Match short-circuit, so no 304 can revive a
// grid the server no longer accepts).
func TestExploreEndpointGridCap(t *testing.T) {
	_, cache := testHandler(t)
	sv := NewAPI(cache, seda.DefaultSuiteOptions(), 0)
	sv.MaxExplore = 2
	rec := doReq(t, sv.Handler(), "/v1/explore?spec=channels%3D1%7C2%7C4&workloads=let", nil)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "limit 2") {
		t.Fatalf("got %d %q, want 400 with grid-size rejection", rec.Code, rec.Body.String())
	}

	// The ETag a larger-cap server would have issued for this grid.
	spec, err := explore.ParseSpec("channels=1|2|4")
	if err != nil {
		t.Fatal(err)
	}
	nets, err := ParseWorkloads("let")
	if err != nil {
		t.Fatal(err)
	}
	base, err := seda.NPUByName("edge")
	if err != nil {
		t.Fatal(err)
	}
	etag := exploreETag(spec, base, nets, memprot.SchemeSeDA, 0, false)
	rec = doReq(t, sv.Handler(), "/v1/explore?spec=channels%3D1%7C2%7C4&workloads=let",
		map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("revalidation under lowered cap: got %d, want 400", rec.Code)
	}
}
