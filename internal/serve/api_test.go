package serve

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/seda"
)

// testHandler builds a server with a fresh in-memory cache. Requests
// in tests restrict workloads to the millisecond-scale ones so the
// whole file runs comfortably under `go test -race -short`.
func testHandler(t *testing.T) (http.Handler, *rescache.Cache) {
	t.Helper()
	cache, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler(), cache
}

func doReq(t *testing.T, h http.Handler, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	h, _ := testHandler(t)
	rec := doReq(t, h, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	var out struct {
		Status   string `json:"status"`
		Pipeline string `json:"pipeline"`
		Go       string `json:"go"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, rec.Body.String())
	}
	if out.Status != "ok" || out.Pipeline != seda.PipelineVersion || out.Go == "" {
		t.Fatalf("healthz build info: %+v", out)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	h, _ := testHandler(t)
	rec := doReq(t, h, "/v1/workloads", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out []struct {
		Name   string `json:"name"`
		Full   string `json:"full"`
		Layers int    `json:"layers"`
		MACs   uint64 `json:"macs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 13 || out[0].Name != "let" || out[0].Layers == 0 || out[0].MACs == 0 {
		t.Fatalf("workloads = %+v", out)
	}
}

func TestSchemesEndpoint(t *testing.T) {
	h, _ := testHandler(t)
	rec := doReq(t, h, "/v1/schemes", nil)
	var out []struct {
		Name     string `json:"name"`
		Baseline bool   `json:"baseline"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(seda.Schemes()) {
		t.Fatalf("schemes = %d, want %d", len(out), len(seda.Schemes()))
	}
	if !out[len(out)-1].Baseline {
		t.Fatal("last scheme should be the baseline")
	}
}

// All four figures answer in both JSON and CSV — the acceptance
// criterion of the serving layer.
func TestSweepAllFigsBothFormats(t *testing.T) {
	h, _ := testHandler(t)
	for _, fig := range []string{"5a", "5b", "6a", "6b"} {
		url := "/v1/sweep?fig=" + fig + "&workloads=let,ncf"

		rec := doReq(t, h, url, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("fig %s json: status %d: %s", fig, rec.Code, rec.Body.String())
		}
		var doc struct {
			NPU     string   `json:"npu"`
			Fig     string   `json:"fig"`
			Metric  string   `json:"metric"`
			Schemes []string `json:"schemes"`
			Rows    []struct {
				Workload string    `json:"workload"`
				Values   []float64 `json:"values"`
			} `json:"rows"`
			Avg []float64 `json:"avg"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		wantNPU := map[byte]string{'a': "server", 'b': "edge"}[fig[1]]
		wantMetric := map[byte]string{'5': "traffic", '6': "perf"}[fig[0]]
		if doc.NPU != wantNPU || doc.Metric != wantMetric || doc.Fig != fig {
			t.Fatalf("fig %s: header %+v", fig, doc)
		}
		if len(doc.Rows) != 2 || len(doc.Rows[0].Values) != len(seda.Schemes()) || len(doc.Avg) != len(seda.Schemes()) {
			t.Fatalf("fig %s: malformed rows %+v", fig, doc)
		}

		rec = doReq(t, h, url, map[string]string{"Accept": "text/csv"})
		if rec.Code != http.StatusOK {
			t.Fatalf("fig %s csv: status %d", fig, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Fatalf("fig %s csv: content-type %q", fig, ct)
		}
		recs, err := csv.NewReader(bytes.NewReader(rec.Body.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("fig %s: body not CSV: %v", fig, err)
		}
		if len(recs) != 4 || recs[0][0] != "workload" || recs[3][0] != "avg" {
			t.Fatalf("fig %s: csv shape %v", fig, recs)
		}
	}
}

func TestSweepFullSuiteJSON(t *testing.T) {
	h, _ := testHandler(t)
	rec := doReq(t, h, "/v1/sweep?npu=edge&workloads=let", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		NPU       string   `json:"npu"`
		Workloads []string `json:"workloads"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.NPU != "edge" || len(doc.Workloads) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestSweepBadParams(t *testing.T) {
	h, _ := testHandler(t)
	for _, tc := range []struct {
		url  string
		want string
	}{
		{"/v1/sweep", "missing npu"},
		{"/v1/sweep?fig=7c", "unknown fig"},
		{"/v1/sweep?npu=tpu9", "unknown npu"},
		{"/v1/sweep?fig=5a&npu=edge", "fig 5a is the server NPU"},
		{"/v1/sweep?fig=5b&workloads=nope", "unknown workload"},
		{"/v1/sweep?fig=5b&workloads=let&format=xml", "unknown format"},
		{"/v1/sweep?npu=edge&workloads=let&format=csv", "needs a fig"},
	} {
		rec := doReq(t, h, tc.url, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.url, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("%s: body %q, want %q", tc.url, rec.Body.String(), tc.want)
		}
	}
	// Unknown-workload errors must list the valid names.
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=nope", nil)
	if !strings.Contains(rec.Body.String(), "let") || !strings.Contains(rec.Body.String(), "yolo") {
		t.Errorf("workload error does not list known names: %q", rec.Body.String())
	}
}

func TestSweepMethodNotAllowed(t *testing.T) {
	h, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep?fig=5b", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

// A cached response must be byte-identical to the fresh one, for every
// format.
func TestSweepCachedResponseByteIdentical(t *testing.T) {
	h, cache := testHandler(t)
	for _, url := range []string{
		"/v1/sweep?fig=5b&workloads=let,ncf",
		"/v1/sweep?fig=6b&workloads=let,ncf&format=csv",
		"/v1/sweep?npu=edge&workloads=let,ncf",
	} {
		fresh := doReq(t, h, url, nil)
		cached := doReq(t, h, url, nil)
		if fresh.Code != http.StatusOK || cached.Code != http.StatusOK {
			t.Fatalf("%s: status %d/%d", url, fresh.Code, cached.Code)
		}
		if !bytes.Equal(fresh.Body.Bytes(), cached.Body.Bytes()) {
			t.Fatalf("%s: cached response differs from fresh", url)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("repeat requests never hit the cache: %+v", st)
	}
}

// N identical concurrent sweep requests perform exactly one pipeline
// evaluation per workload and return identical bodies. Runs under
// `go test -race -short`.
func TestSweepConcurrentSingleflight(t *testing.T) {
	h, cache := testHandler(t)
	const clients = 8
	url := "/v1/sweep?fig=5b&workloads=let"

	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doReq(t, h, url, nil)
			if rec.Code == http.StatusOK {
				bodies[i] = rec.Body.Bytes()
			}
		}(i)
	}
	wg.Wait()

	for i, b := range bodies {
		if b == nil {
			t.Fatalf("client %d failed", i)
		}
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("client %d body differs", i)
		}
	}
	if st := cache.Stats(); st.Computes != 1 {
		t.Fatalf("%d identical concurrent requests ran %d evaluations, want 1 (stats %+v)",
			clients, st.Computes, st)
	}
}

// scrapeMetrics fetches /metrics and runs the body through the strict
// exposition parser plus the naming linter, so every test that touches
// the endpoint also proves the output is well-formed — a substring
// match can't tell a dangling HELP line from a real series.
func scrapeMetrics(t *testing.T, h http.Handler) map[string]*obs.PromFamily {
	t.Helper()
	rec := doReq(t, h, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	fams, err := obs.ParseProm(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("metrics body does not parse: %v\n%s", err, rec.Body.String())
	}
	if problems := obs.LintProm(fams); len(problems) > 0 {
		t.Fatalf("metrics lint: %v", problems)
	}
	return fams
}

// metricValue asserts the family exists and returns its unlabeled
// sample's value.
func metricValue(t *testing.T, fams map[string]*obs.PromFamily, name string) float64 {
	t.Helper()
	fam, ok := fams[name]
	if !ok {
		t.Fatalf("metrics missing family %s", name)
	}
	v, err := fam.Value(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMetricsEndpoint(t *testing.T) {
	h, _ := testHandler(t)
	doReq(t, h, "/v1/sweep?fig=5b&workloads=let", nil) // miss
	doReq(t, h, "/v1/sweep?fig=5b&workloads=let", nil) // hit
	fams := scrapeMetrics(t, h)
	for name, want := range map[string]float64{
		"seda_http_requests_total": 3,
		"seda_cache_misses_total":  1,
		"seda_cache_hits_total":    1,
		"seda_cache_entries":       1,
		"seda_cache_inflight":      0,
		"seda_cache_shed_total":    0,
		"seda_panics_total":        0,
		"seda_cache_errors_total":  0,
	} {
		if got := metricValue(t, fams, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}

	// Build identity rides along as a constant-1 gauge whose labels
	// carry the information.
	bi, ok := fams["seda_build_info"]
	if !ok {
		t.Fatal("metrics missing seda_build_info")
	}
	if len(bi.Samples) != 1 {
		t.Fatalf("seda_build_info: want 1 sample, got %+v", bi.Samples)
	}
	if s := bi.Samples[0]; s.Value != 1 || s.Labels["pipeline"] != seda.PipelineVersion ||
		s.Labels["go_version"] == "" || s.Labels["revision"] == "" {
		t.Fatalf("seda_build_info: %+v", bi.Samples[0])
	}

	// The two sweeps and the scrape itself land in the request
	// histogram under their route patterns; the cold sweep also runs
	// pipeline stages and a cache compute.
	reqs, ok := fams["seda_request_duration_seconds"]
	if !ok {
		t.Fatal("metrics missing seda_request_duration_seconds")
	}
	if n, err := reqs.HistCount(map[string]string{"route": "/v1/sweep"}); err != nil || n != 2 {
		t.Fatalf("request histogram route=/v1/sweep count %v err %v, want 2", n, err)
	}
	stages, ok := fams["seda_stage_duration_seconds"]
	if !ok {
		t.Fatal("metrics missing seda_stage_duration_seconds")
	}
	for _, stage := range []string{obs.StageSuite, obs.StageWorkload, obs.StageScalesim, obs.StageProtect, obs.StageDRAM, obs.StageCompute} {
		if n, err := stages.HistCount(map[string]string{"stage": stage}); err != nil || n == 0 {
			t.Errorf("stage histogram %s count %v err %v, want > 0", stage, n, err)
		}
	}
	comp, ok := fams["seda_compute_duration_seconds"]
	if !ok {
		t.Fatal("metrics missing seda_compute_duration_seconds")
	}
	if n, err := comp.HistCount(nil); err != nil || n != 1 {
		t.Fatalf("compute histogram count %v err %v, want 1", n, err)
	}
}

// The Accept header is parsed per media-type, not by substring on the
// whole header.
func TestWantCSVNegotiation(t *testing.T) {
	mk := func(accept, format string) *http.Request {
		url := "/v1/sweep"
		if format != "" {
			url += "?format=" + format
		}
		req := httptest.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		return req
	}
	for _, tc := range []struct {
		accept, format string
		want           bool
	}{
		{"", "", false},
		{"application/json", "", false},
		{"text/csv", "", true},
		{"text/*", "", true},                            // csv matches text/*, json gets q=0
		{"application/json, text/csv;q=0.9", "", false}, // json preferred by q
		{"application/json;q=0.5, text/csv", "", true},  // csv preferred by q
		{"text/csv;q=0", "", false},                     // explicitly refused
		{"text/csv, */*", "", false},                    // tie: JSON wins
		{"text/csv", "json", false},                     // explicit format wins
		{"application/json", "csv", true},
	} {
		got, err := wantCSV(mk(tc.accept, tc.format))
		if err != nil || got != tc.want {
			t.Errorf("accept=%q format=%q: got %v err %v, want %v", tc.accept, tc.format, got, err, tc.want)
		}
	}
}

// Exercise the real binary wiring end to end: bind :0, hit /healthz
// through a TCP socket. Keeps the CI smoke step honest.
func TestServerOverTCP(t *testing.T) {
	cache, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz over TCP: %d %q", resp.StatusCode, body)
	}
}

// TestSweepETagRevalidation pins the conditional-request contract:
// sweep responses carry a strong ETag and Cache-Control, a matching
// If-None-Match revalidates with 304 without touching the cache or the
// pipeline (even for a config that was never evaluated), and the tag
// varies with the representation (figure, format).
func TestSweepETagRevalidation(t *testing.T) {
	h, cache := testHandler(t)
	url := "/v1/sweep?fig=5b&workloads=ncf"

	fresh := doReq(t, h, url, nil)
	if fresh.Code != http.StatusOK {
		t.Fatalf("status %d", fresh.Code)
	}
	etag := fresh.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing or weak ETag %q", etag)
	}
	if cc := fresh.Header().Get("Cache-Control"); !strings.Contains(cc, "no-cache") {
		t.Fatalf("Cache-Control %q, want a revalidation directive", cc)
	}

	before := cache.Stats()
	rec := doReq(t, h, url, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("revalidation: status %d body %dB, want 304 with empty body", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get("ETag") != etag {
		t.Fatalf("304 ETag %q != %q", rec.Header().Get("ETag"), etag)
	}
	after := cache.Stats()
	if after.Hits != before.Hits || after.Computes != before.Computes || after.DiskHits != before.DiskHits {
		t.Fatalf("304 touched the cache: before %+v after %+v", before, after)
	}

	// A stale tag gets the full body again.
	if rec := doReq(t, h, url, map[string]string{"If-None-Match": `"deadbeef"`}); rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("stale tag: status %d body %dB", rec.Code, rec.Body.Len())
	}
	// Wildcard matches without a tag.
	if rec := doReq(t, h, url, map[string]string{"If-None-Match": "*"}); rec.Code != http.StatusNotModified {
		t.Fatalf("wildcard: status %d, want 304", rec.Code)
	}

	// 304 without ever evaluating: a fresh server has computed nothing,
	// yet can revalidate a tag it can derive from fingerprints alone.
	h2, cache2 := testHandler(t)
	rec = doReq(t, h2, url, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("cold revalidation: status %d, want 304", rec.Code)
	}
	if st := cache2.Stats(); st.Computes != 0 {
		t.Fatalf("cold revalidation evaluated the pipeline: %+v", st)
	}

	// Distinct representations carry distinct tags.
	tags := map[string]string{}
	for _, u := range []string{
		"/v1/sweep?fig=5b&workloads=ncf",
		"/v1/sweep?fig=6b&workloads=ncf",
		"/v1/sweep?fig=6b&workloads=ncf&format=csv",
		"/v1/sweep?npu=edge&workloads=ncf",
	} {
		tag := doReq(t, h, u, nil).Header().Get("ETag")
		if tag == "" {
			t.Fatalf("%s: no ETag", u)
		}
		if prev, dup := tags[tag]; dup {
			t.Fatalf("ETag collision between %s and %s", prev, u)
		}
		tags[tag] = u
	}
}

// TestSweepShedsWhenSaturated pins the 503 path deterministically: the
// server's single bounded compute slot is held open by a direct cache
// computation, so a sweep that needs a fresh evaluation is shed with
// 503 and Retry-After, succeeds on retry once the slot frees, and the
// cache counts the shed.
func TestSweepShedsWhenSaturated(t *testing.T) {
	cache, err := rescache.New(rescache.Options{MaxInflightComputes: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := NewAPI(cache, seda.DefaultSuiteOptions(), 0).Handler()

	held := make(chan struct{})
	begun := make(chan struct{})
	occupier := make(chan error, 1)
	go func() {
		_, _, err := cache.GetOrCompute("00ff", func() ([]byte, error) {
			close(begun)
			<-held
			return []byte("x"), nil
		})
		occupier <- err
	}()
	<-begun // the one compute slot is now deterministically held

	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated sweep: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if st := cache.Stats(); st.Shed != 1 {
		t.Fatalf("stats %+v, want Shed=1", st)
	}

	close(held)
	if err := <-occupier; err != nil {
		t.Fatal(err)
	}
	// With the slot free again, the shed sweep succeeds on retry.
	if rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", nil); rec.Code != http.StatusOK {
		t.Fatalf("retry after shed: status %d", rec.Code)
	}
}

// TestColdSweepDoesNotSelfShed is the regression guard for the
// capacity bound's one sharp edge: a sweep fans its workloads over a
// worker pool, and if the pool outnumbered the compute slots a single
// cold sweep on an idle server would shed its own workloads and 503.
// newServer clamps the pool to the slot count, so the smallest
// possible capacity must still serve a multi-workload cold sweep.
func TestColdSweepDoesNotSelfShed(t *testing.T) {
	cache, err := rescache.New(rescache.Options{MaxInflightComputes: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := seda.DefaultSuiteOptions()
	opts.Workers = 8 // deliberately above the single compute slot
	h := NewAPI(cache, opts, 0).Handler()

	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=let,ncf", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold sweep on an idle server: status %d body %q", rec.Code, rec.Body.String())
	}
	if st := cache.Stats(); st.Shed != 0 || st.Computes != 2 {
		t.Fatalf("stats %+v, want Shed=0 Computes=2", st)
	}
}
