package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// ServerConfig configures one process's HTTP listener lifecycle. Both
// seda-serve and seda-router run through it, so binding, addr-file
// publication and drain semantics stay identical across the fleet.
type ServerConfig struct {
	Addr     string // host:port; port 0 picks a free port
	AddrFile string // when non-empty, the bound address is written here

	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// ShutdownGrace bounds how long Run waits for in-flight requests
	// once the context is cancelled.
	ShutdownGrace time.Duration

	// OnDrain, when non-nil, runs the moment shutdown begins — before
	// the listener closes — so the process can flip its readiness
	// surface (API.SetDraining) while it finishes in-flight work.
	OnDrain func()

	Log *slog.Logger // nil = discard
}

// Server is one bound listener plus its drain lifecycle.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	log *slog.Logger
}

// NewServer validates the config and fills defaults. Nothing binds
// until Listen.
func NewServer(cfg ServerConfig) *Server {
	if cfg.ReadHeaderTimeout == 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return &Server{cfg: cfg, log: log}
}

// Listen binds the configured address and, when AddrFile is set,
// publishes the actual bound address (the :0 contract CI and the
// router-smoke scripts rely on). It returns the bound address.
func (s *Server) Listen() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", err
	}
	bound := ln.Addr().String()
	if s.cfg.AddrFile != "" {
		if err := os.WriteFile(s.cfg.AddrFile, []byte(bound), 0o644); err != nil {
			ln.Close() //nolint:errcheck
			return "", err
		}
	}
	s.ln = ln
	s.log.Info("listening", slog.String("addr", bound))
	return bound, nil
}

// Run serves h on the bound listener until ctx is cancelled, then
// drains: OnDrain fires (readiness flips), the listener stops, and
// in-flight requests get up to ShutdownGrace to finish. A clean drain
// returns nil; a forced exit returns the shutdown error.
func (s *Server) Run(ctx context.Context, h http.Handler) error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(s.ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		if s.cfg.OnDrain != nil {
			s.cfg.OnDrain()
		}
		s.log.Info("shutting down, draining in-flight requests",
			slog.Duration("grace", s.cfg.ShutdownGrace))
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("forced exit with requests in flight: %w", err)
		}
		s.log.Info("drained")
		return nil
	}
}

// DebugHandler serves the profiling surface bound (only) to a
// -debug-addr listener: the full net/http/pprof family. It is a
// separate mux for a separate listener so the serving port never
// exposes profiling — the debug listener is opt-in and meant to stay
// on localhost.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr and serves DebugHandler on it, publishing the
// bound address to addrFile when non-empty. Best-effort surface: the
// goroutine dies with the process.
func ServeDebug(addr, addrFile string, log *slog.Logger) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close() //nolint:errcheck
			return "", err
		}
	}
	if log != nil {
		log.Info("debug listener (pprof)", slog.String("addr", bound))
	}
	srv := &http.Server{Handler: DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // best-effort surface, dies with the process
	return bound, nil
}
