package serve

import (
	"encoding/json"
	"net/http"
	"slices"
	"strconv"
	"testing"

	"repro/internal/rescache"
	"repro/seda"
)

// TestReadyzSplitFromHealthz pins the liveness/readiness split: a
// draining or saturated replica keeps answering /healthz 200 (it is
// alive) while /readyz goes 503 with the reason, so a routing tier can
// stop sending new work without declaring the process dead.
func TestReadyzSplitFromHealthz(t *testing.T) {
	cache, err := rescache.New(rescache.Options{MaxInflightComputes: 1})
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(cache, seda.DefaultSuiteOptions(), 0)
	h := api.Handler()

	readyz := func() (int, string, string) {
		rec := doReq(t, h, "/readyz", nil)
		var doc struct {
			Status   string `json:"status"`
			Inflight int    `json:"inflight"`
			Slots    int    `json:"slots"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("readyz body: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, doc.Status, rec.Header().Get("Retry-After")
	}

	if code, status, _ := readyz(); code != http.StatusOK || status != "ready" {
		t.Fatalf("idle readyz: %d %q, want 200 ready", code, status)
	}

	// Occupy the single compute slot: alive but saturated.
	held := make(chan struct{})
	begun := make(chan struct{})
	occupier := make(chan error, 1)
	go func() {
		_, _, err := cache.GetOrCompute("00ff", func() ([]byte, error) {
			close(begun)
			<-held
			return []byte("x"), nil
		})
		occupier <- err
	}()
	<-begun

	code, status, retry := readyz()
	if code != http.StatusServiceUnavailable || status != "saturated" {
		t.Fatalf("saturated readyz: %d %q, want 503 saturated", code, status)
	}
	if retry == "" {
		t.Fatal("saturated readyz without Retry-After")
	}
	if sec, err := strconv.Atoi(retry); err != nil || sec < 2 || sec > 4 {
		// One inflight evaluation: base 1+1=2, jitter in [0, base].
		t.Fatalf("Retry-After %q, want integer in [2, 4]", retry)
	}
	if rec := doReq(t, h, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz of a saturated replica: %d, want 200 (still alive)", rec.Code)
	}

	close(held)
	if err := <-occupier; err != nil {
		t.Fatal(err)
	}
	waitStatsInflightZero(t, cache)
	if code, status, _ := readyz(); code != http.StatusOK || status != "ready" {
		t.Fatalf("readyz after slot freed: %d %q, want 200 ready", code, status)
	}

	// Draining wins over everything: the lifecycle's OnDrain flips it.
	api.SetDraining(true)
	if code, status, _ := readyz(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining readyz: %d %q, want 503 draining", code, status)
	}
	if rec := doReq(t, h, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz of a draining replica: %d, want 200", rec.Code)
	}
	api.SetDraining(false)
	if code, status, _ := readyz(); code != http.StatusOK || status != "ready" {
		t.Fatalf("readyz after drain cleared: %d %q", code, status)
	}
}

// TestRetryAfterScalesWithPressure pins the anti-lockstep contract of
// satellite Retry-After: the advice grows with queue depth and carries
// jitter, so a fleet's shed clients spread their retries instead of
// re-saturating the capacity on one tick.
func TestRetryAfterScalesWithPressure(t *testing.T) {
	cache, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(cache, seda.DefaultSuiteOptions(), 0)
	for _, tc := range []struct {
		inflight, lo, hi int
	}{
		{0, 1, 2},  // base 1, jitter [0,1]
		{1, 2, 4},  // base 2, jitter [0,2]
		{4, 5, 10}, // base 5, jitter [0,5]
		{15, 16, 32},
	} {
		seen := make(map[int]bool)
		for range 200 {
			got := api.retryAfterSeconds(tc.inflight)
			if got < tc.lo || got > tc.hi {
				t.Fatalf("inflight=%d: Retry-After %d outside [%d, %d]", tc.inflight, got, tc.lo, tc.hi)
			}
			seen[got] = true
		}
		if tc.hi > tc.lo && len(seen) < 2 {
			t.Fatalf("inflight=%d: no jitter observed over 200 draws (all %v)", tc.inflight, seen)
		}
	}
}

// TestRetryAfterSeedReproducible pins the seedable-jitter contract the
// load-generator harness relies on: two APIs seeded identically emit
// the same Retry-After sequence, differently seeded ones diverge — the
// readiness surface replays exactly under a pinned -jitter-seed.
func TestRetryAfterSeedReproducible(t *testing.T) {
	newSeeded := func(seed uint64) *API {
		cache, err := rescache.New(rescache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		api := NewAPI(cache, seda.DefaultSuiteOptions(), 0)
		api.SeedJitter(seed)
		return api
	}
	draw := func(api *API) []int {
		out := make([]int, 64)
		for i := range out {
			out[i] = api.retryAfterSeconds(i % 7)
		}
		return out
	}
	a, b, c := draw(newSeeded(42)), draw(newSeeded(42)), draw(newSeeded(43))
	if !slices.Equal(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if slices.Equal(a, c) {
		t.Fatalf("different seeds produced identical sequences: %v", a)
	}
	// Reseeding mid-flight restarts the sequence, so a test can rewind
	// the advice stream without rebuilding the API.
	api := newSeeded(42)
	first := draw(api)
	api.SeedJitter(42)
	if again := draw(api); !slices.Equal(first, again) {
		t.Fatalf("reseed did not rewind the sequence:\n%v\n%v", first, again)
	}
}
