package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/seda"
)

// logLine is the shape of one slog JSON record the tests care about.
type logLine struct {
	Msg    string `json:"msg"`
	Level  string `json:"level"`
	ID     string `json:"id"`
	Route  string `json:"route"`
	Status int    `json:"status"`
}

func parseLogLines(t *testing.T, buf *bytes.Buffer) []logLine {
	t.Helper()
	var out []logLine
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if raw == "" {
			continue
		}
		var l logLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, raw)
		}
		out = append(out, l)
	}
	return out
}

// TestRequestIDPropagation pins the correlation contract: for a
// failing request, the same ID appears in the response header, the
// 500 body, the panic log line, and the access log line — one grep
// connects a user report to the server's view of the request.
func TestRequestIDPropagation(t *testing.T) {
	defer failpoint.Reset()
	cache, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	sv := NewAPI(cache, seda.DefaultSuiteOptions(), 0)
	sv.Log = slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := sv.Handler()

	if err := failpoint.Enable(FailpointSweep, "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	const rid = "corr-id-12345"
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf", map[string]string{"X-Request-Id": rid})

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if got := rec.Header().Get("X-Request-Id"); got != rid {
		t.Fatalf("X-Request-Id echo: %q, want %q", got, rid)
	}
	if !strings.Contains(rec.Body.String(), rid) {
		t.Fatalf("500 body does not name the request ID:\n%s", rec.Body.String())
	}

	lines := parseLogLines(t, &logBuf)
	var sawPanic, sawAccess bool
	for _, l := range lines {
		switch l.Msg {
		case "handler panic":
			sawPanic = true
			if l.ID != rid || l.Level != "ERROR" {
				t.Errorf("panic log line: %+v", l)
			}
		case "request":
			sawAccess = true
			if l.ID != rid || l.Status != http.StatusInternalServerError || l.Route != "/v1/sweep" {
				t.Errorf("access log line: %+v", l)
			}
		}
	}
	if !sawPanic || !sawAccess {
		t.Fatalf("missing log lines (panic=%v access=%v):\n%s", sawPanic, sawAccess, logBuf.String())
	}
}

// TestGeneratedRequestID: without a caller-supplied ID the middleware
// mints one and still echoes it.
func TestGeneratedRequestID(t *testing.T) {
	h, _ := testHandler(t)
	rec := doReq(t, h, "/healthz", nil)
	if id := rec.Header().Get("X-Request-Id"); len(id) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex digits", id)
	}
}

// TestTimingHeader: ?debug=timing returns the span tree in
// X-Seda-Timing without perturbing the body, and the tree contains
// the pipeline stages of the sweep it measured.
func TestTimingHeader(t *testing.T) {
	h, _ := testHandler(t)
	plain := doReq(t, h, "/v1/sweep?fig=5b&workloads=let", nil)
	timed := doReq(t, h, "/v1/sweep?fig=5b&workloads=let&debug=timing", nil)
	if timed.Code != http.StatusOK {
		t.Fatalf("status %d", timed.Code)
	}
	if !bytes.Equal(plain.Body.Bytes(), timed.Body.Bytes()) {
		t.Fatal("timing mode changed the response body")
	}

	raw := timed.Header().Get("X-Seda-Timing")
	if raw == "" {
		t.Fatal("no X-Seda-Timing header")
	}
	var tree obs.SpanJSON
	if err := json.Unmarshal([]byte(raw), &tree); err != nil {
		t.Fatalf("timing header is not JSON: %v\n%s", err, raw)
	}
	if tree.Name != "request" || tree.Ms <= 0 {
		t.Fatalf("root span: %+v", tree)
	}
	var found func(sp obs.SpanJSON, name string) bool
	found = func(sp obs.SpanJSON, name string) bool {
		if sp.Name == name {
			return true
		}
		for _, c := range sp.Spans {
			if found(c, name) {
				return true
			}
		}
		return false
	}
	// The second request hits the in-memory cache, so only the get
	// span is guaranteed beneath the root.
	if !found(tree, obs.StageCacheGet) {
		t.Fatalf("timing tree missing %s:\n%s", obs.StageCacheGet, raw)
	}

	// The untimed request carries no trace header.
	if plain.Header().Get("X-Seda-Timing") != "" {
		t.Fatal("plain request unexpectedly carries X-Seda-Timing")
	}
}

// TestTimingModePanicAnswersClean500: in timing mode the body is
// buffered, so a handler panic after partial output still yields a
// clean 500 — nothing of the partial body leaks.
func TestTimingModePanicAnswersClean500(t *testing.T) {
	defer failpoint.Reset()
	h, _ := testHandler(t)
	if err := failpoint.Enable(FailpointSweep, "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	rec := doReq(t, h, "/v1/sweep?fig=5b&workloads=ncf&debug=timing", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !strings.HasPrefix(rec.Body.String(), "internal error") {
		t.Fatalf("500 body not clean:\n%s", rec.Body.String())
	}
}

// TestDebugHandlerServesPprof: the -debug-addr mux answers the pprof
// index and a concrete profile.
func TestDebugHandlerServesPprof(t *testing.T) {
	h := DebugHandler()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1"} {
		rec := doReq(t, h, path, nil)
		if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
			t.Errorf("%s: status %d, %d bytes", path, rec.Code, rec.Body.Len())
		}
	}
}
