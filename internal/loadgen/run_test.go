package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rescache"
	"repro/internal/serve"
	"repro/seda"
)

// testServer boots a real serving stack (serve.API over a fresh
// in-memory cache) — the harness's integration tests go through the
// same HTTP surface production traffic does.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	cache, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	api := serve.NewAPI(cache, seda.DefaultSuiteOptions(), 0)
	api.SeedJitter(1)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// warmColdScenario: a cold counted phase computes the configs, a warm
// counted phase replays them with revalidation.
func warmColdScenario(t *testing.T) *Scenario {
	t.Helper()
	doc := `{
	  "name": "warm-rerun",
	  "phases": [
	    {"name": "cold", "mode": "closed", "clients": 2, "requests": 6,
	     "mix": [{"kind": "sweep", "figs": ["5b"], "workloads": ["let,ncf"]}]},
	    {"name": "warm", "mode": "closed", "clients": 4, "requests": 40,
	     "mix": [{"kind": "sweep", "figs": ["5b"], "workloads": ["let,ncf"], "csv": 0.25, "revalidate": 0.6}]}
	  ]
	}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunWarmRerunInvariants is the harness-as-integration-test core:
// after a cold phase computes a config, the warm phase must be served
// entirely from cache (fresh computes = 0), revalidation must answer
// 304 under load, no request may error, and every 200 body for a URL
// must be byte-identical.
func TestRunWarmRerunInvariants(t *testing.T) {
	srv := testServer(t)
	rep, err := Run(context.Background(), RunOptions{
		Scenario: warmColdScenario(t),
		Seed:     11,
		Target:   srv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Totals.Status.Errors(); got != 0 {
		t.Fatalf("client-visible errors: %d (%+v)", got, rep.Totals.Status)
	}
	if rep.Totals.Status.Total() != 46 {
		t.Fatalf("completed %d requests, want 46", rep.Totals.Status.Total())
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases: %d", len(rep.Phases))
	}
	cold, warm := rep.Phases[0], rep.Phases[1]
	if cold.MetricsDelta["seda_cache_misses_total"] == 0 {
		t.Fatalf("cold phase computed nothing: %+v", cold.MetricsDelta)
	}
	if d := warm.MetricsDelta["seda_cache_misses_total"]; d != 0 {
		t.Fatalf("warm rerun ran %v fresh computes, want 0 (deltas %+v)", d, warm.MetricsDelta)
	}
	if warm.MetricsDelta["seda_cache_hits_total"] == 0 {
		t.Fatalf("warm phase shows no cache hits: %+v", warm.MetricsDelta)
	}
	if warm.Status.NotModified == 0 {
		t.Fatalf("revalidation never answered 304: %+v", warm.Status)
	}
	if warm.BodyDivergence != 0 || cold.BodyDivergence != 0 {
		t.Fatalf("body divergence: cold=%d warm=%d", cold.BodyDivergence, warm.BodyDivergence)
	}
	if warm.AchievedRPS <= 0 || warm.Latency.P99 <= 0 || warm.Latency.Count == 0 {
		t.Fatalf("warm measurements empty: %+v", warm.Latency)
	}
	if rep.ScheduleDigest == "" || rep.ScheduleDigest != warmColdScenario(t).ScheduleDigest(11) {
		t.Fatalf("report digest %q does not name the replayed schedule", rep.ScheduleDigest)
	}
}

// TestRunTaxonomy drives the classifier through a scripted server that
// rotates every status the taxonomy distinguishes.
func TestRunTaxonomy(t *testing.T) {
	var mu sync.Mutex
	n := 0
	script := []func(w http.ResponseWriter){
		func(w http.ResponseWriter) { w.Write([]byte("ok")) }, //nolint:errcheck
		func(w http.ResponseWriter) {
			w.Header().Set("X-Seda-Stale", "1")
			w.Write([]byte("stale-tier")) //nolint:errcheck
		},
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusNotModified) },
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusTooManyRequests) },
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusServiceUnavailable) },
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusGatewayTimeout) },
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusBadRequest) },
		func(w http.ResponseWriter) { w.WriteHeader(http.StatusInternalServerError) },
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprint(w, "# HELP x x\n# TYPE x counter\nx 1\n")
			return
		}
		mu.Lock()
		f := script[n%len(script)]
		n++
		mu.Unlock()
		f(w)
	}))
	defer srv.Close()

	doc := `{"name":"taxonomy","phases":[{"name":"p","mode":"closed","clients":1,"requests":16,"mix":[{"kind":"catalog"}]}]}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunOptions{Scenario: sc, Seed: 1, Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Totals.Status
	want := Counts{OK: 2, Stale: 2, NotModified: 2, Rejected: 2, Shed: 2, Timeout: 2, ClientError: 2, ServerError: 2}
	if st != want {
		t.Fatalf("taxonomy counts:\n got %+v\nwant %+v", st, want)
	}
	if rep.Totals.ShedRate != rate(4, 16) {
		t.Fatalf("shed rate %v", rep.Totals.ShedRate)
	}
	if rep.Totals.StaleRate != rate(2, 16) {
		t.Fatalf("stale rate %v", rep.Totals.StaleRate)
	}
}

// TestRunBodyDivergence: a server that changes its 200 body for the
// same URL must be caught by the first-seen digest check.
func TestRunBodyDivergence(t *testing.T) {
	var mu sync.Mutex
	n := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprint(w, "")
			return
		}
		mu.Lock()
		n++
		fmt.Fprintf(w, "body-%d", n)
		mu.Unlock()
	}))
	defer srv.Close()
	doc := `{"name":"diverge","phases":[{"name":"p","mode":"closed","clients":1,"requests":6,"mix":[{"kind":"sweep","figs":["5b"],"workloads":["let"]}]}]}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunOptions{Scenario: sc, Seed: 1, Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	// One URL, six 200s with six different bodies: the first sets the
	// reference, the other five diverge.
	if rep.Phases[0].BodyDivergence != 5 {
		t.Fatalf("divergence = %d, want 5", rep.Phases[0].BodyDivergence)
	}
	if len(rep.Warnings) == 0 || !strings.Contains(rep.Warnings[len(rep.Warnings)-1], "diverged") {
		t.Fatalf("warnings missing divergence note: %v", rep.Warnings)
	}
	if rep.Totals.Status.OK != 6 {
		t.Fatalf("divergence must not reclassify 200s: %+v", rep.Totals.Status)
	}
}

// TestRunOpenLoopCoordinatedOmission pins the correction: against a
// serialized target (one request at a time, fixed service time), an
// open-loop phase must report queueing delay — latency measured from
// the scheduled arrival grows far beyond the service time.
func TestRunOpenLoopCoordinatedOmission(t *testing.T) {
	const service = 20 * time.Millisecond
	var gate sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			return
		}
		gate.Lock()
		time.Sleep(service)
		gate.Unlock()
		w.Write([]byte("ok")) //nolint:errcheck
	}))
	defer srv.Close()
	// Offered 100/s uniform for 400ms = 40 arrivals; the target drains
	// 50/s, so the queue grows by ~1 request every 20ms.
	doc := `{"name":"co","phases":[{"name":"p","mode":"open","rate":100,"arrival":"uniform","duration":"400ms","mix":[{"kind":"catalog"}]}]}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunOptions{Scenario: sc, Seed: 1, Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Phases[0]
	if !p.Latency.Corrected {
		t.Fatal("open-loop phase must be flagged coordinated_omission_corrected")
	}
	if p.Status.OK < 30 {
		t.Fatalf("only %d arrivals completed", p.Status.OK)
	}
	maxLat := time.Duration(p.Latency.Max * float64(time.Second))
	if maxLat < 5*service {
		t.Fatalf("max latency %s shows no queueing delay (service time %s): the correction is lost", maxLat, service)
	}
}

// TestRunOpenLoopInflightCap: when arrivals outpace the inflight cap,
// the surplus must be counted dropped, not silently queued.
func TestRunOpenLoopInflightCap(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			return
		}
		<-block
	}))
	defer srv.Close()
	defer close(block)
	doc := `{"name":"cap","phases":[{"name":"p","mode":"open","rate":200,"arrival":"uniform","duration":"200ms","mix":[{"kind":"catalog"}]}]}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(context.Background(), RunOptions{
			Scenario: sc, Seed: 1, Target: srv.URL,
			MaxInflight: 4, RequestTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep == nil {
			t.Fatal("run failed")
		}
		p := rep.Phases[0]
		if p.Status.Dropped == 0 {
			t.Fatalf("no arrivals dropped at cap 4: %+v", p.Status)
		}
		// The 4 admitted requests hang past their timeout.
		if p.Status.TransportError == 0 {
			t.Fatalf("expected timed-out admitted requests: %+v", p.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run wedged")
	}
}

// TestRunScrapeWarnings: an unscrapable endpoint degrades to a warning
// (the traffic numbers survive; only the attribution is lost).
func TestRunScrapeWarnings(t *testing.T) {
	srv := testServer(t)
	doc := `{"name":"w","phases":[{"name":"p","mode":"closed","clients":1,"requests":2,"mix":[{"kind":"catalog"}]}]}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunOptions{
		Scenario: sc, Seed: 1, Target: srv.URL,
		Scrape: []string{srv.URL, "http://127.0.0.1:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 || !strings.Contains(rep.Warnings[0], "pre-scrape") {
		t.Fatalf("warnings: %v", rep.Warnings)
	}
	if rep.Phases[0].MetricsDelta != nil {
		t.Fatal("partial scrape must not report deltas")
	}
	if rep.Totals.Status.OK != 2 {
		t.Fatalf("traffic should still run: %+v", rep.Totals.Status)
	}
}
