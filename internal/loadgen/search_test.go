package loadgen

import (
	"context"
	"math"
	"testing"
	"time"
)

// fakeTarget synthesizes step measurements for a target whose true
// capacity is capRPS: below it the p99 sits at base latency, above it
// latency and shed rate blow up.
func fakeTarget(capRPS float64) func(ctx context.Context, rps float64, step int) (*PhaseReport, error) {
	return func(ctx context.Context, rps float64, step int) (*PhaseReport, error) {
		pr := &PhaseReport{
			Name:       "step",
			Mode:       "open",
			OfferedRPS: rps,
		}
		pr.Status.OK = uint64(rps * 5)
		pr.Latency = LatencySummary{Unit: "seconds", Count: pr.Status.OK, P99: 0.020, Corrected: true}
		if rps > capRPS {
			pr.Latency.P99 = 1.5
			pr.Status.Shed = pr.Status.OK / 4
			pr.ShedRate = rate(pr.Status.Shed, pr.Status.Total())
		}
		pr.AchievedRPS = math.Min(rps, capRPS)
		return pr, nil
	}
}

func TestSearchConverges(t *testing.T) {
	const trueCap = 130.0
	rep, err := Search(context.Background(), SearchOptions{
		SLOP99:      250 * time.Millisecond,
		MaxShedRate: 0.01,
		MinRPS:      10,
		MaxRPS:      2000,
		Resolution:  0.05,
		runStep:     fakeTarget(trueCap),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Search
	if s == nil {
		t.Fatal("no search report")
	}
	got := s.MaxSustainableRPS
	if got > trueCap || got < trueCap/(1+0.05)/1.01 {
		t.Fatalf("converged to %v, want within 5%% below true capacity %v", got, trueCap)
	}
	if len(s.Steps) < 5 {
		t.Fatalf("suspiciously few steps: %d", len(s.Steps))
	}
	// The trajectory must actually bracket: at least one failing step
	// above the answer, and the failing steps must say why.
	var failed bool
	for _, st := range s.Steps {
		if !st.Pass {
			failed = true
			if st.Reason == "" {
				t.Fatalf("failing step at %v rps has no reason", st.RPS)
			}
		}
	}
	if !failed {
		t.Fatal("no failing step recorded despite finite capacity")
	}
	if s.SLO != "p99<=250ms, shed<=0.01" {
		t.Fatalf("slo rendering: %q", s.SLO)
	}
}

// TestSearchCeiling: a target that never breaks sustains the ceiling.
func TestSearchCeiling(t *testing.T) {
	rep, err := Search(context.Background(), SearchOptions{
		SLOP99:  time.Second,
		MinRPS:  10,
		MaxRPS:  500,
		runStep: fakeTarget(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Search.MaxSustainableRPS; got != 500 {
		t.Fatalf("ceiling pass should answer MaxRPS: %v", got)
	}
}

// TestSearchFloor: a target already failing at MinRPS answers 0.
func TestSearchFloor(t *testing.T) {
	rep, err := Search(context.Background(), SearchOptions{
		SLOP99:  time.Millisecond, // everything violates 1ms
		MinRPS:  10,
		MaxRPS:  500,
		runStep: fakeTarget(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Search.MaxSustainableRPS; got != 0 {
		t.Fatalf("floor fail should answer 0: %v", got)
	}
	if len(rep.Search.Steps) != 1 {
		t.Fatalf("floor fail should stop after one step: %d", len(rep.Search.Steps))
	}
}

func TestSearchRejectsBadOptions(t *testing.T) {
	if _, err := Search(context.Background(), SearchOptions{}); err == nil {
		t.Fatal("missing SLO must be rejected")
	}
	if _, err := Search(context.Background(), SearchOptions{SLOP99: time.Second, MaxShedRate: 2, runStep: fakeTarget(1)}); err == nil {
		t.Fatal("shed rate 2 must be rejected")
	}
}

// TestSearchErrorsFailStep: hard client-visible errors fail a step
// regardless of latency.
func TestSearchErrorsFailStep(t *testing.T) {
	rep, err := Search(context.Background(), SearchOptions{
		SLOP99: time.Second,
		MinRPS: 10,
		MaxRPS: 100,
		runStep: func(ctx context.Context, rps float64, step int) (*PhaseReport, error) {
			pr := &PhaseReport{Latency: LatencySummary{P99: 0.001}}
			pr.Status.OK = 50
			if rps > 20 {
				pr.Status.ServerError = 3
			}
			return pr, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Search.MaxSustainableRPS; got > 20 {
		t.Fatalf("errors above 20 rps, search answered %v", got)
	}
	for _, st := range rep.Search.Steps {
		if !st.Pass && st.Phase.Status.ServerError > 0 && st.Reason != "3 client-visible errors" {
			t.Fatalf("reason: %q", st.Reason)
		}
	}
}
