// Package loadgen is the synthetic traffic harness and capacity model
// for the serving stack: it replays declarative scenario mixes against
// a seda-serve replica or the seda-router fleet, measures client-side
// latency percentiles on HDR-style log-bucketed histograms
// (coordinated-omission-corrected for open-loop arrivals), classifies
// every response into an error/shed/stale taxonomy, scrapes /metrics
// before and after each phase to attribute cache and router counter
// deltas to the traffic that caused them, and emits a machine-readable
// capacity report (BENCH_SERVE.json rows). A step-load search mode
// ramps offered RPS until the p99 SLO or the shed-rate threshold
// breaks and bisects to the maximum sustainable throughput.
//
// Everything the generator sends is derived deterministically from
// (scenario, seed): the same seed replays a byte-identical request
// schedule, so a measured run names its workload exactly and a report
// can be reproduced. Because the harness exercises every serving layer
// end to end, it doubles as the deepest black-box test suite the repo
// has — the integration tests assert the serving invariants (warm
// reruns compute nothing, revalidation answers 304 under load, a
// replica kill behind the router costs zero client-visible errors)
// through the same executor the capacity numbers come from.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/model"
)

// Scenario is one declarative traffic description: an ordered list of
// phases, each with a loop mode and a weighted request mix. Scenarios
// load from JSON (LoadScenario) or come built in (Builtin).
type Scenario struct {
	Name string `json:"name"`
	// Seed is the default schedule seed; a caller-provided seed (the
	// -seed flag) overrides it.
	Seed   uint64  `json:"seed,omitempty"`
	Phases []Phase `json:"phases"`
}

// Phase is one load segment, executed after the previous phase fully
// completes (the barrier is where the /metrics deltas are cut).
type Phase struct {
	Name string `json:"name"`
	// Mode selects the loop law. "closed": Clients workers each hold at
	// most one request open — throughput self-limits to the target's
	// service rate, latencies are service times. "open": requests fire
	// at scheduled arrival times regardless of completions — offered
	// load is independent of the target, and latency is measured from
	// the scheduled arrival (coordinated-omission corrected).
	Mode    string `json:"mode"`
	Clients int    `json:"clients,omitempty"` // closed loop; default 1
	// Rate is the open-loop offered arrival rate, requests/second.
	Rate float64 `json:"rate,omitempty"`
	// Arrival shapes open-loop inter-arrival gaps: "poisson" (default,
	// exponential gaps) or "uniform" (evenly spaced).
	Arrival string `json:"arrival,omitempty"`
	// Requests bounds the phase by count; Duration bounds it by wall
	// clock. At least one is required. A counted phase has a fully
	// deterministic schedule; a closed duration-bounded phase consumes
	// the (deterministic) request stream for as long as the clock runs.
	Requests int      `json:"requests,omitempty"`
	Duration Duration `json:"duration,omitempty"`
	Mix      []Mix    `json:"mix"`
}

// Mix is one weighted request class within a phase.
type Mix struct {
	// Kind: "sweep" (/v1/sweep), "explore" (/v1/explore) or "catalog"
	// (/v1/workloads and /v1/schemes, alternating).
	Kind   string  `json:"kind"`
	Weight float64 `json:"weight,omitempty"` // relative; default 1

	// Sweep fields. The config universe is the cross product
	// figs × workloads (a workloads entry is a comma-separated subset;
	// "" or "*" selects the full suite). Zipf skews sampling over that
	// universe — first-listed configs are hottest — with exponent s
	// (weight 1/rank^s); 0 means uniform.
	Figs      []string `json:"figs,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Zipf      float64  `json:"zipf,omitempty"`
	// CSV is the fraction of requests negotiating text/csv via Accept;
	// Revalidate the fraction sending If-None-Match with the ETag
	// learned from an earlier response for the same URL (until one is
	// known, the request goes unconditional).
	CSV        float64 `json:"csv,omitempty"`
	Revalidate float64 `json:"revalidate,omitempty"`

	// Explore fields: grid specs (explore.ParseSpec grammar) sampled
	// uniformly, optional base preset and scheme passed through.
	Specs  []string `json:"specs,omitempty"`
	Base   string   `json:"base,omitempty"`
	Scheme string   `json:"scheme,omitempty"`
}

// Duration is a time.Duration that marshals as a Go duration string
// ("1.5s") in scenario files.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"2s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("duration %q is negative", s)
	}
	*d = Duration(v)
	return nil
}

// validFigs mirrors the /v1/sweep figure names; the generator
// validates at parse time so a bad scenario fails before any traffic.
var validFigs = map[string]bool{"5a": true, "5b": true, "6a": true, "6b": true}

// ParseScenario decodes and validates one scenario document. Unknown
// fields are errors (a typoed knob must not silently produce a
// different workload than the one named in the report).
func ParseScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	return &sc, nil
}

// LoadScenario resolves name to a built-in scenario or a JSON file
// path (a path wins when the file exists).
func LoadScenario(name string) (*Scenario, error) {
	if f, err := os.Open(name); err == nil {
		defer f.Close() //nolint:errcheck
		return ParseScenario(f)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if sc, ok := Builtin(name); ok {
		return sc, nil
	}
	return nil, fmt.Errorf("scenario %q: no such file and no such built-in (built-ins: %s)", name, strings.Join(BuiltinNames(), ", "))
}

func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("missing name")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	seen := make(map[string]bool)
	for i := range sc.Phases {
		p := &sc.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("phase %d: missing name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("phase %q: duplicate phase name", p.Name)
		}
		seen[p.Name] = true
		if err := p.validate(); err != nil {
			return fmt.Errorf("phase %q: %w", p.Name, err)
		}
	}
	return nil
}

func (p *Phase) validate() error {
	switch p.Mode {
	case "closed":
		if p.Clients == 0 {
			p.Clients = 1
		}
		if p.Clients < 0 {
			return fmt.Errorf("clients %d must be positive", p.Clients)
		}
		if p.Rate != 0 {
			return fmt.Errorf("rate is an open-loop knob (closed loop is paced by completions)")
		}
	case "open":
		if p.Rate <= 0 {
			return fmt.Errorf("open loop needs rate > 0 (offered requests/second)")
		}
		if p.Clients != 0 {
			return fmt.Errorf("clients is a closed-loop knob (open loop launches per arrival)")
		}
		switch p.Arrival {
		case "":
			p.Arrival = "poisson"
		case "poisson", "uniform":
		default:
			return fmt.Errorf("arrival %q (want poisson or uniform)", p.Arrival)
		}
	case "":
		return fmt.Errorf("missing mode (closed or open)")
	default:
		return fmt.Errorf("mode %q (want closed or open)", p.Mode)
	}
	if p.Requests < 0 {
		return fmt.Errorf("requests %d must not be negative", p.Requests)
	}
	if p.Requests == 0 && p.Duration == 0 {
		return fmt.Errorf("needs requests or duration to bound it")
	}
	if len(p.Mix) == 0 {
		return fmt.Errorf("empty mix")
	}
	total := 0.0
	for i := range p.Mix {
		m := &p.Mix[i]
		if err := m.validate(); err != nil {
			return fmt.Errorf("mix entry %d (%s): %w", i, m.Kind, err)
		}
		total += m.Weight
	}
	if total <= 0 {
		return fmt.Errorf("mix weights sum to %v, need > 0", total)
	}
	return nil
}

func (m *Mix) validate() error {
	if m.Weight == 0 {
		m.Weight = 1
	}
	if m.Weight < 0 {
		return fmt.Errorf("weight %v must not be negative", m.Weight)
	}
	switch m.Kind {
	case "sweep":
		if len(m.Figs) == 0 {
			return fmt.Errorf("no figs (want a subset of 5a, 5b, 6a, 6b)")
		}
		for _, f := range m.Figs {
			if !validFigs[f] {
				return fmt.Errorf("unknown fig %q (want 5a, 5b, 6a or 6b)", f)
			}
		}
		if len(m.Workloads) == 0 {
			m.Workloads = []string{"*"}
		}
		for _, ws := range m.Workloads {
			if ws == "" || ws == "*" {
				continue
			}
			for _, name := range strings.Split(ws, ",") {
				if model.ByName(strings.TrimSpace(name)) == nil {
					return fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(model.Names(), ", "))
				}
			}
		}
		if m.Zipf < 0 || m.Zipf >= 10 {
			return fmt.Errorf("zipf exponent %v outside [0, 10)", m.Zipf)
		}
		for _, f := range []struct {
			name string
			v    float64
		}{{"csv", m.CSV}, {"revalidate", m.Revalidate}} {
			if f.v < 0 || f.v > 1 {
				return fmt.Errorf("%s fraction %v outside [0, 1]", f.name, f.v)
			}
		}
		if len(m.Specs) > 0 || m.Base != "" || m.Scheme != "" {
			return fmt.Errorf("specs/base/scheme are explore knobs")
		}
	case "explore":
		if len(m.Specs) == 0 {
			return fmt.Errorf("no specs (explore grid grammar, e.g. \"rows=16|32\")")
		}
		for _, s := range m.Specs {
			if _, err := explore.ParseSpec(s); err != nil {
				return fmt.Errorf("spec %q: %w", s, err)
			}
		}
		if len(m.Figs) > 0 || len(m.Workloads) > 0 || m.Zipf != 0 || m.CSV != 0 || m.Revalidate != 0 {
			return fmt.Errorf("figs/workloads/zipf/csv/revalidate are sweep knobs")
		}
	case "catalog":
		if len(m.Figs) > 0 || len(m.Specs) > 0 {
			return fmt.Errorf("catalog entries take no figs or specs")
		}
	case "":
		return fmt.Errorf("missing kind (sweep, explore or catalog)")
	default:
		return fmt.Errorf("unknown kind %q (want sweep, explore or catalog)", m.Kind)
	}
	return nil
}
