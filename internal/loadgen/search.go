package loadgen

import (
	"context"
	"fmt"
	"math"
	"time"
)

// SearchOptions configures the step-load SLO search: find the highest
// open-loop offered rate the target sustains without breaking the p99
// latency SLO or the shed-rate ceiling (or returning hard errors).
type SearchOptions struct {
	// Run carries target/client/scrape settings; its scenario supplies
	// the warmup phases (every phase runs once before the search) and
	// the mix template (the last phase's mix is offered at each step).
	Run RunOptions
	// SLOP99 is the p99 latency ceiling a step must hold.
	SLOP99 time.Duration
	// MaxShedRate is the tolerated (shed+rejected)/total per step.
	MaxShedRate float64
	// MinRPS / MaxRPS bound the search. The ramp doubles from MinRPS
	// until a step fails (or MaxRPS passes), then bisects.
	MinRPS float64
	MaxRPS float64
	// StepDuration is the offered window per step (default 5s).
	StepDuration time.Duration
	// Resolution stops the bisection when hi/lo ≤ 1+Resolution
	// (default 0.1: the answer is within 10%).
	Resolution float64

	// runStep overrides step execution in unit tests.
	runStep func(ctx context.Context, rps float64, step int) (*PhaseReport, error)
}

// SearchStep records one probe of the search trajectory.
type SearchStep struct {
	RPS    float64     `json:"rps"`
	Pass   bool        `json:"pass"`
	Reason string      `json:"reason,omitempty"` // why the step failed
	Phase  PhaseReport `json:"phase"`
}

// SearchReport is the capacity-search outcome embedded in a Report.
type SearchReport struct {
	SLO               string       `json:"slo"` // human form, e.g. "p99<=250ms, shed<=1%"
	MaxSustainableRPS float64      `json:"max_sustainable_rps"`
	Steps             []SearchStep `json:"steps"`
}

// Search ramps offered RPS (doubling from MinRPS) until the SLO
// breaks, then geometrically bisects to the maximum sustainable
// throughput. The returned report embeds the warmup run's phases plus
// the search trajectory.
func Search(ctx context.Context, opts SearchOptions) (*Report, error) {
	if opts.SLOP99 <= 0 {
		return nil, fmt.Errorf("loadgen: search needs a p99 SLO > 0")
	}
	if opts.MinRPS <= 0 {
		opts.MinRPS = 5
	}
	if opts.MaxRPS <= opts.MinRPS {
		opts.MaxRPS = opts.MinRPS * 256
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 5 * time.Second
	}
	if opts.Resolution <= 0 {
		opts.Resolution = 0.1
	}
	if opts.MaxShedRate < 0 || opts.MaxShedRate > 1 {
		return nil, fmt.Errorf("loadgen: max shed rate %v outside [0, 1]", opts.MaxShedRate)
	}

	sc := opts.Run.Scenario
	var rep *Report
	var template []Mix
	if opts.runStep == nil {
		if sc == nil || len(sc.Phases) == 0 {
			return nil, fmt.Errorf("loadgen: search needs a scenario with at least one phase (the last phase's mix is the step template)")
		}
		template = sc.Phases[len(sc.Phases)-1].Mix
		var err error
		rep, err = Run(ctx, opts.Run)
		if err != nil {
			return nil, fmt.Errorf("warmup run: %w", err)
		}
	} else {
		rep = &Report{LoadgenVersion: ReportVersion, Scenario: "search"}
	}

	seed := opts.Run.Seed
	if seed == 0 && sc != nil {
		seed = sc.Seed
	}
	if seed == 0 {
		seed = 1
	}

	search := &SearchReport{
		SLO: fmt.Sprintf("p99<=%s, shed<=%.3g", opts.SLOP99, opts.MaxShedRate),
	}
	runStep := opts.runStep
	if runStep == nil {
		runStep = func(ctx context.Context, rps float64, step int) (*PhaseReport, error) {
			return measuredStep(ctx, opts, template, seed, rps, step)
		}
	}

	probe := func(rps float64, step int) (bool, error) {
		pr, err := runStep(ctx, rps, step)
		if err != nil {
			return false, err
		}
		pass, reason := evalStep(pr, opts)
		search.Steps = append(search.Steps, SearchStep{RPS: rps, Pass: pass, Reason: reason, Phase: *pr})
		return pass, nil
	}

	// Ramp: double from MinRPS to the first failing rate.
	lo, hi := 0.0, 0.0
	for rps := opts.MinRPS; ; rps *= 2 {
		if rps > opts.MaxRPS {
			rps = opts.MaxRPS
		}
		pass, err := probe(rps, len(search.Steps))
		if err != nil {
			return nil, err
		}
		if pass {
			lo = rps
			if rps >= opts.MaxRPS {
				break // ceiling sustained; answer is the ceiling
			}
			continue
		}
		hi = rps
		break
	}

	// Bisect geometrically between the last pass and the first fail.
	if hi > 0 {
		if lo == 0 {
			// Even MinRPS failed: the sustainable rate is below the
			// search floor — report 0, the steps say why.
			search.MaxSustainableRPS = 0
			rep.Search = search
			return rep, nil
		}
		for hi/lo > 1+opts.Resolution {
			mid := math.Sqrt(lo * hi)
			pass, err := probe(mid, len(search.Steps))
			if err != nil {
				return nil, err
			}
			if pass {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	search.MaxSustainableRPS = math.Round(lo*100) / 100
	rep.Search = search
	return rep, nil
}

// evalStep applies the SLO to one step's measurements.
func evalStep(pr *PhaseReport, opts SearchOptions) (bool, string) {
	if n := pr.Status.Errors(); n > 0 {
		return false, fmt.Sprintf("%d client-visible errors", n)
	}
	if pr.ShedRate > opts.MaxShedRate {
		return false, fmt.Sprintf("shed rate %.4f > %.4f", pr.ShedRate, opts.MaxShedRate)
	}
	if p99 := time.Duration(pr.Latency.P99 * float64(time.Second)); p99 > opts.SLOP99 {
		return false, fmt.Sprintf("p99 %s > %s", p99.Round(time.Microsecond), opts.SLOP99)
	}
	if pr.Status.Total() == 0 {
		return false, "no requests completed"
	}
	return true, ""
}

// measuredStep offers one open-loop step at the given rate. Each step
// derives its seed from (seed, step index) so steps draw independent
// but reproducible schedules.
func measuredStep(ctx context.Context, opts SearchOptions, template []Mix, seed uint64, rps float64, step int) (*PhaseReport, error) {
	stepScenario := &Scenario{
		Name: "search-step",
		Seed: seed + uint64(step)*0x9E3779B97F4A7C15,
		Phases: []Phase{{
			Name:     fmt.Sprintf("step-%d", step),
			Mode:     "open",
			Rate:     rps,
			Duration: Duration(opts.StepDuration),
			Mix:      append([]Mix(nil), template...),
		}},
	}
	if err := stepScenario.validate(); err != nil {
		return nil, fmt.Errorf("step scenario: %w", err)
	}
	ro := opts.Run
	ro.Scenario = stepScenario
	ro.Seed = stepScenario.Seed
	rep, err := Run(ctx, ro)
	if err != nil {
		return nil, err
	}
	return &rep.Phases[0], nil
}
