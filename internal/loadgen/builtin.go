package loadgen

import (
	"sort"
	"time"
)

// builtins are the scenarios shipped with the harness. They target the
// millisecond-scale workloads (let, ncf, sent — the same set the CI
// smoke jobs use) so a run stays in seconds, and each one exercises a
// distinct slice of the serving surface:
//
//   - smoke: a short closed-loop pass over sweeps (JSON and CSV,
//     revalidation) plus the catalog — the CI loadgen-smoke scenario.
//   - hot-mix: Zipf-skewed hot configs under an open-loop arrival
//     stream with revalidation, CSV negotiation and an explore grid
//     riding along — the realistic-traffic capacity scenario.
//   - capacity: a single open-loop phase over the hot sweep mix; the
//     step-load SLO search uses its mix as the template.
//   - chaos: one long closed-loop phase against a fixed hot config —
//     the router kill-window regression runs this while a replica dies
//     and asserts zero client-visible errors.
var builtins = map[string]*Scenario{
	"smoke": {
		Name: "smoke",
		Seed: 1,
		Phases: []Phase{
			{
				Name: "warm", Mode: "closed", Clients: 2, Requests: 24,
				Mix: []Mix{
					{Kind: "sweep", Weight: 3, Figs: []string{"5b", "6b"}, Workloads: []string{"let,ncf", "let", "ncf"}},
					{Kind: "catalog", Weight: 1},
				},
			},
			{
				Name: "steady", Mode: "closed", Clients: 4, Requests: 160,
				Mix: []Mix{
					{Kind: "sweep", Weight: 8, Figs: []string{"5b", "6b"}, Workloads: []string{"let,ncf", "let", "ncf"}, Zipf: 1.1, CSV: 0.25, Revalidate: 0.25},
					{Kind: "catalog", Weight: 1},
				},
			},
			{
				Name: "sustain", Mode: "closed", Clients: 4, Duration: Duration(5 * time.Second),
				Mix: []Mix{
					{Kind: "sweep", Weight: 1, Figs: []string{"5b"}, Workloads: []string{"let,ncf"}, Revalidate: 0.5},
				},
			},
		},
	},
	"hot-mix": {
		Name: "hot-mix",
		Seed: 1,
		Phases: []Phase{
			{
				Name: "warm", Mode: "closed", Clients: 2, Requests: 32,
				Mix: []Mix{
					{Kind: "sweep", Weight: 1, Figs: []string{"5b", "6b"}, Workloads: []string{"let,ncf,sent", "let,ncf", "let", "ncf", "sent"}},
				},
			},
			{
				Name: "mixed", Mode: "open", Rate: 80, Duration: Duration(10 * time.Second),
				Mix: []Mix{
					{Kind: "sweep", Weight: 16, Figs: []string{"5b", "6b"}, Workloads: []string{"let,ncf,sent", "let,ncf", "let", "ncf", "sent"}, Zipf: 1.2, CSV: 0.2, Revalidate: 0.3},
					{Kind: "explore", Weight: 1, Specs: []string{"rows=16|32", "rows=16|32,channels=2|4"}, Workloads: nil},
					{Kind: "catalog", Weight: 2},
				},
			},
		},
	},
	"capacity": {
		Name: "capacity",
		Seed: 1,
		Phases: []Phase{
			{
				Name: "warm", Mode: "closed", Clients: 2, Requests: 24,
				Mix: []Mix{
					{Kind: "sweep", Weight: 1, Figs: []string{"5b", "6b"}, Workloads: []string{"let,ncf", "let", "ncf"}},
				},
			},
			{
				Name: "offered", Mode: "open", Rate: 100, Duration: Duration(8 * time.Second),
				Mix: []Mix{
					{Kind: "sweep", Weight: 1, Figs: []string{"5b", "6b"}, Workloads: []string{"let,ncf", "let", "ncf"}, Zipf: 1.1, Revalidate: 0.25},
				},
			},
		},
	},
	"chaos": {
		Name: "chaos",
		Seed: 1,
		Phases: []Phase{
			{
				Name: "kill-window", Mode: "closed", Clients: 4, Duration: Duration(6 * time.Second),
				Mix: []Mix{
					{Kind: "sweep", Weight: 1, Figs: []string{"5b"}, Workloads: []string{"let,ncf"}},
				},
			},
		},
	},
}

// Builtin returns a deep copy of the named built-in scenario (callers
// mutate phases when scaling durations), validated like a parsed one.
func Builtin(name string) (*Scenario, bool) {
	sc, ok := builtins[name]
	if !ok {
		return nil, false
	}
	cp := *sc
	cp.Phases = make([]Phase, len(sc.Phases))
	for i, p := range sc.Phases {
		cp.Phases[i] = p
		cp.Phases[i].Mix = append([]Mix(nil), p.Mix...)
	}
	if err := cp.validate(); err != nil {
		panic("loadgen: built-in scenario " + name + " invalid: " + err.Error())
	}
	return &cp, true
}

// BuiltinNames lists the built-in scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
