package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Req is one planned request. The whole struct is a pure function of
// (scenario, seed, position): the executor only fills in the runtime
// If-None-Match value (Reval marks intent; the validator itself is
// learned from earlier responses, so it cannot be part of the plan).
type Req struct {
	Phase  string
	Seq    int           // 0-based position within the phase
	At     time.Duration // open loop: scheduled arrival offset; closed loop: -1
	Path   string        // path?query
	Accept string        // "" = no Accept header (JSON default)
	Reval  bool          // attach If-None-Match when a validator is known
}

// closedLoop reports whether the request is closed-loop paced.
func (r Req) closedLoop() bool { return r.At < 0 }

// planCap bounds how much of an unbounded stream (a closed-loop
// duration-bounded phase) the plan dump materializes. The prefix is
// still byte-identical per seed; the cap only keeps dumps finite.
const planCap = 512

// phaseStream generates one phase's request sequence. Every draw comes
// from a per-phase PCG seeded by (seed, phase index), and each request
// consumes a fixed number of draws for its kind, so the sequence is a
// pure function of (scenario, seed) — the determinism the schedule
// digest and the -plan byte-identity test pin.
type phaseStream struct {
	phase *Phase
	rng   *rand.Rand
	mixes []*mixSampler
	cum   []float64 // cumulative mix weights
	total float64

	n     int
	clock time.Duration // next open-loop arrival offset
}

func newPhaseStream(p *Phase, seed uint64, idx int) *phaseStream {
	s := &phaseStream{
		phase: p,
		// golden-ratio odd constant decorrelates phase sub-streams of
		// one seed without coupling them to phase order changes alone.
		rng: rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15*uint64(idx+1))),
	}
	for i := range p.Mix {
		s.mixes = append(s.mixes, newMixSampler(&p.Mix[i]))
		s.total += p.Mix[i].Weight
		s.cum = append(s.cum, s.total)
	}
	return s
}

// bounded reports whether the stream terminates on its own (a counted
// phase, or an open-loop phase bounded by duration — arrivals past the
// bound are simply never scheduled). A closed-loop duration-bounded
// phase is unbounded: the wall clock, not the stream, ends it.
func (s *phaseStream) bounded() bool {
	return s.phase.Requests > 0 || s.phase.Mode == "open"
}

// next returns the next planned request; ok=false once a bounded
// stream is exhausted.
func (s *phaseStream) next() (Req, bool) {
	p := s.phase
	if p.Requests > 0 && s.n >= p.Requests {
		return Req{}, false
	}
	at := time.Duration(-1)
	if p.Mode == "open" {
		gap := 1 / p.Rate // seconds
		if p.Arrival == "poisson" {
			gap = s.rng.ExpFloat64() / p.Rate
		}
		s.clock += time.Duration(gap * float64(time.Second))
		if p.Requests == 0 && s.clock >= time.Duration(p.Duration) {
			return Req{}, false
		}
		at = s.clock
	}
	m := s.mixes[s.pickMix()]
	path, accept, reval := m.sample(s.rng)
	req := Req{Phase: p.Name, Seq: s.n, At: at, Path: path, Accept: accept, Reval: reval}
	s.n++
	return req, true
}

func (s *phaseStream) pickMix() int {
	u := s.rng.Float64() * s.total
	return sort.SearchFloat64s(s.cum, u)
}

// mixSampler samples concrete requests for one mix entry.
type mixSampler struct {
	mix *Mix
	// sweep: the config universe (figs × workload subsets, listed
	// order) with cumulative Zipf weights — weight 1/rank^s, so the
	// first-listed configs are the hot head of the skew.
	paths []string
	cum   []float64
	total float64
}

func newMixSampler(m *Mix) *mixSampler {
	s := &mixSampler{mix: m}
	switch m.Kind {
	case "sweep":
		for _, fig := range m.Figs {
			for _, ws := range m.Workloads {
				q := url.Values{}
				q.Set("fig", fig)
				if ws != "" && ws != "*" {
					q.Set("workloads", ws)
				}
				s.paths = append(s.paths, "/v1/sweep?"+q.Encode())
			}
		}
	case "explore":
		for _, spec := range m.Specs {
			q := url.Values{}
			q.Set("spec", spec)
			if len(m.Workloads) > 0 && m.Workloads[0] != "" && m.Workloads[0] != "*" {
				q.Set("workloads", m.Workloads[0])
			}
			if m.Base != "" {
				q.Set("base", m.Base)
			}
			if m.Scheme != "" {
				q.Set("scheme", m.Scheme)
			}
			s.paths = append(s.paths, "/v1/explore?"+q.Encode())
		}
	case "catalog":
		s.paths = []string{"/v1/workloads", "/v1/schemes"}
	}
	for i := range s.paths {
		w := 1.0
		if m.Kind == "sweep" && m.Zipf > 0 {
			w = 1 / math.Pow(float64(i+1), m.Zipf)
		}
		s.total += w
		s.cum = append(s.cum, s.total)
	}
	return s
}

// sample draws one request. Every call consumes exactly three draws
// (config, csv, revalidate) regardless of the fractions, so mixes stay
// aligned across scenario edits that only move a fraction.
func (s *mixSampler) sample(rng *rand.Rand) (path, accept string, reval bool) {
	u := rng.Float64() * s.total
	path = s.paths[sort.SearchFloat64s(s.cum, u)]
	wantCSV := rng.Float64() < s.mix.CSV
	reval = rng.Float64() < s.mix.Revalidate
	if s.mix.Kind == "sweep" && wantCSV {
		accept = "text/csv"
	}
	return path, accept, reval
}

// WriteSchedule writes the canonical request-schedule encoding for
// (scenario, seed) and returns its SHA-256 digest. One line per
// request: phase, arrival offset in ns ("-" for closed loop), method,
// path, Accept ("-" for default) and the revalidation flag. Identical
// seeds produce byte-identical output — the determinism contract the
// report's schedule_digest names.
func (sc *Scenario) WriteSchedule(w io.Writer, seed uint64) (string, error) {
	h := sha256.New()
	out := io.MultiWriter(w, h)
	if _, err := fmt.Fprintf(out, "# seda-loadgen schedule v1 scenario=%s seed=%d\n", sc.Name, seed); err != nil {
		return "", err
	}
	for i := range sc.Phases {
		st := newPhaseStream(&sc.Phases[i], seed, i)
		bounded := st.bounded()
		for {
			req, ok := st.next()
			if !ok {
				break
			}
			at := "-"
			if req.At >= 0 {
				at = fmt.Sprintf("%d", req.At.Nanoseconds())
			}
			accept := req.Accept
			if accept == "" {
				accept = "-"
			}
			rv := 0
			if req.Reval {
				rv = 1
			}
			if _, err := fmt.Fprintf(out, "%s\t%s\tGET\t%s\t%s\t%d\n",
				req.Phase, at, req.Path, accept, rv); err != nil {
				return "", err
			}
			if !bounded && st.n >= planCap {
				if _, err := fmt.Fprintf(out, "# phase %s: unbounded closed-loop stream truncated at %d planned requests\n",
					req.Phase, planCap); err != nil {
					return "", err
				}
				break
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ScheduleDigest returns the schedule digest without keeping the dump.
func (sc *Scenario) ScheduleDigest(seed uint64) string {
	d, err := sc.WriteSchedule(io.Discard, seed)
	if err != nil {
		panic("loadgen: digest over io.Discard cannot fail: " + err.Error())
	}
	return d
}

// ScaleDurations multiplies every phase duration by f — the CI hook
// for running a long scenario briefly (counts are left alone so the
// deterministic-schedule property of counted phases is untouched).
func (sc *Scenario) ScaleDurations(f float64) {
	if f <= 0 {
		return
	}
	for i := range sc.Phases {
		sc.Phases[i].Duration = Duration(float64(sc.Phases[i].Duration) * f)
	}
}

// describeOffered returns the offered RPS a phase advertises (open
// loop only; a closed loop offers whatever the target completes).
func (p *Phase) describeOffered() float64 {
	if p.Mode == "open" {
		return p.Rate
	}
	return 0
}

// plannedRequests returns the deterministic request count of a phase,
// or 0 when the count is execution-dependent (closed loop bounded by
// duration). Open-loop duration-bounded phases count by generating the
// arrival sequence — cheap and exact.
func (p *Phase) plannedRequests(seed uint64, idx int) int {
	if p.Requests > 0 {
		return p.Requests
	}
	if p.Mode != "open" {
		return 0
	}
	st := newPhaseStream(p, seed, idx)
	n := 0
	for {
		if _, ok := st.next(); !ok {
			return n
		}
		n++
	}
}

// String renders a compact one-line summary for logs.
func (p *Phase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", p.Name, p.Mode)
	if p.Mode == "open" {
		fmt.Fprintf(&b, " rate=%g/s %s", p.Rate, p.Arrival)
	} else {
		fmt.Fprintf(&b, " clients=%d", p.Clients)
	}
	if p.Requests > 0 {
		fmt.Fprintf(&b, " requests=%d", p.Requests)
	}
	if p.Duration > 0 {
		fmt.Fprintf(&b, " duration=%s", time.Duration(p.Duration))
	}
	return b.String()
}
