package loadgen

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestScheduleByteIdentical pins the determinism contract: the same
// (scenario, seed) pair always emits a byte-identical request schedule
// (and therefore digest), and a different seed diverges.
func TestScheduleByteIdentical(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			var a, b bytes.Buffer
			sc1, _ := Builtin(name)
			da, err := sc1.WriteSchedule(&a, 7)
			if err != nil {
				t.Fatal(err)
			}
			sc2, _ := Builtin(name) // fresh copy: no shared sampler state
			db, err := sc2.WriteSchedule(&b, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("same seed produced different schedules:\n%s\n--- vs ---\n%s", a.String(), b.String())
			}
			if da != db {
				t.Fatalf("digest mismatch for identical bytes: %s vs %s", da, db)
			}
			if d3 := sc1.ScheduleDigest(8); d3 == da {
				t.Fatalf("seed 7 and seed 8 share digest %s", da)
			}
			if got := sc1.ScheduleDigest(7); got != da {
				t.Fatalf("ScheduleDigest(7)=%s, WriteSchedule said %s", got, da)
			}
		})
	}
}

// TestPlanReportByteIdentical pins the satellite requirement directly:
// same -seed → byte-identical plan report JSON.
func TestPlanReportByteIdentical(t *testing.T) {
	render := func() []byte {
		sc, ok := Builtin("hot-mix")
		if !ok {
			t.Fatal("missing built-in hot-mix")
		}
		var buf bytes.Buffer
		if err := Plan(sc, 99).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("plan reports differ:\n%s\n--- vs ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"schedule_digest"`)) || !bytes.Contains(a, []byte(`"plan": true`)) {
		t.Fatalf("plan report missing digest or plan marker:\n%s", a)
	}
}

// TestScheduleShape spot-checks the dump grammar: header line, one
// tab-separated record per request, open-loop arrivals monotonic.
func TestScheduleShape(t *testing.T) {
	sc, _ := Builtin("capacity")
	var buf bytes.Buffer
	if _, err := sc.WriteSchedule(&buf, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "# seda-loadgen schedule v1 scenario=capacity seed=3") {
		t.Fatalf("bad header: %q", lines[0])
	}
	lastAt := int64(-1)
	var closed, open int
	for _, ln := range lines[1:] {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		f := strings.Split(ln, "\t")
		if len(f) != 6 {
			t.Fatalf("want 6 fields, got %d: %q", len(f), ln)
		}
		if !strings.HasPrefix(f[3], "/v1/") {
			t.Fatalf("path %q not under /v1/", f[3])
		}
		if f[1] == "-" {
			closed++
			continue
		}
		open++
		at, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			t.Fatalf("arrival %q: %v", f[1], err)
		}
		if at < lastAt {
			t.Fatalf("arrivals not monotonic: %d after %d", at, lastAt)
		}
		lastAt = at
	}
	if closed == 0 || open == 0 {
		t.Fatalf("want both closed (%d) and open (%d) records", closed, open)
	}
}

// TestGoldenScenarioParse parses the checked-in scenario file and pins
// the decoded shape (the file documents the grammar; drifting it or
// the parser shows up here).
func TestGoldenScenarioParse(t *testing.T) {
	f, err := os.Open("testdata/capacity_probe.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := ParseScenario(f)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "capacity-probe" || sc.Seed != 42 || len(sc.Phases) != 2 {
		t.Fatalf("decoded header: %+v", sc)
	}
	warm, offered := sc.Phases[0], sc.Phases[1]
	if warm.Mode != "closed" || warm.Clients != 2 || warm.Requests != 16 {
		t.Fatalf("warm phase: %+v", warm)
	}
	if offered.Mode != "open" || offered.Rate != 40 || offered.Arrival != "uniform" ||
		time.Duration(offered.Duration) != 2*time.Second || len(offered.Mix) != 3 {
		t.Fatalf("offered phase: %+v", offered)
	}
	if m := offered.Mix[0]; m.Zipf != 1.1 || m.CSV != 0.25 || m.Revalidate != 0.5 || m.Weight != 6 {
		t.Fatalf("sweep mix: %+v", m)
	}
	if got := sc.Phases[1].Mix[2].Weight; got != 1 {
		t.Fatalf("catalog default weight = %v, want 1", got)
	}
	// The file must also produce a stable schedule under its own seed.
	if d := sc.ScheduleDigest(sc.Seed); d != sc.ScheduleDigest(sc.Seed) {
		t.Fatal("golden scenario digest unstable")
	}
}

// TestScenarioErrors pins the validator's error messages: scenario
// authors debug through these strings, so they are part of the surface.
func TestScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mixx":[]}]}`,
			`unknown field "mixx"`},
		{"missing mode", `{"name":"x","phases":[{"name":"p","requests":1,"mix":[{"kind":"catalog"}]}]}`,
			`phase "p": missing mode (closed or open)`},
		{"bad mode", `{"name":"x","phases":[{"name":"p","mode":"bursty","requests":1,"mix":[{"kind":"catalog"}]}]}`,
			`phase "p": mode "bursty" (want closed or open)`},
		{"closed with rate", `{"name":"x","phases":[{"name":"p","mode":"closed","rate":5,"requests":1,"mix":[{"kind":"catalog"}]}]}`,
			`rate is an open-loop knob`},
		{"open without rate", `{"name":"x","phases":[{"name":"p","mode":"open","duration":"1s","mix":[{"kind":"catalog"}]}]}`,
			`open loop needs rate > 0`},
		{"open with clients", `{"name":"x","phases":[{"name":"p","mode":"open","rate":5,"clients":3,"duration":"1s","mix":[{"kind":"catalog"}]}]}`,
			`clients is a closed-loop knob`},
		{"bad arrival", `{"name":"x","phases":[{"name":"p","mode":"open","rate":5,"arrival":"bursty","duration":"1s","mix":[{"kind":"catalog"}]}]}`,
			`arrival "bursty" (want poisson or uniform)`},
		{"unbounded", `{"name":"x","phases":[{"name":"p","mode":"closed","mix":[{"kind":"catalog"}]}]}`,
			`needs requests or duration to bound it`},
		{"bad fig", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"sweep","figs":["9z"]}]}]}`,
			`mix entry 0 (sweep): unknown fig "9z" (want 5a, 5b, 6a or 6b)`},
		{"bad workload", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"sweep","figs":["5b"],"workloads":["nope"]}]}]}`,
			`unknown workload "nope"`},
		{"bad zipf", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"sweep","figs":["5b"],"zipf":11}]}]}`,
			`zipf exponent 11 outside [0, 10)`},
		{"bad fraction", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"sweep","figs":["5b"],"csv":1.5}]}]}`,
			`csv fraction 1.5 outside [0, 1]`},
		{"bad spec", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"explore","specs":["rows="]}]}]}`,
			`spec "rows="`},
		{"bad kind", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"mystery"}]}]}`,
			`unknown kind "mystery" (want sweep, explore or catalog)`},
		{"duplicate phase", `{"name":"x","phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"catalog"}]},{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"catalog"}]}]}`,
			`phase "p": duplicate phase name`},
		{"bad duration", `{"name":"x","phases":[{"name":"p","mode":"closed","duration":"fast","mix":[{"kind":"catalog"}]}]}`,
			`invalid duration`},
		{"no phases", `{"name":"x","phases":[]}`, `no phases`},
		{"no name", `{"phases":[{"name":"p","mode":"closed","requests":1,"mix":[{"kind":"catalog"}]}]}`,
			`missing name`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("accepted invalid scenario: %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestLoadScenario(t *testing.T) {
	if sc, err := LoadScenario("smoke"); err != nil || sc.Name != "smoke" {
		t.Fatalf("built-in smoke: %v %+v", err, sc)
	}
	if sc, err := LoadScenario("testdata/capacity_probe.json"); err != nil || sc.Name != "capacity-probe" {
		t.Fatalf("file scenario: %v %+v", err, sc)
	}
	_, err := LoadScenario("no-such-scenario")
	if err == nil || !strings.Contains(err.Error(), "built-ins: capacity, chaos, hot-mix, smoke") {
		t.Fatalf("missing-scenario error should list built-ins, got %v", err)
	}
}

// TestScaleDurations confirms scaling only touches durations (counted
// phases keep their deterministic schedules).
func TestScaleDurations(t *testing.T) {
	sc, _ := Builtin("smoke")
	before := sc.ScheduleDigest(1)
	sc.ScaleDurations(0.25)
	if time.Duration(sc.Phases[2].Duration) != 1250*time.Millisecond {
		t.Fatalf("sustain duration = %s", time.Duration(sc.Phases[2].Duration))
	}
	if sc.Phases[0].Requests != 24 {
		t.Fatal("scaling changed a request count")
	}
	// Counted phases dominate the digest prefix; the truncated
	// unbounded phase is unchanged too (same seed, same draws).
	if after := sc.ScheduleDigest(1); after != before {
		t.Fatalf("scaling durations changed the schedule digest: %s -> %s", before, after)
	}
}
