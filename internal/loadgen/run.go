package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"
)

// RunOptions configures one measured run.
type RunOptions struct {
	Scenario *Scenario
	// Seed overrides the scenario's embedded seed when non-zero.
	Seed uint64
	// Target is the base URL traffic is sent to (replica or router).
	Target string
	// Scrape lists base URLs whose /metrics are sampled at every phase
	// boundary; counter deltas are summed across them. Default: the
	// target itself. Behind a router the replicas own the cache
	// counters, so fleet runs list the router plus every replica here.
	Scrape []string
	// Client is the HTTP client; default shares a pooled transport.
	Client *http.Client
	// RequestTimeout bounds one request (default 30s).
	RequestTimeout time.Duration
	// MaxInflight caps open-loop concurrency; arrivals past the cap are
	// counted Dropped instead of queueing (queueing would silently turn
	// the open loop closed). Default 512.
	MaxInflight int
	// Logf, when set, receives one progress line per phase.
	Logf func(format string, args ...any)
}

// Run replays the scenario against the target and returns the measured
// report. The run fails only on harness-level errors (unusable target
// URL, scenario exhausted by ctx cancellation); responses of every
// status are data, not errors.
func Run(ctx context.Context, opts RunOptions) (*Report, error) {
	sc := opts.Scenario
	if sc == nil {
		return nil, fmt.Errorf("loadgen: nil scenario")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = sc.Seed
	}
	if seed == 0 {
		seed = 1
	}
	target := strings.TrimRight(opts.Target, "/")
	if target == "" {
		return nil, fmt.Errorf("loadgen: empty target URL")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	}
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	maxInflight := opts.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 512
	}
	scrape := opts.Scrape
	if len(scrape) == 0 {
		scrape = []string{target}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rep := &Report{
		LoadgenVersion: ReportVersion,
		Scenario:       sc.Name,
		Seed:           seed,
		Target:         target,
		ScheduleDigest: sc.ScheduleDigest(seed),
	}
	ex := &executor{
		client:  client,
		target:  target,
		timeout: timeout,
		etags:   make(map[string]string),
		bodies:  make(map[string]string),
	}

	var totalHist Hist
	var totalDur time.Duration
	for i := range sc.Phases {
		p := &sc.Phases[i]
		before, err := ScrapeCounters(ctx, client, scrape)
		if err != nil {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("phase %s: pre-scrape: %v", p.Name, err))
			before = nil
		}

		pr, err := ex.runPhase(ctx, p, seed, i, maxInflight)
		if err != nil {
			return nil, fmt.Errorf("phase %s: %w", p.Name, err)
		}

		if before != nil {
			after, err := ScrapeCounters(ctx, client, scrape)
			if err != nil {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf("phase %s: post-scrape: %v", p.Name, err))
			} else {
				pr.report.MetricsDelta = deltaCounters(before, after)
			}
		}
		pr.report.PlannedRequests = p.plannedRequests(seed, i)
		rep.Phases = append(rep.Phases, pr.report)
		rep.Totals.Status.add(pr.report.Status)
		totalHist.Merge(&pr.hist)
		totalDur += time.Duration(pr.report.DurationSeconds * float64(time.Second))
		logf("phase %s: %d requests in %.2fs (%.1f rps), p99=%s, errors=%d",
			p.Name, pr.report.Status.Total(), pr.report.DurationSeconds,
			pr.report.AchievedRPS, time.Duration(pr.report.Latency.P99*float64(time.Second)).Round(time.Microsecond),
			pr.report.Status.Errors())
	}

	rep.Totals.Requests = rep.Totals.Status.Total()
	rep.Totals.Latency = summarizeHist(&totalHist, false)
	rep.Totals.ShedRate = rate(rep.Totals.Status.Shed+rep.Totals.Status.Rejected, rep.Totals.Status.Total())
	rep.Totals.StaleRate = rate(rep.Totals.Status.Stale, rep.Totals.Status.Total())
	if s := totalDur.Seconds(); s > 0 {
		rep.Totals.AchievedRPS = math.Round(float64(rep.Totals.Status.Total())/s*100) / 100
	}
	rep.BodyDivergence()
	return rep, nil
}

// BodyDivergence folds per-phase divergence into a totals warning; the
// per-phase counters are already in place, this only audits them.
func (r *Report) BodyDivergence() {
	var n uint64
	for i := range r.Phases {
		n += r.Phases[i].BodyDivergence
	}
	if n > 0 {
		r.Warnings = append(r.Warnings, fmt.Sprintf("%d responses diverged from the first-seen body for their URL", n))
	}
}

// executor holds cross-phase client state: the validator cache (ETags
// learned per URL) and the first-seen body digest per (URL, Accept),
// which catches a replica serving different bytes for the same
// deterministic computation — the consistency invariant the
// content-addressed cache is supposed to guarantee fleet-wide.
type executor struct {
	client  *http.Client
	target  string
	timeout time.Duration

	mu     sync.Mutex
	etags  map[string]string
	bodies map[string]string
}

// phaseResult pairs the JSON-facing report with the mergeable hist.
type phaseResult struct {
	report PhaseReport
	hist   Hist
}

// collector accumulates one phase's measurements.
type collector struct {
	mu     sync.Mutex
	hist   Hist
	counts Counts
	div    uint64
}

func (c *collector) record(d time.Duration, out outcome, diverged bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if diverged {
		c.div++
	}
	switch out {
	case outOK:
		c.counts.OK++
	case outStale:
		c.counts.Stale++
	case outNotModified:
		c.counts.NotModified++
	case outRejected:
		c.counts.Rejected++
	case outShed:
		c.counts.Shed++
	case outTimeout:
		c.counts.Timeout++
	case outClientError:
		c.counts.ClientError++
	case outServerError:
		c.counts.ServerError++
	case outTransportError:
		c.counts.TransportError++
	}
	c.hist.Observe(d)
}

type outcome int

const (
	outOK outcome = iota
	outStale
	outNotModified
	outRejected
	outShed
	outTimeout
	outClientError
	outServerError
	outTransportError
)

func (ex *executor) runPhase(ctx context.Context, p *Phase, seed uint64, idx, maxInflight int) (*phaseResult, error) {
	st := newPhaseStream(p, seed, idx)
	col := &collector{}
	start := time.Now()

	var err error
	if p.Mode == "open" {
		err = ex.runOpen(ctx, p, st, col, start, maxInflight)
	} else {
		err = ex.runClosed(ctx, p, st, col, start)
	}
	if err != nil {
		return nil, err
	}

	elapsed := time.Since(start)
	pr := &phaseResult{hist: col.hist}
	total := col.counts.Total()
	pr.report = PhaseReport{
		Name:            p.Name,
		Mode:            p.Mode,
		Clients:         p.Clients,
		OfferedRPS:      p.describeOffered(),
		DurationSeconds: math.Round(elapsed.Seconds()*1000) / 1000,
		Latency:         summarizeHist(&col.hist, p.Mode == "open"),
		Status:          col.counts,
		ShedRate:        rate(col.counts.Shed+col.counts.Rejected, total),
		StaleRate:       rate(col.counts.Stale, total),
		BodyDivergence:  col.div,
	}
	if s := elapsed.Seconds(); s > 0 {
		pr.report.AchievedRPS = math.Round(float64(total)/s*100) / 100
	}
	return pr, nil
}

// runClosed drives Clients workers, each holding at most one request
// open, pulling from the shared deterministic stream until the stream
// (counted) or the deadline (duration-bounded) ends the phase.
func (ex *executor) runClosed(ctx context.Context, p *Phase, st *phaseStream, col *collector, start time.Time) error {
	var deadline time.Time
	if p.Duration > 0 {
		deadline = start.Add(time.Duration(p.Duration))
	}
	var streamMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < p.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				streamMu.Lock()
				req, ok := st.next()
				streamMu.Unlock()
				if !ok {
					return
				}
				t0 := time.Now()
				out, div := ex.do(ctx, req)
				col.record(time.Since(t0), out, div)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// runOpen fires requests at their scheduled arrival offsets regardless
// of completions. Latency is measured from the *scheduled* arrival, not
// the actual send — the coordinated-omission correction: when the
// target (or the harness) stalls, the queueing delay a punctual client
// would have suffered stays in the numbers instead of vanishing.
func (ex *executor) runOpen(ctx context.Context, p *Phase, st *phaseStream, col *collector, start time.Time, maxInflight int) error {
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	var dropped uint64
	var droppedMu sync.Mutex
	for {
		req, ok := st.next()
		if !ok {
			break
		}
		scheduled := start.Add(req.At)
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		default:
			droppedMu.Lock()
			dropped++
			droppedMu.Unlock()
			continue
		}
		wg.Add(1)
		go func(req Req, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			out, div := ex.do(ctx, req)
			col.record(time.Since(scheduled), out, div)
		}(req, scheduled)
	}
	wg.Wait()
	col.mu.Lock()
	col.counts.Dropped = dropped
	col.mu.Unlock()
	return ctx.Err()
}

// do executes one planned request and classifies the response. The
// second return reports body divergence: a 200 whose bytes differ from
// the first-seen body for the same (URL, Accept) — the response still
// counts as OK in the taxonomy (the server answered), divergence has
// its own counter so the consistency check doesn't hide in errors.
func (ex *executor) do(ctx context.Context, req Req) (outcome, bool) {
	rctx, cancel := context.WithTimeout(ctx, ex.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodGet, ex.target+req.Path, nil)
	if err != nil {
		return outTransportError, false
	}
	if req.Accept != "" {
		hreq.Header.Set("Accept", req.Accept)
	}
	if req.Reval {
		ex.mu.Lock()
		etag := ex.etags[req.Path]
		ex.mu.Unlock()
		if etag != "" {
			hreq.Header.Set("If-None-Match", etag)
		}
	}
	resp, err := ex.client.Do(hreq)
	if err != nil {
		return outTransportError, false
	}
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close() //nolint:errcheck
	if readErr != nil {
		return outTransportError, false
	}
	return ex.classify(req, resp, body)
}

func (ex *executor) classify(req Req, resp *http.Response, body []byte) (outcome, bool) {
	switch {
	case resp.StatusCode == http.StatusOK:
		stale := resp.Header.Get("X-Seda-Stale") != ""
		diverged := false
		ex.mu.Lock()
		if etag := resp.Header.Get("ETag"); etag != "" {
			ex.etags[req.Path] = etag
		}
		if !stale {
			// First-seen body digest per (URL, Accept): deterministic
			// computation means later 200s must serve identical bytes.
			key := req.Path + "\x00" + req.Accept
			sum := sha256.Sum256(body)
			digest := hex.EncodeToString(sum[:])
			if prev, ok := ex.bodies[key]; !ok {
				ex.bodies[key] = digest
			} else if prev != digest {
				diverged = true
			}
		}
		ex.mu.Unlock()
		if stale {
			return outStale, false
		}
		return outOK, diverged
	case resp.StatusCode == http.StatusNotModified:
		return outNotModified, false
	case resp.StatusCode == http.StatusTooManyRequests:
		return outRejected, false
	case resp.StatusCode == http.StatusServiceUnavailable:
		return outShed, false
	case resp.StatusCode == http.StatusGatewayTimeout:
		return outTimeout, false
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return outClientError, false
	default:
		return outServerError, false
	}
}
