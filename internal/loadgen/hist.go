package loadgen

import (
	"math"
	"time"
)

// Hist is an HDR-style log-bucketed latency histogram: geometric
// buckets growing by 2^(1/8) (~9.05%) from 1µs, 8 sub-buckets per
// octave across 30 octaves (1µs .. ~17.9min) — 241 fixed buckets, so
// recording is O(1), merging is element-wise, and any quantile is
// reported with bounded ~9% relative error (the bucket's upper bound
// is returned, so reported percentiles never understate latency).
// Not safe for concurrent use; the executor merges per-worker copies
// under the collector lock.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    time.Duration
	max    time.Duration
}

const (
	histMin        = time.Microsecond
	histSubBuckets = 8   // per octave: resolution factor 2^(1/8)
	histOctaves    = 30  // 1µs * 2^30 ≈ 17.9 min full scale
	histBuckets    = histOctaves*histSubBuckets + 1
)

// bucketIndex maps a latency to its bucket: 0 holds everything ≤ 1µs,
// then index = 1 + floor(8·log2(d/1µs)), clamped at the top.
func bucketIndex(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := 1 + int(math.Floor(float64(histSubBuckets)*math.Log2(float64(d)/float64(histMin))))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's upper latency bound.
func bucketBound(i int) time.Duration {
	if i <= 0 {
		return histMin
	}
	return time.Duration(float64(histMin) * math.Pow(2, float64(i)/float64(histSubBuckets)))
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact mean (the sum is kept at full resolution).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the exact maximum observation.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile returns the latency at quantile q in [0, 1]: the upper
// bound of the bucket holding the rank-⌈q·count⌉ observation (q=1
// returns the exact max). Zero observations return 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			b := bucketBound(i)
			if b > h.max {
				return h.max // the top occupied bucket's bound can overshoot
			}
			return b
		}
	}
	return h.max
}
