package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

// ReportVersion is bumped whenever the report schema changes shape, so
// BENCH_SERVE.json rows name the schema they were produced under.
const ReportVersion = "1"

// Counts is the response taxonomy. Every finished request lands in
// exactly one bucket; Errors() is the "client-visible failure" rollup
// the chaos assertions use (shed and rejected are flow control — the
// server answered honestly — and stale is a degraded success).
type Counts struct {
	OK             uint64 `json:"ok"`              // 200 without a stale marker
	Stale          uint64 `json:"stale"`           // 200 with X-Seda-Stale (degraded tier)
	NotModified    uint64 `json:"not_modified"`    // 304 revalidation
	Rejected       uint64 `json:"rejected"`        // 429 admission control
	Shed           uint64 `json:"shed"`            // 503 capacity/availability shed
	Timeout        uint64 `json:"timeout"`         // 504 deadline
	ClientError    uint64 `json:"client_error"`    // other 4xx
	ServerError    uint64 `json:"server_error"`    // other 5xx
	TransportError uint64 `json:"transport_error"` // connect/read failures
	Dropped        uint64 `json:"dropped"`         // open loop: harness inflight cap hit
}

// Total counts every finished request (dropped ones never ran).
func (c Counts) Total() uint64 {
	return c.OK + c.Stale + c.NotModified + c.Rejected + c.Shed +
		c.Timeout + c.ClientError + c.ServerError + c.TransportError
}

// Errors is the client-visible failure rollup: hard errors only.
func (c Counts) Errors() uint64 {
	return c.Timeout + c.ClientError + c.ServerError + c.TransportError
}

func (c *Counts) add(o Counts) {
	c.OK += o.OK
	c.Stale += o.Stale
	c.NotModified += o.NotModified
	c.Rejected += o.Rejected
	c.Shed += o.Shed
	c.Timeout += o.Timeout
	c.ClientError += o.ClientError
	c.ServerError += o.ServerError
	c.TransportError += o.TransportError
	c.Dropped += o.Dropped
}

// LatencySummary is the report shape of one histogram. Values are
// seconds rounded to the microsecond, matching the histogram's floor
// resolution, so reports are stable to re-marshal.
type LatencySummary struct {
	Unit      string  `json:"unit"` // always "seconds"
	Count     uint64  `json:"count"`
	Mean      float64 `json:"mean"`
	P50       float64 `json:"p50"`
	P90       float64 `json:"p90"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
	Max       float64 `json:"max"`
	Corrected bool    `json:"coordinated_omission_corrected"`
}

func summarizeHist(h *Hist, corrected bool) LatencySummary {
	sec := func(d time.Duration) float64 {
		return math.Round(d.Seconds()*1e6) / 1e6
	}
	return LatencySummary{
		Unit:      "seconds",
		Count:     h.Count(),
		Mean:      sec(h.Mean()),
		P50:       sec(h.Quantile(0.50)),
		P90:       sec(h.Quantile(0.90)),
		P95:       sec(h.Quantile(0.95)),
		P99:       sec(h.Quantile(0.99)),
		Max:       sec(h.Max()),
		Corrected: corrected,
	}
}

// PhaseReport is one phase's measured outcome.
type PhaseReport struct {
	Name    string `json:"name"`
	Mode    string `json:"mode"`
	Clients int    `json:"clients,omitempty"`
	// PlannedRequests is the deterministic schedule size (0 when the
	// phase is bounded by wall clock in closed loop).
	PlannedRequests int     `json:"planned_requests,omitempty"`
	OfferedRPS      float64 `json:"offered_rps,omitempty"` // open loop
	DurationSeconds float64 `json:"duration_seconds"`
	AchievedRPS     float64 `json:"achieved_rps"`

	Latency        LatencySummary `json:"latency"`
	Status         Counts         `json:"status"`
	ShedRate       float64        `json:"shed_rate"`  // (shed+rejected)/total, client-observed
	StaleRate      float64        `json:"stale_rate"` // stale/total, client-observed
	BodyDivergence uint64         `json:"body_divergence"`

	// MetricsDelta holds per-counter-family deltas (after − before)
	// summed over every scraped /metrics endpoint, attributing cache
	// hits, disk hits, coalesced waits, fresh computes, sheds and
	// router failovers to exactly this phase's traffic.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
}

// Summary aggregates the whole run.
type Summary struct {
	Requests    uint64         `json:"requests"`
	AchievedRPS float64        `json:"achieved_rps"`
	Latency     LatencySummary `json:"latency"`
	Status      Counts         `json:"status"`
	ShedRate    float64        `json:"shed_rate"`
	StaleRate   float64        `json:"stale_rate"`
}

// Report is the machine-readable outcome of one run (or plan).
type Report struct {
	LoadgenVersion string        `json:"loadgen_version"`
	Scenario       string        `json:"scenario"`
	Seed           uint64        `json:"seed"`
	Target         string        `json:"target,omitempty"`
	Plan           bool          `json:"plan,omitempty"`
	ScheduleDigest string        `json:"schedule_digest"`
	Phases         []PhaseReport `json:"phases"`
	Totals         Summary       `json:"totals"`
	Search         *SearchReport `json:"search,omitempty"`
	Warnings       []string      `json:"warnings,omitempty"`
}

// WriteJSON writes the report with stable formatting (two-space
// indent, sorted map keys via encoding/json) plus a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func rate(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return math.Round(float64(part)/float64(total)*1e6) / 1e6
}

// Plan builds the deterministic, execution-free report for (scenario,
// seed): phase shapes, planned request counts and the schedule digest,
// with every timing field zero. Same inputs → byte-identical JSON.
func Plan(sc *Scenario, seed uint64) *Report {
	rep := &Report{
		LoadgenVersion: ReportVersion,
		Scenario:       sc.Name,
		Seed:           seed,
		Plan:           true,
		ScheduleDigest: sc.ScheduleDigest(seed),
	}
	for i := range sc.Phases {
		p := &sc.Phases[i]
		pr := PhaseReport{
			Name:            p.Name,
			Mode:            p.Mode,
			Clients:         p.Clients,
			PlannedRequests: p.plannedRequests(seed, i),
			OfferedRPS:      p.describeOffered(),
			Latency:         LatencySummary{Unit: "seconds", Corrected: p.Mode == "open"},
		}
		rep.Phases = append(rep.Phases, pr)
	}
	rep.Totals.Latency = LatencySummary{Unit: "seconds"}
	return rep
}

// ScrapeCounters fetches every endpoint's /metrics through the strict
// exposition parser and returns counter-family totals summed across
// endpoints and label sets. Endpoints are base URLs; the /metrics path
// is appended. One unreachable or malformed endpoint fails the scrape
// — a capacity report attributing deltas to half a fleet would lie.
func ScrapeCounters(ctx context.Context, client *http.Client, endpoints []string) (map[string]float64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	totals := make(map[string]float64)
	for _, ep := range endpoints {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/metrics", nil)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", ep, err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", ep, err)
		}
		fams, perr := obs.ParseProm(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scrape %s: status %d", ep, resp.StatusCode)
		}
		if perr != nil {
			return nil, fmt.Errorf("scrape %s: %w", ep, perr)
		}
		for name, v := range obs.CounterTotals(fams) {
			totals[name] += v
		}
	}
	return totals, nil
}

// deltaCounters returns after−before for every family present in
// after, dropping zero deltas (idle families are noise in a report).
func deltaCounters(before, after map[string]float64) map[string]float64 {
	d := make(map[string]float64)
	for name, v := range after {
		if dv := v - before[name]; dv != 0 {
			d[name] = dv
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// BenchRow is one BENCH_SERVE.json topology row: the measured capacity
// shape of one serving topology under one scenario, the trajectory
// format next to BENCH_PIPELINE.json.
type BenchRow struct {
	Topology    string  `json:"topology"`
	Scenario    string  `json:"scenario"`
	Seed        uint64  `json:"seed"`
	Phase       string  `json:"phase"` // the phase the row's numbers come from
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// Rates attributed from the /metrics counter deltas of the row's
	// phase: hit rate over cache lookups (memory + disk hits over
	// lookups incl. fresh computes), shed and stale rates over client
	// requests.
	HitRate   float64 `json:"hit_rate"`
	ShedRate  float64 `json:"shed_rate"`
	StaleRate float64 `json:"stale_rate"`
	Errors    uint64  `json:"errors"`
	// MaxSustainableRPS is filled when the step-load SLO search ran.
	MaxSustainableRPS float64 `json:"max_sustainable_rps,omitempty"`
	SLO               string  `json:"slo,omitempty"`
	Note              string  `json:"note,omitempty"`
}

// Row derives the bench row for one phase (by name; "" = last phase).
func (r *Report) Row(topology, phase, note string) (BenchRow, error) {
	if len(r.Phases) == 0 {
		return BenchRow{}, fmt.Errorf("report has no phases")
	}
	pr := &r.Phases[len(r.Phases)-1]
	if phase != "" {
		pr = nil
		for i := range r.Phases {
			if r.Phases[i].Name == phase {
				pr = &r.Phases[i]
			}
		}
		if pr == nil {
			return BenchRow{}, fmt.Errorf("no phase %q in the report", phase)
		}
	}
	md := pr.MetricsDelta
	hits := md["seda_cache_hits_total"] + md["seda_cache_disk_hits_total"]
	lookups := hits + md["seda_cache_misses_total"]
	row := BenchRow{
		Topology:    topology,
		Scenario:    r.Scenario,
		Seed:        r.Seed,
		Phase:       pr.Name,
		OfferedRPS:  pr.OfferedRPS,
		AchievedRPS: pr.AchievedRPS,
		P50Seconds:  pr.Latency.P50,
		P95Seconds:  pr.Latency.P95,
		P99Seconds:  pr.Latency.P99,
		ShedRate:    pr.ShedRate,
		StaleRate:   pr.StaleRate,
		Errors:      pr.Status.Errors(),
		Note:        note,
	}
	if lookups > 0 {
		row.HitRate = math.Round(hits/lookups*1e6) / 1e6
	}
	if r.Search != nil {
		row.MaxSustainableRPS = r.Search.MaxSustainableRPS
		row.SLO = r.Search.SLO
	}
	return row, nil
}

// benchFile is the BENCH_SERVE.json document shape.
type benchFile struct {
	Description string            `json:"description"`
	Environment map[string]any    `json:"environment,omitempty"`
	Rows        map[string]BenchRow `json:"rows"`
}

// UpsertBenchRow inserts or replaces the labeled row in the bench file
// at path, creating the file (with the given description) when absent.
// Rows marshal under sorted labels, so the file diffs cleanly.
func UpsertBenchRow(path, label, description string, env map[string]any, row BenchRow) error {
	doc := benchFile{Rows: map[string]BenchRow{}}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if doc.Description == "" {
		doc.Description = description
	}
	if env != nil {
		doc.Environment = env
	}
	if doc.Rows == nil {
		doc.Rows = map[string]BenchRow{}
	}
	doc.Rows[label] = row
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
