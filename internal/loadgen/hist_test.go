package loadgen

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
	"time"
)

// TestHistQuantileBoundedError pins the histogram's accuracy contract:
// a reported quantile never understates the true one and overstates it
// by at most one bucket (~9.05%).
func TestHistQuantileBoundedError(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var h Hist
	var samples []time.Duration
	for i := 0; i < 10000; i++ {
		// Log-uniform over 10µs .. 1s: exercises many octaves.
		d := time.Duration(float64(10*time.Microsecond) * math.Pow(1e5, rng.Float64()))
		samples = append(samples, d)
		h.Observe(d)
	}
	sortDur(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q%v: reported %s understates exact %s", q, got, exact)
		}
		if ratio := float64(got) / float64(exact); ratio > 1.10 {
			t.Fatalf("q%v: reported %s overstates exact %s by %.1f%%", q, got, exact, (ratio-1)*100)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 %s != max %s", h.Quantile(1), h.Max())
	}
}

func sortDur(d []time.Duration) { slices.Sort(d) }

func TestHistMergeAndMean(t *testing.T) {
	var a, b, whole Hist
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d mean %s/%s max %s/%s",
			a.Count(), whole.Count(), a.Mean(), whole.Mean(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%v: merged %s vs whole %s", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if whole.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean %s, want 50.5ms exactly", whole.Mean())
	}
}

func TestHistEdges(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamped to 0
	h.Observe(0)
	h.Observe(time.Nanosecond)
	if h.Quantile(0.99) > time.Microsecond {
		t.Fatalf("sub-microsecond observations land in bucket 0, got %s", h.Quantile(0.99))
	}
	h.Observe(24 * time.Hour) // beyond full scale: clamped to top bucket
	if h.Max() != 24*time.Hour {
		t.Fatalf("max must stay exact: %s", h.Max())
	}
	if h.Quantile(1) != 24*time.Hour {
		t.Fatalf("q1 %s", h.Quantile(1))
	}
	// Quantile caps at the observed max even when the top bucket's
	// bound overshoots it.
	if q := h.Quantile(0.99); q > 24*time.Hour {
		t.Fatalf("quantile overshot max: %s", q)
	}
}

func TestBucketMonotonic(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if bucketBound(i) <= bucketBound(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %s <= %s", i, bucketBound(i), bucketBound(i-1))
		}
	}
	// A value placed in bucket i must satisfy bound(i-1) < v <= ~bound(i).
	for _, d := range []time.Duration{time.Microsecond, 5 * time.Microsecond, time.Millisecond, 17 * time.Millisecond, time.Second, 90 * time.Second} {
		i := bucketIndex(d)
		if i > 0 && bucketBound(i-1) > d {
			t.Fatalf("%s placed in bucket %d but lower bound is %s", d, i, bucketBound(i-1))
		}
	}
}
