package core

import (
	"bytes"
	"testing"
)

const (
	bsDataAddr = uint64(0x1_0000)
	bsMACAddr  = uint64(0x9_0000)
)

func writeBlocked(t *testing.T, u *Unit, id FmapID, data []byte, blk int) {
	t.Helper()
	if err := u.WriteFmapWithBlockMACs(id, bsDataAddr, bsMACAddr, data, blk); err != nil {
		t.Fatal(err)
	}
}

func TestBlockVerifiedRoundTrip(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 1, Fmap: 0}
	data := randData(21, 4*256)
	writeBlocked(t, u, id, data, 256)

	for blk := 0; blk < 4; blk++ {
		got, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, uint32(blk), 256, 256)
		if err != nil {
			t.Fatalf("block %d: %v", blk, err)
		}
		if !bytes.Equal(got, data[blk*256:(blk+1)*256]) {
			t.Fatalf("block %d plaintext mismatch", blk)
		}
	}
}

func TestBlockVerifiedShortFinalBlock(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 2, Fmap: 0}
	data := randData(22, 256+100) // final block is 100 bytes
	writeBlocked(t, u, id, data, 256)

	got, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 1, 256, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[256:]) {
		t.Fatal("short final block mismatch")
	}
}

func TestBlockVerifiedDetectsDataTamper(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 3, Fmap: 0}
	data := randData(23, 4*256)
	writeBlocked(t, u, id, data, 256)

	u.Memory().Corrupt(bsDataAddr+256+5, 0x10) // inside block 1
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 1, 256, 256); err == nil {
		t.Fatal("tampered block passed immediate verification")
	}
	// Untouched blocks still verify: detection is block-precise.
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 0, 256, 256); err != nil {
		t.Fatalf("clean block rejected: %v", err)
	}
}

func TestBlockVerifiedDetectsMACStoreTamper(t *testing.T) {
	// The MAC store itself is in untrusted memory; corrupting it must
	// fail verification, not forge acceptance.
	u := newUnit(t)
	id := FmapID{Layer: 4, Fmap: 0}
	data := randData(24, 2*256)
	writeBlocked(t, u, id, data, 256)

	u.Memory().Corrupt(bsMACAddr+8+3, 0xff) // block 1's stored MAC
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 1, 256, 256); err == nil {
		t.Fatal("tampered off-chip MAC accepted")
	}
}

func TestBlockVerifiedDetectsBlockSwap(t *testing.T) {
	// Swapping two blocks and their MACs together still fails: the
	// MACs bind PA and blk_idx.
	u := newUnit(t)
	id := FmapID{Layer: 5, Fmap: 0}
	data := randData(25, 2*256)
	writeBlocked(t, u, id, data, 256)

	u.Memory().SwapRegions(bsDataAddr, bsDataAddr+256, 256)
	u.Memory().SwapRegions(bsMACAddr, bsMACAddr+8, 8)
	for blk := uint32(0); blk < 2; blk++ {
		if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, blk, 256, 256); err == nil {
			t.Fatalf("swapped block %d accepted despite position binding", blk)
		}
	}
}

func TestBlockVerifiedReplayDetected(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 6, Fmap: 0}
	v1 := randData(26, 256)
	writeBlocked(t, u, id, v1, 256)
	staleData := u.Memory().Snapshot(bsDataAddr, 256)
	staleMAC := u.Memory().Snapshot(bsMACAddr, 8)

	v2 := randData(27, 256)
	writeBlocked(t, u, id, v2, 256)

	// Replay both the old ciphertext and its matching old MAC.
	u.Memory().Replay(bsDataAddr, staleData)
	u.Memory().Replay(bsMACAddr, staleMAC)
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 0, 256, 256); err == nil {
		t.Fatal("replayed (data, MAC) pair accepted: VN binding broken")
	}
}

func TestBlockVerifiedLayerMACStillMaintained(t *testing.T) {
	// The block-MAC write path also keeps the layer aggregate, so the
	// layer-level read path works on the same fmap.
	u := newUnit(t)
	id := FmapID{Layer: 7, Fmap: 0}
	data := randData(28, 4*128)
	writeBlocked(t, u, id, data, 128)
	got, err := u.ReadFmap(id, bsDataAddr, len(data), 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("layer-level read of block-MAC fmap mismatched")
	}
}

func TestBlockVerifiedGeometryErrors(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 8, Fmap: 0}
	writeBlocked(t, u, id, randData(29, 256), 256)
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 0, 0, 10); err == nil {
		t.Error("optBlk 0 accepted")
	}
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 0, 256, 300); err == nil {
		t.Error("n > optBlk accepted")
	}
	if _, err := u.ReadBlockVerified(id, bsDataAddr, bsMACAddr, 9, 256, 256); err == nil {
		t.Error("unwritten block accepted")
	}
	if err := u.WriteFmapWithBlockMACs(id, bsDataAddr, bsMACAddr, []byte{1}, -5); err == nil {
		t.Error("negative optBlk accepted on write")
	}
}
