package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	encKey = []byte("0123456789abcdef")
	macKey = []byte("integ-engine-key")
)

func newUnit(t *testing.T) *Unit {
	t.Helper()
	u, err := NewUnit(encKey, macKey, NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func randData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b) //nolint:errcheck
	return b
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	data := randData(1, 10000) // spans pages
	m.Write(123, data)
	got := m.Read(123, len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("read != write across pages")
	}
	// Unwritten regions read as zero.
	z := m.Read(1<<40, 64)
	for _, b := range z {
		if b != 0 {
			t.Fatal("unwritten memory nonzero")
		}
	}
}

func TestMemoryCorrupt(t *testing.T) {
	m := NewMemory()
	m.Write(0, []byte{0xaa})
	m.Corrupt(0, 0xff)
	if got := m.Read(0, 1)[0]; got != 0x55 {
		t.Errorf("corrupted byte = %#x, want 0x55", got)
	}
}

func TestMemorySwapRegions(t *testing.T) {
	m := NewMemory()
	m.Write(0, []byte("aaaa"))
	m.Write(100, []byte("bbbb"))
	m.SwapRegions(0, 100, 4)
	if string(m.Read(0, 4)) != "bbbb" || string(m.Read(100, 4)) != "aaaa" {
		t.Error("swap failed")
	}
}

func TestRoundTrip(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 3, Fmap: 0}
	data := randData(2, 4096)
	if err := u.WriteFmap(id, 0x1000, data, 512); err != nil {
		t.Fatal(err)
	}
	got, err := u.ReadFmap(id, 0x1000, len(data), 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decrypted data differs from plaintext")
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 0, Fmap: 0}
	data := randData(3, 1024)
	u.WriteFmap(id, 0, data, 256) //nolint:errcheck
	ct := u.Memory().Read(0, len(data))
	if bytes.Equal(ct, data) {
		t.Fatal("memory holds plaintext")
	}
	// No 16-byte segment should leak through unencrypted.
	for off := 0; off+16 <= len(data); off += 16 {
		if bytes.Equal(ct[off:off+16], data[off:off+16]) {
			t.Fatalf("segment at %d unencrypted", off)
		}
	}
}

func TestDetectsSingleBitTamper(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 1, Fmap: 2}
	data := randData(4, 2048)
	u.WriteFmap(id, 0x4000, data, 512) //nolint:errcheck
	u.Memory().Corrupt(0x4000+777, 0x01)
	if _, err := u.ReadFmap(id, 0x4000, len(data), 512); err == nil {
		t.Fatal("single-bit tamper not detected")
	}
}

func TestDetectsEveryBlockPosition(t *testing.T) {
	// Tamper each block in turn; detection must fire for all of them.
	for blk := 0; blk < 8; blk++ {
		u := newUnit(t)
		id := FmapID{Layer: 0, Fmap: 0}
		data := randData(int64(blk), 8*256)
		u.WriteFmap(id, 0, data, 256) //nolint:errcheck
		u.Memory().Corrupt(uint64(blk*256), 0x80)
		if _, err := u.ReadFmap(id, 0, len(data), 256); err == nil {
			t.Fatalf("tamper in block %d not detected", blk)
		}
	}
}

func TestDetectsBlockSwapRePA(t *testing.T) {
	// The RePA defense: swapping two ciphertext blocks leaves a naive
	// XOR-MAC unchanged but must change the position-bound aggregate.
	u := newUnit(t)
	id := FmapID{Layer: 5, Fmap: 1}
	data := randData(6, 4*512)
	u.WriteFmap(id, 0x8000, data, 512) //nolint:errcheck
	u.Memory().SwapRegions(0x8000, 0x8000+512, 512)
	if _, err := u.ReadFmap(id, 0x8000, len(data), 512); err == nil {
		t.Fatal("block swap (RePA) not detected")
	}
}

func TestDetectsReplayOfStaleBlock(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 2, Fmap: 0}
	v1 := randData(7, 1024)
	u.WriteFmap(id, 0, v1, 256) //nolint:errcheck
	stale := u.Memory().Snapshot(0, 256)

	v2 := randData(8, 1024)
	u.WriteFmap(id, 0, v2, 256) //nolint:errcheck
	u.Memory().Replay(0, stale)

	if _, err := u.ReadFmap(id, 0, len(v2), 256); err == nil {
		t.Fatal("replayed stale block not detected (VN binding broken)")
	}
}

func TestRewriteSameDataChangesCiphertext(t *testing.T) {
	// VN increments on every write, so identical plaintext encrypts
	// differently across writes (no deterministic leakage).
	u := newUnit(t)
	id := FmapID{Layer: 0, Fmap: 0}
	data := randData(9, 512)
	u.WriteFmap(id, 0, data, 512) //nolint:errcheck
	ct1 := u.Memory().Snapshot(0, 512)
	u.WriteFmap(id, 0, data, 512) //nolint:errcheck
	ct2 := u.Memory().Snapshot(0, 512)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("rewrite produced identical ciphertext")
	}
	got, err := u.ReadFmap(id, 0, 512, 512)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rewrite: %v", err)
	}
}

func TestReadUnwrittenFmapFails(t *testing.T) {
	u := newUnit(t)
	if _, err := u.ReadFmap(FmapID{Layer: 9}, 0, 64, 64); err == nil {
		t.Fatal("read of unwritten fmap succeeded")
	}
}

func TestBadOptBlkRejected(t *testing.T) {
	u := newUnit(t)
	if err := u.WriteFmap(FmapID{}, 0, []byte{1}, 0); err == nil {
		t.Error("optBlk 0 accepted on write")
	}
	u.WriteFmap(FmapID{}, 0, []byte{1}, 64) //nolint:errcheck
	if _, err := u.ReadFmap(FmapID{}, 0, 1, -1); err == nil {
		t.Error("optBlk -1 accepted on read")
	}
}

func TestNewUnitValidation(t *testing.T) {
	if _, err := NewUnit([]byte("short"), macKey, NewMemory()); err == nil {
		t.Error("bad enc key accepted")
	}
	if _, err := NewUnit(encKey, nil, NewMemory()); err == nil {
		t.Error("empty mac key accepted")
	}
}

func TestModelMACSealAndVerify(t *testing.T) {
	u := newUnit(t)
	type placement struct {
		addr   uint64
		n, blk int
	}
	place := map[FmapID]placement{
		{Layer: 0, Fmap: 100}: {0x0000, 2048, 512},
		{Layer: 1, Fmap: 100}: {0x2000, 1024, 256},
		{Layer: 2, Fmap: 100}: {0x4000, 4096, 512},
	}
	for id, p := range place {
		u.WriteFmap(id, p.addr, randData(int64(id.Layer), p.n), p.blk) //nolint:errcheck
		if err := u.SealFmap(id); err != nil {
			t.Fatal(err)
		}
	}
	fetch := func(id FmapID) (uint64, int, int) {
		p := place[id]
		return p.addr, p.n, p.blk
	}
	if err := u.VerifyModel(fetch); err != nil {
		t.Fatalf("clean model failed verification: %v", err)
	}
	// Tamper one weight byte: model MAC must catch it.
	u.Memory().Corrupt(0x2000+100, 0x40)
	if err := u.VerifyModel(fetch); err == nil {
		t.Fatal("weight tamper not detected by model MAC")
	}
}

func TestSealTwiceFails(t *testing.T) {
	u := newUnit(t)
	id := FmapID{Layer: 0, Fmap: 7}
	u.WriteFmap(id, 0, []byte("weights!"), 64) //nolint:errcheck
	if err := u.SealFmap(id); err != nil {
		t.Fatal(err)
	}
	if err := u.SealFmap(id); err == nil {
		t.Error("double seal accepted")
	}
	if err := u.SealFmap(FmapID{Layer: 42}); err == nil {
		t.Error("sealing unwritten fmap accepted")
	}
}

func TestIntegrityErrorMessages(t *testing.T) {
	e := &IntegrityError{Fmap: FmapID{Layer: 3, Fmap: 1}, Got: 1, Want: 2}
	if e.Error() == "" {
		t.Error("empty error message")
	}
	me := &IntegrityError{Model: true, Got: 1, Want: 2}
	if me.Error() == e.Error() {
		t.Error("model and layer errors indistinguishable")
	}
}

func TestRoundTripProperty(t *testing.T) {
	u := newUnit(t)
	f := func(seed int64, sizeHint uint16, blkHint uint8) bool {
		n := int(sizeHint)%4096 + 1
		blk := 64 << (blkHint % 4) // 64..512
		id := FmapID{Layer: uint32(seed & 0xff), Fmap: uint32(sizeHint)}
		data := randData(seed, n)
		addr := uint64(sizeHint) * 8192
		if err := u.WriteFmap(id, addr, data, blk); err != nil {
			return false
		}
		got, err := u.ReadFmap(id, addr, n, blk)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGranularityTable(t *testing.T) {
	rows := GranularityTable()
	if len(rows) != 3 {
		t.Fatalf("Table I has %d rows, want 3", len(rows))
	}
	want := []string{"optBlk", "layer", "model"}
	for i, r := range rows {
		if r.Granularity != want[i] {
			t.Errorf("row %d = %q, want %q", i, r.Granularity, want[i])
		}
		if r.Flexibility == "" || r.OffChipAccess == "" || r.Storage == "" {
			t.Errorf("row %d incomplete: %+v", i, r)
		}
	}
}
