package core

import (
	"fmt"

	"repro/internal/sha256x"
	"repro/internal/xormac"
)

// This file implements the optBlk level of the multi-level integrity
// mechanism (Table I, row 1): per-block MACs stored *off-chip* in
// untrusted memory, verified immediately as each block arrives. The
// MACs are keyed, and freshness comes from the on-chip version
// numbers, so the attacker gains nothing from tampering with the MAC
// store itself. Compared to the layer-MAC path (ReadFmap), this mode
// trades metadata traffic for verification latency: each block's
// verdict is available at fetch time rather than at the layer
// boundary.

// WriteFmapWithBlockMACs encrypts data at optBlk granularity like
// WriteFmap and additionally stores each block's position-bound MAC at
// macAddr + 8*blkIdx in untrusted memory. The layer MAC is maintained
// as well, so both verification levels remain available.
func (u *Unit) WriteFmapWithBlockMACs(id FmapID, addr, macAddr uint64, data []byte, optBlk int) error {
	if optBlk <= 0 {
		return fmt.Errorf("core: optBlk %d must be positive", optBlk)
	}
	lm := &xormac.LayerMAC{LayerID: id.Layer}
	for off := 0; off < len(data); off += optBlk {
		end := off + optBlk
		if end > len(data) {
			end = len(data)
		}
		blkIdx := uint32(off / optBlk)
		key := blockKey{id: id, blk: blkIdx}
		u.vns[key]++
		vn := u.vns[key]
		blkAddr := addr + uint64(off)

		ct := make([]byte, end-off)
		u.crypt.XORSegments(ct, data[off:end], counterFor(blkAddr, vn))
		u.mem.Write(blkAddr, ct)

		mac := xormac.BlockMAC(u.macKey, ct, u.blockPos(id, blkAddr, blkIdx, vn))
		mb := mac.Bytes()
		u.mem.Write(macAddr+uint64(blkIdx)*sha256x.MACSize, mb[:])
		lm.Agg.Add(mac)
	}
	u.layerMACs[id] = lm
	return nil
}

// ReadBlockVerified fetches a single optBlk block (blkIdx) of an fmap
// written with WriteFmapWithBlockMACs, verifies it against its
// off-chip MAC immediately, and returns the decrypted plaintext. n is
// the block's length (the final block of an fmap may be short).
func (u *Unit) ReadBlockVerified(id FmapID, addr, macAddr uint64, blkIdx uint32, optBlk, n int) ([]byte, error) {
	if optBlk <= 0 || n <= 0 || n > optBlk {
		return nil, fmt.Errorf("core: bad block read geometry optBlk=%d n=%d", optBlk, n)
	}
	key := blockKey{id: id, blk: blkIdx}
	vn, ok := u.vns[key]
	if !ok || vn == 0 {
		return nil, fmt.Errorf("core: block %d of fmap %+v never written", blkIdx, id)
	}
	blkAddr := addr + uint64(blkIdx)*uint64(optBlk)
	ct := u.mem.Read(blkAddr, n)

	want := u.mem.Read(macAddr+uint64(blkIdx)*sha256x.MACSize, sha256x.MACSize)
	got := xormac.BlockMAC(u.macKey, ct, u.blockPos(id, blkAddr, blkIdx, vn))
	gb := got.Bytes()
	for i := 0; i < sha256x.MACSize; i++ {
		if gb[i] != want[i] {
			return nil, &IntegrityError{Fmap: id, Got: got, Want: macFromBytes(want)}
		}
	}
	out := make([]byte, n)
	u.crypt.XORSegments(out, ct, counterFor(blkAddr, vn))
	return out, nil
}

func macFromBytes(b []byte) sha256x.MAC {
	var v uint64
	for i := 0; i < sha256x.MACSize && i < len(b); i++ {
		v = v<<8 | uint64(b[i])
	}
	return sha256x.MAC(v)
}
