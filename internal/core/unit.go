package core

import (
	"fmt"

	"repro/internal/aesx"
	"repro/internal/sha256x"
	"repro/internal/xormac"
)

// FmapID names a feature map: the (layer, fmap) pair bound into every
// optBlk MAC (Algorithm 2, defense).
type FmapID struct {
	Layer uint32
	Fmap  uint32
}

// Unit is the SeDA protection unit: one B-AES crypt engine, one integ
// engine with multi-level MAC state, and the on-chip (trusted) version
// numbers, layer MACs and model MAC. Everything else lives in the
// untrusted Memory.
type Unit struct {
	crypt  *aesx.BAES
	macKey []byte
	mem    *Memory

	// On-chip state (TCB). Version numbers are generated MGX/TNPU
	// style from model state and never leave the chip.
	vns       map[blockKey]uint64
	layerMACs map[FmapID]*xormac.LayerMAC
	modelMAC  *xormac.ModelMAC
	sealed    map[FmapID]sha256x.MAC // layer MACs folded into the model MAC
}

type blockKey struct {
	id  FmapID
	blk uint32
}

// NewUnit builds a protection unit over mem with the given encryption
// and MAC keys.
func NewUnit(encKey, macKey []byte, mem *Memory) (*Unit, error) {
	b, err := aesx.NewBAES(encKey)
	if err != nil {
		return nil, fmt.Errorf("core: crypt engine: %w", err)
	}
	if len(macKey) == 0 {
		return nil, fmt.Errorf("core: empty MAC key")
	}
	mk := make([]byte, len(macKey))
	copy(mk, macKey)
	return &Unit{
		crypt:     b,
		macKey:    mk,
		mem:       mem,
		vns:       make(map[blockKey]uint64),
		layerMACs: make(map[FmapID]*xormac.LayerMAC),
		modelMAC:  xormac.NewModelMAC(mk),
		sealed:    make(map[FmapID]sha256x.MAC),
	}, nil
}

// Memory exposes the untrusted memory (for attack simulations).
func (u *Unit) Memory() *Memory { return u.mem }

// counterFor builds the AES-CTR counter PA ‖ VN for a block.
func counterFor(addr, vn uint64) aesx.Counter {
	return aesx.Counter{PA: addr, VN: vn}
}

// blockPos assembles the position tuple for a block.
func (u *Unit) blockPos(id FmapID, addr uint64, blk uint32, vn uint64) xormac.BlockPos {
	return xormac.BlockPos{
		PA:      addr,
		VN:      vn,
		LayerID: id.Layer,
		FmapIdx: id.Fmap,
		BlkIdx:  blk,
	}
}

// WriteFmap encrypts data with bandwidth-aware AES-CTR at optBlk
// granularity, stores the ciphertext at addr in untrusted memory,
// and replaces the fmap's on-chip layer MAC with the XOR-aggregate of
// the position-bound optBlk MACs. Rewriting an fmap increments every
// covered block's version number.
func (u *Unit) WriteFmap(id FmapID, addr uint64, data []byte, optBlk int) error {
	if optBlk <= 0 {
		return fmt.Errorf("core: optBlk %d must be positive", optBlk)
	}
	lm := &xormac.LayerMAC{LayerID: id.Layer}
	for off := 0; off < len(data); off += optBlk {
		end := off + optBlk
		if end > len(data) {
			end = len(data)
		}
		blkIdx := uint32(off / optBlk)
		key := blockKey{id: id, blk: blkIdx}
		u.vns[key]++
		vn := u.vns[key]
		blkAddr := addr + uint64(off)

		ct := make([]byte, end-off)
		u.crypt.XORSegments(ct, data[off:end], aesx.Counter{PA: blkAddr, VN: vn})
		u.mem.Write(blkAddr, ct)

		lm.Agg.Add(xormac.BlockMAC(u.macKey, ct, u.blockPos(id, blkAddr, blkIdx, vn)))
	}
	u.layerMACs[id] = lm
	return nil
}

// ReadFmap fetches n ciphertext bytes from addr, recomputes every
// optBlk MAC at its expected position, verifies the XOR-aggregate
// against the on-chip layer MAC (the layer-level check of the
// multi-level mechanism), and only then returns the decrypted data.
// Any tamper, swap or replay in untrusted memory yields an
// *IntegrityError.
func (u *Unit) ReadFmap(id FmapID, addr uint64, n int, optBlk int) ([]byte, error) {
	if optBlk <= 0 {
		return nil, fmt.Errorf("core: optBlk %d must be positive", optBlk)
	}
	want, ok := u.layerMACs[id]
	if !ok {
		return nil, fmt.Errorf("core: no layer MAC for fmap %+v (never written)", id)
	}
	out := make([]byte, n)
	var agg xormac.Aggregate
	for off := 0; off < n; off += optBlk {
		end := off + optBlk
		if end > n {
			end = n
		}
		blkIdx := uint32(off / optBlk)
		key := blockKey{id: id, blk: blkIdx}
		vn := u.vns[key]
		blkAddr := addr + uint64(off)

		ct := u.mem.Read(blkAddr, end-off)
		agg.Add(xormac.BlockMAC(u.macKey, ct, u.blockPos(id, blkAddr, blkIdx, vn)))
		u.crypt.XORSegments(out[off:end], ct, aesx.Counter{PA: blkAddr, VN: vn})
	}
	if agg.Sum() != want.Agg.Sum() {
		return nil, &IntegrityError{Fmap: id, Got: agg.Sum(), Want: want.Agg.Sum()}
	}
	return out, nil
}

// SealFmap folds an fmap's layer MAC into the on-chip model MAC. Used
// for model weights: after sealing, per-read layer checks can be
// skipped and a single model-level verification at the end of
// inference covers all weights (§III-C, "model MAC").
func (u *Unit) SealFmap(id FmapID) error {
	lm, ok := u.layerMACs[id]
	if !ok {
		return fmt.Errorf("core: cannot seal unwritten fmap %+v", id)
	}
	if _, dup := u.sealed[id]; dup {
		return fmt.Errorf("core: fmap %+v already sealed", id)
	}
	u.modelMAC.AddLayer(lm)
	u.sealed[id] = lm.Agg.Sum()
	return nil
}

// VerifyModel recomputes every sealed fmap's aggregate from untrusted
// memory and compares the fold against the on-chip model MAC. fetch
// must return each sealed fmap's (addr, length, optBlk) so the unit
// knows where to look; it is supplied by the caller because fmap
// placement is scheduler state, not protection state.
func (u *Unit) VerifyModel(fetch func(FmapID) (addr uint64, n, optBlk int)) error {
	check := xormac.NewModelMAC(u.macKey)
	for id := range u.sealed {
		addr, n, optBlk := fetch(id)
		lm := &xormac.LayerMAC{LayerID: id.Layer}
		for off := 0; off < n; off += optBlk {
			end := off + optBlk
			if end > n {
				end = n
			}
			blkIdx := uint32(off / optBlk)
			vn := u.vns[blockKey{id: id, blk: blkIdx}]
			blkAddr := addr + uint64(off)
			ct := u.mem.Read(blkAddr, end-off)
			lm.Agg.Add(xormac.BlockMAC(u.macKey, ct, u.blockPos(id, blkAddr, blkIdx, vn)))
		}
		check.AddLayer(lm)
	}
	if check.Sum() != u.modelMAC.Sum() {
		return &IntegrityError{Got: check.Sum(), Want: u.modelMAC.Sum(), Model: true}
	}
	return nil
}

// LayerMACSum returns the on-chip layer MAC for an fmap (for tests and
// the attack demos).
func (u *Unit) LayerMACSum(id FmapID) (sha256x.MAC, bool) {
	lm, ok := u.layerMACs[id]
	if !ok {
		return 0, false
	}
	return lm.Agg.Sum(), true
}

// IntegrityError reports a failed verification.
type IntegrityError struct {
	Fmap  FmapID
	Got   sha256x.MAC
	Want  sha256x.MAC
	Model bool
}

func (e *IntegrityError) Error() string {
	if e.Model {
		return fmt.Sprintf("core: model MAC mismatch (got %#x, want %#x)", uint64(e.Got), uint64(e.Want))
	}
	return fmt.Sprintf("core: layer MAC mismatch for layer %d fmap %d (got %#x, want %#x)",
		e.Fmap.Layer, e.Fmap.Fmap, uint64(e.Got), uint64(e.Want))
}
