// Package core implements the SeDA protection unit functionally: the
// Crypt Engine (bandwidth-aware AES-CTR encryption, §III-B) and the
// Integ Engine (multi-level integrity verification with optBlk, layer
// and model MACs, §III-C), operating against an untrusted off-chip
// memory model that attacks can tamper with.
//
// This is the paper's primary contribution as executable logic: the
// timing-level counterpart lives in internal/memprot (which accounts
// traffic), while this package actually encrypts, hashes, verifies
// and detects.
package core

import (
	"fmt"
	"sort"
)

const pageSize = 4096

// Memory is a sparse, byte-addressable untrusted off-chip memory.
// Anything stored here can be read, corrupted, swapped or replayed by
// an attacker (threat model §II-D); the protection unit must detect
// every integrity violation.
type Memory struct {
	pages map[uint64][]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(idx uint64) []byte {
	p, ok := m.pages[idx]
	if !ok {
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	return p
}

// Write stores data at addr.
func (m *Memory) Write(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.page(addr / pageSize)
		off := addr % pageSize
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// Read copies n bytes starting at addr. Unwritten bytes read as zero.
func (m *Memory) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		p := m.page(addr / pageSize)
		off := addr % pageSize
		c := copy(dst, p[off:])
		dst = dst[c:]
		addr += uint64(c)
	}
	return out
}

// Corrupt XORs mask into the byte at addr — the attacker's minimal
// tamper.
func (m *Memory) Corrupt(addr uint64, mask byte) {
	p := m.page(addr / pageSize)
	p[addr%pageSize] ^= mask
}

// SwapRegions exchanges the n-byte regions at a and b — the attacker's
// re-permutation primitive (RePA).
func (m *Memory) SwapRegions(a, b uint64, n int) {
	da := m.Read(a, n)
	db := m.Read(b, n)
	m.Write(a, db)
	m.Write(b, da)
}

// Snapshot captures the n-byte region at addr so it can be replayed
// later.
func (m *Memory) Snapshot(addr uint64, n int) []byte {
	return m.Read(addr, n)
}

// Replay restores a snapshot — the attacker's rollback primitive.
func (m *Memory) Replay(addr uint64, snapshot []byte) {
	m.Write(addr, snapshot)
}

// WrittenPages returns the sorted page indices that exist, mostly for
// tests asserting memory layout.
func (m *Memory) WrittenPages() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Memory) String() string {
	return fmt.Sprintf("memory{%d pages}", len(m.pages))
}
