package core

// GranularityRow is one row of the paper's Table I, comparing the
// three MAC granularities of the multi-level integrity verification
// mechanism.
type GranularityRow struct {
	Granularity   string
	Flexibility   string // how well it tracks tile geometry
	OffChipAccess string // metadata traffic it induces
	Overhead      string // verification-delay cost
	Storage       string // where the MAC lives
}

// GranularityTable returns Table I.
func GranularityTable() []GranularityRow {
	return []GranularityRow{
		{
			Granularity:   "optBlk",
			Flexibility:   "high (tile-aligned, avoids redundant checks)",
			OffChipAccess: "high if stored off-chip (one MAC per block)",
			Overhead:      "low (verify as blocks arrive)",
			Storage:       "off-chip",
		},
		{
			Granularity:   "layer",
			Flexibility:   "medium (one aggregate per layer)",
			OffChipAccess: "minimal (one MAC line per layer)",
			Overhead:      "medium (verdict at layer boundary)",
			Storage:       "off/on-chip",
		},
		{
			Granularity:   "model",
			Flexibility:   "low (one aggregate for all weights)",
			OffChipAccess: "none",
			Overhead:      "high (verdict at end of inference)",
			Storage:       "on-chip",
		},
	}
}
