package scalesim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// schedGolden pins the scheduler cycle-accurately: compute cycles
// under all three dataflows, the full tiling decision, trace summary
// stats, per-tensor byte accounting, and a digest over every emitted
// access (cycle, address, size, kind, class, tensor, layer, tile).
// The table was generated from the pre-hoist per-tile scheduler and
// verified bit-identical against the precomputed-schedule rewrite, so
// any future change to sim.go's inner loop that moves a single access
// or cycle fails here. The cases cover a tile-remainder geometry
// (conv-rem: 54 output rows over 9-row tiles; conv-odd: odd everything
// at stride 2), a depthwise layer, a GEMM with non-resident weights,
// and a degenerate 1×1 array that maximizes folds and tiling.
type schedGoldenCase struct {
	cfg, layer                      string
	compute, ws, os, is             uint64
	rowTiles, groups, th, nt, halo  int
	ifRun, ofRun                    int
	ifRes, wRes                     bool
	wPasses                         int
	accesses, readBytes, writeBytes uint64
	highCycle                       uint64
	ifBytes, wBytes, ofBytes        uint64
	haloBytes                       uint64
	traceDigest                     string
}

var schedGolden = []schedGoldenCase{
	{cfg: "edge", layer: "conv-rem", compute: 216720, ws: 216720, os: 234784, is: 321264,
		rowTiles: 6, groups: 1, th: 9, nt: 100, halo: 2, ifRun: 39424, ofRun: 48600,
		ifRes: false, wRes: true, wPasses: 1,
		accesses: 13, readBytes: 294144, writeBytes: 291600, highCycle: 216720,
		ifBytes: 236544, wBytes: 57600, ofBytes: 291600, haloBytes: 35840, traceDigest: "de63ebde8cb6e6bb"},
	{cfg: "edge", layer: "conv-odd", compute: 1595, ws: 1595, os: 1720, is: 4680,
		rowTiles: 1, groups: 1, th: 15, nt: 23, halo: 1, ifRun: 16337, ofRun: 5175,
		ifRes: true, wRes: true, wPasses: 1,
		accesses: 3, readBytes: 19856, writeBytes: 5175, highCycle: 1595,
		ifBytes: 16337, wBytes: 3519, ofBytes: 5175, haloBytes: 0, traceDigest: "9ba3f5bf21bdf69a"},
	{cfg: "edge", layer: "dw", compute: 770, ws: 770, os: 1562, is: 2772,
		rowTiles: 1, groups: 1, th: 26, nt: 32, halo: 2, ifRun: 25088, ofRun: 21632,
		ifRes: true, wRes: true, wPasses: 1,
		accesses: 3, readBytes: 25376, writeBytes: 21632, highCycle: 770,
		ifBytes: 25088, wBytes: 288, ofBytes: 21632, haloBytes: 0, traceDigest: "f5f8777d9ea1a597"},
	{cfg: "edge", layer: "fc", compute: 80896, ws: 80896, os: 36736, is: 35008,
		rowTiles: 2, groups: 6, th: 49, nt: 168, halo: 0, ifRun: 25088, ofRun: 49000,
		ifRes: true, wRes: false, wPasses: 2,
		accesses: 16, readBytes: 1056768, writeBytes: 64000, highCycle: 80892,
		ifBytes: 32768, wBytes: 1024000, ofBytes: 64000, haloBytes: 0, traceDigest: "221ce6465def9b61"},
	{cfg: "server", layer: "conv-rem", compute: 11046, ws: 11046, os: 13032, is: 31176,
		rowTiles: 1, groups: 1, th: 54, nt: 100, halo: 2, ifRun: 200704, ofRun: 291600,
		ifRes: true, wRes: true, wPasses: 1,
		accesses: 3, readBytes: 258304, writeBytes: 291600, highCycle: 11046,
		ifBytes: 200704, wBytes: 57600, ofBytes: 291600, haloBytes: 0, traceDigest: "dc35a18e58c904cf"},
	{cfg: "server", layer: "conv-odd", compute: 991, ws: 991, os: 663, is: 789,
		rowTiles: 1, groups: 1, th: 15, nt: 23, halo: 1, ifRun: 16337, ofRun: 5175,
		ifRes: true, wRes: true, wPasses: 1,
		accesses: 3, readBytes: 19856, writeBytes: 5175, highCycle: 991,
		ifBytes: 16337, wBytes: 3519, ofBytes: 5175, haloBytes: 0, traceDigest: "809383fdcff51112"},
	{cfg: "server", layer: "dw", compute: 1442, ws: 1442, os: 1557, is: 2394,
		rowTiles: 1, groups: 1, th: 26, nt: 32, halo: 2, ifRun: 25088, ofRun: 21632,
		ifRes: true, wRes: true, wPasses: 1,
		accesses: 3, readBytes: 25376, writeBytes: 21632, highCycle: 1442,
		ifBytes: 25088, wBytes: 288, ofBytes: 21632, haloBytes: 0, traceDigest: "1325c4b0d7bd55c9"},
	{cfg: "server", layer: "fc", compute: 6640, ws: 6640, os: 4088, is: 3532,
		rowTiles: 1, groups: 1, th: 64, nt: 1000, halo: 0, ifRun: 32768, ofRun: 64000,
		ifRes: true, wRes: true, wPasses: 1,
		accesses: 3, readBytes: 544768, writeBytes: 64000, highCycle: 6640,
		ifBytes: 32768, wBytes: 512000, ofBytes: 64000, haloBytes: 0, traceDigest: "c04fd1cde74632b8"},
	{cfg: "deg1x1", layer: "conv-rem", compute: 168019200, ws: 168019200, os: 167961600, is: 169641216,
		rowTiles: 54, groups: 50, th: 1, nt: 2, halo: 2, ifRun: 10752, ofRun: 5400,
		ifRes: false, wRes: false, wPasses: 54,
		accesses: 2808, readBytes: 3691008, writeBytes: 291600, highCycle: 168018300,
		ifBytes: 580608, wBytes: 3110400, ofBytes: 291600, haloBytes: 379904, traceDigest: "efbba2d2cac649a0"},
	{cfg: "deg1x1", layer: "conv-odd", compute: 795294, ws: 795294, os: 791775, is: 826200,
		rowTiles: 15, groups: 3, th: 1, nt: 9, halo: 1, ifRun: 1581, ofRun: 345,
		ifRes: false, wRes: false, wPasses: 15,
		accesses: 75, readBytes: 76500, writeBytes: 5175, highCycle: 795285,
		ifBytes: 23715, wBytes: 52785, ofBytes: 5175, haloBytes: 7378, traceDigest: "476f58293b0c6716"},
	{cfg: "deg1x1", layer: "dw", compute: 194976, ws: 194976, os: 194688, is: 200772,
		rowTiles: 26, groups: 1, th: 1, nt: 32, halo: 2, ifRun: 2688, ofRun: 832,
		ifRes: false, wRes: true, wPasses: 1,
		accesses: 53, readBytes: 70176, writeBytes: 21632, highCycle: 194974,
		ifBytes: 69888, wBytes: 288, ofBytes: 21632, haloBytes: 44800, traceDigest: "ecc0bc1e5a637ea1"},
	{cfg: "deg1x1", layer: "fc", compute: 33280000, ws: 33280000, os: 32768000, is: 32800768,
		rowTiles: 64, groups: 500, th: 1, nt: 2, halo: 0, ifRun: 512, ofRun: 1000,
		ifRes: false, wRes: false, wPasses: 64,
		accesses: 32128, readBytes: 32800768, writeBytes: 64000, highCycle: 33280000,
		ifBytes: 32768, wBytes: 32768000, ofBytes: 64000, haloBytes: 0, traceDigest: "5dcccfc056493e1c"},
}

var schedGoldenConfigs = map[string][3]int{
	"edge":   {32, 32, 480 << 10},
	"server": {256, 256, 24 << 20},
	"deg1x1": {1, 1, 8 << 10},
}

var schedGoldenLayers = map[string]model.Layer{
	"conv-rem": model.CV("conv-rem", 56, 56, 3, 3, 64, 100, 1),
	"conv-odd": model.CV("conv-odd", 31, 31, 3, 3, 17, 23, 2),
	"dw":       model.DW("dw", 28, 28, 3, 3, 32, 1),
	"fc":       model.FC("fc", 64, 512, 1000),
}

func goldenTraceDigest(t *trace.Trace) string {
	h := sha256.New()
	var buf [29]byte
	for _, a := range t.Accesses {
		binary.LittleEndian.PutUint64(buf[0:8], a.Cycle)
		binary.LittleEndian.PutUint64(buf[8:16], a.Addr)
		binary.LittleEndian.PutUint32(buf[16:20], a.Bytes)
		buf[20] = byte(a.Kind)
		buf[21] = byte(a.Class)
		buf[22] = byte(a.Tensor)
		binary.LittleEndian.PutUint16(buf[23:25], a.Layer)
		binary.LittleEndian.PutUint32(buf[25:29], a.Tile)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// TestScheduleGolden replays every golden case through SimulateLayer
// and checks each pinned quantity.
func TestScheduleGolden(t *testing.T) {
	for _, g := range schedGolden {
		geo := schedGoldenConfigs[g.cfg]
		cfg, err := New(geo[0], geo[1], geo[2])
		if err != nil {
			t.Fatal(err)
		}
		lr, err := cfg.SimulateLayer(schedGoldenLayers[g.layer], 1, WeightsBase+4096)
		if err != nil {
			t.Fatal(err)
		}
		name := g.cfg + "/" + g.layer
		if lr.ComputeCycles != g.compute {
			t.Errorf("%s: compute %d want %d", name, lr.ComputeCycles, g.compute)
		}
		df := cfg.ComputeCyclesByDataflow(&lr)
		if df[WeightStationary] != g.ws || df[OutputStationary] != g.os || df[InputStationary] != g.is {
			t.Errorf("%s: dataflow cycles ws=%d os=%d is=%d want %d/%d/%d", name,
				df[WeightStationary], df[OutputStationary], df[InputStationary], g.ws, g.os, g.is)
		}
		til := lr.Tiling
		if til.RowTiles != g.rowTiles || til.Groups != g.groups || til.Th != g.th ||
			til.Nt != g.nt || til.HaloRows != g.halo ||
			til.IfmapRunBytes != g.ifRun || til.OfmapRunBytes != g.ofRun ||
			til.IfmapResident != g.ifRes || til.WeightResident != g.wRes ||
			til.WeightPasses != g.wPasses {
			t.Errorf("%s: tiling %+v diverged from golden %+v", name, til, g)
		}
		st := lr.Trace.ComputeStats()
		if st.AccessCount != g.accesses || st.ReadBytes != g.readBytes ||
			st.WriteBytes != g.writeBytes || st.HighestCycle != g.highCycle {
			t.Errorf("%s: stats acc=%d r=%d w=%d hc=%d want %d/%d/%d/%d", name,
				st.AccessCount, st.ReadBytes, st.WriteBytes, st.HighestCycle,
				g.accesses, g.readBytes, g.writeBytes, g.highCycle)
		}
		if lr.IfmapBytes != g.ifBytes || lr.WeightBytes != g.wBytes ||
			lr.OfmapBytes != g.ofBytes || lr.HaloBytes != g.haloBytes {
			t.Errorf("%s: bytes if=%d w=%d of=%d halo=%d want %d/%d/%d/%d", name,
				lr.IfmapBytes, lr.WeightBytes, lr.OfmapBytes, lr.HaloBytes,
				g.ifBytes, g.wBytes, g.ofBytes, g.haloBytes)
		}
		if d := goldenTraceDigest(lr.Trace); d != g.traceDigest {
			t.Errorf("%s: trace digest %s want %s (an access moved)", name, d, g.traceDigest)
		}
	}
}

// TestScheduleGoldenCoversRemainders makes the coverage claims of the
// table explicit, so a future layer-zoo change cannot silently turn
// the remainder cases into aligned ones.
func TestScheduleGoldenCoversRemainders(t *testing.T) {
	edge, _ := New(32, 32, 480<<10)
	lr, err := edge.SimulateLayer(schedGoldenLayers["fc"], 1, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Tiling.RowTiles*lr.Tiling.Th == lr.Layer.OfmapH() {
		t.Error("fc no longer has a remainder row tile on the edge geometry")
	}
	if lr.Tiling.Groups*lr.Tiling.Nt == lr.Layer.NumFilt {
		t.Error("fc no longer has a remainder filter group on the edge geometry")
	}
	deg, _ := New(1, 1, 8<<10)
	lr, err = deg.SimulateLayer(schedGoldenLayers["conv-odd"], 1, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Tiling.Groups*lr.Tiling.Nt == lr.Layer.NumFilt {
		t.Error("conv-odd no longer has a remainder filter group on the 1x1 geometry")
	}
	if lr.Tiling.Th != 1 || lr.Tiling.RowTiles != lr.Layer.OfmapH() {
		t.Error("1x1 geometry no longer degenerates to single-row tiles")
	}
}
