package scalesim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
)

// SimulateNetwork runs every layer and returns per-layer results.
// Weight regions are laid out consecutively in the weight address
// space; activations ping-pong between the two activation banks.
func (c *Config) SimulateNetwork(n *model.Network) (*NetworkResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	res := &NetworkResult{Network: n}
	var weightOffset uint64
	for i, l := range n.Layers {
		lr := c.simulateLayer(l, i, WeightsBase+weightOffset)
		weightOffset += l.WeightBytes()
		res.Layers = append(res.Layers, lr)
	}
	return res, nil
}

// SimulateLayer runs a single layer with its weights at the given
// base address.
func (c *Config) SimulateLayer(l model.Layer, layerID int, weightBase uint64) (LayerResult, error) {
	if err := l.Validate(); err != nil {
		return LayerResult{}, err
	}
	return c.simulateLayer(l, layerID, weightBase), nil
}

// dims normalizes a layer to the weight-stationary view. Activations
// use NHWC row-major layout, so a full-width band of rows is one
// contiguous byte run; weights use [M][R·S·C] layout, so a filter
// group is contiguous.
type dims struct {
	wRows, wCols int // weight matrix shape mapped onto the array
	ofmapPx      int // output pixels streamed per fold
	filterBytes  int // bytes of one output channel's weights
	outC         int // output channels (columns to tile into groups)
	ifH          int // ifmap rows (M for GEMM)
	ifRowBytes   int // bytes per ifmap row (W*C; K for GEMM)
	ofH          int // ofmap rows (M for GEMM)
	ofRowBytes   int // bytes per ofmap row (OW*M; N for GEMM)
	stride, halo int
	filtH        int
}

func layerDims(l model.Layer) dims {
	switch l.Kind {
	case model.GEMM:
		return dims{
			wRows: l.Channels, wCols: l.NumFilt,
			ofmapPx:     l.GemmM,
			filterBytes: l.Channels,
			outC:        l.NumFilt,
			ifH:         l.GemmM, ifRowBytes: l.Channels,
			ofH: l.GemmM, ofRowBytes: l.NumFilt,
			stride: 1, halo: 0, filtH: 1,
		}
	case model.DWConv:
		return dims{
			wRows: l.FiltH * l.FiltW, wCols: l.Channels,
			ofmapPx:     l.OfmapH() * l.OfmapW(),
			filterBytes: l.FiltH * l.FiltW,
			outC:        l.Channels,
			ifH:         l.IfmapH, ifRowBytes: l.IfmapW * l.Channels,
			ofH: l.OfmapH(), ofRowBytes: l.OfmapW() * l.Channels,
			stride: l.Stride, halo: maxInt(0, l.FiltH-l.Stride), filtH: l.FiltH,
		}
	default: // Conv
		return dims{
			wRows: l.FiltH * l.FiltW * l.Channels, wCols: l.NumFilt,
			ofmapPx:     l.OfmapH() * l.OfmapW(),
			filterBytes: l.FiltH * l.FiltW * l.Channels,
			outC:        l.NumFilt,
			ifH:         l.IfmapH, ifRowBytes: l.IfmapW * l.Channels,
			ofH: l.OfmapH(), ofRowBytes: l.OfmapW() * l.NumFilt,
			stride: l.Stride, halo: maxInt(0, l.FiltH-l.Stride), filtH: l.FiltH,
		}
	}
}

// computeCycles applies the analytical weight-stationary runtime:
// every fold loads its weights into the array (ArrayRows cycles),
// then streams all output pixels with fill+drain overhead.
func (c *Config) computeCycles(d dims) uint64 {
	foldR := ceilDiv(d.wRows, c.ArrayRows)
	foldC := ceilDiv(d.wCols, c.ArrayCols)
	perFold := uint64(2*c.ArrayRows + c.ArrayCols + d.ofmapPx - 2)
	return uint64(foldR) * uint64(foldC) * perFold
}

// chooseTiling picks the output-row tile Th and filter group Nt.
//
// The schedule is tiles-outer: for each output-row tile, all filter
// groups are iterated while partial outputs accumulate in the ofmap
// buffer, and the tile's full-channel output is written once at the
// end. This keeps every DRAM run contiguous in NHWC layout. The
// consequence is that non-resident weights are re-streamed once per
// row tile, and the ifmap tile is read exactly once per row tile
// (plus the halo overlap rows shared with the previous tile).
func (c *Config) chooseTiling(l model.Layer, d dims) Tiling {
	ifBuf, wBuf, ofBuf := c.ifmapBuf(), c.weightBuf(), c.ofmapBuf()

	// Filter group size: output channels whose weights fit together.
	nt := d.outC
	if d.filterBytes > 0 && d.filterBytes*d.outC > wBuf {
		nt = wBuf / d.filterBytes
	}
	nt = clamp(nt, 1, d.outC)
	groups := ceilDiv(d.outC, nt)

	// Output-row tile: the ifmap band must fit the ifmap buffer and
	// the full-channel output band must fit the ofmap buffer.
	th := d.ofH
	for th > 1 {
		inRows := (th-1)*d.stride + d.filtH
		if inRows > d.ifH {
			inRows = d.ifH
		}
		if inRows*d.ifRowBytes <= ifBuf && th*d.ofRowBytes <= ofBuf {
			break
		}
		th--
	}
	rowTiles := ceilDiv(d.ofH, th)

	wTotal := l.WeightBytes()
	ifResident := l.IfmapBytes() <= uint64(ifBuf)
	wResident := wTotal <= uint64(wBuf) // equivalent to groups == 1

	weightPasses := 1
	if !wResident {
		weightPasses = rowTiles
	}

	t := Tiling{
		Order:    TilesOuter,
		RowTiles: rowTiles, Groups: groups, Th: th, Nt: nt,
		HaloRows:       d.halo,
		IfmapResident:  ifResident,
		WeightResident: wResident,
		IfmapPasses:    1,
		WeightPasses:   weightPasses,
	}
	inRows := (th-1)*d.stride + d.filtH
	if inRows > d.ifH {
		inRows = d.ifH
	}
	t.IfmapRunBytes = inRows * d.ifRowBytes
	t.OfmapRunBytes = th * d.ofRowBytes
	return t
}

// weightFetch is one filter group's precomputed DRAM fetch: absolute
// address and size. The group plan is identical for every row tile, so
// it is built once per layer instead of re-derived inside the tile
// loop (tileSize + three multiplications per (tile, group) pair on
// non-resident layers).
type weightFetch struct {
	addr  uint64
	bytes uint64
}

// schedule is the per-layer scheduling plan hoisted out of the tile
// loop: the dataflow's address strides, per-tile row activity, the
// filter-group fetch plan, and the compute-cycle step. Everything the
// loop needs per tile reduces to one multiply-add on these constants
// (plus the boundary clamps for the remainder tile, which the golden
// scheduling tests pin).
type schedule struct {
	perStep    uint64 // issue-cycle advance per (tile, group) step
	ifStride   uint64 // ifmap address advance per row tile (bytes)
	ofStride   uint64 // ofmap address advance per row tile (bytes)
	ifRowBytes uint64
	ofRowBytes uint64
	fullInRows int           // input-row activity of a full (non-remainder) tile
	haloBytes  uint64        // halo re-fetch charged per tile after the first
	fetches    []weightFetch // per filter group, in group order
}

// buildSchedule precomputes the plan for one layer.
func buildSchedule(d dims, til Tiling, cycles uint64, weightBase uint64) schedule {
	totalSteps := til.RowTiles * til.Groups
	perStep := cycles / uint64(totalSteps)
	if perStep == 0 {
		perStep = 1
	}
	sch := schedule{
		perStep:    perStep,
		ifStride:   uint64(til.Th*d.stride) * uint64(d.ifRowBytes),
		ofStride:   uint64(til.Th) * uint64(d.ofRowBytes),
		ifRowBytes: uint64(d.ifRowBytes),
		ofRowBytes: uint64(d.ofRowBytes),
		fullInRows: (til.Th-1)*d.stride + d.filtH,
		fetches:    make([]weightFetch, til.Groups),
	}
	if d.halo > 0 {
		halo := d.halo
		if halo > sch.fullInRows {
			halo = sch.fullInRows
		}
		sch.haloBytes = uint64(halo) * sch.ifRowBytes
	}
	for g := 0; g < til.Groups; g++ {
		nt := tileSize(d.outC, til.Nt, g)
		sch.fetches[g] = weightFetch{
			addr:  weightBase + uint64(g*til.Nt)*uint64(d.filterBytes),
			bytes: uint64(nt) * uint64(d.filterBytes),
		}
	}
	return sch
}

// simulateLayer produces compute cycles, the tiling decision, and the
// DRAM trace for one layer. The tile loop runs over the precomputed
// schedule; its emitted trace is byte-identical to the per-tile
// rederivation it replaced (TestScheduleGolden pins traces and stats,
// including remainder tiles and a degenerate 1×1 array).
func (c *Config) simulateLayer(l model.Layer, layerID int, weightBase uint64) LayerResult {
	d := layerDims(l)
	til := c.chooseTiling(l, d)
	cycles := c.computeCycles(d)

	lr := LayerResult{
		Layer: l, LayerID: layerID,
		ComputeCycles: cycles,
		Tiling:        til,
		Trace:         &trace.Trace{},
	}

	// The schedule's access count is known in closed form: one ifmap
	// band and one ofmap band per row tile, plus a weight fetch per
	// filter group on the first tile (every tile when weights are not
	// resident) — so the trace is pre-sized exactly and appends never
	// reallocate.
	weightFetches := til.Groups
	if !til.WeightResident {
		weightFetches = til.Groups * til.RowTiles
	}
	lr.Trace.Reserve(2*til.RowTiles + weightFetches)

	ifBase := ifmapBase(layerID)
	ofBase := ofmapBase(layerID)
	sch := buildSchedule(d, til, cycles, weightBase)

	step := 0
	for t := 0; t < til.RowTiles; t++ {
		tileID := uint32(t)
		th := tileSize(d.ofH, til.Th, t)

		// Ifmap band for this tile (one contiguous NHWC run). Full
		// tiles use the precomputed row activity; the remainder tile
		// (smaller th) and the input boundary clamp are the only
		// per-tile arithmetic left.
		{
			cycle := uint64(step) * sch.perStep
			r0 := t * til.Th * d.stride
			inRows := sch.fullInRows
			if th != til.Th {
				inRows = (th-1)*d.stride + d.filtH
			}
			if r0+inRows > d.ifH {
				inRows = d.ifH - r0
			}
			if t > 0 && d.halo > 0 {
				hb := sch.haloBytes
				if inRows < d.halo {
					hb = uint64(inRows) * sch.ifRowBytes
				}
				lr.HaloBytes += hb
			}
			bytes := uint64(inRows) * sch.ifRowBytes
			lr.appendAccess(trace.Access{
				Cycle: cycle, Addr: ifBase + uint64(t)*sch.ifStride,
				Bytes: uint32(bytes), Kind: trace.Read, Class: trace.Data,
				Tensor: trace.IFMap, Layer: uint16(layerID), Tile: tileID,
			})
			lr.IfmapBytes += bytes
		}

		// Filter groups: weights fetched on the first tile, and again
		// on every tile when not resident, straight from the plan.
		if t == 0 || !til.WeightResident {
			for g := 0; g < til.Groups; g++ {
				cycle := uint64(step) * sch.perStep
				step++
				f := &sch.fetches[g]
				lr.appendAccess(trace.Access{
					Cycle: cycle, Addr: f.addr,
					Bytes: uint32(f.bytes), Kind: trace.Read, Class: trace.Data,
					Tensor: trace.Weights, Layer: uint16(layerID), Tile: tileID,
				})
				lr.WeightBytes += f.bytes
			}
		} else {
			step += til.Groups
		}

		// Full-channel output band written once per tile.
		{
			cycle := uint64(step) * sch.perStep
			bytes := uint64(th) * sch.ofRowBytes
			lr.appendAccess(trace.Access{
				Cycle: cycle, Addr: ofBase + uint64(t)*sch.ofStride,
				Bytes: uint32(bytes), Kind: trace.Write, Class: trace.Data,
				Tensor: trace.OFMap, Layer: uint16(layerID), Tile: tileID,
			})
			lr.OfmapBytes += bytes
		}
	}
	return lr
}

func (lr *LayerResult) appendAccess(a trace.Access) {
	if a.Bytes == 0 {
		panic(fmt.Sprintf("scalesim: zero-byte access emitted for layer %d", a.Layer))
	}
	lr.Trace.Append(a)
}

// tileSize returns the size of tile index i when tiling total into
// chunks of size chunk.
func tileSize(total, chunk, i int) int {
	lo := i * chunk
	hi := lo + chunk
	if hi > total {
		hi = total
	}
	return hi - lo
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
