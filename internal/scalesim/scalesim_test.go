package scalesim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// Table II configurations.
func serverCfg(t *testing.T) *Config {
	t.Helper()
	c, err := New(256, 256, 24*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func edgeCfg(t *testing.T) *Config {
	t.Helper()
	c, err := New(32, 32, 480*1024)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, 32, 1024); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := New(32, 32, 0); err == nil {
		t.Error("accepted zero SRAM")
	}
	c := &Config{ArrayRows: 8, ArrayCols: 8, SRAMBytes: 1024,
		IfmapFrac: 0.6, WeightFrac: 0.5, OfmapFrac: 0.2}
	if err := c.Validate(); err == nil {
		t.Error("accepted fractions summing over 1")
	}
}

func TestComputeCyclesSmallConv(t *testing.T) {
	// 4x4 array; conv with wRows=R*S*C=4, wCols=M=4, ofmapPx=4 (2x2 out
	// from 3x3 in, 2x2 filter, 1 channel... wRows=4): one fold.
	c := &Config{ArrayRows: 4, ArrayCols: 4, SRAMBytes: 1 << 20,
		IfmapFrac: 0.45, WeightFrac: 0.35, OfmapFrac: 0.20}
	l := model.CV("t", 3, 3, 2, 2, 1, 4, 1)
	d := layerDims(l)
	if d.wRows != 4 || d.wCols != 4 || d.ofmapPx != 4 {
		t.Fatalf("dims = %+v", d)
	}
	got := c.computeCycles(d)
	want := uint64(2*4 + 4 + 4 - 2) // one fold
	if got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
}

func TestComputeCyclesFolds(t *testing.T) {
	c := &Config{ArrayRows: 4, ArrayCols: 4, SRAMBytes: 1 << 20,
		IfmapFrac: 0.45, WeightFrac: 0.35, OfmapFrac: 0.20}
	// GEMM K=8 N=8: 2x2 folds.
	l := model.FC("g", 16, 8, 8)
	d := layerDims(l)
	got := c.computeCycles(d)
	perFold := uint64(2*4 + 4 + 16 - 2)
	if got != 4*perFold {
		t.Errorf("cycles = %d, want %d", got, 4*perFold)
	}
}

func TestLargerArrayNeverSlower(t *testing.T) {
	small := &Config{ArrayRows: 16, ArrayCols: 16, SRAMBytes: 1 << 20,
		IfmapFrac: 0.45, WeightFrac: 0.35, OfmapFrac: 0.20}
	big := &Config{ArrayRows: 64, ArrayCols: 64, SRAMBytes: 1 << 20,
		IfmapFrac: 0.45, WeightFrac: 0.35, OfmapFrac: 0.20}
	for _, n := range model.All() {
		for _, l := range n.Layers {
			ds := layerDims(l)
			// Tiny layers legitimately run slower on a larger array
			// (fill/drain overhead dominates a single underutilized
			// fold); require speedup only when the layer can fill it.
			if ds.wRows < 64 || ds.wCols < 64 {
				continue
			}
			if small.computeCycles(ds) < big.computeCycles(ds) {
				t.Errorf("%s/%s: larger array slower", n.Name, l.Name)
			}
		}
	}
}

func TestTrafficLowerBoundCompulsory(t *testing.T) {
	// Every layer must read each tensor at least once and write the
	// ofmap exactly the schemes' compulsory amount or more.
	cfg := edgeCfg(t)
	for _, n := range model.All() {
		res, err := cfg.SimulateNetwork(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		for _, lr := range res.Layers {
			l := lr.Layer
			// Strided convs don't necessarily touch every ifmap row
			// (1x1 stride-2 projections read only even rows; a 3x3
			// stride-2 conv can leave a trailing row unread), so the
			// lower bound is the rows the sliding window covers.
			minIfmap := l.IfmapBytes()
			if l.Kind != model.GEMM {
				// Union of the sliding window's rows: overlapping
				// windows (stride <= filt) cover a contiguous span;
				// disjoint windows (stride > filt) cover ofH separate
				// bands of filtH rows each.
				var covered int
				if l.Stride <= l.FiltH {
					covered = (l.OfmapH()-1)*l.Stride + l.FiltH
				} else {
					covered = l.OfmapH() * l.FiltH
				}
				if covered > l.IfmapH {
					covered = l.IfmapH
				}
				minIfmap = uint64(covered) * uint64(l.IfmapW) * uint64(l.Channels)
			}
			if lr.IfmapBytes < minIfmap {
				t.Errorf("%s/%s: ifmap traffic %d below covered rows %d",
					n.Name, l.Name, lr.IfmapBytes, minIfmap)
			}
			if lr.WeightBytes < l.WeightBytes() {
				t.Errorf("%s/%s: weight traffic %d below tensor size %d",
					n.Name, l.Name, lr.WeightBytes, l.WeightBytes())
			}
			if lr.OfmapBytes != l.OfmapBytes() {
				t.Errorf("%s/%s: ofmap traffic %d != tensor size %d",
					n.Name, l.Name, lr.OfmapBytes, l.OfmapBytes())
			}
		}
	}
}

func TestTraceMatchesTrafficCounters(t *testing.T) {
	cfg := edgeCfg(t)
	for _, name := range []string{"let", "alex", "rest", "trf"} {
		res, err := cfg.SimulateNetwork(model.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, lr := range res.Layers {
			var rb, wb uint64
			for _, a := range lr.Trace.Accesses {
				if a.Kind == trace.Read {
					rb += uint64(a.Bytes)
				} else {
					wb += uint64(a.Bytes)
				}
			}
			if rb != lr.IfmapBytes+lr.WeightBytes {
				t.Errorf("%s/%s: trace reads %d != counters %d",
					name, lr.Layer.Name, rb, lr.IfmapBytes+lr.WeightBytes)
			}
			if wb != lr.OfmapBytes {
				t.Errorf("%s/%s: trace writes %d != ofmap %d",
					name, lr.Layer.Name, wb, lr.OfmapBytes)
			}
		}
	}
}

func TestServerSRAMMostlyResident(t *testing.T) {
	// With 24 MB SRAM most layers' ifmaps are resident, so total
	// traffic should be close to compulsory (within 15%).
	cfg := serverCfg(t)
	for _, name := range []string{"alex", "rest", "yolo"} {
		n := model.ByName(name)
		res, err := cfg.SimulateNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		var compulsory uint64
		for _, l := range n.Layers {
			compulsory += l.IfmapBytes() + l.WeightBytes() + l.OfmapBytes()
		}
		got := res.TotalDataBytes()
		if float64(got) > 1.15*float64(compulsory) {
			t.Errorf("%s server traffic %d exceeds 1.15x compulsory %d",
				name, got, compulsory)
		}
	}
}

func TestEdgeTrafficAtLeastServer(t *testing.T) {
	// The 480 KB edge SRAM forces re-streaming; per-network edge
	// traffic must be >= server traffic.
	srv := serverCfg(t)
	edg := edgeCfg(t)
	for _, n := range model.All() {
		rs, err := srv.SimulateNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		re, err := edg.SimulateNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		if re.TotalDataBytes() < rs.TotalDataBytes() {
			t.Errorf("%s: edge traffic %d < server %d",
				n.Name, re.TotalDataBytes(), rs.TotalDataBytes())
		}
	}
}

func TestHaloBytesPresentForOverlappingTiles(t *testing.T) {
	// Force tiling with a tiny SRAM so a 3x3 stride-1 conv has halo
	// re-fetch (FiltH - Stride = 2 rows per boundary).
	c := &Config{ArrayRows: 8, ArrayCols: 8, SRAMBytes: 8 * 1024,
		IfmapFrac: 0.45, WeightFrac: 0.35, OfmapFrac: 0.20, DoubleBuffered: true}
	l := model.CV("c", 66, 66, 3, 3, 8, 16, 1)
	lr, err := c.SimulateLayer(l, 0, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Tiling.RowTiles < 2 {
		t.Fatalf("expected multiple row tiles, got %d", lr.Tiling.RowTiles)
	}
	if lr.HaloBytes == 0 {
		t.Error("no halo bytes recorded for overlapping stride-1 tiles")
	}
	if lr.Tiling.HaloRows != 2 {
		t.Errorf("halo rows = %d, want 2", lr.Tiling.HaloRows)
	}
	// Halo must be part of the ifmap traffic above the tensor size.
	if lr.IfmapBytes < l.IfmapBytes()+lr.HaloBytes {
		t.Errorf("ifmap traffic %d < tensor %d + halo %d",
			lr.IfmapBytes, l.IfmapBytes(), lr.HaloBytes)
	}
}

func TestNoHaloForStrideEqFilter(t *testing.T) {
	c := &Config{ArrayRows: 8, ArrayCols: 8, SRAMBytes: 8 * 1024,
		IfmapFrac: 0.45, WeightFrac: 0.35, OfmapFrac: 0.20, DoubleBuffered: true}
	l := model.CV("c", 64, 64, 2, 2, 8, 8, 2) // stride == filt: disjoint tiles
	lr, err := c.SimulateLayer(l, 0, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	if lr.HaloBytes != 0 {
		t.Errorf("halo bytes %d for non-overlapping tiles", lr.HaloBytes)
	}
}

func TestGEMMTileContiguity(t *testing.T) {
	c := edgeCfg(t)
	l := model.FC("g", 512, 512, 512)
	lr, err := c.SimulateLayer(l, 0, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range lr.Trace.Accesses {
		if a.Tensor == trace.IFMap && a.Bytes%uint32(l.Channels) != 0 {
			t.Errorf("GEMM ifmap run %d not a multiple of K=%d", a.Bytes, l.Channels)
		}
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	cfg := edgeCfg(t)
	res, err := cfg.SimulateNetwork(model.ByName("rest"))
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.Layers {
		for _, a := range lr.Trace.Accesses {
			end := a.Addr + uint64(a.Bytes)
			switch a.Tensor {
			case trace.IFMap, trace.OFMap:
				if a.Addr < ActABase || end > WeightsBase {
					t.Fatalf("activation access [%#x,%#x) outside banks", a.Addr, end)
				}
			case trace.Weights:
				if a.Addr < WeightsBase {
					t.Fatalf("weight access %#x below weight base", a.Addr)
				}
			}
		}
	}
}

func TestOfmapBankAlternates(t *testing.T) {
	if ifmapBase(0) != ActABase || ofmapBase(0) != ActBBase {
		t.Error("layer 0 banks wrong")
	}
	if ifmapBase(1) != ActBBase || ofmapBase(1) != ActABase {
		t.Error("layer 1 banks wrong")
	}
	// Layer i's ofmap bank must equal layer i+1's ifmap bank.
	for i := 0; i < 10; i++ {
		if ofmapBase(i) != ifmapBase(i+1) {
			t.Errorf("layer %d ofmap bank != layer %d ifmap bank", i, i+1)
		}
	}
}

func TestIssueCyclesNonDecreasingPerLayer(t *testing.T) {
	cfg := edgeCfg(t)
	res, err := cfg.SimulateNetwork(model.ByName("mob"))
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.Layers {
		var prev uint64
		for _, a := range lr.Trace.Accesses {
			if a.Cycle < prev {
				t.Fatalf("layer %s: issue cycles regress (%d after %d)",
					lr.Layer.Name, a.Cycle, prev)
			}
			prev = a.Cycle
		}
	}
}

func TestAllNetworksSimulateOnBothNPUs(t *testing.T) {
	for _, cfg := range []*Config{serverCfg(t), edgeCfg(t)} {
		for _, n := range model.All() {
			res, err := cfg.SimulateNetwork(n)
			if err != nil {
				t.Fatalf("%s: %v", n.Name, err)
			}
			if res.TotalComputeCycles() == 0 {
				t.Errorf("%s: zero compute cycles", n.Name)
			}
			if res.TotalDataBytes() == 0 {
				t.Errorf("%s: zero traffic", n.Name)
			}
		}
	}
}

func TestLoopOrderStrings(t *testing.T) {
	if GroupsOuter.String() != "groups-outer" || TilesOuter.String() != "tiles-outer" {
		t.Error("loop order strings wrong")
	}
}
