package scalesim

import (
	"testing"

	"repro/internal/model"
)

func TestDataflowStrings(t *testing.T) {
	if WeightStationary.String() != "ws" || OutputStationary.String() != "os" ||
		InputStationary.String() != "is" {
		t.Error("dataflow strings wrong")
	}
}

func TestParseDataflow(t *testing.T) {
	for s, want := range map[string]Dataflow{
		"ws": WeightStationary, "os": OutputStationary, "is": InputStationary,
	} {
		got, err := ParseDataflow(s)
		if err != nil || got != want {
			t.Errorf("ParseDataflow(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDataflow("nope"); err == nil {
		t.Error("unknown dataflow accepted")
	}
}

func TestDataflowCyclesAllPositive(t *testing.T) {
	cfg := edgeCfg(t)
	res, err := cfg.SimulateNetwork(model.ByName("rest"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Layers {
		cycles := cfg.ComputeCyclesByDataflow(&res.Layers[i])
		for df, c := range cycles {
			if c == 0 {
				t.Errorf("layer %s: %s cycles = 0", res.Layers[i].Layer.Name, df)
			}
		}
		if cycles[WeightStationary] != res.Layers[i].ComputeCycles {
			t.Errorf("layer %s: WS ablation cycles != simulated cycles",
				res.Layers[i].Layer.Name)
		}
	}
}

func TestOutputStationaryWinsOnDeepReduction(t *testing.T) {
	// A layer with a huge reduction dimension and few outputs: OS
	// streams the reduction once per fold, so it needs fewer total
	// cycles than WS, which re-streams the (tiny) output space for
	// every reduction fold.
	cfg := edgeCfg(t)
	l := model.FC("deep", 8, 65536, 8) // M=8, K=65536, N=8
	lr, err := cfg.SimulateLayer(l, 0, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	cycles := cfg.ComputeCyclesByDataflow(&lr)
	if cycles[OutputStationary] >= cycles[WeightStationary] {
		t.Errorf("OS %d not faster than WS %d on deep-reduction GEMM",
			cycles[OutputStationary], cycles[WeightStationary])
	}
}

func TestWeightStationaryWinsOnWideOutput(t *testing.T) {
	// Many output pixels, small reduction: WS streams the big output
	// space once per (small) weight fold; OS folds the output space
	// onto the array repeatedly, paying fill/drain per fold.
	cfg := edgeCfg(t)
	l := model.CV("wide", 226, 226, 3, 3, 3, 32, 1)
	lr, err := cfg.SimulateLayer(l, 0, WeightsBase)
	if err != nil {
		t.Fatal(err)
	}
	cycles := cfg.ComputeCyclesByDataflow(&lr)
	if cycles[WeightStationary] >= cycles[OutputStationary] {
		t.Errorf("WS %d not faster than OS %d on wide-output conv",
			cycles[WeightStationary], cycles[OutputStationary])
	}
}
