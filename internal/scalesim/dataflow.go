package scalesim

import "fmt"

// Dataflow selects the systolic-array mapping strategy. The paper's
// evaluation uses the weight-stationary mapping (the TPU-v1 and
// Exynos NPU style); output- and input-stationary are provided for
// ablation, with the SCALE-Sim-style analytical runtimes.
type Dataflow uint8

const (
	// WeightStationary pins the weight matrix onto the PE array and
	// streams ifmap pixels through (TPU-style). Default.
	WeightStationary Dataflow = iota
	// OutputStationary pins output pixels onto PEs and streams the
	// reduction dimension through.
	OutputStationary
	// InputStationary pins ifmap elements onto the array and streams
	// weights through.
	InputStationary
)

func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "ws"
	case OutputStationary:
		return "os"
	case InputStationary:
		return "is"
	}
	return fmt.Sprintf("dataflow(%d)", uint8(d))
}

// ParseDataflow converts the short names ws/os/is.
func ParseDataflow(s string) (Dataflow, error) {
	switch s {
	case "ws":
		return WeightStationary, nil
	case "os":
		return OutputStationary, nil
	case "is":
		return InputStationary, nil
	}
	return 0, fmt.Errorf("scalesim: unknown dataflow %q (want ws, os or is)", s)
}

// computeCyclesFor applies the analytical runtime of the selected
// dataflow. All three share the fold structure (tile the stationary
// matrix onto the array, stream the moving operand per fold with
// pipeline fill/drain); they differ in which dimensions fold and
// which streams.
func (c *Config) computeCyclesFor(d dims, df Dataflow) uint64 {
	switch df {
	case OutputStationary:
		// Output pixels fold onto rows, output channels onto columns;
		// the reduction dimension streams per fold.
		foldR := ceilDiv(d.ofmapPx, c.ArrayRows)
		foldC := ceilDiv(d.wCols, c.ArrayCols)
		perFold := uint64(d.wRows + c.ArrayRows + c.ArrayCols - 2)
		return uint64(foldR) * uint64(foldC) * perFold
	case InputStationary:
		// Ifmap pixels fold onto rows, reduction onto columns; output
		// channels stream per fold.
		foldR := ceilDiv(d.ofmapPx, c.ArrayRows)
		foldC := ceilDiv(d.wRows, c.ArrayCols)
		perFold := uint64(2*c.ArrayRows + c.ArrayCols + d.wCols - 2)
		return uint64(foldR) * uint64(foldC) * perFold
	default: // WeightStationary
		return c.computeCycles(d)
	}
}

// ComputeCyclesByDataflow returns a layer's analytical compute cycles
// under each of the three dataflows, for ablation studies.
func (c *Config) ComputeCyclesByDataflow(lr *LayerResult) map[Dataflow]uint64 {
	d := layerDims(lr.Layer)
	return map[Dataflow]uint64{
		WeightStationary: c.computeCyclesFor(d, WeightStationary),
		OutputStationary: c.computeCyclesFor(d, OutputStationary),
		InputStationary:  c.computeCyclesFor(d, InputStationary),
	}
}
