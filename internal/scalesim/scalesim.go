// Package scalesim is a SCALE-Sim-style systolic-array simulator: it
// computes per-layer compute cycles for a weight-stationary PE array
// and generates the DRAM access traces that the rest of the SeDA
// pipeline consumes (paper §IV-A: "The DNN accelerator can generate
// detailed computation information of systolic array, and DRAM access
// traces").
//
// Modeling choices (documented in DESIGN.md):
//
//   - Compute follows the analytical weight-stationary model: the
//     weight matrix (R·S·C rows × M columns for convolution, K×N for
//     GEMM) is folded onto the PE array, and each fold streams all
//     output pixels through the array with pipeline fill/drain and
//     weight-load overheads.
//   - On-chip SRAM is split into double-buffered ifmap/weight/ofmap
//     regions. Tiling picks an output-row tile (Th) bounded by the
//     ifmap and ofmap buffers and a filter group (Nt output channels)
//     bounded by the weight buffer.
//   - The schedule is tiles-outer: per output-row tile, all filter
//     groups accumulate partial sums in the ofmap buffer and the
//     full-channel output band is written once. Non-resident weights
//     are re-streamed once per row tile.
//   - Tensors are NHWC row-major (weights [M][R·S·C]; GEMM activations
//     [M][K]), so every tile access is one contiguous byte run — the
//     geometry the protection-block alignment analysis keys on.
//     Consecutive ifmap row tiles overlap by the convolution halo
//     (FiltH−Stride rows), which is the intra-layer tile overlap
//     SeDA's optBlk search exploits.
package scalesim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
)

// Config describes the accelerator's compute and SRAM resources.
type Config struct {
	ArrayRows int
	ArrayCols int
	SRAMBytes int

	// Buffer fractions of SRAMBytes; must sum to <= 1. Zero values
	// select the defaults (0.45 / 0.35 / 0.20).
	IfmapFrac  float64
	WeightFrac float64
	OfmapFrac  float64

	// DoubleBuffered halves each buffer's usable capacity to model
	// ping-pong prefetching. Defaults to true via New.
	DoubleBuffered bool
}

// New fills in defaults and validates.
func New(arrayRows, arrayCols, sramBytes int) (*Config, error) {
	c := &Config{
		ArrayRows:      arrayRows,
		ArrayCols:      arrayCols,
		SRAMBytes:      sramBytes,
		IfmapFrac:      0.45,
		WeightFrac:     0.35,
		OfmapFrac:      0.20,
		DoubleBuffered: true,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.ArrayRows <= 0 || c.ArrayCols <= 0 {
		return fmt.Errorf("scalesim: non-positive array %dx%d", c.ArrayRows, c.ArrayCols)
	}
	if c.SRAMBytes <= 0 {
		return fmt.Errorf("scalesim: non-positive SRAM %d", c.SRAMBytes)
	}
	if c.IfmapFrac <= 0 || c.WeightFrac <= 0 || c.OfmapFrac <= 0 ||
		c.IfmapFrac+c.WeightFrac+c.OfmapFrac > 1.0001 {
		return fmt.Errorf("scalesim: bad buffer fractions %v/%v/%v",
			c.IfmapFrac, c.WeightFrac, c.OfmapFrac)
	}
	return nil
}

// buffer capacities in bytes (after double-buffering).
func (c *Config) ifmapBuf() int  { return c.scaled(c.IfmapFrac) }
func (c *Config) weightBuf() int { return c.scaled(c.WeightFrac) }
func (c *Config) ofmapBuf() int  { return c.scaled(c.OfmapFrac) }

func (c *Config) scaled(f float64) int {
	b := int(float64(c.SRAMBytes) * f)
	if c.DoubleBuffered {
		b /= 2
	}
	if b < 1 {
		b = 1
	}
	return b
}

// LoopOrder is the chosen dataflow schedule for a layer.
type LoopOrder uint8

const (
	// GroupsOuter iterates filter groups outermost; the ifmap is
	// re-streamed per group unless it is SRAM-resident.
	GroupsOuter LoopOrder = iota
	// TilesOuter iterates output-row tiles outermost; weights are
	// re-streamed per tile unless they are SRAM-resident.
	TilesOuter
)

func (o LoopOrder) String() string {
	if o == GroupsOuter {
		return "groups-outer"
	}
	return "tiles-outer"
}

// Tiling summarizes the schedule picked for a layer. The authblock
// search and the over-fetch model both key on this geometry.
type Tiling struct {
	Order    LoopOrder
	RowTiles int // ofmap row tiles
	Groups   int // filter groups
	Th       int // ofmap rows per tile (last may be smaller)
	Nt       int // output channels per group (last may be smaller)

	// HaloRows is the ifmap row overlap between consecutive tiles
	// (FiltH - Stride, clamped at 0).
	HaloRows int

	// IfmapRunBytes is the contiguous ifmap run length per tile fetch
	// (inRows × W × C for conv, Th × K for GEMM).
	IfmapRunBytes int
	// OfmapRunBytes is the contiguous ofmap run per tile write
	// (Th × OW × M for conv, Th × N for GEMM).
	OfmapRunBytes int

	IfmapResident  bool
	WeightResident bool
	IfmapPasses    int // how many times the full ifmap is streamed
	WeightPasses   int // how many times the full weight set is streamed
}

// LayerResult is the simulation product for one layer.
type LayerResult struct {
	Layer         model.Layer
	LayerID       int
	ComputeCycles uint64
	Tiling        Tiling
	Trace         *trace.Trace

	IfmapBytes  uint64 // bytes of ifmap traffic (including re-reads & halo)
	WeightBytes uint64
	OfmapBytes  uint64
	HaloBytes   uint64 // portion of IfmapBytes that is halo re-fetch
}

// DataBytes is the layer's total DRAM data traffic.
func (r *LayerResult) DataBytes() uint64 {
	return r.IfmapBytes + r.WeightBytes + r.OfmapBytes
}

// NetworkResult aggregates per-layer results.
type NetworkResult struct {
	Network *model.Network
	Layers  []LayerResult
}

// TotalComputeCycles sums compute cycles.
func (n *NetworkResult) TotalComputeCycles() uint64 {
	var s uint64
	for i := range n.Layers {
		s += n.Layers[i].ComputeCycles
	}
	return s
}

// TotalDataBytes sums data traffic.
func (n *NetworkResult) TotalDataBytes() uint64 {
	var s uint64
	for i := range n.Layers {
		s += n.Layers[i].DataBytes()
	}
	return s
}

// Address-space layout: three disjoint regions, with activations
// ping-ponging between two banks so layer i's ofmap region is layer
// i+1's ifmap region (the inter-layer tiling-pattern interaction the
// paper highlights in Fig. 3(b)).
const (
	ActABase    uint64 = 0x1000_0000
	ActBBase    uint64 = 0x3000_0000
	WeightsBase uint64 = 0x5000_0000
)

// ifmapBase returns the activation bank holding layer id's input.
func ifmapBase(layerID int) uint64 {
	if layerID%2 == 0 {
		return ActABase
	}
	return ActBBase
}

// ofmapBase returns the activation bank receiving layer id's output.
func ofmapBase(layerID int) uint64 {
	if layerID%2 == 0 {
		return ActBBase
	}
	return ActABase
}
