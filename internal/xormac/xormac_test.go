package xormac

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sha256x"
)

var testKey = []byte("integ-engine-test-key")

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = make([]byte, size)
		r.Read(blocks[i]) //nolint:errcheck
	}
	return blocks
}

func TestAggregateOrderIndependence(t *testing.T) {
	// The defining property of XOR-MAC aggregation (and the root of
	// the RePA vulnerability): any permutation yields the same sum.
	f := func(macs []uint64, seed int64) bool {
		ms := make([]sha256x.MAC, len(macs))
		for i, m := range macs {
			ms[i] = sha256x.MAC(m)
		}
		forward := AggregateOf(ms)
		r := rand.New(rand.NewSource(seed))
		shuffled := make([]sha256x.MAC, len(ms))
		copy(shuffled, ms)
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return AggregateOf(shuffled) == forward
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateIncrementalUpdateEqualsRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	blocks := randBlocks(r, 16, 64)
	macs := make([]sha256x.MAC, len(blocks))
	var agg Aggregate
	for i, b := range blocks {
		macs[i] = NaiveBlockMAC(testKey, b)
		agg.Add(macs[i])
	}
	// Rewrite block 5.
	blocks[5][0] ^= 0xff
	newMAC := NaiveBlockMAC(testKey, blocks[5])
	agg.Update(macs[5], newMAC)
	macs[5] = newMAC

	if got, want := agg.Sum(), AggregateOf(macs); got != want {
		t.Errorf("incremental aggregate %x != recomputed %x", got, want)
	}
}

func TestAggregateAddRemoveCancels(t *testing.T) {
	f := func(ms []uint64) bool {
		var agg Aggregate
		for _, m := range ms {
			agg.Add(sha256x.MAC(m))
		}
		before := agg.Sum()
		agg.Add(sha256x.MAC(0xdeadbeef))
		agg.Remove(sha256x.MAC(0xdeadbeef))
		return agg.Sum() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateLenTracksMembership(t *testing.T) {
	var agg Aggregate
	if agg.Len() != 0 {
		t.Fatalf("empty aggregate len = %d", agg.Len())
	}
	agg.Add(1)
	agg.Add(2)
	agg.Add(3)
	if agg.Len() != 3 {
		t.Errorf("len = %d, want 3", agg.Len())
	}
	agg.Remove(2)
	if agg.Len() != 2 {
		t.Errorf("len after remove = %d, want 2", agg.Len())
	}
}

func TestBlockMACBindsEveryPositionField(t *testing.T) {
	blk := []byte("ciphertext block contents 0123456789")
	base := BlockPos{PA: 0x1000, VN: 7, LayerID: 3, FmapIdx: 1, BlkIdx: 42}
	ref := BlockMAC(testKey, blk, base)

	variants := []BlockPos{
		{PA: 0x1040, VN: 7, LayerID: 3, FmapIdx: 1, BlkIdx: 42},
		{PA: 0x1000, VN: 8, LayerID: 3, FmapIdx: 1, BlkIdx: 42},
		{PA: 0x1000, VN: 7, LayerID: 4, FmapIdx: 1, BlkIdx: 42},
		{PA: 0x1000, VN: 7, LayerID: 3, FmapIdx: 2, BlkIdx: 42},
		{PA: 0x1000, VN: 7, LayerID: 3, FmapIdx: 1, BlkIdx: 43},
	}
	names := []string{"PA", "VN", "LayerID", "FmapIdx", "BlkIdx"}
	for i, v := range variants {
		if BlockMAC(testKey, blk, v) == ref {
			t.Errorf("MAC insensitive to %s", names[i])
		}
	}
	if BlockMAC(testKey, blk, base) != ref {
		t.Error("MAC not deterministic")
	}
}

func TestBlockMACDataSensitivity(t *testing.T) {
	pos := BlockPos{PA: 0x40, VN: 1, LayerID: 0, FmapIdx: 0, BlkIdx: 0}
	a := BlockMAC(testKey, []byte("block-a"), pos)
	b := BlockMAC(testKey, []byte("block-b"), pos)
	if a == b {
		t.Error("MACs of different data collide")
	}
}

// TestRePAShuffleDefeatsNaiveMAC reproduces the attack half of
// Algorithm 2: with naive (position-free) MACs, shuffling blocks
// preserves the layer aggregate, so integrity verification passes even
// though decryption would produce garbage.
func TestRePAShuffleDefeatsNaiveMAC(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	blocks := randBlocks(r, 32, 64)

	var sumMAC Aggregate
	for _, b := range blocks {
		sumMAC.Add(NaiveBlockMAC(testKey, b))
	}

	// SHUFFLE_ORDER(MACs): permute the blocks.
	shuffled := make([][]byte, len(blocks))
	copy(shuffled, blocks)
	r.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	var sumShuffled Aggregate
	for _, b := range shuffled {
		sumShuffled.Add(NaiveBlockMAC(testKey, b))
	}

	if sumMAC.Sum() != sumShuffled.Sum() {
		t.Fatal("naive XOR-MAC unexpectedly detected the shuffle (attack model broken)")
	}
}

// TestRePADefensePositionBoundMAC reproduces the defense half: with
// position-bound MACs, verifying blocks at their (shuffled) observed
// positions yields a different aggregate, so the attack is detected.
func TestRePADefensePositionBoundMAC(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	blocks := randBlocks(r, 32, 64)

	pos := func(i int) BlockPos {
		return BlockPos{PA: uint64(0x1000 + 64*i), VN: 1, LayerID: 5, FmapIdx: 0, BlkIdx: uint32(i)}
	}

	var genuine Aggregate
	for i, b := range blocks {
		genuine.Add(BlockMAC(testKey, b, pos(i)))
	}

	// Swap two distinct blocks; each now sits at the other's address.
	perm := make([][]byte, len(blocks))
	copy(perm, blocks)
	i, j := 3, 17
	for string(perm[i]) == string(perm[j]) {
		j++
	}
	perm[i], perm[j] = perm[j], perm[i]

	var observed Aggregate
	for k, b := range perm {
		observed.Add(BlockMAC(testKey, b, pos(k)))
	}

	if observed.Sum() == genuine.Sum() {
		t.Fatal("position-bound XOR-MAC failed to detect re-permutation")
	}
}

func TestModelMACBindsLayerOrder(t *testing.T) {
	l1 := &LayerMAC{LayerID: 1}
	l1.Agg.Add(0xaaaa)
	l2 := &LayerMAC{LayerID: 2}
	l2.Agg.Add(0xbbbb)

	m := NewModelMAC(testKey)
	m.AddLayer(l1)
	m.AddLayer(l2)
	want := m.Sum()

	// Swap the layer payloads while keeping ids: a whole-layer swap.
	s1 := &LayerMAC{LayerID: 1}
	s1.Agg.Add(0xbbbb)
	s2 := &LayerMAC{LayerID: 2}
	s2.Agg.Add(0xaaaa)
	ms := NewModelMAC(testKey)
	ms.AddLayer(s1)
	ms.AddLayer(s2)

	if ms.Sum() == want {
		t.Error("model MAC insensitive to swapping layer contents")
	}
}

func TestModelMACAddRemoveLayer(t *testing.T) {
	l := &LayerMAC{LayerID: 9}
	l.Agg.Add(0x1234)
	m := NewModelMAC(testKey)
	before := m.Sum()
	m.AddLayer(l)
	if m.Sum() == before {
		t.Error("AddLayer had no effect")
	}
	m.RemoveLayer(l)
	if m.Sum() != before {
		t.Error("RemoveLayer did not cancel AddLayer")
	}
}

func TestModelMACInsertionOrderIrrelevantForSameLayers(t *testing.T) {
	// Folding the same (id, aggregate) pairs in any order gives the
	// same model MAC — incrementality requires this.
	layers := []*LayerMAC{
		{LayerID: 0}, {LayerID: 1}, {LayerID: 2}, {LayerID: 3},
	}
	for i, l := range layers {
		l.Agg.Add(sha256x.MAC(0x1000 + i))
	}
	m1 := NewModelMAC(testKey)
	for _, l := range layers {
		m1.AddLayer(l)
	}
	m2 := NewModelMAC(testKey)
	for i := len(layers) - 1; i >= 0; i-- {
		m2.AddLayer(layers[i])
	}
	if m1.Sum() != m2.Sum() {
		t.Error("model MAC depends on fold order of identical layer set")
	}
}
