// Package xormac implements the XOR-MAC aggregation scheme
// (Bellare–Guérin–Rogaway style) that SeDA's Integ Engine uses to fold
// per-block optBlk MACs into a single layer MAC, plus the model MAC
// accumulator and the position-bound MAC construction that defends
// against the Re-Permutation Attack (paper §III-C, Algorithm 2).
//
// XOR aggregation is parallelizable and incremental: a block rewrite
// updates the aggregate by XORing out the old MAC and XORing in the
// new one, without touching any other block. Its weakness — XOR is
// commutative, so shuffling blocks leaves the aggregate unchanged — is
// exactly the RePA vulnerability. The defense binds each block MAC to
// its position (PA, VN, layer id, feature-map index, block index)
// before aggregation, making any permutation change at least one leaf
// MAC and therefore the aggregate.
package xormac

import (
	"encoding/binary"

	"repro/internal/sha256x"
)

// BlockPos identifies a protection block's position inside a DNN
// model, the tuple hashed into the MAC by Algorithm 2 line 8.
type BlockPos struct {
	PA      uint64 // physical address of the block
	VN      uint64 // version number at the time of the write
	LayerID uint32 // layer number within the model
	FmapIdx uint32 // feature-map (tensor) index within the layer
	BlkIdx  uint32 // block index within the feature map
}

// appendPos serializes the position tuple for hashing.
func appendPos(dst []byte, p BlockPos) []byte {
	var b [28]byte
	binary.BigEndian.PutUint64(b[0:], p.PA)
	binary.BigEndian.PutUint64(b[8:], p.VN)
	binary.BigEndian.PutUint32(b[16:], p.LayerID)
	binary.BigEndian.PutUint32(b[20:], p.FmapIdx)
	binary.BigEndian.PutUint32(b[24:], p.BlkIdx)
	return append(dst, b[:]...)
}

// BlockMAC computes the position-bound MAC of Algorithm 2 (defense):
//
//	MAC_i = H_Kh(blk ‖ PA ‖ VN ‖ layer_id ‖ fmap_idx ‖ blk_idx)
//
// truncated to 64 bits.
func BlockMAC(key, blk []byte, pos BlockPos) sha256x.MAC {
	msg := make([]byte, 0, len(blk)+28)
	msg = append(msg, blk...)
	msg = appendPos(msg, pos)
	return sha256x.TruncMAC(key, msg)
}

// NaiveBlockMAC computes the MAC the paper attacks: the hash of the
// ciphertext alone, with no position binding. Shuffling blocks that
// carry naive MACs leaves the XOR aggregate unchanged (RePA,
// Algorithm 2 lines 1-6).
func NaiveBlockMAC(key, blk []byte) sha256x.MAC {
	return sha256x.TruncMAC(key, blk)
}

// Aggregate is an order-independent XOR accumulator over 64-bit MACs.
// The zero value is an empty aggregate.
type Aggregate struct {
	sum sha256x.MAC
	n   int
}

// Add folds a MAC into the aggregate.
func (a *Aggregate) Add(m sha256x.MAC) {
	a.sum ^= m
	a.n++
}

// Remove cancels a previously added MAC (XOR is its own inverse),
// enabling the incremental update used when a block is rewritten.
func (a *Aggregate) Remove(m sha256x.MAC) {
	a.sum ^= m
	if a.n > 0 {
		a.n--
	}
}

// Update replaces old with new in one step.
func (a *Aggregate) Update(oldMAC, newMAC sha256x.MAC) {
	a.sum ^= oldMAC ^ newMAC
}

// Sum returns the current aggregate MAC.
func (a *Aggregate) Sum() sha256x.MAC { return a.sum }

// Len returns the number of MACs currently folded in (adds minus
// removes).
func (a *Aggregate) Len() int { return a.n }

// AggregateOf folds a slice of MACs, in any order, into one value.
func AggregateOf(macs []sha256x.MAC) sha256x.MAC {
	var a Aggregate
	for _, m := range macs {
		a.Add(m)
	}
	return a.Sum()
}

// LayerMAC is the per-layer aggregate kept by the multi-level
// verification mechanism. It records which layer it covers so the
// model-level fold can bind layer order.
type LayerMAC struct {
	LayerID uint32
	Agg     Aggregate
}

// ModelMAC folds layer MACs into the single on-chip model MAC. Layer
// order is bound by hashing each layer aggregate together with its
// layer id before folding, so swapping two whole layers changes the
// model MAC even though the fold itself is XOR.
type ModelMAC struct {
	key []byte
	agg Aggregate
}

// NewModelMAC creates a model MAC accumulator keyed with key.
func NewModelMAC(key []byte) *ModelMAC {
	k := make([]byte, len(key))
	copy(k, key)
	return &ModelMAC{key: k}
}

// AddLayer folds a finished layer MAC into the model MAC.
func (m *ModelMAC) AddLayer(l *LayerMAC) {
	m.agg.Add(m.bind(l))
}

// RemoveLayer cancels a layer previously folded in.
func (m *ModelMAC) RemoveLayer(l *LayerMAC) {
	m.agg.Remove(m.bind(l))
}

func (m *ModelMAC) bind(l *LayerMAC) sha256x.MAC {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], l.LayerID)
	binary.BigEndian.PutUint64(b[4:], uint64(l.Agg.Sum()))
	return sha256x.TruncMAC(m.key, b[:])
}

// Sum returns the model MAC.
func (m *ModelMAC) Sum() sha256x.MAC { return m.agg.Sum() }
