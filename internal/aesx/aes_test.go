package aesx

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C example vectors.
func TestEncryptFIPS197Vectors(t *testing.T) {
	cases := []struct {
		name, key, pt, ct string
	}{
		{
			name: "AES-128",
			key:  "000102030405060708090a0b0c0d0e0f",
			pt:   "00112233445566778899aabbccddeeff",
			ct:   "69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			name: "AES-192",
			key:  "000102030405060708090a0b0c0d0e0f1011121314151617",
			pt:   "00112233445566778899aabbccddeeff",
			ct:   "dda97ca4864cdfe06eaf70a0ec0d7191",
		},
		{
			name: "AES-256",
			key:  "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			pt:   "00112233445566778899aabbccddeeff",
			ct:   "8ea2b7ca516745bfeafc49904b496089",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(mustHex(t, tc.key))
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 16)
			e.EncryptBlock(got, mustHex(t, tc.pt))
			if want := mustHex(t, tc.ct); !bytes.Equal(got, want) {
				t.Errorf("ciphertext = %x, want %x", got, want)
			}
			back := make([]byte, 16)
			e.DecryptBlock(back, got)
			if want := mustHex(t, tc.pt); !bytes.Equal(back, want) {
				t.Errorf("decrypt = %x, want %x", back, want)
			}
		})
	}
}

// FIPS-197 Appendix A.1 key expansion spot checks for AES-128.
func TestKeyExpansionAES128(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	e, err := NewEngine(key)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds() != 10 {
		t.Fatalf("rounds = %d, want 10", e.Rounds())
	}
	if e.NumRoundKeys() != 11 {
		t.Fatalf("num round keys = %d, want 11", e.NumRoundKeys())
	}
	rk0 := e.RoundKey(0)
	if !bytes.Equal(rk0[:], key) {
		t.Errorf("round key 0 = %x, want original key %x", rk0, key)
	}
	// w40..w43 from FIPS-197 Appendix A.1.
	wantLast := mustHex(t, "d014f9a8c9ee2589e13f0cc8b6630ca6")
	rk10 := e.RoundKey(10)
	if !bytes.Equal(rk10[:], wantLast) {
		t.Errorf("round key 10 = %x, want %x", rk10, wantLast)
	}
}

func TestKeyExpansionAES256SpotCheck(t *testing.T) {
	// FIPS-197 Appendix A.3 key.
	key := mustHex(t, "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
	e, err := NewEngine(key)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds() != 14 {
		t.Fatalf("rounds = %d, want 14", e.Rounds())
	}
	// For AES-256 the first two round keys are the two halves of the
	// cipher key (w0..w7 are copied verbatim).
	rk0, rk1 := e.RoundKey(0), e.RoundKey(1)
	if !bytes.Equal(rk0[:], key[:16]) {
		t.Errorf("round key 0 = %x, want %x", rk0, key[:16])
	}
	if !bytes.Equal(rk1[:], key[16:]) {
		t.Errorf("round key 1 = %x, want %x", rk1, key[16:])
	}
}

func TestNewEngineRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 23, 25, 31, 33, 64} {
		if _, err := NewEngine(make([]byte, n)); err == nil {
			t.Errorf("NewEngine accepted %d-byte key", n)
		}
	}
}

func TestRoundKeyPanicsOutOfRange(t *testing.T) {
	e, _ := NewEngine(make([]byte, 16))
	for _, i := range []int{-1, 11, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RoundKey(%d) did not panic", i)
				}
			}()
			e.RoundKey(i)
		}()
	}
}

func TestEncryptDecryptRoundTripProperty(t *testing.T) {
	for _, ks := range []int{16, 24, 32} {
		ks := ks
		f := func(key [32]byte, pt [16]byte) bool {
			e, err := NewEngine(key[:ks])
			if err != nil {
				return false
			}
			ct := make([]byte, 16)
			e.EncryptBlock(ct, pt[:])
			back := make([]byte, 16)
			e.DecryptBlock(back, ct)
			return bytes.Equal(back, pt[:])
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("key size %d: %v", ks, err)
		}
	}
}

func TestEncryptBlockInPlace(t *testing.T) {
	e, _ := NewEngine(mustHex(t, "000102030405060708090a0b0c0d0e0f"))
	buf := mustHex(t, "00112233445566778899aabbccddeeff")
	e.EncryptBlock(buf, buf)
	if want := mustHex(t, "69c4e0d86a7b0430d8cdb78070b4c55a"); !bytes.Equal(buf, want) {
		t.Errorf("in-place encrypt = %x, want %x", buf, want)
	}
}

func TestEncryptBlockShortBufferPanics(t *testing.T) {
	e, _ := NewEngine(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("EncryptBlock with short buffer did not panic")
		}
	}()
	e.EncryptBlock(make([]byte, 8), make([]byte, 8))
}

func TestGF28Multiplication(t *testing.T) {
	// Classic test values for GF(2^8) with the AES polynomial.
	cases := []struct{ a, b, want byte }{
		{0x57, 0x83, 0xc1},
		{0x57, 0x13, 0xfe},
		{0x01, 0xff, 0xff},
		{0x00, 0x42, 0x00},
		{0x02, 0x80, 0x1b},
	}
	for _, c := range cases {
		if got := gmul(c.a, c.b); got != c.want {
			t.Errorf("gmul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestSboxInverseConsistency(t *testing.T) {
	for i := 0; i < 256; i++ {
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, invSbox[sbox[i]])
		}
		if sbox[invSbox[i]] != byte(i) {
			t.Fatalf("sbox[invSbox[%#x]] = %#x", i, sbox[invSbox[i]])
		}
	}
}

func TestMixColumnsInverse(t *testing.T) {
	f := func(blk [16]byte) bool {
		var s state
		s.load(blk[:])
		orig := s
		s.mixColumns()
		s.invMixColumns()
		return s == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRowsInverse(t *testing.T) {
	f := func(blk [16]byte) bool {
		var s state
		s.load(blk[:])
		orig := s
		s.shiftRows()
		s.invShiftRows()
		return s == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateLoadStoreRoundTrip(t *testing.T) {
	f := func(blk [16]byte) bool {
		var s state
		s.load(blk[:])
		out := make([]byte, 16)
		s.store(out)
		return bytes.Equal(out, blk[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
