package aesx

import (
	"bytes"
	"testing"
)

// NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt). Our CTR counter
// increments the low 64 bits (the VN field); the NIST initial counter
// block f0f1...feff does not carry into the high half across four
// increments, so the keystreams coincide.
func TestCTRNISTSP80038A(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := mustHex(t,
		"6bc1bee22e409f96e93d7e117393172a"+
			"ae2d8a571e03ac9c9eb76fac45af8e51"+
			"30c81c46a35ce411e5fbc1191a0a52ef"+
			"f69f2445df4f9b17ad2b417be66c3710")
	wantCT := mustHex(t,
		"874d6191b620e3261bef6864990db6ce"+
			"9806f66b7970fdff8617187bb9fffdff"+
			"5ae4df3edbd5d35e5b4f09020db03eab"+
			"1e031dda2fbe03d1792170a0f3009cee")

	e, err := NewEngine(key)
	if err != nil {
		t.Fatal(err)
	}
	c := Counter{PA: 0xf0f1f2f3f4f5f6f7, VN: 0xf8f9fafbfcfdfeff}
	got := make([]byte, len(pt))
	e.XORKeyStreamCTR(got, pt, c)
	if !bytes.Equal(got, wantCT) {
		t.Errorf("CTR keystream mismatch:\n got %x\nwant %x", got, wantCT)
	}

	// Decryption is the same operation.
	back := make([]byte, len(pt))
	e.XORKeyStreamCTR(back, got, c)
	if !bytes.Equal(back, pt) {
		t.Error("CTR round trip failed on NIST vector")
	}
}

// F.5.5 (CTR-AES256.Encrypt), first block.
func TestCTRNISTAES256FirstBlock(t *testing.T) {
	key := mustHex(t, "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
	pt := mustHex(t, "6bc1bee22e409f96e93d7e117393172a")
	want := mustHex(t, "601ec313775789a5b7a7f504bbf3d228")
	e, err := NewEngine(key)
	if err != nil {
		t.Fatal(err)
	}
	c := Counter{PA: 0xf0f1f2f3f4f5f6f7, VN: 0xf8f9fafbfcfdfeff}
	got := make([]byte, 16)
	e.XORKeyStreamCTR(got, pt, c)
	if !bytes.Equal(got, want) {
		t.Errorf("AES-256 CTR block = %x, want %x", got, want)
	}
}
