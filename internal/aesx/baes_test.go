package aesx

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestBAES(t *testing.T) *BAES {
	t.Helper()
	b, err := NewBAES([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCounterBytesLayout(t *testing.T) {
	c := Counter{PA: 0x0102030405060708, VN: 0x1112131415161718}
	b := c.Bytes()
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18}
	if !bytes.Equal(b[:], want) {
		t.Errorf("counter bytes = %x, want %x", b, want)
	}
}

func TestOTPDeterministicAndCounterSensitive(t *testing.T) {
	b := newTestBAES(t)
	c := Counter{PA: 0x1000, VN: 7}
	o1 := b.Engine().OTP(c)
	o2 := b.Engine().OTP(c)
	if o1 != o2 {
		t.Error("OTP not deterministic for identical counters")
	}
	if o3 := b.Engine().OTP(Counter{PA: 0x1000, VN: 8}); o3 == o1 {
		t.Error("OTP unchanged when VN incremented")
	}
	if o4 := b.Engine().OTP(Counter{PA: 0x1040, VN: 7}); o4 == o1 {
		t.Error("OTP unchanged when PA changed")
	}
}

func TestSegmentPadsDistinct(t *testing.T) {
	b := newTestBAES(t)
	c := Counter{PA: 0xdead0000, VN: 42}
	// Cover within-schedule (<=11), exactly at schedule, and extension
	// lanes (e.g. a 512B block needs 32 pads).
	for _, n := range []int{1, 2, 4, 11, 12, 22, 32, 64} {
		pads := b.SegmentPads(c, n)
		if len(pads) != n {
			t.Fatalf("n=%d: got %d pads", n, len(pads))
		}
		seen := make(map[[16]byte]int, n)
		for i, p := range pads {
			if j, dup := seen[p]; dup {
				t.Errorf("n=%d: pad %d duplicates pad %d (SECA defense broken)", n, i, j)
			}
			seen[p] = i
		}
	}
}

func TestSegmentPadsStablePrefix(t *testing.T) {
	// Asking for more pads must not change earlier pads: hardware
	// generates them in sequence.
	b := newTestBAES(t)
	c := Counter{PA: 0x40, VN: 1}
	small := b.SegmentPads(c, 4)
	large := b.SegmentPads(c, 40)
	for i := range small {
		if small[i] != large[i] {
			t.Errorf("pad %d differs between n=4 and n=40 requests", i)
		}
	}
}

func TestXORSegmentsInvolution(t *testing.T) {
	b := newTestBAES(t)
	f := func(data []byte, pa, vn uint64) bool {
		c := Counter{PA: pa, VN: vn}
		ct := make([]byte, len(data))
		b.XORSegments(ct, data, c)
		back := make([]byte, len(data))
		b.XORSegments(back, ct, c)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORSegmentsAt512BBlock(t *testing.T) {
	b := newTestBAES(t)
	c := Counter{PA: 0x200, VN: 3}
	pt := make([]byte, 512)
	for i := range pt {
		pt[i] = byte(i * 31)
	}
	ct := make([]byte, 512)
	b.XORSegments(ct, pt, c)
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := make([]byte, 512)
	b.XORSegments(back, ct, c)
	if !bytes.Equal(back, pt) {
		t.Fatal("512B round trip failed")
	}
}

func TestXORSegmentsSegmentsUseDistinctPads(t *testing.T) {
	// Encrypting all-zero plaintext exposes the raw pads in the
	// ciphertext; any equal 16B segments would indicate pad reuse.
	b := newTestBAES(t)
	pt := make([]byte, 256)
	ct := make([]byte, 256)
	b.XORSegments(ct, pt, Counter{PA: 0x80, VN: 9})
	for i := 0; i < len(ct); i += 16 {
		for j := i + 16; j < len(ct); j += 16 {
			if bytes.Equal(ct[i:i+16], ct[j:j+16]) {
				t.Fatalf("segments %d and %d share a pad", i/16, j/16)
			}
		}
	}
}

func TestSharedPadXORReusesPad(t *testing.T) {
	// The insecure strawman must visibly reuse the pad (this is what
	// SECA exploits).
	b := newTestBAES(t)
	pt := make([]byte, 64)
	ct := make([]byte, 64)
	b.SharedPadXOR(ct, pt, Counter{PA: 0, VN: 0})
	for i := 16; i < 64; i += 16 {
		if !bytes.Equal(ct[:16], ct[i:i+16]) {
			t.Fatalf("segment %d does not reuse the shared pad", i/16)
		}
	}
}

func TestSharedPadXORInvolution(t *testing.T) {
	b := newTestBAES(t)
	f := func(data []byte, pa, vn uint64) bool {
		c := Counter{PA: pa, VN: vn}
		ct := make([]byte, len(data))
		b.SharedPadXOR(ct, data, c)
		back := make([]byte, len(data))
		b.SharedPadXOR(back, ct, c)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORKeyStreamCTRRoundTrip(t *testing.T) {
	e, err := NewEngine([]byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, pa, vn uint64) bool {
		c := Counter{PA: pa, VN: vn}
		ct := make([]byte, len(data))
		e.XORKeyStreamCTR(ct, data, c)
		back := make([]byte, len(data))
		e.XORKeyStreamCTR(back, ct, c)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBAESDifferentKeysDifferentPads(t *testing.T) {
	b1, _ := NewBAES([]byte("0123456789abcdef"))
	b2, _ := NewBAES([]byte("0123456789abcdeg"))
	c := Counter{PA: 64, VN: 1}
	p1 := b1.SegmentPads(c, 4)
	p2 := b2.SegmentPads(c, 4)
	for i := range p1 {
		if p1[i] == p2[i] {
			t.Errorf("pad %d identical under different keys", i)
		}
	}
}

func TestNewBAESRejectsBadKey(t *testing.T) {
	if _, err := NewBAES(make([]byte, 13)); err == nil {
		t.Error("NewBAES accepted 13-byte key")
	}
}

func TestSegmentPadsNegativePanics(t *testing.T) {
	b := newTestBAES(t)
	defer func() {
		if recover() == nil {
			t.Error("SegmentPads(-1) did not panic")
		}
	}()
	b.SegmentPads(Counter{}, -1)
}
