package aesx

import "fmt"

// BAES is SeDA's bandwidth-aware encryption unit (paper §III-B,
// Fig. 3(a), Algorithm 1 "Defense of SECA").
//
// A single AES engine produces one base OTP per protection block:
//
//	OTP = AES-CTR_Ke(PA ‖ VN)
//
// and the Crypt Engine derives one distinct pad per 128-bit segment by
// XORing the base OTP with the round keys k_i already available from
// the engine's KeyExpansion module:
//
//	OTP_i = OTP ⊕ k_i
//
// Because each segment pad is distinct, a Single-Element Collision
// Attack that recovers one pad learns nothing about the other segments,
// while the hardware cost is a bank of XOR gates instead of N-1 extra
// AES engines.
//
// When a protection block holds more segments than the schedule has
// round keys (AES-128 yields 11), the unit extends the supply by
// re-running KeyExpansion with the tweaked input key ⊕ (PA ‖ VN‖lane),
// as described at the end of §III-B. The tweak includes a lane index so
// that successive extensions are themselves distinct.
type BAES struct {
	engine *Engine
	key    []byte // retained to derive extension schedules
}

// NewBAES builds a bandwidth-aware encryption unit around a single AES
// engine keyed with key.
func NewBAES(key []byte) (*BAES, error) {
	e, err := NewEngine(key)
	if err != nil {
		return nil, err
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &BAES{engine: e, key: k}, nil
}

// Engine exposes the single underlying AES engine (e.g. for the
// hardware cost model, which charges for exactly one).
func (b *BAES) Engine() *Engine { return b.engine }

// SegmentPads derives n distinct 16-byte pads for the protection block
// identified by counter c. Pad i covers the block's i-th 128-bit
// segment. The first NumRoundKeys pads come from the base OTP XORed
// with round keys; beyond that, extension schedules are derived from
// key ⊕ (PA ‖ VN ‖ lane).
func (b *BAES) SegmentPads(c Counter, n int) [][16]byte {
	if n < 0 {
		panic(fmt.Sprintf("aesx: negative segment count %d", n))
	}
	pads := make([][16]byte, n)
	base := b.engine.OTP(c)
	nrk := b.engine.NumRoundKeys()
	for i := 0; i < n && i < nrk; i++ {
		rk := b.engine.RoundKey(i)
		for j := 0; j < BlockSize; j++ {
			pads[i][j] = base[j] ^ rk[j]
		}
	}
	for lane := 0; nrk+lane*nrk < n; lane++ {
		ext := b.extensionEngine(c, uint64(lane+1))
		extBase := ext.OTP(c)
		for i := 0; i < nrk; i++ {
			idx := nrk + lane*nrk + i
			if idx >= n {
				break
			}
			rk := ext.RoundKey(i)
			for j := 0; j < BlockSize; j++ {
				pads[idx][j] = extBase[j] ^ rk[j]
			}
		}
	}
	return pads
}

// extensionEngine derives the lane-th extension key schedule by
// tweaking the KeyExpansion input with the block's counter and the
// lane index.
func (b *BAES) extensionEngine(c Counter, lane uint64) *Engine {
	tweaked := make([]byte, len(b.key))
	copy(tweaked, b.key)
	cb := Counter{PA: c.PA ^ lane, VN: c.VN + lane}.Bytes()
	for i := 0; i < BlockSize && i < len(tweaked); i++ {
		tweaked[i] ^= cb[i]
	}
	e, err := NewEngine(tweaked)
	if err != nil {
		// The tweaked key has the same length as the original, which
		// was already validated; this cannot fail.
		panic("aesx: extension engine construction failed: " + err.Error())
	}
	return e
}

// XORSegments encrypts or decrypts a protection block in place
// semantics: dst[i] = src[i] ^ pad(segment(i)). The operation is an
// involution, so the same call performs both directions (Eq. 1/2).
// len(dst) must be >= len(src).
func (b *BAES) XORSegments(dst, src []byte, c Counter) {
	nseg := (len(src) + BlockSize - 1) / BlockSize
	pads := b.SegmentPads(c, nseg)
	for i := 0; i < len(src); i++ {
		dst[i] = src[i] ^ pads[i/BlockSize][i%BlockSize]
	}
}

// SharedPadXOR models the *insecure* strawman the paper attacks: every
// 128-bit segment of the block reuses the single base OTP. It exists so
// tests and the attack demo can show SECA succeeding against it.
func (b *BAES) SharedPadXOR(dst, src []byte, c Counter) {
	pad := b.engine.OTP(c)
	for i := 0; i < len(src); i++ {
		dst[i] = src[i] ^ pad[i%BlockSize]
	}
}
