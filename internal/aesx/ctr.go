package aesx

import "encoding/binary"

// Counter is the AES-CTR counter block used by memory-protection
// schemes: the concatenation PA ‖ VN of a protection block's physical
// address and its version number (paper Eq. 1/2). The physical address
// occupies the high 8 bytes and the version number the low 8 bytes;
// SeDA and SGX use 56-bit VNs, which fit.
type Counter struct {
	PA uint64 // physical address of the protection block
	VN uint64 // version number, incremented on every write
}

// Bytes returns the 16-byte counter block PA ‖ VN.
func (c Counter) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], c.PA)
	binary.BigEndian.PutUint64(b[8:16], c.VN)
	return b
}

// OTP generates the base one-time pad for a counter:
// AES-CTR_Ke(PA ‖ VN), the quantity on the right-hand side of
// Eq. 1/2 in the paper.
func (e *Engine) OTP(c Counter) [16]byte {
	in := c.Bytes()
	var out [16]byte
	e.EncryptBlock(out[:], in[:])
	return out
}

// XORKeyStreamCTR applies the textbook AES-CTR keystream to src,
// writing to dst, starting from counter c and incrementing the VN
// field per 16-byte segment. It is the T-AES reference behaviour where
// each 128-bit segment gets an independent AES invocation; used as a
// cross-check for the bandwidth-aware path and by the T-AES cost
// model. len(dst) must be >= len(src).
func (e *Engine) XORKeyStreamCTR(dst, src []byte, c Counter) {
	for off := 0; off < len(src); off += BlockSize {
		pad := e.OTP(c)
		n := len(src) - off
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ pad[i]
		}
		c.VN++
	}
}
