package aesx

import (
	"encoding/binary"
	"fmt"
)

// Counter is the AES-CTR counter block used by memory-protection
// schemes: the concatenation PA ‖ VN of a protection block's physical
// address and its version number (paper Eq. 1/2). The physical address
// occupies the high 8 bytes and the version number the low 8 bytes;
// SeDA and SGX use 56-bit VNs, which fit.
type Counter struct {
	PA uint64 // physical address of the protection block
	VN uint64 // version number, incremented on every write
}

// Bytes returns the 16-byte counter block PA ‖ VN.
func (c Counter) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], c.PA)
	binary.BigEndian.PutUint64(b[8:16], c.VN)
	return b
}

// OTP generates the base one-time pad for a counter:
// AES-CTR_Ke(PA ‖ VN), the quantity on the right-hand side of
// Eq. 1/2 in the paper.
func (e *Engine) OTP(c Counter) [16]byte {
	in := c.Bytes()
	var out [16]byte
	e.EncryptBlock(out[:], in[:])
	return out
}

// ctrBatch is how many counter blocks XORKeyStreamCTR encrypts per
// keystream pass. Walking the round loop once for a batch of states
// amortizes the round-key loads across the batch, the software
// analogue of a wide T-table datapath pass.
const ctrBatch = 8

// XORKeyStreamCTR applies the textbook AES-CTR keystream to src,
// writing to dst, starting from counter c and incrementing the VN
// field per 16-byte segment. It is the T-AES reference behaviour where
// each 128-bit segment gets an independent AES keystream block; used
// as a cross-check for the bandwidth-aware path and by the T-AES cost
// model. len(dst) must be >= len(src); anything shorter would silently
// truncate the ciphertext, so it panics.
//
// Counter blocks are encrypted ctrBatch at a time: each round key is
// loaded once per batch instead of once per block, which is what makes
// the T-AES baseline in BenchmarkBAESvsTAESPads fair. The keystream is
// identical to the one-block-at-a-time reference (NIST SP 800-38A
// vectors, TestCTRBatchMatchesBlockwise).
func (e *Engine) XORKeyStreamCTR(dst, src []byte, c Counter) {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("aesx: XORKeyStreamCTR dst length %d < src length %d", len(dst), len(src)))
	}
	var pads [ctrBatch * BlockSize]byte
	for off := 0; off < len(src); off += ctrBatch * BlockSize {
		remain := len(src) - off
		nb := (remain + BlockSize - 1) / BlockSize
		if nb > ctrBatch {
			nb = ctrBatch
		}
		e.encryptCounterBlocks(pads[:nb*BlockSize], c)
		c.VN += uint64(nb)
		n := remain
		if n > nb*BlockSize {
			n = nb * BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ pads[i]
		}
	}
}

// encryptCounterBlocks fills pads (a multiple of BlockSize, at most
// ctrBatch blocks) with AES(PA ‖ VN+b) for b = 0.. — the counter
// keystream — applying each round to every state in the batch before
// advancing to the next round key.
func (e *Engine) encryptCounterBlocks(pads []byte, c Counter) {
	nb := len(pads) / BlockSize
	var sts [ctrBatch]state
	for b := 0; b < nb; b++ {
		blk := Counter{PA: c.PA, VN: c.VN + uint64(b)}.Bytes()
		sts[b].load(blk[:])
		sts[b].addRoundKey(&e.roundKeys[0])
	}
	for r := 1; r < e.rounds; r++ {
		rk := &e.roundKeys[r]
		for b := 0; b < nb; b++ {
			sts[b].subBytes()
			sts[b].shiftRows()
			sts[b].mixColumns()
			sts[b].addRoundKey(rk)
		}
	}
	last := &e.roundKeys[e.rounds]
	for b := 0; b < nb; b++ {
		sts[b].subBytes()
		sts[b].shiftRows()
		sts[b].addRoundKey(last)
		sts[b].store(pads[b*BlockSize:])
	}
}
