package aesx

import (
	"bytes"
	"testing"
)

// blockwiseCTR is the pre-batching reference: one independent AES
// invocation per 16-byte segment.
func blockwiseCTR(e *Engine, dst, src []byte, c Counter) {
	for off := 0; off < len(src); off += BlockSize {
		pad := e.OTP(c)
		n := len(src) - off
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ pad[i]
		}
		c.VN++
	}
}

// TestCTRBatchMatchesBlockwise: the batched keystream is identical to
// the one-block-at-a-time reference at every length around the batch
// boundaries, including partial final segments.
func TestCTRBatchMatchesBlockwise(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(i*7 + keyLen)
		}
		e, err := NewEngine(key)
		if err != nil {
			t.Fatal(err)
		}
		c := Counter{PA: 0xdead_beef_0000_0000, VN: 0xfffffffffffffffd} // VN wraps mid-stream
		for _, n := range []int{0, 1, 15, 16, 17, 127, 128, 129, 255, 256, 640, 1000} {
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(i)
			}
			got := make([]byte, n)
			want := make([]byte, n)
			e.XORKeyStreamCTR(got, src, c)
			blockwiseCTR(e, want, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("key%d len=%d: batched CTR differs from blockwise reference", keyLen*8, n)
			}
		}
	}
}

// TestCTRRejectsShortDst is the regression test for the documented but
// unchecked len(dst) >= len(src) contract.
func TestCTRRejectsShortDst(t *testing.T) {
	e, err := NewEngine(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("short dst did not panic")
		}
	}()
	e.XORKeyStreamCTR(make([]byte, 31), make([]byte, 32), Counter{})
}

// TestCTRDstLongerThanSrc: extra dst capacity is allowed and left
// untouched beyond len(src).
func TestCTRDstLongerThanSrc(t *testing.T) {
	e, err := NewEngine(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 40)
	for i := range dst {
		dst[i] = 0xEE
	}
	e.XORKeyStreamCTR(dst, make([]byte, 20), Counter{PA: 1, VN: 2})
	for i := 20; i < len(dst); i++ {
		if dst[i] != 0xEE {
			t.Fatalf("dst[%d] clobbered beyond len(src)", i)
		}
	}
}

// BenchmarkXORKeyStreamCTR tracks the batched T-AES keystream rate
// (the ROADMAP item: amortize round-key loads over 8 counter blocks).
func BenchmarkXORKeyStreamCTR(b *testing.B) {
	e, err := NewEngine([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		e.XORKeyStreamCTR(buf, buf, Counter{PA: 0x1000, VN: uint64(i)})
	}
}
