// Package aesx implements the AES block cipher (FIPS-197) with an
// exported key schedule, counter-mode keystream generation, and the
// bandwidth-aware OTP derivation (B-AES) used by SeDA's Crypt Engine.
//
// The standard library's crypto/aes is deliberately not used: SeDA's
// bandwidth-aware encryption derives per-segment one-time pads by XORing
// the base OTP with the round keys produced by the engine's KeyExpansion
// module, and the standard library does not expose its key schedule.
//
// The implementation is a straightforward table-free software model of
// the hardware datapath in Fig. 2(b) of the paper: AddRoundKey,
// SubBytes, ShiftRows, MixColumns and KeyExpansion, operating on a
// 4x4 column-major state.
package aesx

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes (128 bits).
const BlockSize = 16

// Key sizes in bytes supported by the engine.
const (
	KeySize128 = 16
	KeySize192 = 24
	KeySize256 = 32
)

// Engine is a single AES engine instance with a fixed expanded key
// schedule. It models the hardware unit in Fig. 2(b): one engine
// en/decrypts one 128-bit block at a time.
type Engine struct {
	rounds    int        // 10, 12 or 14
	roundKeys [][16]byte // rounds+1 round keys of 16 bytes each
}

// NewEngine expands key (16, 24 or 32 bytes) and returns an engine.
func NewEngine(key []byte) (*Engine, error) {
	var rounds int
	switch len(key) {
	case KeySize128:
		rounds = 10
	case KeySize192:
		rounds = 12
	case KeySize256:
		rounds = 14
	default:
		return nil, fmt.Errorf("aesx: invalid key size %d (want 16, 24 or 32)", len(key))
	}
	e := &Engine{rounds: rounds}
	e.roundKeys = expandKey(key, rounds)
	return e, nil
}

// Rounds returns the number of AES rounds (10 for AES-128, 12 for
// AES-192, 14 for AES-256).
func (e *Engine) Rounds() int { return e.rounds }

// RoundKey returns a copy of round key i (0 <= i <= Rounds()). Round
// key 0 is the original cipher key's first 128 bits.
func (e *Engine) RoundKey(i int) [16]byte {
	if i < 0 || i > e.rounds {
		panic(fmt.Sprintf("aesx: round key index %d out of range [0,%d]", i, e.rounds))
	}
	return e.roundKeys[i]
}

// NumRoundKeys returns the number of round keys in the schedule
// (Rounds()+1).
func (e *Engine) NumRoundKeys() int { return e.rounds + 1 }

// EncryptBlock encrypts one 16-byte block src into dst. dst and src
// may overlap.
func (e *Engine) EncryptBlock(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aesx: EncryptBlock buffers must be at least 16 bytes")
	}
	var s state
	s.load(src)
	s.addRoundKey(&e.roundKeys[0])
	for r := 1; r < e.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(&e.roundKeys[r])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(&e.roundKeys[e.rounds])
	s.store(dst)
}

// DecryptBlock decrypts one 16-byte block src into dst. dst and src
// may overlap. It is provided for completeness and for validating the
// datapath; AES-CTR mode (used by SeDA) only ever runs the forward
// cipher.
func (e *Engine) DecryptBlock(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aesx: DecryptBlock buffers must be at least 16 bytes")
	}
	var s state
	s.load(src)
	s.addRoundKey(&e.roundKeys[e.rounds])
	for r := e.rounds - 1; r > 0; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(&e.roundKeys[r])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(&e.roundKeys[0])
	s.store(dst)
}

// state is the AES 4x4 byte state in column-major order: state[r][c]
// holds byte 4*c+r of the block, matching FIPS-197 Fig. 3.
type state [4][4]byte

func (s *state) load(b []byte) {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[r][c] = b[4*c+r]
		}
	}
}

func (s *state) store(b []byte) {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			b[4*c+r] = s[r][c]
		}
	}
}

func (s *state) addRoundKey(rk *[16]byte) {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[r][c] ^= rk[4*c+r]
		}
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

// xtime multiplies by x (i.e. {02}) in GF(2^8) with the AES polynomial.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return (b << 1) ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two bytes in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[1][c] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[2][c] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[3][c] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[1][c] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[2][c] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[3][c] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// expandKey implements the FIPS-197 KeyExpansion routine and packs the
// resulting word schedule into 16-byte round keys.
func expandKey(key []byte, rounds int) [][16]byte {
	nk := len(key) / 4
	nw := 4 * (rounds + 1)
	w := make([]uint32, nw)
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1) << 24
	for i := nk; i < nw; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ rcon
			rcon = uint32(xtime(byte(rcon>>24))) << 24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	rks := make([][16]byte, rounds+1)
	for r := 0; r <= rounds; r++ {
		for c := 0; c < 4; c++ {
			binary.BigEndian.PutUint32(rks[r][4*c:], w[4*r+c])
		}
	}
	return rks
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 |
		uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 |
		uint32(sbox[w&0xff])
}
