// Package rescache is a content-addressed result cache for expensive,
// deterministic evaluations. Values are opaque byte blobs addressed by
// a caller-supplied key (in practice a canonical SHA-256 fingerprint of
// the evaluation's full input, see seda.ConfigFingerprint), so a key
// can only ever map to one value and entries never need invalidation —
// changing any input changes the key.
//
// The cache is three layers deep:
//
//   - an in-memory LRU bounded by entry count,
//   - an optional write-through disk layer (one file per key, written
//     atomically and sealed with a SHA-256 integrity footer so torn or
//     bit-rotted entries are detected on read), surviving process
//     restarts,
//   - a singleflight front: concurrent lookups of the same missing key
//     coalesce onto one computation; the rest block and share its
//     result. N identical concurrent requests perform exactly one
//     evaluation.
//
// Computations are cancellation-aware and crash-isolated. Each compute
// runs on its own goroutine under a context detached from any single
// caller: a caller whose context is cancelled detaches immediately
// (GetOrComputeCtx returns ctx.Err()) without leaking its compute slot
// or poisoning the other waiters, and the computation itself is
// cancelled only when every interested caller has detached — one
// impatient client never kills a result another client is still
// waiting for. An optional per-compute deadline
// (Options.ComputeTimeout) bounds how long a stuck evaluation can
// occupy a compute slot, and a panicking compute is recovered into an
// error (wrapping ErrComputePanic) delivered to all waiters instead of
// taking the process down. Failed or cancelled computations are never
// cached, so the cache only ever holds complete results.
//
// All methods are safe for concurrent use. Returned blobs are shared —
// callers must treat them as read-only.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// ErrSaturated is returned by GetOrCompute when the cache cannot serve
// a key from any layer and the bounded compute capacity
// (Options.MaxInflightComputes) is fully occupied by other keys. The
// result is not cached, so a later call retries; servers map it to a
// 503 with Retry-After.
var ErrSaturated = errors.New("rescache: compute capacity saturated")

// ErrCacheOnly is returned by GetOrCompute on a cache-only instance
// (Options.CacheOnly) when the key is in neither the memory nor the
// disk layer. A cache-only instance never evaluates: it is the
// degraded-serving tier of a cluster front-end, answering only what
// some replica already published to the shared disk directory.
var ErrCacheOnly = errors.New("rescache: miss on cache-only instance")

// ErrComputePanic is wrapped by the error every waiter receives when a
// computation panics. The panic is recovered on the compute goroutine,
// so the process survives and the compute slot is released.
var ErrComputePanic = errors.New("rescache: compute panicked")

// Failpoint site names (see internal/failpoint). Armed in chaos tests
// and via SEDA_FAILPOINTS; no-ops otherwise.
const (
	// FailpointDiskGet injects a disk read error (counted in
	// Stats.DiskReadErrors; the lookup degrades to a miss).
	FailpointDiskGet = "rescache.diskGet"
	// FailpointDiskCorrupt corrupts the bytes read from disk before
	// integrity verification, simulating a torn read.
	FailpointDiskCorrupt = "rescache.diskGet.corrupt"
	// FailpointDiskPut injects a disk write error (counted in
	// Stats.DiskWriteErrors; the entry stays memory-only).
	FailpointDiskPut = "rescache.diskPut"
	// FailpointCompute fires at the top of every computation, with the
	// compute's context: sleep = slow compute, panic = crashing
	// compute, error = failing compute, EnableFunc = cancel-at-point.
	FailpointCompute = "rescache.compute"
)

// DefaultMaxEntries bounds the in-memory LRU when Options.MaxEntries
// is zero. Entries are whole sweep results (a few KB each), so the
// default comfortably holds every (NPU, workload) pair of the paper's
// evaluation many times over.
const DefaultMaxEntries = 1024

// footerLen is the length of the disk-entry integrity footer: a
// SHA-256 digest of the payload appended at the end of the file. A
// file whose digest does not match (truncated write, bit rot, a
// pre-footer legacy entry) is treated as a miss, counted in
// Stats.DiskReadErrors and deleted, so the next lookup recomputes and
// rewrites a sealed entry — corruption self-heals and corrupted bytes
// are never returned.
const footerLen = sha256.Size

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory LRU; 0 means DefaultMaxEntries.
	MaxEntries int
	// Dir enables the disk layer when non-empty: every computed value
	// is written through to Dir/<key>, and memory misses consult the
	// directory before computing. The directory is created if needed.
	Dir string
	// MaxInflightComputes bounds how many distinct keys may be
	// computing at once; 0 means unlimited. Hits (memory, disk) and
	// coalesced waiters never consume a slot — only a full miss that
	// would start a fresh evaluation does — and when no slot is free
	// GetOrCompute sheds the request with ErrSaturated instead of
	// queueing unbounded CPU work.
	MaxInflightComputes int
	// ComputeTimeout bounds each computation's wall-clock time; 0
	// means unbounded. The deadline is attached to the context the
	// compute function receives, so a cancellation-aware evaluation
	// unwinds and frees its compute slot instead of occupying it
	// forever; waiters receive context.DeadlineExceeded.
	ComputeTimeout time.Duration
	// CacheOnly makes the instance read-only with respect to
	// evaluation: lookups consult memory and disk, but a full miss
	// returns ErrCacheOnly instead of computing. This is the router's
	// graceful-degradation tier — a second Cache on a replica's Dir
	// that can serve published results while every replica is down.
	CacheOnly bool
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits            uint64 // served from the in-memory LRU
	DiskHits        uint64 // served from the disk layer (and promoted)
	Coalesced       uint64 // waited on an in-flight computation of the same key
	Computes        uint64 // actual evaluations executed
	Errors          uint64 // computations that returned an error (not cached)
	Shed            uint64 // misses rejected at the bounded compute capacity
	Panics          uint64 // computations that panicked (recovered into errors)
	DiskReadErrors  uint64 // disk lookups that failed or failed integrity verification
	DiskWriteErrors uint64 // disk write-throughs that failed (entry stays memory-only)
	Entries         int    // current in-memory entry count
	Inflight        int    // computations currently executing
}

// call is one in-flight computation; waiters block on done. waiters
// counts the callers (leader included) still interested in the result:
// a caller whose context is cancelled decrements it on the way out,
// and when it reaches zero cancel — set once the compute context
// exists — aborts the computation, freeing its slot. fromDisk records
// that the "computation" was actually a disk-layer hit.
type call struct {
	done     chan struct{}
	blob     []byte
	err      error
	fromDisk bool

	waiters int
	cancel  context.CancelFunc
}

// Cache is a content-addressed blob cache. The zero value is not
// usable; construct with New.
type Cache struct {
	maxEntries     int
	dir            string
	computeTimeout time.Duration
	cacheOnly      bool
	sem            chan struct{} // compute slots; nil = unlimited

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*call
	stats    Stats
}

type entry struct {
	key  string
	blob []byte
}

// ResolveDir interprets the -cache-dir convention shared by seda-serve
// and seda-sweep, so both tools warm the same entries: "off" (or
// empty) disables the disk layer, "auto" is a per-user default
// directory (memory-only when the platform has none), anything else is
// a literal path.
func ResolveDir(flagValue string) string {
	switch flagValue {
	case "", "off":
		return ""
	case "auto":
		base, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(base, "seda-repro")
	default:
		return flagValue
	}
}

// New builds a cache. If opts.Dir is non-empty the directory is
// created; a directory that cannot be created is an error (callers
// that want best-effort disk caching should drop the dir themselves).
func New(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: disk layer: %w", err)
		}
	}
	c := &Cache{
		maxEntries:     opts.MaxEntries,
		dir:            opts.Dir,
		computeTimeout: opts.ComputeTimeout,
		cacheOnly:      opts.CacheOnly,
		ll:             list.New(),
		entries:        make(map[string]*list.Element),
		inflight:       make(map[string]*call),
	}
	if opts.MaxInflightComputes > 0 {
		c.sem = make(chan struct{}, opts.MaxInflightComputes)
	}
	return c, nil
}

// Get returns the cached blob for key, consulting memory then disk.
// A disk hit is promoted into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if blob, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		return blob, true
	}
	c.mu.Unlock()

	blob, ok := c.diskGet(context.Background(), key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.stats.DiskHits++
	c.memAddLocked(key, blob)
	c.mu.Unlock()
	return blob, true
}

// GetOrCompute returns the blob for key, computing it at most once per
// process no matter how many goroutines ask concurrently. hit reports
// whether the caller's own request was served without running compute
// (memory hit, disk hit, or coalesced onto another caller's in-flight
// computation). Errors from compute are returned to every coalesced
// caller and are not cached.
//
// GetOrCompute never detaches (it waits until the computation
// resolves); cancellation-aware callers use GetOrComputeCtx.
func (c *Cache) GetOrCompute(key string, compute func() ([]byte, error)) (blob []byte, hit bool, err error) {
	var fn func(context.Context) ([]byte, error)
	if compute != nil {
		fn = func(context.Context) ([]byte, error) { return compute() }
	}
	return c.GetOrComputeCtx(context.Background(), key, fn)
}

// GetOrComputeCtx is GetOrCompute under a caller context. The context
// governs only this caller's wait, not the computation: compute runs
// on its own goroutine under a context derived from the cache (plus
// Options.ComputeTimeout), and ctx expiring makes this call return
// ctx.Err() immediately — the compute slot is not leaked, other
// waiters are unaffected, and the computation itself is cancelled only
// once every waiter has detached, so an abandoned evaluation stops
// burning CPU while a shared one survives any single client.
//
// compute receives that detached context and should honor it; the
// result of a cancelled or failed compute is never cached.
func (c *Cache) GetOrComputeCtx(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) (blob []byte, hit bool, err error) {
	// The get span covers the full lookup including a coalesced wait;
	// disk and compute child spans attach under it from the lead
	// goroutine via the detached context below.
	ctx, getSpan := obs.Start(ctx, obs.StageCacheGet)
	defer getSpan.End()
	c.mu.Lock()
	if blob, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		return blob, true, nil
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		cl.waiters++
		c.mu.Unlock()
		return c.wait(ctx, cl, false)
	}
	cl := &call{done: make(chan struct{}), waiters: 1}
	c.inflight[key] = cl
	c.mu.Unlock()

	// This call is the leader for key, but the work runs on a separate
	// goroutine so the leader can detach on cancellation exactly like a
	// coalesced waiter. The goroutine checks disk and, on a full miss,
	// evaluates; same-key callers block on cl.done. A fresh evaluation
	// needs a compute slot when the capacity is bounded — none free
	// means the whole machine is already saturated with evaluations, so
	// the computation (and everyone coalesced onto it) sheds with
	// ErrSaturated rather than piling more CPU work behind a growing
	// tail latency.
	// The lead goroutine gets the observability state of the leader's
	// context (current span, request ID) but none of its cancellation:
	// the computation outlives any single waiter by design, while its
	// spans should still land in the leading request's trace.
	go c.lead(obs.Detach(ctx), key, cl, compute)
	return c.wait(ctx, cl, true)
}

// wait blocks until the call resolves or the caller's context expires.
// On cancellation the caller detaches: its interest is withdrawn, and
// if it was the last interested party the computation itself is
// cancelled (freeing the compute slot as soon as the compute function
// observes its context).
func (c *Cache) wait(ctx context.Context, cl *call, leader bool) ([]byte, bool, error) {
	select {
	case <-cl.done:
		if cl.err != nil {
			return nil, false, cl.err
		}
		return cl.blob, !leader || cl.fromDisk, nil
	case <-ctx.Done():
		c.mu.Lock()
		cl.waiters--
		cancel := cl.cancel
		abandoned := cl.waiters == 0
		c.mu.Unlock()
		if abandoned && cancel != nil {
			cancel()
		}
		return nil, false, ctx.Err()
	}
}

// lead runs one key's resolution on its own goroutine: disk probe,
// slot acquisition, compute, accounting, publication. octx carries
// only observability state (see GetOrComputeCtx), never cancellation.
func (c *Cache) lead(octx context.Context, key string, cl *call, compute func(context.Context) ([]byte, error)) {
	if diskBlob, ok := c.diskGet(octx, key); ok {
		cl.blob, cl.fromDisk = diskBlob, true
	} else if c.cacheOnly {
		// A cache-only instance answers only what is already published;
		// a full miss is a defined outcome, not a failure, and consumes
		// no compute slot.
		cl.err = ErrCacheOnly
	} else if c.sem != nil {
		select {
		case c.sem <- struct{}{}:
			c.runCompute(octx, cl, compute)
			<-c.sem
		default:
			cl.err = ErrSaturated
		}
	} else {
		c.runCompute(octx, cl, compute)
	}

	// Write through to disk before publishing, so a caller that
	// observed the result can rely on the disk entry existing (and a
	// write failure is already counted when Stats is read).
	if cl.err == nil && !cl.fromDisk {
		c.diskPut(octx, key, cl.blob)
	}

	c.mu.Lock()
	delete(c.inflight, key)
	switch {
	case errors.Is(cl.err, ErrSaturated):
		c.stats.Shed++
	case errors.Is(cl.err, ErrCacheOnly):
		// Neither an error nor a shed: a cache-only miss is the
		// instance doing exactly its job.
	case cl.err != nil:
		c.stats.Errors++
		if errors.Is(cl.err, ErrComputePanic) {
			c.stats.Panics++
		}
	case cl.fromDisk:
		c.stats.DiskHits++
		c.memAddLocked(key, cl.blob)
	default:
		c.stats.Computes++
		c.memAddLocked(key, cl.blob)
	}
	c.mu.Unlock()
	close(cl.done)
}

// runCompute executes compute under the call's detached context,
// converting panics into errors so a crashing evaluation cannot take
// the process down or strand its waiters.
func (c *Cache) runCompute(octx context.Context, cl *call, compute func(context.Context) ([]byte, error)) {
	// octx (a Detach product) contributes spans and the request ID but
	// no deadline, so the compute lifetime rules are exactly as before:
	// ComputeTimeout or explicit abandonment, nothing else.
	ctx := octx
	var cancel context.CancelFunc
	if c.computeTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.computeTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	ctx, span := obs.Start(ctx, obs.StageCompute)
	defer span.End()

	c.mu.Lock()
	cl.cancel = cancel
	abandoned := cl.waiters == 0
	c.mu.Unlock()
	if abandoned {
		// Every caller detached before the compute context existed;
		// start it pre-cancelled so a context-aware compute returns
		// immediately instead of evaluating for nobody.
		cancel()
	}

	defer func() {
		if r := recover(); r != nil {
			cl.blob, cl.err = nil, fmt.Errorf("%w: %v", ErrComputePanic, r)
		}
	}()
	if err := failpoint.Inject(ctx, FailpointCompute); err != nil {
		cl.err = err
		return
	}
	cl.blob, cl.err = compute(ctx)
}

// ComputeSlots returns the bounded compute capacity (0 = unlimited).
// Callers that fan one logical request out over several keys should
// bound their own parallelism by this, so a single request cannot
// saturate the capacity against itself.
func (c *Cache) ComputeSlots() int { return cap(c.sem) }

// Evict removes key from the in-memory LRU and the disk layer. It is
// the recovery path for corrupt entries (e.g. a truncated cache file):
// the next lookup recomputes instead of re-serving the bad blob.
func (c *Cache) Evict(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if path, ok := c.diskPath(key); ok {
		os.Remove(path) //nolint:errcheck
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Inflight = len(c.inflight)
	return s
}

// Len returns the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) memGetLocked(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry).blob, true
}

func (c *Cache) memAddLocked(key string, blob []byte) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).blob = blob
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, blob: blob})
	for c.ll.Len() > c.maxEntries {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
	}
}

// diskPath maps a key to its file. Keys are hex fingerprints, so they
// are path-safe; reject anything else to keep the cache dir closed
// under arbitrary key inputs.
func (c *Cache) diskPath(key string) (string, bool) {
	if c.dir == "" || key == "" {
		return "", false
	}
	for _, r := range key {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F') {
			return "", false
		}
	}
	return filepath.Join(c.dir, key), true
}

func (c *Cache) noteDiskReadError() {
	c.mu.Lock()
	c.stats.DiskReadErrors++
	c.mu.Unlock()
}

func (c *Cache) noteDiskWriteError() {
	c.mu.Lock()
	c.stats.DiskWriteErrors++
	c.mu.Unlock()
}

// diskGet reads and verifies a disk entry. IO failures (other than the
// file simply not existing) and integrity-footer mismatches count as
// disk read errors and degrade to a miss; a corrupt file is deleted so
// the recompute path rewrites a sealed entry.
func (c *Cache) diskGet(ctx context.Context, key string) ([]byte, bool) {
	path, ok := c.diskPath(key)
	if !ok {
		return nil, false
	}
	span := obs.StartChild(ctx, obs.StageCacheDisk)
	defer span.End()
	if err := failpoint.Inject(nil, FailpointDiskGet); err != nil {
		c.noteDiskReadError()
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.noteDiskReadError()
		}
		return nil, false
	}
	raw = failpoint.Corrupt(FailpointDiskCorrupt, raw)
	if len(raw) < footerLen {
		c.noteDiskReadError()
		os.Remove(path) //nolint:errcheck
		return nil, false
	}
	blob, footer := raw[:len(raw)-footerLen], raw[len(raw)-footerLen:]
	if sum := sha256.Sum256(blob); [footerLen]byte(footer) != sum {
		c.noteDiskReadError()
		os.Remove(path) //nolint:errcheck
		return nil, false
	}
	return blob, true
}

// diskPut writes the blob plus its integrity footer atomically (temp
// file + rename) so readers never observe a torn entry, and torn
// writes that slip through (power loss mid-rename on weaker
// filesystems) fail the footer check on read. Write failures keep the
// entry memory-only and are counted in Stats.DiskWriteErrors: the disk
// layer is an accelerator, not a store of record.
func (c *Cache) diskPut(ctx context.Context, key string, blob []byte) {
	path, ok := c.diskPath(key)
	if !ok {
		return
	}
	span := obs.StartChild(ctx, obs.StageCacheDisk)
	defer span.End()
	if err := failpoint.Inject(nil, FailpointDiskPut); err != nil {
		c.noteDiskWriteError()
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		c.noteDiskWriteError()
		return
	}
	name := tmp.Name()
	sum := sha256.Sum256(blob)
	_, werr := tmp.Write(blob)
	if werr == nil {
		_, werr = tmp.Write(sum[:])
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name) //nolint:errcheck
		c.noteDiskWriteError()
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name) //nolint:errcheck
		c.noteDiskWriteError()
	}
}
