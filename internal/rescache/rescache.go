// Package rescache is a content-addressed result cache for expensive,
// deterministic evaluations. Values are opaque byte blobs addressed by
// a caller-supplied key (in practice a canonical SHA-256 fingerprint of
// the evaluation's full input, see seda.ConfigFingerprint), so a key
// can only ever map to one value and entries never need invalidation —
// changing any input changes the key.
//
// The cache is three layers deep:
//
//   - an in-memory LRU bounded by entry count,
//   - an optional write-through disk layer (one file per key, written
//     atomically), surviving process restarts,
//   - a singleflight front: concurrent lookups of the same missing key
//     coalesce onto one computation; the rest block and share its
//     result. N identical concurrent requests perform exactly one
//     evaluation.
//
// All methods are safe for concurrent use. Returned blobs are shared —
// callers must treat them as read-only.
package rescache

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrSaturated is returned by GetOrCompute when the cache cannot serve
// a key from any layer and the bounded compute capacity
// (Options.MaxInflightComputes) is fully occupied by other keys. The
// result is not cached, so a later call retries; servers map it to a
// 503 with Retry-After.
var ErrSaturated = errors.New("rescache: compute capacity saturated")

// DefaultMaxEntries bounds the in-memory LRU when Options.MaxEntries
// is zero. Entries are whole sweep results (a few KB each), so the
// default comfortably holds every (NPU, workload) pair of the paper's
// evaluation many times over.
const DefaultMaxEntries = 1024

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory LRU; 0 means DefaultMaxEntries.
	MaxEntries int
	// Dir enables the disk layer when non-empty: every computed value
	// is written through to Dir/<key>, and memory misses consult the
	// directory before computing. The directory is created if needed.
	Dir string
	// MaxInflightComputes bounds how many distinct keys may be
	// computing at once; 0 means unlimited. Hits (memory, disk) and
	// coalesced waiters never consume a slot — only a full miss that
	// would start a fresh evaluation does — and when no slot is free
	// GetOrCompute sheds the request with ErrSaturated instead of
	// queueing unbounded CPU work.
	MaxInflightComputes int
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits      uint64 // served from the in-memory LRU
	DiskHits  uint64 // served from the disk layer (and promoted)
	Coalesced uint64 // waited on an in-flight computation of the same key
	Computes  uint64 // actual evaluations executed
	Errors    uint64 // computations that returned an error (not cached)
	Shed      uint64 // misses rejected at the bounded compute capacity
	Entries   int    // current in-memory entry count
	Inflight  int    // computations currently executing
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	blob []byte
	err  error
}

// Cache is a content-addressed blob cache. The zero value is not
// usable; construct with New.
type Cache struct {
	maxEntries int
	dir        string
	sem        chan struct{} // compute slots; nil = unlimited

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*call
	stats    Stats
}

type entry struct {
	key  string
	blob []byte
}

// ResolveDir interprets the -cache-dir convention shared by seda-serve
// and seda-sweep, so both tools warm the same entries: "off" (or
// empty) disables the disk layer, "auto" is a per-user default
// directory (memory-only when the platform has none), anything else is
// a literal path.
func ResolveDir(flagValue string) string {
	switch flagValue {
	case "", "off":
		return ""
	case "auto":
		base, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(base, "seda-repro")
	default:
		return flagValue
	}
}

// New builds a cache. If opts.Dir is non-empty the directory is
// created; a directory that cannot be created is an error (callers
// that want best-effort disk caching should drop the dir themselves).
func New(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: disk layer: %w", err)
		}
	}
	c := &Cache{
		maxEntries: opts.MaxEntries,
		dir:        opts.Dir,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*call),
	}
	if opts.MaxInflightComputes > 0 {
		c.sem = make(chan struct{}, opts.MaxInflightComputes)
	}
	return c, nil
}

// Get returns the cached blob for key, consulting memory then disk.
// A disk hit is promoted into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if blob, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		return blob, true
	}
	c.mu.Unlock()

	blob, ok := c.diskGet(key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.stats.DiskHits++
	c.memAddLocked(key, blob)
	c.mu.Unlock()
	return blob, true
}

// GetOrCompute returns the blob for key, computing it at most once per
// process no matter how many goroutines ask concurrently. hit reports
// whether the caller's own request was served without running compute
// (memory hit, disk hit, or coalesced onto another caller's in-flight
// computation). Errors from compute are returned to every coalesced
// caller and are not cached.
func (c *Cache) GetOrCompute(key string, compute func() ([]byte, error)) (blob []byte, hit bool, err error) {
	c.mu.Lock()
	if blob, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		return blob, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-cl.done
		return cl.blob, true, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	// This goroutine is the leader for key: it checks disk and, on a
	// full miss, evaluates. Both happen outside the lock so other keys
	// proceed; same-key callers block on cl.done above. A fresh
	// evaluation needs a compute slot when the capacity is bounded —
	// none free means the whole machine is already saturated with
	// evaluations, so the leader (and everyone coalesced onto it) sheds
	// with ErrSaturated rather than piling more CPU work behind a
	// growing tail latency.
	var fromDisk bool
	if diskBlob, ok := c.diskGet(key); ok {
		cl.blob, fromDisk = diskBlob, true
	} else if c.sem != nil {
		select {
		case c.sem <- struct{}{}:
			cl.blob, cl.err = compute()
			<-c.sem
		default:
			cl.err = ErrSaturated
		}
	} else {
		cl.blob, cl.err = compute()
	}

	c.mu.Lock()
	delete(c.inflight, key)
	switch {
	case errors.Is(cl.err, ErrSaturated):
		c.stats.Shed++
	case cl.err != nil:
		c.stats.Errors++
	case fromDisk:
		c.stats.DiskHits++
		c.memAddLocked(key, cl.blob)
	default:
		c.stats.Computes++
		c.memAddLocked(key, cl.blob)
	}
	c.mu.Unlock()
	close(cl.done)

	if cl.err != nil {
		return nil, false, cl.err
	}
	if !fromDisk {
		c.diskPut(key, cl.blob)
		return cl.blob, false, nil
	}
	return cl.blob, true, nil
}

// ComputeSlots returns the bounded compute capacity (0 = unlimited).
// Callers that fan one logical request out over several keys should
// bound their own parallelism by this, so a single request cannot
// saturate the capacity against itself.
func (c *Cache) ComputeSlots() int { return cap(c.sem) }

// Evict removes key from the in-memory LRU and the disk layer. It is
// the recovery path for corrupt entries (e.g. a truncated cache file):
// the next lookup recomputes instead of re-serving the bad blob.
func (c *Cache) Evict(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if path, ok := c.diskPath(key); ok {
		os.Remove(path) //nolint:errcheck
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Inflight = len(c.inflight)
	return s
}

// Len returns the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) memGetLocked(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry).blob, true
}

func (c *Cache) memAddLocked(key string, blob []byte) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).blob = blob
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, blob: blob})
	for c.ll.Len() > c.maxEntries {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
	}
}

// diskPath maps a key to its file. Keys are hex fingerprints, so they
// are path-safe; reject anything else to keep the cache dir closed
// under arbitrary key inputs.
func (c *Cache) diskPath(key string) (string, bool) {
	if c.dir == "" || key == "" {
		return "", false
	}
	for _, r := range key {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F') {
			return "", false
		}
	}
	return filepath.Join(c.dir, key), true
}

func (c *Cache) diskGet(key string) ([]byte, bool) {
	path, ok := c.diskPath(key)
	if !ok {
		return nil, false
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	return blob, true
}

// diskPut writes the blob atomically (temp file + rename) so readers
// never observe a torn entry. Write failures are ignored: the disk
// layer is an accelerator, not a store of record.
func (c *Cache) diskPut(key string, blob []byte) {
	path, ok := c.diskPath(key)
	if !ok {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name) //nolint:errcheck
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name) //nolint:errcheck
	}
}
