package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/failpoint"
)

// These tests pin the deployment shape the cluster router relies on:
// several Cache instances — in production, separate seda-serve
// processes plus the router's degraded-serving tier — sharing one
// -cache-dir. The disk directory is the only coordination channel, so
// the contracts under test are exactly the cross-process ones:
// atomic temp+rename publishes, integrity-footer verification on
// every read, and warm-hit handoff between instances that have never
// seen each other's keys in memory.

func sharedKey(i int) string {
	sum := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
	return hex.EncodeToString(sum[:])
}

// TestSharedDirWarmHandoff: what one instance computes and publishes,
// a second instance on the same directory serves as a disk hit without
// recomputing — the router's affinity reroute after a replica death
// stays warm through the shared tier.
func TestSharedDirWarmHandoff(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	key := sharedKey(1)
	want := []byte("computed-by-a")
	if _, _, err := a.GetOrCompute(key, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	got, hit, err := b.GetOrCompute(key, func() ([]byte, error) {
		t.Error("instance B recomputed a key instance A already published")
		return nil, errors.New("unreachable")
	})
	if err != nil || !hit || string(got) != string(want) {
		t.Fatalf("handoff: got %q hit=%v err=%v", got, hit, err)
	}
	if st := b.Stats(); st.DiskHits != 1 || st.Computes != 0 {
		t.Fatalf("instance B stats %+v, want DiskHits=1 Computes=0", st)
	}
}

// TestSharedDirConcurrentPublish hammers two instances with
// overlapping keys concurrently (run under -race in CI): every
// publish is temp+rename atomic, so no reader ever observes a torn
// entry — every lookup either misses or returns exactly the
// canonical bytes for its key, across instances.
func TestSharedDirConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	const keys = 32
	blob := func(i int) []byte { return []byte(fmt.Sprintf("value-%02d-%s", i, sharedKey(i))) }

	var wg sync.WaitGroup
	var torn atomic.Int64
	for _, c := range []*Cache{a, b} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				for round := 0; round < 8; round++ {
					for i := 0; i < keys; i++ {
						got, _, err := c.GetOrCompute(sharedKey(i), func() ([]byte, error) { return blob(i), nil })
						if err != nil {
							t.Error(err)
							return
						}
						if string(got) != string(blob(i)) {
							torn.Add(1)
						}
					}
				}
			}(c)
		}
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d lookups returned non-canonical bytes", n)
	}
	// Both instances may have raced the same publish; neither may have
	// recorded a read error — a concurrent rename must look like either
	// a miss or a complete entry, never a torn one.
	for name, c := range map[string]*Cache{"a": a, "b": b} {
		if st := c.Stats(); st.DiskReadErrors != 0 {
			t.Fatalf("instance %s stats %+v, want DiskReadErrors=0", name, st)
		}
	}
}

// TestSharedDirSelfHeal: an entry corrupted on disk (as the other
// process's reader would see after bit rot or a torn write on a weak
// filesystem) fails the integrity footer on instance B, degrades to a
// miss, recomputes, and republishes a sealed entry that instance A
// then reads back clean — corruption self-heals across the fleet and
// corrupted bytes are never served.
func TestSharedDirSelfHeal(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	key := sharedKey(2)
	want := []byte("precious-result")
	if _, _, err := a.GetOrCompute(key, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte on disk, leaving the footer stale.
	path := filepath.Join(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recomputed := false
	got, hit, err := b.GetOrCompute(key, func() ([]byte, error) {
		recomputed = true
		return want, nil
	})
	if err != nil || hit || !recomputed || string(got) != string(want) {
		t.Fatalf("self-heal: got %q hit=%v recomputed=%v err=%v", got, hit, recomputed, err)
	}
	if st := b.Stats(); st.DiskReadErrors != 1 || st.Computes != 1 {
		t.Fatalf("instance B stats %+v, want DiskReadErrors=1 Computes=1", st)
	}

	// Instance B republished a sealed entry; a fresh instance (cold
	// memory, like A after restart) reads it back as a clean disk hit.
	fresh, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.Get(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("read-back after heal: %q ok=%v", got, ok)
	}
}

// TestSharedDirCorruptFailpoint drives the same self-heal loop through
// the chaos grammar: the corrupt failpoint damages every read on one
// instance, so that instance always recomputes, while its publishes
// stay sealed and the unaffected instance keeps serving clean hits.
func TestSharedDirCorruptFailpoint(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	a, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	key := sharedKey(3)
	want := []byte("sealed-entry")
	if _, _, err := a.GetOrCompute(key, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// The failpoint is process-global, but only instance B performs a
	// disk read here (A would hit memory), so it models B's torn reads.
	if err := failpoint.Enable(FailpointDiskCorrupt, "corrupt"); err != nil {
		t.Fatal(err)
	}
	got, hit, err := b.GetOrCompute(key, func() ([]byte, error) { return want, nil })
	if err != nil || hit || string(got) != string(want) {
		t.Fatalf("corrupt-read lookup: got %q hit=%v err=%v", got, hit, err)
	}
	if st := b.Stats(); st.DiskReadErrors != 1 || st.Computes != 1 {
		t.Fatalf("instance B stats %+v, want DiskReadErrors=1 Computes=1", st)
	}
	failpoint.Disable(FailpointDiskCorrupt)

	// B's recompute republished a sealed entry; A evicts its memory copy
	// and still reads the shared entry clean.
	a.Evict(key)
	if _, _, err := a.GetOrCompute(key, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	// Evict removed the disk entry too, so A recomputed and republished:
	// either way the final read must verify.
	got, ok := b.Get(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("final read: %q ok=%v", got, ok)
	}
}

// TestCacheOnlyInstance pins the router's graceful-degradation tier: a
// CacheOnly instance serves what the fleet already published (memory
// then disk) but answers a full miss with ErrCacheOnly instead of
// evaluating — it holds no compute slots and can never be saturated.
func TestCacheOnlyInstance(t *testing.T) {
	dir := t.TempDir()
	replica, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := New(Options{Dir: dir, CacheOnly: true})
	if err != nil {
		t.Fatal(err)
	}

	published := sharedKey(4)
	want := []byte("from-the-fleet")
	if _, _, err := replica.GetOrCompute(published, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	got, hit, err := degraded.GetOrCompute(published, func() ([]byte, error) {
		t.Error("cache-only instance ran a compute")
		return nil, errors.New("unreachable")
	})
	if err != nil || !hit || string(got) != string(want) {
		t.Fatalf("degraded hit: got %q hit=%v err=%v", got, hit, err)
	}

	_, _, err = degraded.GetOrCompute(sharedKey(5), func() ([]byte, error) {
		t.Error("cache-only instance ran a compute on a miss")
		return nil, errors.New("unreachable")
	})
	if !errors.Is(err, ErrCacheOnly) {
		t.Fatalf("cache-only miss: err=%v, want ErrCacheOnly", err)
	}
	st := degraded.Stats()
	if st.Errors != 0 || st.Shed != 0 || st.Computes != 0 || st.DiskHits != 1 {
		t.Fatalf("degraded stats %+v, want Errors=0 Shed=0 Computes=0 DiskHits=1", st)
	}
	// A later publish by the fleet turns the same miss into a hit.
	if _, _, err := replica.GetOrCompute(sharedKey(5), func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := degraded.GetOrCompute(sharedKey(5), nil); err != nil || !hit {
		t.Fatalf("degraded after publish: hit=%v err=%v", hit, err)
	}
}
