package rescache

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// The chaos suite: every fault the failpoint sites can inject, plus
// direct corruption and cancellation races, each asserting the cache's
// core invariants — no deadlock (tests finish), no leaked compute slot
// (Inflight drains to zero and the slot is reusable), no corrupted
// bytes served, and every waiter gets an error rather than a hang.

// waitInflightZero polls until no computation is in flight. Detach on
// cancellation is immediate for the caller but asynchronous for the
// compute goroutine, so tests that assert slot recovery poll briefly.
func waitInflightZero(t *testing.T, c *Cache) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compute slot leaked: stats %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func newDiskCache(t *testing.T, slots int) *Cache {
	t.Helper()
	c, err := New(Options{Dir: t.TempDir(), MaxInflightComputes: slots})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChaosDiskReadError(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("payload")
	if _, _, err := c1.GetOrCompute("aa11", func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A second cache on the same dir would normally disk-hit; with the
	// read failpoint armed it degrades to a recompute and counts the
	// error.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(FailpointDiskGet, "error"); err != nil {
		t.Fatal(err)
	}
	blob, hit, err := c2.GetOrCompute("aa11", func() ([]byte, error) { return want, nil })
	if err != nil || hit || !bytes.Equal(blob, want) {
		t.Fatalf("blob=%q hit=%v err=%v, want fresh recompute of %q", blob, hit, err, want)
	}
	st := c2.Stats()
	if st.DiskReadErrors == 0 || st.Computes != 1 {
		t.Fatalf("stats %+v, want DiskReadErrors>0 Computes=1", st)
	}

	// Disarmed, the disk layer works again.
	failpoint.Reset()
	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if blob, hit, err := c3.GetOrCompute("aa11", nil); err != nil || !hit || !bytes.Equal(blob, want) {
		t.Fatalf("after disarm: blob=%q hit=%v err=%v", blob, hit, err)
	}
}

func TestChaosDiskWriteError(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(FailpointDiskPut, "error"); err != nil {
		t.Fatal(err)
	}
	want := []byte("memory only")
	blob, _, err := c.GetOrCompute("bb22", func() ([]byte, error) { return want, nil })
	if err != nil || !bytes.Equal(blob, want) {
		t.Fatalf("blob=%q err=%v", blob, err)
	}
	if st := c.Stats(); st.DiskWriteErrors != 1 {
		t.Fatalf("stats %+v, want DiskWriteErrors=1", st)
	}
	// The write never landed: the entry is served from memory here but
	// invisible to a fresh cache on the same dir.
	if blob, hit, _ := c.GetOrCompute("bb22", nil); !hit || !bytes.Equal(blob, want) {
		t.Fatalf("memory entry lost: blob=%q hit=%v", blob, hit)
	}
	failpoint.Reset()
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("bb22"); ok {
		t.Fatal("failed disk write still produced a disk entry")
	}
}

// TestChaosCorruptBlobNeverServed is the integrity-footer invariant
// under an injected torn read: the corrupted bytes must never reach a
// caller — the entry is rejected, deleted, recomputed and resealed.
func TestChaosCorruptBlobNeverServed(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("the one true result")
	if _, _, err := c1.GetOrCompute("cc33", func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(FailpointDiskCorrupt, "corrupt"); err != nil {
		t.Fatal(err)
	}
	blob, hit, err := c2.GetOrCompute("cc33", func() ([]byte, error) { return want, nil })
	if err != nil || !bytes.Equal(blob, want) {
		t.Fatalf("blob=%q err=%v, corrupted bytes must not surface", blob, err)
	}
	if hit {
		t.Fatal("corrupt disk entry served as a hit")
	}
	st := c2.Stats()
	if st.DiskReadErrors == 0 {
		t.Fatalf("stats %+v, want the corruption counted", st)
	}

	// The recompute rewrote a sealed entry; with the fault disarmed a
	// fresh cache disk-hits the good bytes.
	failpoint.Reset()
	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if blob, hit, err := c3.GetOrCompute("cc33", nil); err != nil || !hit || !bytes.Equal(blob, want) {
		t.Fatalf("self-heal failed: blob=%q hit=%v err=%v", blob, hit, err)
	}
}

// TestDiskFooterDetectsRealCorruption flips bytes on disk directly (no
// failpoint): the SHA-256 footer must reject the entry, delete the
// file, and let the recompute self-heal.
func TestDiskFooterDetectsRealCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("precious result bytes")
	if _, _, err := c.GetOrCompute("dd44", func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dd44")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(want)+footerLen {
		t.Fatalf("disk entry %dB, want payload %dB + footer %dB", len(raw), len(want), footerLen)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"payload-flip": func(b []byte) []byte { out := append([]byte(nil), b...); out[2] ^= 0xff; return out },
		"footer-flip":  func(b []byte) []byte { out := append([]byte(nil), b...); out[len(out)-1] ^= 0xff; return out },
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"too-short":    func([]byte) []byte { return []byte{1, 2, 3} },
	} {
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := New(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		before := c2.Stats().DiskReadErrors
		blob, hit, err := c2.GetOrCompute("dd44", func() ([]byte, error) { return want, nil })
		if err != nil || hit || !bytes.Equal(blob, want) {
			t.Fatalf("%s: blob=%q hit=%v err=%v", name, blob, hit, err)
		}
		if c2.Stats().DiskReadErrors <= before {
			t.Fatalf("%s: corruption not counted", name)
		}
		// The recompute resealed the file; restore the corrupt copy for
		// the next subcase only via the loop's WriteFile.
		if sealed, err := os.ReadFile(path); err != nil || !bytes.Equal(sealed, raw) {
			t.Fatalf("%s: entry not resealed: %v", name, err)
		}
	}
}

// TestChaosSlowComputeCancelFreesSlot: a caller abandoning a slow
// compute must get ctx.Err() immediately, and the compute — cancelled
// once no one wants it — must free its slot for the next key.
func TestChaosSlowComputeCancelFreesSlot(t *testing.T) {
	defer failpoint.Reset()
	c := newDiskCache(t, 1)
	if err := failpoint.Enable(FailpointCompute, "sleep(30s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrComputeCtx(ctx, "ee55", func(context.Context) ([]byte, error) {
			return []byte("never"), nil
		})
		done <- err
	}()
	// Let the lead goroutine take the slot, then abandon it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	waitInflightZero(t, c)

	// The slot is reusable: a different key computes without shedding.
	failpoint.Reset()
	if _, _, err := c.GetOrCompute("ff66", func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatalf("slot not reusable: %v", err)
	}
}

// TestChaosComputePanic: a panicking compute is recovered, counted,
// and every coalesced waiter gets an error wrapping ErrComputePanic —
// none hang, nothing is cached.
func TestChaosComputePanic(t *testing.T) {
	defer failpoint.Reset()
	c := newDiskCache(t, 1)
	if err := failpoint.Enable(FailpointCompute, "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, _, err := c.GetOrCompute("0a0b", func() ([]byte, error) { return []byte("x"), nil })
			errs <- err
		}()
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrComputePanic) {
				t.Fatalf("waiter err = %v, want ErrComputePanic", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter hung on a panicked compute")
		}
	}
	waitInflightZero(t, c)
	st := c.Stats()
	if st.Panics == 0 || st.Entries != 0 {
		t.Fatalf("stats %+v, want Panics>0 and nothing cached", st)
	}

	// The cache recovers fully once the fault is gone.
	failpoint.Reset()
	if blob, _, err := c.GetOrCompute("0a0b", func() ([]byte, error) { return []byte("ok"), nil }); err != nil || string(blob) != "ok" {
		t.Fatalf("post-panic compute: blob=%q err=%v", blob, err)
	}
}

// TestChaosCancelAtPoint: the EnableFunc form cancels the caller the
// moment the compute starts — the caller detaches, the abandoned
// compute context is cancelled, and nothing deadlocks or leaks.
func TestChaosCancelAtPoint(t *testing.T) {
	defer failpoint.Reset()
	c := newDiskCache(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	failpoint.EnableFunc(FailpointCompute, func(fctx context.Context) error {
		cancel() // the only caller departs...
		<-fctx.Done()
		return fctx.Err() // ...so the compute context must cancel
	})
	_, _, err := c.GetOrComputeCtx(ctx, "1c1d", func(context.Context) ([]byte, error) {
		return []byte("never"), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v, want Canceled", err)
	}
	waitInflightZero(t, c)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled compute cached a result: %+v", st)
	}
}

// TestComputeTimeoutFreesSlot: Options.ComputeTimeout bounds a stuck
// evaluation; its waiters see DeadlineExceeded and the slot frees.
func TestComputeTimeoutFreesSlot(t *testing.T) {
	c, err := New(Options{MaxInflightComputes: 1, ComputeTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.GetOrComputeCtx(context.Background(), "2e2f", func(ctx context.Context) ([]byte, error) {
		<-ctx.Done() // a well-behaved but stuck compute
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	waitInflightZero(t, c)
	if _, _, err := c.GetOrCompute("3a3b", func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatalf("slot not reusable after timeout: %v", err)
	}
}

// TestLeaderCancelDoesNotPoisonFollowers: the caller that started the
// computation departs; a follower that coalesced onto it still gets
// the result, because the compute runs detached and only cancels when
// ALL waiters leave.
func TestLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	begun := make(chan struct{})
	release := make(chan struct{})
	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrComputeCtx(lctx, "4c4d", func(ctx context.Context) ([]byte, error) {
			close(begun)
			select {
			case <-release:
				return []byte("survived"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		leaderErr <- err
	}()
	<-begun

	followerRes := make(chan []byte, 1)
	followerErr := make(chan error, 1)
	go func() {
		blob, _, err := c.GetOrComputeCtx(context.Background(), "4c4d", nil)
		followerRes <- blob
		followerErr <- err
	}()
	// Wait until the follower has coalesced, then cancel the leader.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	lcancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	close(release)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower err = %v — leader's cancellation poisoned it", err)
	}
	if blob := <-followerRes; string(blob) != "survived" {
		t.Fatalf("follower blob = %q", blob)
	}
}

// TestFollowerDetachLeavesLeader: the mirror case — a follower departs
// and the leader still completes normally.
func TestFollowerDetachLeavesLeader(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	begun := make(chan struct{})
	release := make(chan struct{})
	leaderRes := make(chan []byte, 1)
	go func() {
		blob, _, _ := c.GetOrCompute("5e5f", func() ([]byte, error) {
			close(begun)
			<-release
			return []byte("leader result"), nil
		})
		leaderRes <- blob
	}()
	<-begun

	fctx, fcancel := context.WithCancel(context.Background())
	fdone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrComputeCtx(fctx, "5e5f", nil)
		fdone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	fcancel()
	if err := <-fdone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want Canceled", err)
	}
	close(release)
	if blob := <-leaderRes; string(blob) != "leader result" {
		t.Fatalf("leader blob = %q", blob)
	}
}

// TestEvictRacesGetOrCompute hammers Evict against GetOrComputeCtx
// (with intermittent caller cancellation) on one key. Run under -race;
// the assertions are liveness (no hang), slot accounting (Inflight
// drains to zero, the capacity stays usable) and LRU consistency (a
// final lookup computes or hits cleanly).
func TestEvictRacesGetOrCompute(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir(), MaxInflightComputes: 2})
	if err != nil {
		t.Fatal(err)
	}
	const key = "6a6b"
	want := []byte("stable value")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g {
				case 0:
					c.Evict(key)
				case 1:
					ctx, cancel := context.WithCancel(context.Background())
					if i%2 == 0 {
						cancel() // pre-cancelled caller
					}
					blob, _, err := c.GetOrComputeCtx(ctx, key, func(context.Context) ([]byte, error) { return want, nil })
					if err == nil && !bytes.Equal(blob, want) {
						t.Errorf("goroutine %d: blob %q", g, blob)
					}
					cancel()
				default:
					blob, _, err := c.GetOrCompute(key, func() ([]byte, error) { return want, nil })
					if err != nil && !errors.Is(err, ErrSaturated) {
						t.Errorf("goroutine %d: err %v", g, err)
					} else if err == nil && !bytes.Equal(blob, want) {
						t.Errorf("goroutine %d: blob %q", g, blob)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	waitInflightZero(t, c)
	blob, _, err := c.GetOrCompute(key, func() ([]byte, error) { return want, nil })
	if err != nil || !bytes.Equal(blob, want) {
		t.Fatalf("cache unusable after race: blob=%q err=%v", blob, err)
	}
	if n := c.Len(); n > DefaultMaxEntries {
		t.Fatalf("LRU inconsistent: %d entries", n)
	}
}

// TestPreCancelledCtx: a caller whose context is already dead gets
// ctx.Err() without computing or taking a slot.
func TestPreCancelledCtx(t *testing.T) {
	c, err := New(Options{MaxInflightComputes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, _, err = c.GetOrComputeCtx(ctx, "7c7d", func(context.Context) ([]byte, error) {
		ran = true
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
	// Memory hits are served even under a dead context (no waiting
	// involved) — matches the "hit before ctx check" fast path.
	if _, _, err := c.GetOrCompute("8e8f", func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if blob, hit, err := c.GetOrComputeCtx(ctx, "8e8f", nil); err != nil || !hit || string(blob) != "v" {
		t.Fatalf("hit under dead ctx: blob=%q hit=%v err=%v", blob, hit, err)
	}
}
