package rescache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustNew(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetOrComputeMemoryHit(t *testing.T) {
	c := mustNew(t, Options{})
	key := "aa01"
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("v1"), nil }

	blob, hit, err := c.GetOrCompute(key, compute)
	if err != nil || hit || string(blob) != "v1" {
		t.Fatalf("first lookup: blob=%q hit=%v err=%v", blob, hit, err)
	}
	blob, hit, err = c.GetOrCompute(key, compute)
	if err != nil || !hit || string(blob) != "v1" {
		t.Fatalf("second lookup: blob=%q hit=%v err=%v", blob, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Computes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := mustNew(t, Options{})
	const workers = 16
	var computes atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	blobs := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob, _, err := c.GetOrCompute("f00d", func() ([]byte, error) {
				computes.Add(1)
				<-release // hold the computation open so every worker arrives
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			blobs[i] = blob
		}(i)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for %d concurrent identical requests, want 1", n, workers)
	}
	for i, b := range blobs {
		if string(b) != "result" {
			t.Fatalf("worker %d got %q", i, b)
		}
	}
	st := c.Stats()
	if st.Computes != 1 {
		t.Fatalf("stats.Computes = %d, want 1", st.Computes)
	}
	if st.Hits+st.Coalesced != workers-1 {
		t.Fatalf("hits+coalesced = %d, want %d (stats %+v)", st.Hits+st.Coalesced, workers-1, st)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after drain", st.Inflight)
	}
}

func TestDistinctKeysComputeIndependently(t *testing.T) {
	c := mustNew(t, Options{})
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("%02x", i)
		want := []byte(key + "-value")
		blob, hit, err := c.GetOrCompute(key, func() ([]byte, error) { return want, nil })
		if err != nil || hit || !bytes.Equal(blob, want) {
			t.Fatalf("key %s: blob=%q hit=%v err=%v", key, blob, hit, err)
		}
	}
	if st := c.Stats(); st.Computes != 4 || st.Entries != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := mustNew(t, Options{})
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute("0abc", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	blob, hit, err := c.GetOrCompute("0abc", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(blob) != "ok" {
		t.Fatalf("after error: blob=%q hit=%v err=%v", blob, hit, err)
	}
	if st := c.Stats(); st.Errors != 1 || st.Computes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, Options{MaxEntries: 2})
	put := func(key string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte(key), nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("01")
	put("02")
	if _, ok := c.Get("01"); !ok { // touch 01 so 02 is the LRU victim
		t.Fatal("01 missing before eviction")
	}
	put("03")
	if _, ok := c.Get("02"); ok {
		t.Fatal("02 should have been evicted")
	}
	if _, ok := c.Get("01"); !ok {
		t.Fatal("01 should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestDiskLayerWarmStart(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, Options{Dir: dir})
	want := []byte("persisted")
	if _, _, err := c1.GetOrCompute("beef", func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "beef")); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	// A fresh cache over the same directory serves the key without
	// computing — the warm-start path.
	c2 := mustNew(t, Options{Dir: dir})
	blob, hit, err := c2.GetOrCompute("beef", func() ([]byte, error) {
		t.Fatal("compute ran despite disk entry")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(blob, want) {
		t.Fatalf("warm start: blob=%q hit=%v err=%v", blob, hit, err)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Computes != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Promoted: the next lookup is a memory hit.
	if _, hit, _ := c2.GetOrCompute("beef", nil); !hit {
		t.Fatal("promoted entry not served from memory")
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("stats after promotion = %+v", st)
	}
}

func TestDiskRejectsNonHexKeys(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Options{Dir: dir})
	if _, _, err := c.GetOrCompute("../escape", func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("non-hex key leaked onto disk: %v", ents)
	}
}

func TestEvictRemovesMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Options{Dir: dir})
	if _, _, err := c.GetOrCompute("dead", func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	c.Evict("dead")
	if _, ok := c.Get("dead"); ok {
		t.Fatal("entry survived eviction")
	}
	if _, err := os.Stat(filepath.Join(dir, "dead")); !os.IsNotExist(err) {
		t.Fatalf("disk entry survived eviction: %v", err)
	}
	// The next lookup recomputes and refills both layers.
	blob, hit, err := c.GetOrCompute("dead", func() ([]byte, error) { return []byte("v2"), nil })
	if err != nil || hit || string(blob) != "v2" {
		t.Fatalf("post-evict: blob=%q hit=%v err=%v", blob, hit, err)
	}
}

// TestBoundedComputesShed pins the load-shedding contract: with one
// compute slot, a distinct key arriving mid-computation sheds with
// ErrSaturated (uncached, so it retries cleanly later), while an
// identical key coalesces onto the in-flight computation without
// needing a slot. Hits never touch the bound either.
func TestBoundedComputesShed(t *testing.T) {
	c := mustNew(t, Options{MaxInflightComputes: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	leader := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute("aa01", func() ([]byte, error) {
			close(started)
			<-block
			return []byte("a"), nil
		})
		leader <- err
	}()
	<-started

	// Distinct key while the slot is held: shed, not queued.
	if _, _, err := c.GetOrCompute("bb02", func() ([]byte, error) {
		t.Error("shed compute ran")
		return nil, nil
	}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("distinct key during saturation: err=%v, want ErrSaturated", err)
	}

	// Identical key: coalesces (no slot needed), shares the result.
	coal := make(chan string, 1)
	go func() {
		blob, hit, err := c.GetOrCompute("aa01", func() ([]byte, error) {
			t.Error("coalesced caller computed")
			return nil, nil
		})
		if err != nil || !hit {
			t.Errorf("coalesced caller: hit=%v err=%v", hit, err)
		}
		coal <- string(blob)
	}()
	// Wait until the waiter has registered on the in-flight call (the
	// Coalesced counter increments before it blocks), so releasing the
	// leader below cannot race it into a plain memory hit.
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Coalesced == 0; {
		if time.Now().After(deadline) {
			t.Fatal("coalesced waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}

	close(block)
	if err := <-leader; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if got := <-coal; got != "a" {
		t.Fatalf("coalesced blob %q, want %q", got, "a")
	}

	// The shed key was never cached; with the slot free it computes.
	blob, hit, err := c.GetOrCompute("bb02", func() ([]byte, error) { return []byte("b"), nil })
	if err != nil || hit || string(blob) != "b" {
		t.Fatalf("post-saturation retry: blob=%q hit=%v err=%v", blob, hit, err)
	}

	st := c.Stats()
	if st.Shed != 1 || st.Errors != 0 || st.Computes != 2 || st.Coalesced != 1 {
		t.Fatalf("stats %+v, want Shed=1 Errors=0 Computes=2 Coalesced=1", st)
	}

	// A memory hit during saturation is served normally.
	hold := make(chan struct{})
	begun := make(chan struct{})
	go func() {
		c.GetOrCompute("cc03", func() ([]byte, error) { //nolint:errcheck
			close(begun)
			<-hold
			return []byte("c"), nil
		})
	}()
	<-begun
	if blob, hit, err := c.GetOrCompute("aa01", nil); err != nil || !hit || string(blob) != "a" {
		t.Fatalf("hit during saturation: blob=%q hit=%v err=%v", blob, hit, err)
	}
	close(hold)
}
