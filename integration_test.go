package repro

// Cross-module integration tests: the functional protection unit, the
// reference executor, the timing pipeline and the attack machinery
// exercised together. These are the repository-level invariants from
// DESIGN.md §6.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/nnexec"
	"repro/internal/scalesim"
	"repro/internal/secinfer"
	"repro/seda"
)

var (
	itEncKey = []byte("0123456789abcdef")
	itMacKey = []byte("integration-mac-key")
)

// TestIntegrationBitExactSecureInference: a protected inference is
// bit-identical to an unprotected one across several networks, block
// sizes and seeds.
func TestIntegrationBitExactSecureInference(t *testing.T) {
	nets := []*model.Network{
		model.LeNet(),
		{
			Name: "mixed", Full: "mixed-kind net",
			Layers: []model.Layer{
				model.CV("c1", 10, 10, 3, 3, 2, 8, 1),
				model.DW("d1", 8, 8, 3, 3, 8, 1),
				model.CV("p1", 6, 6, 1, 1, 8, 4, 1),
				model.FC("fc", 1, 144, 5),
			},
		},
	}
	for _, net := range nets {
		for _, optBlk := range []int{64, 256, 1024} {
			p, err := secinfer.New(net, itEncKey, itMacKey, 99, optBlk)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Provision(); err != nil {
				t.Fatal(err)
			}
			l0 := net.Layers[0]
			in := nnexec.NewTensor(l0.IfmapH, l0.IfmapW, l0.Channels)
			rand.New(rand.NewSource(5)).Read(in.Data) //nolint:errcheck
			inCopy := nnexec.NewTensor(l0.IfmapH, l0.IfmapW, l0.Channels)
			copy(inCopy.Data, in.Data)

			prot, err := p.Infer(in)
			if err != nil {
				t.Fatalf("%s optBlk=%d: %v", net.Name, optBlk, err)
			}
			ref, err := p.ReferenceInfer(inCopy)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(prot.Data, ref.Data) {
				t.Errorf("%s optBlk=%d: protected != reference", net.Name, optBlk)
			}
		}
	}
}

// TestIntegrationTrafficOrderingFullSuiteServer: the Fig. 5 ordering
// holds on every workload on the server NPU (the edge variant is
// covered in memprot's tests).
func TestIntegrationTrafficOrderingFullSuiteServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite simulation")
	}
	cfg, err := scalesim.New(256, 256, 24<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range model.All() {
		sim, err := cfg.SimulateNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		oh := map[string]float64{}
		for _, s := range memprot.AllSchemes() {
			res, err := memprot.Protect(s, sim, memprot.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			oh[s.Name()] = res.TrafficOverheadRatio()
		}
		order := []string{"SGX-64B", "MGX-64B", "MGX-512B", "SeDA", "Baseline"}
		for i := 0; i+1 < len(order); i++ {
			if oh[order[i]] < oh[order[i+1]] {
				t.Errorf("%s: %s (%.4f) < %s (%.4f)",
					n.Name, order[i], oh[order[i]], order[i+1], oh[order[i+1]])
			}
		}
	}
}

// TestIntegrationTimingAndFunctionalAgreeOnOptBlk: the optBlk the
// timing path picks for a layer is usable by the functional unit
// (positive, at least the hardware minimum).
func TestIntegrationTimingAndFunctionalAgreeOnOptBlk(t *testing.T) {
	cfg, err := scalesim.New(32, 32, 480<<10)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cfg.SimulateNetwork(model.LeNet())
	if err != nil {
		t.Fatal(err)
	}
	prot, err := memprot.Protect(memprot.SchemeSeDA, sim, memprot.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := secinfer.New(model.LeNet(), itEncKey, itMacKey, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Provision(); err != nil {
		t.Fatal(err)
	}
	for _, pl := range prot.Layers {
		if pl.Overhead.OptBlk < 64 {
			t.Errorf("layer %d optBlk %d below hardware minimum", pl.LayerID, pl.Overhead.OptBlk)
		}
	}
}

// TestIntegrationSeDABeatsAllPriorSchemesEverywhere: on every
// (workload, NPU) pair of a representative subset, SeDA has both the
// least traffic and the least slowdown among protection schemes.
func TestIntegrationSeDABeatsAllPriorSchemesEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	for _, npu := range []seda.NPUConfig{seda.ServerNPU(), seda.EdgeNPU()} {
		for _, wl := range []string{"let", "dlrm", "trf"} {
			rows, err := seda.RunNetwork(npu, model.ByName(wl))
			if err != nil {
				t.Fatal(err)
			}
			sd, err := seda.SchemeRow(rows, memprot.SchemeSeDA)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Scheme.Kind == memprot.Baseline || r.Scheme.Kind == memprot.SeDA {
					continue
				}
				if sd.NormTraffic > r.NormTraffic {
					t.Errorf("%s/%s: SeDA traffic %.4f above %s %.4f",
						npu.Name, wl, sd.NormTraffic, r.Scheme.Name(), r.NormTraffic)
				}
				if sd.NormPerf < r.NormPerf {
					t.Errorf("%s/%s: SeDA perf %.4f below %s %.4f",
						npu.Name, wl, sd.NormPerf, r.Scheme.Name(), r.NormPerf)
				}
			}
		}
	}
}

// TestIntegrationTopologyImportRunsThroughPipeline: a network imported
// from a SCALE-Sim topology CSV runs through the full evaluation
// pipeline.
func TestIntegrationTopologyImportRunsThroughPipeline(t *testing.T) {
	var buf bytes.Buffer
	if err := model.WriteTopologyCSV(&buf, model.YoloTiny()); err != nil {
		t.Fatal(err)
	}
	imported, err := model.ReadTopologyCSV(&buf, "yolo-imported")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := seda.RunNetwork(seda.ServerNPU(), imported)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("imported network produced %d rows", len(rows))
	}
}
