// Command seda-sim evaluates one (workload, NPU) pair across all
// memory-protection schemes, printing the traffic and performance
// breakdown, the per-layer optBlk choices under SeDA, and Table I.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/seda"
)

func main() {
	workload := flag.String("workload", "rest", "workload short name ("+strings.Join(model.Names(), ", ")+")")
	npuName := flag.String("npu", "server", "npu config: server or edge")
	table1 := flag.Bool("table1", false, "print Table I (multi-level granularity comparison) and exit")
	seq := flag.Bool("seq", false, "force the fully sequential pipeline (one goroutine end to end)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the evaluation to this file (pair with -seq for a single-goroutine profile)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	timing := flag.Bool("timing", false, "print the pipeline span tree (per-stage wall times) to stderr as JSON when done")
	flag.Parse()

	if *table1 {
		printTable1()
		return
	}

	profiles, err := obs.StartProfiles(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seda-sim:", err)
		os.Exit(1)
	}
	defer profiles.Stop() //nolint:errcheck

	var npu seda.NPUConfig
	switch *npuName {
	case "server":
		npu = seda.ServerNPU()
	case "edge":
		npu = seda.EdgeNPU()
	default:
		fmt.Fprintf(os.Stderr, "seda-sim: unknown npu %q (want server or edge)\n", *npuName)
		os.Exit(1)
	}

	net := model.ByName(*workload)
	if net == nil {
		fmt.Fprintf(os.Stderr, "seda-sim: unknown workload %q (known: %s)\n",
			*workload, strings.Join(model.Names(), ", "))
		os.Exit(1)
	}

	opts := seda.DefaultSuiteOptions()
	if *seq {
		opts = seda.SequentialOptions()
	}
	// Ctrl-C cancels the evaluation cooperatively instead of letting it
	// run to completion; a second signal kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timing {
		var tr *obs.Tracer
		ctx, tr = obs.NewTracer(ctx, "seda-sim")
		defer func() {
			tr.Finish()
			tr.WriteJSON(os.Stderr, true) //nolint:errcheck
		}()
	}
	rows, err := seda.RunNetworkOptsCtx(ctx, npu, net, opts)
	if err != nil {
		profiles.Stop() //nolint:errcheck // os.Exit skips the defer
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "seda-sim: interrupted")
			os.Exit(130) // conventional 128+SIGINT
		}
		fmt.Fprintln(os.Stderr, "seda-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s (%s) on %s NPU — %d layers, %.1f GMACs\n\n",
		net.Full, net.Name, npu.Name, len(net.Layers), float64(net.TotalMACs())/1e9)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tdata(MB)\tmeta(MB)\tnorm.traffic\tnorm.perf\texec(cycles)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%.4f\t%.4f\t%d\n",
			r.Scheme.Name(),
			float64(r.DataBytes)/1e6, float64(r.MetaBytes)/1e6,
			r.NormTraffic, r.NormPerf, r.ExecCycles)
	}
	w.Flush() //nolint:errcheck

	sgx, _ := seda.SchemeRow(rows, memprot.SchemeSGX64)
	sd, _ := seda.SchemeRow(rows, memprot.SchemeSeDA)
	fmt.Printf("\nSeDA removes %.2f%% of SGX-64B's performance overhead on this workload.\n",
		(sgx.PerfOverhead()-sd.PerfOverhead())*100)
}

func printTable1() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table I — multi-level integrity verification granularities")
	fmt.Fprintln(w, "granularity\tflexibility\toff-chip access\toverhead\tstorage")
	for _, r := range core.GranularityTable() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n",
			r.Granularity, r.Flexibility, r.OffChipAccess, r.Overhead, r.Storage)
	}
	w.Flush() //nolint:errcheck
}
