// Command seda-serve exposes the evaluation pipeline as an HTTP
// service — sweep-as-a-service. Every response is produced through a
// content-addressed result cache (internal/rescache): results are
// keyed by a canonical SHA-256 of (NPU config, network topology,
// scheme set, pipeline version), identical concurrent requests
// coalesce onto a single pipeline evaluation, and an optional disk
// layer survives restarts.
//
// The server is production-shaped: header/read/write/idle timeouts
// bound slow clients, a bounded in-flight semaphore sheds distinct
// concurrent evaluations with 503 once saturated, sweep responses
// carry a strong ETag derived from the config fingerprint (so
// If-None-Match revalidation costs microseconds), and SIGINT/SIGTERM
// drain in-flight requests before exiting.
//
// Endpoints:
//
//	GET /healthz                   liveness probe
//	GET /metrics                   cache + request counters (Prometheus text)
//	GET /v1/workloads              the 13 benchmark workloads
//	GET /v1/schemes                the protection schemes and their features
//	GET /v1/sweep?npu=server&fig=5a[&workloads=let,ncf][&format=csv]
//	                               figure series (JSON, or CSV per Accept)
//	GET /v1/explore?spec=rows=16:256:2x,channels=2|4[&base=edge][&workloads=let]
//	                               design-space exploration: surrogate-pruned
//	                               grid sweep with cycle-accurate confirmation
//	                               of the Pareto candidates
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/seda"
)

// debugHandler serves the profiling surface bound (only) to
// -debug-addr: the full net/http/pprof family. It is a separate mux on
// a separate listener so the serving port never exposes profiling —
// the debug listener is opt-in and meant to stay on localhost.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound (for -addr with port 0)")
	cacheDir := flag.String("cache-dir", "auto", "disk cache directory; \"auto\" = <user cache dir>/seda-repro, \"off\" = memory only")
	memEntries := flag.Int("mem-entries", 0, "in-memory cache entries (0 = default)")
	workers := flag.Int("workers", 0, "workload-level worker pool size per sweep (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "force the fully sequential pipeline (one goroutine end to end)")
	maxInflight := flag.Int("max-inflight", 4, "concurrent pipeline evaluations before shedding with 503 (0 = unlimited; cache hits and coalesced identical requests never count)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "full-request read timeout")
	writeTimeout := flag.Duration("write-timeout", 3*time.Minute, "response write timeout (must cover a cold full-suite evaluation)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request evaluation deadline; expiry answers 504 (0 = none, bounded by -write-timeout)")
	computeTimeout := flag.Duration("compute-timeout", 10*time.Minute, "per-computation deadline in the result cache; a stuck evaluation frees its slot at expiry (0 = none)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests before forcing exit")
	maxExplorePoints := flag.Int("max-explore-points", DefaultMaxExplorePoints, "largest grid /v1/explore accepts (points before validation)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for the pprof profiling surface (empty = disabled; keep it on localhost)")
	debugAddrFile := flag.String("debug-addr-file", "", "write the actual debug listen address to this file once bound (for -debug-addr with port 0)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := obs.ReadBuild()
		dirty := ""
		if b.Dirty {
			dirty = " (dirty)"
		}
		fmt.Printf("seda-serve %s revision %s%s pipeline %s %s\n",
			b.ModuleVersion, b.Revision, dirty, seda.PipelineVersion, b.GoVersion)
		return
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	// Chaos-test fault sites arm from the environment, e.g.
	// SEDA_FAILPOINTS='rescache.compute=sleep(30s)'. Unset means every
	// site stays a no-op.
	if err := failpoint.LoadEnv(); err != nil {
		fatal(err)
	}

	opts := seda.DefaultSuiteOptions()
	opts.Workers = *workers
	if *seq {
		opts = seda.SequentialOptions()
	}

	dir := rescache.ResolveDir(*cacheDir)
	cache, err := rescache.New(rescache.Options{
		MaxEntries:          *memEntries,
		Dir:                 dir,
		MaxInflightComputes: *maxInflight,
		ComputeTimeout:      *computeTimeout,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}

	sv := newServer(cache, opts, *requestTimeout)
	sv.maxExplore = *maxExplorePoints
	sv.log = logger
	if dir != "" {
		logger.Info("disk cache enabled", slog.String("dir", dir))
	}
	logger.Info("listening",
		slog.String("addr", bound),
		slog.String("version", sv.build.ModuleVersion),
		slog.String("revision", sv.build.Revision),
		slog.String("pipeline", seda.PipelineVersion),
		slog.String("go", sv.build.GoVersion),
	)

	// The profiling surface gets its own listener and server: profiles
	// and traces never share a port with (or leak onto) the public API.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		dbound := dln.Addr().String()
		if *debugAddrFile != "" {
			if err := os.WriteFile(*debugAddrFile, []byte(dbound), 0o644); err != nil {
				fatal(err)
			}
		}
		logger.Info("debug listener (pprof)", slog.String("addr", dbound))
		dsrv := &http.Server{Handler: debugHandler(), ReadHeaderTimeout: 5 * time.Second}
		go dsrv.Serve(dln) //nolint:errcheck // best-effort surface, dies with the process
	}

	srv := &http.Server{
		Handler:           sv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Serve until a termination signal, then drain: Shutdown stops the
	// listener immediately and waits for in-flight requests (a running
	// sweep keeps its slot) up to the grace period.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		logger.Info("shutting down, draining in-flight requests",
			slog.Duration("grace", *shutdownGrace))
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("forced exit with requests in flight", slog.Any("err", err))
			os.Exit(1)
		}
		logger.Info("drained")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seda-serve:", err)
	os.Exit(1)
}
