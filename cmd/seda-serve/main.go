// Command seda-serve exposes the evaluation pipeline as an HTTP
// service — sweep-as-a-service. Every response is produced through a
// content-addressed result cache (internal/rescache): results are
// keyed by a canonical SHA-256 of (NPU config, network topology,
// scheme set, pipeline version), identical concurrent requests
// coalesce onto a single pipeline evaluation, and an optional disk
// layer survives restarts.
//
// Endpoints:
//
//	GET /healthz                   liveness probe
//	GET /metrics                   cache + request counters (Prometheus text)
//	GET /v1/workloads              the 13 benchmark workloads
//	GET /v1/schemes                the protection schemes and their features
//	GET /v1/sweep?npu=server&fig=5a[&workloads=let,ncf][&format=csv]
//	                               figure series (JSON, or CSV per Accept)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/rescache"
	"repro/seda"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound (for -addr with port 0)")
	cacheDir := flag.String("cache-dir", "auto", "disk cache directory; \"auto\" = <user cache dir>/seda-repro, \"off\" = memory only")
	memEntries := flag.Int("mem-entries", 0, "in-memory cache entries (0 = default)")
	workers := flag.Int("workers", 0, "workload-level worker pool size per sweep (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "force the fully sequential pipeline (one goroutine end to end)")
	flag.Parse()

	opts := seda.DefaultSuiteOptions()
	opts.Workers = *workers
	if *seq {
		opts = seda.SequentialOptions()
	}

	dir := rescache.ResolveDir(*cacheDir)
	cache, err := rescache.New(rescache.Options{MaxEntries: *memEntries, Dir: dir})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	if dir != "" {
		fmt.Fprintf(os.Stderr, "seda-serve: disk cache at %s\n", dir)
	}
	fmt.Fprintf(os.Stderr, "seda-serve: listening on http://%s\n", bound)

	srv := newServer(cache, opts)
	if err := http.Serve(ln, srv.handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seda-serve:", err)
	os.Exit(1)
}
