// Command seda-serve exposes the evaluation pipeline as an HTTP
// service — sweep-as-a-service. Every response is produced through a
// content-addressed result cache (internal/rescache): results are
// keyed by a canonical SHA-256 of (NPU config, network topology,
// scheme set, pipeline version), identical concurrent requests
// coalesce onto a single pipeline evaluation, and an optional disk
// layer survives restarts.
//
// The server is production-shaped: header/read/write/idle timeouts
// bound slow clients, a bounded in-flight semaphore sheds distinct
// concurrent evaluations with 503 once saturated, sweep responses
// carry a strong ETag derived from the config fingerprint (so
// If-None-Match revalidation costs microseconds), and SIGINT/SIGTERM
// drain in-flight requests before exiting. The implementation lives in
// internal/serve, shared with the seda-router cluster front-end; this
// command is the flag-parsing shell.
//
// Endpoints:
//
//	GET /healthz                   liveness probe (build identity)
//	GET /readyz                    readiness: 503 while draining or saturated
//	GET /metrics                   cache + request counters (Prometheus text)
//	GET /v1/workloads              the 13 benchmark workloads
//	GET /v1/schemes                the protection schemes and their features
//	GET /v1/sweep?npu=server&fig=5a[&workloads=let,ncf][&format=csv]
//	                               figure series (JSON, or CSV per Accept)
//	GET /v1/explore?spec=rows=16:256:2x,channels=2|4[&base=edge][&workloads=let]
//	                               design-space exploration: surrogate-pruned
//	                               grid sweep with cycle-accurate confirmation
//	                               of the Pareto candidates
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/serve"
	"repro/seda"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound (for -addr with port 0)")
	cacheDir := flag.String("cache-dir", "auto", "disk cache directory; \"auto\" = <user cache dir>/seda-repro, \"off\" = memory only")
	memEntries := flag.Int("mem-entries", 0, "in-memory cache entries (0 = default)")
	workers := flag.Int("workers", 0, "workload-level worker pool size per sweep (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "force the fully sequential pipeline (one goroutine end to end)")
	maxInflight := flag.Int("max-inflight", 4, "concurrent pipeline evaluations before shedding with 503 (0 = unlimited; cache hits and coalesced identical requests never count)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "full-request read timeout")
	writeTimeout := flag.Duration("write-timeout", 3*time.Minute, "response write timeout (must cover a cold full-suite evaluation)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request evaluation deadline; expiry answers 504 (0 = none, bounded by -write-timeout)")
	computeTimeout := flag.Duration("compute-timeout", 10*time.Minute, "per-computation deadline in the result cache; a stuck evaluation frees its slot at expiry (0 = none)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests before forcing exit")
	maxExplorePoints := flag.Int("max-explore-points", serve.DefaultMaxExplorePoints, "largest grid /v1/explore accepts (points before validation)")
	jitterSeed := flag.Uint64("jitter-seed", 0, "seed for the Retry-After jitter so shed/readiness advice replays exactly (0 = random; set it for reproducible load-generator runs)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for the pprof profiling surface (empty = disabled; keep it on localhost)")
	debugAddrFile := flag.String("debug-addr-file", "", "write the actual debug listen address to this file once bound (for -debug-addr with port 0)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := obs.ReadBuild()
		dirty := ""
		if b.Dirty {
			dirty = " (dirty)"
		}
		fmt.Printf("seda-serve %s revision %s%s pipeline %s %s\n",
			b.ModuleVersion, b.Revision, dirty, seda.PipelineVersion, b.GoVersion)
		return
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	// Chaos-test fault sites arm from the environment, e.g.
	// SEDA_FAILPOINTS='rescache.compute=sleep(30s)'. Unset means every
	// site stays a no-op.
	if err := failpoint.LoadEnv(); err != nil {
		fatal(err)
	}

	opts := seda.DefaultSuiteOptions()
	opts.Workers = *workers
	if *seq {
		opts = seda.SequentialOptions()
	}

	dir := rescache.ResolveDir(*cacheDir)
	cache, err := rescache.New(rescache.Options{
		MaxEntries:          *memEntries,
		Dir:                 dir,
		MaxInflightComputes: *maxInflight,
		ComputeTimeout:      *computeTimeout,
	})
	if err != nil {
		fatal(err)
	}

	api := serve.NewAPI(cache, opts, *requestTimeout)
	api.MaxExplore = *maxExplorePoints
	api.Log = logger
	if *jitterSeed != 0 {
		api.SeedJitter(*jitterSeed)
	}
	if dir != "" {
		logger.Info("disk cache enabled", slog.String("dir", dir))
	}

	srv := serve.NewServer(serve.ServerConfig{
		Addr:          *addr,
		AddrFile:      *addrFile,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		ShutdownGrace: *shutdownGrace,
		OnDrain:       func() { api.SetDraining(true) },
		Log:           logger,
	})
	if _, err := srv.Listen(); err != nil {
		fatal(err)
	}
	b := obs.ReadBuild()
	logger.Info("build",
		slog.String("version", b.ModuleVersion),
		slog.String("revision", b.Revision),
		slog.String("pipeline", seda.PipelineVersion),
		slog.String("go", b.GoVersion),
	)

	// The profiling surface gets its own listener and server: profiles
	// and traces never share a port with (or leak onto) the public API.
	if *debugAddr != "" {
		if _, err := serve.ServeDebug(*debugAddr, *debugAddrFile, logger); err != nil {
			fatal(err)
		}
	}

	// Serve until a termination signal, then drain: the lifecycle stops
	// the listener and waits for in-flight requests (a running sweep
	// keeps its slot) up to the grace period.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, api.Handler()); err != nil {
		logger.Error("exit", slog.Any("err", err))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seda-serve:", err)
	os.Exit(1)
}
