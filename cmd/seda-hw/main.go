// Command seda-hw regenerates Fig. 4: area and power of the crypto
// datapath as the required encryption bandwidth grows, comparing
// T-AES (one engine per bandwidth step) against SeDA's B-AES (one
// engine plus XOR banks).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/hwmodel"
)

func main() {
	maxX := flag.Int("max", 8, "maximum bandwidth multiple to sweep")
	flag.Parse()

	if *maxX < 1 {
		fmt.Fprintln(os.Stderr, "seda-hw: -max must be >= 1")
		os.Exit(1)
	}

	h := hwmodel.Default28nm()
	taes, baes := h.Sweep(*maxX)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 4 — crypto datapath cost at 28 nm")
	fmt.Fprintln(w, "bandwidth(x16B)\tT-AES area(µm²)\tB-AES area(µm²)\tT-AES power(µW)\tB-AES power(µW)")
	for i := range taes {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
			taes[i].BandwidthX, taes[i].AreaUm2, baes[i].AreaUm2,
			taes[i].PowerUw, baes[i].PowerUw)
	}
	w.Flush() //nolint:errcheck

	a, p := h.SavingsAt(*maxX)
	fmt.Printf("\nAt %dx bandwidth, B-AES saves %.1fx area and %.1fx power vs T-AES.\n", *maxX, a, p)
}
