// Command seda-router is the fault-tolerant front-end over a fleet of
// seda-serve replicas. It routes /v1/sweep and /v1/explore by
// config-fingerprint affinity (rendezvous hashing over the same
// canonical fingerprints the result cache is keyed by, so identical
// configs always land on the replica whose rescache is warm), with
// least-loaded failover, token-bucket admission at the front door,
// active /readyz health checking, per-replica circuit breakers,
// bounded retry with exponential backoff + jitter, optional hedged
// requests, and graceful degradation: when every replica is down, a
// cache-only view of the shared disk-cache tier serves
// already-published results (marked X-Seda-Stale) before the router
// answers 503.
//
// A minimal three-replica deployment, sharing one disk cache:
//
//	seda-serve -addr :8441 -cache-dir /var/cache/seda &
//	seda-serve -addr :8442 -cache-dir /var/cache/seda &
//	seda-serve -addr :8443 -cache-dir /var/cache/seda &
//	seda-router -addr :8344 -replicas localhost:8441,localhost:8442,localhost:8443 \
//	            -cache-dir /var/cache/seda
//
// Endpoints mirror seda-serve: /v1/sweep, /v1/explore (proxied with
// affinity), /v1/workloads, /v1/schemes (answered locally — the
// catalog is identical on every instance of one build), plus the
// router's own /healthz (fleet view), /readyz and /metrics
// (seda_router_* series: per-replica up/ready/breaker/inflight gauges,
// retry/hedge/failover/stale counters, route latency histograms).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/serve"
	"repro/seda"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8345", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound (for -addr with port 0)")
	replicas := flag.String("replicas", "", "comma-separated seda-serve replica addresses (host:port or http://host:port); required")
	cacheDir := flag.String("cache-dir", "auto", "shared disk-cache directory for the stale-serving tier; \"auto\" = <user cache dir>/seda-repro, \"off\" = no stale tier")
	retryBudget := flag.Int("retry-budget", 3, "max upstream attempts per request, first try included")
	backoffBase := flag.Duration("backoff-base", 25*time.Millisecond, "initial retry backoff (doubled each wave, fully jittered)")
	backoffMax := flag.Duration("backoff-max", time.Second, "retry backoff ceiling")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedge a slow attempt onto the next replica after this delay (0 = hedging off)")
	attemptTimeout := flag.Duration("attempt-timeout", 3*time.Minute, "per-upstream-attempt deadline; expiry fails over (must cover a cold full-suite evaluation)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker blocks traffic before half-opening")
	healthInterval := flag.Duration("health-interval", time.Second, "active /readyz probe interval")
	healthTimeout := flag.Duration("health-timeout", 2*time.Second, "per-probe deadline")
	admitRate := flag.Float64("admit-rate", 0, "token-bucket admission rate for evaluation routes, requests/second (0 = unlimited)")
	admitBurst := flag.Int("admit-burst", 0, "token-bucket burst capacity (0 = max(1, admit-rate))")
	maxExplorePoints := flag.Int("max-explore-points", serve.DefaultMaxExplorePoints, "largest grid the stale tier's /v1/explore accepts")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "full-request read timeout")
	writeTimeout := flag.Duration("write-timeout", 4*time.Minute, "response write timeout (must cover attempt retries of a cold evaluation)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests before forcing exit")
	debugAddr := flag.String("debug-addr", "", "separate listen address for the pprof profiling surface (empty = disabled; keep it on localhost)")
	debugAddrFile := flag.String("debug-addr-file", "", "write the actual debug listen address to this file once bound")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := obs.ReadBuild()
		dirty := ""
		if b.Dirty {
			dirty = " (dirty)"
		}
		fmt.Printf("seda-router %s revision %s%s pipeline %s %s\n",
			b.ModuleVersion, b.Revision, dirty, seda.PipelineVersion, b.GoVersion)
		return
	}
	if *replicas == "" {
		fatal(fmt.Errorf("-replicas is required (comma-separated seda-serve addresses)"))
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if err := failpoint.LoadEnv(); err != nil {
		fatal(err)
	}

	// The degraded tier: a cache-only view of the shared disk cache. It
	// never evaluates anything — a miss is ErrCacheOnly (503 inside the
	// API) — so the router stays cheap even while serving stale. It also
	// answers the static catalog routes authoritatively.
	var degraded *serve.API
	dir := rescache.ResolveDir(*cacheDir)
	cache, err := rescache.New(rescache.Options{Dir: dir, CacheOnly: true})
	if err != nil {
		fatal(err)
	}
	degraded = serve.NewAPI(cache, seda.DefaultSuiteOptions(), 0)
	degraded.MaxExplore = *maxExplorePoints
	degraded.Log = logger
	if dir != "" {
		logger.Info("stale tier over shared disk cache", slog.String("dir", dir))
	} else {
		logger.Info("no shared disk cache (-cache-dir off): stale tier serves catalog routes only")
	}

	rt, err := cluster.New(cluster.Options{
		Replicas:         strings.Split(*replicas, ","),
		RetryBudget:      *retryBudget,
		BackoffBase:      *backoffBase,
		BackoffMax:       *backoffMax,
		HedgeDelay:       *hedgeDelay,
		AttemptTimeout:   *attemptTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		HealthInterval:   *healthInterval,
		HealthTimeout:    *healthTimeout,
		AdmitRate:        *admitRate,
		AdmitBurst:       *admitBurst,
		Degraded:         degraded,
		Log:              logger,
	})
	if err != nil {
		fatal(err)
	}

	srv := serve.NewServer(serve.ServerConfig{
		Addr:          *addr,
		AddrFile:      *addrFile,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		ShutdownGrace: *shutdownGrace,
		OnDrain:       func() { rt.SetDraining(true) },
		Log:           logger,
	})
	if _, err := srv.Listen(); err != nil {
		fatal(err)
	}
	b := obs.ReadBuild()
	logger.Info("build",
		slog.String("version", b.ModuleVersion),
		slog.String("revision", b.Revision),
		slog.String("pipeline", seda.PipelineVersion),
		slog.String("go", b.GoVersion),
		slog.Int("replicas", len(rt.Replicas())),
	)

	if *debugAddr != "" {
		if _, err := serve.ServeDebug(*debugAddr, *debugAddrFile, logger); err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.StartHealth(ctx)
	if err := srv.Run(ctx, rt.Handler()); err != nil {
		logger.Error("exit", slog.Any("err", err))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seda-router:", err)
	os.Exit(1)
}
